package runtime

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/content"
	"repro/internal/media/studio"
)

func streetWindow(t testing.TB) *GameWindow {
	t.Helper()
	blob, err := content.StreetDemo().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewGameWindow(s)
}

func TestFigure2Snapshot(t *testing.T) {
	g := streetWindow(t)
	s1 := g.Snapshot(120, 40)
	g2 := streetWindow(t)
	s2 := g2.Snapshot(120, 40)
	if s1 != s2 {
		t.Fatal("Figure 2 snapshot not deterministic")
	}
	lines := strings.Split(strings.TrimRight(s1, "\n"), "\n")
	if len(lines) != 40 || len(lines[0]) != 120 {
		t.Fatalf("snapshot shape %dx%d", len(lines), len(lines[0]))
	}
}

func TestWindowClickVideoInteracts(t *testing.T) {
	g := streetWindow(t)
	// Click the umbrella through the window (Item → examine).
	g.ClickVideo(70, 60)
	if !strings.Contains(g.StatusText(), "umbrella") {
		t.Fatalf("status = %q", g.StatusText())
	}
}

func TestWindowDragUmbrellaToInventory(t *testing.T) {
	g := streetWindow(t)
	if err := g.DragToInventory(70, 60); err != nil {
		t.Fatalf("drag failed: %v", err)
	}
	if !g.S.State().HasItem("umbrella") {
		t.Fatal("umbrella not collected")
	}
	if len(g.inv.Items) != 1 || g.inv.Items[0] != "Umbrella" {
		t.Fatalf("inventory bar = %v", g.inv.Items)
	}
	// Dragging from empty space fails.
	if err := g.DragToInventory(2, 2); err == nil {
		t.Fatal("drag from nothing succeeded")
	}
}

func TestWindowExamineMode(t *testing.T) {
	g := streetWindow(t)
	// Press EXAMINE, then click the umbrella.
	btn := g.Win.FindByID("btn-examine")
	b := btn.Bounds()
	g.Win.Click(b.X+2, b.Y+2)
	if !strings.Contains(g.StatusText(), "EXAMINE") {
		t.Fatalf("status = %q", g.StatusText())
	}
	g.ClickVideo(70, 60)
	if !strings.Contains(g.StatusText(), "wooden handle") {
		t.Fatalf("examine status = %q", g.StatusText())
	}
	// CANCEL resets.
	cb := g.Win.FindByID("btn-cancel").Bounds()
	g.Win.Click(cb.X+2, cb.Y+2)
	if g.StatusText() != "READY" {
		t.Fatalf("status = %q", g.StatusText())
	}
}

func TestWindowPopupFlow(t *testing.T) {
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGameWindow(s)
	// Finish the mission to trigger the popup.
	s.Take("desk-coin")
	s.GotoScenario("market")
	s.Take("stall-ram")
	s.GotoScenario("classroom")
	s.UseItemOn("ram module", "computer")
	g.Refresh()
	// Quiz modals come first (FIFO: the market quiz, then the install
	// quiz); answer each correctly by clicking its answer button.
	quizzes := 0
	for {
		quiz, pending := s.PendingQuiz()
		if !pending {
			break
		}
		btn := g.Win.FindByID(fmt.Sprintf("quiz.c%d", quiz.Answer))
		if btn == nil {
			t.Fatalf("quiz %s answer button missing", quiz.ID)
		}
		cb := btn.Bounds()
		g.Win.Click(cb.X+2, cb.Y+2)
		quizzes++
		if quizzes > 10 {
			t.Fatal("quiz loop runaway")
		}
	}
	if quizzes != 2 {
		t.Fatalf("answered %d quizzes, want 2", quizzes)
	}
	// Then the WELL DONE text popup.
	pop := g.Win.Popup()
	if pop == nil {
		t.Fatal("no popup shown after quizzes")
	}
	ok := g.Win.FindByID("popup.ok")
	if ok == nil {
		t.Fatal("popup OK missing")
	}
	b := ok.Bounds()
	g.Win.Click(b.X+2, b.Y+2)
	if g.Win.Popup() != nil {
		t.Fatal("popup not dismissed")
	}
	// Correct quiz answers added their points on top of the mission's 50.
	if got := s.State().Vars["score"]; got != 80 {
		t.Fatalf("score = %d, want 80 (50 mission + 10 + 20 quiz)", got)
	}
	if !strings.Contains(g.StatusText(), "GAME OVER") {
		t.Fatalf("status = %q", g.StatusText())
	}
}

func TestWindowTickUpdatesFrame(t *testing.T) {
	g := streetWindow(t)
	before := g.view.Frame
	for i := 0; i < 3; i++ {
		if err := g.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if g.view.Frame == before {
		t.Fatal("frame not updated by Tick")
	}
}

func TestWindowInventorySelectByClick(t *testing.T) {
	g := streetWindow(t)
	if err := g.DragToInventory(70, 60); err != nil {
		t.Fatal(err)
	}
	// Click the first inventory slot → arms the item for use.
	ib := g.inv.Bounds()
	g.Win.Click(ib.X+3, ib.Y+ib.H/2)
	if g.S.SelectedItem() != "umbrella" {
		t.Fatalf("selected = %q", g.S.SelectedItem())
	}
	if !strings.Contains(g.StatusText(), "USING umbrella") {
		t.Fatalf("status = %q", g.StatusText())
	}
}

func TestDescribe(t *testing.T) {
	g := streetWindow(t)
	d := g.Describe()
	if !strings.Contains(d, "street") || !strings.Contains(d, "umbrella") {
		t.Fatalf("describe = %q", d)
	}
}
