package experiments

import (
	"strings"
	"testing"
)

func TestFigure1Snapshot(t *testing.T) {
	f1, err := F1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1, "FIGURE 1") {
		t.Error("caption missing")
	}
	// Deterministic.
	again, err := F1()
	if err != nil {
		t.Fatal(err)
	}
	if f1 != again {
		t.Error("Figure 1 not deterministic")
	}
	if len(strings.Split(f1, "\n")) < 40 {
		t.Error("Figure 1 suspiciously small")
	}
}

func TestFigure2Snapshot(t *testing.T) {
	f2, err := F2()
	if err != nil {
		t.Fatal(err)
	}
	again, err := F2()
	if err != nil {
		t.Fatal(err)
	}
	if f2 != again {
		t.Error("Figure 2 not deterministic")
	}
	if !strings.Contains(f2, "FIGURE 2") {
		t.Error("caption missing")
	}
}

func TestE4ShapeHolds(t *testing.T) {
	out, err := E4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "effort ratio") {
		t.Errorf("E4 output:\n%s", out)
	}
	tool, pkg, err := BuildClassroomWithTool()
	if err != nil {
		t.Fatal(err)
	}
	if tool.Ops() < 20 || tool.Ops() > 80 {
		t.Errorf("tool ops = %d, outside plausible range", tool.Ops())
	}
	if len(pkg) == 0 {
		t.Error("tool-built package empty")
	}
}

func TestE5ShapeHolds(t *testing.T) {
	out, err := E5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3D/video") {
		t.Errorf("E5 output:\n%s", out)
	}
}

func TestE7SmallCohort(t *testing.T) {
	out, err := E7(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reward boost") {
		t.Errorf("E7 output:\n%s", out)
	}
}

func TestE9Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations take a few seconds")
	}
	out, err := E9()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hit-testing", "event dispatch", "undo"} {
		if !strings.Contains(out, want) {
			t.Errorf("E9 missing %q:\n%s", want, out)
		}
	}
}

func TestE10SmallFleet(t *testing.T) {
	out, err := E10(30)
	if err != nil {
		t.Fatal(err)
	}
	// Every sweep row must end in the exact-match column; the footer text
	// also says "exact", so assert on the row token specifically.
	if strings.Count(out, "| exact") != 3 || strings.Contains(out, "MISMATCH") {
		t.Errorf("E10 output:\n%s", out)
	}
}

func TestE12SmallFleet(t *testing.T) {
	out, err := E12(24)
	if err != nil {
		t.Fatal(err)
	}
	// Each remote-play row must report outcomes identical to its local-sim
	// counterpart, and both deployment shapes must appear.
	if strings.Count(out, "| = local") != 2 || strings.Contains(out, "DIVERGED") {
		t.Errorf("E12 output:\n%s", out)
	}
	for _, want := range []string{"local-sim", "remote-play"} {
		if !strings.Contains(out, want) {
			t.Errorf("E12 missing %q:\n%s", want, out)
		}
	}
}

func TestE13DeltaSync(t *testing.T) {
	out, err := E13()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cold (empty cache)", "warm (unchanged)", "delta (1-seg edit)", "dedup hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("E13 missing %q:\n%s", want, out)
		}
	}
	// The warm row is a single conditional request with zero bytes.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "warm (unchanged)") && !strings.Contains(line, "0.0%") {
			t.Errorf("warm sync not free:\n%s", line)
		}
	}
}

func TestE16SmallFaultSweep(t *testing.T) {
	out, err := E16(30)
	if err != nil {
		t.Fatal(err)
	}
	// E16 itself enforces zero failed learners and exact telemetry
	// accounting per profile (it errors otherwise); the smoke test checks
	// every condition actually ran.
	for _, want := range []string{"clean", "wifi-flaky", "partition", "zero failed learners"} {
		if !strings.Contains(out, want) {
			t.Errorf("E16 missing %q:\n%s", want, out)
		}
	}
}

func TestE14SmallChurn(t *testing.T) {
	out, err := E14(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"learners failed       : 0 of 40",
		"resumed at tick       : 9",
		"freeze + thaw + act",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E14 missing %q:\n%s", want, out)
		}
	}
}

func TestE18SmallClassroom(t *testing.T) {
	// E18's full sweep runs three cohorts through 4-second lessons; the
	// smoke test drives one small cohort through a 1-second lesson against
	// the same server and leans on e18Run's own invariant checks (renders
	// exactly equal to publications, zero lost answers, full cohort
	// participation — it errors on any violation).
	front, cleanup, err := e18Server()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	sum, err := e18Run(front, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Renders == 0 || sum.Delivered == 0 {
		t.Fatalf("degenerate run: %+v", sum)
	}
	if out := sum.String(); !strings.Contains(out, "one render per tick") {
		t.Errorf("summary lost the render invariant line:\n%s", out)
	}
}
