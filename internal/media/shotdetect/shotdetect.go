// Package shotdetect finds shot boundaries in video — the automatic
// segmentation step behind the paper's scenario editor ("video can be
// divided into scenario components by the authoring tool", §4.1).
//
// The detector uses joint color-histogram χ² distances between consecutive
// frames: a hard cut is a spike that towers over its local neighborhood; a
// gradual transition (fade/dissolve) is a sustained drift that never spikes,
// caught by comparing frames a few steps apart ("twin comparison").
// Histograms are computed in parallel across worker goroutines.
package shotdetect

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/media/raster"
)

// Source supplies frames by index. synth.Film adapts trivially; a
// playback.Video (whose FrameAt recycles its returned frame) should be
// wrapped with SerializedSource. Frames are fetched in index order from one
// goroutine, but a returned frame must remain valid while later frames are
// fetched — the detector processes frames concurrently behind the fetch.
type Source interface {
	Frames() int
	Frame(i int) (*raster.Frame, error)
}

// FuncSource adapts a closure to Source.
type FuncSource struct {
	N int
	F func(i int) (*raster.Frame, error)
}

// Frames returns the frame count.
func (s FuncSource) Frames() int { return s.N }

// Frame renders frame i.
func (s FuncSource) Frame(i int) (*raster.Frame, error) { return s.F(i) }

// SerializedSource adapts a single-goroutine frame producer — typically a
// playback.Video, whose FrameAt recycles its returned frame — into a Source
// safe for concurrent histogram workers: calls are serialized and each
// caller receives its own copy of the frame.
func SerializedSource(n int, fetch func(i int) (*raster.Frame, error)) Source {
	var mu sync.Mutex
	return FuncSource{N: n, F: func(i int) (*raster.Frame, error) {
		mu.Lock()
		defer mu.Unlock()
		f, err := fetch(i)
		if err != nil {
			return nil, err
		}
		return f.Clone(), nil
	}}
}

// Config tunes the detector. The zero value is not valid; use Defaults and
// override fields as needed.
type Config struct {
	HardThreshold    float64 // absolute χ² step needed for a hard cut
	AdaptiveRatio    float64 // step must also exceed ratio × local mean step
	Window           int     // radius of the local-mean window (frames)
	TwinRadius       int     // lookahead/lookback for gradual detection
	GradualThreshold float64 // twin χ² distance indicating a transition
	MinSceneFrames   int     // minimum spacing between boundaries
	Downsample       int     // integer frame downsample before histograms
	Workers          int     // parallel histogram workers
}

// Defaults returns the configuration tuned on the synthetic corpus (E1's
// threshold sweep is the tuning experiment).
func Defaults() Config {
	return Config{
		HardThreshold:    0.22,
		AdaptiveRatio:    3.0,
		Window:           8,
		TwinRadius:       6,
		GradualThreshold: 0.30,
		MinSceneFrames:   8,
		Downsample:       2,
		Workers:          1,
	}
}

func (c Config) validate() error {
	if c.HardThreshold <= 0 || c.GradualThreshold <= 0 {
		return errors.New("shotdetect: thresholds must be positive")
	}
	if c.Window < 1 || c.TwinRadius < 1 {
		return errors.New("shotdetect: window and twin radius must be >= 1")
	}
	if c.MinSceneFrames < 1 {
		return errors.New("shotdetect: MinSceneFrames must be >= 1")
	}
	if c.Downsample < 1 {
		return errors.New("shotdetect: Downsample must be >= 1")
	}
	return nil
}

// Boundary is one detected shot change.
type Boundary struct {
	Frame   int     // first frame of the new shot
	Gradual bool    // true when detected as a fade/dissolve
	Score   float64 // detector confidence (χ² magnitude)
}

// Detect runs shot detection over the source.
func Detect(src Source, cfg Config) ([]Boundary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := src.Frames()
	if n < 2 {
		return nil, nil
	}
	hists, err := histograms(src, cfg)
	if err != nil {
		return nil, err
	}
	// Step distances: d[i] = distance between frames i-1 and i, i in [1,n).
	d := make([]float64, n)
	for i := 1; i < n; i++ {
		d[i] = hists[i-1].ChiSquare(hists[i])
	}
	var bounds []Boundary
	// Hard cuts: absolute + adaptive test.
	for i := 1; i < n; i++ {
		if d[i] < cfg.HardThreshold {
			continue
		}
		if d[i] < cfg.AdaptiveRatio*localMean(d, i, cfg.Window) {
			continue
		}
		bounds = append(bounds, Boundary{Frame: i, Score: d[i]})
	}
	// Gradual transitions: twin comparison over ±TwinRadius.
	L := cfg.TwinRadius
	td := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := i-L, i+L
		if a < 0 {
			a = 0
		}
		if b >= n {
			b = n - 1
		}
		td[i] = hists[a].ChiSquare(hists[b])
	}
	inRun := false
	runStart, runPeak := 0, 0
	flushRun := func(end int) {
		// Center of the run; skip if a hard cut explains it.
		c := runPeak
		for _, hb := range bounds {
			if abs(hb.Frame-c) <= L+1 {
				return
			}
		}
		bounds = append(bounds, Boundary{Frame: c, Gradual: true, Score: td[c]})
	}
	for i := 0; i < n; i++ {
		if td[i] >= cfg.GradualThreshold && d[i] < cfg.HardThreshold {
			if !inRun {
				inRun, runStart, runPeak = true, i, i
			}
			if td[i] > td[runPeak] {
				runPeak = i
			}
		} else if inRun {
			if i-runStart >= L/2 { // require a sustained drift
				flushRun(i)
			}
			inRun = false
		}
	}
	if inRun && n-runStart >= L/2 {
		flushRun(n)
	}
	return dedupe(bounds, cfg.MinSceneFrames), nil
}

// histograms computes all frame histograms. Frames are fetched sequentially
// on one goroutine — sources backed by a seeking decoder (playback.Video)
// stay on their sequential fast path instead of ping-ponging between workers
// and re-rolling from keyframes — and only the downsample/histogram math
// fans out. Frames handed to workers must stay valid after the next Frame
// call; recycling producers adapt via SerializedSource, which clones.
func histograms(src Source, cfg Config) ([]raster.Histogram, error) {
	n := src.Frames()
	hists := make([]raster.Histogram, n)
	errs := make([]error, n)
	nw := cfg.Workers
	if nw < 1 {
		nw = 1
	}
	if nw > n {
		nw = n
	}
	type item struct {
		i int
		f *raster.Frame
	}
	work := make(chan item, 2*nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				f := it.f
				if cfg.Downsample > 1 {
					f = f.Downsample(cfg.Downsample)
				}
				hists[it.i] = f.Histogram()
			}
		}()
	}
	for i := 0; i < n; i++ {
		f, err := src.Frame(i)
		if err != nil {
			errs[i] = err
			continue
		}
		work <- item{i, f}
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shotdetect: frame %d: %w", i, err)
		}
	}
	return hists, nil
}

// localMean averages the step distances in a window around i, excluding i
// itself — the "how turbulent is this neighborhood anyway" baseline.
func localMean(d []float64, i, w int) float64 {
	lo, hi := i-w, i+w
	if lo < 1 {
		lo = 1
	}
	if hi >= len(d) {
		hi = len(d) - 1
	}
	var sum float64
	var n int
	for j := lo; j <= hi; j++ {
		if j == i {
			continue
		}
		sum += d[j]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// dedupe sorts boundaries and enforces a minimum spacing, keeping the
// higher-scoring boundary when two crowd each other.
func dedupe(bs []Boundary, minGap int) []Boundary {
	if len(bs) == 0 {
		return nil
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].Frame < bs[j].Frame })
	out := bs[:1]
	for _, b := range bs[1:] {
		last := &out[len(out)-1]
		if b.Frame-last.Frame < minGap {
			if b.Score > last.Score {
				*last = b
			}
			continue
		}
		out = append(out, b)
	}
	return out
}

// Segment is a detected scenario candidate: a frame range [Start, End).
type Segment struct {
	Start, End int
}

// SegmentsFromBoundaries converts boundaries into contiguous segments
// covering [0, frameCount).
func SegmentsFromBoundaries(bs []Boundary, frameCount int) []Segment {
	if frameCount <= 0 {
		return nil
	}
	segs := make([]Segment, 0, len(bs)+1)
	prev := 0
	for _, b := range bs {
		if b.Frame <= prev || b.Frame >= frameCount {
			continue
		}
		segs = append(segs, Segment{Start: prev, End: b.Frame})
		prev = b.Frame
	}
	segs = append(segs, Segment{Start: prev, End: frameCount})
	return segs
}

// Metrics summarizes detection quality against ground truth.
type Metrics struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// Score matches detected boundaries against ground-truth cut frames with
// the given tolerance (in frames). Each truth cut matches at most one
// detection and vice versa.
func Score(detected []Boundary, truth []int, tol int) Metrics {
	usedDet := make([]bool, len(detected))
	var m Metrics
	for _, t := range truth {
		matched := false
		for i, b := range detected {
			if usedDet[i] {
				continue
			}
			if abs(b.Frame-t) <= tol {
				usedDet[i] = true
				matched = true
				break
			}
		}
		if matched {
			m.TP++
		} else {
			m.FN++
		}
	}
	for _, u := range usedDet {
		if !u {
			m.FP++
		}
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
