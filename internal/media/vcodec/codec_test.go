package vcodec

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/media/raster"
	"repro/internal/media/synth"
)

func testFilm(t testing.TB) *synth.Film {
	t.Helper()
	return synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 12,
		Shots: 3, MinShotFrames: 8, MaxShotFrames: 12,
		NoiseAmp: 1, Seed: 99,
	})
}

func encCfg(w, h int) Config {
	return Config{Width: w, Height: h, QStep: 4, GOP: 8, SearchRange: 3, Workers: 2}
}

func TestDCTRoundTrip(t *testing.T) {
	// The fixed-point butterfly is not exact like the old float64 basis
	// transform, but a full-range round trip must stay within ±1 — the same
	// order as the quantizer's own rounding at qstep 1.
	var src, freq, back [64]int32
	for i := range src {
		src[i] = int32((i*37)%256) - 128
	}
	fdct8x8(&src, &freq)
	idct8x8(&freq, &back)
	for i := range src {
		if d := src[i] - back[i]; d > 1 || d < -1 {
			t.Fatalf("DCT round trip error at %d: %d vs %d", i, src[i], back[i])
		}
	}
}

func TestDCTRoundTripResidualRange(t *testing.T) {
	// Residual blocks span ±255, twice the intra range; the integer
	// transform must not overflow or lose accuracy there.
	var src, freq, back [64]int32
	for i := range src {
		if i%2 == 0 {
			src[i] = 255 - int32(i)
		} else {
			src[i] = -255 + int32(3*i)%200
		}
	}
	fdct8x8(&src, &freq)
	idct8x8(&freq, &back)
	for i := range src {
		if d := src[i] - back[i]; d > 1 || d < -1 {
			t.Fatalf("residual round trip error at %d: %d vs %d", i, src[i], back[i])
		}
	}
}

func TestDCTConstantBlockIsDCOnly(t *testing.T) {
	var src, freq [64]int32
	for i := range src {
		src[i] = 42
	}
	fdct8x8(&src, &freq)
	// Coefficients are 8× the orthonormal DCT: DC = 8 * (42*8) = 2688.
	if freq[0] != 42*8<<coefScaleBits {
		t.Errorf("DC = %d, want %d", freq[0], 42*8<<coefScaleBits)
	}
	for i := 1; i < 64; i++ {
		if freq[i] != 0 {
			t.Fatalf("AC coefficient %d = %d, want 0", i, freq[i])
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, p := range zigzag {
		if p < 0 || p >= 64 || seen[p] {
			t.Fatalf("zigzag invalid at position %d", p)
		}
		seen[p] = true
	}
	// Starts at DC, ends at the highest frequency.
	if zigzag[0] != 0 || zigzag[63] != 63 {
		t.Errorf("zigzag endpoints %d..%d", zigzag[0], zigzag[63])
	}
	if zigzag[1] != 1 || zigzag[2] != 8 {
		t.Errorf("zigzag start order wrong: %v", zigzag[:4])
	}
}

func TestQuantizeRoundTripLowQ(t *testing.T) {
	// Coefficients carry coefScaleBits fractional bits, so a qstep-1 round
	// trip may be off by at most half a true unit (half of 1<<coefScaleBits).
	var coefs [64]int32
	for i := range coefs {
		coefs[i] = int32(i*7-200) << coefScaleBits
	}
	var levels [64]int32
	quantize(&coefs, 1, &levels)
	var back [64]int32
	dequantize(&levels, 1, &back)
	for i := range coefs {
		d := coefs[i] - back[i]
		if d < 0 {
			d = -d
		}
		if d > 1<<(coefScaleBits-1) {
			t.Fatalf("q=1 round trip error %d at %d", coefs[i]-back[i], i)
		}
	}
}

func TestQuantizeHalfStepDCExact(t *testing.T) {
	// The DC quantizer step is qstep/2; with odd qsteps that is a half-unit
	// value the fixed-point coefficient scale must represent exactly.
	dcDiv, acDiv := quantDivisors(5)
	if dcDiv != 5<<coefScaleBits/2 {
		t.Errorf("dc divisor = %d, want %d", dcDiv, 5<<coefScaleBits/2)
	}
	if acDiv != 5<<coefScaleBits {
		t.Errorf("ac divisor = %d, want %d", acDiv, 5<<coefScaleBits)
	}
	// qstep 1 clamps the DC step up to one full unit.
	dcDiv, _ = quantDivisors(1)
	if dcDiv != 1<<coefScaleBits {
		t.Errorf("q=1 dc divisor = %d, want %d", dcDiv, 1<<coefScaleBits)
	}
}

func TestLevelsCodingRoundTrip(t *testing.T) {
	err := quick.Check(func(vals [8]int16, positions [8]uint8) bool {
		var levels [64]int32
		for i := range vals {
			levels[positions[i]%64] = int32(vals[i])
		}
		var w byteWriter
		writeLevels(&w, &levels)
		var got [64]int32
		r := &byteReader{buf: w.buf}
		if err := readLevels(r, &got); err != nil {
			return false
		}
		return got == levels && r.remaining() == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLevelsAllZeroIsOneByte(t *testing.T) {
	var levels [64]int32
	var w byteWriter
	writeLevels(&w, &levels)
	if len(w.buf) != 1 {
		t.Errorf("all-zero block coded in %d bytes, want 1", len(w.buf))
	}
}

func TestReadLevelsRejectsCorrupt(t *testing.T) {
	// One pair whose zero-run uvarint is 1<<63: int(run) would wrap negative
	// without the explicit run bound.
	hugeRun := append([]byte{1}, binary.AppendUvarint(nil, 1<<63)...)
	hugeRun = append(hugeRun, 2)
	cases := [][]byte{
		{},               // empty
		{200},            // pair count > 64
		{1},              // missing pair
		{1, 70, 2},       // run beyond block
		{2, 0, 2, 63, 2}, // second pair out of range
		{1, 0, 0},        // explicit zero level
		hugeRun,          // 64-bit run overflows int32 index
	}
	for i, c := range cases {
		var levels [64]int32
		if err := readLevels(&byteReader{buf: c}, &levels); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
}

func TestYCbCrRoundTripApprox(t *testing.T) {
	f := raster.New(33, 17) // odd size exercises padding + subsampling
	f.FillVGradient(raster.RGB{R: 200, G: 60, B: 40}, raster.RGB{R: 20, G: 80, B: 180})
	g := toYCbCr(f).toFrame()
	if g.W != f.W || g.H != f.H {
		t.Fatalf("size changed: %dx%d", g.W, g.H)
	}
	// 4:2:0 is lossy in chroma; luma should survive well. Allow moderate MAD.
	if mad := raster.MAD(f, g); mad > 12 {
		t.Errorf("YCbCr 4:2:0 round trip MAD = %f, too lossy", mad)
	}
}

func TestEncodeDecodeIntraQuality(t *testing.T) {
	film := testFilm(t)
	src := film.Render(0)
	enc, err := NewEncoder(Config{Width: src.W, Height: src.H, QStep: 2, GOP: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := enc.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Type != IFrame {
		t.Fatalf("first frame type = %v, want I", pkt.Type)
	}
	dec := NewDecoder(2)
	got, err := dec.Decode(pkt.Data)
	if err != nil {
		t.Fatal(err)
	}
	if p := raster.PSNR(src, got); p < 30 {
		t.Errorf("I-frame PSNR = %.1f dB at q=2, want >= 30", p)
	}
}

func TestGOPPattern(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	for i := 0; i < 20; i++ {
		pkt, err := enc.Encode(film.Render(i % film.FrameCount()))
		if err != nil {
			t.Fatal(err)
		}
		wantI := i%8 == 0
		if (pkt.Type == IFrame) != wantI {
			t.Fatalf("frame %d type = %v, want I=%v", i, pkt.Type, wantI)
		}
		if pkt.Index != i {
			t.Fatalf("packet index = %d, want %d", pkt.Index, i)
		}
	}
}

func TestPFramesSmallerOnStaticContent(t *testing.T) {
	// A static scene: P-frames should collapse to mostly skip blocks.
	f := raster.New(96, 64)
	f.FillVGradient(raster.Blue, raster.Black)
	enc, _ := NewEncoder(encCfg(96, 64))
	i0, _ := enc.Encode(f)
	p1, _ := enc.Encode(f)
	if len(p1.Data) >= len(i0.Data)/4 {
		t.Errorf("static P-frame %dB vs I-frame %dB: P should be <25%%", len(p1.Data), len(i0.Data))
	}
}

func TestDecodeSequenceMatchesEncoderReference(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	dec := NewDecoder(1)
	for i := 0; i < 16; i++ {
		src := film.Render(i)
		pkt, err := enc.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(pkt.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if p := raster.PSNR(src, got); p < 24 {
			t.Errorf("frame %d PSNR %.1f dB too low (drift?)", i, p)
		}
	}
}

func TestDecoderWorkerCountIrrelevant(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	var pkts []Packet
	for i := 0; i < 10; i++ {
		p, _ := enc.Encode(film.Render(i))
		pkts = append(pkts, p)
	}
	d1, d4 := NewDecoder(1), NewDecoder(4)
	for i, p := range pkts {
		a, err1 := d1.Decode(p.Data)
		b, err2 := d4.Decode(p.Data)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !a.Equal(b) {
			t.Fatalf("frame %d differs between 1 and 4 decode workers", i)
		}
	}
}

func TestEncoderWorkerCountIrrelevant(t *testing.T) {
	film := testFilm(t)
	cfg := encCfg(96, 64)
	cfg.Workers = 1
	e1, _ := NewEncoder(cfg)
	cfg.Workers = 4
	e4, _ := NewEncoder(cfg)
	for i := 0; i < 6; i++ {
		src := film.Render(i)
		p1, _ := e1.Encode(src)
		p4, _ := e4.Encode(src)
		if string(p1.Data) != string(p4.Data) {
			t.Fatalf("frame %d bitstream differs across encoder worker counts", i)
		}
	}
}

func TestPFrameWithoutReferenceFails(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	enc.Encode(film.Render(0))           // I
	pkt, _ := enc.Encode(film.Render(1)) // P
	dec := NewDecoder(1)
	if _, err := dec.Decode(pkt.Data); err == nil {
		t.Fatal("decoding P-frame without reference should fail")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	dec := NewDecoder(1)
	for _, data := range [][]byte{
		nil,
		[]byte("X"),
		[]byte("JUNKJUNKJUNK"),
		[]byte("TKV1\x07morejunk"), // bad frame type
	} {
		if _, err := dec.Decode(data); err == nil {
			t.Errorf("garbage %q accepted", data)
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	pkt, _ := enc.Encode(film.Render(0))
	for _, n := range []int{5, 10, len(pkt.Data) / 2, len(pkt.Data) - 1} {
		dec := NewDecoder(2)
		if _, err := dec.Decode(pkt.Data[:n]); err == nil {
			t.Errorf("truncated packet (%d bytes) accepted", n)
		}
	}
}

func TestHigherQLowerQualitySmallerSize(t *testing.T) {
	film := testFilm(t)
	src := film.Render(4)
	var prevSize = 1 << 30
	var prevPSNR = math.Inf(1)
	for _, q := range []int{2, 6, 16} {
		enc, _ := NewEncoder(Config{Width: src.W, Height: src.H, QStep: q, GOP: 1, Workers: 1})
		pkt, _ := enc.Encode(src)
		dec := NewDecoder(1)
		rec, err := dec.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		p := raster.PSNR(src, rec)
		if len(pkt.Data) >= prevSize {
			t.Errorf("q=%d size %d not smaller than previous %d", q, len(pkt.Data), prevSize)
		}
		if p >= prevPSNR {
			t.Errorf("q=%d PSNR %.1f not lower than previous %.1f", q, p, prevPSNR)
		}
		prevSize, prevPSNR = len(pkt.Data), p
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 10, QStep: 4, GOP: 5},
		{Width: 10, Height: 10, QStep: 0, GOP: 5},
		{Width: 10, Height: 10, QStep: 400, GOP: 5},
		{Width: 10, Height: 10, QStep: 4, GOP: 0},
		{Width: 10, Height: 10, QStep: 4, GOP: 5, SearchRange: 9},
		{Width: 10, Height: 10, QStep: 4, GOP: 5, Workers: MaxWorkers + 1},
		{Width: maxDim + 8, Height: 10, QStep: 4, GOP: 5}, // decoder would reject its own stream
		{Width: 10, Height: maxDim + 8, QStep: 4, GOP: 5},
	}
	for i, c := range bad {
		if _, err := NewEncoder(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestWorkerDefaultsAndClamp(t *testing.T) {
	// <=0 means all CPUs; absurd counts are clamped to MaxWorkers. The
	// decoder mirrors the encoder's clamping since it has no validate step.
	for _, n := range []int{-1, 0, 1, 7, MaxWorkers, MaxWorkers + 1, 100000} {
		got := normWorkers(n)
		if got < 1 || got > MaxWorkers {
			t.Errorf("normWorkers(%d) = %d, out of [1,%d]", n, got, MaxWorkers)
		}
		if n >= 1 && n <= MaxWorkers && got != n {
			t.Errorf("normWorkers(%d) = %d, want unchanged", n, got)
		}
	}
	if d := NewDecoder(100000); d.workers != MaxWorkers {
		t.Errorf("NewDecoder(100000) workers = %d, want %d", d.workers, MaxWorkers)
	}
	enc, err := NewEncoder(Config{Width: 16, Height: 16, QStep: 4, GOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	if enc.cfg.Workers < 1 || enc.cfg.Workers > MaxWorkers {
		t.Errorf("default encoder workers = %d, out of [1,%d]", enc.cfg.Workers, MaxWorkers)
	}
}

func TestEncoderDecoderCloseStillUsable(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	dec := NewDecoder(4)
	p0, err := enc.Encode(film.Render(0))
	if err != nil {
		t.Fatal(err)
	}
	enc.Close()
	dec.Close()
	p1, err := enc.Encode(film.Render(1)) // inline fallback after Close
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Packet{p0, p1} {
		if _, err := dec.Decode(p.Data); err != nil {
			t.Fatal(err)
		}
	}
	enc.Close() // idempotent
	dec.Close()
}

func TestDecodeIntoRecyclesBuffer(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	dec := NewDecoder(1)
	var f raster.Frame
	var firstPix []uint8
	for i := 0; i < 6; i++ {
		pkt, err := enc.Encode(film.Render(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.DecodeInto(&f, pkt.Data); err != nil {
			t.Fatal(err)
		}
		if f.W != 96 || f.H != 64 {
			t.Fatalf("frame %d size %dx%d", i, f.W, f.H)
		}
		if i == 0 {
			firstPix = f.Pix[:1]
		} else if &firstPix[0] != &f.Pix[0] {
			t.Fatal("DecodeInto reallocated the pixel buffer")
		}
	}
}

func TestDecodeRejectsHugeFrameTinyPayload(t *testing.T) {
	// A few header bytes claiming a 16384×16384 frame must be rejected
	// before the decoder allocates gigabytes for the image planes.
	var w byteWriter
	w.bytes([]byte(magic))
	w.u8(uint8(IFrame))
	w.uvarint(16384)
	w.uvarint(16384)
	w.uvarint(4) // qstep
	w.u8(0)      // search range
	w.uvarint(2048)
	if _, err := NewDecoder(1).Decode(w.buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tiny huge-frame packet: err = %v, want ErrCorrupt", err)
	}
}

func TestResetRecyclesImageBuffers(t *testing.T) {
	// Seek-heavy playback calls Reset before every backward jump; with the
	// two-slot free list, steady-state Reset+decode performs no image
	// allocations.
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	pkt, err := enc.Encode(film.Render(0)) // I-frame
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(1)
	for i := 0; i < 3; i++ { // warm up ref + free list
		if err := dec.Advance(pkt.Data); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		dec.Reset()
		if err := dec.Advance(pkt.Data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 1 {
		t.Errorf("Reset+Advance allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAdvanceMatchesDecode(t *testing.T) {
	// Advancing through P-frames then decoding must land on the same pixels
	// as decoding every frame.
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	var pkts []Packet
	for i := 0; i < 8; i++ {
		p, err := enc.Encode(film.Render(i))
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	full := NewDecoder(1)
	var want *raster.Frame
	for _, p := range pkts {
		f, err := full.Decode(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		want = f
	}
	skip := NewDecoder(1)
	for _, p := range pkts[:len(pkts)-1] {
		if err := skip.Advance(p.Data); err != nil {
			t.Fatal(err)
		}
	}
	got, err := skip.Decode(pkts[len(pkts)-1].Data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("Advance path diverged from Decode path")
	}
}

func TestEncodeWrongSizeFrame(t *testing.T) {
	enc, _ := NewEncoder(encCfg(96, 64))
	if _, err := enc.Encode(raster.New(32, 32)); err == nil {
		t.Fatal("wrong-size frame accepted")
	}
}

func TestEncoderReset(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	enc.Encode(film.Render(0))
	enc.Encode(film.Render(1))
	enc.Reset()
	pkt, _ := enc.Encode(film.Render(2))
	if pkt.Type != IFrame || pkt.Index != 0 {
		t.Fatalf("after Reset got %v index %d, want I index 0", pkt.Type, pkt.Index)
	}
}

func TestParseHeader(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	i0, _ := enc.Encode(film.Render(0))
	p1, _ := enc.Encode(film.Render(1))
	if ft, err := ParseHeader(i0.Data); err != nil || ft != IFrame {
		t.Errorf("ParseHeader(I) = %v, %v", ft, err)
	}
	if ft, err := ParseHeader(p1.Data); err != nil || ft != PFrame {
		t.Errorf("ParseHeader(P) = %v, %v", ft, err)
	}
	if _, err := ParseHeader([]byte("nope")); err == nil {
		t.Error("ParseHeader accepted garbage")
	}
}

func TestMVPacking(t *testing.T) {
	for dx := -8; dx <= 7; dx++ {
		for dy := -8; dy <= 7; dy++ {
			gx, gy := unpackMV(packMV(dx, dy))
			if gx != dx || gy != dy {
				t.Fatalf("MV (%d,%d) round-tripped to (%d,%d)", dx, dy, gx, gy)
			}
		}
	}
}

func TestOddSizeFrames(t *testing.T) {
	// Non-multiple-of-8 and non-multiple-of-16 dimensions must round trip.
	for _, dims := range [][2]int{{37, 23}, {8, 8}, {9, 9}, {100, 50}} {
		w, h := dims[0], dims[1]
		src := raster.New(w, h)
		src.FillVGradient(raster.Green, raster.Magenta)
		src.FillCircle(w/2, h/2, min(w, h)/3, raster.Yellow)
		enc, err := NewEncoder(Config{Width: w, Height: h, QStep: 2, GOP: 1, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := enc.Encode(src)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		rec, err := NewDecoder(2).Decode(pkt.Data)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		if rec.W != w || rec.H != h {
			t.Fatalf("%dx%d: decoded size %dx%d", w, h, rec.W, rec.H)
		}
		// On this maximally saturated pattern the 4:2:0 chroma subsampling
		// dominates the loss; the right bar is "within 1.5 dB of the pure
		// colorspace round trip", not an absolute PSNR.
		bound := raster.PSNR(src, toYCbCr(src).toFrame())
		if p := raster.PSNR(src, rec); p < bound-1.5 {
			t.Errorf("%dx%d: PSNR %.1f dB, want within 1.5 dB of 4:2:0 bound %.1f", w, h, p, bound)
		}
	}
}
