// Manifest: the chunk-level description of a package. A manifest lists,
// per section and in payload order, the content addresses (SHA-256) and
// sizes of the chunks the section's bytes are made of. Video-section
// chunks are cut at segment (chapter keyframe) boundaries, so two courses
// sharing synthesized footage produce byte-identical segment chunks and a
// content-addressed store keeps one copy; a course edit changes only the
// chunks whose bytes changed, which is what makes delta sync cheap.
//
// The manifest is itself a section of the package (SectionManifest),
// listed in the manifest as a placeholder entry with no chunks: assembly
// substitutes the manifest's own encoding there, which keeps the format
// self-describing without the circularity of a manifest hashing itself.
package gamepack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/blobstore"
	"repro/internal/media/container"
)

const (
	manifestMagic   = "TKMF"
	manifestVersion = 1

	// maxManifestSections/maxSectionChunks/maxManifestPayload bound
	// hostile manifests before any allocation is sized from their claims
	// (maxManifestPayload matches the format's 1<<31 section bound, so a
	// small lying manifest cannot make a client attempt a huge
	// AssembleSection allocation).
	maxManifestSections = 64
	maxSectionChunks    = 1 << 20
	maxManifestPayload  = 1 << 31
)

// DefaultChunkSize caps a single chunk. Segment-aligned cuts come first;
// oversized regions are split at this size so one huge segment does not
// defeat range reuse.
const DefaultChunkSize = 64 << 10

// ErrBadManifest reports a malformed manifest blob. Every ParseManifest
// rejection wraps it (mirroring container.ParseHead's typed errors).
var ErrBadManifest = errors.New("gamepack: malformed manifest")

// ErrNoManifest reports a package built before the chunk store existed.
var ErrNoManifest = errors.New("gamepack: package has no manifest section")

// ChunkRef addresses one chunk of a section payload.
type ChunkRef struct {
	Hash blobstore.Hash
	Size int
}

// SectionChunks is one section's ordered chunk list. Chunks concatenated
// in order reproduce the section payload exactly. The manifest section
// itself appears with an empty chunk list (see package comment).
type SectionChunks struct {
	Name   string
	Chunks []ChunkRef
}

// PayloadSize sums the section's chunk sizes.
func (sc *SectionChunks) PayloadSize() int {
	n := 0
	for _, c := range sc.Chunks {
		n += c.Size
	}
	return n
}

// Manifest describes a whole package as ordered, content-addressed
// chunks, in blob section order.
type Manifest struct {
	Sections []SectionChunks
}

// Section finds a section's chunk list, or nil.
func (m *Manifest) Section(name string) *SectionChunks {
	for i := range m.Sections {
		if m.Sections[i].Name == name {
			return &m.Sections[i]
		}
	}
	return nil
}

// Encode serializes the manifest:
//
//	magic "TKMF" | version | section count
//	per section: name len | name | chunk count | per chunk: size | 32-byte hash
func (m *Manifest) Encode() []byte {
	var buf []byte
	buf = append(buf, manifestMagic...)
	buf = append(buf, manifestVersion)
	buf = binary.AppendUvarint(buf, uint64(len(m.Sections)))
	for _, sc := range m.Sections {
		buf = binary.AppendUvarint(buf, uint64(len(sc.Name)))
		buf = append(buf, sc.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(sc.Chunks)))
		for _, c := range sc.Chunks {
			buf = binary.AppendUvarint(buf, uint64(c.Size))
			buf = append(buf, c.Hash[:]...)
		}
	}
	return buf
}

// ParseManifest decodes and validates a manifest blob. All rejections
// wrap ErrBadManifest.
func ParseManifest(data []byte) (*Manifest, error) {
	pos := 0
	uv := func(what string) (int, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 || v > 1<<31 {
			return 0, fmt.Errorf("%w: bad %s varint", ErrBadManifest, what)
		}
		pos += n
		return int(v), nil
	}
	if len(data) < 5 || string(data[:4]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	if data[4] != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadManifest, data[4])
	}
	pos = 5
	nsec, err := uv("section count")
	if err != nil {
		return nil, err
	}
	if nsec == 0 || nsec > maxManifestSections {
		return nil, fmt.Errorf("%w: %d sections", ErrBadManifest, nsec)
	}
	m := &Manifest{}
	seen := map[string]bool{}
	claimed := 0
	for i := 0; i < nsec; i++ {
		nameLen, err := uv("name length")
		if err != nil {
			return nil, err
		}
		if nameLen == 0 || nameLen > 256 {
			return nil, fmt.Errorf("%w: section name of %d bytes", ErrBadManifest, nameLen)
		}
		if pos+nameLen > len(data) {
			return nil, fmt.Errorf("%w: truncated section name", ErrBadManifest)
		}
		sc := SectionChunks{Name: string(data[pos : pos+nameLen])}
		pos += nameLen
		if seen[sc.Name] {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrBadManifest, sc.Name)
		}
		seen[sc.Name] = true
		nchunks, err := uv("chunk count")
		if err != nil {
			return nil, err
		}
		if nchunks > maxSectionChunks {
			return nil, fmt.Errorf("%w: %d chunks", ErrBadManifest, nchunks)
		}
		for j := 0; j < nchunks; j++ {
			size, err := uv("chunk size")
			if err != nil {
				return nil, err
			}
			if size == 0 {
				return nil, fmt.Errorf("%w: empty chunk", ErrBadManifest)
			}
			if claimed += size; claimed > maxManifestPayload {
				return nil, fmt.Errorf("%w: claims over %d payload bytes", ErrBadManifest, maxManifestPayload)
			}
			if pos+blobstore.HashSize > len(data) {
				return nil, fmt.Errorf("%w: truncated chunk hash", ErrBadManifest)
			}
			var c ChunkRef
			copy(c.Hash[:], data[pos:pos+blobstore.HashSize])
			c.Size = size
			pos += blobstore.HashSize
			sc.Chunks = append(sc.Chunks, c)
		}
		m.Sections = append(m.Sections, sc)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadManifest, len(data)-pos)
	}
	return m, nil
}

// ChunkSet returns every distinct chunk with its size.
func (m *Manifest) ChunkSet() map[blobstore.Hash]int {
	out := map[blobstore.Hash]int{}
	for _, sc := range m.Sections {
		for _, c := range sc.Chunks {
			out[c.Hash] = c.Size
		}
	}
	return out
}

// SectionLoc is one section's payload location within the assembled blob.
type SectionLoc struct {
	Name      string
	Off, Size int
}

// Layout computes, without any chunk bytes, where each section's payload
// lands in the assembled blob and the blob's total size. It exists so a
// delta-syncing client can plan ranged access from the manifest alone.
func (m *Manifest) Layout() ([]SectionLoc, int) {
	manSize := len(m.Encode())
	pos := 5 // magic + version
	pos += uvarintLen(uint64(len(m.Sections)))
	locs := make([]SectionLoc, len(m.Sections))
	for i, sc := range m.Sections {
		size := sc.PayloadSize()
		if sc.Name == SectionManifest && len(sc.Chunks) == 0 {
			size = manSize
		}
		pos += uvarintLen(uint64(len(sc.Name))) + len(sc.Name)
		pos += uvarintLen(uint64(size))
		pos += 4 // crc
		locs[i] = SectionLoc{Name: sc.Name, Off: pos, Size: size}
		pos += size
	}
	return locs, pos
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AssembleSection rebuilds one section's payload by fetching its chunks.
func (sc *SectionChunks) AssembleSection(get func(blobstore.Hash) ([]byte, error)) ([]byte, error) {
	payload := make([]byte, 0, sc.PayloadSize())
	for _, c := range sc.Chunks {
		data, err := get(c.Hash)
		if err != nil {
			return nil, fmt.Errorf("gamepack: section %q chunk %s: %w", sc.Name, c.Hash, err)
		}
		if len(data) != c.Size {
			return nil, fmt.Errorf("%w: section %q chunk %s is %d bytes, manifest says %d",
				ErrBadManifest, sc.Name, c.Hash, len(data), c.Size)
		}
		payload = append(payload, data...)
	}
	return payload, nil
}

// Assemble rebuilds the complete package blob from chunks. Because
// section framing (varints, CRCs) is recomputed deterministically, the
// result is byte-identical to the blob the manifest was derived from.
func (m *Manifest) Assemble(get func(blobstore.Hash) ([]byte, error)) ([]byte, error) {
	secs := make([]section, len(m.Sections))
	for i := range m.Sections {
		sc := &m.Sections[i]
		if sc.Name == SectionManifest && len(sc.Chunks) == 0 {
			secs[i] = section{SectionManifest, m.Encode()}
			continue
		}
		payload, err := sc.AssembleSection(get)
		if err != nil {
			return nil, err
		}
		secs[i] = section{sc.Name, payload}
	}
	return assemble(secs), nil
}

// --- chunking ---------------------------------------------------------------

// chunkFlat splits a payload into maxSize chunks with no interior cuts.
func chunkFlat(payload []byte, maxSize int) []ChunkRef {
	return chunkAt(payload, nil, maxSize)
}

// chunkAt splits payload at every cut offset (sorted, within range) and
// additionally at maxSize within each region.
func chunkAt(payload []byte, cuts []int, maxSize int) []ChunkRef {
	var out []ChunkRef
	prev := 0
	emit := func(to int) {
		for prev < to {
			end := prev + maxSize
			if end > to {
				end = to
			}
			out = append(out, ChunkRef{Hash: blobstore.Sum(payload[prev:end]), Size: end - prev})
			prev = end
		}
	}
	for _, cut := range cuts {
		if cut <= prev || cut >= len(payload) {
			continue
		}
		emit(cut)
	}
	emit(len(payload))
	return out
}

// chunkVideo cuts a TKVC payload at its head/data boundary and at each
// chapter's keyframe-aligned start, so segments shared across courses
// yield identical chunks wherever they sit in their respective films.
func chunkVideo(video []byte, maxSize int) ([]ChunkRef, error) {
	head, err := container.ParseHead(video)
	if err != nil {
		return nil, err
	}
	cuts := []int{}
	for _, ch := range head.Chapters() {
		k, err := head.KeyframeAtOrBefore(ch.Start)
		if err != nil {
			return nil, err
		}
		lo, _, err := head.ByteRange(k, ch.End)
		if err != nil {
			return nil, err
		}
		cuts = append(cuts, lo)
	}
	// The head region [0, dataStart) is its own chunk run: project edits
	// that only re-index frames do not dirty segment chunks.
	lo, _, err := head.ByteRange(0, 1)
	if err != nil {
		return nil, err
	}
	cuts = append(cuts, lo)
	sort.Ints(cuts)
	return chunkAt(video, cuts, maxSize), nil
}

// manifestFor chunks the given sections (video sections — every quality
// tier — segment-aligned) and, when withSelf is set, inserts the
// manifest's own placeholder entry immediately before the first video
// section (matching Build's and BuildLadder's layouts).
func manifestFor(secs []section, withSelf bool) (*Manifest, error) {
	m := &Manifest{}
	placed := false
	for _, s := range secs {
		var chunks []ChunkRef
		if _, isVideo := VideoSectionTier(s.name); isVideo {
			if withSelf && !placed {
				m.Sections = append(m.Sections, SectionChunks{Name: SectionManifest})
				placed = true
			}
			var err error
			if chunks, err = chunkVideo(s.data, DefaultChunkSize); err != nil {
				return nil, fmt.Errorf("gamepack: chunking video section %q: %w", s.name, err)
			}
		} else {
			chunks = chunkFlat(s.data, DefaultChunkSize)
		}
		m.Sections = append(m.Sections, SectionChunks{Name: s.name, Chunks: chunks})
	}
	return m, nil
}

// DepositChunks splits a package blob into its manifest's chunks and
// deposits each into a store (dedup hits are free), returning the
// manifest. It is how publishers seed a store without serving: the blob
// can be dropped afterwards and consumers open the course by manifest.
func DepositChunks(blob []byte, store *blobstore.Store) (*Manifest, error) {
	man, err := ManifestOf(blob)
	if err != nil {
		return nil, err
	}
	secs, err := Sections(blob)
	if err != nil {
		return nil, err
	}
	for _, sc := range man.Sections {
		if sc.Name == SectionManifest && len(sc.Chunks) == 0 {
			continue // placeholder: the manifest is re-encoded at assembly
		}
		loc, ok := secs[sc.Name]
		if !ok {
			return nil, fmt.Errorf("%w: manifest names missing section %q", ErrBadManifest, sc.Name)
		}
		off := loc[0]
		for _, c := range sc.Chunks {
			if off+c.Size > loc[0]+loc[1] {
				return nil, fmt.Errorf("%w: section %q chunks overflow payload", ErrBadManifest, sc.Name)
			}
			if _, _, err := store.Put(blob[off : off+c.Size]); err != nil {
				return nil, err
			}
			off += c.Size
		}
		if off != loc[0]+loc[1] {
			return nil, fmt.Errorf("%w: section %q chunks do not tile payload", ErrBadManifest, sc.Name)
		}
	}
	return man, nil
}

// ExtractManifest reads and parses a package's embedded manifest section.
// Packages predating the chunk store yield ErrNoManifest.
func ExtractManifest(blob []byte) (*Manifest, error) {
	secs, err := Sections(blob)
	if err != nil {
		return nil, err
	}
	loc, ok := secs[SectionManifest]
	if !ok {
		return nil, ErrNoManifest
	}
	data := blob[loc[0] : loc[0]+loc[1]]
	crc := binary.BigEndian.Uint32(blob[loc[0]-4 : loc[0]])
	if crc32.ChecksumIEEE(data) != crc {
		return nil, fmt.Errorf("%w: manifest section checksum mismatch", ErrBadPackage)
	}
	return ParseManifest(data)
}

// ManifestOf returns the package's chunk manifest: the embedded one when
// present, otherwise one computed from the blob (legacy packages chunk
// the same way, minus the manifest placeholder, so reassembly reproduces
// their layout byte-exactly).
func ManifestOf(blob []byte) (*Manifest, error) {
	m, err := ExtractManifest(blob)
	if err == nil {
		return m, nil
	}
	if !errors.Is(err, ErrNoManifest) {
		return nil, err
	}
	locs, err := sectionsInOrder(blob)
	if err != nil {
		return nil, err
	}
	secs := make([]section, len(locs))
	for i, loc := range locs {
		secs[i] = section{loc.Name, blob[loc.Off : loc.Off+loc.Size]}
	}
	return manifestFor(secs, false)
}

// sectionsInOrder lists a blob's sections in storage order.
func sectionsInOrder(blob []byte) ([]SectionLoc, error) {
	secs, err := Sections(blob)
	if err != nil {
		return nil, err
	}
	locs := make([]SectionLoc, 0, len(secs))
	for name, loc := range secs {
		locs = append(locs, SectionLoc{Name: name, Off: loc[0], Size: loc[1]})
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].Off < locs[j].Off })
	return locs, nil
}
