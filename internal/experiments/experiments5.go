package experiments

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/blobstore"
	"repro/internal/content"
	"repro/internal/fleet"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// E14 measures session durability under cluster churn: a learner fleet
// plays through a 3-node play cluster while one node is replaced mid-run
// (drain → snapshot → reroute → thaw). It reports how many sessions the
// churn moved, what it cost learners (nothing, for a graceful replace),
// the resume latency of a freeze/thaw cycle against a plain act, and the
// progress a hard crash loses relative to the checkpoint interval.
func E14(learners int) (string, error) {
	if learners <= 0 {
		learners = 120
	}
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E14 — durable sessions under cluster churn\n")
	b.WriteString("3 play nodes behind a consistent-hash gateway, one shared chunk\n")
	b.WriteString("store + snapshot directory; guided policy, 12 steps, frame every 4\n\n")

	// --- churn run -----------------------------------------------------
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		return "", err
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 256})
	defer svc.Close()
	if err := srv.Mount("/telemetry/", svc.Handler()); err != nil {
		return "", err
	}
	front := httptest.NewServer(srv)
	defer front.Close()

	cl, err := playsvc.NewCluster(playsvc.ClusterOptions{
		Node: playsvc.Options{Shards: 8, TTL: -1, CheckpointEvery: 50 * time.Millisecond},
	})
	if err != nil {
		return "", err
	}
	defer cl.Close()
	if err := cl.AddCourse("classroom", blob); err != nil {
		return "", err
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.StartNode(); err != nil {
			return "", err
		}
	}
	gw := httptest.NewServer(cl.Gateway().Handler())
	defer gw.Close()

	churnErr := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for cl.Gateway().SessionCount() < learners/5 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		victim := cl.NodeNames()[0]
		if err := cl.StopNode(victim); err != nil {
			churnErr <- err
			return
		}
		_, err := cl.StartNode()
		churnErr <- err
	}()

	began := time.Now()
	sum, err := fleet.Run(fleet.Config{
		ServerURL:   front.URL,
		PlayURL:     gw.URL,
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Interactive: true,
		Policy:      sim.GuidedFactory,
		Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, WatchEvery: 4},
		FlushEvery:  8,
	})
	if err != nil {
		return "", err
	}
	if err := <-churnErr; err != nil {
		return "", fmt.Errorf("churn: %w", err)
	}
	elapsed := time.Since(began)
	gs := cl.Gateway().Stats()
	fmt.Fprintf(&b, "churn run: %d learners, 1 node replaced mid-run, %v wall\n", learners, elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  sessions resumed      : %d (thawed on a new owner)\n", gs.Cluster.SessionsResumed)
	fmt.Fprintf(&b, "  sessions frozen       : %d (handoff snapshots on surviving nodes; the\n", gs.Cluster.SessionsFrozen)
	b.WriteString("                          drained node's own freeze count leaves with it)\n")
	fmt.Fprintf(&b, "  gateway rescues       : %d, retries %d\n", gs.Rescues, gs.Retries)
	fmt.Fprintf(&b, "  learners failed       : %d of %d (graceful churn loses nothing)\n", sum.Failed, learners)
	fmt.Fprintf(&b, "  sessions completed    : %d, %0.1f sessions/s\n", sum.Completed, sum.SessionsPerSec)
	fmt.Fprintf(&b, "  progress lost         : 0 acts (drain persists final state exactly)\n\n")

	// --- resume latency ------------------------------------------------
	store, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
	if err != nil {
		return "", err
	}
	m1 := playsvc.NewManager(playsvc.Options{Shards: 2, TTL: -1, Store: store, Dir: playsvc.NewMemDir()})
	defer m1.Close()
	if err := m1.AddCourse("classroom", blob); err != nil {
		return "", err
	}
	r, err := m1.Create(&playsvc.CreateRequest{Course: "classroom"})
	if err != nil {
		return "", err
	}
	act := &playsvc.ActRequest{Session: r.Session, Kind: "tick", Ticks: 1}
	if _, err := m1.Act(act); err != nil {
		return "", err
	}
	const rounds = 50
	plainStart := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := m1.Act(act); err != nil {
			return "", err
		}
	}
	plain := time.Since(plainStart) / rounds
	resumeStart := time.Now()
	for i := 0; i < rounds; i++ {
		if err := m1.Freeze(r.Session); err != nil {
			return "", err
		}
		// The act auto-thaws the frozen session: freeze+thaw+act round.
		if _, err := m1.Act(act); err != nil {
			return "", err
		}
	}
	cycle := time.Since(resumeStart) / rounds
	fmt.Fprintf(&b, "resume latency (mean of %d cycles, in-process):\n", rounds)
	fmt.Fprintf(&b, "  plain act             : %v\n", plain.Round(time.Microsecond))
	fmt.Fprintf(&b, "  freeze + thaw + act   : %v (the full handoff cycle)\n\n", cycle.Round(time.Microsecond))

	// --- crash loss ----------------------------------------------------
	dir2 := playsvc.NewMemDir()
	store2, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
	if err != nil {
		return "", err
	}
	mA := playsvc.NewManager(playsvc.Options{Shards: 2, TTL: -1, Store: store2, Dir: dir2})
	if err := mA.AddCourse("classroom", blob); err != nil {
		return "", err
	}
	rc, err := mA.Create(&playsvc.CreateRequest{Course: "classroom"})
	if err != nil {
		return "", err
	}
	if _, err := mA.Act(&playsvc.ActRequest{Session: rc.Session, Kind: "tick", Ticks: 9}); err != nil {
		return "", err
	}
	mA.Checkpoint()
	if _, err := mA.Act(&playsvc.ActRequest{Session: rc.Session, Kind: "tick", Ticks: 4}); err != nil {
		return "", err
	}
	mA.Halt() // crash: the 4 post-checkpoint ticks were never persisted
	mB := playsvc.NewManager(playsvc.Options{Shards: 2, TTL: -1, Store: store2, Dir: dir2})
	defer mB.Close()
	if err := mB.AddCourse("classroom", blob); err != nil {
		return "", err
	}
	rb, err := mB.Create(&playsvc.CreateRequest{Resume: rc.Session})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "crash loss (checkpoint at tick 9, crash at tick 13):\n")
	fmt.Fprintf(&b, "  resumed at tick       : %d (lost %d ticks — bounded by -checkpoint-every)\n", rb.Tick, 13-rb.Tick)
	return b.String(), nil
}
