// Package author implements the IVGBL authoring tool (paper §4): the
// scenario editor (import footage, auto-segment it into scenarios, split /
// merge / rename segments) and the object editor (place interactive
// objects, set properties, wire events), with undo/redo, validation and
// package export.
//
// The paper's thesis (claim C1) is that this tool lets non-programmers
// build games; experiment E4 quantifies it by counting primitive authoring
// operations, so every mutation passes through the tool's command stack and
// increments its operation counter.
package author

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/playback"
	"repro/internal/media/raster"
	"repro/internal/media/shotdetect"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

// Tool is one authoring session over a project.
type Tool struct {
	project  *core.Project
	video    []byte // TKVC blob (no authoritative chapters; see chapters)
	chapters []container.Chapter
	undo     []*command
	redo     []*command
	ops      int // primitive operation counter (experiment E4)
}

// command is one undoable mutation.
type command struct {
	name   string
	apply  func() error
	revert func()
}

// New starts an authoring session for a new, empty project.
func New(title string) *Tool {
	return &Tool{project: core.NewProject(title)}
}

// Load resumes an authoring session from a serialized project plus its
// video blob (either may be absent in a fresh workflow).
func Load(projectJSON, video []byte) (*Tool, error) {
	t := &Tool{}
	if projectJSON != nil {
		p, err := core.UnmarshalProject(projectJSON)
		if err != nil {
			return nil, err
		}
		t.project = p
	} else {
		t.project = core.NewProject("")
	}
	if video != nil {
		r, err := container.Open(video)
		if err != nil {
			return nil, fmt.Errorf("author: %w", err)
		}
		t.video = video
		t.chapters = r.Chapters()
	}
	return t, nil
}

// Project exposes the project under construction (read it, do not mutate —
// use tool operations so undo and the op counter stay correct).
func (t *Tool) Project() *core.Project { return t.project }

// Video returns the imported video blob (nil before import).
func (t *Tool) Video() []byte { return t.video }

// Chapters returns the current segment table.
func (t *Tool) Chapters() []container.Chapter {
	return append([]container.Chapter(nil), t.chapters...)
}

// SegmentNames lists segment names in timeline order.
func (t *Tool) SegmentNames() []string {
	names := make([]string, len(t.chapters))
	for i, c := range t.chapters {
		names[i] = c.Name
	}
	return names
}

// Ops returns the number of primitive authoring operations performed
// (undo/redo included — they are work too).
func (t *Tool) Ops() int { return t.ops }

// do runs a command and pushes it on the undo stack.
func (t *Tool) do(name string, apply func() error, revert func()) error {
	cmd := &command{name: name, apply: apply, revert: revert}
	if err := cmd.apply(); err != nil {
		return err
	}
	t.undo = append(t.undo, cmd)
	t.redo = nil
	t.ops++
	return nil
}

// Undo reverts the most recent operation; it reports whether anything was
// undone.
func (t *Tool) Undo() bool {
	if len(t.undo) == 0 {
		return false
	}
	cmd := t.undo[len(t.undo)-1]
	t.undo = t.undo[:len(t.undo)-1]
	cmd.revert()
	t.redo = append(t.redo, cmd)
	t.ops++
	return true
}

// Redo re-applies the most recently undone operation.
func (t *Tool) Redo() bool {
	if len(t.redo) == 0 {
		return false
	}
	cmd := t.redo[len(t.redo)-1]
	t.redo = t.redo[:len(t.redo)-1]
	if err := cmd.apply(); err != nil {
		// A redo of a previously successful command should not fail; if it
		// does, drop it.
		return false
	}
	t.undo = append(t.undo, cmd)
	t.ops++
	return true
}

// UndoDepth returns the current undo stack depth.
func (t *Tool) UndoDepth() int { return len(t.undo) }

// ImportOptions configures footage import.
type ImportOptions struct {
	Encode studio.Options    // encoder settings
	Detect shotdetect.Config // auto-segmentation settings; zero = defaults
	// KeepChapters skips auto-segmentation and keeps chapters already in
	// the container (or none).
	KeepChapters bool
}

// ImportFootage records a film through the studio and auto-segments it —
// the paper's "select video files from network or video cameras such that
// video can be divided into scenario components by the authoring tool".
func (t *Tool) ImportFootage(film *synth.Film, opts ImportOptions) error {
	blob, err := studio.Record(film, opts.Encode)
	if err != nil {
		return err
	}
	return t.ImportVideo(blob, opts)
}

// ImportVideo imports an existing TKVC blob, optionally auto-segmenting it.
func (t *Tool) ImportVideo(blob []byte, opts ImportOptions) error {
	r, err := container.Open(blob)
	if err != nil {
		return fmt.Errorf("author: import: %w", err)
	}
	var chapters []container.Chapter
	if opts.KeepChapters {
		chapters = r.Chapters()
	} else {
		chapters, err = autoSegment(blob, opts.Detect)
		if err != nil {
			return fmt.Errorf("author: auto-segmentation: %w", err)
		}
		// Bake the detected chapters into the blob so that a saved session
		// (project JSON + video blob) is self-contained.
		blob, err = container.WithChapters(blob, chapters)
		if err != nil {
			return fmt.Errorf("author: %w", err)
		}
	}
	prevVideo, prevChapters := t.video, t.chapters
	return t.do("import video",
		func() error {
			t.video = blob
			t.chapters = chapters
			return nil
		},
		func() {
			t.video = prevVideo
			t.chapters = prevChapters
		})
}

// autoSegment decodes the video and runs shot detection, producing
// "scene-NNN" chapters.
func autoSegment(blob []byte, cfg shotdetect.Config) ([]container.Chapter, error) {
	if cfg == (shotdetect.Config{}) {
		cfg = shotdetect.Defaults()
	}
	v, err := playback.OpenVideo(blob, 1)
	if err != nil {
		return nil, err
	}
	// The Video is single-goroutine and recycles its frame; the serialized
	// source hands each (possibly concurrent) histogram worker its own copy.
	src := shotdetect.SerializedSource(v.Meta().FrameCount, v.FrameAt)
	bounds, err := shotdetect.Detect(src, cfg)
	if err != nil {
		return nil, err
	}
	segs := shotdetect.SegmentsFromBoundaries(bounds, v.Meta().FrameCount)
	chapters := make([]container.Chapter, len(segs))
	for i, s := range segs {
		chapters[i] = container.Chapter{
			Name:  fmt.Sprintf("scene-%03d", i),
			Start: s.Start,
			End:   s.End,
		}
	}
	return chapters, nil
}

// findChapter returns the index of a chapter by name, or -1.
func (t *Tool) findChapter(name string) int {
	for i, c := range t.chapters {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// applyChapters installs a new chapter table, remuxing it into the video
// blob so the session stays self-contained, with undo support. retarget
// optionally rewrites scenario segment references (returns an undo closure).
func (t *Tool) applyChapters(opName string, newChs []container.Chapter, retarget func() func()) error {
	sortChapters(newChs)
	newVideo, err := container.WithChapters(t.video, newChs)
	if err != nil {
		return fmt.Errorf("author: %w", err)
	}
	prevChs, prevVideo := t.chapters, t.video
	var undoRetarget func()
	return t.do(opName,
		func() error {
			t.chapters = newChs
			t.video = newVideo
			if retarget != nil {
				undoRetarget = retarget()
			}
			return nil
		},
		func() {
			t.chapters = prevChs
			t.video = prevVideo
			if undoRetarget != nil {
				undoRetarget()
				undoRetarget = nil
			}
		})
}

// RenameSegment renames a chapter and retargets scenarios that use it.
func (t *Tool) RenameSegment(oldName, newName string) error {
	i := t.findChapter(oldName)
	if i < 0 {
		return fmt.Errorf("author: no segment %q", oldName)
	}
	if newName == "" {
		return errors.New("author: segment name cannot be empty")
	}
	if t.findChapter(newName) >= 0 {
		return fmt.Errorf("author: segment %q already exists", newName)
	}
	newChs := append([]container.Chapter(nil), t.chapters...)
	newChs[i].Name = newName
	return t.applyChapters("rename segment", newChs, func() func() {
		var retargeted []*core.Scenario
		for _, s := range t.project.Scenarios {
			if s.Segment == oldName {
				s.Segment = newName
				retargeted = append(retargeted, s)
			}
		}
		return func() {
			for _, s := range retargeted {
				s.Segment = oldName
			}
		}
	})
}

// SplitSegment cuts a segment in two at the given absolute frame. The first
// half keeps the name; the second half takes newName.
func (t *Tool) SplitSegment(name string, atFrame int, newName string) error {
	i := t.findChapter(name)
	if i < 0 {
		return fmt.Errorf("author: no segment %q", name)
	}
	ch := t.chapters[i]
	if atFrame <= ch.Start || atFrame >= ch.End {
		return fmt.Errorf("author: split frame %d outside (%d,%d)", atFrame, ch.Start, ch.End)
	}
	if t.findChapter(newName) >= 0 || newName == "" {
		return fmt.Errorf("author: bad new segment name %q", newName)
	}
	newChs := append([]container.Chapter(nil), t.chapters...)
	newChs[i].End = atFrame
	newChs = append(newChs, container.Chapter{Name: newName, Start: atFrame, End: ch.End})
	return t.applyChapters("split segment", newChs, nil)
}

// MergeSegmentWithNext absorbs the following segment into name. Scenarios
// referencing the absorbed segment are retargeted to name.
func (t *Tool) MergeSegmentWithNext(name string) error {
	i := t.findChapter(name)
	if i < 0 {
		return fmt.Errorf("author: no segment %q", name)
	}
	if i == len(t.chapters)-1 {
		return fmt.Errorf("author: %q is the last segment", name)
	}
	next := t.chapters[i+1]
	newChs := append([]container.Chapter(nil), t.chapters[:i+1]...)
	newChs[i].End = next.End
	newChs = append(newChs, t.chapters[i+2:]...)
	return t.applyChapters("merge segments", newChs, func() func() {
		var retargeted []*core.Scenario
		for _, s := range t.project.Scenarios {
			if s.Segment == next.Name {
				s.Segment = name
				retargeted = append(retargeted, s)
			}
		}
		return func() {
			for _, s := range retargeted {
				s.Segment = next.Name
			}
		}
	})
}

func sortChapters(chs []container.Chapter) {
	sort.Slice(chs, func(a, b int) bool { return chs[a].Start < chs[b].Start })
}

// PreviewFrame decodes the first frame of a segment (the editor's video
// preview pane).
func (t *Tool) PreviewFrame(segment string) (*raster.Frame, error) {
	if t.video == nil {
		return nil, errors.New("author: no video imported")
	}
	i := t.findChapter(segment)
	if i < 0 {
		return nil, fmt.Errorf("author: no segment %q", segment)
	}
	v, err := playback.OpenVideo(t.video, 1)
	if err != nil {
		return nil, err
	}
	return v.FrameAt(t.chapters[i].Start)
}

// Validate checks the project against the current segment table.
func (t *Tool) Validate() []core.Problem {
	var segs []string
	if t.video != nil {
		segs = t.SegmentNames()
	}
	return t.project.Validate(segs)
}

// ExportPackage validates and builds the distributable .tkg package with
// the current chapter table baked into the video.
func (t *Tool) ExportPackage() ([]byte, error) {
	if t.video == nil {
		return nil, errors.New("author: no video imported")
	}
	probs := t.Validate()
	if core.HasErrors(probs) {
		return nil, fmt.Errorf("author: project has %d validation problems; first: %s", len(probs), probs[0])
	}
	// The video blob always carries the current chapter table (import and
	// every segment edit remux it), so it ships as-is.
	return gamepack.Build(t.project, t.video)
}

// SaveProject serializes the project document (not the video).
func (t *Tool) SaveProject() ([]byte, error) { return t.project.Marshal() }
