package script

// LiteralArgs returns the string-literal arguments of every statement with
// the given verb, anywhere in the program (including both branches of ifs).
// The authoring tool's validator uses it to check that goto targets, item
// names and knowledge units referenced by scripts actually exist. Computed
// (non-literal) arguments cannot be statically checked and are skipped.
func (p *Program) LiteralArgs(verb string) []string {
	if p == nil {
		return nil
	}
	var out []string
	var walk func(stmts []stmt)
	walk = func(stmts []stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *actionStmt:
				if s.verb == verb {
					if lit, ok := s.arg.(*strLit); ok {
						out = append(out, lit.v)
					}
				}
			case *ifStmt:
				walk(s.then)
				walk(s.els)
			}
		}
	}
	walk(p.stmts)
	return out
}

// Uses reports whether the program contains at least one statement with the
// given verb.
func (p *Program) Uses(verb string) bool {
	if p == nil {
		return false
	}
	found := false
	var walk func(stmts []stmt)
	walk = func(stmts []stmt) {
		for _, s := range stmts {
			if found {
				return
			}
			switch s := s.(type) {
			case *actionStmt:
				if s.verb == verb {
					found = true
				}
			case *ifStmt:
				walk(s.then)
				walk(s.els)
			}
		}
	}
	walk(p.stmts)
	return found
}
