package ui

import (
	"repro/internal/media/raster"
)

// Box is the embeddable base widget: bounds, id, visibility. Its zero value
// is a visible, empty-id widget at the origin. Embedders override Paint and
// Mouse as needed.
type Box struct {
	id     string
	bounds raster.Rect
	hidden bool
}

// NewBox returns a Box with the given id and bounds.
func NewBox(id string, b raster.Rect) Box {
	return Box{id: id, bounds: b}
}

// ID returns the widget id.
func (b *Box) ID() string { return b.id }

// Bounds returns the widget rectangle.
func (b *Box) Bounds() raster.Rect { return b.bounds }

// SetBounds moves/resizes the widget.
func (b *Box) SetBounds(r raster.Rect) { b.bounds = r }

// Visible reports whether the widget is painted and hit-testable.
func (b *Box) Visible() bool { return !b.hidden }

// SetVisible shows or hides the widget.
func (b *Box) SetVisible(v bool) { b.hidden = !v }

// Paint draws nothing; embedders override.
func (b *Box) Paint(f *raster.Frame) {}

// Mouse ignores events; embedders override.
func (b *Box) Mouse(ev MouseEvent) bool { return false }

// Theme colors shared by the stock widgets — the beige-and-navy palette of
// a mid-2000s desktop application, which is what the paper's screenshots
// show.
var (
	ThemeBg        = raster.RGB{R: 212, G: 208, B: 200}
	ThemeBgDark    = raster.RGB{R: 170, G: 166, B: 160}
	ThemePanel     = raster.RGB{R: 230, G: 228, B: 222}
	ThemeBorder    = raster.RGB{R: 80, G: 80, B: 90}
	ThemeText      = raster.RGB{R: 20, G: 20, B: 30}
	ThemeTitle     = raster.RGB{R: 10, G: 36, B: 106}
	ThemeTitleText = raster.White
	ThemeAccent    = raster.RGB{R: 49, G: 106, B: 197}
	ThemeHilite    = raster.RGB{R: 255, G: 240, B: 160}
)

// Label is a static text widget.
type Label struct {
	Box
	Text  string
	Color raster.RGB
}

// NewLabel creates a label with theme text color.
func NewLabel(id string, b raster.Rect, text string) *Label {
	return &Label{Box: NewBox(id, b), Text: text, Color: ThemeText}
}

// Paint renders the text clipped to the label bounds.
func (l *Label) Paint(f *raster.Frame) {
	r := l.Bounds()
	ty := r.Y + (r.H-raster.GlyphH)/2
	f.DrawTextClipped(r.X+1, ty, raster.FitText(l.Text, r.W-2), l.Color, r)
}

// Button is a clickable push button.
type Button struct {
	Box
	Text    string
	OnClick func()
	pressed bool
}

// NewButton creates a button; onClick may be nil.
func NewButton(id string, b raster.Rect, text string, onClick func()) *Button {
	return &Button{Box: NewBox(id, b), Text: text, OnClick: onClick}
}

// Paint draws the classic raised button face.
func (b *Button) Paint(f *raster.Frame) {
	r := b.Bounds()
	face := ThemeBg
	if b.pressed {
		face = ThemeBgDark
	}
	f.FillRect(r, face)
	f.DrawRect(r, ThemeBorder)
	// 3-D highlight on top/left edge.
	if !b.pressed {
		f.HLine(r.X+1, r.X+r.W-2, r.Y+1, raster.White)
		f.VLine(r.X+1, r.Y+1, r.Y+r.H-2, raster.White)
	}
	tw := raster.TextWidth(raster.FitText(b.Text, r.W-4))
	tx := r.X + (r.W-tw)/2
	ty := r.Y + (r.H-raster.GlyphH)/2
	f.DrawTextClipped(tx, ty, raster.FitText(b.Text, r.W-4), ThemeText, r)
}

// Mouse presses on Down, fires OnClick on Click/Up.
func (b *Button) Mouse(ev MouseEvent) bool {
	switch ev.Kind {
	case MouseDown:
		b.pressed = true
		return true
	case MouseUp, MouseClick:
		wasPressed := b.pressed || ev.Kind == MouseClick
		b.pressed = false
		if wasPressed && b.OnClick != nil {
			b.OnClick()
		}
		return true
	}
	return false
}

// TextField is a single-line editable text input.
type TextField struct {
	Box
	Text     string
	OnChange func(string)
	OnSubmit func(string)
	focused  bool
}

// NewTextField creates a text field with initial content.
func NewTextField(id string, b raster.Rect, text string) *TextField {
	return &TextField{Box: NewBox(id, b), Text: text}
}

// Paint draws the sunken input with a caret when focused.
func (t *TextField) Paint(f *raster.Frame) {
	r := t.Bounds()
	f.FillRect(r, raster.White)
	border := ThemeBorder
	if t.focused {
		border = ThemeAccent
	}
	f.DrawRect(r, border)
	txt := raster.FitText(t.Text, r.W-6)
	ty := r.Y + (r.H-raster.GlyphH)/2
	f.DrawTextClipped(r.X+2, ty, txt, ThemeText, r)
	if t.focused {
		cx := r.X + 3 + raster.TextWidth(txt)
		f.VLine(cx, r.Y+2, r.Y+r.H-3, ThemeAccent)
	}
}

// Mouse consumes clicks (focus assignment happens in the Window).
func (t *TextField) Mouse(ev MouseEvent) bool { return true }

// SetFocused toggles the caret.
func (t *TextField) SetFocused(v bool) { t.focused = v }

// Keyboard edits the field: printable runes append, backspace deletes,
// enter submits.
func (t *TextField) Keyboard(ev KeyEvent) bool {
	switch {
	case ev.Key == KeyBackspace:
		if len(t.Text) > 0 {
			rs := []rune(t.Text)
			t.Text = string(rs[:len(rs)-1])
			if t.OnChange != nil {
				t.OnChange(t.Text)
			}
		}
		return true
	case ev.Key == KeyEnter:
		if t.OnSubmit != nil {
			t.OnSubmit(t.Text)
		}
		return true
	case ev.Rune != 0:
		t.Text += string(ev.Rune)
		if t.OnChange != nil {
			t.OnChange(t.Text)
		}
		return true
	}
	return false
}

// Image is a static picture widget; it draws a raster frame, optionally
// color-keyed (the paper's "image object with white background").
type Image struct {
	Box
	Frame   *raster.Frame
	Keyed   bool
	Key     raster.RGB
	OnClick func()
}

// NewImage creates an image widget.
func NewImage(id string, b raster.Rect, frame *raster.Frame) *Image {
	return &Image{Box: NewBox(id, b), Frame: frame}
}

// Paint blits the picture at the widget origin.
func (im *Image) Paint(f *raster.Frame) {
	if im.Frame == nil {
		f.FillRect(im.Bounds(), ThemeBgDark)
		return
	}
	r := im.Bounds()
	if im.Keyed {
		f.BlitKeyed(im.Frame, r.X, r.Y, im.Key)
	} else {
		f.Blit(im.Frame, r.X, r.Y)
	}
}

// Mouse fires OnClick for clicks.
func (im *Image) Mouse(ev MouseEvent) bool {
	if ev.Kind == MouseClick && im.OnClick != nil {
		im.OnClick()
		return true
	}
	return ev.Kind == MouseClick
}
