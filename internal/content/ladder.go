// Quality-ladder packaging for courses: record the footage once per
// rung and ship every rung in one package / one manifest tree, so the
// delivery stack can serve the same course to a fiber classroom and a
// 3G phone out of one publish.
package content

import (
	"fmt"

	"repro/internal/blobstore"
	"repro/internal/gamepack"
	"repro/internal/media/studio"
)

// RecordLadderVideo encodes the course footage at every tier of the
// ladder (studio.DefaultLadder when tiers is nil), all rungs sharing the
// course's chapter table.
func (c *Course) RecordLadderVideo(opts studio.Options, tiers []studio.Tier) ([]gamepack.TierVideo, error) {
	if tiers == nil {
		tiers = studio.DefaultLadder()
	}
	opts.Chapters = c.Chapters
	rungs, err := studio.RecordLadder(c.Film, opts, tiers)
	if err != nil {
		return nil, fmt.Errorf("content: %w", err)
	}
	out := make([]gamepack.TierVideo, len(rungs))
	for i, r := range rungs {
		out[i] = gamepack.TierVideo{Tier: r.Tier, Video: r.Video}
	}
	return out, nil
}

// BuildLadderPackage records the ladder and wraps everything into one
// multi-tier .tkg package.
func (c *Course) BuildLadderPackage(opts studio.Options, tiers []studio.Tier) ([]byte, error) {
	videos, err := c.RecordLadderVideo(opts, tiers)
	if err != nil {
		return nil, err
	}
	return gamepack.BuildLadder(c.Project, videos)
}

// PublishLadderTo records the ladder and deposits the package as
// content-addressed chunks into the store, returning the manifest —
// the multi-tier analogue of PublishTo.
func (c *Course) PublishLadderTo(store *blobstore.Store, opts studio.Options, tiers []studio.Tier) (*gamepack.Manifest, error) {
	blob, err := c.BuildLadderPackage(opts, tiers)
	if err != nil {
		return nil, err
	}
	man, err := gamepack.DepositChunks(blob, store)
	if err != nil {
		return nil, fmt.Errorf("content: %w", err)
	}
	return man, nil
}
