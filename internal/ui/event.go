// Package ui is a headless retained-mode widget toolkit.
//
// The paper's authoring tool and runtime are Windows GUIs (its Figures 1
// and 2 are screenshots). This package substitutes a display-free
// equivalent: widgets render into raster Frames, a Window routes synthetic
// mouse/keyboard events by hit-testing, and deterministic ASCII snapshots
// stand in for screenshots. Every interaction the paper shows — clicking an
// object on the video frame, dragging it to the inventory window, pressing
// a scenario-switch button — is a hit-test plus an event dispatch here.
package ui

import "repro/internal/media/raster"

// MouseKind enumerates mouse event varieties.
type MouseKind int

// Mouse event kinds.
const (
	MouseDown MouseKind = iota
	MouseUp
	MouseClick // a Down immediately followed by Up on the same widget
)

// MouseEvent is a pointer event in window coordinates.
type MouseEvent struct {
	X, Y int
	Kind MouseKind
}

// Key identifies non-printing keys.
type Key int

// Special keys.
const (
	KeyNone Key = iota
	KeyEnter
	KeyBackspace
	KeyUp
	KeyDown
	KeyTab
	KeyEscape
)

// KeyEvent is a keyboard event. Rune is set for printing keys, Key for
// specials; exactly one is meaningful.
type KeyEvent struct {
	Rune rune
	Key  Key
}

// Widget is anything that occupies a rectangle, paints itself, and may react
// to events.
type Widget interface {
	// ID returns the widget's identifier (may be empty). IDs are used by
	// tests and by tools that need to find widgets programmatically.
	ID() string
	// Bounds returns the widget's rectangle in window coordinates.
	Bounds() raster.Rect
	// SetBounds moves/resizes the widget.
	SetBounds(raster.Rect)
	// Visible reports whether the widget is painted and hit-testable.
	Visible() bool
	// SetVisible shows or hides the widget.
	SetVisible(bool)
	// Paint draws the widget onto the frame.
	Paint(f *raster.Frame)
	// Mouse handles a pointer event already known to hit this widget.
	// It reports whether the event was consumed.
	Mouse(ev MouseEvent) bool
}

// Container is a widget with children (hit-testing descends into it).
type Container interface {
	Widget
	Children() []Widget
}

// Focusable widgets receive keyboard events after being clicked.
type Focusable interface {
	Widget
	// Keyboard handles a key event; reports whether it was consumed.
	Keyboard(ev KeyEvent) bool
	// SetFocused toggles the focus highlight.
	SetFocused(bool)
}

// DragSource widgets can originate a drag-and-drop gesture.
type DragSource interface {
	Widget
	// DragPayload returns the payload for a drag starting at the given
	// window coordinates, and whether a drag may start there.
	DragPayload(x, y int) (string, bool)
}

// DropTarget widgets can accept a drop.
type DropTarget interface {
	Widget
	// AcceptDrop consumes a payload dropped at the given window
	// coordinates; reports whether the drop was accepted.
	AcceptDrop(payload string, x, y int) bool
}
