package playsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/content"
	"repro/internal/obs"
)

// TestActPathZeroAllocWithMetrics pins the instrumentation overhead of the
// act path: the exported Act (histogram observe + span-ring record) must
// allocate exactly as much as the uninstrumented inner act. The act path
// itself allocates (the reply is a deep copy), so the guard is a delta,
// not an absolute zero — the metrics layer contributes nothing.
func TestActPathZeroAllocWithMetrics(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	m := NewManager(Options{Shards: 1, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	req := &ActRequest{Session: r.Session, Kind: ActTick, Ticks: 1}
	step := func(do func(*ActRequest) (*Reply, error)) {
		reply, err := do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Ack the tails so every iteration carries the same (empty) event
		// and message slices and the allocation profile stays flat.
		req.SeenEvents = reply.EventCount
		req.SeenMessages = reply.MessageCount
	}
	for i := 0; i < 50; i++ {
		step(m.Act)
	}
	base := testing.AllocsPerRun(200, func() { step(m.act) })
	instrumented := testing.AllocsPerRun(200, func() { step(m.Act) })
	if instrumented > base {
		t.Fatalf("metrics add %.1f allocs per act (bare %.1f, instrumented %.1f), want 0",
			instrumented-base, base, instrumented)
	}
}

// TestTracePropagationAcrossHandoff is the end-to-end tracing gate: one
// client-supplied trace id must show up on the gateway's routed-call span,
// the old owner's handoff span, and the new owner's thaw + act spans when
// an act forces a rescue migration.
func TestTracePropagationAcrossHandoff(t *testing.T) {
	cl, ts := liveCluster(t, 1, Options{})
	const n = 24
	ids := make([]string, n)
	for i := range ids {
		c := dial(t, ts, nil)
		c.Talk("teacher")
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		ids[i] = c.SessionID()
	}
	// A second node takes over part of the ring; every session still lives
	// on node-1, so acting on a reassigned id forces handoff → thaw.
	if _, err := cl.StartNode(); err != nil {
		t.Fatal(err)
	}
	var stray string
	for _, id := range ids {
		owner, err := cl.Gateway().ownerOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if owner.name == "node-2" {
			stray = id
			break
		}
	}
	if stray == "" {
		t.Fatal("no session moved to the new node (vanishingly unlikely)")
	}

	tc := obs.NewTrace()
	body, _ := json.Marshal(&ActRequest{Session: stray, Kind: ActTick, Ticks: 1})
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+ActPath, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	tc.Inject(hreq.Header)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("act across handoff: %s: %s", resp.Status, msg)
	}

	names := func(ring *obs.SpanRing) map[string]bool {
		out := map[string]bool{}
		for _, sp := range ring.Spans(tc.Trace, 0) {
			if sp.Trace != tc.Trace {
				t.Fatalf("span %q carries trace %s, want %s", sp.Name, sp.Trace, tc.Trace)
			}
			out[sp.Name] = true
		}
		return out
	}
	gw := names(cl.Gateway().Ring())
	if !gw["gw "+ActPath] {
		t.Fatalf("gateway ring has no routed-act span for the trace: %v", gw)
	}
	oldOwner := names(cl.Node("node-1").Manager.Ring())
	if !oldOwner["play.handoff"] {
		t.Fatalf("old owner recorded no handoff span for the trace: %v", oldOwner)
	}
	newOwner := names(cl.Node("node-2").Manager.Ring())
	if !newOwner["play.thaw"] || !newOwner["play.act"] {
		t.Fatalf("new owner missing thaw/act spans for the trace: %v", newOwner)
	}
	if got := cl.Gateway().Stats().Rescues; got != 1 {
		t.Fatalf("rescues = %d, want 1", got)
	}
	if hs := cl.Gateway().rescueNs.Snapshot(); hs.Count != 1 {
		t.Fatalf("rescue histogram holds %d observations, want 1", hs.Count)
	}
}

// TestClientTraceInjection: a Client configured with a trace context
// stamps every request, so the server-side spans for its create and acts
// all link back to the caller's trace id.
func TestClientTraceInjection(t *testing.T) {
	ts, m := liveService(t, Options{Shards: 1, TTL: -1})
	tc := obs.NewTrace()
	c, err := Dial(ClientOptions{
		BaseURL: ts.URL,
		Course:  "classroom",
		Project: content.Classroom().Project,
		Trace:   tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(1); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seen := map[string]bool{}
	for _, sp := range m.Ring().Spans(tc.Trace, 0) {
		if sp.Parent == "" {
			t.Fatalf("span %q has no parent; client requests must send child contexts", sp.Name)
		}
		seen[sp.Name] = true
	}
	if !seen["play.create"] || !seen["play.act"] {
		t.Fatalf("server spans for the client trace = %v, want play.create and play.act", seen)
	}
}

// TestClusterNodeMetricsEndpoint: every node serves a Prometheus scrape
// covering the playsvc and blobstore families, the JSON form exposes the
// act histogram the fleet's percentile table reads, and /healthz reports
// readiness.
func TestClusterNodeMetricsEndpoint(t *testing.T) {
	cl, ts := liveCluster(t, 2, Options{})
	c := dial(t, ts, nil)
	if err := c.Advance(1); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range cl.NodeNames() {
		url := cl.Node(name).URL
		text := fetch(t, url+"/metrics")
		for _, family := range []string{
			"vgbl_playsvc_sessions_live", "vgbl_playsvc_acts_total",
			"vgbl_playsvc_act_seconds_bucket", "vgbl_blobstore_hits_total",
		} {
			if !strings.Contains(text, family) {
				t.Fatalf("node %s /metrics missing %s:\n%s", name, family, text)
			}
		}
		var snap obs.RegistrySnapshot
		if err := json.Unmarshal([]byte(fetch(t, url+"/metrics?format=json")), &snap); err != nil {
			t.Fatalf("node %s json metrics: %v", name, err)
		}
		m := snap.Metric("vgbl_playsvc_act_seconds")
		if m == nil || len(m.Series) == 0 || m.Series[0].Histogram == nil {
			t.Fatalf("node %s json metrics missing the act histogram", name)
		}
		var health struct {
			Status string `json:"status"`
			Node   string `json:"node"`
		}
		if err := json.Unmarshal([]byte(fetch(t, url+"/healthz")), &health); err != nil {
			t.Fatalf("node %s healthz: %v", name, err)
		}
		if health.Status != "ok" || health.Node != name {
			t.Fatalf("node %s healthz = %+v", name, health)
		}
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body)
}

// TestStatsMerge checks the documented counter-vs-gauge contract: Merge
// sums every monotonic counter and the SessionsLive gauge, and leaves
// per-node facts (uptime, courses, shard breakdown) alone.
func TestStatsMerge(t *testing.T) {
	a := Stats{UptimeSeconds: 10, Courses: []string{"classroom"}, SessionsLive: 2,
		SessionsCreated: 5, SessionsClosed: 3, SessionsFrozen: 1, SessionsResumed: 1,
		Checkpoints: 4, Acts: 100, Frames: 7, Shards: []ShardStats{{Live: 2}}}
	b := Stats{UptimeSeconds: 99, SessionsLive: 3, SessionsCreated: 8, SessionsClosed: 5,
		SessionsEvicted: 2, Checkpoints: 1, Acts: 50}
	a.Merge(b)
	want := Stats{UptimeSeconds: 10, Courses: []string{"classroom"}, SessionsLive: 5,
		SessionsCreated: 13, SessionsClosed: 8, SessionsEvicted: 2, SessionsFrozen: 1,
		SessionsResumed: 1, Checkpoints: 5, Acts: 150, Frames: 7, Shards: []ShardStats{{Live: 2}}}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", want) {
		t.Fatalf("merged = %+v\nwant     %+v", a, want)
	}
}
