package ui

import (
	"strings"
	"testing"

	"repro/internal/media/raster"
)

func TestBoxBasics(t *testing.T) {
	b := NewBox("w1", raster.Rect{X: 1, Y: 2, W: 3, H: 4})
	if b.ID() != "w1" || b.Bounds() != (raster.Rect{X: 1, Y: 2, W: 3, H: 4}) {
		t.Fatal("box state wrong")
	}
	if !b.Visible() {
		t.Error("new box should be visible")
	}
	b.SetVisible(false)
	if b.Visible() {
		t.Error("SetVisible(false) ignored")
	}
	b.SetBounds(raster.Rect{X: 9, Y: 9, W: 1, H: 1})
	if b.Bounds().X != 9 {
		t.Error("SetBounds ignored")
	}
}

func TestButtonClickFires(t *testing.T) {
	fired := 0
	w := NewWindow("t", 100, 60)
	btn := NewButton("b", raster.Rect{X: 10, Y: 20, W: 40, H: 14}, "GO", func() { fired++ })
	w.Add(btn)
	if got := w.Click(30, 27); got != btn {
		t.Fatalf("click hit %v, want button", got)
	}
	if fired != 1 {
		t.Fatalf("OnClick fired %d times, want 1", fired)
	}
	// Click outside does nothing. (59,59) falls on the root panel.
	w.Click(99, 59)
	if fired != 1 {
		t.Error("outside click fired the button")
	}
}

func TestHitTestTopmostWins(t *testing.T) {
	w := NewWindow("t", 100, 100)
	a := NewButton("under", raster.Rect{X: 10, Y: 10, W: 50, H: 50}, "A", nil)
	b := NewButton("over", raster.Rect{X: 30, Y: 30, W: 50, H: 50}, "B", nil)
	w.Add(a)
	w.Add(b) // added later = on top
	if got := w.WidgetAt(40, 40); got != b {
		t.Errorf("overlap hit %q, want 'over'", got.ID())
	}
	if got := w.WidgetAt(15, 15); got != a {
		t.Errorf("hit %q, want 'under'", got.ID())
	}
}

func TestHiddenWidgetsNotHit(t *testing.T) {
	w := NewWindow("t", 100, 100)
	b := NewButton("b", raster.Rect{X: 10, Y: 10, W: 30, H: 20}, "X", nil)
	w.Add(b)
	b.SetVisible(false)
	if got := w.WidgetAt(15, 15); got == b {
		t.Error("hidden widget hit")
	}
}

func TestPanelNesting(t *testing.T) {
	w := NewWindow("t", 200, 150)
	p := NewPanel("panel", raster.Rect{X: 20, Y: 20, W: 100, H: 100}, "TOOLS")
	inner := NewButton("inner", raster.Rect{X: 30, Y: 50, W: 40, H: 15}, "IN", nil)
	p.Add(inner)
	w.Add(p)
	if got := w.WidgetAt(35, 55); got != inner {
		t.Errorf("nested hit = %v, want inner button", got)
	}
	// Panel body (not the button) hits the panel itself.
	if got := w.WidgetAt(25, 90); got != p {
		t.Errorf("panel body hit = %v, want panel", got)
	}
	if w.FindByID("inner") != inner {
		t.Error("FindByID failed for nested widget")
	}
	p.Remove(inner)
	if w.FindByID("inner") != nil {
		t.Error("Remove did not detach child")
	}
}

func TestPanelContentInsets(t *testing.T) {
	p := NewPanel("p", raster.Rect{X: 0, Y: 0, W: 100, H: 100}, "T")
	c := p.Content()
	if c.Y != 1+TitleBarHeight {
		t.Errorf("titled content Y = %d", c.Y)
	}
	p2 := NewPanel("p2", raster.Rect{X: 0, Y: 0, W: 100, H: 100}, "")
	if p2.Content().Y != 1 {
		t.Errorf("untitled content Y = %d", p2.Content().Y)
	}
}

func TestFocusAndTextEditing(t *testing.T) {
	w := NewWindow("t", 120, 60)
	tf := NewTextField("name", raster.Rect{X: 10, Y: 10, W: 80, H: 13}, "")
	var changed, submitted string
	tf.OnChange = func(s string) { changed = s }
	tf.OnSubmit = func(s string) { submitted = s }
	w.Add(tf)
	w.Click(20, 15)
	if w.Focus() != Focusable(tf) {
		t.Fatal("click did not focus text field")
	}
	w.TypeString("HELLO")
	if tf.Text != "HELLO" || changed != "HELLO" {
		t.Fatalf("typed text = %q, changed = %q", tf.Text, changed)
	}
	w.Key(KeyEvent{Key: KeyBackspace})
	if tf.Text != "HELL" {
		t.Fatalf("backspace result %q", tf.Text)
	}
	w.Key(KeyEvent{Key: KeyEnter})
	if submitted != "HELL" {
		t.Fatalf("submit got %q", submitted)
	}
	// Clicking a non-focusable clears focus.
	w.Click(110, 55)
	if w.Focus() != nil {
		t.Error("focus not cleared")
	}
	if w.Key(KeyEvent{Rune: 'x'}) {
		t.Error("key consumed with no focus")
	}
}

func TestListBoxSelection(t *testing.T) {
	w := NewWindow("t", 120, 100)
	lb := NewListBox("list", raster.Rect{X: 5, Y: 5, W: 100, H: 80}, []string{"alpha", "beta", "gamma"})
	var got string
	lb.OnSelect = func(i int, item string) { got = item }
	w.Add(lb)
	// Row height is GlyphH+3 = 10; row 1 occupies y in [5+2+10, 5+2+20).
	w.Click(20, 18)
	if lb.Selected != 1 || got != "beta" {
		t.Fatalf("selected %d (%q), want beta", lb.Selected, got)
	}
	if lb.SelectedItem() != "beta" {
		t.Error("SelectedItem mismatch")
	}
	// Arrow keys move selection (list is focused after the click).
	w.Key(KeyEvent{Key: KeyDown})
	if lb.SelectedItem() != "gamma" {
		t.Errorf("down arrow -> %q", lb.SelectedItem())
	}
	w.Key(KeyEvent{Key: KeyDown}) // pinned at end
	if lb.SelectedItem() != "gamma" {
		t.Error("selection ran past end")
	}
	w.Key(KeyEvent{Key: KeyUp})
	if lb.SelectedItem() != "beta" {
		t.Errorf("up arrow -> %q", lb.SelectedItem())
	}
	// Click beyond rows leaves selection.
	w.Click(20, 80)
	if lb.SelectedItem() != "beta" {
		t.Error("empty-area click changed selection")
	}
}

func TestTimelineSelection(t *testing.T) {
	w := NewWindow("t", 220, 60)
	tl := NewTimeline("tl", raster.Rect{X: 10, Y: 10, W: 200, H: 20}, 100)
	tl.Segments = []TimelineSegment{
		{Name: "intro", Start: 0, End: 40},
		{Name: "mid", Start: 40, End: 80},
		{Name: "end", Start: 80, End: 100},
	}
	var picked TimelineSegment
	tl.OnSelect = func(i int, s TimelineSegment) { picked = s }
	w.Add(tl)
	// Click in the middle → frame ≈ 50 → segment "mid".
	w.Click(110, 20)
	if picked.Name != "mid" || tl.Selected != 1 {
		t.Fatalf("picked %+v (sel=%d)", picked, tl.Selected)
	}
	// Far left → intro.
	w.Click(12, 20)
	if picked.Name != "intro" {
		t.Fatalf("picked %+v", picked)
	}
	// Marker drawing must not panic at edges.
	tl.Marker = 99
	w.Render()
}

func TestPropertySheet(t *testing.T) {
	ps := NewPropertySheet("props", raster.Rect{X: 0, Y: 0, W: 100, H: 60})
	ps.SetValue("name", "umbrella")
	ps.SetValue("kind", "item")
	ps.SetValue("name", "red umbrella") // update in place
	if len(ps.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(ps.Rows))
	}
	if ps.Rows[0].Value != "red umbrella" {
		t.Errorf("update failed: %+v", ps.Rows[0])
	}
	w := NewWindow("t", 120, 80)
	w.Add(ps)
	var sel PropertyRow
	ps.OnSelect = func(i int, r PropertyRow) { sel = r }
	w.Click(50, 13) // second row (rowH=10; rows start at y=2)
	if sel.Key != "kind" {
		t.Errorf("selected %+v", sel)
	}
}

func TestInventoryDragDrop(t *testing.T) {
	w := NewWindow("t", 200, 120)
	inv := NewInventoryBar("inv", raster.Rect{X: 10, Y: 90, W: 180, H: 20}, 4)
	src := &testDragSource{Box: NewBox("obj", raster.Rect{X: 20, Y: 20, W: 30, H: 30}), payload: "umbrella"}
	w.Add(src)
	w.Add(inv)
	if err := w.DragDrop(25, 25, 50, 100); err != nil {
		t.Fatalf("drag failed: %v", err)
	}
	if len(inv.Items) != 1 || inv.Items[0] != "umbrella" {
		t.Fatalf("inventory = %v", inv.Items)
	}
	// Click a filled slot fires OnPick.
	var picked string
	inv.OnPick = func(i int, item string) { picked = item }
	w.Click(15, 100)
	if picked != "umbrella" {
		t.Errorf("picked %q", picked)
	}
	// Dropping onto nothing fails.
	if err := w.DragDrop(25, 25, 199, 10); err == nil {
		t.Error("drop on empty space succeeded")
	}
	// Dragging a non-source fails.
	if err := w.DragDrop(10, 91, 50, 100); err == nil {
		t.Error("drag from non-source succeeded")
	}
	// Full inventory rejects.
	inv.Items = []string{"a", "b", "c", "d"}
	if err := w.DragDrop(25, 25, 50, 100); err == nil {
		t.Error("drop into full inventory succeeded")
	}
}

type testDragSource struct {
	Box
	payload string
}

func (s *testDragSource) DragPayload(x, y int) (string, bool) { return s.payload, true }

func TestMenuBar(t *testing.T) {
	w := NewWindow("t", 200, 60)
	var got string
	mb := NewMenuBar("menu", raster.Rect{X: 0, Y: 0, W: 200, H: 12}, []string{"FILE", "EDIT", "HELP"})
	mb.OnSelect = func(i int, e string) { got = e }
	w.Add(mb)
	// "FILE" spans x≈3..27; "EDIT" starts at 3+TextWidth(FILE)+8.
	w.Click(5, 5)
	if got != "FILE" {
		t.Fatalf("clicked %q, want FILE", got)
	}
	editX := 3 + raster.TextWidth("FILE") + menuEntryPad + 2
	w.Click(editX, 5)
	if got != "EDIT" {
		t.Fatalf("clicked %q, want EDIT", got)
	}
}

func TestPopupModality(t *testing.T) {
	w := NewWindow("t", 200, 120)
	var under int
	btn := NewButton("under", raster.Rect{X: 10, Y: 10, W: 60, H: 16}, "UNDER", func() { under++ })
	w.Add(btn)
	closed := false
	pop := NewPopup("msg", 200, 120, "NOTICE", "FIXED THE COMPUTER", func() { closed = true })
	w.ShowPopup(pop)
	// Click where the button is: popup is modal, nothing happens.
	w.Click(15, 15)
	if under != 0 {
		t.Fatal("click leaked through modal popup")
	}
	// Click the popup's OK button.
	okb := pop.OK.Bounds()
	w.Click(okb.X+2, okb.Y+2)
	if !closed {
		t.Fatal("popup OK not clickable")
	}
	w.ClosePopup()
	if w.Popup() != nil {
		t.Error("popup not closed")
	}
	w.Click(15, 15)
	if under != 1 {
		t.Error("button unreachable after popup closed")
	}
}

func TestVideoViewCoordinateMapping(t *testing.T) {
	vv := NewVideoView("video", raster.Rect{X: 10, Y: 10, W: 100, H: 80})
	frame := raster.New(60, 40)
	vv.Frame = frame
	ox, oy := vv.VideoOrigin()
	if ox != 10+(100-60)/2 || oy != 10+(80-40)/2 {
		t.Fatalf("origin = (%d,%d)", ox, oy)
	}
	var gx, gy int
	vv.OnVideoClick = func(x, y int) { gx, gy = x, y }
	w := NewWindow("t", 200, 120)
	w.Add(vv)
	w.Click(ox+5, oy+7)
	if gx != 5 || gy != 7 {
		t.Fatalf("video click = (%d,%d), want (5,7)", gx, gy)
	}
	// Outside the raster (letterbox margin) does not fire.
	gx, gy = -1, -1
	w.Click(11, 11)
	if gx != -1 {
		t.Error("letterbox click fired video handler")
	}
	if _, _, ok := vv.ToVideo(0, 0); ok {
		t.Error("ToVideo accepted a miss")
	}
	vv.Frame = nil
	if _, _, ok := vv.ToVideo(ox, oy); ok {
		t.Error("ToVideo with no frame accepted")
	}
}

func TestRenderSnapshotDeterministic(t *testing.T) {
	build := func() *Window {
		w := NewWindow("IVGBL", 160, 100)
		w.Add(NewLabel("l", raster.Rect{X: 10, Y: 20, W: 80, H: 10}, "SCENARIO"))
		w.Add(NewButton("b", raster.Rect{X: 10, Y: 40, W: 50, H: 14}, "PLAY", nil))
		return w
	}
	a := build().Snapshot(64, 20)
	b := build().Snapshot(64, 20)
	if a != b {
		t.Fatal("snapshots of identical windows differ")
	}
	if len(strings.Split(strings.TrimRight(a, "\n"), "\n")) != 20 {
		t.Fatal("snapshot row count wrong")
	}
	// The render must show the title bar (bright text on dark bar = mixed).
	if !strings.ContainsAny(a, ".:-=+*#%@") {
		t.Fatal("snapshot empty")
	}
}

func TestWindowRenderPaintsChrome(t *testing.T) {
	w := NewWindow("TITLE", 100, 60)
	f := w.Render()
	if f.W != 100 || f.H != 60 {
		t.Fatal("render size wrong")
	}
	// Title bar pixel should be the theme title color.
	if f.At(50, 3) != ThemeTitle && f.At(50, 3) != ThemeTitleText {
		t.Errorf("title bar color = %v", f.At(50, 3))
	}
}

func TestStatusBarAndLabelPaintClipped(t *testing.T) {
	w := NewWindow("t", 80, 40)
	sb := NewStatusBar("status", raster.Rect{X: 0, Y: 28, W: 80, H: 12})
	sb.Text = "A VERY LONG STATUS MESSAGE THAT MUST BE CLIPPED"
	w.Add(sb)
	w.Render() // must not panic; clipping handled inside
	lbl := NewLabel("l", raster.Rect{X: 70, Y: 5, W: 9, H: 9}, "XYZZY")
	w.Add(lbl)
	w.Render()
}
