// Package fleet is the learner-fleet load generator: it spins up N
// concurrent simulated learners that each fetch a course package from a
// live netstream.Server, play it through a runtime.Session driven by a sim
// policy, and report every event through a batching telemetry client. The
// summary it returns — throughput, startup and session latency, transfer
// and ingest costs — is the measurement behind experiment E10 and the
// BenchmarkFleet* family, and the closest thing the reproduction has to the
// paper's networked-classroom deployment under load.
package fleet

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/faultnet"
	"repro/internal/gamepack"
	"repro/internal/media/playback"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config shapes one fleet run.
type Config struct {
	ServerURL string // netstream server base URL (http://host:port)
	Package   string // package name published under /pkg/

	// TelemetryURL is the base URL of the telemetry ingest endpoints;
	// empty means the package server also ingests (the usual mounting).
	TelemetryURL string
	// Interactive switches learners from local simulation to server-hosted
	// play: each learner creates a session on the play service and drives
	// the whole game over the wire, action by action, while still reporting
	// through telemetry. This is the remote-play load measurement (E12).
	Interactive bool
	// PlayURL is the play service base URL; empty means the package server
	// also hosts play sessions (the usual mounting).
	PlayURL string
	// PlayBinary switches interactive learners to the framed binary act
	// route (/play/actv2) instead of per-act JSON.
	PlayBinary bool
	// PlayPipeline > 1 additionally pipelines fire-and-forget acts, up to
	// this many per framed batch (implies PlayBinary; see
	// playsvc.ClientOptions.PipelineDepth).
	PlayPipeline int
	// PlayMirror runs each interactive learner as a thick client: a local
	// deterministic replica answers reads, act results and frames, and
	// acts ship to the hosted session purely as pipelined batches that
	// are reconciled reply by reply (see playsvc.ClientOptions.LocalMirror).
	// Learners share one decoded-frame cache for their replicas.
	PlayMirror bool
	// Course labels the telemetry stream (default: the package name).
	Course string
	// RunID salts the fleet's session IDs. Defaults to a timestamp so
	// repeated runs against one long-lived server register as new sessions
	// instead of colliding with the previous run's dedup tombstones.
	RunID string

	Learners    int // fleet size (default 50)
	Concurrency int // max simultaneously playing learners (default min(Learners, 128))

	Policy sim.Factory // learner policy (default sim.GuidedFactory)
	Sim    sim.Config  // per-session knobs; Seed is offset per learner

	FlushEvery    int           // telemetry batch size (default 32)
	FlushInterval time.Duration // telemetry interval flush (0 = size-only)

	// ProgressiveStartup additionally measures a ProgressiveOpen per
	// learner (the ranged startup fetch) instead of timing only the cached
	// download.
	ProgressiveStartup bool

	// Obs, when set, receives the fleet's client-side transfer histograms
	// (netstream_delta_bytes / netstream_delta_seconds): every learner's
	// delta-sync download is observed into one shared family on this
	// registry.
	Obs *obs.Registry

	HTTP *http.Client // shared transport (default: pooled faultnet transport with timeouts)

	// metrics is the shared per-download instrument set built from Obs.
	metrics *netstream.ClientMetrics
}

func (c *Config) defaults() (ownsTransport bool, err error) {
	if c.ServerURL == "" || c.Package == "" {
		return false, fmt.Errorf("fleet: need ServerURL and Package")
	}
	if c.TelemetryURL == "" {
		c.TelemetryURL = c.ServerURL
	}
	if c.PlayURL == "" {
		c.PlayURL = c.ServerURL
	}
	if c.Course == "" {
		c.Course = c.Package
	}
	if c.Learners <= 0 {
		c.Learners = 50
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 128
	}
	if c.Concurrency > c.Learners {
		c.Concurrency = c.Learners
	}
	if c.Policy.New == nil {
		c.Policy = sim.GuidedFactory
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 32
	}
	if c.RunID == "" {
		c.RunID = fmt.Sprintf("%x", time.Now().UnixNano())
	}
	if c.HTTP == nil {
		// http.DefaultClient keeps only 2 idle connections per host — a
		// whole fleet hammering one server would then churn a TCP
		// connection per request and measure handshakes, not the server.
		// The shared transport also carries real dial/response-header
		// timeouts, so one stalled server cannot park the fleet.
		c.HTTP = &http.Client{Transport: faultnet.NewHTTPTransport(c.Concurrency)}
		ownsTransport = true
	}
	if c.Obs != nil {
		c.metrics = netstream.NewClientMetrics()
		c.metrics.Register(c.Obs)
	}
	return ownsTransport, nil
}

// Latency summarizes a set of durations.
type Latency struct {
	P50, P90, P99, Max, Mean time.Duration
}

func quantiles(ds []time.Duration) Latency {
	var l Latency
	if len(ds) == 0 {
		return l
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		// Ceiling index: pXX is an upper-bound order statistic, so small
		// samples report their tail instead of hiding it.
		return sorted[int(math.Ceil(q*float64(len(sorted)-1)))]
	}
	l.P50, l.P90, l.P99 = at(0.50), at(0.90), at(0.99)
	l.Max = sorted[len(sorted)-1]
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	l.Mean = sum / time.Duration(len(sorted))
	return l
}

func (l Latency) String() string {
	return fmt.Sprintf("p50 %v  p90 %v  p99 %v  max %v", l.P50.Round(time.Microsecond),
		l.P90.Round(time.Microsecond), l.P99.Round(time.Microsecond), l.Max.Round(time.Microsecond))
}

// Summary is the fleet run's measurement.
type Summary struct {
	Learners  int
	Completed int // sessions that reached an end
	Failed    int // learners that errored (fetch, play or telemetry)
	Steps     int // total policy steps taken

	Elapsed        time.Duration
	SessionsPerSec float64
	EventsPerSec   float64 // telemetry events ingested per wall second

	Fetch   netstream.Stats // cumulative package transfer cost
	Startup Latency         // time to a playable session (fetch + open)
	Session Latency         // play duration per learner
	Flush   Latency         // telemetry batch post latency (per batch mean per learner)

	EventsReported  int // events delivered to the telemetry service
	BatchesReported int
	Posts           int // HTTP posts incl. retries
	Retries         int // posts re-sent after load shedding

	// Reports holds each learner's local analytics digest, in learner
	// order — ground truth to verify the ingested aggregates against.
	Reports []*analytics.Report

	Errors []string // up to 8 sample error messages
}

// String renders the throughput/latency table the load-test CLI prints.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FLEET RUN — %d learners (%d completed, %d failed)\n", s.Learners, s.Completed, s.Failed)
	fmt.Fprintf(&b, "  wall time        : %v\n", s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput       : %.1f sessions/s, %.0f events/s ingested\n", s.SessionsPerSec, s.EventsPerSec)
	fmt.Fprintf(&b, "  startup latency  : %s\n", s.Startup)
	fmt.Fprintf(&b, "  session latency  : %s\n", s.Session)
	fmt.Fprintf(&b, "  batch post       : %s\n", s.Flush)
	fmt.Fprintf(&b, "  package transfer : %d requests, %d bytes, %d not-modified\n",
		s.Fetch.Requests, s.Fetch.BytesFetched, s.Fetch.NotModified)
	fmt.Fprintf(&b, "  telemetry        : %d events in %d batches over %d posts (%d retries)\n",
		s.EventsReported, s.BatchesReported, s.Posts, s.Retries)
	if len(s.Errors) > 0 {
		fmt.Fprintf(&b, "  errors           : %s\n", strings.Join(s.Errors, "; "))
	}
	return b.String()
}

// learnerOutcome is what one learner hands back to the aggregator.
type learnerOutcome struct {
	report  *analytics.Report
	stats   telemetry.ClientStats
	fetch   netstream.Stats
	startup time.Duration
	session time.Duration
	steps   int
	done    bool
	err     error
}

// Run drives the whole fleet and blocks until every learner finishes.
// Learner errors do not abort the run; they are counted and sampled in the
// summary. Run itself errors only on misconfiguration.
func Run(cfg Config) (*Summary, error) {
	ownsTransport, err := cfg.defaults()
	if err != nil {
		return nil, err
	}
	if ownsTransport {
		// Run created this transport; release its idle sockets on exit so
		// looped runs (benchmarks) do not pile up file descriptors.
		defer cfg.HTTP.CloseIdleConnections()
	}
	cache := netstream.NewPackageCache()
	pkgURL := cfg.ServerURL + "/pkg/" + cfg.Package
	// Prefetch once: warms the shared package/chunk cache (every learner
	// then revalidates the manifest with a 304 instead of re-shipping the
	// package, and after a course update the fleet transfers only changed
	// chunks) and yields the start scenario the server-side digests need.
	nc := &netstream.Client{HTTP: cfg.HTTP, Metrics: cfg.metrics}
	blob, prefetch, err := nc.DownloadDelta(pkgURL, cache)
	if err != nil {
		return nil, fmt.Errorf("fleet: prefetch %s: %w", pkgURL, err)
	}
	pkg, err := gamepack.Open(blob)
	if err != nil {
		return nil, fmt.Errorf("fleet: prefetched package: %w", err)
	}
	var mirrorFrames *playback.FrameCache
	if cfg.Interactive && cfg.PlayMirror {
		// All mirror replicas render the same footage; share one cache.
		mirrorFrames = playback.NewFrameCache(0)
	}
	outcomes := make([]learnerOutcome, cfg.Learners)
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	began := time.Now()
	for i := 0; i < cfg.Learners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = runLearner(&cfg, i, pkgURL, pkg, mirrorFrames, cache)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(began)

	sum := &Summary{Learners: cfg.Learners, Elapsed: elapsed}
	sum.Fetch.Add(prefetch)
	var startups, sessions, flushes []time.Duration
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			sum.Failed++
			if len(sum.Errors) < 8 {
				sum.Errors = append(sum.Errors, fmt.Sprintf("learner %d: %v", i, o.err))
			}
			continue
		}
		if o.done {
			sum.Completed++
		}
		sum.Steps += o.steps
		sum.Fetch.Add(o.fetch)
		sum.EventsReported += o.stats.Events
		sum.BatchesReported += o.stats.Batches
		sum.Posts += o.stats.Posts
		sum.Retries += o.stats.Retries
		sum.Reports = append(sum.Reports, o.report)
		startups = append(startups, o.startup)
		sessions = append(sessions, o.session)
		if o.stats.Batches > 0 {
			flushes = append(flushes, o.stats.FlushTime/time.Duration(o.stats.Batches))
		}
	}
	sum.Startup = quantiles(startups)
	sum.Session = quantiles(sessions)
	sum.Flush = quantiles(flushes)
	if secs := elapsed.Seconds(); secs > 0 {
		sum.SessionsPerSec = float64(cfg.Learners-sum.Failed) / secs
		sum.EventsPerSec = float64(sum.EventsReported) / secs
	}
	return sum, nil
}

// runLearner plays one learner end to end: fetch, open (locally or on the
// play service), play, report.
func runLearner(cfg *Config, i int, pkgURL string, pkg *gamepack.Package, mirrorFrames *playback.FrameCache, cache *netstream.PackageCache) learnerOutcome {
	var o learnerOutcome
	nc := &netstream.Client{HTTP: cfg.HTTP, Metrics: cfg.metrics}
	proj := pkg.Project
	start := proj.StartScenario

	startupBegan := time.Now()
	if cfg.ProgressiveStartup {
		// The chunked startup path the progressive client would use on a
		// thin link: its cost is the startup number E8 reports. The shared
		// cache means learners after the first reuse fetched chunks.
		if _, st, err := nc.ProgressiveOpenCached(pkgURL, cache); err != nil {
			o.err = fmt.Errorf("progressive open: %w", err)
			return o
		} else {
			o.fetch.Add(st)
		}
	}
	blob, st, err := nc.DownloadDelta(pkgURL, cache)
	if err != nil {
		o.err = fmt.Errorf("download: %w", err)
		return o
	}
	o.fetch.Add(st)

	tc, err := telemetry.NewClient(telemetry.ClientOptions{
		BaseURL:    cfg.TelemetryURL,
		Course:     cfg.Course,
		Session:    fmt.Sprintf("%s-%s-learner-%05d", cfg.Course, cfg.RunID, i),
		Start:      start,
		FlushEvery: cfg.FlushEvery,
		Interval:   cfg.FlushInterval,
		HTTP:       cfg.HTTP,
	})
	if err != nil {
		o.err = err
		return o
	}

	simCfg := cfg.Sim
	simCfg.Seed = cfg.Sim.Seed + int64(i)*7919

	var res *sim.Result
	if cfg.Interactive {
		// Remote play: the session lives on the play service; the learner
		// drives it over the wire, and every server-emitted event flows
		// through the client into the collector, the telemetry batcher and
		// any caller-supplied observer — the same fan-out local mode gets.
		col := &analytics.Collector{}
		pc, dialErr := playsvc.Dial(playsvc.ClientOptions{
			BaseURL:          cfg.PlayURL,
			Course:           cfg.Package,
			Project:          proj,
			Observer:         sim.Observers(col, tc, cfg.Sim.Observer),
			HTTP:             cfg.HTTP,
			Binary:           cfg.PlayBinary,
			PipelineDepth:    cfg.PlayPipeline,
			LocalMirror:      cfg.PlayMirror,
			Pkg:              pkg,
			MirrorFrameCache: mirrorFrames,
		})
		if dialErr != nil {
			tc.Close()
			o.err = fmt.Errorf("play dial: %w", dialErr)
			return o
		}
		o.startup = time.Since(startupBegan)
		playBegan := time.Now()
		res, err = sim.RunGame(pc, cfg.Policy, simCfg, col)
		// Always leave: a failed run must not strand its hosted session on
		// the server until TTL eviction (or forever with eviction disabled).
		if closeErr := pc.Close(); err == nil {
			err = closeErr
		}
		o.session = time.Since(playBegan)
		if err == nil {
			// Re-digest after the leave: pipelined and mirror clients may
			// still hold buffered acts when RunGame takes its digest, and
			// the leave reply can carry an event tail no earlier reply
			// delivered. Both reach the collector only through Close, so
			// the post-Close digest is the complete one. (Local play has
			// no wire; its in-RunGame digest already saw everything, so
			// the two stay comparable.)
			res.Report = col.Digest(start)
		}
	} else {
		o.startup = time.Since(startupBegan)
		simCfg.Observer = tc
		playBegan := time.Now()
		res, err = sim.Run(blob, cfg.Policy, simCfg)
		o.session = time.Since(playBegan)
	}
	if err != nil {
		tc.Close()
		o.err = fmt.Errorf("session: %w", err)
		return o
	}
	if err := tc.Close(); err != nil {
		o.err = fmt.Errorf("telemetry: %w", err)
		return o
	}
	o.report = res.Report
	o.stats = tc.Stats()
	o.steps = res.Steps
	o.done = res.Completed
	return o
}
