package netstream

import (
	"testing"
	"time"
)

// testLadder is a 4-rung ladder with a clean 2× rate spacing.
func testLadder() []TierInfo {
	return []TierInfo{
		{Name: "", Rate: 8000}, // canonical full quality
		{Name: "med", Rate: 4000},
		{Name: "low", Rate: 2000},
		{Name: "min", Rate: 1000},
	}
}

// abrStep is one tick of a picker scenario: optionally observe a
// throughput sample (bps over one second), then pick with the given
// buffer level and expect a tier.
type abrStep struct {
	observe int     // bytes/sec sample to feed first (0 = no observation)
	buffer  float64 // buffered media seconds at pick time
	want    string
}

func TestABRPickerDecisions(t *testing.T) {
	cases := []struct {
		name  string
		cfg   ABRConfig
		steps []abrStep
	}{
		{
			// No estimate yet: sit on the lowest rung (fast startup).
			name:  "cold start stays low",
			steps: []abrStep{{buffer: 0, want: "min"}, {buffer: 5, want: "min"}},
		},
		{
			// A fat link: the picker climbs, but only after the UpHold
			// streak and only one rung per pick.
			name: "throughput ramp up climbs damped",
			steps: []abrStep{
				{observe: 20000, buffer: 10, want: "min"}, // streak 1 of 2
				{observe: 20000, buffer: 10, want: "low"}, // hold met, +1 rung
				{observe: 20000, buffer: 10, want: "med"},
				{observe: 20000, buffer: 10, want: ""},
				{observe: 20000, buffer: 10, want: ""}, // at the top, stays
			},
		},
		{
			// The link collapses: each pick drops as far as the decayed
			// estimate dictates — no upward-style hold on the way down.
			name: "throughput ramp down drops immediately",
			steps: []abrStep{
				{observe: 20000, buffer: 10, want: "min"},
				{observe: 20000, buffer: 10, want: "low"},
				{observe: 20000, buffer: 10, want: "med"},
				{observe: 400, buffer: 10, want: ""},    // EWMA still remembers the fat link
				{observe: 400, buffer: 10, want: "med"}, // estimate decays → immediate drop
				{observe: 400, buffer: 10, want: "low"}, // and keeps dropping per pick
				{observe: 400, buffer: 10, want: "low"}, // est ≈2.9 KB/s still affords low
				{observe: 400, buffer: 10, want: "min"}, // floor
			},
		},
		{
			// Buffer drain overrides any estimate: panic to the floor.
			name: "buffer drain panics to lowest",
			steps: []abrStep{
				{observe: 50000, buffer: 10, want: "min"},
				{observe: 50000, buffer: 10, want: "low"},
				{observe: 50000, buffer: 10, want: "med"},
				{observe: 50000, buffer: 0.4, want: "min"}, // below MinBuffer
				{observe: 50000, buffer: 0.4, want: "min"},
				{observe: 50000, buffer: 10, want: "min"}, // recovery restarts the hold
				{observe: 50000, buffer: 10, want: "low"},
			},
		},
		{
			// A link flapping around the med/low boundary: the UpHold
			// streak never completes, so the tier holds steady instead of
			// oscillating with the estimate.
			name: "tier oscillation damped",
			steps: []abrStep{
				{observe: 3200, buffer: 10, want: "min"}, // est 3200 → target low
				{observe: 3200, buffer: 10, want: "low"},
				{observe: 12000, buffer: 10, want: "low"}, // est ~6.7k → target med: streak 1
				{observe: 400, buffer: 10, want: "low"},   // est ~4.2k → target low: streak reset
				{observe: 12000, buffer: 10, want: "low"}, // target med again: streak 1
				{observe: 400, buffer: 10, want: "low"},   // reset again — never climbs
				{observe: 12000, buffer: 10, want: "low"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewABRPicker(testLadder(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range tc.steps {
				if s.observe > 0 {
					p.Observe(s.observe, time.Second)
				}
				if got := p.Pick(s.buffer); got != s.want {
					t.Fatalf("step %d: Pick(%.1f) = %q, want %q (throughput %.0f B/s)",
						i, s.buffer, got, s.want, p.Throughput())
				}
			}
		})
	}
}

func TestABRPickerCounts(t *testing.T) {
	p, err := NewABRPicker(testLadder(), ABRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p.Observe(50000, time.Second)
		p.Pick(10)
	}
	p.Pick(0.1) // panic drop from an elevated rung
	c := p.Counts()
	if c.Picks != 5 {
		t.Errorf("Picks = %d, want 5", c.Picks)
	}
	if c.Switches == 0 || c.Panics != 1 {
		t.Errorf("Switches = %d, Panics = %d", c.Switches, c.Panics)
	}
	if got := p.CurrentTier(); got != "min" {
		t.Errorf("CurrentTier after panic = %q", got)
	}
}

func TestABRPickerObserveGuards(t *testing.T) {
	p, err := NewABRPicker(testLadder(), ABRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(0, time.Second)            // cache hit: no bytes
	p.Observe(4096, 10*time.Microsecond) // degenerate timing
	if got := p.Throughput(); got != 0 {
		t.Errorf("guarded observations moved the estimate to %.0f", got)
	}
	if _, err := NewABRPicker(nil, ABRConfig{}); err == nil {
		t.Error("empty ladder accepted")
	}
}
