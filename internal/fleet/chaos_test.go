package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/faultnet"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestClusterChaosSoak is the resilience gate: 200 interactive learners
// play through a 3-node cluster while every HTTP hop — fleet→gateway,
// fleet→front, and gateway→node — crosses a seeded wifi-flaky fault
// injector (added latency, dropped requests, connection resets, injected
// 503s, slow responses), and one node is crash-killed mid-run. The bar is
// the same as the clean churn gate: zero failed learners, zero lost
// sessions, and exact telemetry accounting — retries, act-sequence dedup,
// idempotent creates, auto-resume, and the gateway's exclusion routing
// have to absorb every injected fault. The resilience counters must also
// be scrapeable from a /metrics registry.
func TestClusterChaosSoak(t *testing.T) {
	profile, ok := faultnet.Lookup("wifi-flaky")
	if !ok {
		t.Fatal("wifi-flaky profile missing")
	}

	// Front server: package catalog + telemetry ingest.
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 256})
	t.Cleanup(svc.Close)
	h := svc.Handler()
	if err := srv.Mount("/telemetry/", h); err != nil {
		t.Fatal(err)
	}
	if err := srv.Mount(telemetry.HealthPath, h); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)

	// Play cluster whose gateway→node hops are themselves fault-injected:
	// the breakers and exclusion routing see real transport failures, not
	// just the killed node.
	gwHTTP := faultnet.WrapClient(&http.Client{Transport: faultnet.NewHTTPTransport(64)}, profile, 7)
	cl, err := playsvc.NewCluster(playsvc.ClusterOptions{
		HTTP: gwHTTP,
		Node: playsvc.Options{Shards: 8, TTL: -1, CheckpointEvery: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	gwSrv := httptest.NewServer(cl.Gateway().Handler())
	t.Cleanup(gwSrv.Close)

	// The resilience counters ride the ordinary metrics registry: the
	// gateway's breaker/retry families plus one surviving node's admission
	// counters, exactly what vgbl-server exports at /metrics.
	reg := obs.NewRegistry("vgbl")
	cl.Gateway().Register(reg)
	names := cl.NodeNames()
	victim, kept := names[0], names[1]
	cl.Node(kept).Manager.Register(reg)

	// Crash (not drain) one node as soon as a healthy slice of sessions is
	// live, then bring in a replacement. Sessions on the victim lose at
	// most one checkpoint interval and must thaw elsewhere via the
	// clients' auto-resume.
	churned := make(chan string, 1)
	go func() {
		deadline := time.Now().Add(60 * time.Second)
		for cl.Gateway().SessionCount() < 40 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if err := cl.KillNode(victim); err != nil {
			churned <- "kill " + victim + ": " + err.Error()
			return
		}
		time.Sleep(20 * time.Millisecond)
		if _, err := cl.StartNode(); err != nil {
			churned <- "start replacement: " + err.Error()
			return
		}
		churned <- ""
	}()

	// The whole fleet rides one flaky transport (separate seed from the
	// gateway's so the two fault streams are uncorrelated).
	fleetHTTP := faultnet.WrapClient(&http.Client{Transport: faultnet.NewHTTPTransport(64)}, profile, 11)
	const learners = 200
	sum, err := Run(Config{
		ServerURL:   front.URL,
		PlayURL:     gwSrv.URL,
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Interactive: true,
		Policy:      sim.GuidedFactory,
		Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, WatchEvery: 4},
		FlushEvery:  8,
		HTTP:        fleetHTTP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msg := <-churned; msg != "" {
		t.Fatalf("churn failed: %s", msg)
	}

	// Zero lost sessions: every learner finished despite the faults.
	if sum.Failed != 0 {
		t.Fatalf("%d learners failed under faults: %v", sum.Failed, sum.Errors)
	}
	if len(sum.Reports) != learners {
		t.Fatalf("reports = %d, want %d", len(sum.Reports), learners)
	}
	if sum.Completed == 0 {
		t.Error("no guided learner completed the mission under chaos")
	}

	// The cluster healed behind the fleet's back: every id was created
	// (retried creates may recount — the id-keyed dedup makes the retry
	// safe, not invisible), the kill forced snapshot resumes, and nothing
	// is left live.
	gs := cl.Gateway().Stats()
	if gs.Creates < learners {
		t.Errorf("gateway created %d sessions, want >= %d", gs.Creates, learners)
	}
	if gs.Cluster.SessionsResumed == 0 {
		t.Error("no session resumed — the crash missed the run")
	}
	if gs.Retries == 0 {
		t.Error("gateway retried nothing despite injected faults")
	}
	if gs.Cluster.SessionsLive != 0 || gs.Sessions != 0 {
		t.Errorf("cluster still holds %d live / %d tracked sessions", gs.Cluster.SessionsLive, gs.Sessions)
		for _, name := range cl.NodeNames() {
			for _, id := range cl.Node(name).Manager.LiveSessions() {
				ref, ok := cl.Dir().Lookup(id)
				t.Logf("node %s holds %s (dir entry %v, checkpoint %v)", name, id, ok, ok && ref.Checkpoint)
			}
		}
	}

	// Exact telemetry accounting, the same bar as the clean churn gate:
	// lost acks are replayed under the same batch sequence number and
	// deduplicated server-side, so injected drops/resets must not skew a
	// single counter.
	if !svc.Quiesce(30 * time.Second) {
		t.Fatal("ingest queues did not drain")
	}
	var want analytics.Rolling
	for _, r := range sum.Reports {
		want.Add(r)
	}
	cs := svc.Store().Snapshot()["classroom"]
	if cs.SessionsStarted != learners || cs.SessionsEnded != learners || cs.LiveSessions != 0 {
		t.Fatalf("telemetry session accounting: %+v", cs)
	}
	if cs.Events != want.Events || cs.Decisions != want.Decisions ||
		cs.Knowledge != want.Knowledge || cs.UniqueKnowledge != want.UniqueKnowledge ||
		cs.Rewards != want.Rewards || cs.Completed != want.Completed ||
		cs.Ticks != want.Ticks || cs.QuizAsked != want.QuizAsked ||
		cs.QuizCorrect != want.QuizCorrect {
		t.Errorf("ingested totals diverge from summed reports:\n got %+v\nwant %+v", cs, want)
	}

	// The resilience counters are scrapeable: breaker, retry and shed
	// families all present in the Prometheus rendering.
	var b strings.Builder
	reg.WritePrometheus(&b)
	metrics := b.String()
	for _, family := range []string{
		"vgbl_gateway_breaker_trips_total",
		"vgbl_gateway_breakers_open",
		"vgbl_gateway_retries_total",
		"vgbl_playsvc_shed_total",
		"vgbl_playsvc_inflight",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("metric family %s missing from /metrics", family)
		}
	}
}
