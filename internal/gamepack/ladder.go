// Ladder packaging: one .tkg package carrying the same footage at
// several quality tiers. The canonical tier stays the plain "video"
// section — every ladder-unaware consumer (legacy range clients,
// gamepack.Open, the play service's default publish) keeps working on
// the full-quality rung — while each extra rung rides its own
// "video@<tier>" section. All video sections are chunked at the same
// segment-aligned boundaries by the manifest layer, so the chunk store
// dedups anything shared, tier selection is a per-segment choice of
// which section's chunks to fetch, and a course edit delta-syncs
// per tier exactly like a single-quality package.
package gamepack

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/blobstore"
	"repro/internal/core"
	"repro/internal/media/container"
)

// tierSep separates the video section prefix from the tier name.
const tierSep = "@"

// TierSectionName maps a tier name to its package section name: the
// canonical "" tier is the plain video section, every other tier is
// "video@<tier>".
func TierSectionName(tier string) string {
	if tier == "" {
		return SectionVideo
	}
	return SectionVideo + tierSep + tier
}

// VideoSectionTier reports whether a section name is a video rung and,
// if so, which tier it carries ("" for the canonical section).
func VideoSectionTier(name string) (tier string, ok bool) {
	if name == SectionVideo {
		return "", true
	}
	if rest, found := strings.CutPrefix(name, SectionVideo+tierSep); found && rest != "" {
		return rest, true
	}
	return "", false
}

// TierVideo is one rung handed to BuildLadder: tier name + TKVC blob.
// (Mirrors studio.TierVideo without importing it — gamepack stays below
// the media packages it did not previously depend on.)
type TierVideo struct {
	Tier  string
	Video []byte
}

// ErrBadLadder reports an inconsistent quality ladder (missing
// canonical tier, duplicate tiers, or rungs whose frame clocks or
// chapter tables disagree — switching between such rungs would not be
// frame-exact).
var ErrBadLadder = errors.New("gamepack: inconsistent quality ladder")

// validateLadderVideos opens every rung and checks that all rungs agree
// on geometry, FPS, frame count and the chapter table. Returns the
// canonical rung's index.
func validateLadderVideos(videos []TierVideo) (int, error) {
	if len(videos) == 0 {
		return 0, fmt.Errorf("%w: no tiers", ErrBadLadder)
	}
	canonical := -1
	seen := map[string]bool{}
	var ref *container.Reader
	for i, tv := range videos {
		if strings.ContainsAny(tv.Tier, "/ "+tierSep) {
			return 0, fmt.Errorf("%w: bad tier name %q", ErrBadLadder, tv.Tier)
		}
		if seen[tv.Tier] {
			return 0, fmt.Errorf("%w: duplicate tier %q", ErrBadLadder, tv.Tier)
		}
		seen[tv.Tier] = true
		if tv.Tier == "" {
			canonical = i
		}
		r, err := container.Open(tv.Video)
		if err != nil {
			return 0, fmt.Errorf("gamepack: tier %q: invalid video container: %w", tv.Tier, err)
		}
		if ref == nil {
			ref = r
			continue
		}
		rm, m := ref.Meta(), r.Meta()
		if rm.Width != m.Width || rm.Height != m.Height || rm.FPS != m.FPS {
			return 0, fmt.Errorf("%w: tier %q geometry %dx%d@%d differs from %dx%d@%d",
				ErrBadLadder, tv.Tier, m.Width, m.Height, m.FPS, rm.Width, rm.Height, rm.FPS)
		}
		a, b := ref.Chapters(), r.Chapters()
		if len(a) != len(b) {
			return 0, fmt.Errorf("%w: tier %q has %d chapters, canonical has %d", ErrBadLadder, tv.Tier, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				return 0, fmt.Errorf("%w: tier %q chapter %q disagrees with canonical", ErrBadLadder, tv.Tier, b[j].Name)
			}
		}
	}
	if canonical < 0 {
		return 0, fmt.Errorf("%w: missing canonical \"\" tier", ErrBadLadder)
	}
	return canonical, nil
}

// BuildLadder assembles a .tkg blob whose video rides at every given
// tier. Layout mirrors Build — meta, project, manifest, then the video
// sections — with the extra rungs between the manifest and the
// canonical "video" section, largest-last for progressive loading.
// Every video section's chunks are cut at the same segment boundaries
// (see manifestFor), which is what makes tier selection a per-segment
// fetch-time decision.
func BuildLadder(p *core.Project, videos []TierVideo) ([]byte, error) {
	if p == nil {
		return nil, errors.New("gamepack: nil project")
	}
	canonical, err := validateLadderVideos(videos)
	if err != nil {
		return nil, err
	}
	if len(videos) == 1 {
		return Build(p, videos[canonical].Video)
	}
	projJSON, err := p.Marshal()
	if err != nil {
		return nil, fmt.Errorf("gamepack: %w", err)
	}
	meta := fmt.Sprintf(`{"title":%q,"author":%q,"scenarios":%d}`, p.Title, p.Author, len(p.Scenarios))
	// Extra rungs sorted by name for deterministic layout; canonical last.
	extra := make([]TierVideo, 0, len(videos)-1)
	for i, tv := range videos {
		if i != canonical {
			extra = append(extra, tv)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Tier < extra[j].Tier })
	payload := []section{
		{SectionMeta, []byte(meta)},
		{SectionProject, projJSON},
	}
	for _, tv := range extra {
		payload = append(payload, section{TierSectionName(tv.Tier), tv.Video})
	}
	payload = append(payload, section{SectionVideo, videos[canonical].Video})
	man, err := manifestFor(payload, true)
	if err != nil {
		return nil, err
	}
	sections := make([]section, 0, len(payload)+1)
	sections = append(sections, payload[0], payload[1], section{SectionManifest, man.Encode()})
	sections = append(sections, payload[2:]...)
	return assemble(sections), nil
}

// OpenTier parses a package and swaps the video payload for the named
// tier's rung. Tier "" (or a plain single-quality package) is exactly
// Open. Unknown tiers are rejected, so a caller cannot silently play
// the wrong quality.
func OpenTier(blob []byte, tier string) (*Package, error) {
	pkg, err := Open(blob)
	if err != nil {
		return nil, err
	}
	if tier == "" {
		return pkg, nil
	}
	secs, err := Sections(blob)
	if err != nil {
		return nil, err
	}
	loc, ok := secs[TierSectionName(tier)]
	if !ok {
		return nil, fmt.Errorf("%w: no tier %q (have %s)", ErrBadLadder, tier, strings.Join(VideoTiersOf(secs), ", "))
	}
	video := blob[loc[0] : loc[0]+loc[1]]
	if _, err := container.Open(video); err != nil {
		return nil, fmt.Errorf("gamepack: tier %q video section: %w", tier, err)
	}
	pkg.Video = video
	return pkg, nil
}

// VideoTiersOf lists the tiers present in a parsed section table,
// canonical ("") first, extras sorted.
func VideoTiersOf(secs map[string][2]int) []string {
	var out []string
	for name := range secs {
		if tier, ok := VideoSectionTier(name); ok {
			out = append(out, tier)
		}
	}
	sort.Strings(out) // "" sorts first
	return out
}

// VideoTiers lists the quality tiers a manifest carries, canonical ("")
// first, extras sorted. A single-quality package yields [""].
func (m *Manifest) VideoTiers() []string {
	var out []string
	for _, sc := range m.Sections {
		if tier, ok := VideoSectionTier(sc.Name); ok {
			out = append(out, tier)
		}
	}
	sort.Strings(out)
	return out
}

// VideoSection finds the chunk list for one tier's video section, or
// nil when the manifest lacks that rung.
func (m *Manifest) VideoSection(tier string) *SectionChunks {
	return m.Section(TierSectionName(tier))
}

// LadderOf reports the tiers of a package blob (convenience over
// ManifestOf for callers holding the blob).
func LadderOf(blob []byte) ([]string, error) {
	secs, err := Sections(blob)
	if err != nil {
		return nil, err
	}
	tiers := VideoTiersOf(secs)
	if len(tiers) == 0 {
		return nil, fmt.Errorf("%w: missing section %q", ErrBadPackage, SectionVideo)
	}
	return tiers, nil
}

// SharedTierChunks counts, per non-canonical tier, how many of its
// chunks are byte-identical to a canonical-tier chunk (the dedup the
// blobstore gets for free). Used by the ladder dedup accounting test
// and the E19 report.
func (m *Manifest) SharedTierChunks() map[string]int {
	base := map[blobstore.Hash]bool{}
	if sc := m.VideoSection(""); sc != nil {
		for _, c := range sc.Chunks {
			base[c.Hash] = true
		}
	}
	out := map[string]int{}
	for _, tier := range m.VideoTiers() {
		if tier == "" {
			continue
		}
		n := 0
		for _, c := range m.VideoSection(tier).Chunks {
			if base[c.Hash] {
				n++
			}
		}
		out[tier] = n
	}
	return out
}
