package runtime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/media/raster"
	"repro/internal/ui"
)

// sceneView is the video surface of the game window. It extends the stock
// VideoView with drag-source behavior: dragging starts on a takeable object
// under the pointer, which is how the paper's "drag it to inventory window"
// gesture enters the UI layer.
type sceneView struct {
	ui.VideoView
	session *Session
}

// DragPayload implements ui.DragSource: the payload is the object id under
// the pointer, when that object is takeable.
func (v *sceneView) DragPayload(x, y int) (string, bool) {
	vx, vy, ok := v.ToVideo(x, y)
	if !ok {
		return "", false
	}
	o := v.session.ObjectAt(vx, vy)
	if o == nil || !o.Takeable {
		return "", false
	}
	return o.ID, true
}

// GameWindow is the interactive runtime interface — the paper's Figure 2:
// the augmented video player with mounted image objects, the inventory
// window below, and control buttons.
type GameWindow struct {
	S   *Session
	Win *ui.Window

	view    *sceneView
	inv     *ui.InventoryBar
	status  *ui.StatusBar
	examine bool // examine mode: next video click examines
}

// NewGameWindow assembles the runtime UI around a session.
func NewGameWindow(s *Session) *GameWindow {
	vw, vh, _ := s.VideoMeta()
	// Window large enough for the video plus chrome.
	W := vw + 16
	if W < 240 {
		W = 240
	}
	H := ui.TitleBarHeight + vh + 78
	g := &GameWindow{S: s}
	w := ui.NewWindow("INTERACTIVE VGBL RUNTIME - "+s.Project().Title, W, H)

	// Video surface.
	g.view = &sceneView{session: s}
	g.view.VideoView = *ui.NewVideoView("scene", raster.Rect{X: (W - vw - 4) / 2, Y: ui.TitleBarHeight + 2, W: vw + 4, H: vh + 4})
	g.view.OnVideoClick = func(vx, vy int) {
		if g.examine {
			g.examine = false
			if o := s.ObjectAt(vx, vy); o != nil {
				s.Examine(o.ID)
			}
		} else {
			s.Click(vx, vy)
		}
		g.Refresh()
	}
	w.Add(g.view)

	// Inventory window ("backpack").
	invY := ui.TitleBarHeight + vh + 10
	invPanel := ui.NewPanel("inv-panel", raster.Rect{X: 4, Y: invY, W: W - 8, H: 34}, "INVENTORY")
	g.inv = ui.NewInventoryBar("inventory", invPanel.Content().Inset(1), 6)
	g.inv.OnDrop = func(payload string) bool {
		ok := s.Take(payload)
		g.Refresh()
		return ok
	}
	g.inv.OnPick = func(i int, item string) {
		if err := s.SelectItem(item); err == nil {
			g.status.Text = "USING " + item + " - CLICK A TARGET"
		}
	}
	invPanel.Add(g.inv)
	w.Add(invPanel)

	// Control buttons.
	btnY := invY + 38
	w.Add(ui.NewButton("btn-examine", raster.Rect{X: 4, Y: btnY, W: 64, H: 14}, "EXAMINE", func() {
		g.examine = true
		g.status.Text = "EXAMINE - CLICK AN OBJECT"
	}))
	w.Add(ui.NewButton("btn-cancel", raster.Rect{X: 72, Y: btnY, W: 56, H: 14}, "CANCEL", func() {
		g.examine = false
		s.ClearSelection()
		g.status.Text = "READY"
	}))

	g.status = ui.NewStatusBar("status", raster.Rect{X: 0, Y: H - 14, W: W, H: 14})
	g.status.Text = "READY"
	w.Add(g.status)

	g.Win = w
	g.Refresh()
	return g
}

// Refresh pulls session state into the widgets: current composited frame,
// inventory items, last message, pending popups, end state.
func (g *GameWindow) Refresh() {
	if f, err := g.S.Frame(); err == nil {
		g.view.Frame = f
	}
	// Inventory shows item display names.
	var items []string
	for _, id := range g.S.State().Inventory {
		name := id
		if def := g.S.Project().ItemByID(id); def != nil && def.Name != "" {
			name = def.Name
		}
		items = append(items, name)
	}
	// Map back: the bar needs ids for selection, so store ids and render
	// names via a parallel slice; the stock widget shows what it is given,
	// so give it names but remember ids.
	g.inv.Items = items
	g.inv.OnPick = func(i int, _ string) {
		inv := g.S.State().Inventory
		if i < len(inv) {
			if err := g.S.SelectItem(inv[i]); err == nil {
				g.status.Text = "USING " + inv[i] + " - CLICK A TARGET"
			}
		}
	}
	if msg := g.S.LastMessage(); msg != "" {
		g.status.Text = msg
	}
	if g.S.Ended() {
		g.status.Text = "GAME OVER - " + g.S.Outcome()
	}
	// Surface one pending popup as a modal; quizzes take priority (they
	// are what the player just triggered).
	if g.Win.Popup() == nil {
		if quiz, ok := g.S.PendingQuiz(); ok {
			g.Win.ShowPopup(g.quizPopup(quiz))
		} else if kind, content, ok := g.S.NextPopup(); ok {
			title := "MESSAGE"
			if kind == "web" {
				title = "WEB RESOURCE"
			}
			pop := ui.NewPopup("popup", g.Win.W, g.Win.H, title, content, func() {
				g.Win.ClosePopup()
				g.Refresh() // next popup, if any
			})
			g.Win.ShowPopup(pop)
		}
	}
}

// quizPopup builds a modal assessment dialog: the question plus one button
// per choice. Answering dismisses it and reports the result in the status
// bar.
func (g *GameWindow) quizPopup(quiz *core.Quiz) ui.Widget {
	h := ui.TitleBarHeight + 22 + 16*len(quiz.Choices)
	w := g.Win.W * 4 / 5
	b := raster.Rect{X: (g.Win.W - w) / 2, Y: (g.Win.H - h) / 2, W: w, H: h}
	p := ui.NewPanel("quiz", b, "QUIZ")
	p.Add(ui.NewLabel("quiz.q", raster.Rect{X: b.X + 4, Y: b.Y + ui.TitleBarHeight + 2, W: w - 8, H: 12}, quiz.Question))
	for i, choice := range quiz.Choices {
		idx := i
		p.Add(ui.NewButton(
			fmt.Sprintf("quiz.c%d", i),
			raster.Rect{X: b.X + 8, Y: b.Y + ui.TitleBarHeight + 18 + 16*i, W: w - 16, H: 14},
			choice,
			func() {
				g.Win.ClosePopup()
				g.S.AnswerQuiz(quiz.ID, idx)
				g.Refresh()
			}))
	}
	return p
}

// Tick advances playback one frame and refreshes the presentation.
func (g *GameWindow) Tick() error {
	if err := g.S.Tick(); err != nil {
		return err
	}
	if f, err := g.S.Frame(); err == nil {
		g.view.Frame = f
	}
	return nil
}

// ClickVideo clicks at video coordinates through the window (synthesizes
// the window-coordinate click so focus/popup rules apply).
func (g *GameWindow) ClickVideo(vx, vy int) {
	ox, oy := g.view.VideoOrigin()
	g.Win.Click(ox+vx, oy+vy)
}

// DragToInventory drags from video coordinates into the inventory bar.
func (g *GameWindow) DragToInventory(vx, vy int) error {
	ox, oy := g.view.VideoOrigin()
	ib := g.inv.Bounds()
	err := g.Win.DragDrop(ox+vx, oy+vy, ib.X+ib.W/2, ib.Y+ib.H/2)
	g.Refresh()
	return err
}

// Snapshot renders the game window as deterministic ASCII art (Figure 2).
func (g *GameWindow) Snapshot(cols, rows int) string {
	return g.Win.Snapshot(cols, rows)
}

// StatusText returns the status bar contents (tests and the CLI player).
func (g *GameWindow) StatusText() string { return g.status.Text }

// Describe summarizes the visible scene textually — used by the CLI player
// for its prompt.
func (g *GameWindow) Describe() string {
	sc := g.S.Scenario()
	if sc == nil {
		return "nowhere"
	}
	out := fmt.Sprintf("[%s] %s", sc.ID, sc.Name)
	for _, o := range sc.Objects {
		if g.S.State().ObjectVisible(o) {
			out += fmt.Sprintf("\n  - %s (%s) at %d,%d", o.ID, o.Kind, o.Region.X, o.Region.Y)
		}
	}
	return out
}
