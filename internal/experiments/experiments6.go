package experiments

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/content"
	"repro/internal/fleet"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// E15 is the observability experiment: the same churn scenario as E14 —
// an interactive fleet through a 3-node cluster while one node is
// replaced mid-run — but measured through the metrics layer instead of
// ad-hoc counters. It scrapes every node's /metrics endpoint for the
// per-node act-latency percentile table the load-test CLI prints, and
// reads the gateway's rescue-latency histogram to price what a forced
// handoff costs the unlucky request.
func E15(learners int) (string, error) {
	if learners <= 0 {
		learners = 120
	}
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E15 — where time went: per-node latency and rescue cost under churn\n")
	b.WriteString("3 play nodes behind a consistent-hash gateway; one node replaced\n")
	b.WriteString("mid-run; every number below is scraped from /metrics\n\n")

	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		return "", err
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 256})
	defer svc.Close()
	if err := srv.Mount("/telemetry/", svc.Handler()); err != nil {
		return "", err
	}
	front := httptest.NewServer(srv)
	defer front.Close()

	cl, err := playsvc.NewCluster(playsvc.ClusterOptions{
		Node: playsvc.Options{Shards: 8, TTL: -1, CheckpointEvery: 50 * time.Millisecond},
	})
	if err != nil {
		return "", err
	}
	defer cl.Close()
	if err := cl.AddCourse("classroom", blob); err != nil {
		return "", err
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.StartNode(); err != nil {
			return "", err
		}
	}
	// The gateway's own families (hops, rescue latency) live in a local
	// registry exactly as vgbl-server wires them.
	reg := obs.NewRegistry("vgbl")
	cl.Gateway().Register(reg)
	gw := httptest.NewServer(cl.Gateway().Handler())
	defer gw.Close()

	churnErr := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for cl.Gateway().SessionCount() < learners/5 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		victim := cl.NodeNames()[0]
		if err := cl.StopNode(victim); err != nil {
			churnErr <- err
			return
		}
		_, err := cl.StartNode()
		churnErr <- err
	}()

	sum, err := fleet.Run(fleet.Config{
		ServerURL:   front.URL,
		PlayURL:     gw.URL,
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Interactive: true,
		Policy:      sim.GuidedFactory,
		Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, WatchEvery: 4},
		FlushEvery:  8,
	})
	if err != nil {
		return "", err
	}
	if err := <-churnErr; err != nil {
		return "", fmt.Errorf("churn: %w", err)
	}

	fmt.Fprintf(&b, "churn run: %d learners, %d completed, %d failed, %0.1f sessions/s\n\n",
		learners, sum.Completed, sum.Failed, sum.SessionsPerSec)

	// The per-node table a loadtest run prints: node discovery through the
	// gateway's /play/stats, histograms from each node's own /metrics.
	b.WriteString("per-node act latency (scraped from each node's /metrics):\n")
	b.WriteString(fleet.FormatLatencyTable(fleet.ScrapeActLatencies(nil, gw.URL)))
	b.WriteString("\n")

	// The price of churn, from the gateway's registry: how many routed
	// calls needed more than one backend hop, and what a rescue costs.
	snap := reg.Snapshot()
	gs := cl.Gateway().Stats()
	fmt.Fprintf(&b, "gateway: %d creates, %d rescues, %d retries\n", gs.Creates, gs.Rescues, gs.Retries)
	if m := snap.Metric("vgbl_gateway_hops"); m != nil && len(m.Series) > 0 && m.Series[0].Histogram != nil {
		h := *m.Series[0].Histogram
		multi := int64(0)
		for i, bound := range h.Bounds {
			if bound > 1 {
				multi += h.Counts[i]
			}
		}
		multi += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(&b, "  routed calls          : %d, %d needed >1 backend hop\n", h.Count, multi)
	}
	if m := snap.Metric("vgbl_gateway_rescue_seconds"); m != nil && len(m.Series) > 0 && m.Series[0].Histogram != nil {
		h := *m.Series[0].Histogram
		fmt.Fprintf(&b, "  rescue latency        : p50 %v  p95 %v  max bucket %v over %d rescues\n",
			time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(h.Quantile(1)).Round(time.Microsecond), h.Count)
		b.WriteString("  rescue latency histogram:\n")
		b.WriteString(renderLatencyHistogram(h, "    "))
	}
	return b.String(), nil
}

// renderLatencyHistogram prints the non-empty buckets of a nanosecond
// histogram as "<= bound  count" rows.
func renderLatencyHistogram(h obs.HistogramSnapshot, indent string) string {
	var b strings.Builder
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		label := "+Inf"
		if i < len(h.Bounds) {
			label = time.Duration(h.Bounds[i]).String()
		}
		fmt.Fprintf(&b, "%s<= %-8s %d\n", indent, label, n)
	}
	return b.String()
}
