// Package sim drives game sessions with simulated learners.
//
// The paper claims (C3, C4) that exploration delivers knowledge and that
// rewards motivate completion — claims about mechanisms, made without human
// trials. The simulator makes them measurable: policy bots with different
// exploration styles and motivation models play the same packages the
// interactive runtime serves to people, and experiments E6/E7 aggregate
// their analytics.
package sim

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/runtime"
)

// Game is the session surface the simulator drives. *runtime.Session
// implements it directly (local play); playsvc.Client implements it over
// HTTP (server-hosted play) — the same policies, boredom model and traces
// work unchanged against either, which is what lets the fleet exercise a
// remote play service with the exact learners it simulates locally.
type Game interface {
	Project() *core.Project
	Scenario() *core.Scenario
	State() *core.State
	Ended() bool
	Messages() []string
	PendingQuiz() (*core.Quiz, bool)
	AnswerQuiz(quizID string, choice int) (correct bool, err error)
	Click(vx, vy int)
	Examine(objectID string)
	Talk(objectID string)
	Take(objectID string) bool
	UseItemOn(item, objectID string)
	SelectItem(item string) error
	ClearSelection()
	GotoScenario(id string) error
	// Advance ticks video playback (the watching time between actions).
	Advance(ticks int) error
	// Watch renders the current presentation frame (remotely: fetches it).
	Watch() error
}

// Action is one interaction a learner can perform.
type Action struct {
	Kind   string `json:"kind"` // "talk", "examine", "take", "click", "use", "goto"
	Object string `json:"object,omitempty"`
	Item   string `json:"item,omitempty"` // for "use"
}

// String renders the action compactly ("use ram module on computer").
func (a Action) String() string {
	if a.Kind == "use" {
		return fmt.Sprintf("use %s on %s", a.Item, a.Object)
	}
	return a.Kind + " " + a.Object
}

// AvailableActions enumerates every interaction currently possible, in
// deterministic order: per visible object its kind-appropriate verbs, then
// item×object use combinations.
func AvailableActions(s Game) []Action {
	sc := s.Scenario()
	if sc == nil || s.Ended() {
		return nil
	}
	var out []Action
	st := s.State()
	for _, o := range sc.Objects {
		if !st.ObjectVisible(o) {
			continue
		}
		switch o.Kind {
		case core.NPC:
			out = append(out, Action{Kind: "talk", Object: o.ID})
		case core.Item:
			out = append(out, Action{Kind: "examine", Object: o.ID})
			if o.Takeable {
				out = append(out, Action{Kind: "take", Object: o.ID})
			}
		default:
			out = append(out, Action{Kind: "examine", Object: o.ID})
			out = append(out, Action{Kind: "click", Object: o.ID})
		}
	}
	seen := map[string]bool{}
	for _, item := range st.Inventory {
		if seen[item] {
			continue
		}
		seen[item] = true
		for _, o := range sc.Objects {
			if st.ObjectVisible(o) && o.Kind != core.Item {
				out = append(out, Action{Kind: "use", Object: o.ID, Item: item})
			}
		}
	}
	return out
}

// Apply performs the action on the session.
func Apply(s Game, a Action) {
	switch a.Kind {
	case "talk":
		s.Talk(a.Object)
	case "examine":
		s.Examine(a.Object)
	case "take":
		s.Take(a.Object)
	case "click":
		if _, o := s.Project().FindObject(a.Object); o != nil {
			s.Click(o.Region.X+o.Region.W/2, o.Region.Y+o.Region.H/2)
		}
	case "use":
		s.UseItemOn(a.Item, a.Object)
	case "goto":
		// Policies navigate via nav-button clicks; direct scenario jumps
		// exist for hand-written and replayed traces.
		_ = s.GotoScenario(a.Object)
	}
}

// Policy chooses the next action. Implementations may keep per-run state;
// create one policy instance per run via a Factory.
type Policy interface {
	Name() string
	Choose(s Game, actions []Action, rng *rand.Rand) (Action, bool)
}

// Factory creates fresh policy instances for cohort runs.
type Factory struct {
	Name string
	New  func() Policy
}

// RandomWalker clicks around uniformly at random — the floor of learner
// behavior.
type RandomWalker struct{}

// Name implements Policy.
func (RandomWalker) Name() string { return "random" }

// Choose implements Policy.
func (RandomWalker) Choose(s Game, actions []Action, rng *rand.Rand) (Action, bool) {
	if len(actions) == 0 {
		return Action{}, false
	}
	return actions[rng.Intn(len(actions))], true
}

// Explorer prefers actions it has not tried yet (systematic adventure-game
// exploration), falling back to random repeats.
type Explorer struct {
	tried map[string]bool
}

// NewExplorer returns a fresh explorer.
func NewExplorer() *Explorer { return &Explorer{tried: map[string]bool{}} }

// Name implements Policy.
func (e *Explorer) Name() string { return "explorer" }

// Choose implements Policy.
func (e *Explorer) Choose(s Game, actions []Action, rng *rand.Rand) (Action, bool) {
	if len(actions) == 0 {
		return Action{}, false
	}
	var fresh []Action
	for _, a := range actions {
		if !e.tried[a.String()] {
			fresh = append(fresh, a)
		}
	}
	pick := actions
	if len(fresh) > 0 {
		pick = fresh
	}
	a := pick[rng.Intn(len(pick))]
	e.tried[a.String()] = true
	return a, true
}

// Guided models a learner following the course's guidance: it prioritizes
// using carried items where they fit, collecting items, examining the
// unexamined, talking to NPCs, and finally navigating — roughly what the
// paper's teacher-guided student would do.
type Guided struct {
	tried map[string]bool
}

// NewGuided returns a fresh guided learner.
func NewGuided() *Guided { return &Guided{tried: map[string]bool{}} }

// Name implements Policy.
func (g *Guided) Name() string { return "guided" }

// Choose implements Policy.
func (g *Guided) Choose(s Game, actions []Action, rng *rand.Rand) (Action, bool) {
	if len(actions) == 0 {
		return Action{}, false
	}
	score := func(a Action) int {
		key := a.String()
		novel := !g.tried[key]
		switch a.Kind {
		case "use":
			// Only worthwhile where an OnUse event exists.
			if _, o := s.Project().FindObject(a.Object); o != nil && o.EventFor(core.OnUse, a.Item) != nil {
				if novel {
					return 60
				}
				return 25 // retry: conditions may hold now
			}
			return 1
		case "take":
			if novel {
				return 50
			}
			return 10
		case "examine":
			if novel {
				return 40
			}
			return 2
		case "talk":
			if novel {
				return 30
			}
			return 3
		case "click":
			if novel {
				return 20
			}
			return 5
		}
		return 0
	}
	best := actions[0]
	bestScore := -1
	for _, a := range actions {
		if sc := score(a); sc > bestScore {
			best, bestScore = a, sc
		}
	}
	g.tried[best.String()] = true
	return best, true
}

// Factories for the stock policies.
var (
	RandomFactory   = Factory{Name: "random", New: func() Policy { return RandomWalker{} }}
	ExplorerFactory = Factory{Name: "explorer", New: func() Policy { return NewExplorer() }}
	GuidedFactory   = Factory{Name: "guided", New: func() Policy { return NewGuided() }}
)

// Config tunes a simulated run.
type Config struct {
	MaxSteps int // hard cap on interactions
	// Patience is how many consecutive steps without novelty (no new
	// message, knowledge, scenario or reward) the learner tolerates before
	// quitting — the boredom model.
	Patience int
	// RewardBoost is extra patience granted every time a reward arrives;
	// setting it to zero models a learner indifferent to rewards. This is
	// experiment E7's knob.
	RewardBoost int
	// TicksPerStep advances video playback between actions (watching time).
	TicksPerStep int
	Seed         int64
	// Observer, when set, receives every runtime event in addition to the
	// run's own analytics.Collector — the hook a remote telemetry client
	// plugs into. It must be safe for the goroutine running the session.
	Observer runtime.Observer
	// WatchEvery renders the presentation frame every N steps (0 disables):
	// locally a headless render, remotely a frame fetch over the wire —
	// the knob that adds realistic frame traffic to interactive fleets.
	WatchEvery int
	// RecordTrace captures the action trace in Result.Trace so the exact
	// run can be replayed through a fresh session (see Replay).
	RecordTrace bool
}

// multiObserver forwards each event to every sink.
type multiObserver []runtime.Observer

// Record implements runtime.Observer.
func (m multiObserver) Record(e runtime.Event) {
	for _, o := range m {
		o.Record(e)
	}
}

// Observers tees events to every non-nil observer. It returns nil when
// none are given.
func Observers(obs ...runtime.Observer) runtime.Observer {
	var live multiObserver
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// Result is the outcome of one simulated session.
type Result struct {
	Policy     string
	Steps      int
	Completed  bool
	QuitReason string // "ended", "bored", "max-steps", "no-actions"
	Report     *analytics.Report
	Trace      []TraceStep // recorded when Config.RecordTrace is set
}

// Run plays one session with a fresh policy instance.
func Run(pkgBlob []byte, f Factory, cfg Config) (*Result, error) {
	col := &analytics.Collector{}
	s, err := runtime.NewSession(pkgBlob, runtime.Options{Observer: Observers(col, cfg.Observer)})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return RunGame(s, f, cfg, col)
}

// RunGame drives one policy over an already-constructed game — a local
// runtime.Session or a remote play-service client. col must already be
// wired as (part of) the game's observer so the digested Report matches
// the events the game actually emitted; Run and the fleet do exactly that.
// Config.Observer is NOT consulted here: events flow from the game to the
// observer it was constructed with, so wire any extra sink into the game
// (Observers helps) before calling.
func RunGame(s Game, f Factory, cfg Config, col *analytics.Collector) (*Result, error) {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 200
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 12
	}
	if cfg.TicksPerStep <= 0 {
		cfg.TicksPerStep = 3
	}
	policy := f.New()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Policy: f.Name}

	patience := cfg.Patience
	boredom := 0
	// Novelty tracking. Only *distinct* messages count — hearing "it will
	// not boot" for the fifth time bores a learner, it does not engage
	// them. Knowledge, new scenarios and rewards are novel by construction.
	seenMsgs := map[string]bool{}
	msgCount := 0
	for _, m := range s.Messages() {
		seenMsgs[m] = true
		msgCount++
	}
	lastKnow := len(s.State().Learned)
	lastRewards := len(s.State().Rewards)
	lastScenarios := len(s.State().Visited)

	for res.Steps < cfg.MaxSteps {
		if s.Ended() {
			res.QuitReason = "ended"
			res.Completed = true
			break
		}
		actions := AvailableActions(s)
		a, ok := policy.Choose(s, actions, rng)
		if !ok {
			res.QuitReason = "no-actions"
			break
		}
		Apply(s, a)
		var step *TraceStep
		if cfg.RecordTrace {
			res.Trace = append(res.Trace, TraceStep{Action: a, Ticks: cfg.TicksPerStep})
			step = &res.Trace[len(res.Trace)-1]
		}
		// Answer any quiz the action triggered. Accuracy depends on whether
		// the assessed knowledge unit was actually delivered to this
		// learner: 90% when learned, chance level otherwise — this is what
		// lets E6 report learning *outcomes* rather than mere exposure.
		for {
			quiz, ok := s.PendingQuiz()
			if !ok {
				break
			}
			choice := rng.Intn(len(quiz.Choices))
			knows := quiz.Knowledge == "" || s.State().Learned[quiz.Knowledge]
			if knows && rng.Float64() < 0.9 {
				choice = quiz.Answer
			}
			if _, err := s.AnswerQuiz(quiz.ID, choice); err != nil {
				return nil, err
			}
			if step != nil {
				step.Answers = append(step.Answers, QuizAnswer{Quiz: quiz.ID, Choice: choice})
			}
		}
		if err := s.Advance(cfg.TicksPerStep); err != nil {
			return nil, err
		}
		res.Steps++
		if cfg.WatchEvery > 0 && res.Steps%cfg.WatchEvery == 0 {
			if err := s.Watch(); err != nil {
				return nil, err
			}
		}
		novelty := false
		msgs := s.Messages()
		for _, m := range msgs[msgCount:] {
			if !seenMsgs[m] {
				seenMsgs[m] = true
				novelty = true
			}
		}
		msgCount = len(msgs)
		st := s.State()
		if len(st.Learned) > lastKnow || len(st.Visited) > lastScenarios {
			novelty = true
		}
		if len(st.Rewards) > lastRewards {
			novelty = true
			patience += cfg.RewardBoost * (len(st.Rewards) - lastRewards)
		}
		lastKnow, lastRewards, lastScenarios = len(st.Learned), len(st.Rewards), len(st.Visited)
		if novelty {
			boredom = 0
		} else {
			boredom++
			if boredom >= patience {
				res.QuitReason = "bored"
				break
			}
		}
	}
	if res.QuitReason == "" {
		if s.Ended() {
			res.QuitReason = "ended"
			res.Completed = true
		} else {
			res.QuitReason = "max-steps"
		}
	}
	res.Report = col.Digest(s.Project().StartScenario)
	return res, nil
}

// RunCohort plays n sessions with distinct seeds across worker goroutines
// and returns the results in seed order.
func RunCohort(pkgBlob []byte, f Factory, n int, cfg Config, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = 1
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				c := cfg
				c.Seed = cfg.Seed + int64(i)*7919
				results[i], errs[i] = Run(pkgBlob, f, c)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Summarize aggregates cohort results.
func Summarize(results []*Result) analytics.Aggregate {
	reports := make([]*analytics.Report, 0, len(results))
	for _, r := range results {
		reports = append(reports, r.Report)
	}
	return analytics.AggregateReports(reports)
}

// CompletionRate is the fraction of results that finished the game.
func CompletionRate(results []*Result) float64 {
	if len(results) == 0 {
		return 0
	}
	done := 0
	for _, r := range results {
		if r.Completed {
			done++
		}
	}
	return float64(done) / float64(len(results))
}
