package netstream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/blobstore"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/playback"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

func testServer(t *testing.T) (*httptest.Server, []byte) {
	t.Helper()
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		t.Fatal(err)
	}
	srv.AddResource("umbrella", "UMBRELLAS KEEP YOU DRY")
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, blob
}

func TestServerValidation(t *testing.T) {
	srv := NewServer()
	if err := srv.AddPackage("bad name", []byte("x")); err == nil {
		t.Error("bad name accepted")
	}
	if err := srv.AddPackage("junk", []byte("not a package")); err == nil {
		t.Error("junk package accepted")
	}
}

func TestListAndNotFound(t *testing.T) {
	ts, _ := testServer(t)
	c := &Client{}
	body, _, err := c.FetchResource(ts.URL + "/list")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(body) != "classroom" {
		t.Errorf("list = %q", body)
	}
	if _, _, err := c.Download(ts.URL + "/pkg/ghost"); err == nil {
		t.Error("missing package downloadable")
	}
	if _, _, err := c.FetchResource(ts.URL + "/res/ghost"); err == nil {
		t.Error("missing resource fetchable")
	}
}

func TestDownloadWholePackage(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	got, st, err := c.Download(ts.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("downloaded bytes differ")
	}
	if st.BytesFetched != len(blob) || st.Requests != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProgressiveOpenFetchesLess(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	g, st, err := c.ProgressiveOpen(ts.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	if g.Project.Title != "Fix The Classroom Computer" {
		t.Error("project lost")
	}
	if !g.HasSegment("seg-classroom") {
		t.Error("start segment not fetched")
	}
	if g.HasSegment("seg-market") {
		t.Error("non-start segment fetched eagerly")
	}
	// Startup never needs the whole package.
	if st.BytesFetched >= len(blob) {
		t.Errorf("progressive fetched %d of %d bytes", st.BytesFetched, len(blob))
	}
	if st.Requests < 3 {
		t.Errorf("requests = %d, expected several ranged fetches", st.Requests)
	}
}

func TestProgressiveStartupScalesWithSegmentNotFilm(t *testing.T) {
	// A film with many segments: the start segment is a small slice of the
	// whole, so progressive startup should fetch a small fraction — E8's
	// central claim.
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 10, MinShotFrames: 20, MaxShotFrames: 24,
		Seed: 12,
	})
	video, err := studio.Record(film, studio.Options{QStep: 6, GOP: 10, ShotMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := container.Open(video)
	chs := r.Chapters()
	p := core.NewProject("Long Course")
	p.StartScenario = "s0"
	for i, ch := range chs {
		p.Scenarios = append(p.Scenarios, &core.Scenario{
			ID: fmt.Sprintf("s%d", i), Name: ch.Name, Segment: ch.Name,
		})
	}
	blob, err := gamepack.Build(p, video)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.AddPackage("long", blob); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{}
	_, st, err := c.ProgressiveOpen(ts.URL + "/pkg/long")
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesFetched >= len(blob)/2 {
		t.Errorf("10-segment startup fetched %d of %d bytes (>=50%%)", st.BytesFetched, len(blob))
	}
}

func TestProgressiveFramesMatchLocalDecode(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	g, _, err := c.ProgressiveOpen(ts.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	// Local reference decode.
	pkg, err := gamepack.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	v, err := playback.OpenVideo(pkg.Video, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := g.head.ChapterByName("seg-classroom")
	for _, i := range []int{ch.Start, ch.Start + 3, ch.End - 1} {
		remote, err := g.FrameAt(i)
		if err != nil {
			t.Fatalf("FrameAt(%d): %v", i, err)
		}
		local, err := v.FrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if !remote.Equal(local) {
			t.Fatalf("frame %d differs between remote and local decode", i)
		}
	}
	// Frames outside fetched segments fail until fetched.
	market, _ := g.head.ChapterByName("seg-market")
	if _, err := g.FrameAt(market.End - 1); err == nil {
		t.Fatal("unfetched frame decoded")
	}
	if _, err := g.FetchSegment("seg-market"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.FrameAt(market.End - 1); err != nil {
		t.Fatalf("after fetch: %v", err)
	}
	if _, err := g.FetchSegment("seg-ghost"); err == nil {
		t.Fatal("unknown segment fetched")
	}
}

func TestFetchResource(t *testing.T) {
	ts, _ := testServer(t)
	c := &Client{}
	body, st, err := c.FetchResource(ts.URL + "/res/umbrella")
	if err != nil {
		t.Fatal(err)
	}
	if body != "UMBRELLAS KEEP YOU DRY" {
		t.Errorf("body = %q", body)
	}
	if st.BytesFetched != len(body) {
		t.Errorf("stats = %+v", st)
	}
}

func TestExtentReaderSeek(t *testing.T) {
	ts, blob := testServer(t)
	// Ranged reads across extent boundaries must reproduce the exact bytes
	// of the assembled package (the store-backed reader is what ServeContent
	// sees for range requests).
	c := &Client{}
	var st Stats
	for _, r := range [][2]int{{0, 16}, {5, len(blob)}, {len(blob) / 2, len(blob)/2 + 8192}, {len(blob) - 7, len(blob)}} {
		got, err := c.fetchRange(ts.URL+"/pkg/classroom", r[0], r[1], &st)
		if err != nil {
			t.Fatalf("range [%d,%d): %v", r[0], r[1], err)
		}
		if string(got) != string(blob[r[0]:r[1]]) {
			t.Fatalf("range [%d,%d) differs from blob", r[0], r[1])
		}
	}
}

func TestETagNotModified(t *testing.T) {
	ts, blob := testServer(t)
	// First GET reports a validator.
	resp, err := http.Get(ts.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on package response")
	}
	// A conditional GET with the validator gets 304 and no body.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/pkg/classroom", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %s, want 304", resp.Status)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	// A stale validator still gets the full package.
	req.Header.Set("If-None-Match", `"deadbeef"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != len(blob) {
		t.Fatalf("stale validator: %s, %d bytes (want 200, %d)", resp.Status, len(body), len(blob))
	}
}

func TestDownloadCached(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	cache := NewPackageCache()
	got, st, err := c.DownloadCached(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("first fetch differs")
	}
	if st.BytesFetched != len(blob) || st.NotModified != 0 {
		t.Errorf("first fetch stats = %+v", st)
	}
	// Second fetch revalidates: one request, no payload.
	got, st, err = c.DownloadCached(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("cached fetch differs")
	}
	if st.Requests != 1 || st.BytesFetched != 0 || st.NotModified != 1 {
		t.Errorf("cached fetch stats = %+v", st)
	}
}

func TestMount(t *testing.T) {
	srv := NewServer()
	if err := srv.Mount("/pkg/", http.NotFoundHandler()); err == nil {
		t.Error("shadowing /pkg/ accepted")
	}
	if err := srv.Mount("/pkg/x", http.NotFoundHandler()); err == nil {
		t.Error("mount inside /pkg/ accepted")
	}
	if err := srv.Mount("/", http.NotFoundHandler()); err == nil {
		t.Error("root subtree mount accepted")
	}
	if err := srv.Mount("/list", http.NotFoundHandler()); err == nil {
		t.Error("shadowing /list accepted")
	}
	if err := srv.Mount("/chunk/", http.NotFoundHandler()); err == nil {
		t.Error("shadowing /chunk/ accepted")
	}
	if err := srv.Mount("/manifest/x", http.NotFoundHandler()); err == nil {
		t.Error("mount inside /manifest/ accepted")
	}
	if err := srv.Mount("/listing", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})); err != nil {
		t.Errorf("non-shadowing /listing rejected: %v", err)
	}
	if err := srv.Mount("healthz", http.NotFoundHandler()); err == nil {
		t.Error("relative pattern accepted")
	}
	if err := srv.Mount("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})); err != nil {
		t.Fatal(err)
	}
	if err := srv.Mount("/telemetry/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "telemetry:"+r.URL.Path)
	})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, tc := range []struct{ path, want string }{
		{"/healthz", "ok"},
		{"/telemetry/stats", "telemetry:/telemetry/stats"},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != tc.want {
			t.Errorf("%s = %q, want %q", tc.path, body, tc.want)
		}
	}
	// /healthz/extra is not matched by the exact /healthz mount.
	resp, err := http.Get(ts.URL + "/healthz/extra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/healthz/extra = %s, want 404", resp.Status)
	}
}

// --- chunk store delivery (PR 4) -------------------------------------------

// longCourse builds a 10-segment course; with edit set, segment 5 is
// re-shot (same amplitude, different noise) — the single-segment edit a
// delta client must sync.
func longCourse(t testing.TB, edit bool) []byte {
	t.Helper()
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 10, MinShotFrames: 20, MaxShotFrames: 24,
		NoiseAmp: 1, Seed: 12,
	})
	if edit {
		film.Shots[5].Seed ^= 0xbeef
	}
	video, err := studio.Record(film, studio.Options{QStep: 6, GOP: 10, ShotMarkers: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := container.Open(video)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProject("Long Course")
	p.StartScenario = "s0"
	for i, ch := range r.Chapters() {
		p.Scenarios = append(p.Scenarios, &core.Scenario{
			ID: fmt.Sprintf("s%d", i), Name: ch.Name, Segment: ch.Name,
		})
	}
	blob, err := gamepack.Build(p, video)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestManifestEndpoint(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	body, _, err := c.FetchResource(ts.URL + "/manifest/classroom")
	if err != nil {
		t.Fatal(err)
	}
	man, err := gamepack.ParseManifest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	want, err := gamepack.ExtractManifest(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Sections) != len(want.Sections) {
		t.Fatalf("manifest has %d sections, want %d", len(man.Sections), len(want.Sections))
	}
	if _, _, err := c.FetchResource(ts.URL + "/manifest/ghost"); err == nil {
		t.Error("missing manifest fetchable")
	}
}

func TestChunkEndpoint(t *testing.T) {
	ts, blob := testServer(t)
	man, err := gamepack.ExtractManifest(blob)
	if err != nil {
		t.Fatal(err)
	}
	ref := man.Section(gamepack.SectionVideo).Chunks[0]
	c := &Client{}
	var st Stats
	data, err := c.fetchChunk(ts.URL, ref, &st)
	if err != nil {
		t.Fatal(err)
	}
	if blobstore.Sum(data) != ref.Hash || len(data) != ref.Size {
		t.Fatal("chunk bytes do not match manifest")
	}
	// Unknown chunk → 404; malformed hash → 400.
	var ghost gamepack.ChunkRef
	ghost.Hash[0] = 0xAB
	ghost.Size = 1
	if _, err := c.fetchChunk(ts.URL, ghost, &st); err == nil {
		t.Error("unknown chunk served")
	}
	resp, err := http.Get(ts.URL + "/chunk/nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad hash = %s, want 400", resp.Status)
	}
}

func TestServerRejectsLyingManifest(t *testing.T) {
	// A package whose embedded manifest does not describe its payload must
	// be rejected at publish time.
	_, blob := testServer(t)
	secs, err := gamepack.Sections(blob)
	if err != nil {
		t.Fatal(err)
	}
	loc := secs[gamepack.SectionVideo]
	bad := append([]byte(nil), blob...)
	bad[loc[0]+loc[1]-1] ^= 0x01 // corrupt video payload (manifest now lies)
	srv := NewServer()
	if err := srv.AddPackage("liar", bad); err == nil {
		t.Fatal("package with mismatched manifest accepted")
	}

	// A structurally valid package whose *manifest* lies (one video chunk
	// hash flipped, section CRCs all correct) must also be rejected — and
	// the chunks deposited before the mismatch must be rolled back.
	man, err := gamepack.ExtractManifest(blob)
	if err != nil {
		t.Fatal(err)
	}
	vsec := man.Section(gamepack.SectionVideo)
	vsec.Chunks[len(vsec.Chunks)-1].Hash[0] ^= 0xFF
	lying := rebuildWithManifest(t, blob, man)
	srv2 := NewServer()
	if err := srv2.AddPackage("liar", lying); err == nil {
		t.Fatal("package with lying manifest accepted")
	}
	if st := srv2.StoreStats(); st.Chunks != 0 || st.StoredBytes != 0 {
		t.Errorf("failed publish leaked %d chunks (%d bytes)", st.Chunks, st.StoredBytes)
	}
}

// rebuildWithManifest re-frames a package with a replacement manifest
// section payload, recomputing section CRCs (the TKGP layout is public).
func rebuildWithManifest(t *testing.T, blob []byte, man *gamepack.Manifest) []byte {
	t.Helper()
	secs, err := gamepack.Sections(blob)
	if err != nil {
		t.Fatal(err)
	}
	type sec struct {
		name string
		data []byte
	}
	var ordered []sec
	for name, loc := range secs {
		data := blob[loc[0] : loc[0]+loc[1]]
		if name == gamepack.SectionManifest {
			data = man.Encode()
		}
		ordered = append(ordered, sec{name, data})
	}
	sort.Slice(ordered, func(i, j int) bool { return secs[ordered[i].name][0] < secs[ordered[j].name][0] })
	var out []byte
	out = append(out, "TKGP"...)
	out = append(out, 1)
	out = binary.AppendUvarint(out, uint64(len(ordered)))
	for _, s := range ordered {
		out = binary.AppendUvarint(out, uint64(len(s.name)))
		out = append(out, s.name...)
		out = binary.AppendUvarint(out, uint64(len(s.data)))
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(s.data))
		out = append(out, crc[:]...)
		out = append(out, s.data...)
	}
	return out
}

// TestDedupAcrossCourses is the dedup acceptance: two courses sharing
// synthesized footage are stored as shared chunks exactly once — the
// store holds fewer bytes than the packages sum to.
func TestDedupAcrossCourses(t *testing.T) {
	course := content.Classroom()
	video, err := course.RecordVideo(studio.Options{QStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	blobA, err := gamepack.Build(course.Project, video)
	if err != nil {
		t.Fatal(err)
	}
	other := content.Classroom()
	other.Project.Title = "Remedial Repair Course"
	other.Project.Quizzes = other.Project.Quizzes[:1]
	blobB, err := gamepack.Build(other.Project, video)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.AddPackage("a", blobA); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddPackage("b", blobB); err != nil {
		t.Fatal(err)
	}
	st := srv.StoreStats()
	total := len(blobA) + len(blobB)
	if st.StoredBytes >= int64(total) {
		t.Errorf("store holds %d bytes for %d bytes of packages — no dedup", st.StoredBytes, total)
	}
	if st.DedupHits == 0 {
		t.Error("no dedup hits across shared-footage courses")
	}
	// Both packages still download byte-identical.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{}
	for name, want := range map[string][]byte{"a": blobA, "b": blobB} {
		got, _, err := c.Download(ts.URL + "/pkg/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("package %q served differently than published", name)
		}
	}
}

func TestDownloadDeltaColdWarm(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	cache := NewPackageCache()
	got, st, err := c.DownloadDelta(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("cold delta download differs from package")
	}
	if st.ChunksFetched == 0 || st.ChunkHits != 0 {
		t.Errorf("cold stats = %+v", st)
	}
	// Warm: one conditional manifest request, no bytes.
	got, st, err = c.DownloadDelta(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("warm delta download differs")
	}
	if st.Requests != 1 || st.BytesFetched != 0 || st.NotModified != 1 || st.ChunksFetched != 0 {
		t.Errorf("warm stats = %+v", st)
	}
}

// TestDeltaSyncSingleSegmentEdit is the delta acceptance: after a
// one-segment course edit, a re-syncing client transfers only the chunks
// whose hashes changed (every one verified), not the package.
func TestDeltaSyncSingleSegmentEdit(t *testing.T) {
	srv := NewServer()
	v1 := longCourse(t, false)
	if err := srv.AddPackage("long", v1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{}
	cache := NewPackageCache()
	url := ts.URL + "/pkg/long"
	if _, _, err := c.DownloadDelta(url, cache); err != nil {
		t.Fatal(err)
	}
	// Publish the edited course under the same name.
	v2 := longCourse(t, true)
	if err := srv.AddPackage("long", v2); err != nil {
		t.Fatal(err)
	}
	man1, _ := gamepack.ExtractManifest(v1)
	man2, _ := gamepack.ExtractManifest(v2)
	old := man1.ChunkSet()
	wantBytes, wantChunks := 0, 0
	for h, size := range man2.ChunkSet() {
		if _, ok := old[h]; !ok {
			wantBytes += size
			wantChunks++
		}
	}
	if wantChunks == 0 {
		t.Fatal("fixture edit changed no chunks")
	}
	got, st, err := c.DownloadDelta(url, cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(v2) {
		t.Fatal("resynced package differs from v2")
	}
	if st.ChunksFetched != wantChunks {
		t.Errorf("fetched %d chunks, manifest diff is %d", st.ChunksFetched, wantChunks)
	}
	manifestBytes := len(man2.Encode())
	if st.BytesFetched != wantBytes+manifestBytes {
		t.Errorf("fetched %d bytes, want %d chunk bytes + %d manifest bytes", st.BytesFetched, wantBytes, manifestBytes)
	}
	if st.BytesFetched >= len(v2)/2 {
		t.Errorf("delta transferred %d of %d bytes — not a delta", st.BytesFetched, len(v2))
	}
	if st.ChunkHits == 0 {
		t.Error("no chunk cache hits on unchanged segments")
	}
}

// TestDeltaVerifiesChunkHashes: a server (or middlebox) that returns wrong
// chunk bytes must be caught by per-chunk verification, never assembled.
func TestDeltaVerifiesChunkHashes(t *testing.T) {
	inner, _ := testServer(t)
	// A proxy that forwards everything but flips one byte in every chunk
	// response — a corrupted cache or hostile middlebox.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(inner.URL + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if strings.HasPrefix(r.URL.Path, "/chunk/") && len(body) > 0 {
			body[len(body)/2] ^= 0x01
		}
		for k, v := range resp.Header {
			w.Header()[k] = v
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}))
	defer proxy.Close()
	c := &Client{}
	cache := NewPackageCache()
	// Per-chunk verification rejects every corrupted chunk; the sync then
	// degrades to the whole-package path (uncorrupted here) instead of
	// failing outright.
	blob, st, err := c.DownloadDelta(proxy.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatalf("delta did not fall back past corrupted chunks: %v", err)
	}
	want, _, err := (&Client{}).Download(inner.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatal("fallback package differs from the server's")
	}
	// The corrupted bytes never entered the shared chunk cache: a later
	// delta sync against the honest server assembles from scratch.
	if st.ChunksFetched != 0 {
		t.Fatalf("%d corrupted chunks counted as fetched", st.ChunksFetched)
	}
	if blob2, _, err := c.DownloadDelta(inner.URL+"/pkg/classroom", NewPackageCache()); err != nil {
		t.Fatal(err)
	} else if !bytes.Equal(blob2, want) {
		t.Fatal("honest delta sync differs from the server's package")
	}
}

// TestPackageCacheByteBudget pins the satellite: the package cache evicts
// by LRU once its byte budget is exceeded instead of growing per URL.
func TestPackageCacheByteBudget(t *testing.T) {
	srv := NewServer()
	blobs := map[string][]byte{}
	for _, name := range []string{"classroom", "museum", "street"} {
		var course *content.Course
		switch name {
		case "classroom":
			course = content.Classroom()
		case "museum":
			course = content.Museum()
		default:
			course = content.StreetDemo()
		}
		blob, err := course.BuildPackage(studio.Options{QStep: 8})
		if err != nil {
			t.Fatal(err)
		}
		blobs[name] = blob
		if err := srv.AddPackage(name, blob); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// Budget fits roughly one package: walking all three must evict.
	budget := int64(len(blobs["classroom"]) + 1000)
	cache := NewPackageCacheBudget(budget, 1<<20)
	c := &Client{}
	for _, name := range []string{"classroom", "museum", "street"} {
		got, _, err := c.DownloadDelta(ts.URL+"/pkg/"+name, cache)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(blobs[name]) {
			t.Fatalf("package %q differs", name)
		}
	}
	if cache.Bytes() > budget {
		t.Errorf("cache holds %d bytes over budget %d", cache.Bytes(), budget)
	}
	if cache.Evicted() == 0 {
		t.Error("no evictions after walking three packages")
	}
	if cache.Len() >= 3 {
		t.Errorf("cache kept all %d packages despite budget", cache.Len())
	}
	// An evicted package re-syncs correctly (chunks may still be cached).
	got, _, err := c.DownloadDelta(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blobs["classroom"]) {
		t.Fatal("re-downloaded evicted package differs")
	}
}

func TestProgressiveOpenCachedReusesChunks(t *testing.T) {
	ts, _ := testServer(t)
	c := &Client{}
	cache := NewPackageCache()
	_, st1, err := c.ProgressiveOpenCached(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ChunksFetched == 0 {
		t.Fatalf("first open fetched no chunks: %+v", st1)
	}
	// Second learner on the same cache: same chunks, near-zero transfer
	// (only the manifest crosses the wire again).
	g, st2, err := c.ProgressiveOpenCached(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ChunksFetched != 0 {
		t.Errorf("second open refetched %d chunks", st2.ChunksFetched)
	}
	if st2.ChunkHits == 0 {
		t.Error("second open hit no cached chunks")
	}
	if st2.BytesFetched >= st1.BytesFetched {
		t.Errorf("second open fetched %d bytes, first %d", st2.BytesFetched, st1.BytesFetched)
	}
	if !g.HasSegment("seg-classroom") {
		t.Error("start segment not available")
	}
}

func TestLegacyServerFallback(t *testing.T) {
	// A plain file server (no /manifest/, no ranges beyond stdlib) still
	// works through DownloadDelta and ProgressiveOpen.
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/pkg/classroom" {
			http.NotFound(w, r)
			return
		}
		http.ServeContent(w, r, "classroom.tkg", time.Unix(0, 0), bytes.NewReader(blob))
	}))
	defer legacy.Close()
	c := &Client{}
	cache := NewPackageCache()
	got, st, err := c.DownloadDelta(legacy.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("fallback download differs")
	}
	if st.BytesFetched < len(blob) {
		t.Errorf("fallback fetched %d of %d bytes", st.BytesFetched, len(blob))
	}
	if g, _, err := c.ProgressiveOpen(legacy.URL + "/pkg/classroom"); err != nil {
		t.Fatalf("progressive fallback: %v", err)
	} else if !g.HasSegment("seg-classroom") {
		t.Error("fallback progressive open missed start segment")
	}
}

// TestPackageReplaceReleasesChunks: a course update must not leak the old
// version's chunks — only chunks still referenced by some published
// package stay in the store.
func TestPackageReplaceReleasesChunks(t *testing.T) {
	srv := NewServer()
	v1 := longCourse(t, false)
	v2 := longCourse(t, true)
	if err := srv.AddPackage("long", v1); err != nil {
		t.Fatal(err)
	}
	chunksAfterV1 := srv.StoreStats().Chunks
	if err := srv.AddPackage("long", v2); err != nil {
		t.Fatal(err)
	}
	st := srv.StoreStats()
	man2, _ := gamepack.ExtractManifest(v2)
	if st.Chunks != len(man2.ChunkSet()) {
		t.Errorf("store holds %d chunks after replace, v2 manifest has %d", st.Chunks, len(man2.ChunkSet()))
	}
	if st.Chunks >= chunksAfterV1+len(man2.ChunkSet()) {
		t.Error("replacement leaked the old version's chunks")
	}
	// Old-only chunks are gone; shared and new chunks serve.
	man1, _ := gamepack.ExtractManifest(v1)
	newSet := man2.ChunkSet()
	for h := range man1.ChunkSet() {
		if _, shared := newSet[h]; !shared && srv.Store().Has(h) {
			t.Errorf("old-only chunk %s still stored", h)
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{}
	got, _, err := c.Download(ts.URL + "/pkg/long")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(v2) {
		t.Fatal("replaced package serves wrong bytes")
	}
}
