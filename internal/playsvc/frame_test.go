package playsvc

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
)

func sampleBatch() *BatchRequest {
	return &BatchRequest{
		Session:      "classroom-0000abcd",
		BaseSeq:      41,
		SeenEvents:   7,
		SeenMessages: 3,
		Acts: []ActRequest{
			{Kind: ActClick, X: -12, Y: 99},
			{Kind: ActExamine, Object: "computer"},
			{Kind: ActUse, Item: "ram module", Object: "computer"},
			{Kind: ActQuiz, Quiz: "q-install", Choice: 2},
			{Kind: ActTick, Ticks: 5},
		},
	}
}

func TestActFrameRoundTrip(t *testing.T) {
	want := sampleBatch()
	got, err := ParseActFrame(EncodeActFrame(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestReplyFrameRoundTrip(t *testing.T) {
	want := &BatchReply{
		Reply: &Reply{
			Session:      "classroom-0000abcd",
			Tick:         123,
			EventCount:   17,
			MessageCount: 6,
			Quiz:         "q-install",
			Resumed:      true,
			State: &core.State{
				Scenario:  "market",
				Inventory: []string{"coin", "ram module"},
				Flags:     map[string]bool{"door-open": true, "alarm": false},
				Vars:      map[string]int{"score": -3, "hp": 12},
				Visited:   map[string]int{"classroom": 2, "market": 1},
				Learned:   map[string]bool{"ram-basics": true},
				Rewards:   []string{"badge"},
				Hidden:    map[string]bool{"stall-ram": true},
				Ended:     true,
				Outcome:   "victory",
			},
			Events: []runtime.Event{
				{Tick: 3, Kind: "take", Detail: "coin"},
				{Tick: 9, Kind: "quiz", Detail: "q-install correct"},
			},
			Messages: []string{"hello", "use the coin"},
		},
		Results: []ActResult{
			{},
			{HasTook: true, Took: true},
			{HasCorrect: true, Correct: false},
		},
		ActErr: &Error{Status: 400, Msg: "playsvc: no such quiz"},
	}
	got, err := ParseReplyFrame(EncodeReplyFrame(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestReplyFrameMinimal pins the nil-vs-empty conventions: an empty state
// section decodes to nil maps, exactly like the JSON route's omitempty —
// the client mirror must not be able to tell the protocols apart.
func TestReplyFrameMinimal(t *testing.T) {
	want := &BatchReply{Reply: &Reply{
		Session: "s",
		State:   &core.State{Scenario: "classroom"},
	}}
	got, err := ParseReplyFrame(EncodeReplyFrame(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestFrameSessionID(t *testing.T) {
	b := EncodeActFrame(sampleBatch())
	id, err := frameSessionID(b)
	if err != nil {
		t.Fatal(err)
	}
	if id != "classroom-0000abcd" {
		t.Fatalf("session = %q", id)
	}
	// The prefix parse must not need the tail: truncate right after the
	// header records and routing still works (the node, not the gateway,
	// rejects the mangled frame).
	if id, err := frameSessionID(b[:len(actMagic)+1+2+len(id)+4]); err != nil || id != "classroom-0000abcd" {
		t.Fatalf("prefix parse: id=%q err=%v", id, err)
	}
	// A frame whose first record is not the session id does not route.
	bad := append([]byte(actMagic), 1)             // magic + version
	bad = frameAppend(bad, atagBaseSeq, []byte{7}) // wrong leading record
	if _, err := frameSessionID(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestParseActFrameRejections(t *testing.T) {
	valid := EncodeActFrame(sampleBatch())
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x40

	empty := &BatchRequest{Session: "s"}
	emptyFrame := EncodeActFrame(empty)

	leave := sampleBatch()
	leave.Acts = []ActRequest{{Kind: ActLeave}}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte("VA")},
		{"bad magic", append([]byte("XXXX"), valid[4:]...)},
		{"flipped bit", corrupt},
		{"truncated", valid[:len(valid)-6]},
		{"no acts", emptyFrame},
		{"reply magic", EncodeReplyFrame(&BatchReply{Reply: &Reply{Session: "s"}})},
	}
	for _, tc := range cases {
		if _, err := ParseActFrame(tc.data); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}
	// A leave act has no wire form at all: it cannot even be encoded into
	// a parseable frame (kind 0 is rejected).
	if _, err := ParseActFrame(EncodeActFrame(leave)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("leave act encoded: err = %v, want ErrBadFrame", err)
	}
}

// TestActFrameDeterministic pins byte-stable encoding: identical requests
// produce identical frames (map ordering is sorted in the state codec and
// absent from act frames entirely).
func TestActFrameDeterministic(t *testing.T) {
	a, b := EncodeActFrame(sampleBatch()), EncodeActFrame(sampleBatch())
	if string(a) != string(b) {
		t.Fatal("act frame encoding is not deterministic")
	}
}

// FuzzParseActFrame holds the binary act parser to the FuzzRestoreSession
// bar: arbitrary input never panics, never allocates unboundedly, and
// either parses cleanly (and then re-encodes through a round trip) or
// fails with a typed ErrBadFrame.
func FuzzParseActFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("VACT"))
	f.Add(EncodeActFrame(sampleBatch()))
	f.Add(EncodeActFrame(&BatchRequest{Session: "s", Acts: []ActRequest{{Kind: ActClick}}}))
	long := EncodeActFrame(sampleBatch())
	f.Add(long[:len(long)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseActFrame(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("untyped rejection: %v", err)
			}
			if req != nil {
				t.Fatal("non-nil request alongside error")
			}
			return
		}
		if req.Session == "" || len(req.Acts) == 0 || len(req.Acts) > maxFrameActs {
			t.Fatalf("parsed frame violates invariants: %+v", req)
		}
		// Accepted input must survive a re-encode round trip (unknown
		// tags are dropped, so compare the parsed forms).
		again, err := ParseActFrame(EncodeActFrame(req))
		if err != nil {
			t.Fatalf("re-encode rejected: %v", err)
		}
		if !reflect.DeepEqual(again, req) {
			t.Fatalf("re-encode diverged:\n got %+v\nwant %+v", again, req)
		}
	})
}

// FuzzParseReplyFrame pins the same no-panic/typed-error bar for the
// client-side parser — a hostile server (or a corrupting middlebox) must
// not be able to crash a learner.
func FuzzParseReplyFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("VRPL"))
	f.Add(EncodeReplyFrame(&BatchReply{Reply: &Reply{Session: "s", State: &core.State{Scenario: "x"}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := ParseReplyFrame(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		if out.Reply == nil || out.Reply.Session == "" {
			t.Fatalf("parsed reply violates invariants: %+v", out)
		}
		again, err := ParseReplyFrame(EncodeReplyFrame(out))
		if err != nil {
			t.Fatalf("re-encode rejected: %v", err)
		}
		if !reflect.DeepEqual(again, out) {
			t.Fatalf("re-encode diverged:\n got %+v\nwant %+v", again, out)
		}
	})
}
