package vcodec

import "repro/internal/media/raster"

// plane is a single-component image with dimensions padded to multiples of
// the block size. Samples are int32 so residuals (which go negative) share
// the representation.
type plane struct {
	w, h int // padded dimensions, multiples of blockSize
	pix  []int32
}

func newPlane(w, h int) *plane {
	return &plane{w: w, h: h, pix: make([]int32, w*h)}
}

func padUp(n int) int {
	return (n + blockSize - 1) / blockSize * blockSize
}

func (p *plane) at(x, y int) int32 {
	return p.pix[y*p.w+x]
}

func (p *plane) set(x, y int, v int32) {
	p.pix[y*p.w+x] = v
}

// row returns the n samples of row y starting at column x0.
func (p *plane) row(x0, y, n int) []int32 {
	return p.pix[y*p.w+x0 : y*p.w+x0+n]
}

func clamp255(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// ycbcr holds one frame in planar YCbCr 4:2:0: full-resolution luma, chroma
// subsampled 2× in both directions. All planes are padded to block
// multiples; the true frame size travels separately.
type ycbcr struct {
	y, cb, cr *plane
	w, h      int // true (unpadded) frame dimensions
}

// newYCbCr allocates a zeroed image for a w×h frame.
func newYCbCr(w, h int) *ycbcr {
	return &ycbcr{
		y:  newPlane(padUp(w), padUp(h)),
		cb: newPlane(padUp((w+1)/2), padUp((h+1)/2)),
		cr: newPlane(padUp((w+1)/2), padUp((h+1)/2)),
		w:  w, h: h,
	}
}

// fromFrame converts an RGB frame into img (which must have been allocated
// for the same dimensions) using BT.601 integer coefficients. Padding
// replicates the edge sample so the DCT does not see an artificial cliff at
// the border. fullCb/fullCr are caller-owned full-resolution scratch of at
// least padUp(w)*padUp(h) samples, so steady-state conversion allocates
// nothing.
func (img *ycbcr) fromFrame(f *raster.Frame, fullCb, fullCr []int32) {
	pw, ph := img.y.w, img.y.h
	// Full-resolution conversion with edge replication for padding.
	for y := 0; y < ph; y++ {
		sy := y
		if sy >= f.H {
			sy = f.H - 1
		}
		for x := 0; x < pw; x++ {
			sx := x
			if sx >= f.W {
				sx = f.W - 1
			}
			i := 3 * (sy*f.W + sx)
			r, g, b := int32(f.Pix[i]), int32(f.Pix[i+1]), int32(f.Pix[i+2])
			yy := (77*r + 150*g + 29*b) >> 8
			cb := ((-43*r - 85*g + 128*b) >> 8) + 128
			cr := ((128*r - 107*g - 21*b) >> 8) + 128
			img.y.set(x, y, clamp255(yy))
			fullCb[y*pw+x] = clamp255(cb)
			fullCr[y*pw+x] = clamp255(cr)
		}
	}
	// 2×2 box subsample chroma, then replicate-pad to the chroma plane.
	cw, ch := img.cb.w, img.cb.h
	halfW, halfH := (f.W+1)/2, (f.H+1)/2
	for y := 0; y < ch; y++ {
		sy := y
		if sy >= halfH {
			sy = halfH - 1
		}
		for x := 0; x < cw; x++ {
			sx := x
			if sx >= halfW {
				sx = halfW - 1
			}
			x0, y0 := 2*sx, 2*sy
			x1, y1 := x0+1, y0+1
			if x1 >= pw {
				x1 = x0
			}
			if y1 >= ph {
				y1 = y0
			}
			cb := (fullCb[y0*pw+x0] + fullCb[y0*pw+x1] + fullCb[y1*pw+x0] + fullCb[y1*pw+x1] + 2) / 4
			cr := (fullCr[y0*pw+x0] + fullCr[y0*pw+x1] + fullCr[y1*pw+x0] + fullCr[y1*pw+x1] + 2) / 4
			img.cb.set(x, y, cb)
			img.cr.set(x, y, cr)
		}
	}
}

// toYCbCr converts an RGB frame to padded planar 4:2:0, allocating the image
// and scratch. The steady-state encoder path uses fromFrame with persistent
// buffers instead; this remains for one-shot use and tests.
func toYCbCr(f *raster.Frame) *ycbcr {
	img := newYCbCr(f.W, f.H)
	pw, ph := img.y.w, img.y.h
	img.fromFrame(f, make([]int32, pw*ph), make([]int32, pw*ph))
	return img
}

// toFrameInto converts back to RGB into dst, reusing dst's pixel buffer when
// it is large enough. Chroma is upsampled bilinearly (nearest-neighbor
// leaves visible blockiness on saturated gradients, especially at small
// frame sizes).
func (img *ycbcr) toFrameInto(dst *raster.Frame) {
	dst.W, dst.H = img.w, img.h
	need := 3 * img.w * img.h
	if cap(dst.Pix) < need {
		dst.Pix = make([]uint8, need)
	} else {
		dst.Pix = dst.Pix[:need]
	}
	halfW, halfH := (img.w+1)/2, (img.h+1)/2
	// Chroma sits at half resolution with a half-sample phase offset, so
	// every upsample position is an exact quarter-pixel: bilinear weights in
	// quarter units (fixed point, 2+2 fractional bits) reproduce the exact
	// interpolation with no float math.
	for y := 0; y < img.h; y++ {
		yq := 2*y - 1 // chroma row position in quarter units
		if yq < 0 {
			yq = 0
		}
		if yq > 4*(halfH-1) {
			yq = 4 * (halfH - 1)
		}
		cy0 := yq >> 2
		ty := int32(yq & 3)
		cy1 := cy0 + 1
		if cy1 >= halfH {
			cy1 = halfH - 1
		}
		cbr0, cbr1 := img.cb.row(0, cy0, halfW), img.cb.row(0, cy1, halfW)
		crr0, crr1 := img.cr.row(0, cy0, halfW), img.cr.row(0, cy1, halfW)
		yrow := img.y.row(0, y, img.w)
		drow := dst.Pix[3*y*dst.W : 3*(y+1)*dst.W]
		for x := 0; x < img.w; x++ {
			xq := 2*x - 1
			if xq < 0 {
				xq = 0
			}
			if xq > 4*(halfW-1) {
				xq = 4 * (halfW - 1)
			}
			cx0 := xq >> 2
			tx := int32(xq & 3)
			cx1 := cx0 + 1
			if cx1 >= halfW {
				cx1 = halfW - 1
			}
			cb := ((cbr0[cx0]*(4-tx)+cbr0[cx1]*tx)*(4-ty) +
				(cbr1[cx0]*(4-tx)+cbr1[cx1]*tx)*ty + 8) >> 4
			cr := ((crr0[cx0]*(4-tx)+crr0[cx1]*tx)*(4-ty) +
				(crr1[cx0]*(4-tx)+crr1[cx1]*tx)*ty + 8) >> 4
			cb -= 128
			cr -= 128
			yy := yrow[x]
			r := yy + (359 * cr >> 8)
			g := yy - (88 * cb >> 8) - (183 * cr >> 8)
			b := yy + (454 * cb >> 8)
			drow[3*x] = uint8(clamp255(r))
			drow[3*x+1] = uint8(clamp255(g))
			drow[3*x+2] = uint8(clamp255(b))
		}
	}
}

// toFrame converts back to a freshly allocated RGB frame.
func (img *ycbcr) toFrame() *raster.Frame {
	f := raster.New(img.w, img.h)
	img.toFrameInto(f)
	return f
}
