package script

import (
	"reflect"
	"testing"
)

func TestLiteralArgs(t *testing.T) {
	p := MustCompile(`
		goto "market";
		if has("coin") {
			learn "a";
			goto "classroom";
		} else if flag("x") {
			learn "b";
		} else {
			goto "street";
		}
		say "goto nowhere";       # not a goto statement
		give "coin";
	`)
	gotos := p.LiteralArgs("goto")
	want := []string{"market", "classroom", "street"}
	if !reflect.DeepEqual(gotos, want) {
		t.Fatalf("gotos = %v, want %v", gotos, want)
	}
	if learns := p.LiteralArgs("learn"); !reflect.DeepEqual(learns, []string{"a", "b"}) {
		t.Fatalf("learns = %v", learns)
	}
	if gives := p.LiteralArgs("give"); !reflect.DeepEqual(gives, []string{"coin"}) {
		t.Fatalf("gives = %v", gives)
	}
	if rewards := p.LiteralArgs("reward"); rewards != nil {
		t.Fatalf("rewards = %v, want none", rewards)
	}
}

func TestLiteralArgsSkipsComputed(t *testing.T) {
	p := MustCompile(`goto "a" + "b";`) // computed argument
	if got := p.LiteralArgs("goto"); got != nil {
		t.Fatalf("computed args should be skipped, got %v", got)
	}
}

func TestLiteralArgsNilProgram(t *testing.T) {
	var p *Program
	if p.LiteralArgs("goto") != nil {
		t.Fatal("nil program should yield nil")
	}
	if p.Uses("goto") {
		t.Fatal("nil program uses nothing")
	}
}

func TestUses(t *testing.T) {
	p := MustCompile(`if true { if false { end "x"; } } say "hi";`)
	if !p.Uses("end") {
		t.Error("nested end not found")
	}
	if !p.Uses("say") {
		t.Error("say not found")
	}
	if p.Uses("reward") {
		t.Error("phantom reward")
	}
}
