// Package runtime implements the IVGBL gaming platform (paper §4.3): "an
// augmented video player with the interaction functionalities". A Session
// plays one game package: it drives segment playback, composites
// interactive objects onto the video, dispatches player interactions
// (click, examine, drag-to-inventory, use-item-on), runs event scripts, and
// reports everything to an optional telemetry observer.
//
// The Session itself is headless and step-driven (Tick); GameWindow wraps
// it with the Figure-2 interface for interactive play.
package runtime

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/playback"
	"repro/internal/media/raster"
	"repro/internal/script"
)

// Event is one telemetry record. The JSON tags are the telemetry wire
// format (package telemetry batches events over HTTP).
type Event struct {
	Tick   int    `json:"tick"`
	Kind   string `json:"kind"` // click, examine, take, use, dialogue, goto, say, learn, reward, popup, open, end, error
	Detail string `json:"detail,omitempty"`
}

// Observer receives session telemetry (package analytics aggregates it).
type Observer interface {
	Record(Event)
}

// Options configures a session.
type Options struct {
	// DecodeWorkers is the video decode worker count. Sessions default to 1
	// (inline decoding, no per-session goroutines) on purpose: deployments
	// run many concurrent sessions, so parallelism comes from sessions, not
	// from within one decoder. Set >1 only for single-viewer setups.
	DecodeWorkers int
	Observer      Observer // optional telemetry sink
	// FrameCache, when set, shares decoded presentation frames with every
	// other session on the same package — hosted deployments render the
	// same video frames for hundreds of learners, so the second render of
	// any frame becomes a memcpy. The cache must be dedicated to this
	// package's video (frame indices are the key).
	FrameCache *playback.FrameCache
}

// maxGotoChain bounds scenario switches triggered from OnEnter scripts, so
// two scenarios that goto each other cannot hang the runtime.
const maxGotoChain = 8

// Session is one play-through of a game package.
type Session struct {
	pkg    *gamepack.Package
	video  *playback.Video
	cursor *playback.Cursor
	state  *core.State
	sink   *core.Sink
	progs  map[string]*script.Program
	obs    Observer

	tick      int
	selected  string // inventory item selected for "use" ("" = none)
	npcPos    map[string]int
	messages  []string
	popups    [][2]string // queued popups (kind, content)
	opened    []string    // opened web resources
	quizzes   []string    // pending quiz ids, FIFO
	gotoDepth int

	// sprites caches rendered object sprites so repeated frame composition
	// (FrameInto) allocates nothing after the first render of each object.
	sprites map[*core.Object]*raster.Frame
	// watchFrame is the scratch buffer Watch renders into.
	watchFrame raster.Frame
}

// NewSession loads a package blob and enters the start scenario.
func NewSession(pkgBlob []byte, opts Options) (*Session, error) {
	pkg, err := gamepack.Open(pkgBlob)
	if err != nil {
		return nil, err
	}
	return newSessionFromPackage(pkg, opts)
}

// NewSessionFromPackage starts a session over an already-opened package.
// The package is shared read-only: a play service opens each course once
// and hosts many concurrent sessions on it without re-parsing the blob.
func NewSessionFromPackage(pkg *gamepack.Package, opts Options) (*Session, error) {
	return newSessionFromPackage(pkg, opts)
}

func newSessionFromPackage(pkg *gamepack.Package, opts Options) (*Session, error) {
	s, err := buildSession(pkg, opts)
	if err != nil {
		return nil, err
	}
	start := pkg.Project.ScenarioByID(pkg.Project.StartScenario)
	if start == nil {
		s.Close()
		return nil, fmt.Errorf("runtime: start scenario %q missing", pkg.Project.StartScenario)
	}
	if err := s.cursor.EnterSegment(start.Segment); err != nil {
		s.Close()
		return nil, fmt.Errorf("runtime: %w", err)
	}
	s.runEnter(start)
	return s, nil
}

// buildSession assembles a session over a package — video, compiled
// scripts, state and sink wiring — without entering any scenario. The
// normal constructor enters the start scenario and runs its OnEnter;
// RestoreSessionFromPackage instead installs a snapshot's state and seeks
// the cursor to the saved position (the player resumes, not re-arrives).
func buildSession(pkg *gamepack.Package, opts Options) (*Session, error) {
	if opts.DecodeWorkers <= 0 {
		opts.DecodeWorkers = 1
	}
	video, err := playback.OpenVideo(pkg.Video, opts.DecodeWorkers)
	if err != nil {
		return nil, err
	}
	if opts.FrameCache != nil {
		video.UseCache(opts.FrameCache)
	}
	progs, err := pkg.Project.CompileEvents()
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	s := &Session{
		pkg:     pkg,
		video:   video,
		cursor:  playback.NewCursor(video, playback.Loop),
		state:   core.NewState(pkg.Project),
		progs:   progs,
		obs:     opts.Observer,
		npcPos:  map[string]int{},
		sprites: map[*core.Object]*raster.Frame{},
	}
	s.sink = core.NewSink(pkg.Project, s.state)
	s.sink.OnSay = func(msg string) {
		s.messages = append(s.messages, msg)
		s.record("say", msg)
	}
	s.sink.OnPopup = func(kind, content string) {
		s.popups = append(s.popups, [2]string{kind, content})
		s.record("popup", kind+": "+content)
	}
	s.sink.OnGoto = func(id string) { s.afterGoto(id) }
	s.sink.OnReward = func(item string) { s.record("reward", item) }
	s.sink.OnLearn = func(unit string) { s.record("learn", unit) }
	s.sink.OnEnd = func(outcome string) { s.record("end", outcome) }
	s.sink.OnOpen = func(url string) {
		s.opened = append(s.opened, url)
		s.record("open", url)
	}
	s.sink.OnQuiz = func(id string) {
		// A quiz is asked at most once per session.
		if s.state.Flags["quizdone-"+id] {
			return
		}
		s.quizzes = append(s.quizzes, id)
		s.record("quiz-asked", id)
	}
	return s, nil
}

// record emits a telemetry event.
func (s *Session) record(kind, detail string) {
	if s.obs != nil {
		s.obs.Record(Event{Tick: s.tick, Kind: kind, Detail: detail})
	}
}

// Project returns the loaded project.
func (s *Session) Project() *core.Project { return s.pkg.Project }

// State returns the live game state (read-only use expected).
func (s *Session) State() *core.State { return s.state }

// Scenario returns the current scenario definition.
func (s *Session) Scenario() *core.Scenario {
	return s.pkg.Project.ScenarioByID(s.state.Scenario)
}

// Tick advances playback by one video frame.
func (s *Session) Tick() error {
	if s.state.Ended {
		return nil
	}
	if _, err := s.cursor.Advance(); err != nil {
		return err
	}
	s.tick++
	return nil
}

// Ticks returns the number of elapsed ticks.
func (s *Session) Ticks() int { return s.tick }

// Advance ticks playback n times — the watching time between interactions.
func (s *Session) Advance(ticks int) error {
	for i := 0; i < ticks; i++ {
		if err := s.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// Frame renders the current presentation frame: decoded video plus mounted
// object sprites. The returned frame is caller-owned.
func (s *Session) Frame() (*raster.Frame, error) {
	f := &raster.Frame{}
	if err := s.FrameInto(f); err != nil {
		return nil, err
	}
	return f, nil
}

// FrameInto renders the presentation frame into dst, reusing dst's pixel
// buffer when it is large enough. Together with the decoder's recycled
// buffers and the session's sprite cache, the steady-state frame path
// allocates nothing — the play service serves frames to many concurrent
// hosted sessions through this.
//
// The result is a full copy: dst's pixels alias no session-internal
// buffer, so callers may hold (or share) the rendered frame read-only for
// as long as they like while the session keeps advancing. The play
// service's broadcast hub leans on this — each publication is rendered
// once into a fresh buffer and then handed by reference to every
// watcher's delivery ring without another copy.
func (s *Session) FrameInto(dst *raster.Frame) error {
	f, err := s.cursor.Frame()
	if err != nil {
		return err
	}
	dst.CopyFrom(f)
	if sc := s.Scenario(); sc != nil {
		s.compositeObjects(dst, sc)
	}
	return nil
}

// Watch renders the current frame into an internal scratch buffer — the
// headless equivalent of presenting it to a viewer. The simulator calls it
// to model learners actually watching the video between interactions; a
// remote game fetches the same frame over the wire.
func (s *Session) Watch() error { return s.FrameInto(&s.watchFrame) }

// ObjectAt returns the topmost visible interactive object at video
// coordinates, or nil.
func (s *Session) ObjectAt(vx, vy int) *core.Object {
	sc := s.Scenario()
	if sc == nil {
		return nil
	}
	for i := len(sc.Objects) - 1; i >= 0; i-- {
		o := sc.Objects[i]
		if s.state.ObjectVisible(o) && o.Region.Contains(vx, vy) {
			return o
		}
	}
	return nil
}

// Click handles a primary click at video coordinates — the main interaction
// of the paper's runtime. With an inventory item selected, the click uses
// that item on the target; otherwise the behavior depends on the object
// kind: NPCs speak, items are examined, hotspots and buttons fire OnClick.
func (s *Session) Click(vx, vy int) {
	if s.state.Ended {
		return
	}
	o := s.ObjectAt(vx, vy)
	if o == nil {
		s.record("click", fmt.Sprintf("miss@%d,%d", vx, vy))
		return
	}
	s.record("click", o.ID)
	if s.selected != "" {
		item := s.selected
		s.selected = ""
		s.UseItemOn(item, o.ID)
		return
	}
	switch o.Kind {
	case core.NPC:
		s.Talk(o.ID)
	case core.Item:
		s.Examine(o.ID)
	default:
		if !s.runEvent(o, core.OnClick, "") && o.Description != "" {
			s.sink.Say(o.Description)
		}
	}
}

// Examine inspects an object: its OnExamine event if wired, else its
// description.
func (s *Session) Examine(objectID string) {
	o := s.visibleObject(objectID)
	if o == nil {
		return
	}
	s.record("examine", o.ID)
	if !s.runEvent(o, core.OnExamine, "") {
		if o.Description != "" {
			s.sink.Say(o.Description)
		} else {
			s.sink.Say("Nothing special about " + o.Name + ".")
		}
	}
}

// Talk delivers the next line of an NPC's fixed conversation (paper §3.1).
func (s *Session) Talk(objectID string) {
	o := s.visibleObject(objectID)
	if o == nil {
		return
	}
	if len(o.Dialogue) == 0 {
		if !s.runEvent(o, core.OnClick, "") {
			s.sink.Say(o.Name + " has nothing to say.")
		}
		return
	}
	line := o.Dialogue[s.npcPos[o.ID]%len(o.Dialogue)]
	s.npcPos[o.ID]++
	s.record("dialogue", o.ID)
	s.sink.Say(o.Name + ": " + line)
}

// Take collects a takeable object into the inventory (the drag-to-backpack
// gesture). It reports whether the take succeeded.
func (s *Session) Take(objectID string) bool {
	o := s.visibleObject(objectID)
	if o == nil {
		return false
	}
	if !o.Takeable {
		s.sink.Say("You cannot take the " + o.Name + ".")
		return false
	}
	ev := o.EventFor(core.OnTake, "")
	if ev != nil {
		if !s.conditionHolds(ev) {
			s.record("take-blocked", o.ID)
			// Let the object explain itself if it can.
			if !s.runEvent(o, core.OnClick, "") && o.Description != "" {
				s.sink.Say(o.Description)
			}
			return false
		}
		s.record("take", o.ID)
		s.runProgram(o, ev)
	} else {
		// Default: the object itself becomes an inventory item.
		s.record("take", o.ID)
		s.state.AddItem(o.ID)
	}
	// A collected object leaves the scene.
	s.state.Hidden[o.ID] = true
	return true
}

// UseItemOn applies an inventory item to an object (the classroom repair:
// use "ram module" on "computer").
func (s *Session) UseItemOn(item, objectID string) {
	if !s.state.HasItem(item) {
		s.sink.Say("You do not have " + item + ".")
		return
	}
	o := s.visibleObject(objectID)
	if o == nil {
		return
	}
	s.record("use", item+" on "+o.ID)
	ev := o.EventFor(core.OnUse, item)
	if ev == nil || !s.conditionHolds(ev) {
		s.sink.Say("The " + item + " does not work on " + o.Name + ".")
		return
	}
	s.runProgram(o, ev)
}

// SelectItem marks an inventory item for the next use-on-object click.
func (s *Session) SelectItem(item string) error {
	if !s.state.HasItem(item) {
		return fmt.Errorf("runtime: not carrying %q", item)
	}
	s.selected = item
	return nil
}

// SelectedItem returns the item armed for use ("" when none).
func (s *Session) SelectedItem() string { return s.selected }

// ClearSelection disarms the selected item.
func (s *Session) ClearSelection() { s.selected = "" }

// GotoScenario switches scenario programmatically (nav buttons do this via
// scripts; the simulator calls it directly).
func (s *Session) GotoScenario(id string) error {
	if s.pkg.Project.ScenarioByID(id) == nil {
		return fmt.Errorf("runtime: no scenario %q", id)
	}
	s.sink.Goto(id)
	return nil
}

// visibleObject resolves an object in the current scenario that the player
// can interact with.
func (s *Session) visibleObject(id string) *core.Object {
	sc := s.Scenario()
	if sc == nil || s.state.Ended {
		return nil
	}
	o := sc.ObjectByID(id)
	if o == nil || !s.state.ObjectVisible(o) {
		return nil
	}
	return o
}

// conditionHolds evaluates an event's guard (no condition = true).
func (s *Session) conditionHolds(ev *core.Event) bool {
	if ev.Condition == "" {
		return true
	}
	ok, err := script.EvalCondition(ev.Condition, s.state)
	if err != nil {
		s.record("error", "condition: "+err.Error())
		return false
	}
	return ok
}

// runEvent fires an object's event by trigger; it reports whether a handler
// existed and ran.
func (s *Session) runEvent(o *core.Object, t core.TriggerType, item string) bool {
	ev := o.EventFor(t, item)
	if ev == nil || !s.conditionHolds(ev) {
		return false
	}
	s.runProgram(o, ev)
	return true
}

// runProgram executes an event's compiled script.
func (s *Session) runProgram(o *core.Object, ev *core.Event) {
	key := core.EventKey(s.state.Scenario, o.ID, ev.Trigger, ev.UseItem)
	prog := s.progs[key]
	if prog == nil {
		// The object may live in a different scenario key space; find it.
		if sc, _ := s.pkg.Project.FindObject(o.ID); sc != nil {
			prog = s.progs[core.EventKey(sc.ID, o.ID, ev.Trigger, ev.UseItem)]
		}
	}
	if prog == nil {
		s.record("error", "no compiled program for "+o.ID)
		return
	}
	if err := prog.Run(s.state, s.sink); err != nil {
		s.record("error", err.Error())
	}
	s.drainSinkProblems()
}

// afterGoto reacts to a scenario switch performed by the sink: move the
// playback cursor and run the destination's OnEnter.
func (s *Session) afterGoto(id string) {
	s.record("goto", id)
	sc := s.pkg.Project.ScenarioByID(id)
	if sc == nil {
		return
	}
	if err := s.cursor.EnterSegment(sc.Segment); err != nil {
		s.record("error", err.Error())
		return
	}
	s.runEnter(sc)
}

// runEnter executes a scenario's OnEnter script with chain-depth guarding.
func (s *Session) runEnter(sc *core.Scenario) {
	if sc.OnEnter == "" {
		return
	}
	if s.gotoDepth >= maxGotoChain {
		s.record("error", "goto chain too deep at "+sc.ID)
		return
	}
	s.gotoDepth++
	defer func() { s.gotoDepth-- }()
	prog := s.progs[core.EventKey(sc.ID, "", core.OnEnter, "")]
	if prog == nil {
		return
	}
	if err := prog.Run(s.state, s.sink); err != nil {
		s.record("error", err.Error())
	}
	s.drainSinkProblems()
}

func (s *Session) drainSinkProblems() {
	for _, p := range s.sink.Problems {
		s.record("error", p)
	}
	s.sink.Problems = nil
}

// Messages returns the say-transcript so far.
func (s *Session) Messages() []string {
	return append([]string(nil), s.messages...)
}

// MessageCount returns the length of the say-transcript.
func (s *Session) MessageCount() int { return len(s.messages) }

// MessagesFrom returns a copy of the transcript tail from index n on — the
// part a remote client has not yet seen. A negative n (a client that reset
// its counters) clamps to 0 and yields the whole transcript — mirroring
// the events-path handling of a retried or reset client — rather than
// silently losing it; n past the end yields nil.
func (s *Session) MessagesFrom(n int) []string {
	if n < 0 {
		n = 0
	}
	if n >= len(s.messages) {
		return nil
	}
	return append([]string(nil), s.messages[n:]...)
}

// LastMessage returns the most recent message ("" if none yet).
func (s *Session) LastMessage() string {
	if len(s.messages) == 0 {
		return ""
	}
	return s.messages[len(s.messages)-1]
}

// NextPopup pops the oldest queued popup; ok is false when none is pending.
func (s *Session) NextPopup() (kind, content string, ok bool) {
	if len(s.popups) == 0 {
		return "", "", false
	}
	p := s.popups[0]
	s.popups = s.popups[1:]
	return p[0], p[1], true
}

// PendingQuiz returns the oldest unanswered quiz, if any. The quiz stays
// pending until AnswerQuiz is called.
func (s *Session) PendingQuiz() (*core.Quiz, bool) {
	for len(s.quizzes) > 0 {
		q := s.pkg.Project.QuizByID(s.quizzes[0])
		if q != nil {
			return q, true
		}
		s.quizzes = s.quizzes[1:]
	}
	return nil, false
}

// AnswerQuiz answers the pending quiz with the given choice index. A quiz
// may be answered even after the game ends (it is assessment, not play).
// Correct answers add the quiz's points (default 10) to the score variable.
func (s *Session) AnswerQuiz(quizID string, choice int) (correct bool, err error) {
	if len(s.quizzes) == 0 || s.quizzes[0] != quizID {
		return false, fmt.Errorf("runtime: quiz %q is not pending", quizID)
	}
	q := s.pkg.Project.QuizByID(quizID)
	if q == nil {
		return false, fmt.Errorf("runtime: unknown quiz %q", quizID)
	}
	if choice < 0 || choice >= len(q.Choices) {
		return false, fmt.Errorf("runtime: choice %d out of range [0,%d)", choice, len(q.Choices))
	}
	s.quizzes = s.quizzes[1:]
	s.state.Flags["quizdone-"+quizID] = true
	correct = choice == q.Answer
	if correct {
		points := q.Points
		if points == 0 {
			points = 10
		}
		s.state.Vars["score"] += points
		s.record("quiz-correct", quizID)
		s.messages = append(s.messages, "Correct! "+q.Choices[q.Answer])
	} else {
		s.record("quiz-wrong", quizID)
		s.messages = append(s.messages, "Not quite. The answer was: "+q.Choices[q.Answer])
	}
	return correct, nil
}

// OpenedResources lists web resources opened by scripts.
func (s *Session) OpenedResources() []string {
	return append([]string(nil), s.opened...)
}

// Ended reports whether the game has concluded.
func (s *Session) Ended() bool { return s.state.Ended }

// Outcome returns the end label ("" while running).
func (s *Session) Outcome() string { return s.state.Outcome }

// SaveState snapshots the session for later restoration.
func (s *Session) SaveState() ([]byte, error) { return s.state.Save() }

// RestoreState loads a saved state into the session and re-enters its
// scenario (without re-running OnEnter — the player resumes, not re-arrives).
func (s *Session) RestoreState(data []byte) error {
	st, err := core.LoadState(data)
	if err != nil {
		return err
	}
	sc := s.pkg.Project.ScenarioByID(st.Scenario)
	if sc == nil {
		return errors.New("runtime: saved state references unknown scenario")
	}
	if err := s.cursor.EnterSegment(sc.Segment); err != nil {
		return err
	}
	s.state = st
	s.sink.State = st
	return nil
}

// VideoMeta exposes the underlying container metadata (frame size, fps).
func (s *Session) VideoMeta() (w, h, fps int) {
	m := s.video.Meta()
	return m.Width, m.Height, m.FPS
}

// Close releases the session's decode resources promptly (the video worker
// pool; a finalizer releases it otherwise). The session stays usable —
// further decodes run inline — so an evicted-then-revived session cannot
// crash, it just decodes single-threaded.
func (s *Session) Close() { s.video.Close() }
