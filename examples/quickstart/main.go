// Quickstart: author a two-scenario game from scratch with the authoring
// tool API, export it as a package, and play it headlessly.
//
// This is the end-to-end path a course designer takes in the paper: shoot
// footage → let the tool segment it → place interactive objects → wire
// events → export → students play.
package main

import (
	"fmt"
	"log"

	"repro/internal/author"
	"repro/internal/core"
	"repro/internal/media/raster"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/runtime"
)

func main() {
	// 1. "Shoot" footage: two scenes, 3 seconds each.
	film := synth.FromScenes(160, 120, 10, 42, []synth.SceneShot{
		{Kind: synth.Lab, Seconds: 3},
		{Kind: synth.Corridor, Seconds: 3},
	})

	// 2. Import it into the authoring tool; auto-segmentation divides it
	//    into scenario components.
	tool := author.New("Quickstart Lab")
	if err := tool.ImportFootage(film, author.ImportOptions{
		Encode: studio.Options{QStep: 6},
	}); err != nil {
		log.Fatal(err)
	}
	segs := tool.SegmentNames()
	fmt.Printf("auto-segmentation found %d segments: %v\n", len(segs), segs)

	// 3. Scenario editor: one scenario per segment.
	must(tool.AddScenario("lab", "The Lab", segs[0]))
	must(tool.AddScenario("corridor", "The Corridor", segs[1]))
	must(tool.SetStartScenario("lab"))

	// 4. Object editor: a collectible key card, a locked door, and a
	//    knowledge unit delivered on success.
	must(tool.AddKnowledgeUnit(&core.KnowledgeUnit{ID: "access-control", Topic: "Security"}))
	must(tool.AddItemDef(&core.ItemDef{ID: "keycard", Name: "Key Card"}))
	must(tool.AddObject("lab", &core.Object{
		ID: "keycard", Name: "Key Card", Kind: core.Item, Enabled: true, Takeable: true,
		Region: raster.Rect{X: 40, Y: 80, W: 12, H: 8},
		Sprite: core.SpriteSpec{Shape: "box", Color: raster.Yellow},
		Events: []core.Event{{Trigger: core.OnTake, Script: `give "keycard"; say "A key card!";`}},
	}))
	must(tool.AddObject("lab", &core.Object{
		ID: "exit", Name: "Exit", Kind: core.NavButton, Enabled: true,
		Region: raster.Rect{X: 130, Y: 95, W: 24, H: 14},
		Sprite: core.SpriteSpec{Shape: "box", Color: raster.Cyan, Label: "EXIT"},
		Events: []core.Event{{Trigger: core.OnClick, Script: `goto "corridor";`}},
	}))
	must(tool.AddObject("corridor", &core.Object{
		ID: "door", Name: "Secure Door", Kind: core.Hotspot, Enabled: true,
		Region:      raster.Rect{X: 30, Y: 30, W: 24, H: 46},
		Description: "A door with a card reader.",
		Events: []core.Event{
			{Trigger: core.OnUse, UseItem: "keycard", Script: `
				say "The reader blinks green. Access granted!";
				learn "access-control";
				end "escaped";
			`},
			{Trigger: core.OnClick, Script: `say "It needs a key card.";`},
		},
	}))
	fmt.Printf("authored with %d tool operations\n", tool.Ops())

	// 5. Validate and export.
	if probs := tool.Validate(); len(probs) > 0 {
		for _, p := range probs {
			fmt.Println("  validation:", p)
		}
	}
	pkg, err := tool.ExportPackage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported package: %d bytes\n\n", len(pkg))

	// 6. Play it.
	s, err := runtime.NewSession(pkg, runtime.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s.Take("keycard")
	s.Click(140, 100) // EXIT button
	s.UseItemOn("keycard", "door")
	for _, m := range s.Messages() {
		fmt.Println("  >", m)
	}
	fmt.Printf("\noutcome: %s, knowledge: %v\n", s.Outcome(), s.State().LearnedUnits())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
