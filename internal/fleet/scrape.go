// Metrics scraping: after a run the fleet pulls each play node's
// /metrics?format=json snapshot and turns the act-latency histogram into
// the per-node p50/p95/p99 table vgbl-loadtest prints. Against a cluster
// gateway the node list comes from /play/stats; against a single manager
// the play URL itself is the only scrape target.
package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/playsvc"
)

// NodeLatency is one node's scraped act-latency summary.
type NodeLatency struct {
	Node string
	URL  string
	Acts int64 // observations in the act histogram
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Err  error // scrape failure; the row is otherwise zero
}

// actMetric is the histogram family the table is built from.
const actMetric = "vgbl_playsvc_act_seconds"

// ScrapeActLatencies discovers the play nodes behind playURL and scrapes
// each one's act-latency histogram. A gateway lists its backends in
// /play/stats; a single manager reports no nodes and is scraped directly.
// Scrape failures land in the row's Err instead of aborting the sweep.
func ScrapeActLatencies(httpc *http.Client, playURL string) []NodeLatency {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	playURL = strings.TrimSuffix(playURL, "/")
	type target struct{ node, url string }
	targets := []target{{node: "play", url: playURL}}
	var gw struct {
		Nodes []struct {
			Name string `json:"name"`
			URL  string `json:"url"`
		} `json:"nodes"`
	}
	if err := getJSON(httpc, playURL+playsvc.StatsPath, &gw); err == nil && len(gw.Nodes) > 0 {
		targets = targets[:0]
		for _, n := range gw.Nodes {
			targets = append(targets, target{node: n.Name, url: strings.TrimSuffix(n.URL, "/")})
		}
	}
	rows := make([]NodeLatency, 0, len(targets))
	for _, t := range targets {
		row := NodeLatency{Node: t.node, URL: t.url}
		var snap obs.RegistrySnapshot
		if err := getJSON(httpc, t.url+"/metrics?format=json", &snap); err != nil {
			row.Err = err
		} else if m := snap.Metric(actMetric); m == nil || len(m.Series) == 0 || m.Series[0].Histogram == nil {
			row.Err = fmt.Errorf("fleet: %s missing from %s/metrics", actMetric, t.url)
		} else {
			h := *m.Series[0].Histogram
			row.Acts = h.Count
			row.P50 = time.Duration(h.Quantile(0.50))
			row.P95 = time.Duration(h.Quantile(0.95))
			row.P99 = time.Duration(h.Quantile(0.99))
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatLatencyTable renders scraped rows as the aligned per-node table
// printed at the end of a load-test run.
func FormatLatencyTable(rows []NodeLatency) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %10s\n", "node", "acts", "act p50", "p95", "p99")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-10s scrape failed: %v\n", r.Node, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-10s %8d %10v %10v %10v\n", r.Node, r.Acts,
			r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	}
	return b.String()
}

// getJSON fetches one JSON endpoint into v.
func getJSON(httpc *http.Client, url string, v any) error {
	resp, err := httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
