// Museum: a second authored course (find the key, unlock the lab, study the
// exhibit) played by simulated learners with different strategies — the
// cohort machinery behind experiments E6/E7 in miniature.
package main

import (
	"fmt"
	"log"

	"repro/internal/content"
	"repro/internal/media/studio"
	"repro/internal/sim"
)

func main() {
	blob, err := content.Museum().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ten simulated learners per strategy on the museum course:")
	fmt.Println()
	fmt.Println("  strategy | completion | mean decisions | mean knowledge | quiz accuracy")
	fmt.Println("  ---------+------------+----------------+----------------+--------------")
	for _, f := range []sim.Factory{sim.GuidedFactory, sim.ExplorerFactory, sim.RandomFactory} {
		results, err := sim.RunCohort(blob, f, 10, sim.Config{
			MaxSteps: 120, Patience: 15, RewardBoost: 10, Seed: 3,
		}, 2)
		if err != nil {
			log.Fatal(err)
		}
		agg := sim.Summarize(results)
		fmt.Printf("  %-8s | %9.0f%% | %14.1f | %14.1f | %12.0f%%\n",
			f.Name, 100*sim.CompletionRate(results), agg.MeanDecisions, agg.MeanKnowledge,
			100*agg.QuizAccuracy)
	}

	fmt.Println("\none guided play-through in detail:")
	res, err := sim.Run(blob, sim.GuidedFactory, sim.Config{MaxSteps: 80, Patience: 15, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report)
}
