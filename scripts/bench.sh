#!/usr/bin/env bash
# bench.sh — run the repo benchmark suite and write BENCH_<TAG>.json, the
# machine-readable point in the perf trajectory (first point: PR 2).
#
# Usage:
#   scripts/bench.sh                     # full suite, 3 runs, BENCH_PR10.json
#   scripts/bench.sh --check             # regression smoke vs BENCH_PR4.json
#   BENCH_PATTERN='Encode|Decode' scripts/bench.sh   # subset
#   BENCH_COUNT=1 BENCH_TIME=1x scripts/bench.sh     # quick smoke
#
# Environment:
#   BENCH_PATTERN  -bench regex            (default: . | check's key benches)
#   BENCH_COUNT    -count                  (default: 3 | 2 in --check)
#   BENCH_TIME     -benchtime              (default: go's 1s | 0.5s in --check)
#   BENCH_TAG      output tag              (default: PR10)
#   BENCH_OUT      output path             (default: BENCH_<TAG>.json)
#   BENCH_BASELINE --check baseline file   (default: BENCH_PR4.json)
#   BENCH_THRESHOLD --check slowdown gate  (default: 1.6)
#   BENCH_E17      0 skips the e17 client-mode sweep (default: run it)
#   BENCH_E17_FLEET e17 fleet size         (default: 200)
#
# The JSON keeps the frozen seed-commit baselines for the acceptance-tracked
# benchmarks alongside fresh results, so before/after stays reproducible
# from one committed artifact.
#
# --check reruns the key benchmarks (the play-service act family, the room
# fan-out, hot chunk gets, codec encode/decode, the obs histogram) and
# compares each best-of-N ns/op against the frozen baseline file. The
# threshold is deliberately generous: CI machines differ from the baseline
# machine, so only a large regression (default >1.6x) fails. Benchmarks
# without a baseline entry (e.g. BenchmarkRoomFanout, new in PR 9) are
# reported but never fail the check.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--check" ]; then
    BASELINE=${BENCH_BASELINE:-BENCH_PR4.json}
    THRESHOLD=${BENCH_THRESHOLD:-1.6}
    PATTERN=${BENCH_PATTERN:-'^BenchmarkPlaysvcAct$|^BenchmarkPlaysvcActBinary$|^BenchmarkPlaysvcActPipelined$|^BenchmarkRoomFanout$|^BenchmarkChunkGetHot$|^BenchmarkEncode160x120Q4W1$|^BenchmarkDecode160x120$|^BenchmarkObsHistogramObserve$'}
    COUNT=${BENCH_COUNT:-2}
    TIME=${BENCH_TIME:-0.5s}
    RAW=$(mktemp)
    trap 'rm -f "$RAW"' EXIT
    echo ">> regression check: -bench=${PATTERN} -count=${COUNT} -benchtime=${TIME} vs ${BASELINE} (threshold ${THRESHOLD}x)" >&2
    go test -run=NONE -bench="${PATTERN}" -count="${COUNT}" -benchtime="${TIME}" . | tee "$RAW" >&2
    awk -v thr="$THRESHOLD" -v baseline="$BASELINE" '
    # Pass 1: the baseline file. Results are line-structured JSON; pick the
    # "name"/"ns_op" pairs out of the results array (seed_baseline entries
    # carry no "name" key and are skipped).
    NR == FNR {
        if ($0 ~ /"name"/) {
            line = $0
            sub(/.*"name": "/, "", line); name = line; sub(/".*/, "", name)
            line = $0
            sub(/.*"ns_op": /, "", line); sub(/[,}].*/, "", line)
            base[name] = line + 0
        }
        next
    }
    # Pass 2: fresh benchmark output; keep the best (minimum) ns/op per
    # name so scheduler noise only ever flatters the new code.
    /^Benchmark/ && $3 ~ /^[0-9.]+$/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = $3 + 0
        if (!(name in cur) || ns < cur[name]) cur[name] = ns
    }
    END {
        bad = 0
        printf "%-36s %12s %12s %8s\n", "benchmark", "baseline", "current", "ratio"
        for (name in cur) {
            if (name in base) {
                ratio = cur[name] / base[name]
                verdict = (ratio > thr) ? "REGRESSION" : "ok"
                if (ratio > thr) bad++
                printf "%-36s %12.0f %12.0f %7.2fx  %s\n", name, base[name], cur[name], ratio, verdict
            } else {
                printf "%-36s %12s %12.0f %8s  (no baseline)\n", name, "-", cur[name], "-"
            }
        }
        if (bad) {
            printf "bench check: %d benchmark(s) regressed beyond %.2fx of %s\n", bad, thr, baseline > "/dev/stderr"
            exit 1
        }
        print "bench check: ok"
    }
    ' "$BASELINE" "$RAW"
    exit $?
fi

PATTERN=${BENCH_PATTERN:-.}
COUNT=${BENCH_COUNT:-3}
TAG=${BENCH_TAG:-PR10}
OUT=${BENCH_OUT:-BENCH_${TAG}.json}
TIMEFLAG=()
if [ -n "${BENCH_TIME:-}" ]; then
    TIMEFLAG=(-benchtime "${BENCH_TIME}")
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo ">> go test -run=NONE -bench=${PATTERN} -benchmem -count=${COUNT} ${TIMEFLAG[*]:-}" >&2
go test -run=NONE -bench="${PATTERN}" -benchmem -count="${COUNT}" "${TIMEFLAG[@]}" . | tee "$RAW" >&2

# Seed-commit (a41bd99, pre-PR2) numbers for the acceptance benchmarks,
# measured on the same class of machine the fresh results come from.
# ns_op/b_op/allocs_op are per benchmark op (BenchmarkDecode* ops cover a
# 16-frame sequence).
awk -v tag="$TAG" '
function flush_baseline() {
    print "  \"seed_baseline\": {"
    print "    \"commit\": \"a41bd99+PR1\","
    print "    \"cpu\": \"Intel(R) Xeon(R) Processor @ 2.70GHz (1 core)\","
    print "    \"BenchmarkEncode160x120Q4W1\":  {\"ns_op\": 3956419,  \"b_op\": 477271,  \"allocs_op\": 4386},"
    print "    \"BenchmarkEncode160x120Q4W4\":  {\"ns_op\": 3765738,  \"b_op\": 478234,  \"allocs_op\": 4402},"
    print "    \"BenchmarkEncode320x240Q4W1\":  {\"ns_op\": 14569695, \"b_op\": 1812186, \"allocs_op\": 14672},"
    print "    \"BenchmarkEncode160x120Q16W1\": {\"ns_op\": 3410944,  \"b_op\": 427586,  \"allocs_op\": 1069},"
    print "    \"BenchmarkDecode160x120\":      {\"ns_op\": 14647293, \"b_op\": 3053613, \"allocs_op\": 433},"
    print "    \"BenchmarkScenarioSwitchIndexed\": {\"ns_op\": 907776, \"b_op\": 250747, \"allocs_op\": 118},"
    print "    \"BenchmarkStreamStartupProgressive\": {\"ns_op\": 778494, \"b_op\": 590723, \"allocs_op\": 831},"
    print "    \"BenchmarkStreamFullDownload\": {\"ns_op\": 445510,  \"b_op\": 726081,  \"allocs_op\": 108},"
    print "    \"BenchmarkFleet10\":            {\"ns_op\": 9954659,  \"b_op\": 2597027, \"allocs_op\": 21166}"
    print "  },"
}
BEGIN {
    print "{"
    printf "  \"tag\": \"%s\",\n", tag
    flush_baseline()
    print "  \"results\": ["
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; allocs = ""; mbs = ""
    extra = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        else if ($(i+1) == "B/op") bop = $i
        else if ($(i+1) == "allocs/op") allocs = $i
        else if ($(i+1) == "MB/s") mbs = $i
        else if ($(i+1) ~ /\//) {
            gsub(/"/, "", $(i+1))
            extra = extra sprintf(", \"%s\": %s", $(i+1), $i)
        }
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_op\": %s", name, $2, ns
    if (mbs != "")    printf ", \"mb_s\": %s", mbs
    if (bop != "")    printf ", \"b_op\": %s", bop
    if (allocs != "") printf ", \"allocs_op\": %s", allocs
    printf "%s}", extra
}
END {
    print ""
    print "  ]"
    print "}"
}
' "$RAW" > "$OUT"

# Fold the E17 client-mode sweep (the PR 8 acceptance measurement: the
# gateway-fronted mirror fleet must hold >= 0.5x local-sim) into the same
# artifact, so the throughput claim and the microbenchmarks it rests on
# ship as one committed file. BENCH_E17=0 skips it.
if [ "${BENCH_E17:-1}" != "0" ]; then
    E17RAW=$(mktemp)
    echo ">> go run ./cmd/vgbl-experiments -fleet ${BENCH_E17_FLEET:-200} e17" >&2
    go run ./cmd/vgbl-experiments -fleet "${BENCH_E17_FLEET:-200}" e17 | tee "$E17RAW" >&2
    awk '
    NR == FNR {
        if ($0 ~ /\|/ && $0 !~ /mode +\|/ && $0 !~ /----/) {
            n = split($0, f, "|")
            if (n < 5) next
            name = f[1]; gsub(/^ +| +$/, "", name)
            p90 = f[4]; gsub(/^ +| +$/, "", p90)
            ratio = f[5]; gsub(/^ +| +$|x/, "", ratio)
            rows = rows sprintf("%s    \"%s\": {\"sessions_per_sec\": %.1f, \"events_per_sec\": %.0f, \"session_p90\": \"%s\", \"vs_local\": %s}", \
                (rows ? ",\n" : ""), name, f[2] + 0, f[3] + 0, p90, (ratio ~ /^[0-9.]+$/ ? ratio : "null"))
        }
        next
    }
    $0 == "}" { printf "  ,\"e17\": {\n%s\n  }\n}\n", rows; next }
    { print }
    ' "$E17RAW" "$OUT" > "${OUT}.tmp" && mv "${OUT}.tmp" "$OUT"
    rm -f "$E17RAW"
fi


# Fold the E19 adaptive-streaming sweep (the PR 10 acceptance measurement:
# rebuffer-free playback across a 10× bandwidth spread with exact per-tier
# byte accounting against /metrics) into the same artifact. The experiment
# prints a machine-readable "E19JSON {...}" trailer that lands under the
# "e19" key. BENCH_E19=0 skips it.
if [ "${BENCH_E19:-1}" != "0" ]; then
    E19RAW=$(mktemp)
    echo ">> go run ./cmd/vgbl-experiments e19" >&2
    go run ./cmd/vgbl-experiments e19 | tee "$E19RAW" >&2
    E19JSON=$(sed -n 's/^E19JSON //p' "$E19RAW" | tail -1)
    if [ -n "$E19JSON" ]; then
        awk -v blob="$E19JSON" '
        $0 == "}" { printf "  ,\"e19\": %s\n}\n", blob; next }
        { print }
        ' "$OUT" > "${OUT}.tmp" && mv "${OUT}.tmp" "$OUT"
    fi
    rm -f "$E19RAW"
fi
echo ">> wrote $OUT ($(grep -c '"name"' "$OUT") results)" >&2
