package vcodec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/media/raster"
)

// TestDecodeNeverPanicsOnRandomInput feeds arbitrary bytes to the decoder:
// it must reject or decode, never panic. (The paper's runtime loads packages
// from the network; a corrupt stream must not crash the player.)
func TestDecodeNeverPanicsOnRandomInput(t *testing.T) {
	err := quick.Check(func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		dec := NewDecoder(1)
		dec.Decode(data)
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanicsOnBitFlips corrupts real packets at random positions.
func TestDecodeNeverPanicsOnBitFlips(t *testing.T) {
	src := raster.New(64, 48)
	src.FillVGradient(raster.Red, raster.Blue)
	enc, _ := NewEncoder(Config{Width: 64, Height: 48, QStep: 4, GOP: 4, SearchRange: 2, Workers: 1})
	var pkts [][]byte
	for i := 0; i < 6; i++ {
		p, err := enc.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p.Data)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		orig := pkts[rng.Intn(len(pkts))]
		data := append([]byte(nil), orig...)
		// Flip 1-3 random bits.
		for k := 0; k <= rng.Intn(3); k++ {
			data[rng.Intn(len(data))] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on bit-flipped packet (trial %d): %v", trial, r)
				}
			}()
			dec := NewDecoder(2)
			// A flipped P-frame may need a reference; give it one.
			if i0, err := NewDecoderReference(dec, pkts[0]); err == nil {
				_ = i0
			}
			dec.Decode(data)
		}()
	}
}

// NewDecoderReference primes a decoder with an I-frame (helper for the
// corruption test).
func NewDecoderReference(d *Decoder, iframe []byte) (*raster.Frame, error) {
	return d.Decode(iframe)
}

// TestQuickIntraRoundTripQuality: arbitrary small frames encoded intra at
// q=1 must come back within the 4:2:0 bound plus a small margin.
func TestQuickIntraRoundTripQuality(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 16 + rng.Intn(48)
		h := 16 + rng.Intn(32)
		f := raster.New(w, h)
		for i := range f.Pix {
			f.Pix[i] = uint8(rng.Intn(256))
		}
		enc, err := NewEncoder(Config{Width: w, Height: h, QStep: 1, GOP: 1, Workers: 1})
		if err != nil {
			return false
		}
		pkt, err := enc.Encode(f)
		if err != nil {
			return false
		}
		rec, err := NewDecoder(1).Decode(pkt.Data)
		if err != nil {
			return false
		}
		bound := raster.PSNR(f, toYCbCr(f).toFrame())
		return raster.PSNR(f, rec) >= bound-2.0
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLongGOPNoDrift: P-frame chains must not accumulate visible drift,
// because prediction uses the reconstructed (not source) reference.
func TestLongGOPNoDrift(t *testing.T) {
	src := raster.New(96, 64)
	src.FillVGradient(raster.RGB{R: 50, G: 90, B: 130}, raster.RGB{R: 200, G: 180, B: 120})
	enc, _ := NewEncoder(Config{Width: 96, Height: 64, QStep: 6, GOP: 1000, SearchRange: 2, Workers: 1})
	dec := NewDecoder(1)
	var first, last float64
	for i := 0; i < 100; i++ {
		pkt, err := enc.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := dec.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		p := raster.PSNR(src, rec)
		if i == 0 {
			first = p
		}
		last = p
	}
	if last < first-1.0 {
		t.Fatalf("drift over 100 P-frames: %.1f dB -> %.1f dB", first, last)
	}
}
