package raster

import (
	"testing"
	"testing/quick"
)

func TestRectContains(t *testing.T) {
	r := Rect{2, 3, 4, 5}
	cases := []struct {
		x, y int
		want bool
	}{
		{2, 3, true}, {5, 7, true}, {6, 3, false}, {2, 8, false},
		{1, 3, false}, {2, 2, false}, {4, 5, true},
	}
	for _, c := range cases {
		if got := r.Contains(c.x, c.y); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 5, 5}) {
		t.Errorf("Intersect = %+v, want {5 5 5 5}", got)
	}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects should be symmetric and true here")
	}
	c := Rect{20, 20, 3, 3}
	if a.Intersects(c) {
		t.Error("disjoint rects reported intersecting")
	}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestRectInset(t *testing.T) {
	r := Rect{1, 1, 10, 8}.Inset(2)
	if r != (Rect{3, 3, 6, 4}) {
		t.Errorf("Inset = %+v", r)
	}
	if !(Rect{0, 0, 3, 3}).Inset(2).Empty() {
		t.Error("over-inset rect must be empty")
	}
}

func TestQuickIntersectWithinBoth(t *testing.T) {
	err := quick.Check(func(ax, ay int8, aw, ah uint8, bx, by int8, bw, bh uint8) bool {
		a := Rect{int(ax), int(ay), int(aw), int(ah)}
		b := Rect{int(bx), int(by), int(bw), int(bh)}
		in := a.Intersect(b)
		if in.Empty() {
			return true
		}
		// Every corner of the intersection must lie in both rects.
		for _, p := range [][2]int{{in.X, in.Y}, {in.X + in.W - 1, in.Y + in.H - 1}} {
			if !a.Contains(p[0], p[1]) || !b.Contains(p[0], p[1]) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFillRectClipped(t *testing.T) {
	f := New(8, 8)
	f.FillRect(Rect{-4, -4, 8, 8}, Red) // half off-screen
	if f.At(0, 0) != Red || f.At(3, 3) != Red {
		t.Error("in-bounds portion not filled")
	}
	if f.At(4, 4) != Black {
		t.Error("fill overflowed clip region")
	}
}

func TestDrawRectOutline(t *testing.T) {
	f := New(10, 10)
	r := Rect{2, 2, 5, 4}
	f.DrawRect(r, Yellow)
	// corners on, interior off
	for _, p := range [][2]int{{2, 2}, {6, 2}, {2, 5}, {6, 5}} {
		if f.At(p[0], p[1]) != Yellow {
			t.Errorf("corner (%d,%d) not drawn", p[0], p[1])
		}
	}
	if f.At(4, 3) != Black {
		t.Error("interior should be untouched")
	}
}

func TestDrawLineEndpointsAndDiagonal(t *testing.T) {
	f := New(16, 16)
	f.DrawLine(0, 0, 15, 15, Green)
	for i := 0; i < 16; i++ {
		if f.At(i, i) != Green {
			t.Fatalf("diagonal pixel (%d,%d) missing", i, i)
		}
	}
	g := New(16, 16)
	g.DrawLine(12, 3, 2, 9, Red)
	if g.At(12, 3) != Red || g.At(2, 9) != Red {
		t.Error("line endpoints not drawn")
	}
}

func TestFillCircleSymmetry(t *testing.T) {
	f := New(21, 21)
	f.FillCircle(10, 10, 6, Blue)
	if f.At(10, 10) != Blue || f.At(10, 4) != Blue || f.At(16, 10) != Blue {
		t.Error("circle missing expected pixels")
	}
	if f.At(16, 16) != Black {
		t.Error("circle leaked outside radius")
	}
	// 4-fold symmetry
	for dy := -6; dy <= 6; dy++ {
		for dx := -6; dx <= 6; dx++ {
			a := f.At(10+dx, 10+dy)
			b := f.At(10-dx, 10+dy)
			if a != b {
				t.Fatalf("asymmetry at (%d,%d)", dx, dy)
			}
		}
	}
}

func TestDrawCircleOnPerimeter(t *testing.T) {
	f := New(21, 21)
	f.DrawCircle(10, 10, 5, White)
	for _, p := range [][2]int{{15, 10}, {5, 10}, {10, 15}, {10, 5}} {
		if f.At(p[0], p[1]) != White {
			t.Errorf("perimeter point (%d,%d) missing", p[0], p[1])
		}
	}
	if f.At(10, 10) != Black {
		t.Error("circle outline filled center")
	}
}

func TestBlitClipping(t *testing.T) {
	dst := New(8, 8)
	src := New(4, 4)
	src.Fill(Magenta)
	dst.Blit(src, 6, 6) // only 2x2 lands inside
	if dst.At(6, 6) != Magenta || dst.At(7, 7) != Magenta {
		t.Error("visible blit region missing")
	}
	if dst.At(5, 5) != Black {
		t.Error("blit wrote outside destination offset")
	}
	dst2 := New(8, 8)
	dst2.Blit(src, -2, -2)
	if dst2.At(0, 0) != Magenta || dst2.At(1, 1) != Magenta {
		t.Error("negative-offset blit clipped wrong")
	}
	if dst2.At(2, 2) != Black {
		t.Error("blit exceeded source bounds")
	}
}

func TestBlitKeyedTransparency(t *testing.T) {
	dst := New(6, 6)
	dst.Fill(Blue)
	spr := New(3, 3)
	spr.Fill(White) // white is the key: "image object with white background"
	spr.Set(1, 1, Red)
	dst.BlitKeyed(spr, 1, 1, White)
	if dst.At(2, 2) != Red {
		t.Error("opaque sprite pixel not copied")
	}
	if dst.At(1, 1) != Blue {
		t.Error("keyed (background) pixel should not be copied")
	}
}

func TestShadeDarkens(t *testing.T) {
	f := New(4, 4)
	f.Fill(RGB{100, 100, 100})
	f.Shade(Rect{0, 0, 2, 2}, 0.5)
	if f.At(0, 0) != (RGB{50, 50, 50}) {
		t.Errorf("shaded pixel = %v, want {50 50 50}", f.At(0, 0))
	}
	if f.At(3, 3) != (RGB{100, 100, 100}) {
		t.Error("shade leaked outside rect")
	}
}

func TestHVLineSwappedEndpoints(t *testing.T) {
	f := New(8, 8)
	f.HLine(6, 2, 4, Red)
	f.VLine(1, 6, 2, Green)
	for x := 2; x <= 6; x++ {
		if f.At(x, 4) != Red {
			t.Fatalf("HLine missing pixel %d", x)
		}
	}
	for y := 2; y <= 6; y++ {
		if f.At(1, y) != Green {
			t.Fatalf("VLine missing pixel %d", y)
		}
	}
}
