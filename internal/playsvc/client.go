package playsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/gamepack"
	"repro/internal/media/playback"
	"repro/internal/media/raster"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// ClientOptions configures a play-service client.
type ClientOptions struct {
	BaseURL string // server base, e.g. "http://127.0.0.1:8807"
	Course  string // published course name to create a session on
	// Resume reattaches to an existing (possibly frozen) session instead
	// of creating a new one: Dial sends a resume create and rebuilds the
	// mirror from the returned state and full transcript. Course may be
	// left empty; the reply names it.
	Resume string
	// Project is the course document (from the downloaded package); the
	// client resolves scenarios, objects and quizzes against it locally so
	// policies can plan without a round trip.
	Project *core.Project
	// Observer, when set, receives every remote event in arrival order —
	// the hook the fleet plugs its analytics collector and telemetry
	// client into, exactly as for a local session.
	Observer runtime.Observer
	// Trace, when valid, is injected into every request's X-Vgbl-Trace
	// header (a fresh child span per request), so the spans the gateway
	// and nodes record all link back to this client's trace id. The zero
	// value disables tracing; servers mint their own roots.
	Trace obs.TraceContext
	// HTTP defaults to faultnet.DefaultHTTPClient() — a client with real
	// connect/header timeouts, not the timeout-free http.DefaultClient.
	HTTP *http.Client
	// Retry tunes the per-request retry policy (backoff with full
	// jitter). nil means the faultnet defaults: 4 attempts, 10ms base,
	// 1s cap. Retries are safe by construction: Dial mints the session id
	// client-side so creates are idempotent, and every act carries a
	// sequence number the server deduplicates on.
	Retry *faultnet.RetryPolicy
	// Timeout bounds each HTTP attempt (not the whole retried operation).
	// 0 means 10s; negative disables the deadline.
	Timeout time.Duration
	// Binary switches the act path to the framed /play/actv2 endpoint
	// (each act travels as a binary batch of one). Create, state, frame
	// and leave stay on their JSON/raw routes. Protocol semantics are
	// identical to JSON by construction — the server runs both through
	// one batch core.
	Binary bool
	// PipelineDepth > 1 additionally buffers fire-and-forget acts (click,
	// examine, talk, use, clear) client-side and ships them as one framed
	// batch, flushed when the buffer reaches this depth, when a
	// result-bearing act (take, quiz, select, goto, tick) needs an answer,
	// or before any mirror read — so a policy reading state, messages or
	// the pending quiz always observes every act it issued, and pipelined
	// play stays move-for-move identical to JSON play. Implies Binary.
	// 0 or 1 disables buffering.
	PipelineDepth int
	// LocalMirror turns the client into a thick client: it runs a full
	// deterministic replica of the hosted session over Pkg, answers every
	// read AND every act result from the replica, and ships acts to the
	// server purely as pipelined batches (flushed at PipelineDepth, on
	// Sync and on Close). The golden-replay guarantee — same acts, same
	// session, bit for bit — is what makes the replica's answers exact;
	// every batch reply is reconciled against the replica (event count
	// and tick), and any divergence is a sticky error. Frames render
	// locally from the replica, so Watch costs no round trip. The server
	// session stays authoritative for delivery: observers receive the
	// server's events, exactly once, as replies arrive. Implies Binary.
	LocalMirror bool
	// Pkg is the opened course package (required by LocalMirror; the
	// fleet already holds it for local play).
	Pkg *gamepack.Package
	// MirrorFrameCache optionally shares decoded presentation frames
	// across the mirrors of many clients on the same package.
	MirrorFrameCache *playback.FrameCache
}

// Client drives one server-hosted session over HTTP. It implements
// sim.Game, so simulator policies (and sim.Replay) work against it
// unchanged. A Client mirrors the hosted session's state after every act;
// it is not safe for concurrent use — like a runtime.Session, one learner
// drives it.
type Client struct {
	opts  ClientOptions
	id    string
	retry faultnet.RetryPolicy

	w, h, fps int
	tick      int
	state     *core.State
	messages  []string
	seen      int    // events forwarded to the observer so far
	quiz      string // pending quiz id ("" = none)
	seq       int64  // act sequence number (server-side retry dedup)

	resumes int // successful auto-resumes (session survived a dead node)

	// pending holds acts buffered by pipelined mode, not yet sent.
	pending []ActRequest
	// Mirror mode: the local replica, its cumulative event count, and the
	// replica's (event count, tick) recorded as each act was buffered —
	// the reconciliation values the matching server reply must reproduce.
	mirror        *runtime.Session
	mirrorCounter eventCounter
	pendingEvents []int64
	pendingTicks  []int

	frame raster.Frame // reusable fetched-frame buffer
	err   error        // sticky transport/session failure
}

// eventCounter counts the replica's emitted events for reconciliation.
type eventCounter struct{ n int64 }

func (e *eventCounter) Record(runtime.Event) { e.n++ }

// Interface check: the simulator must be able to drive a remote session
// exactly like a local one.
var _ sim.Game = (*Client)(nil)

// clientTimeout is the default per-attempt request deadline.
const clientTimeout = 10 * time.Second

// clientRetryBudget is the default wall-clock retry budget: long enough
// that a brief full partition (hundreds of milliseconds) always sees one
// attempt land after connectivity returns.
const clientRetryBudget = 2 * time.Second

// Dial creates a hosted session on the server and returns a client bound
// to it. Events emitted while entering the start scenario are delivered to
// the observer before Dial returns, mirroring runtime.NewSession.
//
// Dial mints the session id itself (unless resuming): the create request
// names it, so a retried create whose first reply was lost reattaches to
// the session the server already built instead of leaking a duplicate.
func Dial(o ClientOptions) (*Client, error) {
	if o.BaseURL == "" || (o.Course == "" && o.Resume == "") {
		return nil, fmt.Errorf("playsvc: client needs BaseURL and a Course or Resume id")
	}
	if o.Project == nil {
		return nil, fmt.Errorf("playsvc: client needs the course Project")
	}
	if o.LocalMirror {
		if o.Resume != "" {
			return nil, fmt.Errorf("playsvc: LocalMirror cannot resume a session (no local history to rebuild the replica from)")
		}
		if o.Pkg == nil {
			return nil, fmt.Errorf("playsvc: LocalMirror needs the opened course Pkg")
		}
	}
	if o.HTTP == nil {
		o.HTTP = faultnet.DefaultHTTPClient()
	}
	c := &Client{opts: o}
	if o.Retry != nil {
		c.retry = faultnet.RetryPolicy{
			Attempts:  o.Retry.Attempts,
			BaseDelay: o.Retry.BaseDelay,
			MaxDelay:  o.Retry.MaxDelay,
			Budget:    o.Retry.Budget,
			Seed:      o.Retry.Seed,
			Sleep:     o.Retry.Sleep,
		}
	} else {
		// An interactive client rides out brief correlated outages (a
		// network partition) by wall-clock, not attempt count.
		c.retry = faultnet.RetryPolicy{Budget: clientRetryBudget}
	}
	req := &CreateRequest{Course: o.Course, Resume: o.Resume}
	if req.Resume == "" {
		req.Session = newSessionID(o.Course)
	}
	reply, err := c.postRetry(c.opts.BaseURL+CreatePath, req)
	if err != nil {
		return nil, err
	}
	c.id = reply.Session
	if reply.Course != "" {
		c.opts.Course = reply.Course
	}
	c.w, c.h, c.fps = reply.Width, reply.Height, reply.FPS
	c.apply(reply)
	if o.LocalMirror {
		mirror, err := runtime.NewSessionFromPackage(o.Pkg, runtime.Options{
			Observer:   &c.mirrorCounter,
			FrameCache: o.MirrorFrameCache,
		})
		if err != nil {
			return nil, fmt.Errorf("playsvc: local mirror: %w", err)
		}
		if c.mirrorCounter.n != int64(reply.EventCount) {
			mirror.Close()
			return nil, fmt.Errorf("playsvc: local mirror diverged at create: %d events locally, %d hosted", c.mirrorCounter.n, reply.EventCount)
		}
		c.mirror = mirror
	}
	return c, nil
}

// SessionID returns the session identifier.
func (c *Client) SessionID() string { return c.id }

// VideoMeta returns the hosted video's geometry (from the create reply).
func (c *Client) VideoMeta() (w, h, fps int) { return c.w, c.h, c.fps }

// Err returns the sticky failure ("" path errors like a wrong quiz answer
// id are returned to the caller instead and do not stick).
func (c *Client) Err() error { return c.err }

// Resumes reports how many times the client transparently resumed its
// session after losing the hosting node.
func (c *Client) Resumes() int { return c.resumes }

// apply folds a server reply into the client mirror and forwards unseen
// events to the observer.
func (c *Client) apply(r *Reply) {
	c.tick = r.Tick
	if r.State != nil {
		c.state = r.State
	}
	c.messages = append(c.messages, r.Messages...)
	c.quiz = r.Quiz
	if c.opts.Observer != nil {
		for _, e := range r.Events {
			c.opts.Observer.Record(e)
		}
	}
	c.seen = r.EventCount
}

// fail records a sticky failure: the session is gone or unreachable, so
// every later call fails fast with the same error.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// finalize applies the sticky-failure rule after retries (and the resume
// fallback) are spent. A 400 is the caller's mistake (wrong quiz id, bad
// argument) and leaves the session usable; every other failure sticks.
// This rule is load-bearing for the fleet's failure model.
func (c *Client) finalize(err error) error {
	if err == nil {
		return nil
	}
	if pe, ok := err.(*Error); ok && pe.Status == http.StatusBadRequest {
		return err
	}
	return c.fail(err)
}

// timeout resolves the per-attempt deadline.
func (c *Client) timeout() time.Duration {
	switch {
	case c.opts.Timeout < 0:
		return 0
	case c.opts.Timeout == 0:
		return clientTimeout
	}
	return c.opts.Timeout
}

// responseError turns a non-OK response into a typed error, wrapping it
// with the server's advertised Retry-After delay when the status is
// retryable (load shedding, transient 5xx).
func responseError(resp *http.Response, what string) (error, bool) {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	err := errf(resp.StatusCode, "playsvc: %s: %s: %s", what, resp.Status, bytes.TrimSpace(msg))
	if !faultnet.RetryableStatus(resp.StatusCode) && resp.StatusCode != http.StatusNotFound {
		return err, false
	}
	if after, ok := faultnet.RetryAfterDelay(resp.Header); ok {
		return &faultnet.Delayed{After: after, Err: err}, true
	}
	return err, true
}

// attempt performs one HTTP attempt under the per-attempt deadline and
// decodes the reply. The returned bool reports whether the failure is
// retryable. It never sticks — the caller decides after the budget.
func (c *Client) attempt(method, url string, payload []byte, what string) (*Reply, error, bool) {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d := c.timeout(); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	defer cancel()
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err, false
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		// Transport-level failure. Retrying is safe for every request this
		// client sends: GETs are idempotent, creates carry a client-minted
		// id, and acts carry a sequence number the server dedups on.
		return nil, err, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err, retryable := responseError(resp, what)
		return nil, err, retryable
	}
	var r Reply
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, fmt.Errorf("playsvc: %s: decode: %w", what, err), true
	}
	return &r, nil, false
}

// postRetry sends one JSON request with the retry policy.
func (c *Client) postRetry(url string, body any) (*Reply, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	var reply *Reply
	err = c.retry.Do(func(int) (error, bool) {
		r, aerr, retryable := c.attempt(http.MethodPost, url, payload, "request")
		reply = r
		return aerr, retryable
	})
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// getRetry fetches one JSON reply with the retry policy.
func (c *Client) getRetry(url, what string) (*Reply, error) {
	var reply *Reply
	err := c.retry.Do(func(int) (error, bool) {
		r, aerr, retryable := c.attempt(http.MethodGet, url, nil, what)
		reply = r
		return aerr, retryable
	})
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// recoverable reports whether a terminal error may mean "the hosting
// node died but the session snapshot survives" — the case the resume
// fallback exists for. Client mistakes (400), conflicts and explicit
// shedding are not session loss.
func recoverable(err error) bool {
	if pe, ok := err.(*Error); ok {
		return pe.Status == http.StatusNotFound || pe.Status == http.StatusServiceUnavailable
	}
	// Transport-class failure: the node (or path to it) is gone.
	return true
}

// resumeOnce reattaches to the session via the snapshot path: a resume
// create thaws the latest released-or-checkpoint snapshot (the gateway
// re-routes it to the session's current ring owner) and the reply
// refreshes the mirror.
func (c *Client) resumeOnce() error {
	r, err := c.postRetry(c.opts.BaseURL+CreatePath, &CreateRequest{
		Resume:       c.id,
		SeenEvents:   c.seen,
		SeenMessages: len(c.messages),
	})
	if err != nil {
		return err
	}
	c.resumes++
	c.apply(r)
	return nil
}

// act posts one interaction and folds the reply in. Every act carries a
// fresh sequence number; retries (and the post-resume replay) reuse it,
// so the server applies the act at most once. If the session's node died
// mid-act, the client resumes from the snapshot path and replays — except
// for a leave, which is replayed directly: resuming a session that the
// first leave attempt already released would either fail (404, reading as
// session loss) or thaw it back to life, and the server's leave tombstone
// makes the bare replay safe (same seq → same final view).
func (c *Client) act(req *ActRequest) (*Reply, error) {
	if c.err != nil {
		return nil, c.err
	}
	req.Session = c.id
	req.SeenEvents = c.seen
	req.SeenMessages = len(c.messages)
	c.seq++
	req.Seq = c.seq
	r, err := c.postRetry(c.opts.BaseURL+ActPath, req)
	if err != nil && recoverable(err) {
		if req.Kind == ActLeave {
			r, err = c.postRetry(c.opts.BaseURL+ActPath, req)
		} else if rerr := c.resumeOnce(); rerr == nil {
			// The mirror moved (resume refreshed seen-counts); re-stamp
			// the act's view before replaying it under the same seq.
			req.SeenEvents = c.seen
			req.SeenMessages = len(c.messages)
			r, err = c.postRetry(c.opts.BaseURL+ActPath, req)
		}
	}
	if err != nil {
		return nil, c.finalize(err)
	}
	c.apply(r)
	return r, nil
}

// binary reports whether acts ride the framed /play/actv2 route.
func (c *Client) binary() bool {
	return c.opts.Binary || c.opts.PipelineDepth > 1 || c.opts.LocalMirror
}

// depth is the pipelined-mode flush threshold (1 = every act flushes).
// Mirror mode defaults to deep batches — nothing waits on a flush there.
func (c *Client) depth() int {
	d := c.opts.PipelineDepth
	if d < 1 {
		if c.opts.LocalMirror {
			d = 16
		} else {
			d = 1
		}
	}
	if d > maxFrameActs {
		d = maxFrameActs
	}
	return d
}

// buffer appends a replica-applied act in mirror mode, recording the
// replica's post-act event count and tick — the values the server reply
// covering this act must reproduce — and flushes at the pipeline depth.
func (c *Client) buffer(req *ActRequest) {
	if c.err != nil {
		return
	}
	c.pending = append(c.pending, *req)
	c.pendingEvents = append(c.pendingEvents, c.mirrorCounter.n)
	c.pendingTicks = append(c.pendingTicks, c.mirror.Ticks())
	if len(c.pending) >= c.depth() {
		c.flush()
	}
}

// trimPending drops the first n buffered acts (and, in mirror mode,
// their recorded reconciliation values).
func (c *Client) trimPending(n int) {
	c.pending = append(c.pending[:0], c.pending[n:]...)
	if c.mirror != nil {
		c.pendingEvents = append(c.pendingEvents[:0], c.pendingEvents[n:]...)
		c.pendingTicks = append(c.pendingTicks[:0], c.pendingTicks[n:]...)
	}
}

// push buffers a fire-and-forget act, flushing at the pipeline depth.
// Its caller has no result to wait for, exactly like the JSON-mode
// callers that discard c.act's return.
func (c *Client) push(req *ActRequest) {
	if c.err != nil {
		return
	}
	c.pending = append(c.pending, *req)
	if len(c.pending) >= c.depth() {
		c.flush()
	}
}

// pushWait appends a result-bearing act and flushes everything buffered;
// the returned result (and any act-level error) belongs to this act.
func (c *Client) pushWait(req *ActRequest) (ActResult, error) {
	if c.err != nil {
		return ActResult{}, c.err
	}
	c.pending = append(c.pending, *req)
	return c.flush()
}

// flushPending drains buffered acts before a mirror read, a frame fetch
// or a sync, so reads always observe every act issued before them. Errors
// stick via flush; the read then serves the unchanged mirror.
func (c *Client) flushPending() {
	if len(c.pending) > 0 {
		c.flush()
	}
}

// flush ships every buffered act as framed batches. The returned result
// and error describe the LAST buffered act (its pushWait caller is
// waiting); an act-level error on an earlier act drops that act and
// continues with the rest, mirroring JSON mode where each such caller
// discarded its error individually. (In practice only last-position acts
// can fail: every buffered kind — click, examine, talk, use, clear — is
// unconditional.)
func (c *Client) flush() (ActResult, error) {
	var last ActResult
	for len(c.pending) > 0 {
		if c.err != nil {
			c.trimPending(len(c.pending))
			return ActResult{}, c.err
		}
		n := min(len(c.pending), maxFrameActs)
		out, err := c.sendBatch(c.pending[:n])
		if err != nil {
			c.trimPending(len(c.pending))
			return ActResult{}, err
		}
		if out.ActErr != nil {
			applied := len(out.Results)
			wasLast := applied == len(c.pending)-1
			c.trimPending(applied + 1)
			if wasLast {
				return ActResult{}, c.finalize(out.ActErr)
			}
			continue
		}
		// Mirror mode: the reply covering this batch must land exactly
		// where the replica was when the batch's last act was buffered.
		// Anything else means replica and hosted session disagree, and
		// every local answer after the divergence point is suspect.
		if c.mirror != nil && n > 0 {
			if int64(out.Reply.EventCount) != c.pendingEvents[n-1] || out.Reply.Tick != c.pendingTicks[n-1] {
				return ActResult{}, c.fail(fmt.Errorf(
					"playsvc: local mirror diverged: replica at %d events/tick %d, hosted session at %d/%d",
					c.pendingEvents[n-1], c.pendingTicks[n-1], out.Reply.EventCount, out.Reply.Tick))
			}
		}
		if n == len(c.pending) && len(out.Results) > 0 {
			last = out.Results[len(out.Results)-1]
		}
		c.trimPending(n)
	}
	return last, nil
}

// sendBatch posts one framed batch under the retry policy, resuming and
// replaying on a recoverable failure exactly like a JSON act. The batch
// keeps its BaseSeq across retries and the post-resume replay, so the
// server's (base, len) dedup recognizes a batch whose reply was lost.
func (c *Client) sendBatch(acts []ActRequest) (*BatchReply, error) {
	req := &BatchRequest{
		Session:      c.id,
		BaseSeq:      c.seq + 1,
		SeenEvents:   c.seen,
		SeenMessages: len(c.messages),
		Acts:         acts,
	}
	c.seq += int64(len(acts))
	out, err := c.postFrame(EncodeActFrame(req))
	if err != nil && recoverable(err) {
		if rerr := c.resumeOnce(); rerr == nil {
			req.SeenEvents = c.seen
			req.SeenMessages = len(c.messages)
			out, err = c.postFrame(EncodeActFrame(req))
		}
	}
	if err != nil {
		return nil, c.finalize(err)
	}
	c.apply(out.Reply)
	return out, nil
}

// postFrame sends an encoded act frame with the retry policy.
func (c *Client) postFrame(payload []byte) (*BatchReply, error) {
	var out *BatchReply
	err := c.retry.Do(func(int) (error, bool) {
		o, aerr, retryable := c.actV2Attempt(payload)
		out = o
		return aerr, retryable
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// actV2Attempt is one framed-act HTTP attempt (see attempt).
func (c *Client) actV2Attempt(payload []byte) (*BatchReply, error, bool) {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d := c.timeout(); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.opts.BaseURL+ActV2Path, bytes.NewReader(payload))
	if err != nil {
		return nil, err, false
	}
	req.Header.Set("Content-Type", FrameContentType)
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, err, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err, retryable := responseError(resp, "actv2")
		return nil, err, retryable
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, fmt.Errorf("playsvc: actv2: read: %w", err), true
	}
	out, err := ParseReplyFrame(body)
	if err != nil {
		// A mangled frame re-fetches cleanly: the server dedups the retry.
		return nil, fmt.Errorf("playsvc: actv2: %w", err), true
	}
	return out, nil, false
}

// Sync fetches the session view without acting on it, folding in — and
// thereby acknowledging — any event or message tail the server still
// retains. After a Sync the server holds no unacknowledged state for this
// client, which makes it the natural last call before a planned handoff.
func (c *Client) Sync() error {
	c.flushPending()
	if c.err != nil {
		return c.err
	}
	url := fmt.Sprintf("%s%s?session=%s&events=%d&messages=%d",
		c.opts.BaseURL, StatePath, c.id, c.seen, len(c.messages))
	r, err := c.getRetry(url, "sync")
	if err != nil && recoverable(err) {
		if rerr := c.resumeOnce(); rerr == nil {
			// The resume reply IS the synced view.
			return nil
		}
	}
	if err != nil {
		return c.finalize(err)
	}
	c.apply(r)
	return nil
}

// Project implements sim.Game.
func (c *Client) Project() *core.Project { return c.opts.Project }

// State implements sim.Game: the mirrored server-side state after the
// last act (buffered acts are flushed first). Treat it as read-only.
func (c *Client) State() *core.State {
	if c.mirror != nil {
		return c.mirror.State()
	}
	c.flushPending()
	return c.state
}

// Scenario implements sim.Game.
func (c *Client) Scenario() *core.Scenario {
	if c.mirror != nil {
		return c.mirror.Scenario()
	}
	c.flushPending()
	return c.opts.Project.ScenarioByID(c.state.Scenario)
}

// Ended implements sim.Game.
func (c *Client) Ended() bool {
	if c.mirror != nil {
		return c.mirror.Ended()
	}
	c.flushPending()
	return c.state.Ended
}

// Outcome returns the end label ("" while running).
func (c *Client) Outcome() string {
	if c.mirror != nil {
		return c.mirror.Outcome()
	}
	c.flushPending()
	return c.state.Outcome
}

// Ticks returns the hosted session's tick counter after the last act.
func (c *Client) Ticks() int {
	if c.mirror != nil {
		return c.mirror.Ticks()
	}
	c.flushPending()
	return c.tick
}

// Messages implements sim.Game.
func (c *Client) Messages() []string {
	if c.mirror != nil {
		return c.mirror.Messages()
	}
	c.flushPending()
	return append([]string(nil), c.messages...)
}

// PendingQuiz implements sim.Game.
func (c *Client) PendingQuiz() (*core.Quiz, bool) {
	if c.mirror != nil {
		return c.mirror.PendingQuiz()
	}
	c.flushPending()
	if c.quiz == "" {
		return nil, false
	}
	q := c.opts.Project.QuizByID(c.quiz)
	return q, q != nil
}

// AnswerQuiz implements sim.Game.
func (c *Client) AnswerQuiz(quizID string, choice int) (bool, error) {
	req := &ActRequest{Kind: ActQuiz, Quiz: quizID, Choice: choice}
	if c.mirror != nil {
		correct, err := c.mirror.AnswerQuiz(quizID, choice)
		c.buffer(req)
		return correct, err
	}
	if c.binary() {
		res, err := c.pushWait(req)
		return res.HasCorrect && res.Correct, err
	}
	r, err := c.act(req)
	if err != nil {
		return false, err
	}
	return r.Correct != nil && *r.Correct, nil
}

// Click implements sim.Game.
func (c *Client) Click(vx, vy int) {
	req := &ActRequest{Kind: ActClick, X: vx, Y: vy}
	if c.mirror != nil {
		c.mirror.Click(vx, vy)
		c.buffer(req)
		return
	}
	if c.binary() {
		c.push(req)
		return
	}
	c.act(req)
}

// Examine implements sim.Game.
func (c *Client) Examine(objectID string) {
	req := &ActRequest{Kind: ActExamine, Object: objectID}
	if c.mirror != nil {
		c.mirror.Examine(objectID)
		c.buffer(req)
		return
	}
	if c.binary() {
		c.push(req)
		return
	}
	c.act(req)
}

// Talk implements sim.Game.
func (c *Client) Talk(objectID string) {
	req := &ActRequest{Kind: ActTalk, Object: objectID}
	if c.mirror != nil {
		c.mirror.Talk(objectID)
		c.buffer(req)
		return
	}
	if c.binary() {
		c.push(req)
		return
	}
	c.act(req)
}

// Take implements sim.Game.
func (c *Client) Take(objectID string) bool {
	req := &ActRequest{Kind: ActTake, Object: objectID}
	if c.mirror != nil {
		took := c.mirror.Take(objectID)
		c.buffer(req)
		return took
	}
	if c.binary() {
		res, err := c.pushWait(req)
		return err == nil && res.HasTook && res.Took
	}
	r, err := c.act(req)
	return err == nil && r.Took != nil && *r.Took
}

// UseItemOn implements sim.Game.
func (c *Client) UseItemOn(item, objectID string) {
	req := &ActRequest{Kind: ActUse, Item: item, Object: objectID}
	if c.mirror != nil {
		c.mirror.UseItemOn(item, objectID)
		c.buffer(req)
		return
	}
	if c.binary() {
		c.push(req)
		return
	}
	c.act(req)
}

// SelectItem implements sim.Game.
func (c *Client) SelectItem(item string) error {
	req := &ActRequest{Kind: ActSelect, Item: item}
	if c.mirror != nil {
		err := c.mirror.SelectItem(item)
		c.buffer(req)
		return err
	}
	if c.binary() {
		_, err := c.pushWait(req)
		return err
	}
	_, err := c.act(req)
	return err
}

// ClearSelection implements sim.Game.
func (c *Client) ClearSelection() {
	req := &ActRequest{Kind: ActClear}
	if c.mirror != nil {
		c.mirror.ClearSelection()
		c.buffer(req)
		return
	}
	if c.binary() {
		c.push(req)
		return
	}
	c.act(req)
}

// GotoScenario implements sim.Game.
func (c *Client) GotoScenario(id string) error {
	req := &ActRequest{Kind: ActGoto, Object: id}
	if c.mirror != nil {
		err := c.mirror.GotoScenario(id)
		c.buffer(req)
		return err
	}
	if c.binary() {
		_, err := c.pushWait(req)
		return err
	}
	_, err := c.act(req)
	return err
}

// Advance implements sim.Game: one round trip regardless of tick count.
// In pipelined mode the tick is the flush trigger ("flush on tick"), so
// buffered acts and the advance coalesce into one request — and any
// advance failure still reaches this caller.
func (c *Client) Advance(ticks int) error {
	if ticks <= 0 {
		return c.err
	}
	req := &ActRequest{Kind: ActTick, Ticks: ticks}
	if c.mirror != nil {
		err := c.mirror.Advance(ticks)
		c.buffer(req)
		return err
	}
	if c.binary() {
		_, err := c.pushWait(req)
		return err
	}
	_, err := c.act(req)
	return err
}

// Watch implements sim.Game: it fetches the current presentation frame
// into the client's reusable buffer (see Frame).
func (c *Client) Watch() error {
	_, err := c.Frame()
	return err
}

// Frame fetches the hosted session's presentation frame. The returned
// frame is client-owned and recycled by the next fetch. In mirror mode
// the replica renders it locally — same package, same cursor position,
// same pixels — and no round trip happens at all.
func (c *Client) Frame() (*raster.Frame, error) {
	if c.mirror != nil {
		if c.err != nil {
			return nil, c.err
		}
		if err := c.mirror.FrameInto(&c.frame); err != nil {
			return nil, err
		}
		return &c.frame, nil
	}
	c.flushPending()
	if c.err != nil {
		return nil, c.err
	}
	f, err := c.frameRetry()
	if err != nil && recoverable(err) {
		if rerr := c.resumeOnce(); rerr == nil {
			f, err = c.frameRetry()
		}
	}
	if err != nil {
		return nil, c.finalize(err)
	}
	return f, nil
}

// frameRetry fetches the frame under the retry policy (a frame GET is
// idempotent; re-fetching after a lost response just renders again).
func (c *Client) frameRetry() (*raster.Frame, error) {
	var frame *raster.Frame
	err := c.retry.Do(func(int) (error, bool) {
		f, aerr, retryable := c.frameAttempt()
		frame = f
		return aerr, retryable
	})
	if err != nil {
		return nil, err
	}
	return frame, nil
}

func (c *Client) frameAttempt() (*raster.Frame, error, bool) {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d := c.timeout(); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+FramePath+"?session="+c.id, nil)
	if err != nil {
		return nil, err, false
	}
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, err, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err, retryable := responseError(resp, "frame")
		return nil, err, retryable
	}
	w, _ := strconv.Atoi(resp.Header.Get("X-Frame-Width"))
	h, _ := strconv.Atoi(resp.Header.Get("X-Frame-Height"))
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("playsvc: frame response missing geometry"), false
	}
	tick := c.tick
	if v := resp.Header.Get("X-Frame-Tick"); v != "" {
		tick, _ = strconv.Atoi(v)
	}
	n := 3 * w * h
	if cap(c.frame.Pix) < n {
		c.frame.Pix = make([]uint8, n)
	}
	c.frame.Pix = c.frame.Pix[:n]
	c.frame.W, c.frame.H = w, h
	if _, err := io.ReadFull(resp.Body, c.frame.Pix); err != nil {
		// A truncated body (reset mid-stream) re-fetches cleanly.
		return nil, fmt.Errorf("playsvc: short frame body: %w", err), true
	}
	c.tick = tick
	return &c.frame, nil, false
}

// Close releases the hosted session (a "leave" act). Events emitted by the
// final interactions are still delivered to the observer. Closing an
// already-failed client still attempts the leave — if the session survived
// whatever broke the client, it should not linger until TTL eviction —
// and returns the sticky error.
func (c *Client) Close() error {
	c.flushPending()
	if c.mirror != nil {
		defer func() {
			c.mirror.Close()
			c.mirror = nil
		}()
	}
	if c.err == nil {
		// The leave itself always travels as a single JSON act: it ends
		// the session, so there is nothing to pipeline it with.
		r, err := c.act(&ActRequest{Kind: ActLeave})
		if err == nil && c.mirror != nil && int64(r.EventCount) != c.mirrorCounter.n {
			err = c.fail(fmt.Errorf("playsvc: local mirror diverged at leave: replica saw %d events, hosted session %d",
				c.mirrorCounter.n, r.EventCount))
		}
		return err
	}
	sticky := c.err
	c.seq++
	if resp, err := c.opts.HTTP.Post(c.opts.BaseURL+ActPath, "application/json",
		bytes.NewReader(mustJSON(&ActRequest{Session: c.id, Kind: ActLeave, Seq: c.seq}))); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return sticky
}

// mustJSON marshals a value that cannot fail (plain request structs).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
