// Manager-side room lifecycle: creating the hub, joining watchers, and
// the registry the HTTP surface and the janitor resolve rooms through.
package playsvc

import (
	"fmt"
	"net/http"
)

// roomList snapshots the live room registry (roomsMu is a leaf lock, so
// callers iterate outside it).
func (m *Manager) roomList() []*Room {
	m.roomsMu.Lock()
	defer m.roomsMu.Unlock()
	out := make([]*Room, 0, len(m.rooms))
	for _, r := range m.rooms {
		out = append(out, r)
	}
	return out
}

// Room resolves a live room by id.
func (m *Manager) Room(id string) (*Room, bool) {
	m.roomsMu.Lock()
	defer m.roomsMu.Unlock()
	r := m.rooms[id]
	return r, r != nil
}

func (m *Manager) roomByID(id string) (*Room, error) {
	if r, ok := m.Room(id); ok {
		return r, nil
	}
	return nil, errf(http.StatusNotFound, "playsvc: no room %q", id)
}

func (m *Manager) dropRoom(id string) {
	m.roomsMu.Lock()
	delete(m.rooms, id)
	m.roomsMu.Unlock()
}

// closeRoomLocked detaches and closes a session's broadcast hub; h.mu must
// be held. Rooms are live-only: the driven session may survive in the
// snapshot store, the fan-out state does not — watchers re-join wherever
// the session thaws.
func (m *Manager) closeRoomLocked(h *hosted) {
	if h.room == nil {
		return
	}
	r := h.room
	h.room = nil
	r.close()
	m.dropRoom(r.id)
}

// CreateRoom opens a shared session: a hosted session whose id doubles as
// the room id, with a broadcast hub attached and its first publication
// (the start scenario's frame) already rendered. Creation is idempotent —
// a retried create, or a second instructor client racing the first,
// reattaches to the existing hub.
func (m *Manager) CreateRoom(req *RoomCreateRequest) (*RoomCreateReply, error) {
	id := req.Room
	if id == "" {
		id = fmt.Sprintf("%s-room-%08d", req.Course, m.seq.Add(1))
	}
	if _, err := m.Create(&CreateRequest{Course: req.Course, Session: id, Trace: req.Trace}); err != nil {
		return nil, err
	}
	h, _, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	h.touch()
	h.mu.Lock()
	if h.gone {
		h.mu.Unlock()
		return nil, errf(http.StatusNotFound, "playsvc: no session %q", id)
	}
	r := h.room
	if r == nil {
		r = newRoom(m, id, h)
		h.room = r
		r.publish() // seq 1: the create-time frame seeds every joiner's ring
	}
	c := h.course
	reply := &RoomCreateReply{Room: id, Course: c.name, Width: c.w, Height: c.h, FPS: c.fps}
	r.mu.Lock()
	reply.Seq = r.seq
	if r.cur != nil {
		reply.Tick = r.cur.tick
	}
	r.mu.Unlock()
	h.mu.Unlock()
	m.roomsMu.Lock()
	m.rooms[id] = r
	m.roomsMu.Unlock()
	return reply, nil
}

// JoinRoom subscribes a watcher and returns its catch-up snapshot: the
// current state plus the room's retained event/message tails, in the same
// absolute coordinates the watch chunks use.
func (m *Manager) JoinRoom(req *RoomJoinRequest) (*RoomJoinReply, error) {
	r, err := m.roomByID(req.Room)
	if err != nil {
		return nil, err
	}
	h := r.h
	h.touch()
	watcherID := req.Watcher
	if watcherID == "" {
		watcherID = fmt.Sprintf("w-%08d", m.seq.Add(1))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gone {
		return nil, errf(http.StatusNotFound, "playsvc: no room %q", req.Room)
	}
	if _, err := r.join(watcherID); err != nil {
		return nil, err
	}
	c := h.course
	reply := &RoomJoinReply{
		Room:    r.id,
		Watcher: watcherID,
		Course:  c.name,
		Width:   c.w,
		Height:  c.h,
		FPS:     c.fps,
		State:   h.sess.State().Clone(),
	}
	r.mu.Lock()
	reply.Seq = r.seq
	if r.cur != nil {
		reply.Tick = r.cur.tick
	}
	reply.EventStart = r.eventBase
	reply.Events = append(reply.Events, r.events...)
	reply.EventCount = r.eventBase + len(r.events)
	reply.MessageStart = r.msgBase
	reply.Messages = append(reply.Messages, r.messages...)
	reply.MessageCount = r.msgBase + len(r.messages)
	reply.Quiz = r.quiz
	r.mu.Unlock()
	return reply, nil
}

// LeaveRoom unsubscribes a watcher (idempotent; an unknown room is fine —
// the watcher's goal state already holds).
func (m *Manager) LeaveRoom(req *RoomJoinRequest) {
	if r, ok := m.Room(req.Room); ok {
		r.leave(req.Watcher)
	}
}

// AnswerRoom records one watcher's quiz answer and returns the cohort
// tally so far.
func (m *Manager) AnswerRoom(req *RoomAnswerRequest) (*RoomAnswerReply, error) {
	r, err := m.roomByID(req.Room)
	if err != nil {
		return nil, err
	}
	return r.answer(req.Watcher, req.Quiz, req.Choice)
}

// RoomStatsOf snapshots one room's counters and cohort tallies.
func (m *Manager) RoomStatsOf(id string) (RoomStats, error) {
	r, err := m.roomByID(id)
	if err != nil {
		return RoomStats{}, err
	}
	return r.stats(), nil
}
