// Command vgbl-loadtest drives a learner fleet against a package server —
// the classroom-at-scale measurement. Pointed at a running vgbl-server it
// load-tests that deployment; with no -server it brings up an in-process
// server with the classroom course and exercises the full loop locally.
// With -interactive the learners do not simulate locally: each one creates
// a server-hosted session on the play service and plays the whole game
// over the wire (optionally fetching rendered frames with -watch-every).
// With -abr the learners adaptively stream a quality-ladder package
// instead, each on its own (optionally fault-injected) link, and the run
// prints segments and bytes per quality tier.
//
// Usage:
//
//	vgbl-loadtest -learners 500 -policy guided
//	vgbl-loadtest -server http://127.0.0.1:8807 -pkg classroom -learners 1000
//	vgbl-loadtest -interactive -learners 200 -watch-every 4
//	vgbl-loadtest -interactive -server http://pkg:8807 -play-server http://gateway:8808
//	vgbl-loadtest -abr -learners 50 -abr-profile cap-64k
//
// The run prints the fleet's throughput/latency summary and the server's
// final /telemetry/stats (plus, interactively, /play/stats) snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/content"
	"repro/internal/faultnet"
	"repro/internal/fleet"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	server := flag.String("server", "", "package server base URL (empty: serve the classroom course in-process)")
	playServer := flag.String("play-server", "", "play service base URL when it differs from -server (e.g. a cluster gateway)")
	pkgName := flag.String("pkg", "classroom", "package name under /pkg/")
	learners := flag.Int("learners", 500, "fleet size")
	concurrency := flag.Int("concurrency", 128, "max simultaneously playing learners")
	policy := flag.String("policy", "guided", "learner policy: guided, explorer, random")
	steps := flag.Int("steps", 30, "max interactions per session")
	flushEvery := flag.Int("flush", 32, "telemetry batch size")
	flushMS := flag.Int("flush-interval-ms", 250, "telemetry interval flush (0 disables)")
	progressive := flag.Bool("progressive", false, "also measure ranged progressive startup per learner")
	interactive := flag.Bool("interactive", false, "play server-hosted sessions over the wire instead of simulating locally")
	playBinary := flag.Bool("play-binary", false, "interactive acts ride the framed binary route (/play/actv2)")
	playPipeline := flag.Int("play-pipeline", 0, "pipeline up to N fire-and-forget acts per framed batch (implies -play-binary)")
	playMirror := flag.Bool("play-mirror", false, "thick-client mode: a local replica answers reads and frames; acts ship as reconciled batches (implies -play-binary)")
	watchEvery := flag.Int("watch-every", 0, "fetch the rendered frame every N steps (0 disables; interactive frame traffic)")
	abr := flag.Bool("abr", false, "adaptive streaming mode: learners stream the package through the ABR picker instead of simulating play (in-process serving publishes a quality ladder)")
	abrProfile := flag.String("abr-profile", "clean", "ABR mode: faultnet link profile per learner (clean, wifi-flaky, mobile-3g, or cap-<N>k for an N KiB/s bandwidth cap)")
	abrSpeed := flag.Float64("abr-speed", 1, "ABR mode: playhead speed in media-seconds per wall-second")
	abrDecode := flag.Bool("abr-decode", false, "ABR mode: decode each segment's first frame to prove fetched tiers play")
	rooms := flag.Int("rooms", 0, "classroom mode: drive N shared rooms instead of a per-learner fleet")
	watchers := flag.Int("watchers", 200, "classroom mode: watchers per room")
	roomFPS := flag.Int("room-fps", 10, "classroom mode: driver pace in acts per second")
	roomTicks := flag.Int("room-ticks", 100, "classroom mode: driver acts per room")
	roomStream := flag.Bool("room-stream", false, "classroom mode: watchers use chunked streaming instead of long-polling")
	seed := flag.Int64("seed", 1, "base RNG seed")
	faultProfile := flag.String("fault", "", fmt.Sprintf("inject a named fault profile into the fleet's HTTP path (%s)", strings.Join(faultnet.ProfileNames(), ", ")))
	faultSeed := flag.Int64("fault-seed", 1, "fault injection RNG seed (deterministic per seed)")
	flag.Parse()

	factories := map[string]sim.Factory{
		"guided":   sim.GuidedFactory,
		"explorer": sim.ExplorerFactory,
		"random":   sim.RandomFactory,
	}
	f, ok := factories[*policy]
	if !ok {
		fail(fmt.Errorf("unknown policy %q", *policy))
	}

	url := *server
	var svc *telemetry.Service
	if url == "" {
		var err error
		svc, url, err = serveInProcess(*pkgName, *abr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serving %s in-process at %s\n", *pkgName, url)
	}

	if *abr {
		// Adaptive streaming mode: every learner rides its own link and its
		// own cache, picking a quality rung per segment. Prints the per-tier
		// segment/byte table; the server side of the same ledger is the
		// netstream_tier_bytes_total family on /metrics.
		fmt.Printf("streaming %d learners (%s link, ×%.2g speed) against %s/pkg/%s ...\n",
			*learners, *abrProfile, *abrSpeed, url, *pkgName)
		sum, err := fleet.RunStreamers(fleet.StreamConfig{
			ServerURL:    url,
			Package:      *pkgName,
			Learners:     *learners,
			Concurrency:  *concurrency,
			Profile:      *abrProfile,
			Seed:         *seed,
			Speed:        *abrSpeed,
			DecodeFrames: *abrDecode,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println()
		fmt.Print(sum.String())
		return
	}

	if *rooms > 0 {
		// Classroom mode: R shared rooms, W watchers each, one render per
		// driver tick no matter how many watch. Prints the fan-out summary
		// plus the server's /play/stats (rooms, renders, deliveries, skips).
		playURL := *playServer
		if playURL == "" {
			playURL = url
		}
		fmt.Printf("driving %d rooms × %d watchers (%s policy, %d fps) against %s ...\n",
			*rooms, *watchers, *policy, *roomFPS, playURL)
		sum, err := fleet.RunClassroom(fleet.ClassroomConfig{
			ServerURL: url,
			PlayURL:   *playServer,
			Package:   *pkgName,
			Rooms:     *rooms,
			Watchers:  *watchers,
			FPS:       *roomFPS,
			Ticks:     *roomTicks,
			Stream:    *roomStream,
			Policy:    f,
			Seed:      *seed,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println()
		fmt.Print(sum.String())
		printStats(playURL, playsvc.StatsPath)
		if sum.WatchersFailed > 0 || sum.DriversFailed > 0 {
			os.Exit(1)
		}
		return
	}

	mode := "local-sim"
	if *interactive {
		mode = "remote-play"
	}
	// With -fault, every fleet request crosses a deterministic fault
	// injector: same profile + seed, same misbehavior, run after run.
	var faultHTTP *http.Client
	if *faultProfile != "" {
		profile, ok := faultnet.Lookup(*faultProfile)
		if !ok {
			fail(fmt.Errorf("unknown fault profile %q (have: %s)", *faultProfile, strings.Join(faultnet.ProfileNames(), ", ")))
		}
		base := &http.Client{Transport: faultnet.NewHTTPTransport(*concurrency)}
		faultHTTP = faultnet.WrapClient(base, profile, *faultSeed)
		fmt.Printf("injecting fault profile %q (seed %d) into the fleet's HTTP path\n", profile.Name, *faultSeed)
	}
	fmt.Printf("driving %d learners (%s policy, %s) against %s/pkg/%s ...\n", *learners, *policy, mode, url, *pkgName)
	sum, err := fleet.Run(fleet.Config{
		ServerURL:          url,
		PlayURL:            *playServer,
		Package:            *pkgName,
		Learners:           *learners,
		Concurrency:        *concurrency,
		Interactive:        *interactive,
		PlayBinary:         *playBinary,
		PlayPipeline:       *playPipeline,
		PlayMirror:         *playMirror,
		Policy:             f,
		Sim:                sim.Config{MaxSteps: *steps, TicksPerStep: 2, Patience: 20, RewardBoost: 10, Seed: *seed, WatchEvery: *watchEvery},
		FlushEvery:         *flushEvery,
		FlushInterval:      time.Duration(*flushMS) * time.Millisecond,
		ProgressiveStartup: *progressive,
		HTTP:               faultHTTP,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println()
	fmt.Print(sum.String())

	// Let the ingest queues drain, then show what the lecturer would see.
	if svc != nil {
		if !svc.Quiesce(30 * time.Second) {
			fail(fmt.Errorf("ingest queues did not drain"))
		}
	} else if err := waitForDrain(url); err != nil {
		fmt.Fprintf(os.Stderr, "vgbl-loadtest: warning: %v; the stats snapshot below may be missing pending batches\n", err)
	}
	printStats(url, telemetry.StatsPath)
	if *interactive {
		playURL := *playServer
		if playURL == "" {
			playURL = url
		}
		printStats(playURL, playsvc.StatsPath)
		// The per-node act-latency percentiles come from the histograms each
		// play node serves at /metrics — against a cluster gateway this is
		// one row per backend, against a single manager one row.
		fmt.Printf("\nper-node act latency (scraped from /metrics):\n")
		fmt.Print(fleet.FormatLatencyTable(fleet.ScrapeActLatencies(nil, playURL)))
	}
	if sum.Failed > 0 {
		os.Exit(1)
	}
}

// printStats fetches and prints one JSON stats endpoint.
func printStats(url, path string) {
	resp, err := http.Get(url + path)
	if err != nil {
		fail(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n%s:\n%s", path, body)
}

// serveInProcess builds the named bundled course and publishes it with the
// telemetry and play services mounted, returning the telemetry service and
// base URL. With ladder set the course is published as a multi-tier
// quality ladder (what the -abr streaming fleet picks from).
func serveInProcess(name string, ladder bool) (*telemetry.Service, string, error) {
	courses := map[string]*content.Course{
		"classroom": content.Classroom(),
		"museum":    content.Museum(),
		"street":    content.StreetDemo(),
	}
	course, ok := courses[name]
	if !ok {
		return nil, "", fmt.Errorf("no bundled course %q (have classroom, museum, street)", name)
	}
	srv := netstream.NewServer()
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 512})
	h := svc.Handler()
	if err := srv.Mount("/telemetry/", h); err != nil {
		return nil, "", err
	}
	if err := srv.Mount(telemetry.HealthPath, h); err != nil {
		return nil, "", err
	}
	// The play service shares the package server's chunk store so a
	// ladder manifest can be opened without a package blob.
	play := playsvc.NewManager(playsvc.Options{Store: srv.Store()})
	if ladder {
		man, err := course.PublishLadderTo(srv.Store(), studio.Options{QStep: 10}, nil)
		if err != nil {
			return nil, "", err
		}
		if err := srv.AddManifest(name, man); err != nil {
			return nil, "", err
		}
		if err := play.AddCourseFromManifest(name, man); err != nil {
			return nil, "", err
		}
	} else {
		blob, err := course.BuildPackage(studio.Options{QStep: 10})
		if err != nil {
			return nil, "", err
		}
		if err := srv.AddPackage(name, blob); err != nil {
			return nil, "", err
		}
		if err := play.AddCourse(name, blob); err != nil {
			return nil, "", err
		}
	}
	if err := srv.Mount("/play/", play.Handler()); err != nil {
		return nil, "", err
	}
	// Classroom rooms ride the same play mux under their own path root.
	if err := srv.Mount("/room/", play.Handler()); err != nil {
		return nil, "", err
	}
	// Same observability surface as vgbl-server: the in-process run is
	// scrapeable too, and the end-of-run latency table reads from it.
	reg := obs.NewRegistry("vgbl")
	srv.Register(reg)
	svc.Register(reg)
	play.Register(reg)
	if err := srv.Mount("/metrics", reg.Handler()); err != nil {
		return nil, "", err
	}
	if err := srv.Mount("/debug/traces", play.Ring().Handler()); err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go http.Serve(ln, srv)
	return svc, "http://" + ln.Addr().String(), nil
}

// waitForDrain polls a remote server's /healthz until its ingest queues
// report no pending batches; it errors when the drain cannot be confirmed.
func waitForDrain(url string) error {
	deadline := time.Now().Add(15 * time.Second)
	pending := -1
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + telemetry.HealthPath)
		if err != nil {
			return fmt.Errorf("ingest drain unconfirmed: %w", err)
		}
		var health struct {
			Pending int `json:"pending"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("ingest drain unconfirmed: bad %s payload: %w", telemetry.HealthPath, err)
		}
		if health.Pending == 0 {
			return nil
		}
		pending = health.Pending
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("ingest queues still report %d pending batches after 15s", pending)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vgbl-loadtest:", err)
	os.Exit(1)
}
