// Package container implements TKVC, the seekable file format that carries
// TKV1 video inside IVGBL game packages.
//
// A TKVC blob has four sections:
//
//	header   — magic, version, video metadata (size, fps, frame count, GOP)
//	chapters — named frame ranges; the authoring tool stores scenario
//	           segments here, which is what makes "switch to segment X"
//	           a constant-time operation at play time (paper §2.1)
//	index    — per-frame (type, offset, size) records
//	data     — concatenated TKV1 packets, CRC-32 protected
//
// The index is the load-bearing piece: the paper's interactive jumps between
// video scenarios require random access, and experiment E2 measures exactly
// the gap between this index and the linear-scan baseline.
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/media/vcodec"
)

const (
	magic   = "TKVC"
	version = 1
)

// ErrBadContainer is returned when a blob fails structural validation.
var ErrBadContainer = errors.New("container: malformed TKVC data")

// ErrTruncated reports that the input ended before the structure did. For
// prefix parsing (ParseHead) it means "fetch more bytes and retry", which is
// how the streaming client sizes its header request.
var ErrTruncated = errors.New("container: truncated input")

// Meta is the global video metadata of a container.
type Meta struct {
	Width, Height int
	FPS           int
	FrameCount    int
	GOP           int
}

// Chapter is a named frame range [Start, End). The authoring tool maps one
// scenario to one chapter.
type Chapter struct {
	Name  string
	Start int // first frame
	End   int // one past the last frame
}

// frameRecord locates one packet inside the data section.
type frameRecord struct {
	typ    vcodec.FrameType
	offset int
	size   int
}

// Muxer assembles a TKVC blob. Packets must be added in encode order.
type Muxer struct {
	meta     Meta
	chapters []Chapter
	records  []frameRecord
	data     []byte
}

// NewMuxer starts a container with the given metadata. FrameCount in meta is
// ignored; it is derived from the packets actually added.
func NewMuxer(meta Meta) (*Muxer, error) {
	if meta.Width <= 0 || meta.Height <= 0 || meta.FPS <= 0 || meta.GOP < 1 {
		return nil, fmt.Errorf("container: invalid metadata %+v", meta)
	}
	return &Muxer{meta: meta}, nil
}

// AddPacket appends the next encoded frame. Packet indices must be
// sequential from zero and the first packet must be an I-frame.
func (m *Muxer) AddPacket(p vcodec.Packet) error {
	if p.Index != len(m.records) {
		return fmt.Errorf("container: packet index %d, want %d", p.Index, len(m.records))
	}
	if len(m.records) == 0 && p.Type != vcodec.IFrame {
		return errors.New("container: first packet must be an I-frame")
	}
	if len(p.Data) == 0 {
		return errors.New("container: empty packet")
	}
	m.records = append(m.records, frameRecord{typ: p.Type, offset: len(m.data), size: len(p.Data)})
	m.data = append(m.data, p.Data...)
	return nil
}

// AddChapter registers a named segment. Ranges may be added in any order but
// must be non-empty, within the eventual frame count (validated at
// Finalize), and names must be unique and non-empty.
func (m *Muxer) AddChapter(ch Chapter) error {
	if ch.Name == "" {
		return errors.New("container: chapter needs a name")
	}
	if ch.End <= ch.Start || ch.Start < 0 {
		return fmt.Errorf("container: chapter %q has empty range [%d,%d)", ch.Name, ch.Start, ch.End)
	}
	for _, c := range m.chapters {
		if c.Name == ch.Name {
			return fmt.Errorf("container: duplicate chapter %q", ch.Name)
		}
	}
	m.chapters = append(m.chapters, ch)
	return nil
}

// Finalize validates and serializes the container.
func (m *Muxer) Finalize() ([]byte, error) {
	if len(m.records) == 0 {
		return nil, errors.New("container: no packets")
	}
	for _, ch := range m.chapters {
		if ch.End > len(m.records) {
			return nil, fmt.Errorf("container: chapter %q ends at %d beyond %d frames", ch.Name, ch.End, len(m.records))
		}
	}
	chapters := append([]Chapter(nil), m.chapters...)
	sort.Slice(chapters, func(i, j int) bool { return chapters[i].Start < chapters[j].Start })

	var buf []byte
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = binary.AppendUvarint(buf, uint64(m.meta.Width))
	buf = binary.AppendUvarint(buf, uint64(m.meta.Height))
	buf = binary.AppendUvarint(buf, uint64(m.meta.FPS))
	buf = binary.AppendUvarint(buf, uint64(len(m.records)))
	buf = binary.AppendUvarint(buf, uint64(m.meta.GOP))
	// Chapters.
	buf = binary.AppendUvarint(buf, uint64(len(chapters)))
	for _, ch := range chapters {
		buf = binary.AppendUvarint(buf, uint64(ch.Start))
		buf = binary.AppendUvarint(buf, uint64(ch.End))
		buf = binary.AppendUvarint(buf, uint64(len(ch.Name)))
		buf = append(buf, ch.Name...)
	}
	// Index.
	for _, r := range m.records {
		buf = append(buf, byte(r.typ))
		buf = binary.AppendUvarint(buf, uint64(r.size))
	}
	// Data with checksum.
	buf = binary.AppendUvarint(buf, uint64(len(m.data)))
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(m.data))
	buf = append(buf, crc[:]...)
	buf = append(buf, m.data...)
	return buf, nil
}

// WithChapters rebuilds a container blob with a replacement chapter table,
// leaving packets untouched. The authoring tool's segment edits (split,
// merge, rename) go through this.
func WithChapters(blob []byte, chapters []Chapter) ([]byte, error) {
	r, err := Open(blob)
	if err != nil {
		return nil, err
	}
	mux, err := NewMuxer(r.meta)
	if err != nil {
		return nil, err
	}
	for i, rec := range r.records {
		if err := mux.AddPacket(vcodec.Packet{
			Type:  rec.typ,
			Index: i,
			Data:  r.data[rec.offset : rec.offset+rec.size],
		}); err != nil {
			return nil, err
		}
	}
	for _, ch := range chapters {
		if err := mux.AddChapter(ch); err != nil {
			return nil, err
		}
	}
	return mux.Finalize()
}

// Reader provides random access into a finalized TKVC blob.
type Reader struct {
	meta     Meta
	chapters []Chapter
	records  []frameRecord
	data     []byte // data section only
}

// Head is the parsed metadata/chapters/index portion of a container — every
// structural fact about the file except the packet payloads. It can be
// parsed from a prefix of the blob, which is what lets the streaming client
// plan ranged fetches before downloading any video data.
type Head struct {
	meta      Meta
	chapters  []Chapter
	records   []frameRecord
	dataStart int // absolute offset of the data section within the blob
	dataLen   int
	crc       uint32
}

// ParseHead parses the container header, chapter table, frame index and
// data-section descriptor from a blob prefix. If the prefix ends before the
// head does, the error wraps ErrTruncated — fetch more bytes and retry.
func ParseHead(prefix []byte) (*Head, error) {
	p := &parser{buf: prefix}
	mg, err := p.slice(4)
	if err != nil {
		return nil, err
	}
	if string(mg) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadContainer)
	}
	ver, err := p.u8()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadContainer, ver)
	}
	var h Head
	if h.meta.Width, err = p.intv(); err != nil {
		return nil, err
	}
	if h.meta.Height, err = p.intv(); err != nil {
		return nil, err
	}
	if h.meta.FPS, err = p.intv(); err != nil {
		return nil, err
	}
	if h.meta.FrameCount, err = p.intv(); err != nil {
		return nil, err
	}
	if h.meta.GOP, err = p.intv(); err != nil {
		return nil, err
	}
	if h.meta.Width <= 0 || h.meta.Height <= 0 || h.meta.FPS <= 0 ||
		h.meta.FrameCount <= 0 || h.meta.GOP < 1 || h.meta.FrameCount > 1<<26 {
		return nil, fmt.Errorf("%w: implausible metadata %+v", ErrBadContainer, h.meta)
	}
	nch, err := p.intv()
	if err != nil {
		return nil, err
	}
	if nch < 0 || nch > h.meta.FrameCount {
		return nil, fmt.Errorf("%w: %d chapters", ErrBadContainer, nch)
	}
	for i := 0; i < nch; i++ {
		var ch Chapter
		if ch.Start, err = p.intv(); err != nil {
			return nil, err
		}
		if ch.End, err = p.intv(); err != nil {
			return nil, err
		}
		nameLen, err := p.intv()
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<12 {
			return nil, fmt.Errorf("%w: chapter name of %d bytes", ErrBadContainer, nameLen)
		}
		nb, err := p.slice(nameLen)
		if err != nil {
			return nil, err
		}
		ch.Name = string(nb)
		if ch.End <= ch.Start || ch.End > h.meta.FrameCount {
			return nil, fmt.Errorf("%w: chapter %q range [%d,%d)", ErrBadContainer, ch.Name, ch.Start, ch.End)
		}
		h.chapters = append(h.chapters, ch)
	}
	h.records = make([]frameRecord, h.meta.FrameCount)
	offset := 0
	for i := range h.records {
		tb, err := p.u8()
		if err != nil {
			return nil, err
		}
		ft := vcodec.FrameType(tb)
		if ft != vcodec.IFrame && ft != vcodec.PFrame {
			return nil, fmt.Errorf("%w: frame %d has type %d", ErrBadContainer, i, tb)
		}
		size, err := p.intv()
		if err != nil {
			return nil, err
		}
		if size <= 0 {
			return nil, fmt.Errorf("%w: frame %d has size %d", ErrBadContainer, i, size)
		}
		h.records[i] = frameRecord{typ: ft, offset: offset, size: size}
		offset += size
	}
	if len(h.records) > 0 && h.records[0].typ != vcodec.IFrame {
		return nil, fmt.Errorf("%w: first frame is not an I-frame", ErrBadContainer)
	}
	dataLen, err := p.intv()
	if err != nil {
		return nil, err
	}
	if dataLen != offset {
		return nil, fmt.Errorf("%w: data length %d, index implies %d", ErrBadContainer, dataLen, offset)
	}
	crcb, err := p.slice(4)
	if err != nil {
		return nil, err
	}
	h.dataLen = dataLen
	h.crc = binary.BigEndian.Uint32(crcb)
	h.dataStart = p.pos
	return &h, nil
}

// Meta returns the video metadata.
func (h *Head) Meta() Meta { return h.meta }

// Chapters returns a copy of the chapter table.
func (h *Head) Chapters() []Chapter {
	return append([]Chapter(nil), h.chapters...)
}

// ChapterByName looks a chapter up by name.
func (h *Head) ChapterByName(name string) (Chapter, bool) {
	for _, ch := range h.chapters {
		if ch.Name == name {
			return ch, true
		}
	}
	return Chapter{}, false
}

// FrameType returns the coded type of frame i.
func (h *Head) FrameType(i int) (vcodec.FrameType, error) {
	if i < 0 || i >= len(h.records) {
		return 0, fmt.Errorf("container: frame %d out of range [0,%d)", i, len(h.records))
	}
	return h.records[i].typ, nil
}

// KeyframeAtOrBefore returns the nearest I-frame at or before frame i.
func (h *Head) KeyframeAtOrBefore(i int) (int, error) {
	if i < 0 || i >= len(h.records) {
		return 0, fmt.Errorf("container: frame %d out of range [0,%d)", i, len(h.records))
	}
	for k := i; k >= 0; k-- {
		if h.records[k].typ == vcodec.IFrame {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: no keyframe before %d", ErrBadContainer, i)
}

// ByteRange returns the absolute [start, end) byte range within the blob
// that holds packets [from, to).
func (h *Head) ByteRange(from, to int) (int, int, error) {
	if from < 0 || to > len(h.records) || to <= from {
		return 0, 0, fmt.Errorf("container: packet range [%d,%d) invalid", from, to)
	}
	start := h.dataStart + h.records[from].offset
	last := h.records[to-1]
	return start, h.dataStart + last.offset + last.size, nil
}

// PacketFromChunk extracts packet i from a byte chunk previously fetched via
// ByteRange(from, to). The caller promises chunk covers that range.
func (h *Head) PacketFromChunk(chunk []byte, chunkFrom, i int) ([]byte, error) {
	if i < chunkFrom || i >= len(h.records) {
		return nil, fmt.Errorf("container: packet %d not in chunk starting at %d", i, chunkFrom)
	}
	base := h.records[chunkFrom].offset
	rec := h.records[i]
	lo := rec.offset - base
	hi := lo + rec.size
	if lo < 0 || hi > len(chunk) {
		return nil, fmt.Errorf("%w: chunk too small for packet %d", ErrTruncated, i)
	}
	return chunk[lo:hi], nil
}

// TotalSize returns the full container size in bytes implied by the head.
func (h *Head) TotalSize() int { return h.dataStart + h.dataLen }

// Open parses a TKVC blob. The data section checksum is verified.
func Open(blob []byte) (*Reader, error) {
	h, err := ParseHead(blob)
	if err != nil {
		return nil, err
	}
	if h.TotalSize() > len(blob) {
		return nil, fmt.Errorf("%w: data section", ErrTruncated)
	}
	if h.TotalSize() < len(blob) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadContainer, len(blob)-h.TotalSize())
	}
	data := blob[h.dataStart:]
	if crc32.ChecksumIEEE(data) != h.crc {
		return nil, fmt.Errorf("%w: data checksum mismatch", ErrBadContainer)
	}
	return &Reader{meta: h.meta, chapters: h.chapters, records: h.records, data: data}, nil
}

// Meta returns the container's video metadata.
func (r *Reader) Meta() Meta { return r.meta }

// Chapters returns the chapter table sorted by start frame.
func (r *Reader) Chapters() []Chapter {
	return append([]Chapter(nil), r.chapters...)
}

// ChapterByName looks a chapter up by its name.
func (r *Reader) ChapterByName(name string) (Chapter, bool) {
	for _, ch := range r.chapters {
		if ch.Name == name {
			return ch, true
		}
	}
	return Chapter{}, false
}

// PacketAt returns the encoded packet for frame i and its type.
// The returned slice aliases the container's buffer; callers must not
// modify it.
func (r *Reader) PacketAt(i int) ([]byte, vcodec.FrameType, error) {
	if i < 0 || i >= len(r.records) {
		return nil, 0, fmt.Errorf("container: frame %d out of range [0,%d)", i, len(r.records))
	}
	rec := r.records[i]
	return r.data[rec.offset : rec.offset+rec.size], rec.typ, nil
}

// KeyframeAtOrBefore returns the index of the nearest I-frame at or before
// frame i — the decode entry point for a seek. It is O(distance to the
// previous keyframe), bounded by the GOP length.
func (r *Reader) KeyframeAtOrBefore(i int) (int, error) {
	if i < 0 || i >= len(r.records) {
		return 0, fmt.Errorf("container: frame %d out of range [0,%d)", i, len(r.records))
	}
	for k := i; k >= 0; k-- {
		if r.records[k].typ == vcodec.IFrame {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: no keyframe before %d", ErrBadContainer, i)
}

// DataSize returns the size in bytes of the video data section.
func (r *Reader) DataSize() int { return len(r.data) }

// parser is a bounds-checked cursor over the container blob.
type parser struct {
	buf []byte
	pos int
}

func (p *parser) u8() (uint8, error) {
	if p.pos >= len(p.buf) {
		return 0, fmt.Errorf("%w: header", ErrTruncated)
	}
	v := p.buf[p.pos]
	p.pos++
	return v, nil
}

func (p *parser) intv() (int, error) {
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n == 0 {
		return 0, fmt.Errorf("%w: varint", ErrTruncated)
	}
	if n < 0 || v > 1<<31 {
		return 0, fmt.Errorf("%w: bad varint", ErrBadContainer)
	}
	p.pos += n
	return int(v), nil
}

func (p *parser) slice(n int) ([]byte, error) {
	if n < 0 || p.pos+n > len(p.buf) {
		return nil, fmt.Errorf("%w: need %d bytes", ErrTruncated, n)
	}
	b := p.buf[p.pos : p.pos+n]
	p.pos += n
	return b, nil
}
