package blobstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func chunk(i, size int) []byte {
	data := make([]byte, size)
	for j := range data {
		data[j] = byte(i + j*7)
	}
	data[0] = byte(i)
	data[1] = byte(i >> 8)
	return data
}

func TestHashRoundTrip(t *testing.T) {
	h := Sum([]byte("hello"))
	parsed, err := ParseHash(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != h {
		t.Fatal("parse(string(h)) != h")
	}
	if _, err := ParseHash("short"); err == nil {
		t.Error("short hash accepted")
	}
	if _, err := ParseHash(string(make([]byte, 64))); err == nil {
		t.Error("non-hex hash accepted")
	}
}

func testBackend(t *testing.T, b Backend) {
	t.Helper()
	data := []byte("the chunk payload")
	h := Sum(data)
	if ok, _ := b.Has(h); ok {
		t.Fatal("empty backend has chunk")
	}
	if _, err := b.Get(h); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty = %v, want ErrNotFound", err)
	}
	added, err := b.Put(h, data)
	if err != nil || !added {
		t.Fatalf("first Put = (%v, %v)", added, err)
	}
	added, err = b.Put(h, data)
	if err != nil || added {
		t.Fatalf("duplicate Put = (%v, %v), want dedup", added, err)
	}
	got, err := b.Get(h)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get = (%q, %v)", got, err)
	}
	if st := b.Stats(); st.Chunks != 1 || st.Bytes != int64(len(data)) {
		t.Errorf("stats = %+v", st)
	}
	if err := b.Remove(h); err != nil {
		t.Fatal(err)
	}
	if ok, _ := b.Has(h); ok {
		t.Error("removed chunk still present")
	}
	if st := b.Stats(); st.Chunks != 0 || st.Bytes != 0 {
		t.Errorf("stats after remove = %+v", st)
	}
	if err := b.Remove(h); err != nil {
		t.Errorf("double remove: %v", err)
	}
}

func TestMemoryBackend(t *testing.T) { testBackend(t, NewMemory()) }

func TestDiskBackend(t *testing.T) {
	b, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testBackend(t, b)
}

func TestMemoryPutCopies(t *testing.T) {
	b := NewMemory()
	data := []byte("mutated later")
	h := Sum(data)
	b.Put(h, data)
	data[0] = 'X'
	got, _ := b.Get(h)
	if Sum(got) != h {
		t.Fatal("backend aliases the caller's buffer")
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	b, _ := NewDisk(dir)
	data := chunk(1, 100)
	h := Sum(data)
	if _, err := b.Put(h, data); err != nil {
		t.Fatal(err)
	}
	re, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := re.Stats(); st.Chunks != 1 || st.Bytes != 100 {
		t.Errorf("reopened stats = %+v", st)
	}
	got, err := re.Get(h)
	if err != nil || Sum(got) != h {
		t.Fatalf("reopened Get = %v", err)
	}
}

func TestStoreVerifiesBackendReads(t *testing.T) {
	dir := t.TempDir()
	b, _ := NewDisk(dir)
	s, err := New(Options{Backend: b, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := s.Put(chunk(3, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one stored byte behind the store's back.
	path := filepath.Join(dir, h.String()[:2], h.String())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered chunk served: %v", err)
	}
}

func TestStoreHotTier(t *testing.T) {
	s, err := New(Options{Backend: NewMemory(), CacheBytes: 1 << 20, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := chunk(9, 256)
	h, added, err := s.Put(data)
	if err != nil || !added {
		t.Fatalf("Put = (%v, %v)", added, err)
	}
	if _, _, err := s.Put(data); err != nil {
		t.Fatal(err)
	}
	// First get misses the hot tier, second hits.
	if _, err := s.Get(h); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(h); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.DedupHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesServed != 512 {
		t.Errorf("bytes served = %d", st.BytesServed)
	}
	if st.CacheChunks != 1 {
		t.Errorf("cache chunks = %d", st.CacheChunks)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard, room for ~4 of 10 chunks: older chunks must be evicted,
	// recently used ones retained.
	s, err := New(Options{Backend: NewMemory(), CacheBytes: 1024, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var hashes []Hash
	for i := 0; i < 10; i++ {
		h, _, err := s.Put(chunk(i, 256))
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
		if _, err := s.Get(h); err != nil { // warm the tier
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheBytes > 1024 {
		t.Errorf("cache bytes %d over budget", st.CacheBytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under pressure")
	}
	// The most recent chunk is hot; the first one fell out but is still
	// durable in the backend.
	before := s.Stats().Hits
	if _, err := s.Get(hashes[9]); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Hits != before+1 {
		t.Error("most recent chunk not served from hot tier")
	}
	if _, err := s.Get(hashes[0]); err != nil {
		t.Fatalf("evicted chunk lost from backend: %v", err)
	}
}

func TestLRUKeepsRecentlyUsed(t *testing.T) {
	s, err := New(Options{Backend: NewMemory(), CacheBytes: 1024, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := s.Put(chunk(0, 256))
	s.Get(first)
	for i := 1; i < 8; i++ {
		h, _, _ := s.Put(chunk(i, 256))
		s.Get(h)
		s.Get(first) // keep the first chunk hot
	}
	before := s.Stats().Hits
	s.Get(first)
	if s.Stats().Hits != before+1 {
		t.Error("repeatedly-touched chunk was evicted")
	}
}

func TestCacheOnlyStore(t *testing.T) {
	s, err0 := New(Options{CacheBytes: 1024, Shards: 1})
	if err0 != nil {
		t.Fatal(err0)
	}
	data := chunk(5, 300)
	h, added, err := s.Put(data)
	if err != nil || !added {
		t.Fatalf("Put = (%v, %v)", added, err)
	}
	if _, _, err := s.Put(data); err != nil {
		t.Fatal(err)
	}
	if s.Stats().DedupHits != 1 {
		t.Error("no dedup hit on duplicate put")
	}
	got, err := s.Get(h)
	if err != nil || Sum(got) != h {
		t.Fatalf("Get = %v", err)
	}
	if !s.Has(h) {
		t.Error("Has = false for stored chunk")
	}
	// Fill past the budget: the early chunk is evicted and Get reports
	// ErrNotFound (refetchable by the caller).
	for i := 10; i < 20; i++ {
		s.Put(chunk(i, 300))
	}
	missing := 0
	if _, err := s.Get(h); errors.Is(err, ErrNotFound) {
		missing++
	}
	if st := s.Stats(); st.StoredBytes > 1024 {
		t.Errorf("cache-only store holds %d bytes over budget", st.StoredBytes)
	}
	if err := s.Remove(h); err != nil {
		t.Fatal(err)
	}
	if s.Has(h) {
		t.Error("removed chunk still present")
	}
}

func TestOversizedChunkDoesNotThrash(t *testing.T) {
	s := NewCache(64)
	data := chunk(1, 256) // bigger than the whole budget
	h, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(h); err != nil {
		t.Fatal("oversized chunk not retained as sole resident")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s, err := New(Options{Backend: NewMemory(), CacheBytes: 32 << 10, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 64
	hashes := make([]Hash, chunks)
	for i := range hashes {
		hashes[i], _, _ = s.Put(chunk(i, 512))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				h := hashes[(g*31+i)%chunks]
				data, err := s.Get(h)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if Sum(data) != h {
					t.Error("wrong bytes")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses != 8*400 {
		t.Errorf("hits %d + misses %d != %d", st.Hits, st.Misses, 8*400)
	}
}

func TestGetHotZeroAllocs(t *testing.T) {
	s, err := New(Options{Backend: NewMemory(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h, _, _ := s.Put(chunk(1, 4096))
	if _, err := s.Get(h); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Get(h); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("hot Get allocates %v times per op, want 0", allocs)
	}
}

func TestStatsString(t *testing.T) {
	// Ensure Stats is printable in experiment tables without surprises.
	s := NewCache(0) // 0 → default budget
	s.Put([]byte("x"))
	if got := fmt.Sprintf("%+v", s.Stats()); got == "" {
		t.Fatal("empty stats")
	}
}
