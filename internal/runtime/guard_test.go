package runtime

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

// buildPackageFor wraps a project over a one-segment-per-scenario film.
func buildPackageFor(t *testing.T, p *core.Project) []byte {
	t.Helper()
	film := synth.FromScenes(96, 64, 8, 5, []synth.SceneShot{
		{Kind: synth.Lab, Seconds: 2},
		{Kind: synth.Market, Seconds: 2},
	})
	chapters := []container.Chapter{
		{Name: "seg-a", Start: 0, End: film.ShotStart(1)},
		{Name: "seg-b", Start: film.ShotStart(1), End: film.FrameCount()},
	}
	video, err := studio.Record(film, studio.Options{QStep: 12, Chapters: chapters})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := gamepack.Build(p, video)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestGotoCycleInOnEnterIsBounded: two scenarios whose OnEnter scripts goto
// each other must not hang the runtime — the chain guard cuts the loop.
func TestGotoCycleInOnEnterIsBounded(t *testing.T) {
	p := core.NewProject("cycle")
	p.StartScenario = "a"
	p.Scenarios = []*core.Scenario{
		{ID: "a", Name: "A", Segment: "seg-a", OnEnter: `goto "b";`},
		{ID: "b", Name: "B", Segment: "seg-b", OnEnter: `goto "a";`},
	}
	blob := buildPackageFor(t, p)
	rec := &recorder{}
	done := make(chan struct{})
	var s *Session
	var err error
	go func() {
		s, err = NewSession(blob, Options{Observer: rec})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("session construction hung on OnEnter goto cycle")
	}
	if err != nil {
		t.Fatal(err)
	}
	// The guard should have recorded an error and stopped the chain.
	if rec.kinds()["error"] == 0 {
		t.Error("goto chain depth error not recorded")
	}
	if s.State().Visited["a"]+s.State().Visited["b"] > 2*maxGotoChain+2 {
		t.Errorf("visits = %v, chain not bounded", s.State().Visited)
	}
}

// TestScenarioWithMissingSegmentErrors: runtime refuses a project whose
// scenario references a segment the container lacks.
func TestScenarioWithMissingSegmentErrors(t *testing.T) {
	p := core.NewProject("bad-seg")
	p.StartScenario = "a"
	p.Scenarios = []*core.Scenario{{ID: "a", Name: "A", Segment: "seg-ghost"}}
	blob := buildPackageFor(t, p)
	if _, err := NewSession(blob, Options{}); err == nil {
		t.Fatal("session accepted a start scenario with a missing segment")
	}
}

// TestGotoToMissingSegmentIsSoft: a mid-game goto to a scenario whose
// segment is missing records an error but does not crash.
func TestGotoToMissingSegmentIsSoft(t *testing.T) {
	p := core.NewProject("soft")
	p.StartScenario = "a"
	p.Scenarios = []*core.Scenario{
		{ID: "a", Name: "A", Segment: "seg-a", Objects: []*core.Object{{
			ID: "door", Name: "Door", Kind: core.NavButton, Enabled: true,
			Region: raster.Rect{X: 1, Y: 1, W: 10, H: 10},
			Events: []core.Event{{Trigger: core.OnClick, Script: `goto "broken";`}},
		}}},
		{ID: "broken", Name: "Broken", Segment: "seg-ghost"},
	}
	blob := buildPackageFor(t, p)
	rec := &recorder{}
	s, err := NewSession(blob, Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	s.Click(5, 5)
	if rec.kinds()["error"] == 0 {
		t.Error("missing-segment goto should record an error")
	}
	// The session remains usable: frames still render from the old cursor
	// position even though the logical scenario changed.
	if _, err := s.Frame(); err != nil {
		t.Fatalf("session broken after bad goto: %v", err)
	}
}

// TestManyScenarios exercises a larger project end to end (16 scenarios in
// a ring, guided by nav buttons).
func TestManyScenarios(t *testing.T) {
	const n = 8
	film := synth.Generate(synth.Spec{
		W: 64, H: 48, FPS: 8,
		Shots: n, MinShotFrames: 8, MaxShotFrames: 10, Seed: 77,
	})
	var chapters []container.Chapter
	for i := 0; i < n; i++ {
		start := film.ShotStart(i)
		chapters = append(chapters, container.Chapter{
			Name: fmt.Sprintf("seg-%d", i), Start: start, End: start + film.Shots[i].Frames,
		})
	}
	video, err := studio.Record(film, studio.Options{QStep: 12, Chapters: chapters})
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProject("ring")
	p.StartScenario = "s0"
	for i := 0; i < n; i++ {
		p.Scenarios = append(p.Scenarios, &core.Scenario{
			ID: fmt.Sprintf("s%d", i), Name: fmt.Sprintf("S%d", i), Segment: fmt.Sprintf("seg-%d", i),
			Objects: []*core.Object{{
				ID: fmt.Sprintf("next%d", i), Name: "Next", Kind: core.NavButton, Enabled: true,
				Region: raster.Rect{X: 1, Y: 1, W: 10, H: 10},
				Events: []core.Event{{Trigger: core.OnClick,
					Script: fmt.Sprintf(`goto "s%d";`, (i+1)%n)}},
			}},
		})
	}
	blob, err := gamepack.Build(p, video)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two full laps around the ring, rendering along the way.
	for lap := 0; lap < 2; lap++ {
		for i := 0; i < n; i++ {
			if _, err := s.Frame(); err != nil {
				t.Fatal(err)
			}
			s.Click(5, 5)
			if err := s.Tick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.State().Scenario != "s0" {
		t.Fatalf("after two laps at %q", s.State().Scenario)
	}
	if s.State().Visited["s3"] != 2 {
		t.Fatalf("visits = %v", s.State().Visited)
	}
}
