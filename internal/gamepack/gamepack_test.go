package gamepack

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

func fixture(t testing.TB) (*core.Project, []byte) {
	t.Helper()
	film := synth.Generate(synth.Spec{
		W: 48, H: 32, FPS: 8, Shots: 2,
		MinShotFrames: 6, MaxShotFrames: 8, Seed: 3,
	})
	video, err := studio.Record(film, studio.Options{ShotMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProject("Packaged Game")
	p.Author = "tester"
	p.StartScenario = "a"
	p.Scenarios = []*core.Scenario{{ID: "a", Name: "A", Segment: "shot-000-x"}}
	return p, video
}

func TestBuildOpenRoundTrip(t *testing.T) {
	p, video := fixture(t)
	blob, err := Build(p, video)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Project.Title != "Packaged Game" || pkg.Project.Author != "tester" {
		t.Error("project content lost")
	}
	if string(pkg.Video) != string(video) {
		t.Error("video bytes differ")
	}
}

func TestSectionsTable(t *testing.T) {
	p, video := fixture(t)
	blob, _ := Build(p, video)
	secs, err := Sections(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{SectionMeta, SectionProject, SectionVideo} {
		if _, ok := secs[name]; !ok {
			t.Errorf("missing section %q", name)
		}
	}
	loc := secs[SectionVideo]
	if loc[1] != len(video) {
		t.Errorf("video section size %d, want %d", loc[1], len(video))
	}
	// The video is the last section: it must run to the end of the blob, so
	// a streaming client can fetch all metadata without touching it.
	if loc[0]+loc[1] != len(blob) {
		t.Error("video section not stored last")
	}
	// Meta section is readable standalone and mentions the title.
	meta := blob[secs[SectionMeta][0] : secs[SectionMeta][0]+secs[SectionMeta][1]]
	if !strings.Contains(string(meta), "Packaged Game") {
		t.Errorf("meta = %s", meta)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	p, video := fixture(t)
	if _, err := Build(nil, video); err == nil {
		t.Error("nil project accepted")
	}
	if _, err := Build(p, []byte("junk")); err == nil {
		t.Error("bad video accepted")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	p, video := fixture(t)
	blob, _ := Build(p, video)
	for _, n := range []int{0, 4, 5, 12, len(blob) / 2} {
		if _, err := Open(blob[:n]); err == nil {
			t.Errorf("truncated blob (%d) accepted", n)
		}
	}
	bad := append([]byte("YYYY"), blob[4:]...)
	if _, err := Open(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Flip a byte inside the video payload: section CRC must catch it.
	secs, _ := Sections(blob)
	loc := secs[SectionVideo]
	flip := append([]byte(nil), blob...)
	flip[loc[0]+loc[1]/2] ^= 0x10
	if _, err := Open(flip); err == nil {
		t.Error("payload corruption not detected")
	}
	// Trailing junk.
	junk := append(append([]byte(nil), blob...), 1, 2, 3)
	if _, err := Open(junk); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestOpenMissingSection(t *testing.T) {
	// Hand-craft a package with only a meta section.
	var blob []byte
	blob = append(blob, "TKGP"...)
	blob = append(blob, 1, 1) // version, 1 section
	blob = append(blob, 4)
	blob = append(blob, "meta"...)
	blob = append(blob, 2)                      // payload len
	blob = append(blob, 0x4A, 0x1E, 0x20, 0x78) // wrong crc is fine; not read
	blob = append(blob, "{}"...)
	if _, err := Open(blob); err == nil {
		t.Error("package without project/video accepted")
	}
}
