package core

import "fmt"

// Sink applies script effects to a State and forwards presentation effects
// (messages, popups, scenario switches) to optional callbacks. It is the
// bridge between the event language and everything that hosts a game: the
// interactive runtime, the headless simulator and the tests all wire their
// own callbacks.
//
// Sink implements script.Effects. Script verbs can fail softly (e.g. goto
// to an unknown scenario); such problems are accumulated in Problems rather
// than aborting the script, mirroring how the original tool kept playing
// through authoring mistakes.
type Sink struct {
	Project *Project
	State   *State

	// Presentation callbacks; all optional.
	OnSay        func(msg string)
	OnPopup      func(kind, content string)
	OnGoto       func(scenario string)
	OnVisibility func(objectID string, visible bool)
	OnReward     func(item string)
	OnLearn      func(unit string)
	OnEnd        func(outcome string)
	OnOpen       func(url string)
	OnGive       func(item string)
	OnTake       func(item string)
	OnQuiz       func(quizID string)

	// Problems collects soft runtime errors (unknown scenario, unknown
	// object, reward for an unknown item).
	Problems []string
}

// NewSink wires a sink for the given project and state.
func NewSink(p *Project, s *State) *Sink {
	return &Sink{Project: p, State: s}
}

func (k *Sink) problem(format string, args ...any) {
	k.Problems = append(k.Problems, fmt.Sprintf(format, args...))
}

// Say implements script.Effects.
func (k *Sink) Say(msg string) {
	if k.OnSay != nil {
		k.OnSay(msg)
	}
}

// Give implements script.Effects.
func (k *Sink) Give(item string) {
	k.State.AddItem(item)
	if k.OnGive != nil {
		k.OnGive(item)
	}
}

// Take implements script.Effects.
func (k *Sink) Take(item string) bool {
	ok := k.State.RemoveItem(item)
	if ok && k.OnTake != nil {
		k.OnTake(item)
	}
	return ok
}

// SetFlag implements script.Effects.
func (k *Sink) SetFlag(name string, v bool) { k.State.Flags[name] = v }

// SetVar implements script.Effects.
func (k *Sink) SetVar(name string, v int) { k.State.Vars[name] = v }

// Goto implements script.Effects: switch scenario, record the visit, and run
// nothing further here (the host runs the new scenario's OnEnter).
func (k *Sink) Goto(scenario string) {
	if k.Project.ScenarioByID(scenario) == nil {
		k.problem("goto: unknown scenario %q", scenario)
		return
	}
	k.State.EnterScenario(scenario)
	if k.OnGoto != nil {
		k.OnGoto(scenario)
	}
}

// Popup implements script.Effects.
func (k *Sink) Popup(kind, content string) {
	if k.OnPopup != nil {
		k.OnPopup(kind, content)
	}
}

// Reward implements script.Effects: grant an achievement object into the
// inventory and the rewards list.
func (k *Sink) Reward(item string) {
	if def := k.Project.ItemByID(item); def == nil {
		k.problem("reward: unknown item %q", item)
		return
	} else if !def.Reward {
		k.problem("reward: item %q is not a reward object", item)
		return
	}
	k.State.Rewards = append(k.State.Rewards, item)
	k.State.AddItem(item)
	if k.OnReward != nil {
		k.OnReward(item)
	}
}

// Learn implements script.Effects.
func (k *Sink) Learn(unit string) {
	if k.Project.KnowledgeByID(unit) == nil {
		k.problem("learn: unknown knowledge unit %q", unit)
		return
	}
	k.State.Learned[unit] = true
	if k.OnLearn != nil {
		k.OnLearn(unit)
	}
}

// Enable implements script.Effects.
func (k *Sink) Enable(objectID string) { k.setVisible(objectID, true) }

// Disable implements script.Effects.
func (k *Sink) Disable(objectID string) { k.setVisible(objectID, false) }

func (k *Sink) setVisible(objectID string, visible bool) {
	if _, o := k.Project.FindObject(objectID); o == nil {
		k.problem("enable/disable: unknown object %q", objectID)
		return
	}
	k.State.Hidden[objectID] = !visible
	if k.OnVisibility != nil {
		k.OnVisibility(objectID, visible)
	}
}

// End implements script.Effects.
func (k *Sink) End(outcome string) {
	k.State.Ended = true
	k.State.Outcome = outcome
	if k.OnEnd != nil {
		k.OnEnd(outcome)
	}
}

// Open implements script.Effects (web resources pop up through OnOpen; the
// network layer decides how to fetch them).
func (k *Sink) Open(url string) {
	if k.OnOpen != nil {
		k.OnOpen(url)
	}
}

// Quiz implements script.Effects: ask an assessment question.
func (k *Sink) Quiz(id string) {
	if k.Project.QuizByID(id) == nil {
		k.problem("quiz: unknown quiz %q", id)
		return
	}
	if k.OnQuiz != nil {
		k.OnQuiz(id)
	}
}
