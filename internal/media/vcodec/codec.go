package vcodec

import (
	"fmt"
	"runtime"

	"repro/internal/media/raster"
)

// FrameType distinguishes intra frames (random-access points) from
// predicted frames.
type FrameType uint8

// Frame types.
const (
	IFrame FrameType = 0 // self-contained; decoding can start here
	PFrame FrameType = 1 // predicted from the previous frame
)

// String returns "I" or "P".
func (t FrameType) String() string {
	if t == IFrame {
		return "I"
	}
	return "P"
}

// Block coding modes inside P-frames.
const (
	modeSkip  = 0 // copy the co-located reference block
	modeIntra = 1 // DCT-coded samples (also the only mode in I-frames)
	modeMC    = 2 // motion vector + DCT-coded residual
)

const magic = "TKV1"

// MaxWorkers caps the per-codec worker pool; values beyond this are absurd
// for block-row parallelism and only waste goroutines.
const MaxWorkers = 256

// maxDim bounds frame dimensions. The decoder rejects larger headers as
// corrupt, so the encoder must refuse to produce them; rowPool's queue depth
// is also sized from it.
const maxDim = 1 << 14

// Config parameterizes an Encoder.
type Config struct {
	Width, Height int
	QStep         int // quantizer step; larger = smaller & worse. Sane range 2..32.
	GOP           int // I-frame interval; every GOP-th frame is intra. >= 1.
	SearchRange   int // motion search radius in pixels (0..7). 0 disables MC.
	Workers       int // parallel block-row workers; <=0 means all CPUs, max MaxWorkers
}

func (c Config) validate() error {
	if c.Width <= 0 || c.Height <= 0 || c.Width > maxDim || c.Height > maxDim {
		return fmt.Errorf("vcodec: invalid dimensions %dx%d (max %d)", c.Width, c.Height, maxDim)
	}
	if c.QStep < 1 || c.QStep > 128 {
		return fmt.Errorf("vcodec: qstep %d out of range [1,128]", c.QStep)
	}
	if c.GOP < 1 {
		return fmt.Errorf("vcodec: GOP %d must be >= 1", c.GOP)
	}
	if c.SearchRange < 0 || c.SearchRange > 7 {
		return fmt.Errorf("vcodec: search range %d out of range [0,7]", c.SearchRange)
	}
	if c.Workers > MaxWorkers {
		return fmt.Errorf("vcodec: workers %d out of range (max %d)", c.Workers, MaxWorkers)
	}
	return nil
}

// normWorkers resolves a worker count: <=0 means all CPUs, capped at
// MaxWorkers either way.
func normWorkers(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	if n > MaxWorkers {
		n = MaxWorkers
	}
	return n
}

// Packet is one encoded frame.
type Packet struct {
	Type  FrameType
	Index int // frame number in encode order
	Data  []byte
}

// Encoder compresses a sequence of equally-sized frames. It is a persistent
// pipeline: the worker pool, colorspace scratch, reference/reconstruction
// double buffer and per-row chunk buffers are all allocated once at
// construction, so the steady-state Encode path allocates only the returned
// packet's payload. Not safe for concurrent use.
type Encoder struct {
	cfg    Config
	pool   *rowPool // nil when single-worker (rows run inline)
	img    *ycbcr   // current frame in YCbCr, reused every Encode
	recon  *ycbcr   // reconstruction target for the current frame
	ref    *ycbcr   // previous reconstruction (what the decoder will see)
	hasRef bool
	fullCb []int32 // full-resolution chroma scratch for fromFrame
	fullCr []int32
	rows   []byteWriter // per-block-row chunk buffers, reused across planes/frames
	task   encTask      // reusable plane-dispatch task for the pool
	count  int
	prevSz int // previous packet size, used to presize the next payload
}

// encTask carries one plane's encode parameters to the worker pool.
type encTask struct {
	src, ref, recon    *plane
	bufs               []byteWriter
	qstep, searchRange int
}

func (t *encTask) runRow(by int) {
	t.bufs[by].reset()
	encodeBlockRow(&t.bufs[by], t.src, t.ref, t.recon, by, t.qstep, t.searchRange)
}

// NewEncoder returns an encoder for the given configuration. Call Close when
// done to release the worker pool promptly (a finalizer releases it
// otherwise).
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.Workers = normWorkers(cfg.Workers)
	e := &Encoder{cfg: cfg}
	e.img = newYCbCr(cfg.Width, cfg.Height)
	e.recon = newYCbCr(cfg.Width, cfg.Height)
	e.ref = newYCbCr(cfg.Width, cfg.Height)
	pw, ph := e.img.y.w, e.img.y.h
	e.fullCb = make([]int32, pw*ph)
	e.fullCr = make([]int32, pw*ph)
	e.rows = make([]byteWriter, ph/blockSize)
	if cfg.Workers > 1 {
		e.pool = newRowPool(cfg.Workers)
		runtime.AddCleanup(e, (*rowPool).stop, e.pool)
	}
	return e, nil
}

// Close stops the encoder's worker pool. The encoder remains usable; further
// Encode calls fall back to inline (single-threaded) row coding.
func (e *Encoder) Close() {
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
}

// Encode compresses the next frame. Frame type is chosen by the GOP setting;
// the first frame is always intra.
func (e *Encoder) Encode(f *raster.Frame) (Packet, error) {
	if f.W != e.cfg.Width || f.H != e.cfg.Height {
		return Packet{}, fmt.Errorf("vcodec: frame size %dx%d does not match config %dx%d",
			f.W, f.H, e.cfg.Width, e.cfg.Height)
	}
	ft := PFrame
	if !e.hasRef || e.count%e.cfg.GOP == 0 {
		ft = IFrame
	}
	e.img.fromFrame(f, e.fullCb, e.fullCr)
	w := byteWriter{buf: make([]byte, 0, e.prevSz+e.prevSz/4+64)}
	w.bytes([]byte(magic))
	w.u8(uint8(ft))
	w.uvarint(uint64(e.img.w))
	w.uvarint(uint64(e.img.h))
	w.uvarint(uint64(e.cfg.QStep))
	w.u8(uint8(e.cfg.SearchRange))
	var refY, refCb, refCr *plane
	if ft == PFrame {
		refY, refCb, refCr = e.ref.y, e.ref.cb, e.ref.cr
	}
	e.encodePlane(&w, e.img.y, refY, e.recon.y, e.cfg.SearchRange)
	e.encodePlane(&w, e.img.cb, refCb, e.recon.cb, e.cfg.SearchRange/2)
	e.encodePlane(&w, e.img.cr, refCr, e.recon.cr, e.cfg.SearchRange/2)
	// The fresh reconstruction becomes the reference; the old reference
	// becomes next frame's reconstruction target (double buffer).
	e.ref, e.recon = e.recon, e.ref
	e.hasRef = true
	p := Packet{Type: ft, Index: e.count, Data: w.buf}
	e.count++
	e.prevSz = len(w.buf)
	return p, nil
}

// Reset drops the reference frame so the next frame becomes an I-frame.
func (e *Encoder) Reset() {
	e.hasRef = false
	e.count = 0
}

// encodePlane codes one plane as independent block rows (parallel across
// the persistent pool) and writes a row-length table so the decoder can
// parallelize too.
func (e *Encoder) encodePlane(w *byteWriter, src, ref, recon *plane, searchRange int) {
	rows := src.h / blockSize
	bufs := e.rows[:rows]
	e.task = encTask{src: src, ref: ref, recon: recon, bufs: bufs, qstep: e.cfg.QStep, searchRange: searchRange}
	if e.pool != nil && rows > 1 {
		e.pool.run(rows, &e.task)
	} else {
		for by := 0; by < rows; by++ {
			e.task.runRow(by)
		}
	}
	w.uvarint(uint64(rows))
	for i := range bufs {
		w.uvarint(uint64(len(bufs[i].buf)))
	}
	for i := range bufs {
		w.bytes(bufs[i].buf)
	}
}

// encodeBlockRow codes all blocks with top edge at by*blockSize, writing
// reconstructed samples into recon (its rows are disjoint across calls).
func encodeBlockRow(w *byteWriter, src, ref, recon *plane, by, qstep, searchRange int) {
	var cur, res, coefs, rec [64]int32
	var levels, levelsI [64]int32
	y0 := by * blockSize
	for x0 := 0; x0 < src.w; x0 += blockSize {
		loadBlock(src, x0, y0, &cur)
		if ref == nil {
			// I-frame (or I-coded plane): intra is the only mode.
			for i := range cur {
				res[i] = cur[i] - 128
			}
			fdct8x8(&res, &coefs)
			quantize(&coefs, qstep, &levelsI)
			writeIntraBlock(w, recon, x0, y0, qstep, &levelsI, &rec)
			continue
		}
		// Perfect skip first: if the co-located reference block is
		// identical, the residual is zero at any quantizer and neither the
		// motion search nor either DCT needs to run.
		if sameBlock(&cur, ref, x0, y0) {
			w.u8(modeSkip)
			copyBlock(ref, recon, x0, y0)
			continue
		}
		// Motion search (includes the (0,0) candidate even when range is 0).
		mvx, mvy := motionSearch(&cur, ref, x0, y0, searchRange)
		loadBlock(ref, x0+mvx, y0+mvy, &res)
		for i := range res {
			res[i] = cur[i] - res[i]
		}
		fdct8x8(&res, &coefs)
		quantizeDeadzone(&coefs, qstep, &levels)
		if allZero(&levels) && mvx == 0 && mvy == 0 {
			// Residual vanishes at this quantizer: perfect skip.
			w.u8(modeSkip)
			copyBlock(ref, recon, x0, y0)
			continue
		}
		// Intra candidate, only computed once skip is off the table.
		for i := range cur {
			res[i] = cur[i] - 128
		}
		fdct8x8(&res, &coefs)
		quantize(&coefs, qstep, &levelsI)
		intraCost := codeCost(&levelsI)
		mcCost := codeCost(&levels) + 1 // +1 byte for the motion vector
		if mcCost <= intraCost {
			w.u8(modeMC)
			w.u8(packMV(mvx, mvy))
			writeLevels(w, &levels)
			reconstructMC(ref, recon, x0, y0, mvx, mvy, qstep, &levels, &rec)
			continue
		}
		writeIntraBlock(w, recon, x0, y0, qstep, &levelsI, &rec)
	}
}

func writeIntraBlock(w *byteWriter, recon *plane, x0, y0, qstep int, levels *[64]int32, rec *[64]int32) {
	w.u8(modeIntra)
	writeLevels(w, levels)
	var coefs [64]int32
	dequantize(levels, qstep, &coefs)
	idct8x8(&coefs, rec)
	for r := 0; r < blockSize; r++ {
		dst := recon.row(x0, y0+r, blockSize)
		for k := range dst {
			dst[k] = clamp255(rec[r*blockSize+k] + 128)
		}
	}
}

func reconstructMC(ref, recon *plane, x0, y0, mvx, mvy, qstep int, levels *[64]int32, rec *[64]int32) {
	var coefs [64]int32
	dequantize(levels, qstep, &coefs)
	idct8x8(&coefs, rec)
	for r := 0; r < blockSize; r++ {
		pred := ref.row(x0+mvx, y0+mvy+r, blockSize)
		dst := recon.row(x0, y0+r, blockSize)
		for k := range dst {
			dst[k] = clamp255(pred[k] + rec[r*blockSize+k])
		}
	}
}

// sameBlock reports whether the current block equals the co-located
// reference block exactly, comparing row slices with early exit.
func sameBlock(cur *[64]int32, ref *plane, x0, y0 int) bool {
	for r := 0; r < blockSize; r++ {
		rrow := ref.row(x0, y0+r, blockSize)
		crow := cur[r*blockSize : r*blockSize+blockSize]
		for k := range crow {
			if crow[k] != rrow[k] {
				return false
			}
		}
	}
	return true
}

// motionSearch finds the full-pixel offset within ±r minimizing SAD against
// the reference, constrained so the reference block stays in bounds. The
// inner loop walks raw row slices (no per-pixel index math) and exits early
// once a candidate exceeds the best SAD so far.
func motionSearch(cur *[64]int32, ref *plane, x0, y0, r int) (int, int) {
	if r == 0 {
		return 0, 0
	}
	best, bx, by := int32(1<<30), 0, 0
	for dy := -r; dy <= r; dy++ {
		ry := y0 + dy
		if ry < 0 || ry+blockSize > ref.h {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			rx := x0 + dx
			if rx < 0 || rx+blockSize > ref.w {
				continue
			}
			// Bias toward the zero vector to avoid jitter on ties.
			var sad int32
			if dx == 0 && dy == 0 {
				sad = -4
			}
			base := ry*ref.w + rx
			for row := 0; row < blockSize && sad < best; row++ {
				rrow := ref.pix[base+row*ref.w : base+row*ref.w+blockSize : base+row*ref.w+blockSize]
				crow := cur[row*blockSize : row*blockSize+blockSize]
				for k, c := range crow {
					d := c - rrow[k]
					if d < 0 {
						d = -d
					}
					sad += d
				}
			}
			if sad < best {
				best, bx, by = sad, dx, dy
			}
		}
	}
	return bx, by
}

// loadBlock copies the 8×8 block with top-left corner (x0,y0) into dst,
// row by row.
func loadBlock(p *plane, x0, y0 int, dst *[64]int32) {
	for r := 0; r < blockSize; r++ {
		copy(dst[r*blockSize:r*blockSize+blockSize], p.row(x0, y0+r, blockSize))
	}
}

func copyBlock(src, dst *plane, x0, y0 int) {
	for y := y0; y < y0+blockSize; y++ {
		copy(dst.pix[y*dst.w+x0:y*dst.w+x0+blockSize], src.pix[y*src.w+x0:y*src.w+x0+blockSize])
	}
}

// codeCost approximates the byte cost of coding the level set — enough to
// drive the intra-vs-MC mode decision.
func codeCost(levels *[64]int32) int {
	cost := 2 // mode byte + pair count
	for _, l := range levels {
		if l != 0 {
			cost += 2
			if l > 63 || l < -63 {
				cost++
			}
		}
	}
	return cost
}

func allZero(levels *[64]int32) bool {
	for _, l := range levels {
		if l != 0 {
			return false
		}
	}
	return true
}

func packMV(dx, dy int) uint8 {
	return uint8((dx+8)<<4 | (dy + 8))
}

func unpackMV(b uint8) (int, int) {
	return int(b>>4) - 8, int(b&0xF) - 8
}

// Decoder decompresses TKV1 packets. Like the Encoder it is a persistent
// pipeline: the worker pool and the reference/target image double buffer
// live for the decoder's lifetime, so steady-state DecodeInto allocates
// nothing. The zero Decoder is not usable; construct with NewDecoder. The
// first packet a decoder sees must be an I-frame. Not safe for concurrent
// use.
type Decoder struct {
	workers int
	pool    *rowPool
	ref     *ycbcr   // last fully decoded image (nil before the first I-frame)
	free    []*ycbcr // recycled decode targets (at most two circulate)
	lengths []int
	chunks  [][]byte
	errs    []error
	task    decTask // reusable plane-dispatch task for the pool
}

// decTask carries one plane's decode parameters to the worker pool.
type decTask struct {
	chunks   [][]byte
	errs     []error
	dst, ref *plane
	qstep    int
}

func (t *decTask) runRow(by int) {
	t.errs[by] = decodeBlockRow(t.chunks[by], t.dst, t.ref, by, t.qstep)
}

// NewDecoder returns a decoder that fans block-row decoding out over the
// given number of workers (<=0 means all CPUs; clamped to MaxWorkers, the
// same cap Config.validate enforces). Call Close when done to release the
// worker pool promptly (a finalizer releases it otherwise).
func NewDecoder(workers int) *Decoder {
	d := &Decoder{workers: normWorkers(workers)}
	if d.workers > 1 {
		d.pool = newRowPool(d.workers)
		runtime.AddCleanup(d, (*rowPool).stop, d.pool)
	}
	return d
}

// Close stops the decoder's worker pool. The decoder remains usable; further
// decodes fall back to inline (single-threaded) row decoding.
func (d *Decoder) Close() {
	if d.pool != nil {
		d.pool.stop()
		d.pool = nil
	}
}

// Reset drops decoder state (e.g. before seeking to a new I-frame). The
// image buffers are kept for recycling, so seek-heavy playback does not
// re-allocate per seek.
func (d *Decoder) Reset() {
	d.recycle(d.ref)
	d.ref = nil
}

// takeBuffer returns a recycled image of the requested frame size, or
// allocates one.
func (d *Decoder) takeBuffer(w, h int) *ycbcr {
	for i, b := range d.free {
		if b.w == w && b.h == h {
			d.free[i] = d.free[len(d.free)-1]
			d.free = d.free[:len(d.free)-1]
			return b
		}
	}
	return newYCbCr(w, h)
}

// recycle returns an image buffer to the free list. Only two buffers ever
// circulate per stream size; stale sizes are dropped oldest-first.
func (d *Decoder) recycle(b *ycbcr) {
	if b == nil {
		return
	}
	if len(d.free) >= 2 {
		copy(d.free, d.free[1:])
		d.free = d.free[:len(d.free)-1]
	}
	d.free = append(d.free, b)
}

// Decode parses one packet and returns the reconstructed frame in a freshly
// allocated Frame. Steady-state consumers should prefer DecodeInto, which
// recycles the destination, or Advance when the pixels are not needed.
func (d *Decoder) Decode(data []byte) (*raster.Frame, error) {
	if err := d.decode(data); err != nil {
		return nil, err
	}
	return d.ref.toFrame(), nil
}

// DecodeInto parses one packet and writes the reconstructed frame into dst,
// resizing it if needed and reusing its pixel buffer when possible. With a
// persistent Decoder and a recycled dst, the steady-state path performs no
// allocations.
func (d *Decoder) DecodeInto(dst *raster.Frame, data []byte) error {
	if err := d.decode(data); err != nil {
		return err
	}
	d.ref.toFrameInto(dst)
	return nil
}

// Advance parses one packet, updating the decoder's reference state without
// converting to RGB. Roll-forward after a seek uses this: intermediate
// frames between the keyframe and the target are decoded but never
// presented, so their colorspace conversion would be wasted work.
func (d *Decoder) Advance(data []byte) error {
	return d.decode(data)
}

// decode parses a packet into the spare image buffer and, on success,
// promotes it to the reference. On error the previous reference is
// untouched.
func (d *Decoder) decode(data []byte) error {
	r := &byteReader{buf: data}
	mg, err := r.slice(4)
	if err != nil || string(mg) != magic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ftb, err := r.u8()
	if err != nil {
		return err
	}
	ft := FrameType(ftb)
	if ft != IFrame && ft != PFrame {
		return fmt.Errorf("%w: unknown frame type %d", ErrCorrupt, ftb)
	}
	wv, err := r.uvarint()
	if err != nil {
		return err
	}
	hv, err := r.uvarint()
	if err != nil {
		return err
	}
	qv, err := r.uvarint()
	if err != nil {
		return err
	}
	if _, err := r.u8(); err != nil { // search range (informational)
		return err
	}
	w, h, qstep := int(wv), int(hv), int(qv)
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim || qstep < 1 || qstep > 128 {
		return fmt.Errorf("%w: implausible header %dx%d q=%d", ErrCorrupt, w, h, qstep)
	}
	if ft == PFrame {
		if d.ref == nil {
			return fmt.Errorf("%w: P-frame without reference (decode must start at an I-frame)", ErrCorrupt)
		}
		if d.ref.w != w || d.ref.h != h {
			return fmt.Errorf("%w: P-frame size %dx%d mismatches reference %dx%d", ErrCorrupt, w, h, d.ref.w, d.ref.h)
		}
	}
	// Cheapest possible payload is one mode byte per luma block plus the
	// row-length tables; reject implausibly small packets *before*
	// allocating the image, so a 14-byte packet claiming 16384×16384 cannot
	// be used to drive gigabyte allocations.
	if minBytes := (padUp(w) / blockSize) * (padUp(h) / blockSize); r.remaining() < minBytes {
		return fmt.Errorf("%w: %d payload bytes for a %dx%d frame (need >= %d)", ErrCorrupt, r.remaining(), w, h, minBytes)
	}
	img := d.takeBuffer(w, h)
	var refY, refCb, refCr *plane
	if ft == PFrame {
		refY, refCb, refCr = d.ref.y, d.ref.cb, d.ref.cr
	}
	if err := d.decodePlane(r, img.y, refY, qstep); err != nil {
		d.recycle(img)
		return fmt.Errorf("luma plane: %w", err)
	}
	if err := d.decodePlane(r, img.cb, refCb, qstep); err != nil {
		d.recycle(img)
		return fmt.Errorf("cb plane: %w", err)
	}
	if err := d.decodePlane(r, img.cr, refCr, qstep); err != nil {
		d.recycle(img)
		return fmt.Errorf("cr plane: %w", err)
	}
	// Promote: the old reference becomes a recycled target for later
	// decodes.
	d.recycle(d.ref)
	d.ref = img
	return nil
}

func (d *Decoder) decodePlane(r *byteReader, dst, ref *plane, qstep int) error {
	rowsV, err := r.uvarint()
	if err != nil {
		return err
	}
	rows := int(rowsV)
	if rows != dst.h/blockSize {
		return fmt.Errorf("%w: row count %d, want %d", ErrCorrupt, rows, dst.h/blockSize)
	}
	if cap(d.lengths) < rows {
		d.lengths = make([]int, rows)
		d.chunks = make([][]byte, rows)
		d.errs = make([]error, rows)
	}
	lengths, chunks, errs := d.lengths[:rows], d.chunks[:rows], d.errs[:rows]
	for i := range lengths {
		lv, err := r.uvarint()
		if err != nil {
			return err
		}
		lengths[i] = int(lv)
	}
	for i := range chunks {
		c, err := r.slice(lengths[i])
		if err != nil {
			return err
		}
		chunks[i] = c
		errs[i] = nil
	}
	d.task = decTask{chunks: chunks, errs: errs, dst: dst, ref: ref, qstep: qstep}
	if d.pool != nil && rows > 1 {
		d.pool.run(rows, &d.task)
	} else {
		for by := 0; by < rows; by++ {
			d.task.runRow(by)
		}
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func decodeBlockRow(chunk []byte, dst, ref *plane, by, qstep int) error {
	r := &byteReader{buf: chunk}
	var levels [64]int32
	var coefs, rec [64]int32
	y0 := by * blockSize
	for x0 := 0; x0 < dst.w; x0 += blockSize {
		mode, err := r.u8()
		if err != nil {
			return err
		}
		switch mode {
		case modeSkip:
			if ref == nil {
				return fmt.Errorf("%w: skip block in I-frame", ErrCorrupt)
			}
			copyBlock(ref, dst, x0, y0)
		case modeIntra:
			if err := readLevels(r, &levels); err != nil {
				return err
			}
			dequantize(&levels, qstep, &coefs)
			idct8x8(&coefs, &rec)
			for rr := 0; rr < blockSize; rr++ {
				drow := dst.row(x0, y0+rr, blockSize)
				for k := range drow {
					drow[k] = clamp255(rec[rr*blockSize+k] + 128)
				}
			}
		case modeMC:
			if ref == nil {
				return fmt.Errorf("%w: MC block in I-frame", ErrCorrupt)
			}
			mvb, err := r.u8()
			if err != nil {
				return err
			}
			mvx, mvy := unpackMV(mvb)
			if x0+mvx < 0 || x0+mvx+blockSize > ref.w || y0+mvy < 0 || y0+mvy+blockSize > ref.h {
				return fmt.Errorf("%w: motion vector (%d,%d) out of bounds", ErrCorrupt, mvx, mvy)
			}
			if err := readLevels(r, &levels); err != nil {
				return err
			}
			reconstructMC(ref, dst, x0, y0, mvx, mvy, qstep, &levels, &rec)
		default:
			return fmt.Errorf("%w: unknown block mode %d", ErrCorrupt, mode)
		}
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in block row", ErrCorrupt, r.remaining())
	}
	return nil
}

// ParseHeader returns the frame type of an encoded packet without decoding
// it (the container uses this to build its seek index).
func ParseHeader(data []byte) (FrameType, error) {
	if len(data) < 5 || string(data[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ft := FrameType(data[4])
	if ft != IFrame && ft != PFrame {
		return 0, fmt.Errorf("%w: unknown frame type %d", ErrCorrupt, data[4])
	}
	return ft, nil
}
