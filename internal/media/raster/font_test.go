package raster

import (
	"strings"
	"testing"
)

func TestGlyphTableWellFormed(t *testing.T) {
	for r, g := range glyphs {
		for row, line := range g {
			if len(line) != GlyphW {
				t.Errorf("glyph %q row %d has width %d, want %d", r, row, len(line), GlyphW)
			}
			for _, ch := range line {
				if ch != '#' && ch != ' ' {
					t.Errorf("glyph %q contains invalid cell %q", r, ch)
				}
			}
		}
	}
}

func TestEveryGlyphVisibleExceptSpace(t *testing.T) {
	for r, g := range glyphs {
		lit := 0
		for _, line := range g {
			lit += strings.Count(line, "#")
		}
		if r == ' ' {
			if lit != 0 {
				t.Errorf("space glyph has %d lit pixels", lit)
			}
			continue
		}
		if lit == 0 {
			t.Errorf("glyph %q is invisible", r)
		}
	}
}

func TestTextWidth(t *testing.T) {
	if got := TextWidth(""); got != 0 {
		t.Errorf("TextWidth(\"\") = %d", got)
	}
	if got := TextWidth("A"); got != GlyphW {
		t.Errorf("TextWidth(\"A\") = %d, want %d", got, GlyphW)
	}
	if got := TextWidth("AB"); got != 2*GlyphW+GlyphGap {
		t.Errorf("TextWidth(\"AB\") = %d, want %d", got, 2*GlyphW+GlyphGap)
	}
}

func TestDrawTextProducesPixels(t *testing.T) {
	f := New(64, 12)
	f.DrawText(1, 1, "HI", White)
	lit := 0
	for i := 0; i < len(f.Pix); i += 3 {
		if f.Pix[i] != 0 {
			lit++
		}
	}
	if lit == 0 {
		t.Fatal("DrawText lit no pixels")
	}
	// 'H' left column must be lit for all 7 rows.
	for row := 0; row < GlyphH; row++ {
		if f.At(1, 1+row) != White {
			t.Errorf("H stem missing at row %d", row)
		}
	}
}

func TestLowercaseRendersAsUppercase(t *testing.T) {
	a, b := New(16, 10), New(16, 10)
	a.DrawText(0, 0, "go", White)
	b.DrawText(0, 0, "GO", White)
	if !a.Equal(b) {
		t.Error("lowercase must render identically to uppercase")
	}
}

func TestUnknownRuneRendersBox(t *testing.T) {
	f := New(10, 10)
	f.DrawText(0, 0, "é", White) // é: not in table
	// Box corners lit:
	if f.At(0, 0) != White || f.At(GlyphW-1, GlyphH-1) != White {
		t.Error("fallback box not drawn")
	}
	if f.At(2, 3) != Black {
		t.Error("fallback box should be hollow")
	}
}

func TestDrawTextClipped(t *testing.T) {
	f := New(30, 10)
	clip := Rect{0, 0, 4, GlyphH} // only first 4 columns visible
	f.DrawTextClipped(0, 0, "HH", White, clip)
	for x := 4; x < 30; x++ {
		for y := 0; y < 10; y++ {
			if f.At(x, y) != Black {
				t.Fatalf("clipped draw leaked at (%d,%d)", x, y)
			}
		}
	}
}

func TestFitText(t *testing.T) {
	s := "SCENARIO EDITOR"
	if got := FitText(s, TextWidth(s)); got != s {
		t.Errorf("FitText should not truncate when it fits: %q", got)
	}
	short := FitText(s, TextWidth("SCENAR..")+1)
	if !strings.HasSuffix(short, "..") {
		t.Errorf("truncated text should end with ..: %q", short)
	}
	if TextWidth(short) > TextWidth("SCENAR..")+1 {
		t.Errorf("FitText result too wide: %q", short)
	}
	if got := FitText("ABCDEF", 1); got != "" {
		t.Errorf("FitText in tiny width = %q, want empty", got)
	}
}

func TestSupportedRunesCoverAlnum(t *testing.T) {
	s := SupportedRunes()
	for _, r := range "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789" {
		if !strings.ContainsRune(s, r) {
			t.Errorf("font missing %q", r)
		}
	}
	if !HasGlyph('a') {
		t.Error("lowercase should map to glyphs")
	}
}

func TestASCIIRendering(t *testing.T) {
	f := New(40, 20)
	f.FillRect(Rect{0, 0, 20, 20}, Black)
	f.FillRect(Rect{20, 0, 20, 20}, White)
	art := f.ASCII(8, 4)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for _, ln := range lines {
		if len(ln) != 8 {
			t.Fatalf("line %q has width %d, want 8", ln, len(ln))
		}
		if ln[0] != ' ' {
			t.Errorf("dark half should render as space, got %q", ln[0])
		}
		if ln[7] != '@' {
			t.Errorf("bright half should render as @, got %q", ln[7])
		}
	}
	if (&Frame{W: 4, H: 4, Pix: make([]uint8, 48)}).ASCII(0, 3) != "" {
		t.Error("ASCII with non-positive dims should be empty")
	}
}
