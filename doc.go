// Package repro reproduces "Using Interactive Video Technology for the
// Development of Game-Based Learning" (Chang, Hsu & Shih, ICPP Workshops
// 2007) as a complete Go system, then grows it toward campus-scale
// deployment: an interactive-video substrate (synthetic footage, TKV1
// codec, TKVC container, shot detection, playback), a headless UI
// toolkit, an event-scripting language, the VGBL document model, the
// authoring tool, the gaming platform runtime, simulated learners,
// analytics and baselines — delivered through a content-addressed chunk
// store with delta sync and adaptive multi-quality (ABR) streaming, a
// server-hosted play service with a binary wire protocol, live
// classroom fan-out, durable snapshots behind a consistent-hash cluster
// gateway, fault-injected resilience testing, a telemetry ingestion
// service, a learner-fleet load generator, and a dependency-free
// metrics/tracing core serving /metrics.
//
// See README.md for the quickstart, DESIGN.md for the system inventory,
// EXPERIMENTS.md for the figure/table reproductions, and bench_test.go
// (this package) for the benchmark harness — one benchmark per
// experiment.
package repro
