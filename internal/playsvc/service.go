package playsvc

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/media/raster"
	"repro/internal/obs"
)

// maxBody bounds accepted request bodies; play requests are tiny.
const maxBody = 1 << 20

// Handler returns the play service's HTTP surface (CreatePath, ActPath,
// StatePath, FramePath, StatsPath). Mount it at "/play/" on a
// netstream.Server or any mux; repeated calls return the same handler.
func (m *Manager) Handler() http.Handler {
	m.handlerOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc(CreatePath, m.handleCreate)
		mux.HandleFunc(ActPath, m.handleAct)
		mux.HandleFunc(ActV2Path, m.handleActV2)
		mux.HandleFunc(StatePath, m.handleState)
		mux.HandleFunc(FramePath, m.handleFrame)
		mux.HandleFunc(StatsPath, m.handleStats)
		mux.HandleFunc(HandoffPath, m.handleHandoff)
		mux.HandleFunc(DrainPath, m.handleDrain)
		mux.HandleFunc(RecoverPath, m.handleRecover)
		mux.HandleFunc(RoomCreatePath, m.handleRoomCreate)
		mux.HandleFunc(RoomJoinPath, m.handleRoomJoin)
		mux.HandleFunc(RoomLeavePath, m.handleRoomLeave)
		mux.HandleFunc(RoomWatchPath, m.handleRoomWatch)
		mux.HandleFunc(RoomAnswerPath, m.handleRoomAnswer)
		mux.HandleFunc(RoomStatsPath, m.handleRoomStats)
		m.handler = mux
	})
	return m.handler
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError answers with the error's status; a protocol error carrying
// a Retry-After hint (load shedding) advertises it so clients and the
// gateway back off for a bounded, server-chosen interval instead of
// guessing.
func writeError(w http.ResponseWriter, err error) {
	if pe, ok := err.(*Error); ok && pe.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(pe.RetryAfter))
	}
	http.Error(w, err.Error(), httpStatus(err))
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// resume=<session-id> in the query is the curl-friendly spelling of
	// the body field.
	if v := r.URL.Query().Get("resume"); v != "" && req.Resume == "" {
		req.Resume = v
	}
	req.Trace = obs.TraceFromRequest(r)
	t0 := time.Now()
	reply, err := m.Create(&req)
	m.ring.Record(req.Trace, "play.create", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

// handleHandoff freezes one session into the shared snapshot store (the
// gateway calls this on a session's old owner when ownership moves).
func (m *Manager) handleHandoff(w http.ResponseWriter, r *http.Request) {
	var req HandoffRequest
	if !decodeBody(w, r, &req) {
		return
	}
	t0 := time.Now()
	err := m.Freeze(req.Session)
	m.ring.Record(obs.TraceFromRequest(r), "play.handoff", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]string{"session": req.Session, "state": "frozen"})
}

// handleRecover thaws a session even from a checkpoint entry; the caller
// asserts its owning node crashed (see Manager.Recover).
func (m *Manager) handleRecover(w http.ResponseWriter, r *http.Request) {
	var req HandoffRequest
	if !decodeBody(w, r, &req) {
		return
	}
	t0 := time.Now()
	err := m.Recover(req.Session)
	m.ring.Record(obs.TraceFromRequest(r), "play.recover", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]string{"session": req.Session, "state": "recovered"})
}

// handleDrain freezes every hosted session — the graceful-removal step a
// gateway runs before a node leaves the cluster.
func (m *Manager) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]int{"drained": m.DrainAll()})
}

func (m *Manager) handleAct(w http.ResponseWriter, r *http.Request) {
	var req ActRequest
	if !decodeBody(w, r, &req) {
		return
	}
	req.Trace = obs.TraceFromRequest(r)
	reply, err := m.Act(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

// handleActV2 is the binary act endpoint: a framed batch in, a framed
// coalesced reply out. Frame-level rejections (bad magic, bad CRC,
// unknown act kind) are 400s; everything past the parse shares the JSON
// path's semantics, including act-level errors riding inside the reply.
func (m *Manager) handleActV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req, err := ParseActFrame(body)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Trace = obs.TraceFromRequest(r)
	out, err := m.ActBatch(req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", FrameContentType)
	w.Write(EncodeReplyFrame(out))
}

func (m *Manager) handleState(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seenE, _ := strconv.Atoi(q.Get("events"))
	seenM, _ := strconv.Atoi(q.Get("messages"))
	reply, err := m.stateOf(obs.TraceFromRequest(r), q.Get("session"), seenE, seenM)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

// handleFrame serves the session's presentation frame as raw 24-bit RGB
// with the geometry in headers. ?advance=N ticks playback first, so a
// steady client fetches "the next frame" in one request.
func (m *Manager) handleFrame(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	advance, _ := strconv.Atoi(q.Get("advance"))
	if advance < 0 {
		http.Error(w, "negative advance", http.StatusBadRequest)
		return
	}
	err := m.withFrame(obs.TraceFromRequest(r), q.Get("session"), advance, func(f *raster.Frame, tick int) error {
		h := w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set("X-Frame-Width", strconv.Itoa(f.W))
		h.Set("X-Frame-Height", strconv.Itoa(f.H))
		h.Set("X-Frame-Tick", strconv.Itoa(tick))
		h.Set("Content-Length", strconv.Itoa(len(f.Pix)))
		_, werr := w.Write(f.Pix)
		return werr
	})
	if err != nil {
		// Too late for a status line if the body started; ignore that case.
		writeError(w, err)
	}
}

func (m *Manager) handleRoomCreate(w http.ResponseWriter, r *http.Request) {
	var req RoomCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	req.Trace = obs.TraceFromRequest(r)
	t0 := time.Now()
	reply, err := m.CreateRoom(&req)
	m.ring.Record(req.Trace, "room.create", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

func (m *Manager) handleRoomJoin(w http.ResponseWriter, r *http.Request) {
	var req RoomJoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	req.Trace = obs.TraceFromRequest(r)
	t0 := time.Now()
	reply, err := m.JoinRoom(&req)
	m.ring.Record(req.Trace, "room.join", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

func (m *Manager) handleRoomLeave(w http.ResponseWriter, r *http.Request) {
	var req RoomJoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	m.LeaveRoom(&req)
	writeJSON(w, map[string]string{"room": req.Room, "watcher": req.Watcher, "state": "left"})
}

func (m *Manager) handleRoomAnswer(w http.ResponseWriter, r *http.Request) {
	var req RoomAnswerRequest
	if !decodeBody(w, r, &req) {
		return
	}
	req.Trace = obs.TraceFromRequest(r)
	t0 := time.Now()
	reply, err := m.AnswerRoom(&req)
	m.ring.Record(req.Trace, "room.answer", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

func (m *Manager) handleRoomStats(w http.ResponseWriter, r *http.Request) {
	st, err := m.RoomStatsOf(r.URL.Query().Get("room"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, st)
}

// WatchContentType marks a watch-chunk body (one chunk on a long poll,
// chunks back to back on a stream).
const WatchContentType = "application/x-vgbl-watch"

// handleRoomWatch serves the fan-out: GET with room, watcher, events,
// messages (the seen-counts), wait_ms (long-poll hold, default 2s) and
// stream=N (serve up to N chunks on one response, flushing each — the
// chunked-streaming primary; 0 means a single long-poll chunk). latest=0
// asks for in-order ring draining (streams default to it; long polls
// default to freshest-frame). A 204 means the hold expired with nothing
// new; rejoin-worthy conditions (room gone, watcher pruned) are 404s.
func (m *Manager) handleRoomWatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	room, err := m.roomByID(q.Get("room"))
	if err != nil {
		writeError(w, err)
		return
	}
	watcher := q.Get("watcher")
	seenE, _ := strconv.Atoi(q.Get("events"))
	seenM, _ := strconv.Atoi(q.Get("messages"))
	waitMS, _ := strconv.Atoi(q.Get("wait_ms"))
	if waitMS <= 0 {
		waitMS = 2000
	}
	wait := time.Duration(waitMS) * time.Millisecond
	stream, _ := strconv.Atoi(q.Get("stream"))
	latest := stream == 0
	if v := q.Get("latest"); v != "" {
		latest = v != "0"
	}

	var buf []byte
	header, pix, ackE, ackM, err := room.WatchNext(watcher, seenE, seenM, latest, wait, buf)
	if err != nil {
		writeError(w, err)
		return
	}
	if header == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", WatchContentType)
	if stream == 0 {
		w.Header().Set("Content-Length", strconv.Itoa(len(header)+len(pix)))
		w.Write(header)
		w.Write(pix)
		return
	}
	// Streaming: chunks back to back, one flush per publication, with the
	// seen-counts advanced server-side — within one response nothing is
	// served twice; a reconnect presents the client's own counts again.
	rc := http.NewResponseController(w)
	for sent := 0; sent < stream; {
		if header != nil {
			if _, werr := w.Write(header); werr != nil {
				return
			}
			if _, werr := w.Write(pix); werr != nil {
				return
			}
			if ferr := rc.Flush(); ferr != nil {
				return
			}
			buf = header
			seenE, seenM = ackE, ackM
			sent++
			if sent == stream {
				return
			}
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
		header, pix, ackE, ackM, err = room.WatchNext(watcher, seenE, seenM, latest, maxWatchWait, buf)
		if err != nil {
			return // mid-stream errors end the stream; the client rejoins
		}
	}
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
