// Package faultnet is a deterministic, seed-driven network fault layer
// plus the resilience primitives that survive it.
//
// The injection side wraps an http.RoundTripper (and, for raw-socket
// tests, a net.Listener) with added latency, bandwidth caps, request
// loss, connection resets, slow responses, synthesized 5xx bursts and
// periodic partitions. Every decision comes from one seeded RNG, so a
// chaos run replays exactly given the same seed — flaky networks, not
// flaky tests.
//
// The survival side is a shared retry helper (exponential backoff, full
// jitter, Retry-After awareness), a consecutive-failure circuit breaker,
// and a default HTTP client with real timeouts for everything in the
// repo that used to ride http.DefaultClient.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes one simulated network condition. The zero value is a
// clean network. Rates are probabilities in [0,1] drawn per request.
type Profile struct {
	Name string

	Latency time.Duration // fixed added latency per request
	Jitter  time.Duration // extra uniform [0,Jitter) latency

	// BandwidthBps caps response-body throughput in bytes/second
	// (0 = unlimited).
	BandwidthBps int

	DropRate  float64 // request lost before reaching the server
	ResetRate float64 // server applies the request, reply is lost
	ErrorRate float64 // synthesized 503 (the server never sees it)

	SlowRate float64 // request stalls for SlowFor before proceeding
	SlowFor  time.Duration

	// OutageEvery/OutageFor model a periodic hard partition: for the
	// first OutageFor of every OutageEvery window (measured from
	// transport creation) every request fails.
	OutageEvery time.Duration
	OutageFor   time.Duration
}

// Lookup resolves a named profile. Known names: "clean", "wifi-flaky",
// "mobile-3g", "partition", plus the parametrized bandwidth caps
// "cap-<N>k" (an otherwise-clean link throttled to N KiB/s — the ABR
// test rig's way of sweeping a bandwidth spread, e.g. cap-24k through
// cap-240k for a 10× spread).
func Lookup(name string) (Profile, bool) {
	if p, ok := capProfile(name); ok {
		return p, true
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "clean", "none":
		return Profile{Name: "clean"}, true
	case "wifi-flaky":
		// Crowded classroom wifi: short latency spikes, a few percent of
		// requests lost or reset, occasional AP-side stalls and errors.
		return Profile{
			Name:      "wifi-flaky",
			Latency:   2 * time.Millisecond,
			Jitter:    8 * time.Millisecond,
			DropRate:  0.02,
			ResetRate: 0.01,
			ErrorRate: 0.02,
			SlowRate:  0.02,
			SlowFor:   50 * time.Millisecond,
		}, true
	case "mobile-3g":
		// High fixed latency, tight bandwidth, rare loss.
		return Profile{
			Name:         "mobile-3g",
			Latency:      40 * time.Millisecond,
			Jitter:       20 * time.Millisecond,
			BandwidthBps: 256 << 10,
			DropRate:     0.005,
			ErrorRate:    0.005,
		}, true
	case "partition":
		// Mostly clean, but the network goes away entirely for 400ms out
		// of every 2s — the split-brain drill.
		return Profile{
			Name:        "partition",
			Latency:     time.Millisecond,
			Jitter:      2 * time.Millisecond,
			OutageEvery: 2 * time.Second,
			OutageFor:   400 * time.Millisecond,
		}, true
	}
	return Profile{}, false
}

// capProfile parses the parametrized "cap-<N>k" profile family: a clean
// link with response throughput capped at N KiB/s and a token 5ms of
// latency so it behaves like a link rather than loopback.
func capProfile(name string) (Profile, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	rest, ok := strings.CutPrefix(name, "cap-")
	if !ok {
		return Profile{}, false
	}
	kib, ok := strings.CutSuffix(rest, "k")
	if !ok {
		return Profile{}, false
	}
	n, err := strconv.Atoi(kib)
	if err != nil || n <= 0 {
		return Profile{}, false
	}
	return Profile{
		Name:         name,
		Latency:      5 * time.Millisecond,
		BandwidthBps: n << 10,
	}, true
}

// ProfileNames lists the named profiles in display order (the
// parametrized cap-<N>k family is accepted by Lookup but not
// enumerable).
func ProfileNames() []string {
	return []string{"clean", "wifi-flaky", "mobile-3g", "partition"}
}

// Typed injection errors. Dropped and partitioned requests never reached
// the server; a reset means the server (may have) applied the request and
// only the reply was lost — the case idempotency machinery exists for.
var (
	ErrDropped     = errors.New("faultnet: request dropped")
	ErrReset       = errors.New("faultnet: connection reset by peer")
	ErrPartitioned = errors.New("faultnet: network partitioned")
)

// Stats counts what a Transport injected, for test assertions.
type Stats struct {
	Requests int64
	Drops    int64
	Resets   int64
	Errors   int64 // synthesized 503s
	Slow     int64
	Outages  int64
}

// Transport is an http.RoundTripper that injects a Profile's faults in
// front of a base transport. All randomness comes from one seeded RNG, so
// runs replay deterministically per (profile, seed) modulo goroutine
// interleaving.
type Transport struct {
	Base    http.RoundTripper
	Profile Profile

	mu    sync.Mutex
	rng   *rand.Rand
	start time.Time

	requests atomic.Int64
	drops    atomic.Int64
	resets   atomic.Int64
	errors   atomic.Int64
	slow     atomic.Int64
	outages  atomic.Int64
}

// NewTransport wraps base (nil = http.DefaultTransport) with profile,
// drawing all fault decisions from a RNG seeded with seed.
func NewTransport(base http.RoundTripper, profile Profile, seed int64) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		Base:    base,
		Profile: profile,
		rng:     rand.New(rand.NewSource(seed)),
		start:   time.Now(),
	}
}

// Stats snapshots the injected-fault counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests: t.requests.Load(),
		Drops:    t.drops.Load(),
		Resets:   t.resets.Load(),
		Errors:   t.errors.Load(),
		Slow:     t.slow.Load(),
		Outages:  t.outages.Load(),
	}
}

// fate draws every per-request decision at once under one lock.
type fate struct {
	latency time.Duration
	drop    bool
	reset   bool
	err     bool
	slow    bool
	outage  bool
}

func (t *Transport) draw() fate {
	p := t.Profile
	t.mu.Lock()
	defer t.mu.Unlock()
	f := fate{latency: p.Latency}
	if p.Jitter > 0 {
		f.latency += time.Duration(t.rng.Int63n(int64(p.Jitter)))
	}
	if p.OutageEvery > 0 && time.Since(t.start)%p.OutageEvery < p.OutageFor {
		f.outage = true
		return f
	}
	if p.DropRate > 0 && t.rng.Float64() < p.DropRate {
		f.drop = true
		return f
	}
	if p.ErrorRate > 0 && t.rng.Float64() < p.ErrorRate {
		f.err = true
		return f
	}
	if p.SlowRate > 0 && t.rng.Float64() < p.SlowRate {
		f.slow = true
	}
	if p.ResetRate > 0 && t.rng.Float64() < p.ResetRate {
		f.reset = true
	}
	return f
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	f := t.draw()
	ctx := req.Context()
	if err := sleepCtx(ctx, f.latency); err != nil {
		return nil, err
	}
	switch {
	case f.outage:
		t.outages.Add(1)
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrPartitioned)
	case f.drop:
		// The request never reaches the server.
		t.drops.Add(1)
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrDropped)
	case f.err:
		// A 503 burst from some middlebox; deliberately no Retry-After —
		// only genuine load shedding advertises one.
		t.errors.Add(1)
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(strings.NewReader("faultnet: injected 503\n")),
			Request:    req,
		}, nil
	}
	if f.slow {
		t.slow.Add(1)
		if err := sleepCtx(ctx, t.Profile.SlowFor); err != nil {
			return nil, err
		}
	}
	resp, err := t.Base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if f.reset {
		// The server applied the request; the reply is lost in flight.
		// This is the path that makes idempotency machinery observable.
		t.resets.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrReset)
	}
	if t.Profile.BandwidthBps > 0 {
		resp.Body = &throttledBody{rc: resp.Body, bps: t.Profile.BandwidthBps, ctx: ctx}
	}
	return resp, nil
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// throttledBody paces reads to approximate a bytes/second cap.
type throttledBody struct {
	rc  io.ReadCloser
	bps int
	ctx context.Context
}

func (t *throttledBody) Read(p []byte) (int, error) {
	// Read at most ~10ms worth of budget per call so pacing stays smooth.
	chunk := t.bps / 100
	if chunk < 1 {
		chunk = 1
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	n, err := t.rc.Read(p)
	if n > 0 {
		delay := time.Duration(n) * time.Second / time.Duration(t.bps)
		if serr := sleepCtx(t.ctx, delay); serr != nil && err == nil {
			err = serr
		}
	}
	return n, err
}

func (t *throttledBody) Close() error { return t.rc.Close() }

// WrapClient returns a copy of base (nil = DefaultHTTPClient) whose
// transport injects profile with the given seed.
func WrapClient(base *http.Client, profile Profile, seed int64) *http.Client {
	if base == nil {
		base = DefaultHTTPClient()
	}
	c := *base
	c.Transport = NewTransport(base.Transport, profile, seed)
	return &c
}

// Listener wraps a net.Listener so accepted connections experience the
// profile's latency, bandwidth cap and resets at the socket layer — for
// exercising servers below HTTP semantics.
type Listener struct {
	net.Listener
	Profile Profile

	mu  sync.Mutex
	rng *rand.Rand
}

// WrapListener wraps l with profile under a seeded RNG.
func WrapListener(l net.Listener, profile Profile, seed int64) *Listener {
	return &Listener{Listener: l, Profile: profile, rng: rand.New(rand.NewSource(seed))}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	latency := l.Profile.Latency
	if l.Profile.Jitter > 0 {
		latency += time.Duration(l.rng.Int63n(int64(l.Profile.Jitter)))
	}
	reset := l.Profile.ResetRate > 0 && l.rng.Float64() < l.Profile.ResetRate
	l.mu.Unlock()
	return &faultConn{Conn: c, latency: latency, bps: l.Profile.BandwidthBps, reset: reset}, nil
}

// faultConn delays the first read, paces throughput, and optionally
// resets the connection after a short grace window.
type faultConn struct {
	net.Conn
	latency time.Duration
	bps     int
	reset   bool
	reads   int
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.reads == 0 && c.latency > 0 {
		time.Sleep(c.latency)
	}
	c.reads++
	if c.reset && c.reads > 1 {
		c.Conn.Close()
		return 0, ErrReset
	}
	if c.bps > 0 {
		chunk := c.bps / 100
		if chunk < 1 {
			chunk = 1
		}
		if len(p) > chunk {
			p = p[:chunk]
		}
	}
	n, err := c.Conn.Read(p)
	if n > 0 && c.bps > 0 {
		time.Sleep(time.Duration(n) * time.Second / time.Duration(c.bps))
	}
	return n, err
}

var (
	defaultClientOnce sync.Once
	defaultClient     *http.Client
)

// DefaultHTTPClient returns a shared HTTP client with real timeouts: the
// drop-in replacement for every place that used to assume
// http.DefaultClient (which never times anything out). Connection
// establishment, TLS, and response headers are individually bounded; the
// overall request deadline is left to per-request contexts so large
// streaming downloads on slow links are not cut off arbitrarily.
func DefaultHTTPClient() *http.Client {
	defaultClientOnce.Do(func() {
		defaultClient = &http.Client{Transport: NewHTTPTransport(0)}
	})
	return defaultClient
}

// NewHTTPTransport builds an *http.Transport with the repo's timeout
// defaults. maxPerHost > 0 additionally bounds per-host connections —
// the fleet sizes this to its concurrency so 200 learners do not open
// 200 sockets apiece.
func NewHTTPTransport(maxPerHost int) *http.Transport {
	tr := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          128,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ResponseHeaderTimeout: 15 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
	if maxPerHost > 0 {
		tr.MaxIdleConns = maxPerHost
		tr.MaxIdleConnsPerHost = maxPerHost
		tr.MaxConnsPerHost = maxPerHost
	}
	return tr
}
