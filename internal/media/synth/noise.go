// Package synth generates deterministic synthetic footage for the IVGBL
// platform.
//
// The paper's authors shot real video ("select video files from network or
// video cameras", §4.1). This package is the substitution: scripted scenes
// (classroom, market, street, museum, ...) rendered shot-by-shot with sprite
// motion, camera pans, hard cuts, fades and sensor noise. Unlike real film,
// a synthesized Film knows its exact shot boundaries, which turns shot
// detection (experiment E1) into a measurable problem.
//
// Rendering is a pure function of (film spec, frame index): any frame can be
// rendered out of order, which the playback engine's seek path relies on.
package synth

// hash64 is SplitMix64, a tiny high-quality integer mixer. All per-frame
// "randomness" (sensor noise, flicker) derives from it so that rendering
// frame i never depends on having rendered frame i-1.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// noise returns a deterministic pseudo-random value in [-amp, +amp] for the
// given (seed, frame, cell) coordinate.
func noise(seed, frame uint64, cell uint64, amp int) int {
	if amp == 0 {
		return 0
	}
	h := hash64(seed ^ hash64(frame) ^ hash64(cell*0x5851f42d4c957f2d))
	return int(h%uint64(2*amp+1)) - amp
}

// unitWave returns a deterministic smooth value in [0,1) for phase p —
// a triangle wave, used for sprite bobbing and camera sway without
// importing math.
func unitWave(p float64) float64 {
	p -= float64(int64(p)) // frac
	if p < 0 {
		p += 1
	}
	if p < 0.5 {
		return 2 * p
	}
	return 2 * (1 - p)
}
