package author

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/media/raster"
	"repro/internal/ui"
)

// EditorWindow assembles the authoring tool's interface — the layout shown
// in the paper's Figure 1: a menu bar, the video preview with the selected
// scenario, the segment timeline, the scenario and object lists, and the
// property sheet of the selected object.
//
// The window is live: clicking a timeline segment or list row updates the
// preview and property sheet through the same Tool the CLI drives.
type EditorWindow struct {
	Tool   *Tool
	Win    *ui.Window
	Status *ui.StatusBar

	preview   *ui.VideoView
	timeline  *ui.Timeline
	scenarios *ui.ListBox
	objects   *ui.ListBox
	props     *ui.PropertySheet

	selectedScenario string
	selectedObject   string
}

// NewEditorWindow builds the editor UI for a tool session.
func NewEditorWindow(t *Tool) *EditorWindow {
	const W, H = 480, 300
	e := &EditorWindow{Tool: t}
	w := ui.NewWindow("INTERACTIVE VGBL AUTHORING TOOL - "+t.Project().Title, W, H)

	menu := ui.NewMenuBar("menu", raster.Rect{X: 0, Y: ui.TitleBarHeight, W: W, H: 12},
		[]string{"FILE", "EDIT", "SCENARIO", "OBJECT", "HELP"})
	w.Add(menu)

	top := ui.TitleBarHeight + 14

	// Left: video preview pane.
	previewPanel := ui.NewPanel("preview-panel", raster.Rect{X: 4, Y: top, W: 240, H: 160}, "VIDEO PREVIEW")
	e.preview = ui.NewVideoView("preview", previewPanel.Content().Inset(2))
	previewPanel.Add(e.preview)
	w.Add(previewPanel)

	// Right: scenario list and object list.
	scenPanel := ui.NewPanel("scen-panel", raster.Rect{X: 248, Y: top, W: 112, H: 160}, "SCENARIOS")
	e.scenarios = ui.NewListBox("scenario-list", scenPanel.Content().Inset(2), nil)
	scenPanel.Add(e.scenarios)
	w.Add(scenPanel)

	objPanel := ui.NewPanel("obj-panel", raster.Rect{X: 364, Y: top, W: 112, H: 160}, "OBJECTS")
	e.objects = ui.NewListBox("object-list", objPanel.Content().Inset(2), nil)
	objPanel.Add(e.objects)
	w.Add(objPanel)

	// Middle strip: the segment timeline (the scenario editor's core).
	tlPanel := ui.NewPanel("tl-panel", raster.Rect{X: 4, Y: top + 164, W: 472, H: 40}, "SEGMENT TIMELINE")
	e.timeline = ui.NewTimeline("timeline", tlPanel.Content().Inset(2), 1)
	tlPanel.Add(e.timeline)
	w.Add(tlPanel)

	// Bottom: property sheet of the selected object.
	propPanel := ui.NewPanel("prop-panel", raster.Rect{X: 4, Y: top + 208, W: 472, H: 58}, "OBJECT PROPERTIES")
	e.props = ui.NewPropertySheet("props", propPanel.Content().Inset(2))
	propPanel.Add(e.props)
	w.Add(propPanel)

	e.Status = ui.NewStatusBar("status", raster.Rect{X: 0, Y: H - 14, W: W, H: 14})
	e.Status.Text = "READY"
	w.Add(e.Status)

	// Wiring.
	e.scenarios.OnSelect = func(i int, item string) { e.SelectScenario(item) }
	e.objects.OnSelect = func(i int, item string) { e.SelectObject(item) }
	e.timeline.OnSelect = func(i int, seg ui.TimelineSegment) {
		e.Status.Text = fmt.Sprintf("SEGMENT %s [%d-%d)", seg.Name, seg.Start, seg.End)
		e.showPreview(seg.Name)
	}

	e.Win = w
	e.Refresh()
	return e
}

// Refresh re-reads the tool state into every pane.
func (e *EditorWindow) Refresh() {
	p := e.Tool.Project()
	// Scenario list.
	var scen []string
	for _, s := range p.Scenarios {
		scen = append(scen, s.ID)
	}
	e.scenarios.Items = scen
	// Timeline.
	chs := e.Tool.Chapters()
	total := 1
	segs := make([]ui.TimelineSegment, len(chs))
	for i, c := range chs {
		segs[i] = ui.TimelineSegment{Name: c.Name, Start: c.Start, End: c.End}
		if c.End > total {
			total = c.End
		}
	}
	e.timeline.Total = total
	e.timeline.Segments = segs
	// Keep current selections coherent.
	if e.selectedScenario != "" && p.ScenarioByID(e.selectedScenario) == nil {
		e.selectedScenario = ""
		e.selectedObject = ""
	}
	e.refreshObjects()
	e.refreshProps()
}

// SelectScenario focuses a scenario: preview its segment, list its objects.
func (e *EditorWindow) SelectScenario(id string) {
	s := e.Tool.Project().ScenarioByID(id)
	if s == nil {
		return
	}
	e.selectedScenario = id
	e.selectedObject = ""
	e.Status.Text = "SCENARIO " + id + " (SEGMENT " + s.Segment + ")"
	e.showPreview(s.Segment)
	// Highlight the segment on the timeline.
	for i, seg := range e.timeline.Segments {
		if seg.Name == s.Segment {
			e.timeline.Selected = i
			e.timeline.Marker = seg.Start
		}
	}
	e.refreshObjects()
	e.refreshProps()
}

// SelectObject focuses an object in the property sheet.
func (e *EditorWindow) SelectObject(id string) {
	e.selectedObject = id
	e.refreshProps()
	e.Status.Text = "OBJECT " + id
}

func (e *EditorWindow) refreshObjects() {
	var items []string
	if s := e.Tool.Project().ScenarioByID(e.selectedScenario); s != nil {
		for _, o := range s.Objects {
			items = append(items, o.ID)
		}
	}
	e.objects.Items = items
	e.objects.Selected = -1
}

func (e *EditorWindow) refreshProps() {
	e.props.Rows = nil
	e.props.Selected = -1
	_, o := e.Tool.Project().FindObject(e.selectedObject)
	if o == nil {
		return
	}
	e.props.Rows = []ui.PropertyRow{
		{Key: "id", Value: o.ID},
		{Key: "name", Value: o.Name},
		{Key: "kind", Value: string(o.Kind)},
		{Key: "region", Value: fmt.Sprintf("%d,%d %dx%d", o.Region.X, o.Region.Y, o.Region.W, o.Region.H)},
		{Key: "events", Value: fmt.Sprintf("%d wired", len(o.Events))},
	}
}

func (e *EditorWindow) showPreview(segment string) {
	f, err := e.Tool.PreviewFrame(segment)
	if err != nil {
		e.preview.Frame = nil
		return
	}
	e.preview.Frame = f
	// Draw authored object regions over the preview so the object editor
	// shows what is placed where (Figure 1 shows inserted objects).
	for _, s := range e.Tool.Project().Scenarios {
		if s.Segment != segment {
			continue
		}
		for _, o := range s.Objects {
			f.DrawRect(o.Region, raster.Magenta)
		}
	}
}

// Snapshot renders the editor as deterministic ASCII art (Figure 1).
func (e *EditorWindow) Snapshot(cols, rows int) string {
	return e.Win.Snapshot(cols, rows)
}

// SelectedScenario returns the focused scenario ID (empty if none).
func (e *EditorWindow) SelectedScenario() string { return e.selectedScenario }

// SelectedObject returns the focused object ID (empty if none).
func (e *EditorWindow) SelectedObject() string { return e.selectedObject }

var _ = core.FormatVersion // core types appear in the public API via Tool
