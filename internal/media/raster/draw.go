package raster

// Rect is an axis-aligned rectangle with inclusive origin and exclusive
// extent, i.e. it covers x in [X, X+W) and y in [Y, Y+H).
type Rect struct {
	X, Y, W, H int
}

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && y >= r.Y && x < r.X+r.W && y < r.Y+r.H
}

// Intersects reports whether r and s overlap.
func (r Rect) Intersects(s Rect) bool {
	return r.X < s.X+s.W && s.X < r.X+r.W && r.Y < s.Y+s.H && s.Y < r.Y+r.H
}

// Intersect returns the overlapping region of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	x0 := max(r.X, s.X)
	y0 := max(r.Y, s.Y)
	x1 := min(r.X+r.W, s.X+s.W)
	y1 := min(r.Y+r.H, s.Y+s.H)
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Empty reports whether r covers no pixels.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Inset returns r shrunk by n pixels on every side.
func (r Rect) Inset(n int) Rect {
	return Rect{r.X + n, r.Y + n, r.W - 2*n, r.H - 2*n}
}

// FillRect paints the rectangle r with color c, clipped to the frame.
func (f *Frame) FillRect(r Rect, c RGB) {
	cl := r.Intersect(Rect{0, 0, f.W, f.H})
	if cl.Empty() {
		return
	}
	for y := cl.Y; y < cl.Y+cl.H; y++ {
		row := 3 * y * f.W
		for x := cl.X; x < cl.X+cl.W; x++ {
			i := row + 3*x
			f.Pix[i], f.Pix[i+1], f.Pix[i+2] = c.R, c.G, c.B
		}
	}
}

// DrawRect outlines the rectangle r with color c.
func (f *Frame) DrawRect(r Rect, c RGB) {
	if r.Empty() {
		return
	}
	f.HLine(r.X, r.X+r.W-1, r.Y, c)
	f.HLine(r.X, r.X+r.W-1, r.Y+r.H-1, c)
	f.VLine(r.X, r.Y, r.Y+r.H-1, c)
	f.VLine(r.X+r.W-1, r.Y, r.Y+r.H-1, c)
}

// HLine draws a horizontal line from (x0, y) to (x1, y).
func (f *Frame) HLine(x0, x1, y int, c RGB) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	for x := x0; x <= x1; x++ {
		f.Set(x, y, c)
	}
}

// VLine draws a vertical line from (x, y0) to (x, y1).
func (f *Frame) VLine(x, y0, y1 int, c RGB) {
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		f.Set(x, y, c)
	}
}

// DrawLine draws a line from (x0, y0) to (x1, y1) using Bresenham's
// algorithm.
func (f *Frame) DrawLine(x0, y0, x1, y1 int, c RGB) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		f.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// FillCircle paints a filled circle centered at (cx, cy) with radius r.
func (f *Frame) FillCircle(cx, cy, r int, c RGB) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				f.Set(cx+dx, cy+dy, c)
			}
		}
	}
}

// DrawCircle outlines a circle centered at (cx, cy) with radius r using the
// midpoint circle algorithm.
func (f *Frame) DrawCircle(cx, cy, r int, c RGB) {
	x, y := r, 0
	err := 1 - r
	for x >= y {
		f.Set(cx+x, cy+y, c)
		f.Set(cx-x, cy+y, c)
		f.Set(cx+x, cy-y, c)
		f.Set(cx-x, cy-y, c)
		f.Set(cx+y, cy+x, c)
		f.Set(cx-y, cy+x, c)
		f.Set(cx+y, cy-x, c)
		f.Set(cx-y, cy-x, c)
		y++
		if err < 0 {
			err += 2*y + 1
		} else {
			x--
			err += 2*(y-x) + 1
		}
	}
}

// Blit copies src onto f with its top-left corner at (dx, dy), clipping to
// the destination.
func (f *Frame) Blit(src *Frame, dx, dy int) {
	for y := 0; y < src.H; y++ {
		ty := dy + y
		if ty < 0 || ty >= f.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			tx := dx + x
			if tx < 0 || tx >= f.W {
				continue
			}
			si := 3 * (y*src.W + x)
			di := 3 * (ty*f.W + tx)
			f.Pix[di], f.Pix[di+1], f.Pix[di+2] = src.Pix[si], src.Pix[si+1], src.Pix[si+2]
		}
	}
}

// BlitKeyed copies src onto f at (dx, dy), skipping pixels equal to the
// color key. This is how sprite and object images with "white background"
// (the paper's Figure 2 umbrella) are mounted on a video frame.
func (f *Frame) BlitKeyed(src *Frame, dx, dy int, key RGB) {
	for y := 0; y < src.H; y++ {
		ty := dy + y
		if ty < 0 || ty >= f.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			tx := dx + x
			if tx < 0 || tx >= f.W {
				continue
			}
			si := 3 * (y*src.W + x)
			if src.Pix[si] == key.R && src.Pix[si+1] == key.G && src.Pix[si+2] == key.B {
				continue
			}
			di := 3 * (ty*f.W + tx)
			f.Pix[di], f.Pix[di+1], f.Pix[di+2] = src.Pix[si], src.Pix[si+1], src.Pix[si+2]
		}
	}
}

// Shade multiplies every pixel inside r by factor (used for hover and
// pressed widget states).
func (f *Frame) Shade(r Rect, factor float64) {
	cl := r.Intersect(Rect{0, 0, f.W, f.H})
	for y := cl.Y; y < cl.Y+cl.H; y++ {
		for x := cl.X; x < cl.X+cl.W; x++ {
			f.Set(x, y, f.At(x, y).Scale(factor))
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
