package vcodec

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/media/raster"
)

// fuzzSeeds builds one real I-frame and one real P-frame packet to seed the
// corpus (and to prime decoders so fuzzed P-frames reach the block layer).
var fuzzSeeds = sync.OnceValue(func() (pkts [2][]byte) {
	f := raster.New(24, 16)
	f.FillVGradient(raster.RGB{R: 200, G: 60, B: 40}, raster.RGB{R: 20, G: 80, B: 180})
	enc, err := NewEncoder(Config{Width: 24, Height: 16, QStep: 4, GOP: 8, SearchRange: 2, Workers: 1})
	if err != nil {
		panic(err)
	}
	i0, err := enc.Encode(f)
	if err != nil {
		panic(err)
	}
	f.FillCircle(12, 8, 5, raster.Yellow)
	p1, err := enc.Encode(f)
	if err != nil {
		panic(err)
	}
	return [2][]byte{i0.Data, p1.Data}
})

// FuzzDecode feeds arbitrary packets to the decoder, both cold and primed
// with a real reference frame. The invariant: Decode never panics, and every
// rejection is an ErrCorrupt (so callers can rely on errors.Is to separate
// bad data from programming errors).
func FuzzDecode(f *testing.F) {
	seeds := fuzzSeeds()
	f.Add(seeds[0])
	f.Add(seeds[1])
	f.Add([]byte{})
	f.Add([]byte("TKV1"))
	f.Add([]byte("TKV1\x00\x18\x10\x04\x02"))
	f.Add([]byte("TKV1\x07junkjunk"))
	trunc := append([]byte(nil), seeds[0]...)
	f.Add(trunc[:len(trunc)/2])
	flip := append([]byte(nil), seeds[1]...)
	flip[len(flip)/3] ^= 0x40
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		cold := NewDecoder(1)
		if frame, err := cold.Decode(data); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cold decode error does not wrap ErrCorrupt: %v", err)
			}
			if frame != nil {
				t.Fatal("cold decode returned frame alongside error")
			}
		}
		primed := NewDecoder(1)
		if _, err := primed.Decode(seeds[0]); err != nil {
			t.Fatalf("seed I-frame rejected: %v", err)
		}
		if frame, err := primed.Decode(data); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("primed decode error does not wrap ErrCorrupt: %v", err)
			}
			if frame != nil {
				t.Fatal("primed decode returned frame alongside error")
			}
			// A failed decode must not poison the reference: the real
			// P-frame must still decode against it.
			if _, err := primed.Decode(seeds[1]); err != nil {
				t.Fatalf("reference lost after rejected packet: %v", err)
			}
		}
	})
}
