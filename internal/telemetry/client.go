package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/runtime"
)

// ClientOptions configures a batching telemetry client.
type ClientOptions struct {
	BaseURL string // server base, e.g. "http://127.0.0.1:8807"
	Course  string
	Session string
	Start   string // start scenario, threaded to the server-side digest

	FlushEvery int           // flush when this many events are buffered (default 64)
	Interval   time.Duration // also flush this often (0 disables the timer)
	MaxRetries int           // attempts per flush when the server sheds load (default 64)
	HTTP       *http.Client  // defaults to faultnet.DefaultHTTPClient
}

// ClientStats counts what reporting cost.
type ClientStats struct {
	Batches   int           // batches delivered (attempted batches, not retries)
	Events    int           // events delivered
	Dropped   int           // events discarded because delivery failed
	Posts     int           // HTTP posts including retries
	Retries   int           // posts re-sent after a shed or transport error
	FlushTime time.Duration // total time spent posting
	MaxFlush  time.Duration // slowest single flush
}

// pendingBatch is a fully built batch the server has not acked yet. It is
// retried verbatim — same sequence number, same payload — so at-least-once
// delivery stays safe under the server's sequence dedup: a re-sent batch
// is either applied or recognized as a duplicate, and newer events can
// never fold into an already-issued sequence number.
type pendingBatch struct {
	payload []byte
	events  int // event count, for stats
}

// Client is a batching runtime.Observer: Record buffers events and flushes
// a JSON batch to the ingest endpoint when the buffer reaches FlushEvery or
// the interval timer fires. Close flushes the tail and marks the session
// done. Record is safe to call from the session goroutine while the
// interval timer flushes from its own; per-session batch order is preserved
// by a single-flight post lock.
type Client struct {
	opts  ClientOptions
	url   string
	sleep func(time.Duration) // time.Sleep; injectable for tests

	postMu  sync.Mutex    // serializes posts, preserving batch order
	seq     int           // last batch sequence number issued (guarded by postMu)
	pending *pendingBatch // unacked batch awaiting redelivery (guarded by postMu)

	mu     sync.Mutex // guards buf, stats, err, closed
	buf    []runtime.Event
	stats  ClientStats
	err    error
	closed bool

	stopTimer chan struct{}
	timerDone chan struct{}
}

// NewClient validates options and starts the interval flusher (when
// Interval > 0).
func NewClient(o ClientOptions) (*Client, error) {
	if o.BaseURL == "" {
		return nil, fmt.Errorf("telemetry: client needs a BaseURL")
	}
	if o.Course == "" || o.Session == "" {
		return nil, fmt.Errorf("telemetry: client needs Course and Session")
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 64
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 64
	}
	c := &Client{
		opts:      o,
		url:       o.BaseURL + IngestPath,
		sleep:     time.Sleep,
		stopTimer: make(chan struct{}),
		timerDone: make(chan struct{}),
	}
	if o.Interval > 0 {
		go c.runTimer(o.Interval)
	} else {
		close(c.timerDone)
	}
	return c, nil
}

func (c *Client) runTimer(every time.Duration) {
	defer close(c.timerDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Flush()
		case <-c.stopTimer:
			return
		}
	}
}

// Record implements runtime.Observer. Events recorded after Close, or
// after a sticky delivery failure, are dropped (and counted in Stats) —
// once a batch is undeliverable the server would reject the sequence gap
// anyway, and buffering forever would grow memory without bound.
func (c *Client) Record(e runtime.Event) {
	c.mu.Lock()
	if c.closed || c.err != nil {
		c.stats.Dropped++
		c.mu.Unlock()
		return
	}
	c.buf = append(c.buf, e)
	full := len(c.buf) >= c.opts.FlushEvery
	c.mu.Unlock()
	if full {
		c.Flush()
	}
}

// Buffered returns the number of events waiting for the next flush.
func (c *Client) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

// Flush posts the buffered events (no-op when the buffer is empty).
func (c *Client) Flush() error {
	c.postMu.Lock()
	defer c.postMu.Unlock()
	return c.flushLocked(false)
}

// Close flushes the tail, marks the session done on the server, and stops
// the interval flusher. Further Records are dropped. It returns the first
// delivery error encountered over the client's lifetime.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.closed = true
	c.mu.Unlock()
	if c.opts.Interval > 0 {
		close(c.stopTimer)
		<-c.timerDone
	}
	c.postMu.Lock()
	defer c.postMu.Unlock()
	return c.flushLocked(true)
}

// Stats returns a copy of the delivery counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Err returns the first delivery error (nil while everything has landed).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// flushLocked runs with postMu held: it redelivers any batch still pending
// from an earlier shed, then cuts the buffered events into a new batch and
// posts it. A batch the server keeps shedding (429/503, honoring its
// Retry-After) or that the network keeps eating is re-queued for the next
// flush instead of being dropped — the error it returns is NOT sticky.
// Only a definitive rejection (any other non-2xx, or a failed Close) goes
// sticky; after that no further batches are sent (the server would reject
// the sequence gap anyway, and buffering forever would grow memory without
// bound).
func (c *Client) flushLocked(done bool) error {
	c.mu.Lock()
	if c.err != nil {
		// Sticky failure: shed anything still buffered and stop posting.
		c.stats.Dropped += len(c.buf)
		c.buf = nil
		err := c.err
		c.mu.Unlock()
		return err
	}
	events := c.buf
	c.buf = nil
	c.mu.Unlock()
	err := c.deliver(events, done)
	if err != nil && done {
		// Closing with an undeliverable backlog: nothing will retry it.
		c.mu.Lock()
		if c.pending != nil {
			c.stats.Dropped += c.pending.events
		}
		c.stats.Dropped += len(c.buf)
		c.buf = nil
		c.mu.Unlock()
		c.pending = nil
		return c.fail(err)
	}
	return err
}

// deliver posts the pending batch first (order and sequence numbering
// require it to land, or be deduplicated, before anything newer is cut),
// then builds and posts a new batch from events. On a retriable failure
// the undelivered batch stays pending and any uncut events return to the
// front of the buffer — nothing is dropped.
func (c *Client) deliver(events []runtime.Event, done bool) error {
	if c.pending != nil {
		if err := c.post(c.pending); err != nil {
			if len(events) > 0 {
				c.mu.Lock()
				c.buf = append(events, c.buf...)
				c.mu.Unlock()
			}
			return err
		}
		c.pending = nil
	}
	if len(events) == 0 && !done {
		return nil
	}
	c.seq++
	b := Batch{
		Course:  c.opts.Course,
		Session: c.opts.Session,
		Start:   c.opts.Start,
		Seq:     c.seq,
		Events:  events,
		Done:    done,
	}
	payload, err := json.Marshal(b)
	if err != nil {
		return c.fail(err)
	}
	p := &pendingBatch{payload: payload, events: len(events)}
	if err := c.post(p); err != nil {
		c.pending = p
		return err
	}
	return nil
}

// post sends one batch, retrying while the server sheds load (429/503 —
// sleeping the server's advertised Retry-After when it sends one, the
// exponential backoff otherwise) or the transport fails. Exhausting the
// retry budget returns a non-sticky error: the caller keeps the batch
// pending. A definitive rejection drops the batch and goes sticky.
func (c *Client) post(p *pendingBatch) error {
	httpc := c.opts.HTTP
	if httpc == nil {
		httpc = faultnet.DefaultHTTPClient()
	}
	began := time.Now()
	var lastErr error
	var wait time.Duration
	for attempt := 0; attempt < c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			if wait <= 0 {
				wait = time.Millisecond << uint(min(attempt-1, 5)) // 1ms..32ms
			}
			c.sleep(wait)
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
		}
		wait = 0
		c.mu.Lock()
		c.stats.Posts++
		c.mu.Unlock()
		resp, err := httpc.Post(c.url, "application/json", bytes.NewReader(p.payload))
		if err != nil {
			lastErr = err
			continue
		}
		retryAfter, _ := faultnet.RetryAfterDelay(resp.Header)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			took := time.Since(began)
			c.mu.Lock()
			c.stats.Batches++
			c.stats.Events += p.events
			c.stats.FlushTime += took
			if took > c.stats.MaxFlush {
				c.stats.MaxFlush = took
			}
			c.mu.Unlock()
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("telemetry: server shedding load (%d)", resp.StatusCode)
			wait = retryAfter
			continue
		default:
			c.mu.Lock()
			c.stats.Dropped += p.events
			c.mu.Unlock()
			return c.fail(fmt.Errorf("telemetry: ingest %s: %s", c.url, resp.Status))
		}
	}
	return fmt.Errorf("telemetry: batch undelivered after %d attempts: %w", c.opts.MaxRetries, lastErr)
}

// fail records the first sticky error.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	return err
}
