package raster

import "math"

// HistBins is the number of bins per channel in a color Histogram. With 4
// bins per channel a histogram has 4³ = 64 cells, the classic size for
// shot-boundary detection features: coarse enough to ignore object motion,
// fine enough to see a scene change.
const HistBins = 4

// Histogram is a joint RGB color histogram with HistBins bins per channel,
// normalized so the cells sum to 1 (for a non-empty frame).
type Histogram [HistBins * HistBins * HistBins]float64

// Histogram computes the normalized joint color histogram of the frame.
func (f *Frame) Histogram() Histogram {
	var h Histogram
	n := f.W * f.H
	if n == 0 {
		return h
	}
	shift := 8 - 2 // log2(256/HistBins) for HistBins=4
	for i := 0; i < len(f.Pix); i += 3 {
		r := int(f.Pix[i]) >> shift
		g := int(f.Pix[i+1]) >> shift
		b := int(f.Pix[i+2]) >> shift
		h[(r*HistBins+g)*HistBins+b]++
	}
	inv := 1 / float64(n)
	for i := range h {
		h[i] *= inv
	}
	return h
}

// ChiSquare returns the χ² distance between two histograms:
// Σ (a-b)² / (a+b). The result is 0 for identical histograms and grows
// toward 2 for disjoint ones.
func (h Histogram) ChiSquare(g Histogram) float64 {
	var d float64
	for i := range h {
		s := h[i] + g[i]
		if s == 0 {
			continue
		}
		diff := h[i] - g[i]
		d += diff * diff / s
	}
	return d
}

// L1 returns the L1 (city-block) distance between two histograms, in [0,2].
func (h Histogram) L1(g Histogram) float64 {
	var d float64
	for i := range h {
		d += math.Abs(h[i] - g[i])
	}
	return d
}

// MAD returns the mean absolute difference between two same-sized frames,
// over all channels, in [0,255]. It panics on size mismatch.
func MAD(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("raster: MAD size mismatch")
	}
	if len(a.Pix) == 0 {
		return 0
	}
	var sum int64
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += int64(d)
	}
	return float64(sum) / float64(len(a.Pix))
}

// MSE returns the mean squared error between two same-sized frames.
func MSE(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("raster: MSE size mismatch")
	}
	if len(a.Pix) == 0 {
		return 0
	}
	var sum int64
	for i := range a.Pix {
		d := int64(a.Pix[i]) - int64(b.Pix[i])
		sum += d * d
	}
	return float64(sum) / float64(len(a.Pix))
}

// PSNR returns the peak signal-to-noise ratio in dB between a reference
// frame and a reconstruction. Identical frames yield +Inf.
func PSNR(ref, rec *Frame) float64 {
	mse := MSE(ref, rec)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// MeanLuma returns the average luminance of the frame in [0,255].
func (f *Frame) MeanLuma() float64 {
	if f.W*f.H == 0 {
		return 0
	}
	var sum int64
	for i := 0; i < len(f.Pix); i += 3 {
		sum += int64((77*int(f.Pix[i]) + 150*int(f.Pix[i+1]) + 29*int(f.Pix[i+2])) >> 8)
	}
	return float64(sum) / float64(f.W*f.H)
}
