// Classroom mode: the shared-session fan-out measurement. Where the base
// fleet gives every learner their own hosted session, a classroom run
// opens R rooms — one driven session each — and points W watchers per
// room at the broadcast. The server renders each state change once no
// matter how many watchers follow, so this is the load shape behind
// experiment E18: publications per second scale with the drivers, and
// delivery scales with the watchers, never the other way around.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/gamepack"
	"repro/internal/media/raster"
	"repro/internal/netstream"
	"repro/internal/playsvc"
	"repro/internal/sim"
)

// ClassroomConfig shapes one shared-session fan-out run.
type ClassroomConfig struct {
	ServerURL string // package server base URL (http://host:port)
	PlayURL   string // play/room service base URL; empty means ServerURL
	Package   string // course package under /pkg/

	Rooms    int // shared sessions (default 1)
	Watchers int // subscribers per room (default 50)
	FPS      int // driver pace in acts per second (default 10)
	Ticks    int // driver acts per room (default 100)

	// QuizHoldTicks is how many driver ticks a pending quiz stays open for
	// the cohort before the driver answers it and the lesson moves on
	// (default 2×FPS — two seconds of class time).
	QuizHoldTicks int
	// Stream switches watchers from long-polling to chunked streaming.
	Stream bool
	// Correctness is the probability a watcher answers a quiz correctly
	// (default 0.7) — the knob that makes cohort tallies look like a class.
	Correctness float64

	Policy sim.Factory // driver policy (default sim.GuidedFactory)
	Seed   int64
	// RunID salts room ids so repeated runs against a long-lived server
	// open fresh rooms (same reasoning as Config.RunID).
	RunID string
	HTTP  *http.Client
}

func (c *ClassroomConfig) defaults() (ownsTransport bool, err error) {
	if c.ServerURL == "" || c.Package == "" {
		return false, fmt.Errorf("fleet: classroom needs ServerURL and Package")
	}
	if c.PlayURL == "" {
		c.PlayURL = c.ServerURL
	}
	if c.Rooms <= 0 {
		c.Rooms = 1
	}
	if c.Watchers <= 0 {
		c.Watchers = 50
	}
	if c.FPS <= 0 {
		c.FPS = 10
	}
	if c.Ticks <= 0 {
		c.Ticks = 100
	}
	if c.QuizHoldTicks <= 0 {
		c.QuizHoldTicks = 2 * c.FPS
	}
	if c.Correctness <= 0 || c.Correctness > 1 {
		c.Correctness = 0.7
	}
	if c.Policy.New == nil {
		c.Policy = sim.GuidedFactory
	}
	if c.RunID == "" {
		c.RunID = fmt.Sprintf("%x", time.Now().UnixNano())
	}
	if c.HTTP == nil {
		// Every watcher parks a long-poll (or a stream) on the server, so
		// the connection budget is the whole classroom, not a worker pool.
		c.HTTP = &http.Client{Transport: faultnet.NewHTTPTransport(c.Rooms*(c.Watchers+2) + 8)}
		ownsTransport = true
	}
	return ownsTransport, nil
}

// ClassroomSummary is the classroom run's measurement.
type ClassroomSummary struct {
	Rooms    int
	Watchers int // per room
	Elapsed  time.Duration

	// Renders counts server-side presentation renders across all rooms;
	// Published counts the publications the drivers caused (room creation
	// plus every successful act). Equal numbers mean the hub rendered each
	// state change exactly once regardless of watcher count — the claim
	// E18 asserts.
	Renders   int64
	Published int64

	Delivered       int64   // frames handed to watchers (server count)
	ClientDelivered int64   // frames watchers actually received (cross-check)
	Skipped         int64   // frames dropped from slow watcher rings
	FramesPerSec    float64 // delivered / wall time

	QuizzesAsked    int   // distinct quizzes opened across rooms
	AnswersSent     int   // watcher answers accepted over the wire
	AnswersRecorded int64 // answers present in the final cohort tallies

	WatchersFailed int
	DriversFailed  int

	Join   Latency // room join round-trip
	Answer Latency // quiz answer round-trip

	Errors []string // up to 8 sample error messages
}

// String renders the fan-out table the load-test CLI prints.
func (s *ClassroomSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CLASSROOM RUN — %d rooms × %d watchers\n", s.Rooms, s.Watchers)
	fmt.Fprintf(&b, "  wall time      : %v\n", s.Elapsed.Round(time.Millisecond))
	oneRender := "one render per tick"
	if s.Renders != s.Published {
		oneRender = "RENDER/PUBLISH MISMATCH"
	}
	fmt.Fprintf(&b, "  renders        : %d for %d publications (%s)\n", s.Renders, s.Published, oneRender)
	fmt.Fprintf(&b, "  fan-out        : %d frames delivered (%d received), %d skipped on slow rings\n",
		s.Delivered, s.ClientDelivered, s.Skipped)
	fmt.Fprintf(&b, "  throughput     : %.0f frames/s delivered\n", s.FramesPerSec)
	fmt.Fprintf(&b, "  join latency   : %s\n", s.Join)
	fmt.Fprintf(&b, "  answer latency : %s\n", s.Answer)
	lost := int64(s.AnswersSent) - s.AnswersRecorded
	fmt.Fprintf(&b, "  quizzes        : %d asked, %d answers sent, %d recorded (%d lost)\n",
		s.QuizzesAsked, s.AnswersSent, s.AnswersRecorded, lost)
	if s.WatchersFailed > 0 || s.DriversFailed > 0 {
		fmt.Fprintf(&b, "  failures       : %d watchers, %d drivers\n", s.WatchersFailed, s.DriversFailed)
	}
	if len(s.Errors) > 0 {
		fmt.Fprintf(&b, "  errors         : %s\n", strings.Join(s.Errors, "; "))
	}
	return b.String()
}

// driverOutcome is what one room's driver hands back.
type driverOutcome struct {
	published int64 // room-create publish + successful acts
	stats     playsvc.RoomStats
	statsOK   bool
	err       error
}

// watcherOutcome is what one watcher hands back.
type watcherOutcome struct {
	join       time.Duration
	answerRTTs []time.Duration
	delivered  int64
	skipped    int64
	answers    int
	err        error
}

// RunClassroom drives the whole classroom and blocks until every room
// ends. Watcher and driver errors do not abort the run; they are counted
// and sampled in the summary. It errors only on misconfiguration or when
// no room could even be created.
func RunClassroom(cfg ClassroomConfig) (*ClassroomSummary, error) {
	ownsTransport, err := cfg.defaults()
	if err != nil {
		return nil, err
	}
	if ownsTransport {
		defer cfg.HTTP.CloseIdleConnections()
	}
	// The drivers choose actions against a local copy of the project (the
	// same package the server hosts), and watchers look quiz metadata up in
	// it to answer plausibly.
	nc := &netstream.Client{HTTP: cfg.HTTP}
	blob, _, err := nc.DownloadDelta(cfg.ServerURL+"/pkg/"+cfg.Package, netstream.NewPackageCache())
	if err != nil {
		return nil, fmt.Errorf("fleet: classroom prefetch: %w", err)
	}
	pkg, err := gamepack.Open(blob)
	if err != nil {
		return nil, fmt.Errorf("fleet: classroom package: %w", err)
	}

	// Open every room up front so watchers never race a missing room.
	roomIDs := make([]string, 0, cfg.Rooms)
	for r := 0; r < cfg.Rooms; r++ {
		id := fmt.Sprintf("%s-%s-class-%03d", cfg.Package, cfg.RunID, r)
		if _, err := playsvc.CreateRoom(cfg.PlayURL, &playsvc.RoomCreateRequest{Course: cfg.Package, Room: id}, cfg.HTTP); err != nil {
			return nil, fmt.Errorf("fleet: create room %s: %w", id, err)
		}
		roomIDs = append(roomIDs, id)
	}

	// Wall-clock bound: the paced lesson plus generous slack for joins,
	// quiz grace periods and stats collection. Watchers stop polling at
	// the deadline even if a driver wedged.
	lesson := time.Duration(cfg.Ticks) * time.Second / time.Duration(cfg.FPS)
	deadline := time.Now().Add(lesson + 30*time.Second)

	drivers := make([]driverOutcome, cfg.Rooms)
	watchers := make([]watcherOutcome, cfg.Rooms*cfg.Watchers)
	var wg sync.WaitGroup
	began := time.Now()
	for r := 0; r < cfg.Rooms; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			drivers[r] = runRoomDriver(&cfg, pkg.Project, roomIDs[r], int64(r))
		}(r)
		for w := 0; w < cfg.Watchers; w++ {
			wg.Add(1)
			go func(r, w int) {
				defer wg.Done()
				idx := r*cfg.Watchers + w
				watchers[idx] = runWatcher(&cfg, pkg.Project, roomIDs[r], int64(idx), deadline)
			}(r, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(began)

	sum := &ClassroomSummary{Rooms: cfg.Rooms, Watchers: cfg.Watchers, Elapsed: elapsed}
	sampleErr := func(prefix string, i int, err error) {
		if len(sum.Errors) < 8 {
			sum.Errors = append(sum.Errors, fmt.Sprintf("%s %d: %v", prefix, i, err))
		}
	}
	for i := range drivers {
		d := &drivers[i]
		if d.err != nil {
			sum.DriversFailed++
			sampleErr("driver", i, d.err)
		}
		sum.Published += d.published
		if d.statsOK {
			sum.Renders += d.stats.Renders
			sum.Delivered += d.stats.Delivered
			sum.Skipped += d.stats.Skipped
			sum.AnswersRecorded += d.stats.Answers
			sum.QuizzesAsked += len(d.stats.Quizzes)
		}
	}
	var joins, answers []time.Duration
	for i := range watchers {
		o := &watchers[i]
		if o.err != nil {
			sum.WatchersFailed++
			sampleErr("watcher", i, o.err)
			continue
		}
		sum.ClientDelivered += o.delivered
		sum.AnswersSent += o.answers
		joins = append(joins, o.join)
		answers = append(answers, o.answerRTTs...)
	}
	sum.Join = quantiles(joins)
	sum.Answer = quantiles(answers)
	if secs := elapsed.Seconds(); secs > 0 {
		sum.FramesPerSec = float64(sum.Delivered) / secs
	}
	return sum, nil
}

// runRoomDriver paces one room's lesson: one act per tick at cfg.FPS —
// mostly watching (Advance), one policy interaction per second of class
// time, and quizzes held open for the cohort before being answered.
func runRoomDriver(cfg *ClassroomConfig, proj *core.Project, roomID string, seed int64) driverOutcome {
	var o driverOutcome
	o.published = 1 // the create-time publication (seq 1)
	pc, err := playsvc.Dial(playsvc.ClientOptions{
		BaseURL: cfg.PlayURL,
		Resume:  roomID,
		Project: proj,
		HTTP:    cfg.HTTP,
	})
	if err != nil {
		o.err = fmt.Errorf("driver dial: %w", err)
		return o
	}
	policy := cfg.Policy.New()
	rng := rand.New(rand.NewSource(cfg.Seed + seed*7919))
	interval := time.Second / time.Duration(cfg.FPS)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	holdLeft := 0
	heldQuiz := ""
	for tick := 0; tick < cfg.Ticks; tick++ {
		<-ticker.C
		switch q, pending := pc.PendingQuiz(); {
		case pending && q.ID != heldQuiz:
			// A fresh quiz: start the cohort window and keep the video
			// rolling underneath it (quizzes overlay playback).
			heldQuiz, holdLeft = q.ID, cfg.QuizHoldTicks
			err = pc.Advance(1)
		case pending && holdLeft > 0:
			holdLeft--
			err = pc.Advance(1)
		case pending:
			_, err = pc.AnswerQuiz(q.ID, q.Answer)
		case (tick+1)%cfg.FPS == 0:
			// One interaction per second of class time; the rest of the
			// ticks are plain watching.
			if a, ok := policy.Choose(pc, sim.AvailableActions(pc), rng); ok {
				sim.Apply(pc, a)
				err = pc.Err()
			} else {
				err = pc.Advance(1)
			}
		default:
			err = pc.Advance(1)
		}
		if err != nil {
			o.err = fmt.Errorf("driver tick %d: %w", tick, err)
			break
		}
		o.published++
	}
	// Grace: let the cohort answer anything still pending, answer it, and
	// let the final publication drain to every ring before the stats
	// snapshot freezes the tallies.
	grace := 2*watchHold(cfg) + 500*time.Millisecond
	if q, pending := pc.PendingQuiz(); pending && o.err == nil {
		time.Sleep(grace)
		if _, err := pc.AnswerQuiz(q.ID, q.Answer); err == nil {
			o.published++
		}
	}
	time.Sleep(grace)
	if st, err := fetchRoomStats(cfg.HTTP, cfg.PlayURL, roomID); err == nil {
		o.stats, o.statsOK = st, true
	} else if o.err == nil {
		o.err = fmt.Errorf("driver stats: %w", err)
	}
	// Leaving closes the driven session AND the room: watchers see the
	// room end and exit instead of polling out their deadline.
	if err := pc.Close(); err != nil && o.err == nil {
		o.err = fmt.Errorf("driver leave: %w", err)
	}
	return o
}

// watchHold is the server-side hold watchers request per poll: two frame
// intervals, clamped to something humane for very slow or very fast paces.
func watchHold(cfg *ClassroomConfig) time.Duration {
	hold := 2 * time.Second / time.Duration(cfg.FPS)
	if hold < 100*time.Millisecond {
		hold = 100 * time.Millisecond
	}
	if hold > 2*time.Second {
		hold = 2 * time.Second
	}
	return hold
}

// runWatcher follows one room to the end: join, poll (or stream) the
// broadcast, answer each quiz once. A watcher answers correctly with
// probability cfg.Correctness, otherwise picks a random wrong choice.
func runWatcher(cfg *ClassroomConfig, proj *core.Project, roomID string, seed int64, deadline time.Time) watcherOutcome {
	var o watcherOutcome
	rng := rand.New(rand.NewSource(cfg.Seed + seed*104729 + 13))
	joinBegan := time.Now()
	wc, err := playsvc.JoinRoom(playsvc.RoomClientOptions{BaseURL: cfg.PlayURL, Room: roomID, HTTP: cfg.HTTP})
	if err != nil {
		o.err = fmt.Errorf("join: %w", err)
		return o
	}
	o.join = time.Since(joinBegan)
	answered := map[string]bool{}
	answer := func(quizID string) {
		if quizID == "" || answered[quizID] {
			return
		}
		q := proj.QuizByID(quizID)
		if q == nil || len(q.Choices) == 0 {
			return
		}
		choice := q.Answer
		if rng.Float64() >= cfg.Correctness && len(q.Choices) > 1 {
			// A wrong answer, uniformly over the distractors.
			choice = rng.Intn(len(q.Choices) - 1)
			if choice >= q.Answer {
				choice++
			}
		}
		began := time.Now()
		if _, err := wc.Answer(quizID, choice); err == nil {
			o.answerRTTs = append(o.answerRTTs, time.Since(began))
			o.answers++
			answered[quizID] = true
		}
	}
	answer(wc.PendingQuiz()) // a quiz may already be open at join time
	hold := watchHold(cfg)
	for time.Now().Before(deadline) {
		if cfg.Stream {
			err = wc.Stream(16, hold, func(u *playsvc.WatchUpdate, _ *raster.Frame) error {
				o.delivered++
				answer(u.Quiz)
				return nil
			})
		} else {
			var u *playsvc.WatchUpdate
			u, _, err = wc.Poll(hold)
			if u != nil {
				o.delivered++
				answer(u.Quiz)
			}
		}
		if err != nil {
			var pe *playsvc.Error
			if errors.As(err, &pe) && pe.Status == http.StatusNotFound {
				err = nil // the driver ended the room: a clean dismissal
			}
			break
		}
	}
	o.skipped = wc.Skipped()
	o.err = err
	wc.Close() // best effort; the room is usually gone by now
	return o
}

// fetchRoomStats reads one room's counters and cohort tallies.
func fetchRoomStats(httpc *http.Client, baseURL, roomID string) (playsvc.RoomStats, error) {
	var st playsvc.RoomStats
	resp, err := httpc.Get(baseURL + playsvc.RoomStatsPath + "?room=" + url.QueryEscape(roomID))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return st, fmt.Errorf("room stats: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
