package author

import (
	"strings"
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/raster"
	"repro/internal/media/shotdetect"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

// importedTool returns a tool with a 3-shot film imported and
// auto-segmented.
func importedTool(t *testing.T) *Tool {
	t.Helper()
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 3, MinShotFrames: 14, MaxShotFrames: 20,
		Seed: 9,
	})
	tool := New("Test Game")
	cfg := shotdetect.Defaults()
	if err := tool.ImportFootage(film, ImportOptions{
		Encode: studio.Options{QStep: 8},
		Detect: cfg,
	}); err != nil {
		t.Fatal(err)
	}
	return tool
}

func TestImportAutoSegments(t *testing.T) {
	tool := importedTool(t)
	if tool.Video() == nil {
		t.Fatal("video not stored")
	}
	names := tool.SegmentNames()
	if len(names) != 3 {
		t.Fatalf("auto-segmentation found %d segments, want 3: %v", len(names), names)
	}
	chs := tool.Chapters()
	if chs[0].Start != 0 {
		t.Error("first segment must start at frame 0")
	}
	for i := 1; i < len(chs); i++ {
		if chs[i].Start != chs[i-1].End {
			t.Error("segments must tile the video")
		}
	}
}

func TestImportUndo(t *testing.T) {
	tool := importedTool(t)
	if !tool.Undo() {
		t.Fatal("undo failed")
	}
	if tool.Video() != nil || len(tool.Chapters()) != 0 {
		t.Fatal("undo did not revert import")
	}
	if !tool.Redo() {
		t.Fatal("redo failed")
	}
	if tool.Video() == nil {
		t.Fatal("redo did not restore import")
	}
}

func TestSegmentOps(t *testing.T) {
	tool := importedTool(t)
	names := tool.SegmentNames()
	// Rename.
	if err := tool.RenameSegment(names[0], "intro"); err != nil {
		t.Fatal(err)
	}
	if tool.SegmentNames()[0] != "intro" {
		t.Fatal("rename failed")
	}
	if err := tool.RenameSegment("intro", names[1]); err == nil {
		t.Fatal("duplicate rename accepted")
	}
	// Split.
	ch := tool.Chapters()[0]
	mid := (ch.Start + ch.End) / 2
	if err := tool.SplitSegment("intro", mid, "intro-b"); err != nil {
		t.Fatal(err)
	}
	chs := tool.Chapters()
	if len(chs) != 4 || chs[0].End != mid || chs[1].Start != mid || chs[1].Name != "intro-b" {
		t.Fatalf("split wrong: %+v", chs)
	}
	// Split validation.
	if err := tool.SplitSegment("intro", ch.Start, "x"); err == nil {
		t.Fatal("split at segment start accepted")
	}
	// Merge back.
	if err := tool.MergeSegmentWithNext("intro"); err != nil {
		t.Fatal(err)
	}
	chs = tool.Chapters()
	if len(chs) != 3 || chs[0].End != ch.End {
		t.Fatalf("merge wrong: %+v", chs)
	}
	// Undo the merge: split state returns.
	tool.Undo()
	if len(tool.Chapters()) != 4 {
		t.Fatal("merge undo failed")
	}
	// Undo split, rename: original state.
	tool.Undo()
	tool.Undo()
	if tool.SegmentNames()[0] != names[0] {
		t.Fatalf("undo chain broken: %v", tool.SegmentNames())
	}
}

func TestMergeRetargetsScenarios(t *testing.T) {
	tool := importedTool(t)
	names := tool.SegmentNames()
	tool.AddScenario("a", "A", names[0])
	tool.AddScenario("b", "B", names[1])
	if err := tool.MergeSegmentWithNext(names[0]); err != nil {
		t.Fatal(err)
	}
	if got := tool.Project().ScenarioByID("b").Segment; got != names[0] {
		t.Fatalf("scenario b segment = %q, want %q", got, names[0])
	}
	tool.Undo()
	if got := tool.Project().ScenarioByID("b").Segment; got != names[1] {
		t.Fatalf("undo retarget failed: %q", got)
	}
}

func TestScenarioAndObjectEditing(t *testing.T) {
	tool := importedTool(t)
	seg := tool.SegmentNames()[0]
	if err := tool.AddScenario("room", "Room", seg); err != nil {
		t.Fatal(err)
	}
	if err := tool.AddScenario("room", "Dup", seg); err == nil {
		t.Fatal("duplicate scenario accepted")
	}
	if err := tool.AddScenario("x", "X", "ghost-segment"); err == nil {
		t.Fatal("unknown segment accepted")
	}
	if err := tool.SetStartScenario("room"); err != nil {
		t.Fatal(err)
	}
	obj := &core.Object{
		ID: "lamp", Name: "Lamp", Kind: core.Hotspot, Enabled: true,
		Region: raster.Rect{X: 5, Y: 5, W: 10, H: 10},
	}
	if err := tool.AddObject("room", obj); err != nil {
		t.Fatal(err)
	}
	if err := tool.AddObject("room", &core.Object{ID: "lamp", Kind: core.Hotspot}); err == nil {
		t.Fatal("duplicate object accepted")
	}
	if err := tool.MoveObject("lamp", raster.Rect{X: 20, Y: 20, W: 8, H: 8}); err != nil {
		t.Fatal(err)
	}
	if tool.Project().Scenarios[0].Objects[0].Region.X != 20 {
		t.Fatal("move failed")
	}
	tool.Undo()
	if tool.Project().Scenarios[0].Objects[0].Region.X != 5 {
		t.Fatal("move undo failed")
	}
	if err := tool.SetObjectProperty("lamp", "name", "Desk Lamp"); err != nil {
		t.Fatal(err)
	}
	if err := tool.SetObjectProperty("lamp", "takeable", "true"); err != nil {
		t.Fatal(err)
	}
	if err := tool.SetObjectProperty("lamp", "kind", "item"); err != nil {
		t.Fatal(err)
	}
	if err := tool.SetObjectProperty("lamp", "kind", "dragon"); err == nil {
		t.Fatal("bad kind accepted")
	}
	if err := tool.SetObjectProperty("lamp", "mood", "angry"); err == nil {
		t.Fatal("unknown property accepted")
	}
	o := tool.Project().Scenarios[0].Objects[0]
	if o.Name != "Desk Lamp" || !o.Takeable || o.Kind != core.Item {
		t.Fatalf("properties wrong: %+v", o)
	}
	// Events.
	if err := tool.AddEvent("lamp", core.Event{Trigger: core.OnClick, Script: `say "click";`}); err != nil {
		t.Fatal(err)
	}
	if err := tool.RemoveEvent("lamp", 5); err == nil {
		t.Fatal("bad event index accepted")
	}
	if err := tool.RemoveEvent("lamp", 0); err != nil {
		t.Fatal(err)
	}
	if len(o.Events) != 0 {
		t.Fatal("event not removed")
	}
	tool.Undo()
	if len(o.Events) != 1 {
		t.Fatal("event removal undo failed")
	}
	// Remove object.
	if err := tool.RemoveObject("lamp"); err != nil {
		t.Fatal(err)
	}
	if _, got := tool.Project().FindObject("lamp"); got != nil {
		t.Fatal("object not removed")
	}
	tool.Undo()
	if _, got := tool.Project().FindObject("lamp"); got == nil {
		t.Fatal("object removal undo failed")
	}
}

func TestOpsCounterCounts(t *testing.T) {
	tool := importedTool(t) // 1 op (import)
	seg := tool.SegmentNames()[0]
	tool.AddScenario("a", "A", seg)
	tool.SetStartScenario("a")
	tool.Undo()
	tool.Redo()
	if got := tool.Ops(); got != 5 {
		t.Fatalf("ops = %d, want 5", got)
	}
}

func TestExportPackageEndToEnd(t *testing.T) {
	tool := importedTool(t)
	segs := tool.SegmentNames()
	tool.AddScenario("start", "Start", segs[0])
	tool.AddScenario("end", "End", segs[1])
	tool.SetStartScenario("start")
	tool.AddKnowledgeUnit(&core.KnowledgeUnit{ID: "k1", Topic: "T"})
	tool.AddObject("start", &core.Object{
		ID: "door", Name: "Door", Kind: core.NavButton, Enabled: true,
		Region: raster.Rect{X: 5, Y: 5, W: 10, H: 10},
		Events: []core.Event{{Trigger: core.OnClick, Script: `learn "k1"; goto "end";`}},
	})
	blob, err := tool.ExportPackage()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := gamepack.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Project.StartScenario != "start" {
		t.Error("project wrong in export")
	}
}

func TestExportRejectsInvalidProject(t *testing.T) {
	tool := importedTool(t)
	tool.AddScenario("a", "A", tool.SegmentNames()[0])
	tool.SetStartScenario("a")
	tool.AddObject("a", &core.Object{
		ID: "bad", Name: "Bad", Kind: core.Hotspot, Enabled: true,
		Region: raster.Rect{X: 0, Y: 0, W: 5, H: 5},
		Events: []core.Event{{Trigger: core.OnClick, Script: `goto "atlantis";`}},
	})
	if _, err := tool.ExportPackage(); err == nil {
		t.Fatal("invalid project exported")
	}
	if _, err := New("empty").ExportPackage(); err == nil {
		t.Fatal("export without video accepted")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	tool := importedTool(t)
	tool.AddScenario("a", "A", tool.SegmentNames()[0])
	projJSON, err := tool.SaveProject()
	if err != nil {
		t.Fatal(err)
	}
	tool2, err := Load(projJSON, tool.Video())
	if err != nil {
		t.Fatal(err)
	}
	if tool2.Project().ScenarioByID("a") == nil {
		t.Fatal("project lost in load")
	}
	if len(tool2.Chapters()) == 0 {
		t.Fatal("chapters lost in load")
	}
	if _, err := Load([]byte("{bad"), nil); err == nil {
		t.Fatal("bad project JSON accepted")
	}
	if _, err := Load(nil, []byte("bad video")); err == nil {
		t.Fatal("bad video accepted")
	}
}

func TestImportKeepChapters(t *testing.T) {
	course := content.Classroom()
	video, err := course.RecordVideo(studio.Options{QStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	tool := New("kept")
	if err := tool.ImportVideo(video, ImportOptions{KeepChapters: true}); err != nil {
		t.Fatal(err)
	}
	names := tool.SegmentNames()
	if len(names) != 2 || names[0] != "seg-classroom" {
		t.Fatalf("chapters not kept: %v", names)
	}
}

func TestPreviewFrame(t *testing.T) {
	tool := importedTool(t)
	seg := tool.SegmentNames()[1]
	f, err := tool.PreviewFrame(seg)
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 96 || f.H != 64 {
		t.Fatalf("preview size %dx%d", f.W, f.H)
	}
	if _, err := tool.PreviewFrame("ghost"); err == nil {
		t.Fatal("preview of unknown segment accepted")
	}
}

func TestEditorWindowFigure1(t *testing.T) {
	// Build the classroom course through the tool and snapshot the editor.
	course := content.Classroom()
	video, _ := course.RecordVideo(studio.Options{QStep: 8})
	projJSON, _ := course.Project.Marshal()
	tool, err := Load(projJSON, video)
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditorWindow(tool)
	if got := ed.scenarios.Items; len(got) != 2 {
		t.Fatalf("scenario list = %v", got)
	}
	ed.SelectScenario("classroom")
	if ed.SelectedScenario() != "classroom" {
		t.Fatal("selection failed")
	}
	if len(ed.objects.Items) != 4 {
		t.Fatalf("object list = %v", ed.objects.Items)
	}
	ed.SelectObject("computer")
	found := false
	for _, r := range ed.props.Rows {
		if r.Key == "kind" && r.Value == "hotspot" {
			found = true
		}
	}
	if !found {
		t.Fatalf("property sheet rows = %+v", ed.props.Rows)
	}
	// Snapshot is deterministic and shows the panel titles.
	s1 := ed.Snapshot(120, 40)
	ed2 := NewEditorWindow(tool)
	ed2.SelectScenario("classroom")
	ed2.SelectObject("computer")
	s2 := ed2.Snapshot(120, 40)
	if s1 != s2 {
		t.Error("editor snapshot not deterministic")
	}
	if !strings.Contains(s1, "\n") || len(s1) < 1000 {
		t.Error("snapshot suspiciously small")
	}
	// Clicking the timeline in the window updates the status bar.
	tl := ed.Win.FindByID("timeline")
	b := tl.Bounds()
	ed.Win.Click(b.X+b.W/2, b.Y+b.H/2)
	if !strings.Contains(ed.Status.Text, "SEGMENT") {
		t.Errorf("status after timeline click: %q", ed.Status.Text)
	}
}
