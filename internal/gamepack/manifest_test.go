package gamepack

import (
	"errors"
	"testing"

	"repro/internal/blobstore"
	"repro/internal/core"
	"repro/internal/media/container"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

func storeFor(t testing.TB, blobs ...[]byte) *blobstore.Store {
	t.Helper()
	s, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	for _, blob := range blobs {
		if _, err := DepositChunks(blob, s); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestManifestEncodeParseRoundTrip(t *testing.T) {
	p, video := fixture(t)
	blob, err := Build(p, video)
	if err != nil {
		t.Fatal(err)
	}
	man, err := ExtractManifest(blob)
	if err != nil {
		t.Fatal(err)
	}
	re, err := ParseManifest(man.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Sections) != len(man.Sections) {
		t.Fatalf("%d sections after round trip, want %d", len(re.Sections), len(man.Sections))
	}
	for i := range man.Sections {
		a, b := man.Sections[i], re.Sections[i]
		if a.Name != b.Name || len(a.Chunks) != len(b.Chunks) {
			t.Fatalf("section %d differs: %q/%d vs %q/%d", i, a.Name, len(a.Chunks), b.Name, len(b.Chunks))
		}
		for j := range a.Chunks {
			if a.Chunks[j] != b.Chunks[j] {
				t.Fatalf("chunk %d.%d differs", i, j)
			}
		}
	}
	// The placeholder sits right before the video section.
	if ph := man.Section(SectionManifest); ph == nil || len(ph.Chunks) != 0 {
		t.Fatal("manifest placeholder missing or non-empty")
	}
}

func TestManifestChunksTileSections(t *testing.T) {
	p, video := fixture(t)
	blob, _ := Build(p, video)
	man, err := ExtractManifest(blob)
	if err != nil {
		t.Fatal(err)
	}
	secs, _ := Sections(blob)
	for _, sc := range man.Sections {
		if sc.Name == SectionManifest {
			continue
		}
		loc, ok := secs[sc.Name]
		if !ok {
			t.Fatalf("manifest names unknown section %q", sc.Name)
		}
		if sc.PayloadSize() != loc[1] {
			t.Errorf("section %q: chunks sum to %d, payload is %d", sc.Name, sc.PayloadSize(), loc[1])
		}
		off := loc[0]
		for i, c := range sc.Chunks {
			if got := blobstore.Sum(blob[off : off+c.Size]); got != c.Hash {
				t.Errorf("section %q chunk %d hash mismatch", sc.Name, i)
			}
			off += c.Size
		}
	}
}

func TestManifestLayoutMatchesBlob(t *testing.T) {
	p, video := fixture(t)
	blob, _ := Build(p, video)
	man, _ := ExtractManifest(blob)
	locs, total := man.Layout()
	if total != len(blob) {
		t.Fatalf("layout total %d, blob is %d", total, len(blob))
	}
	secs, _ := Sections(blob)
	for _, loc := range locs {
		want := secs[loc.Name]
		if loc.Off != want[0] || loc.Size != want[1] {
			t.Errorf("section %q layout [%d,%d), blob has [%d,%d)", loc.Name, loc.Off, loc.Size, want[0], want[1])
		}
	}
}

func TestManifestAssembleBitIdentical(t *testing.T) {
	p, video := fixture(t)
	blob, _ := Build(p, video)
	man, _ := ExtractManifest(blob)
	store := storeFor(t, blob)
	re, err := man.Assemble(store.Get)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(blob) {
		t.Fatal("reassembled blob differs from original")
	}
	// Legacy blobs (no embedded manifest) reassemble bit-identically too.
	legacy := assemble([]section{
		{SectionProject, mustMarshal(t, p)},
		{SectionVideo, video},
	})
	lman, err := ManifestOf(legacy)
	if err != nil {
		t.Fatal(err)
	}
	lstore := storeFor(t, legacy)
	lre, err := lman.Assemble(lstore.Get)
	if err != nil {
		t.Fatal(err)
	}
	if string(lre) != string(legacy) {
		t.Fatal("reassembled legacy blob differs")
	}
}

func mustMarshal(t *testing.T, p *core.Project) []byte {
	t.Helper()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSharedSegmentsDedup is the dedup acceptance at the format level: two
// courses over the same footage produce byte-identical video chunks, and a
// shared film segment produces identical chunks even at different film
// positions (keyframe-aligned cuts).
func TestSharedSegmentsDedup(t *testing.T) {
	p, video := fixture(t)
	blobA, err := Build(p, video)
	if err != nil {
		t.Fatal(err)
	}
	q := core.NewProject("Same Footage, Other Course")
	q.Author = "tester2"
	q.StartScenario = "a"
	q.Scenarios = []*core.Scenario{{ID: "a", Name: "A", Segment: "shot-000-x"}}
	blobB, err := Build(q, video)
	if err != nil {
		t.Fatal(err)
	}
	manA, _ := ExtractManifest(blobA)
	manB, _ := ExtractManifest(blobB)
	av, bv := manA.Section(SectionVideo), manB.Section(SectionVideo)
	if len(av.Chunks) == 0 || len(av.Chunks) != len(bv.Chunks) {
		t.Fatalf("video chunk counts %d vs %d", len(av.Chunks), len(bv.Chunks))
	}
	for i := range av.Chunks {
		if av.Chunks[i] != bv.Chunks[i] {
			t.Fatalf("video chunk %d differs between identical-footage courses", i)
		}
	}
	// Store both packages: shared chunks are stored once, so the store
	// holds fewer bytes than the two packages sum to.
	store := storeFor(t, blobA, blobB)
	st := store.Stats()
	if st.StoredBytes >= int64(len(blobA)+len(blobB)) {
		t.Errorf("store holds %d bytes, packages sum to %d — no dedup", st.StoredBytes, len(blobA)+len(blobB))
	}
	if st.DedupHits == 0 {
		t.Error("no dedup hits storing identical-footage courses")
	}
}

// TestSegmentEditChangesOnlyItsChunks pins the delta-sync property: after
// re-recording one segment, the other segments' chunks are unchanged.
func TestSegmentEditChangesOnlyItsChunks(t *testing.T) {
	// Two films sharing an identical first shot; the second shot is edited.
	// Shots start on keyframes (GOP = shot length), so the first segment's
	// encoded bytes — and therefore its chunks — are identical.
	spec := synth.Spec{W: 48, H: 32, FPS: 8, Shots: 2, MinShotFrames: 8, MaxShotFrames: 8, Seed: 11, NoiseAmp: 1}
	filmA := synth.Generate(spec)
	filmB := synth.Generate(spec)
	filmB.Shots[1].Seed ^= 0xdeadbeef
	filmB.Shots[1].NoiseAmp += 2
	videoA, err := studio.Record(filmA, studio.Options{ShotMarkers: true, GOP: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	videoB, err := studio.Record(filmB, studio.Options{ShotMarkers: true, GOP: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	chunksA, err := chunkVideo(videoA, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	chunksB, err := chunkVideo(videoB, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	setA := map[blobstore.Hash]bool{}
	for _, c := range chunksA {
		setA[c.Hash] = true
	}
	shared := 0
	for _, c := range chunksB {
		if setA[c.Hash] {
			shared++
		}
	}
	// The first segment's chunks must be shared; the head (index changed)
	// and the edited segment must not.
	if shared == 0 {
		t.Fatalf("single-segment edit shares no chunks (%d vs %d)", len(chunksA), len(chunksB))
	}
	if shared == len(chunksB) {
		t.Fatal("edit changed nothing")
	}
}

// TestParseManifestCorrupt is the table-driven rejection suite: every
// malformed manifest must be rejected with ErrBadManifest.
func TestParseManifestCorrupt(t *testing.T) {
	p, video := fixture(t)
	blob, _ := Build(p, video)
	man, _ := ExtractManifest(blob)
	good := man.Encode()

	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", good[:3]},
		{"bad magic", mut(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"bad version", mut(func(b []byte) []byte { b[4] = 9; return b })},
		{"zero sections", append([]byte(manifestMagic), manifestVersion, 0)},
		{"huge section count", append([]byte(manifestMagic), manifestVersion, 200)},
		{"truncated mid-table", good[:len(good)/2]},
		{"truncated hash", good[:len(good)-1]},
		{"trailing bytes", append(append([]byte(nil), good...), 0xFF)},
		{"zero-length name", append([]byte(manifestMagic), manifestVersion, 1, 0)},
		{"huge name", append([]byte(manifestMagic), manifestVersion, 1, 0xFF, 0xFF, 0x03)},
		{"zero-size chunk", func() []byte {
			b := append([]byte(manifestMagic), manifestVersion, 1, 1, 'v', 1, 0)
			return b
		}()},
		{"duplicate section", func() []byte {
			m := &Manifest{Sections: []SectionChunks{{Name: "dup"}, {Name: "dup"}}}
			return m.Encode()
		}()},
		{"payload claim overflow", func() []byte {
			// Two max-size chunks: a tiny manifest must not be able to make
			// a client size an allocation beyond the format's payload bound.
			m := &Manifest{Sections: []SectionChunks{{Name: "video", Chunks: []ChunkRef{
				{Size: 1 << 31}, {Size: 1 << 31},
			}}}}
			return m.Encode()
		}()},
		{"overflow varint", append([]byte(manifestMagic), manifestVersion,
			0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := ParseManifest(tc.data)
			if err == nil {
				t.Fatalf("accepted: %+v", m)
			}
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("error does not wrap ErrBadManifest: %v", err)
			}
		})
	}
}

func TestExtractManifestMissing(t *testing.T) {
	p, video := fixture(t)
	projJSON := mustMarshal(t, p)
	legacy := assemble([]section{
		{SectionProject, projJSON},
		{SectionVideo, video},
	})
	if _, err := ExtractManifest(legacy); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("err = %v, want ErrNoManifest", err)
	}
	// Corrupt the embedded manifest payload: the section CRC catches it.
	blob, _ := Build(p, video)
	secs, _ := Sections(blob)
	loc := secs[SectionManifest]
	bad := append([]byte(nil), blob...)
	bad[loc[0]+loc[1]/2] ^= 0x20
	if _, err := ExtractManifest(bad); err == nil {
		t.Fatal("corrupt manifest section accepted")
	}
}

func TestChunkVideoAlignsToSegments(t *testing.T) {
	_, video := fixture(t)
	head, err := container.ParseHead(video)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := chunkVideo(video, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[int]bool{0: true}
	off := 0
	for _, c := range chunks {
		off += c.Size
		bounds[off] = true
	}
	for _, ch := range head.Chapters() {
		k, _ := head.KeyframeAtOrBefore(ch.Start)
		lo, _, _ := head.ByteRange(k, ch.End)
		if !bounds[lo] {
			t.Errorf("segment %q keyframe byte %d is not a chunk boundary", ch.Name, lo)
		}
	}
	total := 0
	for _, c := range chunks {
		total += c.Size
	}
	if total != len(video) {
		t.Errorf("chunks tile %d of %d bytes", total, len(video))
	}
}

// FuzzParseManifest: the parser must never panic and every rejection must
// wrap ErrBadManifest (mirroring container.FuzzParseHead).
func FuzzParseManifest(f *testing.F) {
	film := synth.Generate(synth.Spec{W: 32, H: 24, FPS: 8, Shots: 1, MinShotFrames: 4, MaxShotFrames: 4, Seed: 2})
	video, err := studio.Record(film, studio.Options{ShotMarkers: true, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	p := core.NewProject("Fuzz")
	p.StartScenario = "a"
	p.Scenarios = []*core.Scenario{{ID: "a", Name: "A", Segment: "shot-000-flat"}}
	blob, err := Build(p, video)
	if err != nil {
		f.Fatal(err)
	}
	man, err := ExtractManifest(blob)
	if err != nil {
		f.Fatal(err)
	}
	good := man.Encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(manifestMagic))
	f.Add(good[:len(good)/2])
	flip := append([]byte(nil), good...)
	flip[len(flip)/3] ^= 1
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("rejection does not wrap ErrBadManifest: %v", err)
			}
			if m != nil {
				t.Fatal("manifest returned alongside error")
			}
			return
		}
		// Accepted manifests must be internally consistent: re-encoding
		// and re-parsing reproduces them, and layout terminates.
		re, err := ParseManifest(m.Encode())
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(re.Sections) != len(m.Sections) {
			t.Fatal("round trip lost sections")
		}
		if _, total := m.Layout(); total <= 0 {
			t.Fatalf("layout total %d", total)
		}
	})
}
