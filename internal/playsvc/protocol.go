package playsvc

import (
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/runtime"
)

// Routes served by Manager.Handler. Mount the handler at "/play/" on a
// netstream.Server (or any mux).
const (
	CreatePath = "/play/create" // POST CreateRequest → Reply
	ActPath    = "/play/act"    // POST ActRequest → Reply
	StatePath  = "/play/state"  // GET ?session=&events=N&messages=N → Reply
	FramePath  = "/play/frame"  // GET ?session=&advance=N → raw RGB bytes
	StatsPath  = "/play/stats"  // GET → Stats
)

// Action kinds accepted by ActPath. "tick" advances playback; "leave"
// releases the session (the polite alternative to idle eviction).
const (
	ActClick   = "click"
	ActExamine = "examine"
	ActTalk    = "talk"
	ActTake    = "take"
	ActUse     = "use"
	ActSelect  = "select"
	ActClear   = "clear"
	ActQuiz    = "quiz"
	ActGoto    = "goto"
	ActTick    = "tick"
	ActLeave   = "leave"
)

// CreateRequest opens a server-hosted session on a published course.
type CreateRequest struct {
	Course string `json:"course"`
}

// ActRequest applies one interaction to a hosted session.
type ActRequest struct {
	Session string `json:"session"`
	Kind    string `json:"kind"`
	Object  string `json:"object,omitempty"` // examine/talk/take/use/goto target
	Item    string `json:"item,omitempty"`   // use/select item
	X       int    `json:"x,omitempty"`      // click coordinates
	Y       int    `json:"y,omitempty"`
	Quiz    string `json:"quiz,omitempty"` // quiz id being answered
	Choice  int    `json:"choice"`
	Ticks   int    `json:"ticks,omitempty"` // tick count (default 1)
	// SeenEvents and SeenMessages tell the server how much of the session's
	// event log and say-transcript the client already holds; the reply
	// carries only the tails beyond these counts. SeenEvents is also an
	// acknowledgment: the server releases the acked event prefix, so a
	// long-lived session retains only unacknowledged events.
	SeenEvents   int `json:"seen_events,omitempty"`
	SeenMessages int `json:"seen_messages,omitempty"`
}

// Reply is the server's view of a hosted session after an operation. State
// is a deep copy, and Events/Messages are the unseen tails, so a Reply is
// self-contained: it stays valid after the session moves on.
type Reply struct {
	Session string `json:"session"`
	Course  string `json:"course,omitempty"` // set on create
	Width   int    `json:"w,omitempty"`      // video metadata, set on create
	Height  int    `json:"h,omitempty"`
	FPS     int    `json:"fps,omitempty"`

	Tick         int             `json:"tick"`
	State        *core.State     `json:"state"`
	Events       []runtime.Event `json:"events,omitempty"`
	Messages     []string        `json:"messages,omitempty"`
	EventCount   int             `json:"event_count"`    // total events so far
	MessageCount int             `json:"message_count"`  // total messages so far
	Quiz         string          `json:"quiz,omitempty"` // pending quiz id

	Correct *bool `json:"correct,omitempty"` // quiz act result
	Took    *bool `json:"took,omitempty"`    // take act result
}

// Error is a protocol error carrying the HTTP status the handlers answer
// with (and that Client saw when the server produced it).
type Error struct {
	Status int
	Msg    string
}

// Error implements error.
func (e *Error) Error() string { return e.Msg }

func errf(status int, format string, args ...any) *Error {
	return &Error{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// httpStatus maps an error to a response code (500 for non-protocol errors).
func httpStatus(err error) int {
	if pe, ok := err.(*Error); ok {
		return pe.Status
	}
	return http.StatusInternalServerError
}
