// Streaming: publish a course over HTTP, open it progressively (metadata +
// start segment only), then pull further segments on demand — the paper's
// networked deployment (§2) with measured transfer costs.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/content"
	"repro/internal/media/studio"
	"repro/internal/netstream"
)

func main() {
	// Publish the museum course on a loopback server.
	blob, err := content.Museum().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		log.Fatal(err)
	}
	srv := netstream.NewServer()
	if err := srv.AddPackage("museum", blob); err != nil {
		log.Fatal(err)
	}
	srv.AddResource("generator", "VAN DE GRAAFF: AN ELECTROSTATIC GENERATOR")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d-byte package at %s/pkg/museum\n\n", len(blob), base)

	c := &netstream.Client{}

	// Strategy 1: classic full download.
	_, full, err := c.Download(base + "/pkg/museum")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full download:    %6d bytes, %d request(s), %v\n",
		full.BytesFetched, full.Requests, full.Elapsed)

	// Strategy 2: progressive start.
	g, prog, err := c.ProgressiveOpen(base + "/pkg/museum")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("progressive open: %6d bytes, %d request(s), %v (%.0f%% of full)\n",
		prog.BytesFetched, prog.Requests, prog.Elapsed,
		100*float64(prog.BytesFetched)/float64(full.BytesFetched))

	// The start segment is playable immediately.
	ch := g.Chapters()[0]
	f, err := g.FrameAt(ch.Start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst frame of %q decoded remotely: %dx%d\n", ch.Name, f.W, f.H)

	// Later segments stream on demand (e.g. when a goto approaches).
	for _, seg := range []string{"seg-corridor", "seg-lab"} {
		st, err := g.FetchSegment(seg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetched %-13s %6d bytes in %v\n", seg, st.BytesFetched, st.Elapsed)
	}

	// Popup web resources resolve over the same server.
	body, _, err := c.FetchResource(base + "/res/generator")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npopup web resource: %q\n", body)
}
