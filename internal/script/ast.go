package script

import "fmt"

// ValueKind tags a runtime value.
type ValueKind int

// Value kinds.
const (
	IntVal ValueKind = iota
	BoolVal
	StringVal
)

func (k ValueKind) String() string {
	switch k {
	case IntVal:
		return "int"
	case BoolVal:
		return "bool"
	case StringVal:
		return "string"
	}
	return "unknown"
}

// Value is a dynamically typed script value.
type Value struct {
	Kind ValueKind
	Int  int
	Bool bool
	Str  string
}

// IntV wraps an int.
func IntV(n int) Value { return Value{Kind: IntVal, Int: n} }

// BoolV wraps a bool.
func BoolV(b bool) Value { return Value{Kind: BoolVal, Bool: b} }

// StrV wraps a string.
func StrV(s string) Value { return Value{Kind: StringVal, Str: s} }

// String renders the value the way `say` prints it.
func (v Value) String() string {
	switch v.Kind {
	case IntVal:
		return fmt.Sprintf("%d", v.Int)
	case BoolVal:
		return fmt.Sprintf("%t", v.Bool)
	default:
		return v.Str
	}
}

// expr is an expression AST node.
type expr interface {
	pos() (int, int)
}

type intLit struct {
	v         int
	line, col int
}

type strLit struct {
	v         string
	line, col int
}

type boolLit struct {
	v         bool
	line, col int
}

type varRef struct {
	name      string
	line, col int
}

// callExpr covers the built-in predicates has("x") and flag("x").
type callExpr struct {
	fn        string
	arg       expr
	line, col int
}

type unaryExpr struct {
	op        tokenKind // tokNot or tokMinus
	operand   expr
	line, col int
}

type binaryExpr struct {
	op          tokenKind
	left, right expr
	line, col   int
}

func (e *intLit) pos() (int, int)     { return e.line, e.col }
func (e *strLit) pos() (int, int)     { return e.line, e.col }
func (e *boolLit) pos() (int, int)    { return e.line, e.col }
func (e *varRef) pos() (int, int)     { return e.line, e.col }
func (e *callExpr) pos() (int, int)   { return e.line, e.col }
func (e *unaryExpr) pos() (int, int)  { return e.line, e.col }
func (e *binaryExpr) pos() (int, int) { return e.line, e.col }

// stmt is a statement AST node.
type stmt interface {
	stmtPos() (int, int)
}

// actionStmt covers all single-argument effect statements: say, give, take,
// goto, reward, learn, enable, disable, show, hide, end, open.
type actionStmt struct {
	verb      string
	arg       expr
	line, col int
}

// popupStmt is `popup KIND CONTENT;`.
type popupStmt struct {
	kind, content expr
	line, col     int
}

// setStmt is `set name = expr;`.
type setStmt struct {
	name      string
	value     expr
	line, col int
}

// setFlagStmt is `setflag name expr;`.
type setFlagStmt struct {
	name      string
	value     expr
	line, col int
}

// ifStmt is `if expr { ... } [else { ... }]` (else-if via nesting).
type ifStmt struct {
	cond      expr
	then, els []stmt
	line, col int
}

func (s *actionStmt) stmtPos() (int, int)  { return s.line, s.col }
func (s *popupStmt) stmtPos() (int, int)   { return s.line, s.col }
func (s *setStmt) stmtPos() (int, int)     { return s.line, s.col }
func (s *setFlagStmt) stmtPos() (int, int) { return s.line, s.col }
func (s *ifStmt) stmtPos() (int, int)      { return s.line, s.col }
