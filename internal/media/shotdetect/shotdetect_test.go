package shotdetect

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/media/raster"
	"repro/internal/media/synth"
)

func filmSource(f *synth.Film) Source {
	return FuncSource{N: f.FrameCount(), F: func(i int) (*raster.Frame, error) {
		return f.Render(i), nil
	}}
}

func hardCutFilm(seed int64, shots int) *synth.Film {
	return synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 12,
		Shots:         shots,
		MinShotFrames: 14, MaxShotFrames: 26,
		FadeFraction: 0, NoiseAmp: 2, Seed: seed,
	})
}

func truthFrames(f *synth.Film) []int {
	var ts []int
	for _, c := range f.Cuts() {
		ts = append(ts, c.Frame)
	}
	return ts
}

func TestDetectHardCutsPerfectly(t *testing.T) {
	film := hardCutFilm(21, 8)
	cfg := Defaults()
	cfg.Workers = 2
	bs, err := Detect(filmSource(film), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := Score(bs, truthFrames(film), 2)
	if m.F1 < 0.99 {
		t.Errorf("hard-cut F1 = %.3f (P=%.2f R=%.2f), want ~1.0; detected %d of %d",
			m.F1, m.Precision, m.Recall, len(bs), len(film.Cuts()))
	}
}

func TestDetectAcrossSeeds(t *testing.T) {
	// Aggregate quality across several random films.
	var tp, fp, fn int
	for seed := int64(1); seed <= 5; seed++ {
		film := hardCutFilm(seed*100, 6)
		bs, err := Detect(filmSource(film), Defaults())
		if err != nil {
			t.Fatal(err)
		}
		m := Score(bs, truthFrames(film), 2)
		tp += m.TP
		fp += m.FP
		fn += m.FN
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	if prec < 0.9 || rec < 0.9 {
		t.Errorf("aggregate precision %.2f recall %.2f below 0.9", prec, rec)
	}
}

func TestDetectFades(t *testing.T) {
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 12,
		Shots:         6,
		MinShotFrames: 20, MaxShotFrames: 30,
		FadeFraction: 1.0, FadeFrames: 8,
		NoiseAmp: 1, Seed: 77,
	})
	bs, err := Detect(filmSource(film), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// Fades are harder: allow a loose tolerance (half the fade span + twin
	// radius) and require decent recall.
	m := Score(bs, truthFrames(film), 10)
	if m.Recall < 0.6 {
		t.Errorf("fade recall = %.2f, want >= 0.6 (found %d boundaries for %d cuts)",
			m.Recall, len(bs), len(film.Cuts()))
	}
	// At least one detection should be flagged gradual.
	anyGradual := false
	for _, b := range bs {
		if b.Gradual {
			anyGradual = true
		}
	}
	if !anyGradual {
		t.Error("no boundary flagged as gradual in an all-fade film")
	}
}

func TestNoFalseCutsOnSingleShot(t *testing.T) {
	film := synth.NewFilm(96, 64, 12, []synth.Shot{
		{Scene: synth.Street, Frames: 120, PanSpeed: 0.4, NoiseAmp: 3, Seed: 3,
			Actors: []synth.Actor{{Tunic: raster.Red, StartX: 10, Speed: 1.2}}},
	})
	bs, err := Detect(filmSource(film), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Errorf("detected %d boundaries in a single continuous shot: %+v", len(bs), bs)
	}
}

func TestWorkerCountDoesNotChangeResult(t *testing.T) {
	film := hardCutFilm(5, 5)
	cfg1 := Defaults()
	cfg1.Workers = 1
	cfg4 := Defaults()
	cfg4.Workers = 4
	b1, err1 := Detect(filmSource(film), cfg1)
	b4, err4 := Detect(filmSource(film), cfg4)
	if err1 != nil || err4 != nil {
		t.Fatal(err1, err4)
	}
	if len(b1) != len(b4) {
		t.Fatalf("worker counts disagree: %d vs %d boundaries", len(b1), len(b4))
	}
	for i := range b1 {
		if b1[i] != b4[i] {
			t.Fatalf("boundary %d differs: %+v vs %+v", i, b1[i], b4[i])
		}
	}
}

func TestDetectPropagatesSourceError(t *testing.T) {
	boom := errors.New("disk on fire")
	src := FuncSource{N: 10, F: func(i int) (*raster.Frame, error) {
		if i == 7 {
			return nil, boom
		}
		return raster.New(8, 8), nil
	}}
	if _, err := Detect(src, Defaults()); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestDetectTinySources(t *testing.T) {
	src := FuncSource{N: 1, F: func(i int) (*raster.Frame, error) { return raster.New(8, 8), nil }}
	bs, err := Detect(src, Defaults())
	if err != nil || bs != nil {
		t.Errorf("single frame: %v, %v", bs, err)
	}
	src.N = 0
	bs, err = Detect(src, Defaults())
	if err != nil || bs != nil {
		t.Errorf("empty source: %v, %v", bs, err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.HardThreshold = 0 },
		func(c *Config) { c.GradualThreshold = -1 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.TwinRadius = 0 },
		func(c *Config) { c.MinSceneFrames = 0 },
		func(c *Config) { c.Downsample = 0 },
	}
	src := FuncSource{N: 5, F: func(i int) (*raster.Frame, error) { return raster.New(8, 8), nil }}
	for i, mutate := range bad {
		cfg := Defaults()
		mutate(&cfg)
		if _, err := Detect(src, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestScoreMatching(t *testing.T) {
	det := []Boundary{{Frame: 10}, {Frame: 30}, {Frame: 52}}
	truth := []int{11, 30, 70}
	m := Score(det, truth, 2)
	if m.TP != 2 || m.FP != 1 || m.FN != 1 {
		t.Errorf("TP/FP/FN = %d/%d/%d, want 2/1/1", m.TP, m.FP, m.FN)
	}
	if m.Precision <= 0.66 || m.Precision >= 0.67 {
		t.Errorf("precision = %f", m.Precision)
	}
	// One truth can't consume two detections.
	m2 := Score([]Boundary{{Frame: 9}, {Frame: 11}}, []int{10}, 2)
	if m2.TP != 1 || m2.FP != 1 {
		t.Errorf("double match: %+v", m2)
	}
	// Empty cases.
	z := Score(nil, nil, 2)
	if z.F1 != 0 || z.Precision != 0 {
		t.Errorf("empty score = %+v", z)
	}
}

func TestSegmentsFromBoundaries(t *testing.T) {
	bs := []Boundary{{Frame: 10}, {Frame: 25}}
	segs := SegmentsFromBoundaries(bs, 40)
	want := []Segment{{0, 10}, {10, 25}, {25, 40}}
	if len(segs) != len(want) {
		t.Fatalf("segments = %+v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
	// Boundaries out of range are dropped; coverage is preserved.
	segs = SegmentsFromBoundaries([]Boundary{{Frame: -3}, {Frame: 0}, {Frame: 100}}, 40)
	if len(segs) != 1 || segs[0] != (Segment{0, 40}) {
		t.Errorf("degenerate boundaries mishandled: %+v", segs)
	}
	if SegmentsFromBoundaries(nil, 0) != nil {
		t.Error("zero frames should give nil segments")
	}
}

func TestDedupeKeepsStronger(t *testing.T) {
	bs := dedupe([]Boundary{
		{Frame: 10, Score: 0.5},
		{Frame: 12, Score: 0.9},
		{Frame: 40, Score: 0.4},
	}, 8)
	if len(bs) != 2 {
		t.Fatalf("dedupe kept %d, want 2", len(bs))
	}
	if bs[0].Frame != 12 || bs[0].Score != 0.9 {
		t.Errorf("dedupe kept weaker boundary: %+v", bs[0])
	}
}

func TestSerializedSourceClonesAndSerializes(t *testing.T) {
	// The fetch callback stands in for playback.FrameAt: single-goroutine
	// only, and it recycles one shared frame. SerializedSource must level
	// that into a concurrency-safe source handing out stable copies.
	shared := raster.New(4, 4)
	calls := 0 // would trip the race detector if fetches overlapped
	src := SerializedSource(32, func(i int) (*raster.Frame, error) {
		calls++
		shared.Fill(raster.RGB{R: uint8(i)})
		return shared, nil
	})
	if src.Frames() != 32 {
		t.Fatalf("Frames() = %d, want 32", src.Frames())
	}
	frames := make([]*raster.Frame, src.Frames())
	var wg sync.WaitGroup
	for i := range frames {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := src.Frame(i)
			if err != nil {
				t.Error(err)
				return
			}
			frames[i] = f
		}(i)
	}
	wg.Wait()
	if calls != len(frames) {
		t.Fatalf("fetch called %d times, want %d", calls, len(frames))
	}
	for i, f := range frames {
		if f == shared {
			t.Fatal("SerializedSource returned the recycled frame, not a clone")
		}
		if f.Pix[0] != uint8(i) {
			t.Fatalf("frame %d holds pixels from a later fetch (R=%d)", i, f.Pix[0])
		}
	}
}
