// Cluster: an in-process multi-node play service.
//
// Cluster owns N backend nodes — each a stock play-service Manager behind
// its own HTTP listener, exactly what `vgbl-server` runs — plus the
// Gateway that routes across them. All nodes share one content-addressed
// chunk store and one snapshot directory, which is the entire
// coordination surface: session handoff is freeze-to-store on one node
// and thaw-from-store on another.
//
// It backs `vgbl-server -cluster N`, the churn experiment (E14) and the
// TestClusterChurnResume scale gate. A multi-host deployment would run
// the same node binary per machine with a Disk-backed store and a shared
// SnapshotDir implementation; the lifecycle below is the single-process
// equivalent.
package playsvc

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/blobstore"
	"repro/internal/gamepack"
	"repro/internal/obs"
)

// ClusterOptions configures a Cluster.
type ClusterOptions struct {
	// Store is the shared chunk store (courses and snapshots). Defaults
	// to a fresh in-memory store.
	Store *blobstore.Store
	// Dir is the shared snapshot directory. Defaults to a fresh MemDir.
	Dir SnapshotDir
	// Node is the per-node Manager template; Store and Dir are overridden
	// with the shared ones.
	Node Options
	// HTTP is the gateway's transport (defaults to a pooled client
	// sized for gateway fan-in; tests inject fault transports here).
	HTTP *http.Client
}

// ClusterNode is one running backend.
type ClusterNode struct {
	Name    string
	URL     string
	Manager *Manager
	// Registry is the node's metric namespace, served at <URL>/metrics
	// (Prometheus text; ?format=json for the structured snapshot).
	Registry *obs.Registry
	srv      *http.Server
	ln       net.Listener
}

// publishedCourse remembers a course so nodes started later host it too.
type publishedCourse struct {
	name     string
	blob     []byte
	manifest *gamepack.Manifest
}

// Cluster manages node lifecycle around a Gateway.
type Cluster struct {
	opts  ClusterOptions
	store *blobstore.Store
	dir   SnapshotDir
	gw    *Gateway

	mu      sync.Mutex
	nodes   map[string]*ClusterNode
	courses []publishedCourse
	seq     int
}

// NewCluster builds an empty cluster; add nodes with StartNode.
func NewCluster(o ClusterOptions) (*Cluster, error) {
	if o.Store == nil {
		st, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
		if err != nil {
			return nil, err
		}
		o.Store = st
	}
	if o.Dir == nil {
		o.Dir = NewMemDir()
	}
	return &Cluster{
		opts:  o,
		store: o.Store,
		dir:   o.Dir,
		gw:    NewGateway(o.HTTP),
		nodes: map[string]*ClusterNode{},
	}, nil
}

// Gateway returns the routing front the clients point at.
func (c *Cluster) Gateway() *Gateway { return c.gw }

// Store returns the shared chunk store.
func (c *Cluster) Store() *blobstore.Store { return c.store }

// Dir returns the shared snapshot directory.
func (c *Cluster) Dir() SnapshotDir { return c.dir }

// AddCourse publishes a package blob on every current and future node.
func (c *Cluster) AddCourse(name string, blob []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if err := n.Manager.AddCourse(name, blob); err != nil {
			return err
		}
	}
	c.courses = append(c.courses, publishedCourse{name: name, blob: blob})
	return nil
}

// AddManifest publishes a store-resident course (its chunks must already
// be deposited in the shared store) on every current and future node.
func (c *Cluster) AddManifest(name string, man *gamepack.Manifest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if err := n.Manager.AddCourseFromManifest(name, man); err != nil {
			return err
		}
	}
	c.courses = append(c.courses, publishedCourse{name: name, manifest: man})
	return nil
}

// StartNode brings up one backend: a Manager over the shared store and
// directory, hosting every published course, serving /play/* on its own
// loopback listener, registered with the gateway. Sessions whose ring
// owner moves onto the new node migrate lazily on their next request.
func (c *Cluster) StartNode() (*ClusterNode, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	name := fmt.Sprintf("node-%d", c.seq)
	nodeOpts := c.opts.Node
	nodeOpts.Store = c.store
	nodeOpts.Dir = c.dir
	nodeOpts.Node = name
	mgr := NewManager(nodeOpts)
	for _, course := range c.courses {
		var err error
		if course.manifest != nil {
			err = mgr.AddCourseFromManifest(course.name, course.manifest)
		} else {
			err = mgr.AddCourse(course.name, course.blob)
		}
		if err != nil {
			mgr.Close()
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		return nil, err
	}
	// Each node is its own scrape target: play-service counters plus the
	// shared store's (every node reports the same store totals — it is
	// one store), a span ring, and a readiness payload.
	reg := obs.NewRegistry("vgbl")
	mgr.Register(reg)
	c.store.Register(reg)
	health := obs.NewHealth().
		Set("node", func() any { return name }).
		Set("sessions_live", func() any { return mgr.Live() })
	mux := http.NewServeMux()
	mux.Handle("/play/", mgr.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", mgr.Ring().Handler())
	mux.Handle("/healthz", health)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	n := &ClusterNode{
		Name:     name,
		URL:      "http://" + ln.Addr().String(),
		Manager:  mgr,
		Registry: reg,
		srv:      srv,
		ln:       ln,
	}
	if err := c.gw.AddNode(name, n.URL); err != nil {
		srv.Close()
		mgr.Close()
		return nil, err
	}
	c.nodes[name] = n
	return n, nil
}

// node looks a backend up and removes it from the table.
func (c *Cluster) take(name string) (*ClusterNode, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[name]
	if n == nil {
		return nil, fmt.Errorf("playsvc: cluster has no node %q", name)
	}
	delete(c.nodes, name)
	return n, nil
}

// StopNode removes a backend gracefully: it leaves the ring, every hosted
// session freezes into the shared store (zero loss), in-flight requests
// finish, then the listener closes and the manager shuts down.
func (c *Cluster) StopNode(name string) error {
	n, err := c.take(name)
	if err != nil {
		return err
	}
	drainErr := c.gw.RemoveNode(name, true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
	n.Manager.Close()
	return drainErr
}

// KillNode simulates a crash: the listener dies first, nothing is
// drained, and the manager's sessions are discarded without snapshots.
// Whatever the periodic checkpointer last persisted is all that survives
// — the -checkpoint-every loss bound, for real.
func (c *Cluster) KillNode(name string) error {
	n, err := c.take(name)
	if err != nil {
		return err
	}
	n.srv.Close()
	c.gw.RemoveNode(name, false)
	n.Manager.Halt()
	return nil
}

// NodeNames lists the running backends.
func (c *Cluster) NodeNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		out = append(out, name)
	}
	return out
}

// Node returns a running backend by name (nil when absent).
func (c *Cluster) Node(name string) *ClusterNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// Close stops every node gracefully.
func (c *Cluster) Close() {
	c.mu.Lock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	c.mu.Unlock()
	for _, name := range names {
		c.StopNode(name)
	}
}
