// Package baseline implements the comparators the experiments measure the
// IVGBL platform against:
//
//   - LinearLesson: the traditional linear-video lesson (no interactivity),
//     the "traditional e-learning" foil of claim C3/E6.
//   - UnindexedSeek: scenario switching without the container's frame
//     index — decode-from-zero, the pre-interactive-video behavior (E2).
//   - HandCodedEffort: an explicit cost model for building the same game
//     without the authoring tool (claim C1/E4).
//   - ProductionCost: the video-vs-3D scenario production model behind the
//     paper's conclusion that filmed segments are the cheaper way to
//     produce scenarios (claim C2/E5).
//
// The effort/cost models are models, not measurements: their constants are
// stated here and printed with every report so the *shape* of the
// comparison is reproducible and auditable.
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/vcodec"
	"repro/internal/script"
)

// LessonReport summarizes what a passive, linear viewing of the course
// footage delivers.
type LessonReport struct {
	DurationFrames int
	Decisions      int      // always 0: linear video offers none
	Knowledge      []string // units delivered passively
}

// LinearLesson models the traditional lesson: the student watches every
// segment once, in order, making no decisions. Knowledge attached to
// scenario entry (narration that plays regardless of interaction) is
// delivered; knowledge gated behind examining, taking, or using objects is
// not — that is precisely the mechanism the paper claims for game-based
// delivery.
func LinearLesson(p *core.Project, totalFrames int) LessonReport {
	rep := LessonReport{DurationFrames: totalFrames}
	seen := map[string]bool{}
	for _, s := range p.Scenarios {
		if s.OnEnter == "" {
			continue
		}
		prog, err := script.Compile(s.OnEnter)
		if err != nil {
			continue
		}
		for _, unit := range prog.LiteralArgs("learn") {
			if !seen[unit] {
				seen[unit] = true
				rep.Knowledge = append(rep.Knowledge, unit)
			}
		}
	}
	return rep
}

// InteractiveKnowledgeCeiling counts every knowledge unit reachable through
// interaction — the upper bound an engaged player can collect.
func InteractiveKnowledgeCeiling(p *core.Project) int {
	seen := map[string]bool{}
	collect := func(src string) {
		prog, err := script.Compile(src)
		if err != nil {
			return
		}
		for _, u := range prog.LiteralArgs("learn") {
			seen[u] = true
		}
	}
	for _, s := range p.Scenarios {
		if s.OnEnter != "" {
			collect(s.OnEnter)
		}
		for _, o := range s.Objects {
			for _, e := range o.Events {
				collect(e.Script)
			}
		}
	}
	return len(seen)
}

// UnindexedSeek decodes frame target starting from frame zero, ignoring the
// container's keyframe index — the linear-scan baseline for experiment E2.
// It returns the decoded frame and the number of frames decoded.
func UnindexedSeek(blob []byte, target int) (*raster.Frame, int, error) {
	r, err := container.Open(blob)
	if err != nil {
		return nil, 0, err
	}
	if target < 0 || target >= r.Meta().FrameCount {
		return nil, 0, fmt.Errorf("baseline: frame %d out of range", target)
	}
	dec := vcodec.NewDecoder(1)
	var out *raster.Frame
	decoded := 0
	for i := 0; i <= target; i++ {
		data, _, err := r.PacketAt(i)
		if err != nil {
			return nil, decoded, err
		}
		f, err := dec.Decode(data)
		if err != nil {
			return nil, decoded, err
		}
		out = f
		decoded++
	}
	return out, decoded, nil
}

// EffortModel holds the unit costs (in "effort units"; calibrate 1 unit ≈
// one minute of practitioner work) for building a game by hand versus with
// the authoring tool. Constants are deliberately conservative toward the
// hand-coded side: they assume an experienced programmer with a working
// media stack already available.
type EffortModel struct {
	// Hand-coding costs.
	HandVideoPipeline  int // one-time: wire decoding/display by hand
	HandPerScenario    int // scene switching, state wiring
	HandPerObject      int // sprite, hit testing, state
	HandPerEvent       int // handler code, conditions, feedback
	HandPerDialogue    int // conversation plumbing per line
	HandPerCatalogItem int // item/knowledge/mission bookkeeping

	// Tool costs.
	ToolPerOperation int // one editor action (click/drag/field edit)
}

// DefaultEffortModel is the model used by experiment E4.
func DefaultEffortModel() EffortModel {
	return EffortModel{
		HandVideoPipeline:  240,
		HandPerScenario:    30,
		HandPerObject:      20,
		HandPerEvent:       25,
		HandPerDialogue:    4,
		HandPerCatalogItem: 6,
		ToolPerOperation:   1,
	}
}

// EffortReport compares authoring effort for one project.
type EffortReport struct {
	Scenarios, Objects, Events, DialogueLines, CatalogEntries int

	HandUnits int // modeled hand-coding effort
	ToolOps   int // measured tool operations
	ToolUnits int // ToolOps × ToolPerOperation
	Ratio     float64
}

// Effort applies the model to a project built with toolOps primitive
// authoring operations.
func (m EffortModel) Effort(p *core.Project, toolOps int) EffortReport {
	var rep EffortReport
	rep.Scenarios = len(p.Scenarios)
	for _, s := range p.Scenarios {
		rep.Objects += len(s.Objects)
		for _, o := range s.Objects {
			rep.Events += len(o.Events)
			rep.DialogueLines += len(o.Dialogue)
		}
		if s.OnEnter != "" {
			rep.Events++
		}
	}
	rep.CatalogEntries = len(p.Items) + len(p.Knowledge) + len(p.Missions)
	rep.HandUnits = m.HandVideoPipeline +
		rep.Scenarios*m.HandPerScenario +
		rep.Objects*m.HandPerObject +
		rep.Events*m.HandPerEvent +
		rep.DialogueLines*m.HandPerDialogue +
		rep.CatalogEntries*m.HandPerCatalogItem
	rep.ToolOps = toolOps
	rep.ToolUnits = toolOps * m.ToolPerOperation
	if rep.ToolUnits > 0 {
		rep.Ratio = float64(rep.HandUnits) / float64(rep.ToolUnits)
	}
	return rep
}

// ProductionModel prices scenario production (claim C2). Units are
// person-hours per scenario component.
type ProductionModel struct {
	// Filmed video scenarios.
	VideoShootFixed      float64 // location/equipment setup per shoot day
	VideoShootPerScene   float64 // shooting one scene
	VideoSegmentPerScene float64 // segmenting/importing (tool-assisted)

	// Hand-built 3D scenarios.
	ThreeDModelPerScene   float64 // geometry
	ThreeDTexturePerScene float64 // materials/lighting
	ThreeDScriptPerScene  float64 // camera paths, colliders
	ThreeDToolchainFixed  float64 // engine/toolchain setup
}

// DefaultProductionModel returns the constants used by experiment E5.
func DefaultProductionModel() ProductionModel {
	return ProductionModel{
		VideoShootFixed:       8,
		VideoShootPerScene:    1.5,
		VideoSegmentPerScene:  0.25,
		ThreeDModelPerScene:   12,
		ThreeDTexturePerScene: 6,
		ThreeDScriptPerScene:  4,
		ThreeDToolchainFixed:  16,
	}
}

// CostPoint is one row of the E5 sweep.
type CostPoint struct {
	Scenes     int
	VideoHours float64
	ThreeHours float64
	Ratio      float64 // 3D / video
}

// Sweep prices course production for each scene count.
func (m ProductionModel) Sweep(sceneCounts []int) []CostPoint {
	out := make([]CostPoint, 0, len(sceneCounts))
	for _, n := range sceneCounts {
		v := m.VideoShootFixed + float64(n)*(m.VideoShootPerScene+m.VideoSegmentPerScene)
		d := m.ThreeDToolchainFixed + float64(n)*(m.ThreeDModelPerScene+m.ThreeDTexturePerScene+m.ThreeDScriptPerScene)
		out = append(out, CostPoint{Scenes: n, VideoHours: v, ThreeHours: d, Ratio: d / v})
	}
	return out
}
