package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrency hammers one histogram from N writers and
// checks the merged snapshot is exact — run under -race in CI, this is
// the data-race and lost-update guard for the hot-path instrument.
func TestHistogramConcurrency(t *testing.T) {
	h := NewHistogram(LatencyBounds)
	const writers = 8
	const perWriter = 20000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for i := 0; i < perWriter; i++ {
				// A deterministic LCG spreads observations over buckets.
				v = v*6364136223846793005 + 1442695040888963407
				x := v % 10_000_000_000
				if x < 0 {
					x = -x
				}
				h.Observe(x)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	s := h.Snapshot()
	if want := int64(writers * perWriter); s.Count != want {
		t.Fatalf("merged count = %d, want %d", s.Count, want)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for v := int64(1); v <= 10; v++ {
		h.Observe(v) // all land in bucket 0 (≤10)
	}
	h.Observe(50)    // bucket 1
	h.Observe(5000)  // +Inf bucket
	h.Observe(10000) // +Inf bucket
	s := h.Snapshot()
	if got := s.Counts[0]; got != 10 {
		t.Fatalf("bucket ≤10 = %d, want 10", got)
	}
	if got := s.Counts[1]; got != 1 {
		t.Fatalf("bucket ≤100 = %d, want 1", got)
	}
	if got := s.Counts[3]; got != 2 {
		t.Fatalf("+Inf bucket = %d, want 2", got)
	}
	if s.Count != 13 {
		t.Fatalf("count = %d, want 13", s.Count)
	}
	// Median of 13 observations sits in the first bucket.
	if q := s.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("p50 = %d, want in (0,10]", q)
	}
	// Tail quantiles clamp to the largest finite bound for +Inf residents.
	if q := s.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000 (largest finite bound)", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]int64{10, 100})
	b := NewHistogram([]int64{10, 100})
	a.Observe(5)
	b.Observe(50)
	b.Observe(500)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Counts[0] != 1 || sa.Counts[1] != 1 || sa.Counts[2] != 1 {
		t.Fatalf("merge mismatch: %+v", sa)
	}
	if sa.Sum != 555 {
		t.Fatalf("merged sum = %d, want 555", sa.Sum)
	}
	// Mismatched bounds must be a no-op, not a panic or corruption.
	other := NewHistogram([]int64{1}).Snapshot()
	before := sa.Count
	sa.Merge(other)
	if sa.Count != before {
		t.Fatalf("mismatched-bounds merge changed count")
	}
}

func TestRegistryPrometheusAndJSON(t *testing.T) {
	r := NewRegistry("vgbl")
	c := r.Counter("widgets_total", "widgets made")
	c.Add(3)
	g := r.Gauge("queue_depth", "items queued")
	g.Set(7)
	r.CounterFunc("sourced_total", "from a closure", func() int64 { return 42 })
	h := r.Histogram("op_seconds", "op latency", "seconds", []int64{1_000_000, 1_000_000_000}, L("path", "act"))
	h.Observe(500_000)     // 0.5ms
	h.Observe(2_000_000)   // 2ms
	h.Observe(5_000_000_0) // 50ms → +Inf? no: ≤1s bucket

	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE vgbl_widgets_total counter",
		"vgbl_widgets_total 3",
		"# TYPE vgbl_queue_depth gauge",
		"vgbl_queue_depth 7",
		"vgbl_sourced_total 42",
		"# TYPE vgbl_op_seconds histogram",
		`vgbl_op_seconds_bucket{path="act",le="0.001"} 1`,
		`vgbl_op_seconds_bucket{path="act",le="1"} 3`,
		`vgbl_op_seconds_bucket{path="act",le="+Inf"} 3`,
		`vgbl_op_seconds_count{path="act"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}

	// The JSON form round-trips through the scrape-side decoder.
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	m := snap.Metric("vgbl_op_seconds")
	if m == nil || len(m.Series) != 1 || m.Series[0].Histogram == nil {
		t.Fatalf("json snapshot lacks the histogram: %+v", snap)
	}
	if m.Series[0].Histogram.Count != 3 {
		t.Fatalf("histogram count over json = %d, want 3", m.Series[0].Histogram.Count)
	}
	if m.Series[0].Labels["path"] != "act" {
		t.Fatalf("labels lost over json: %+v", m.Series[0].Labels)
	}
	if wt := snap.Metric("vgbl_widgets_total"); wt == nil || wt.Series[0].Value == nil || *wt.Series[0].Value != 3 {
		t.Fatalf("counter lost over json")
	}
}

func TestRegistryReregistration(t *testing.T) {
	r := NewRegistry("vgbl")
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatalf("re-registering the same counter must return the same instrument")
	}
	h1 := r.Histogram("h_seconds", "h", "seconds", nil, L("tier", "hot"))
	h2 := r.Histogram("h_seconds", "h", "seconds", nil, L("tier", "cold"))
	if h1 == h2 {
		t.Fatalf("distinct label sets must get distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind conflict must panic")
		}
	}()
	r.Gauge("x_total", "now a gauge?!")
}

func TestTraceContext(t *testing.T) {
	tc := NewTrace()
	if !tc.Valid() || tc.Trace == "" || tc.Span == "" || tc.Parent != "" {
		t.Fatalf("bad root context: %+v", tc)
	}
	child := tc.Child()
	if child.Trace != tc.Trace || child.Parent != tc.Span || child.Span == tc.Span {
		t.Fatalf("bad child derivation: %+v from %+v", child, tc)
	}
	round, ok := ParseTrace(child.String())
	if !ok || round != child {
		t.Fatalf("header round-trip: %+v → %q → %+v", child, child.String(), round)
	}
	if (TraceContext{}).Child().Valid() {
		t.Fatalf("child of the zero context must stay invalid")
	}
	for _, bad := range []string{"", "/", "a", "//b", "a/b/c/d"} {
		if _, ok := ParseTrace(bad); ok {
			t.Fatalf("ParseTrace(%q) accepted garbage", bad)
		}
	}
}

func TestSpanRing(t *testing.T) {
	ring := NewSpanRing("node-1", 4)
	tc := NewTrace()
	other := NewTrace()
	base := time.Now()
	ring.Record(tc, "a", base, nil)
	ring.Record(other, "b", base, errors.New("boom"))
	ring.Record(tc.Child(), "c", base, nil)
	// An invalid context must be dropped, not recorded.
	ring.Record(TraceContext{}, "ghost", base, nil)
	if got := len(ring.Spans("", 0)); got != 3 {
		t.Fatalf("retained %d spans, want 3", got)
	}
	mine := ring.Spans(tc.Trace, 0)
	if len(mine) != 2 {
		t.Fatalf("trace filter kept %d spans, want 2", len(mine))
	}
	if mine[0].Name != "c" || mine[1].Name != "a" {
		t.Fatalf("spans not newest-first: %v", []string{mine[0].Name, mine[1].Name})
	}
	if mine[0].Node != "node-1" {
		t.Fatalf("span missing node stamp")
	}
	// Overflow: the ring keeps the newest `capacity` spans.
	for i := 0; i < 10; i++ {
		ring.Record(other, "fill", base, nil)
	}
	if got := len(ring.Spans("", 0)); got != 4 {
		t.Fatalf("ring retained %d spans after overflow, want 4", got)
	}
	if ring.Total() != 13 {
		t.Fatalf("total = %d, want 13", ring.Total())
	}
}

func TestHealthHandler(t *testing.T) {
	h := NewHealth().
		Set("pending", func() any { return 5 }).
		Set("queue_saturation", func() any { return 0.25 })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var got struct {
		Status          string  `json:"status"`
		UptimeSeconds   float64 `json:"uptime_seconds"`
		Pending         int     `json:"pending"`
		QueueSaturation float64 `json:"queue_saturation"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("health payload is not JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Status != "ok" || got.Pending != 5 || got.QueueSaturation != 0.25 {
		t.Fatalf("bad health payload: %s", rec.Body.String())
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram(LatencyBounds)
	c := NewCounter()
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		c.Inc()
	}); n != 0 {
		t.Fatalf("Observe+Inc allocated %.1f/op, want 0", n)
	}
	s := NewSampler(64)
	if n := testing.AllocsPerRun(1000, func() { s.Tick() }); n != 0 {
		t.Fatalf("Sampler.Tick allocated %.1f/op, want 0", n)
	}
}
