// The cluster gateway: one play service spread over N backend nodes.
//
// Gateway is a thin HTTP router in front of stock play-service nodes. It
// speaks the exact /play/* protocol, so clients (and the whole learner
// fleet) point at it unchanged. Session ids are assigned by the gateway
// and routed by consistent hashing, so each session has one owner node
// and adding or removing a node moves only ~1/N of the id space.
//
// Durability is what makes the routing safe to change: all nodes share
// one content-addressed chunk store and one snapshot directory. When a
// node is removed gracefully the gateway drains it (every hosted session
// freezes into the store); when ownership moves — a drain, a node
// addition, or a crash — the next request for a stray session triggers a
// rescue: the gateway asks the other nodes to hand the session off
// (freeze it), then retries the new owner, which thaws the snapshot and
// carries on. A well-behaved client never notices; at worst a crashed
// node loses the acts since its last checkpoint.
package playsvc

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
)

// vnodes is how many ring points each node gets; more points spread the
// id space more evenly at the cost of a larger (still tiny) ring.
const vnodes = 256

// maxProxyBody bounds a relayed response (the largest is a raw RGB frame).
const maxProxyBody = 64 << 20

// hopTimeout bounds one gateway→node request: a stalled node must not
// hold a routed call (and its client) hostage.
const hopTimeout = 10 * time.Second

// deadNodeLimit is how many consecutive transport failures it takes for
// the gateway to remove a node from the ring outright. Short failure
// runs open the node's circuit breaker (traffic routes around it, probes
// keep checking); only a node that stays dead this long is dropped.
const deadNodeLimit = 32

// gwNode is one backend node the gateway routes to.
type gwNode struct {
	name string
	url  string // base URL, e.g. http://127.0.0.1:43211
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash uint32
	node int // index into Gateway.nodes
}

// Gateway fans the play-service protocol out across backend nodes. All
// methods are safe for concurrent use.
type Gateway struct {
	httpc *http.Client

	mu       sync.RWMutex
	nodes    []gwNode
	ring     []ringPoint
	sessions map[string]bool // gateway-assigned ids still believed live
	// draining nodes are out of the ring (no new routes) but still
	// serving while their sessions freeze; the rescue path must be able
	// to reach them or acts for their sessions would 404 mid-drain.
	draining []gwNode

	// breakers holds one circuit breaker per node name. An open breaker
	// diverts routing to the ring's next node; Allow() past the cooldown
	// admits the routed request itself as the half-open probe.
	brMu     sync.Mutex
	breakers map[string]*faultnet.Breaker

	creates     *obs.Counter // sessions created through the gateway
	rescues     *obs.Counter // stray sessions handed off and re-owned
	recoveries  *obs.Counter // sessions revived from a crash checkpoint
	retries     *obs.Counter // requests replayed onto another node
	deadRemoved *obs.Counter // nodes dropped after transport failures

	// hops counts how many backend requests one routed call took (1 =
	// clean hit; more = rescue/retry healing); rescueNs times successful
	// rescue sweeps. spans records one span per routed call, so a trace
	// shows the gateway hop above the node spans it caused.
	hops     *obs.Histogram
	rescueNs *obs.Histogram
	spans    *obs.SpanRing

	handlerOnce sync.Once
	handler     http.Handler
}

// gatewayFanIn sizes the default backend connection pool. A gateway
// funnels every client in the deployment into a handful of node hosts,
// so the per-host idle pool must match the gateway's concurrency, not
// Go's default of 2 — with the default, all but two of the relayed
// requests re-dial TCP to the same node, and on a small cluster that
// dial churn dominates the relay cost.
const gatewayFanIn = 128

// NewGateway returns an empty gateway; add nodes with AddNode. A nil
// client uses a pooled transport sized for gateway fan-in (real
// timeouts — never the timeout-free http.DefaultClient).
func NewGateway(client *http.Client) *Gateway {
	if client == nil {
		client = &http.Client{
			Transport: faultnet.NewHTTPTransport(gatewayFanIn),
			Timeout:   30 * time.Second,
		}
	}
	return &Gateway{
		httpc:       client,
		sessions:    map[string]bool{},
		breakers:    map[string]*faultnet.Breaker{},
		creates:     obs.NewCounter(),
		rescues:     obs.NewCounter(),
		recoveries:  obs.NewCounter(),
		retries:     obs.NewCounter(),
		deadRemoved: obs.NewCounter(),
		hops:        obs.NewHistogram(obs.CountBounds),
		rescueNs:    obs.NewHistogram(obs.LatencyBounds),
		spans:       obs.NewSpanRing("gateway", 0),
	}
}

// Ring exposes the gateway's span ring (mounted at /debug/traces).
func (g *Gateway) Ring() *obs.SpanRing { return g.spans }

// Register exposes the gateway's routing counters and histograms on a
// metrics registry. All *_total families are monotonic; gateway_sessions
// is a gauge (tracked ids leave on a leave act).
func (g *Gateway) Register(reg *obs.Registry) {
	reg.GaugeFunc("gateway_sessions", "gateway-tracked live session ids", func() int64 { return int64(g.SessionCount()) })
	reg.CounterFunc("gateway_creates_total", "sessions created through the gateway", g.creates.Value)
	reg.CounterFunc("gateway_rescues_total", "stray sessions handed off and re-owned", g.rescues.Value)
	reg.CounterFunc("gateway_recoveries_total", "sessions revived from a crash checkpoint", g.recoveries.Value)
	reg.CounterFunc("gateway_retries_total", "requests replayed onto another node", g.retries.Value)
	reg.CounterFunc("gateway_dead_nodes_removed_total", "nodes dropped after transport failures", g.deadRemoved.Value)
	reg.CounterFunc("gateway_breaker_trips_total", "circuit breaker opens across all nodes", g.breakerTrips)
	reg.GaugeFunc("gateway_breakers_open", "node breakers currently open or probing", g.breakersOpen)
	reg.RegisterHistogram("gateway_hops", "backend requests per routed call", "", g.hops)
	reg.RegisterHistogram("gateway_rescue_seconds", "successful rescue sweep duration", "seconds", g.rescueNs)
}

// breakerFor returns (creating on first use) the node's circuit breaker.
func (g *Gateway) breakerFor(name string) *faultnet.Breaker {
	g.brMu.Lock()
	defer g.brMu.Unlock()
	b := g.breakers[name]
	if b == nil {
		b = &faultnet.Breaker{}
		g.breakers[name] = b
	}
	return b
}

// breakerTrips sums breaker opens across all nodes (a monotonic counter).
func (g *Gateway) breakerTrips() int64 {
	g.brMu.Lock()
	defer g.brMu.Unlock()
	var n int64
	for _, b := range g.breakers {
		n += b.Trips()
	}
	return n
}

// breakersOpen counts breakers not in the closed state right now.
func (g *Gateway) breakersOpen() int64 {
	g.brMu.Lock()
	defer g.brMu.Unlock()
	var n int64
	for _, b := range g.breakers {
		if b.Open() {
			n++
		}
	}
	return n
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// rebuildRing recomputes the ring from g.nodes; g.mu must be held.
func (g *Gateway) rebuildRing() {
	g.ring = g.ring[:0]
	for i, n := range g.nodes {
		for v := 0; v < vnodes; v++ {
			g.ring = append(g.ring, ringPoint{hash32(fmt.Sprintf("%s#%d", n.name, v)), i})
		}
	}
	sort.Slice(g.ring, func(a, b int) bool { return g.ring[a].hash < g.ring[b].hash })
}

// AddNode registers a backend. Sessions whose owner moves onto the new
// node are migrated lazily: their next request 404s on the new owner, the
// gateway rescues them off the old one, and the new owner thaws them.
func (g *Gateway) AddNode(name, url string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, n := range g.nodes {
		if n.name == name {
			return fmt.Errorf("playsvc: gateway already has a node %q", name)
		}
	}
	g.nodes = append(g.nodes, gwNode{name: name, url: strings.TrimSuffix(url, "/")})
	g.rebuildRing()
	return nil
}

// RemoveNode takes a backend out of the ring. With drain set it then
// freezes every session the node still hosts into the shared store
// (graceful removal — zero loss); without, the node is presumed dead and
// its sessions thaw from their last checkpoint.
func (g *Gateway) RemoveNode(name string, drain bool) error {
	g.mu.Lock()
	var node *gwNode
	kept := g.nodes[:0]
	for i := range g.nodes {
		if g.nodes[i].name == name {
			n := g.nodes[i]
			node = &n
			continue
		}
		kept = append(kept, g.nodes[i])
	}
	g.nodes = kept
	g.rebuildRing()
	if node != nil && drain {
		// Stay reachable for rescues until every session is in the store.
		g.draining = append(g.draining, *node)
	}
	g.mu.Unlock()
	if node == nil {
		return fmt.Errorf("playsvc: gateway has no node %q", name)
	}
	if !drain {
		return nil
	}
	resp, err := g.httpc.Post(node.url+DrainPath, "application/json", nil)
	g.mu.Lock()
	for i := range g.draining {
		if g.draining[i] == *node {
			g.draining = append(g.draining[:i], g.draining[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
	if err != nil {
		return fmt.Errorf("playsvc: draining %s: %w", name, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("playsvc: draining %s: %s", name, resp.Status)
	}
	return nil
}

// dropDead removes a node the gateway failed to reach. It only drops the
// exact (name, url) pair it tried, so a racing remove+re-add of the same
// name is not clobbered.
func (g *Gateway) dropDead(node gwNode) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.nodes {
		if g.nodes[i] == node {
			g.nodes = append(g.nodes[:i], g.nodes[i+1:]...)
			g.rebuildRing()
			g.deadRemoved.Add(1)
			return
		}
	}
}

// NodeNames lists the current backends in ring order of addition.
func (g *Gateway) NodeNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, len(g.nodes))
	for i, n := range g.nodes {
		out[i] = n.name
	}
	return out
}

// SessionCount is how many gateway-assigned sessions have not left yet.
func (g *Gateway) SessionCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.sessions)
}

// ownerOf resolves a session id to its owning node.
func (g *Gateway) ownerOf(session string) (gwNode, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.ring) == 0 {
		return gwNode{}, fmt.Errorf("playsvc: gateway has no nodes")
	}
	h := hash32(session)
	i := sort.Search(len(g.ring), func(i int) bool { return g.ring[i].hash >= h })
	if i == len(g.ring) {
		i = 0
	}
	return g.nodes[g.ring[i].node], nil
}

// routeFor resolves the node to try for a session: the ring owner,
// unless its breaker (or an exclusion from an earlier failed hop of the
// same routed call) says otherwise, in which case the walk continues to
// the ring's next distinct node. When every candidate is refused the
// primary owner is returned anyway — a request must go somewhere, and on
// an all-open ring it doubles as the probe.
func (g *Gateway) routeFor(session string, exclude map[string]bool) (gwNode, error) {
	g.mu.RLock()
	if len(g.ring) == 0 {
		g.mu.RUnlock()
		return gwNode{}, fmt.Errorf("playsvc: gateway has no nodes")
	}
	h := hash32(session)
	i := sort.Search(len(g.ring), func(i int) bool { return g.ring[i].hash >= h })
	if i == len(g.ring) {
		i = 0
	}
	// Distinct nodes in ring order from the owner onward — the same
	// preference order every gateway computes for this id.
	order := make([]gwNode, 0, len(g.nodes))
	seen := make(map[int]bool, len(g.nodes))
	for k := 0; k < len(g.ring) && len(order) < len(g.nodes); k++ {
		pt := g.ring[(i+k)%len(g.ring)]
		if !seen[pt.node] {
			seen[pt.node] = true
			order = append(order, g.nodes[pt.node])
		}
	}
	g.mu.RUnlock()
	for _, n := range order {
		if exclude[n.name] {
			continue
		}
		if g.breakerFor(n.name).Allow() {
			return n, nil
		}
	}
	return order[0], nil
}

// otherNodes returns every backend except the named one — including
// nodes mid-drain, whose sessions may not have reached the store yet.
func (g *Gateway) otherNodes(except string) []gwNode {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]gwNode, 0, len(g.nodes)+len(g.draining))
	for _, n := range g.nodes {
		if n.name != except {
			out = append(out, n)
		}
	}
	for _, n := range g.draining {
		if n.name != except {
			out = append(out, n)
		}
	}
	return out
}

// proxied is a fully-buffered backend response (replies are small and
// frames are bounded, so buffering keeps the retry logic trivial).
type proxied struct {
	status int
	header http.Header
	body   []byte
}

// send performs one request against one node, propagating the trace
// context so the node's spans share the gateway's trace id.
func (g *Gateway) send(tc obs.TraceContext, node gwNode, method, path, rawQuery string, body []byte) (*proxied, error) {
	url := node.url + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	ctx, cancel := context.WithTimeout(context.Background(), hopTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if method == http.MethodPost {
		if path == ActV2Path {
			req.Header.Set("Content-Type", FrameContentType)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	tc.Inject(req.Header)
	resp, err := g.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, err
	}
	return &proxied{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// rescue asks every node except the current owner to freeze the session
// into the shared store; it reports whether any of them had it (live — a
// handoff — or already frozen). A successful sweep's duration lands in
// the rescue histogram.
func (g *Gateway) rescue(tc obs.TraceContext, session, ownerName string) bool {
	t0 := time.Now()
	for _, n := range g.otherNodes(ownerName) {
		body, _ := json.Marshal(&HandoffRequest{Session: session})
		p, err := g.sendRetry(tc, n, http.MethodPost, HandoffPath, body)
		if err == nil && p.status == http.StatusOK {
			g.rescueNs.ObserveSince(t0)
			return true
		}
	}
	return false
}

// recover asks the owner to thaw the session from its last checkpoint —
// the final fallback once no node admits to holding it, meaning its
// owner crashed without draining.
func (g *Gateway) recover(tc obs.TraceContext, session string, owner gwNode) bool {
	body, _ := json.Marshal(&HandoffRequest{Session: session})
	p, err := g.sendRetry(tc, owner, http.MethodPost, RecoverPath, body)
	return err == nil && p.status == http.StatusOK
}

// sendRetry sends one control request (handoff/recover — both idempotent)
// with a small retry budget covering transport failures AND transient
// statuses (an injected or load-shed 503 never came from the manager).
// These sends decide whether the gateway believes a live session exists,
// so a single dropped packet or fault-synthesized 503 on a lossy link
// must not read as "node does not hold it" — that misread would thaw a
// stale duplicate next to a live session.
func (g *Gateway) sendRetry(tc obs.TraceContext, n gwNode, method, path string, body []byte) (p *proxied, err error) {
	for try := 0; try < 3; try++ {
		p, err = g.send(tc.Child(), n, method, path, "", body)
		if err == nil && !faultnet.RetryableStatus(p.status) {
			return p, nil
		}
	}
	return p, err
}

// doSession routes one session-scoped request to its owner, healing the
// ways a request can go astray:
//
//   - transport failure → record it on the node's breaker and retry the
//     SAME node: on a lossy link one dropped packet usually means
//     nothing, and diverting to another node would thaw a stale
//     duplicate next to a live session. Only once the breaker opens
//     (consecutive failures — the node really looks dead) is it excluded
//     for the rest of this call so the retry lands on the ring's next
//     node, which rescues or thaws the session. A node dead long enough
//     (deadNodeLimit consecutive failures) is dropped from the ring
//     outright;
//   - 404 → the session lives elsewhere (the ring changed): broadcast a
//     handoff so the old owner freezes it, then retry the owner once;
//     failing that, ask the contacted node to recover the last crash
//     checkpoint.
//
// A 503 (node draining, or cap reached) retries only if re-resolution
// finds a different node.
//
// The routed call is one gateway span ("gw /play/act"); every backend
// request under it is a child of tc, so the node-side spans chain onto
// this hop. The hop count (1 = clean hit) lands in the hops histogram.
func (g *Gateway) doSession(tc obs.TraceContext, method, path, rawQuery string, body []byte, session string) (p *proxied, err error) {
	hops := 0
	defer func(t0 time.Time) {
		g.hops.Observe(int64(hops))
		g.spans.Record(tc, "gw "+path, t0, err)
	}(time.Now())
	rescued := false
	var last *proxied
	var failed map[string]bool
	for attempt := 0; attempt < 5; attempt++ {
		node, err := g.routeFor(session, failed)
		if err != nil {
			return nil, err
		}
		hops++
		p, err := g.send(tc.Child(), node, method, path, rawQuery, body)
		if err != nil {
			br := g.breakerFor(node.name)
			br.Failure()
			if br.ConsecutiveFailures() >= deadNodeLimit {
				g.dropDead(node)
			}
			if br.Open() {
				// The node looks dead (not just a lost packet): divert
				// the rest of this call around it.
				if failed == nil {
					failed = map[string]bool{}
				}
				failed[node.name] = true
			}
			g.retries.Add(1)
			continue
		}
		g.breakerFor(node.name).Success()
		last = p
		switch p.status {
		case http.StatusNotFound:
			if rescued {
				return p, nil
			}
			rescued = true
			if g.rescue(tc, session, node.name) {
				g.rescues.Add(1)
			} else if g.recover(tc, session, node) {
				// No node holds it live: its owner crashed. Revive from
				// the last periodic checkpoint.
				g.recoveries.Add(1)
			} else {
				return p, nil // genuinely unknown everywhere
			}
			g.retries.Add(1)
			continue
		case http.StatusServiceUnavailable:
			if next, err := g.routeFor(session, failed); err == nil && next != node {
				g.retries.Add(1)
				continue
			}
			return p, nil
		default:
			return p, nil
		}
	}
	if last != nil {
		return last, nil
	}
	return nil, fmt.Errorf("playsvc: no reachable node for session %q", session)
}

// newSessionID mints a gateway-assigned id. Ids carry the course name for
// debuggability plus random hex so restarted gateways cannot collide.
func newSessionID(course string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("playsvc: session id entropy: " + err.Error())
	}
	return course + "-" + hex.EncodeToString(b[:])
}

func (g *Gateway) tracked(session string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.sessions[session]
}

func (g *Gateway) track(session string) {
	g.mu.Lock()
	g.sessions[session] = true
	g.mu.Unlock()
}

func (g *Gateway) untrack(session string) {
	g.mu.Lock()
	delete(g.sessions, session)
	g.mu.Unlock()
}

// relay writes a buffered backend response to the client.
func relay(w http.ResponseWriter, p *proxied) {
	for _, k := range []string{"Content-Type", "Retry-After", "X-Frame-Width", "X-Frame-Height", "X-Frame-Tick"} {
		if v := p.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(p.status)
	w.Write(p.body)
}

// Handler returns the gateway's HTTP surface — the same /play/* routes a
// single node serves, so clients need no cluster awareness.
func (g *Gateway) Handler() http.Handler {
	g.handlerOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc(CreatePath, g.handleCreate)
		mux.HandleFunc(ActPath, g.handleAct)
		mux.HandleFunc(ActV2Path, g.handleActV2)
		mux.HandleFunc(StatePath, g.handleSessionGet)
		mux.HandleFunc(FramePath, g.handleSessionGet)
		mux.HandleFunc(StatsPath, g.handleStats)
		mux.HandleFunc(RoomCreatePath, g.handleRoomCreate)
		mux.HandleFunc(RoomJoinPath, g.handleRoomMember)
		mux.HandleFunc(RoomLeavePath, g.handleRoomMember)
		mux.HandleFunc(RoomAnswerPath, g.handleRoomAnswer)
		mux.HandleFunc(RoomWatchPath, g.handleRoomWatch)
		mux.HandleFunc(RoomStatsPath, g.handleRoomGet)
		g.handler = mux
	})
	return g.handler
}

// traceOf extracts the request's trace context, minting a fresh root
// when the client sent none — the gateway is where cluster traces begin.
func traceOf(r *http.Request) obs.TraceContext {
	if tc := obs.TraceFromRequest(r); tc.Valid() {
		return tc
	}
	return obs.NewTrace()
}

func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if v := r.URL.Query().Get("resume"); v != "" && req.Resume == "" {
		req.Resume = v
	}
	tc := traceOf(r)
	session := req.Resume
	if session == "" {
		if req.Course == "" {
			http.Error(w, "playsvc: create needs a course or a resume id", http.StatusBadRequest)
			return
		}
		if req.Session == "" {
			req.Session = newSessionID(req.Course)
		}
		session = req.Session
		if g.tracked(session) {
			// A retried create whose first reply was lost in flight: the
			// cluster already holds this id. Convert it to a resume so a
			// ring move between the two attempts reattaches to the
			// existing session instead of minting a duplicate on the new
			// owner.
			req.Resume = session
		}
	}
	if req.Resume != "" {
		// A resume may thaw a checkpoint entry on its owner, so first
		// sweep any live copy off the other nodes (a no-op unless the
		// ring changed under a dormant client).
		if owner, err := g.ownerOf(session); err == nil {
			g.rescue(tc, session, owner.name)
		}
	}
	body, err := json.Marshal(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p, err := g.doSession(tc, http.MethodPost, CreatePath, "", body, session)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if p.status == http.StatusOK {
		g.track(session)
		g.creates.Add(1)
	}
	relay(w, p)
}

func (g *Gateway) handleAct(w http.ResponseWriter, r *http.Request) {
	var req ActRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Session == "" {
		http.Error(w, "playsvc: act needs a session", http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p, err := g.doSession(traceOf(r), http.MethodPost, ActPath, "", body, req.Session)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if req.Kind == ActLeave && p.status == http.StatusOK {
		g.untrack(req.Session)
	}
	relay(w, p)
}

// handleActV2 forwards a binary act frame opaquely: routing needs only
// the session id, which the frame layout guarantees is its first record
// (frameSessionID is a prefix parse — no CRC, no full decode), so the
// gateway never re-encodes framed bodies. Healing (rescue, recover,
// breaker diversion) is identical to the JSON path because session-level
// failures stay HTTP statuses; act-level errors ride inside 200 frames
// the gateway does not inspect.
func (g *Gateway) handleActV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	session, err := frameSessionID(body)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	p, err := g.doSession(traceOf(r), http.MethodPost, ActV2Path, "", body, session)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	relay(w, p)
}

// handleSessionGet proxies the GET routes (state, frame) by the session
// query parameter.
func (g *Gateway) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	session := r.URL.Query().Get("session")
	if session == "" {
		http.Error(w, "playsvc: missing session", http.StatusBadRequest)
		return
	}
	p, err := g.doSession(traceOf(r), http.MethodGet, r.URL.Path, r.URL.RawQuery, nil, session)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	relay(w, p)
}

// doRoom routes one room-scoped request. Rooms hash by room id — which IS
// the driven session's id, so the driver's acts and every watcher's polls
// land on the same node. Healing is deliberately lighter than doSession's:
// transport failures retry (with breaker bookkeeping), a 503 re-resolves,
// but a 404 relays as-is — rooms are live-only, and a rescue sweep here
// would freeze the driver's LIVE session out from under the classroom.
func (g *Gateway) doRoom(tc obs.TraceContext, method, path, rawQuery string, body []byte, room string) (p *proxied, err error) {
	hops := 0
	defer func(t0 time.Time) {
		g.hops.Observe(int64(hops))
		g.spans.Record(tc, "gw "+path, t0, err)
	}(time.Now())
	var failed map[string]bool
	for attempt := 0; attempt < 4; attempt++ {
		node, rerr := g.routeFor(room, failed)
		if rerr != nil {
			return nil, rerr
		}
		hops++
		p, err = g.send(tc.Child(), node, method, path, rawQuery, body)
		if err != nil {
			br := g.breakerFor(node.name)
			br.Failure()
			if br.ConsecutiveFailures() >= deadNodeLimit {
				g.dropDead(node)
			}
			if br.Open() {
				if failed == nil {
					failed = map[string]bool{}
				}
				failed[node.name] = true
			}
			g.retries.Add(1)
			continue
		}
		g.breakerFor(node.name).Success()
		if p.status == http.StatusServiceUnavailable {
			if next, rerr := g.routeFor(room, failed); rerr == nil && next != node {
				g.retries.Add(1)
				continue
			}
		}
		return p, nil
	}
	if p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("playsvc: no reachable node for room %q", room)
}

// handleRoomCreate mints the room id (unless the client fixed one) so the
// id hashes onto the node the gateway routes it to, then tracks it like
// any session id — the room IS a session.
func (g *Gateway) handleRoomCreate(w http.ResponseWriter, r *http.Request) {
	var req RoomCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Course == "" {
		http.Error(w, "playsvc: room create needs a course", http.StatusBadRequest)
		return
	}
	if req.Room == "" {
		req.Room = newSessionID(req.Course + "-room")
	}
	body, err := json.Marshal(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p, err := g.doRoom(traceOf(r), http.MethodPost, RoomCreatePath, "", body, req.Room)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if p.status == http.StatusOK {
		g.track(req.Room)
		g.creates.Add(1)
	}
	relay(w, p)
}

// handleRoomMember proxies join and leave (same request shape) by room id.
func (g *Gateway) handleRoomMember(w http.ResponseWriter, r *http.Request) {
	var req RoomJoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Room == "" {
		http.Error(w, "playsvc: missing room", http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p, err := g.doRoom(traceOf(r), http.MethodPost, r.URL.Path, "", body, req.Room)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	relay(w, p)
}

func (g *Gateway) handleRoomAnswer(w http.ResponseWriter, r *http.Request) {
	var req RoomAnswerRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Room == "" {
		http.Error(w, "playsvc: missing room", http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p, err := g.doRoom(traceOf(r), http.MethodPost, RoomAnswerPath, "", body, req.Room)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	relay(w, p)
}

// handleRoomGet proxies the room GET routes (stats) by the room query.
func (g *Gateway) handleRoomGet(w http.ResponseWriter, r *http.Request) {
	room := r.URL.Query().Get("room")
	if room == "" {
		http.Error(w, "playsvc: missing room", http.StatusBadRequest)
		return
	}
	p, err := g.doRoom(traceOf(r), http.MethodGet, r.URL.Path, r.URL.RawQuery, nil, room)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	relay(w, p)
}

// handleRoomWatch relays the fan-out without buffering: a watch response
// is a long-poll hold or an open-ended chunk stream, so the gateway pipes
// bytes through with a flush per read instead of the buffered relay (and
// without the pooled client's overall timeout, which would cut streams
// off mid-lesson).
func (g *Gateway) handleRoomWatch(w http.ResponseWriter, r *http.Request) {
	room := r.URL.Query().Get("room")
	if room == "" {
		http.Error(w, "playsvc: missing room", http.StatusBadRequest)
		return
	}
	tc := traceOf(r)
	node, err := g.routeFor(room, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, node.url+RoomWatchPath+"?"+r.URL.RawQuery, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	tc.Child().Inject(req.Header)
	t0 := time.Now()
	streamc := &http.Client{Transport: g.httpc.Transport}
	resp, err := streamc.Do(req)
	g.spans.Record(tc, "gw "+RoomWatchPath, t0, err)
	if err != nil {
		g.breakerFor(node.name).Failure()
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	g.breakerFor(node.name).Success()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 64<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if ferr := rc.Flush(); ferr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

// GatewayNodeStats is one backend's health in a GatewayStats snapshot.
type GatewayNodeStats struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Live  int    `json:"live"`
	Error string `json:"error,omitempty"`
	// Stats is the node's full snapshot (nil when the node was
	// unreachable), so /play/stats reports per-node counters alongside
	// the cluster aggregate.
	Stats *Stats `json:"stats,omitempty"`
}

// GatewayStats is the gateway's /play/stats payload: its own routing
// counters, per-node health, and the summed cluster totals.
type GatewayStats struct {
	Sessions     int                `json:"sessions"` // gateway-tracked live ids
	Creates      int64              `json:"creates"`
	Rescues      int64              `json:"rescues"`
	Recoveries   int64              `json:"recoveries"`
	Retries      int64              `json:"retries"`
	DeadRemoved  int64              `json:"dead_nodes_removed"`
	BreakerTrips int64              `json:"breaker_trips"`
	BreakersOpen int64              `json:"breakers_open"`
	Nodes        []GatewayNodeStats `json:"nodes"`
	Cluster      Stats              `json:"cluster"` // summed over reachable nodes
	NodesQueried int                `json:"nodes_queried"`
}

// Stats polls every node and assembles the cluster view.
func (g *Gateway) Stats() GatewayStats {
	g.mu.RLock()
	nodes := append([]gwNode(nil), g.nodes...)
	sessions := len(g.sessions)
	g.mu.RUnlock()
	st := GatewayStats{
		Sessions:     sessions,
		Creates:      g.creates.Value(),
		Rescues:      g.rescues.Value(),
		Recoveries:   g.recoveries.Value(),
		Retries:      g.retries.Value(),
		DeadRemoved:  g.deadRemoved.Value(),
		BreakerTrips: g.breakerTrips(),
		BreakersOpen: g.breakersOpen(),
	}
	for _, n := range nodes {
		ns := GatewayNodeStats{Name: n.name, URL: n.url}
		p, err := g.send(obs.TraceContext{}, n, http.MethodGet, StatsPath, "", nil)
		if err != nil || p.status != http.StatusOK {
			if err != nil {
				ns.Error = err.Error()
			} else {
				ns.Error = fmt.Sprintf("status %d", p.status)
			}
			st.Nodes = append(st.Nodes, ns)
			continue
		}
		var s Stats
		if err := json.Unmarshal(p.body, &s); err != nil {
			ns.Error = err.Error()
			st.Nodes = append(st.Nodes, ns)
			continue
		}
		ns.Live = s.SessionsLive
		ns.Stats = &s
		st.Nodes = append(st.Nodes, ns)
		st.NodesQueried++
		st.Cluster.Merge(s)
	}
	return st
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
