package faultnet

import (
	"errors"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// RetryPolicy runs an operation with a bounded attempt budget and
// exponential backoff with full jitter: the sleep before retry i is
// uniform in [0, min(MaxDelay, BaseDelay<<i)). Full jitter decorrelates
// a fleet of clients hammering a recovering server (they would otherwise
// retry in lockstep).
//
// The zero value is usable: 4 attempts, 10ms base, 1s cap. The happy
// path (first attempt succeeds) performs no allocation, takes no lock
// and touches no RNG — it costs the 0 allocs/op act path nothing.
type RetryPolicy struct {
	Attempts  int           // total attempts including the first (default 4)
	BaseDelay time.Duration // first backoff ceiling (default 10ms)
	MaxDelay  time.Duration // backoff ceiling (default 1s)

	// Budget, when positive, extends the retry loop past Attempts by
	// wall-clock — but only while the failure is a transport error (the
	// network, not the server, is refusing). An attempt-counted budget
	// with jittered sleeps is mathematically incapable of riding out a
	// correlated outage (every request issued during a network partition
	// burns its whole budget inside the partition); a wall-clock budget
	// longer than the outage guarantees one attempt lands after
	// connectivity returns. HTTP-status failures keep the plain attempt
	// count: a live server saying 429/503 is already load-shedding, and
	// hammering it for the whole budget would make that worse.
	Budget time.Duration

	// Seed makes the jitter sequence deterministic when non-zero; tests
	// pair it with Sleep to assert exact backoff schedules.
	Seed  int64
	Sleep func(time.Duration) // nil = time.Sleep

	mu  sync.Mutex
	rng *rand.Rand
}

// maxRetryAfter caps how long a server-advertised Retry-After can stall
// one retry, so a hostile or buggy header cannot park a client.
const maxRetryAfter = 2 * time.Second

// Delayed wraps an error with an explicit server-requested retry delay
// (a parsed Retry-After). RetryPolicy.Do honors After — capped at 2s —
// instead of its own jitter for that retry. Unwrap exposes the cause so
// typed-error checks (errors.As on *playsvc.Error etc.) see through it.
type Delayed struct {
	After time.Duration
	Err   error
}

// Error implements error.
func (d *Delayed) Error() string { return d.Err.Error() }

// Unwrap exposes the wrapped cause.
func (d *Delayed) Unwrap() error { return d.Err }

// Do runs fn until it succeeds, reports a terminal error, or the attempt
// budget is exhausted; it returns fn's last error verbatim (unwrapping a
// *Delayed shell) so typed errors survive exhaustion. fn's second result
// says whether the error is worth retrying — idempotency decisions live
// at the call site, which knows what the request was.
func (p *RetryPolicy) Do(fn func(attempt int) (error, bool)) error {
	attempts := p.Attempts
	if attempts <= 0 {
		attempts = 4
	}
	began := time.Now()
	var err error
	var retry bool
	for a := 0; ; a++ {
		if a > 0 {
			p.sleep(p.delay(a-1, err))
		}
		err, retry = fn(a)
		if err == nil || !retry {
			break
		}
		if a+1 >= attempts &&
			(p.Budget <= 0 || !transportError(err) || time.Since(began) >= p.Budget) {
			break
		}
	}
	if err != nil {
		var d *Delayed
		if errors.As(err, &d) {
			return d.Err
		}
	}
	return err
}

// delay picks the sleep before the retry following failed attempt i.
func (p *RetryPolicy) delay(i int, err error) time.Duration {
	var d *Delayed
	if errors.As(err, &d) && d.After > 0 {
		if d.After > maxRetryAfter {
			return maxRetryAfter
		}
		return d.After
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	for ; i > 0 && base < max; i-- {
		base <<= 1
	}
	if base > max {
		base = max
	}
	return time.Duration(p.rand63n(int64(base)))
}

func (p *RetryPolicy) rand63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		p.rng = rand.New(rand.NewSource(seed))
	}
	return p.rng.Int63n(n)
}

func (p *RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// transportError reports whether err came from the network layer rather
// than a served HTTP response: http.Client failures arrive as *url.Error
// (wrapping injected faults, resets, refused connections and timeouts
// alike), and the typed injection errors cover raw RoundTripper use.
func transportError(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue) ||
		errors.Is(err, ErrDropped) || errors.Is(err, ErrReset) || errors.Is(err, ErrPartitioned)
}

// RetryableStatus reports whether an HTTP status is worth retrying:
// explicit backpressure (429) and the transient 5xx family. A plain 500
// is excluded — it usually marks a deterministic server bug that will
// fail identically on every attempt.
func RetryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// RetryAfterDelay parses an integer-seconds Retry-After header, bounded
// to [0, 2s] for the same reason Do caps Delayed.After.
func RetryAfterDelay(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}
