package playsvc

import (
	"hash/crc32"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// TestRoomGoldenBroadcast drives a shared session over the wire while a
// local reference session replays the exact same acts, and asserts every
// watcher receives bit-identical frames at matching sequence numbers plus
// the full event and message transcript — the classroom sees exactly what
// the instructor's session rendered, once per state change.
func TestRoomGoldenBroadcast(t *testing.T) {
	ts, m := liveService(t, Options{Shards: 4})

	const roomID = "classroom-golden-room"
	created, err := CreateRoom(ts.URL, &RoomCreateRequest{Course: "classroom", Room: roomID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if created.Room != roomID || created.Seq != 1 {
		t.Fatalf("create reply = %+v", created)
	}

	// The reference session: same package, same acts, local.
	var rec recorder
	ref, err := runtime.NewSession(classroomBlob(t), runtime.Options{Observer: &rec})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// Three ordered watchers join before the lesson starts; each therefore
	// sees the full publication sequence from seq 1.
	const watchers = 3
	wcs := make([]*RoomClient, watchers)
	for i := range wcs {
		wc, err := JoinRoom(RoomClientOptions{BaseURL: ts.URL, Room: roomID, Ordered: true})
		if err != nil {
			t.Fatal(err)
		}
		wcs[i] = wc
	}

	// The instructor seat: an ordinary client resumed onto the room id.
	driver, err := Dial(ClientOptions{BaseURL: ts.URL, Resume: roomID, Project: content.Classroom().Project})
	if err != nil {
		t.Fatal(err)
	}

	crcOf := func(pix []byte) uint32 { return crc32.ChecksumIEEE(pix) }
	refCRC := func() uint32 {
		f, err := ref.Frame()
		if err != nil {
			t.Fatal(err)
		}
		return crcOf(f.Pix)
	}

	// The golden script. Each step issues exactly one act on the driver —
	// one publication — and the identical call on the reference session.
	steps := []struct {
		name string
		act  func(g sim.Game)
	}{
		{"talk teacher", func(g sim.Game) { g.Talk("teacher") }},
		{"advance", func(g sim.Game) { _ = g.Advance(1) }},
		{"examine computer", func(g sim.Game) { g.Examine("computer") }},
		{"answer diagnosis", func(g sim.Game) { _, _ = g.AnswerQuiz("q-diagnosis", 1) }},
		{"take coin", func(g sim.Game) { g.Take("desk-coin") }},
		{"advance again", func(g sim.Game) { _ = g.Advance(1) }},
	}

	// sawQuiz tracks which watchers observed the pending quiz in a chunk.
	sawQuiz := make([]bool, watchers)
	pollOne := func(w int, wantSeq int64, wantCRC uint32) {
		t.Helper()
		wc := wcs[w]
		var u *WatchUpdate
		for deadline := time.Now().Add(5 * time.Second); u == nil; {
			if time.Now().After(deadline) {
				t.Fatalf("watcher %d: no publication for seq %d", w, wantSeq)
			}
			var err error
			u, _, err = wc.Poll(time.Second)
			if err != nil {
				t.Fatalf("watcher %d poll: %v", w, err)
			}
		}
		if u.Seq != wantSeq {
			t.Fatalf("watcher %d: seq = %d, want %d (skipped=%d)", w, u.Seq, wantSeq, u.Skipped)
		}
		if got := crcOf(wc.frame.Pix); got != wantCRC {
			t.Fatalf("watcher %d: frame crc at seq %d = %08x, want %08x", w, u.Seq, got, wantCRC)
		}
		if u.Quiz == "q-diagnosis" {
			sawQuiz[w] = true
		}
	}

	// Lockstep: the seed publication first (the ring seeds joiners with the
	// create-time frame), then one poll per watcher per act — no watcher
	// ever falls behind, so the golden run must skip nothing.
	seedCRC := refCRC()
	for w := range wcs {
		pollOne(w, 1, seedCRC)
	}
	for i, step := range steps {
		step.act(driver)
		if err := driver.Err(); err != nil {
			t.Fatalf("driver %s: %v", step.name, err)
		}
		step.act(ref)
		want := refCRC()
		for w := range wcs {
			pollOne(w, int64(2+i), want)
		}
	}

	// Every watcher saw the quiz the instructor opened, and answers tally
	// per cohort member: watcher 0 answers correctly, the rest pick the
	// wrong choice; a re-answer moves the vote instead of double-counting.
	for w, wc := range wcs {
		if !sawQuiz[w] {
			t.Fatalf("watcher %d never saw quiz q-diagnosis", w)
		}
		choice := 0
		if w == 0 {
			choice = 1
		}
		reply, err := wc.Answer("q-diagnosis", choice)
		if err != nil {
			t.Fatalf("watcher %d answer: %v", w, err)
		}
		if (w == 0) != reply.Correct {
			t.Fatalf("watcher %d: correct = %v", w, reply.Correct)
		}
	}
	if _, err := wcs[1].Answer("q-diagnosis", 1); err != nil {
		t.Fatal(err)
	}
	st, err := m.RoomStatsOf(roomID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Answers != watchers {
		t.Fatalf("answers = %d, want %d (re-answer must not double count)", st.Answers, watchers)
	}
	if len(st.Quizzes) != 1 || st.Quizzes[0].Quiz != "q-diagnosis" {
		t.Fatalf("quizzes = %+v", st.Quizzes)
	}
	if votes := st.Quizzes[0].Votes; votes[0] != 1 || votes[1] != 2 {
		t.Fatalf("votes = %v (watcher 1 moved its vote to the correct choice)", votes)
	}
	if st.Quizzes[0].Correct != 2 {
		t.Fatalf("correct answers = %d, want 2", st.Quizzes[0].Correct)
	}

	// Render exactness: the seed publication plus one per act, no extras —
	// a thousand watchers would not have changed this number.
	if want := int64(1 + len(steps)); st.Renders != want {
		t.Fatalf("renders = %d, want %d", st.Renders, want)
	}
	if st.Skipped != 0 {
		t.Fatalf("lockstep run skipped %d frames", st.Skipped)
	}

	// Transcript equality against the reference run: frames may skip in a
	// congested classroom, events and messages never do — here both arrive
	// complete and in order (join tail plus per-chunk deltas).
	refEvents := rec.log()
	refMsgs := ref.Messages()
	for w := range wcs {
		if got := wcs[w].Events(); !reflect.DeepEqual(got, refEvents) {
			t.Fatalf("watcher %d events diverge:\n got %+v\nwant %+v", w, got, refEvents)
		}
		if got := wcs[w].Messages(); !reflect.DeepEqual(got, refMsgs) {
			t.Fatalf("watcher %d messages diverge:\n got %q\nwant %q", w, got, refMsgs)
		}
	}

	// The driver leaving ends the class: the room closes and a waiting
	// watcher is released with 404, not left hanging.
	if err := driver.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wcs[0].Poll(time.Second); err == nil {
		t.Fatal("poll after room close did not fail")
	} else if pe, ok := err.(*Error); !ok || pe.Status != 404 {
		t.Fatalf("poll after room close: %v", err)
	}
}

// TestRoomSlowWatcher pins the no-starvation contract: a subscriber that
// never drains its ring must cost the driver nothing. The driver's act
// latency histogram stays bounded while the stalled watcher's ring
// overflows (frames skipped, counted), and a live watcher polling
// alongside keeps receiving fresh frames.
func TestRoomSlowWatcher(t *testing.T) {
	m := NewManager(Options{Shards: 4, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	const roomID = "classroom-slow-room"
	if _, err := m.CreateRoom(&RoomCreateRequest{Course: "classroom", Room: roomID}); err != nil {
		t.Fatal(err)
	}
	room, ok := m.Room(roomID)
	if !ok {
		t.Fatal("room not registered")
	}
	for _, w := range []string{"stalled", "live"} {
		if _, err := m.JoinRoom(&RoomJoinRequest{Room: roomID, Watcher: w}); err != nil {
			t.Fatal(err)
		}
	}

	// The live watcher drains latest-first in a tight loop, like a real
	// client keeping up with the broadcast.
	var delivered atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var dst []byte
		seenE, seenM := 0, 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			header, _, ae, am, err := room.WatchNext("live", seenE, seenM, true, 50*time.Millisecond, dst[:0])
			if err != nil {
				return
			}
			if header != nil {
				delivered.Add(1)
				dst = header
				seenE, seenM = ae, am
			}
		}
	}()

	// Wait until the live watcher has the seed publication — the driver
	// below outruns goroutine scheduling otherwise.
	waitFor := func(what string, ok func() bool) {
		t.Helper()
		for deadline := time.Now().Add(5 * time.Second); !ok(); {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("seed delivery", func() bool { return delivered.Load() >= 1 })

	// The driver ticks away; the stalled ring overflows within 4 acts and
	// keeps overflowing for the rest of the run.
	const acts = 200
	req := ActRequest{Session: roomID, Kind: ActTick, Ticks: 1}
	for i := 0; i < acts; i++ {
		r, err := m.Act(&req)
		if err != nil {
			t.Fatal(err)
		}
		req.SeenEvents, req.SeenMessages = r.EventCount, r.MessageCount
	}
	// The final publication is still in the live ring; the watcher must
	// reach it (latest-first) even though it skipped plenty in between.
	waitFor("fresh delivery", func() bool { return delivered.Load() >= 2 })
	close(stop)
	wg.Wait()

	// The starvation assertion rides the act histogram, not a guess: every
	// driver act was measured, and the tail must not show fan-out
	// backpressure from the stalled ring. The bound is generous (race
	// detector, shared CI) — a blocking fan-out would park acts behind an
	// 8s poll hold, orders of magnitude past it.
	snap := m.actNs.Snapshot()
	if snap.Count < acts {
		t.Fatalf("act histogram recorded %d acts, want >= %d", snap.Count, acts)
	}
	if p99 := time.Duration(snap.Quantile(0.99)); p99 > 250*time.Millisecond {
		t.Fatalf("driver act p99 = %v with a stalled subscriber; fan-out is backpressuring the act path", p99)
	}

	st, err := m.RoomStatsOf(roomID)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1 + acts); st.Renders != want {
		t.Fatalf("renders = %d, want %d (one per state change, watchers notwithstanding)", st.Renders, want)
	}
	// The stalled watcher alone must have shed nearly every publication
	// (its ring keeps only roomRingSlots); the live watcher may add more.
	if min := int64(acts - 2*roomRingSlots); st.Skipped < min {
		t.Fatalf("skipped = %d, want >= %d from the stalled ring", st.Skipped, min)
	}
	if delivered.Load() == 0 {
		t.Fatal("live watcher starved while a peer stalled")
	}
}
