package script

// Env is the read side of game state visible to scripts.
type Env interface {
	// HasItem reports whether the player's inventory holds the item.
	HasItem(name string) bool
	// Flag returns a named boolean flag (unset flags are false).
	Flag(name string) bool
	// Var returns a named integer variable (unset variables are 0).
	Var(name string) int
}

// Effects is the write side: every verb a script can perform. The game
// runtime implements it; tests use recording fakes.
type Effects interface {
	// Say shows a message to the player (status bar / dialogue line).
	Say(msg string)
	// Give adds an item to the inventory.
	Give(item string)
	// Take removes an item; reports whether it was present.
	Take(item string) bool
	// SetFlag sets a boolean flag.
	SetFlag(name string, v bool)
	// SetVar sets an integer variable.
	SetVar(name string, v int)
	// Goto switches playback to another scenario.
	Goto(scenario string)
	// Popup opens a popup resource; kind is "text", "image" or "web".
	Popup(kind, content string)
	// Reward grants an achievement object (paper §3.3).
	Reward(name string)
	// Learn records that a knowledge unit was delivered (paper §3.2).
	Learn(unit string)
	// Enable makes a scene object visible/interactive.
	Enable(objectID string)
	// Disable hides a scene object.
	Disable(objectID string)
	// End finishes the game with an outcome label.
	End(outcome string)
	// Open opens an external (web) resource.
	Open(url string)
	// Quiz asks the player an assessment question from the project's quiz
	// catalog (the extension module; see core.Quiz).
	Quiz(id string)
}

// Run executes the program against the given state. Execution is
// deterministic and terminates (the language has no loops); errors are
// runtime type errors with positions.
func (p *Program) Run(env Env, fx Effects) error {
	if p == nil {
		return nil
	}
	return runBlock(p.stmts, env, fx)
}

func runBlock(stmts []stmt, env Env, fx Effects) error {
	for _, s := range stmts {
		if err := runStmt(s, env, fx); err != nil {
			return err
		}
	}
	return nil
}

func runStmt(s stmt, env Env, fx Effects) error {
	switch s := s.(type) {
	case *ifStmt:
		cond, err := eval(s.cond, env)
		if err != nil {
			return err
		}
		if cond.Kind != BoolVal {
			line, col := s.cond.pos()
			return errAt(line, col, "if condition is %v, want bool", cond.Kind)
		}
		if cond.Bool {
			return runBlock(s.then, env, fx)
		}
		return runBlock(s.els, env, fx)
	case *setStmt:
		v, err := eval(s.value, env)
		if err != nil {
			return err
		}
		if v.Kind != IntVal {
			return errAt(s.line, s.col, "set %s: value is %v, want int", s.name, v.Kind)
		}
		fx.SetVar(s.name, v.Int)
		return nil
	case *setFlagStmt:
		v, err := eval(s.value, env)
		if err != nil {
			return err
		}
		if v.Kind != BoolVal {
			return errAt(s.line, s.col, "setflag %s: value is %v, want bool", s.name, v.Kind)
		}
		fx.SetFlag(s.name, v.Bool)
		return nil
	case *popupStmt:
		kind, err := evalString(s.kind, env)
		if err != nil {
			return err
		}
		content, err := evalString(s.content, env)
		if err != nil {
			return err
		}
		fx.Popup(kind, content)
		return nil
	case *actionStmt:
		arg, err := eval(s.arg, env)
		if err != nil {
			return err
		}
		// All action verbs take a string; `say` accepts anything and
		// stringifies it.
		if s.verb != "say" && arg.Kind != StringVal {
			return errAt(s.line, s.col, "%s: argument is %v, want string", s.verb, arg.Kind)
		}
		switch s.verb {
		case "say":
			fx.Say(arg.String())
		case "give":
			fx.Give(arg.Str)
		case "take":
			fx.Take(arg.Str)
		case "goto":
			fx.Goto(arg.Str)
		case "reward":
			fx.Reward(arg.Str)
		case "learn":
			fx.Learn(arg.Str)
		case "enable":
			fx.Enable(arg.Str)
		case "disable":
			fx.Disable(arg.Str)
		case "end":
			fx.End(arg.Str)
		case "open":
			fx.Open(arg.Str)
		case "quiz":
			fx.Quiz(arg.Str)
		default:
			return errAt(s.line, s.col, "unknown verb %q", s.verb)
		}
		return nil
	default:
		return errAt(0, 0, "unknown statement node %T", s)
	}
}

func evalString(e expr, env Env) (string, error) {
	v, err := eval(e, env)
	if err != nil {
		return "", err
	}
	if v.Kind != StringVal {
		line, col := e.pos()
		return "", errAt(line, col, "expected string, got %v", v.Kind)
	}
	return v.Str, nil
}

func eval(e expr, env Env) (Value, error) {
	switch e := e.(type) {
	case *intLit:
		return IntV(e.v), nil
	case *strLit:
		return StrV(e.v), nil
	case *boolLit:
		return BoolV(e.v), nil
	case *varRef:
		return IntV(env.Var(e.name)), nil
	case *callExpr:
		arg, err := evalString(e.arg, env)
		if err != nil {
			return Value{}, err
		}
		switch e.fn {
		case "has":
			return BoolV(env.HasItem(arg)), nil
		case "flag":
			return BoolV(env.Flag(arg)), nil
		}
		return Value{}, errAt(e.line, e.col, "unknown function %q", e.fn)
	case *unaryExpr:
		v, err := eval(e.operand, env)
		if err != nil {
			return Value{}, err
		}
		switch e.op {
		case tokNot:
			if v.Kind != BoolVal {
				return Value{}, errAt(e.line, e.col, "'!' needs bool, got %v", v.Kind)
			}
			return BoolV(!v.Bool), nil
		case tokMinus:
			if v.Kind != IntVal {
				return Value{}, errAt(e.line, e.col, "unary '-' needs int, got %v", v.Kind)
			}
			return IntV(-v.Int), nil
		}
		return Value{}, errAt(e.line, e.col, "bad unary operator")
	case *binaryExpr:
		return evalBinary(e, env)
	default:
		return Value{}, errAt(0, 0, "unknown expression node %T", e)
	}
}

func evalBinary(e *binaryExpr, env Env) (Value, error) {
	// Short-circuit logic first.
	if e.op == tokAnd || e.op == tokOr {
		l, err := eval(e.left, env)
		if err != nil {
			return Value{}, err
		}
		if l.Kind != BoolVal {
			return Value{}, errAt(e.line, e.col, "logical operand is %v, want bool", l.Kind)
		}
		if e.op == tokAnd && !l.Bool {
			return BoolV(false), nil
		}
		if e.op == tokOr && l.Bool {
			return BoolV(true), nil
		}
		r, err := eval(e.right, env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != BoolVal {
			return Value{}, errAt(e.line, e.col, "logical operand is %v, want bool", r.Kind)
		}
		return BoolV(r.Bool), nil
	}
	l, err := eval(e.left, env)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(e.right, env)
	if err != nil {
		return Value{}, err
	}
	switch e.op {
	case tokPlus:
		// Int addition or string concatenation ("score: " + score).
		if l.Kind == StringVal || r.Kind == StringVal {
			return StrV(l.String() + r.String()), nil
		}
		if l.Kind == IntVal && r.Kind == IntVal {
			return IntV(l.Int + r.Int), nil
		}
		return Value{}, errAt(e.line, e.col, "'+' cannot combine %v and %v", l.Kind, r.Kind)
	case tokMinus, tokStar, tokSlash, tokPercent:
		if l.Kind != IntVal || r.Kind != IntVal {
			return Value{}, errAt(e.line, e.col, "arithmetic needs ints, got %v and %v", l.Kind, r.Kind)
		}
		switch e.op {
		case tokMinus:
			return IntV(l.Int - r.Int), nil
		case tokStar:
			return IntV(l.Int * r.Int), nil
		case tokSlash:
			if r.Int == 0 {
				return Value{}, errAt(e.line, e.col, "division by zero")
			}
			return IntV(l.Int / r.Int), nil
		default:
			if r.Int == 0 {
				return Value{}, errAt(e.line, e.col, "modulo by zero")
			}
			return IntV(l.Int % r.Int), nil
		}
	case tokEq, tokNeq:
		if l.Kind != r.Kind {
			return Value{}, errAt(e.line, e.col, "cannot compare %v with %v", l.Kind, r.Kind)
		}
		eq := l == r
		if e.op == tokNeq {
			eq = !eq
		}
		return BoolV(eq), nil
	case tokLt, tokLe, tokGt, tokGe:
		if l.Kind != IntVal || r.Kind != IntVal {
			return Value{}, errAt(e.line, e.col, "ordering needs ints, got %v and %v", l.Kind, r.Kind)
		}
		var b bool
		switch e.op {
		case tokLt:
			b = l.Int < r.Int
		case tokLe:
			b = l.Int <= r.Int
		case tokGt:
			b = l.Int > r.Int
		default:
			b = l.Int >= r.Int
		}
		return BoolV(b), nil
	}
	return Value{}, errAt(e.line, e.col, "unknown operator")
}

// EvalCondition compiles and evaluates src as a single boolean expression —
// used by the authoring tool's validator to check event conditions.
func EvalCondition(src string, env Env) (bool, error) {
	toks, err := lex(src)
	if err != nil {
		return false, err
	}
	p := &parser{toks: toks}
	e, err := p.expression()
	if err != nil {
		return false, err
	}
	if p.cur().kind != tokEOF {
		t := p.cur()
		return false, errAt(t.line, t.col, "unexpected %v after expression", t.kind)
	}
	v, err := eval(e, env)
	if err != nil {
		return false, err
	}
	if v.Kind != BoolVal {
		return false, errAt(1, 1, "condition evaluates to %v, want bool", v.Kind)
	}
	return v.Bool, nil
}
