// Package gamepack defines the .tkg game package: the single distributable
// file the authoring tool exports and the gaming platform loads (and the
// unit the network layer streams).
//
// A package bundles the project document (JSON) with its video container
// (TKVC) in a sectioned, checksummed binary layout:
//
//	magic "TKGP" | version | section count
//	per section: name len | name | payload len | crc32 | payload
//
// Sections are self-describing so future versions can add e.g. audio tracks
// without breaking old readers. The video section is stored last and is by
// far the largest, which is what makes progressive loading (metadata first,
// video streamed) effective in experiment E8.
package gamepack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/media/container"
)

const (
	magic   = "TKGP"
	version = 1

	// SectionProject is the JSON project document.
	SectionProject = "project"
	// SectionVideo is the TKVC container blob.
	SectionVideo = "video"
	// SectionMeta is a small JSON header with title/author (readable
	// without parsing the full project).
	SectionMeta = "meta"
	// SectionManifest is the chunk manifest: the content-addressed
	// description of the other sections (see manifest.go).
	SectionManifest = "manifest"
)

// ErrBadPackage reports a malformed .tkg blob.
var ErrBadPackage = errors.New("gamepack: malformed package")

// Package is a parsed game package.
type Package struct {
	Project *core.Project
	Video   []byte // raw TKVC blob
}

// section is one named payload of a package blob.
type section struct {
	name string
	data []byte
}

// assemble serializes sections in order with the TKGP framing. It is
// deterministic: the same payloads always produce the same bytes, which
// is what lets a delta-syncing client reassemble a bit-identical blob
// from the manifest's chunks.
func assemble(sections []section) []byte {
	var buf []byte
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = binary.AppendUvarint(buf, uint64(len(sections)))
	for _, s := range sections {
		buf = binary.AppendUvarint(buf, uint64(len(s.name)))
		buf = append(buf, s.name...)
		buf = binary.AppendUvarint(buf, uint64(len(s.data)))
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(s.data))
		buf = append(buf, crc[:]...)
		buf = append(buf, s.data...)
	}
	return buf
}

// Build assembles a .tkg blob from a project and its video container,
// including a chunk manifest section (video chunks cut at segment
// boundaries) so servers and caches can deduplicate and delta-sync the
// package. The video blob is validated before inclusion.
func Build(p *core.Project, video []byte) ([]byte, error) {
	if p == nil {
		return nil, errors.New("gamepack: nil project")
	}
	if _, err := container.Open(video); err != nil {
		return nil, fmt.Errorf("gamepack: invalid video container: %w", err)
	}
	projJSON, err := p.Marshal()
	if err != nil {
		return nil, fmt.Errorf("gamepack: %w", err)
	}
	meta := fmt.Sprintf(`{"title":%q,"author":%q,"scenarios":%d}`, p.Title, p.Author, len(p.Scenarios))
	payload := []section{
		{SectionMeta, []byte(meta)},
		{SectionProject, projJSON},
		{SectionVideo, video},
	}
	man, err := manifestFor(payload, true)
	if err != nil {
		return nil, err
	}
	// The manifest rides just before the video (its placeholder position),
	// keeping the video last for progressive loading.
	sections := []section{
		payload[0], payload[1],
		{SectionManifest, man.Encode()},
		payload[2],
	}
	return assemble(sections), nil
}

// ErrShortPrefix reports that a prefix did not contain the whole section
// table; fetch more bytes and retry.
var ErrShortPrefix = errors.New("gamepack: prefix too short for section table")

// Sections parses the section table: names, offsets and sizes.
func Sections(blob []byte) (map[string][2]int, error) {
	return SectionsWithin(blob, len(blob))
}

// SectionsWithin parses the section table from a blob prefix. Section
// payloads may extend beyond the prefix as long as they fit within
// totalSize (the full package length, e.g. from an HTTP HEAD). It is what
// the streaming client uses to locate metadata without downloading the
// video. A prefix that ends inside the table itself yields ErrShortPrefix.
func SectionsWithin(prefix []byte, totalSize int) (map[string][2]int, error) {
	if len(prefix) < 5 {
		return nil, ErrShortPrefix
	}
	if string(prefix[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPackage)
	}
	if prefix[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadPackage, prefix[4])
	}
	pos := 5
	uv := func() (int, error) {
		// Section headers are interleaved with payloads, so the cursor can
		// legitimately run past the prefix while skipping a payload — that
		// just means the caller must fetch more.
		if pos >= len(prefix) {
			return 0, ErrShortPrefix
		}
		v, n := binary.Uvarint(prefix[pos:])
		if n == 0 {
			return 0, ErrShortPrefix
		}
		if n < 0 || v > 1<<31 {
			return 0, fmt.Errorf("%w: bad varint", ErrBadPackage)
		}
		pos += n
		return int(v), nil
	}
	count, err := uv()
	if err != nil {
		return nil, err
	}
	if count > 64 {
		return nil, fmt.Errorf("%w: %d sections", ErrBadPackage, count)
	}
	out := make(map[string][2]int, count)
	for i := 0; i < count; i++ {
		nameLen, err := uv()
		if err != nil {
			return nil, err
		}
		if nameLen > 256 {
			return nil, fmt.Errorf("%w: bad section name", ErrBadPackage)
		}
		if pos+nameLen > len(prefix) {
			return nil, ErrShortPrefix
		}
		name := string(prefix[pos : pos+nameLen])
		pos += nameLen
		size, err := uv()
		if err != nil {
			return nil, err
		}
		pos += 4 // crc
		if pos+size > totalSize {
			return nil, fmt.Errorf("%w: section %q truncated", ErrBadPackage, name)
		}
		out[name] = [2]int{pos, size}
		pos += size
	}
	if pos != totalSize {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPackage, totalSize-pos)
	}
	return out, nil
}

// Open parses and verifies a .tkg blob.
func Open(blob []byte) (*Package, error) {
	secs, err := Sections(blob)
	if err != nil {
		return nil, err
	}
	read := func(name string) ([]byte, error) {
		loc, ok := secs[name]
		if !ok {
			return nil, fmt.Errorf("%w: missing section %q", ErrBadPackage, name)
		}
		data := blob[loc[0] : loc[0]+loc[1]]
		crc := binary.BigEndian.Uint32(blob[loc[0]-4 : loc[0]])
		if crc32.ChecksumIEEE(data) != crc {
			return nil, fmt.Errorf("%w: section %q checksum mismatch", ErrBadPackage, name)
		}
		return data, nil
	}
	projJSON, err := read(SectionProject)
	if err != nil {
		return nil, err
	}
	video, err := read(SectionVideo)
	if err != nil {
		return nil, err
	}
	proj, err := core.UnmarshalProject(projJSON)
	if err != nil {
		return nil, fmt.Errorf("gamepack: %w", err)
	}
	if _, err := container.Open(video); err != nil {
		return nil, fmt.Errorf("gamepack: video section: %w", err)
	}
	return &Package{Project: proj, Video: video}, nil
}
