// Command vgbl-experiments regenerates every figure and table of the
// reproduction (DESIGN.md §4, EXPERIMENTS.md). Run it with experiment ids
// or "all":
//
//	vgbl-experiments all
//	vgbl-experiments f1 f2 e1
//	vgbl-experiments -cohort 200 e6 e7
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/experiments"
)

func main() {
	cohort := flag.Int("cohort", 30, "simulated learners per cohort (e6/e7)")
	fleetSize := flag.Int("fleet", 200, "largest learner fleet (e10)")
	watchers := flag.Int("watchers", 1000, "largest classroom watcher cohort (e18)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	runs := map[string]func() (string, error){
		"f1":  experiments.F1,
		"f2":  experiments.F2,
		"e1":  experiments.E1,
		"e2":  experiments.E2,
		"e3":  experiments.E3,
		"e4":  experiments.E4,
		"e5":  experiments.E5,
		"e6":  func() (string, error) { return experiments.E6(*cohort) },
		"e7":  func() (string, error) { return experiments.E7(*cohort) },
		"e8":  experiments.E8,
		"e9":  experiments.E9,
		"e10": func() (string, error) { return experiments.E10(*fleetSize) },
		"e12": func() (string, error) { return experiments.E12(*fleetSize) },
		"e13": experiments.E13,
		"e14": func() (string, error) { return experiments.E14(*fleetSize) },
		"e15": func() (string, error) { return experiments.E15(*fleetSize) },
		"e16": func() (string, error) { return experiments.E16(*fleetSize) },
		"e17": func() (string, error) { return experiments.E17(*fleetSize) },
		"e18": func() (string, error) { return experiments.E18(*watchers) },
		"e19": experiments.E19,
	}
	order := []string{"f1", "f2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19"}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: vgbl-experiments [-cohort N] [-fleet N] [-watchers N] all | f1 f2 e1 ... e19")
		os.Exit(2)
	}
	var selected []string
	if len(args) == 1 && args[0] == "all" {
		selected = order
	} else {
		for _, a := range args {
			if runs[a] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}
	for _, id := range selected {
		out, err := runs[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("================ %s ================\n\n%s\n", id, out)
	}
}
