package raster

import "strings"

// asciiRamp orders characters from dark to bright for luminance rendering.
const asciiRamp = " .:-=+*#%@"

// ASCII renders the frame as luminance art with one character per cell,
// box-averaging the frame down to cols×rows cells. It is the deterministic
// "screenshot" mechanism used to regenerate the paper's Figure 1 and
// Figure 2 in a headless environment.
func (f *Frame) ASCII(cols, rows int) string {
	if cols <= 0 || rows <= 0 {
		return ""
	}
	var b strings.Builder
	b.Grow((cols + 1) * rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x0 := c * f.W / cols
			x1 := (c + 1) * f.W / cols
			y0 := r * f.H / rows
			y1 := (r + 1) * f.H / rows
			if x1 <= x0 {
				x1 = x0 + 1
			}
			if y1 <= y0 {
				y1 = y0 + 1
			}
			var sum, n int
			for y := y0; y < y1 && y < f.H; y++ {
				for x := x0; x < x1 && x < f.W; x++ {
					sum += int(f.At(x, y).Luma())
					n++
				}
			}
			lum := 0
			if n > 0 {
				lum = sum / n
			}
			idx := lum * (len(asciiRamp) - 1) / 255
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
