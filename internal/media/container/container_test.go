package container

import (
	"testing"

	"repro/internal/media/synth"
	"repro/internal/media/vcodec"
)

// buildBlob encodes a short film and returns the blob plus the film for
// reference.
func buildBlob(t testing.TB, gop int, chapters []Chapter) ([]byte, *synth.Film) {
	t.Helper()
	film := synth.Generate(synth.Spec{
		W: 64, H: 48, FPS: 10,
		Shots: 3, MinShotFrames: 8, MaxShotFrames: 10,
		Seed: 5,
	})
	enc, err := vcodec.NewEncoder(vcodec.Config{
		Width: 64, Height: 48, QStep: 6, GOP: gop, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux, err := NewMuxer(Meta{Width: 64, Height: 48, FPS: 10, GOP: gop})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < film.FrameCount(); i++ {
		pkt, err := enc.Encode(film.Render(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := mux.AddPacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	for _, ch := range chapters {
		if err := mux.AddChapter(ch); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := mux.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return blob, film
}

func TestMuxOpenRoundTrip(t *testing.T) {
	blob, film := buildBlob(t, 5, []Chapter{
		{Name: "intro", Start: 0, End: 8},
		{Name: "middle", Start: 8, End: 16},
	})
	r, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Meta()
	if m.Width != 64 || m.Height != 48 || m.FPS != 10 || m.GOP != 5 {
		t.Errorf("meta = %+v", m)
	}
	if m.FrameCount != film.FrameCount() {
		t.Errorf("frame count = %d, want %d", m.FrameCount, film.FrameCount())
	}
	chs := r.Chapters()
	if len(chs) != 2 || chs[0].Name != "intro" || chs[1].Name != "middle" {
		t.Errorf("chapters = %+v", chs)
	}
	if _, ok := r.ChapterByName("middle"); !ok {
		t.Error("ChapterByName failed")
	}
	if _, ok := r.ChapterByName("nope"); ok {
		t.Error("ChapterByName found a ghost")
	}
}

func TestPacketsDecodable(t *testing.T) {
	blob, film := buildBlob(t, 5, nil)
	r, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	dec := vcodec.NewDecoder(1)
	for i := 0; i < r.Meta().FrameCount; i++ {
		data, ft, err := r.PacketAt(i)
		if err != nil {
			t.Fatal(err)
		}
		wantI := i%5 == 0
		if (ft == vcodec.IFrame) != wantI {
			t.Errorf("frame %d type %v, want I=%v", i, ft, wantI)
		}
		if _, err := dec.Decode(data); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	_ = film
}

func TestKeyframeAtOrBefore(t *testing.T) {
	blob, _ := buildBlob(t, 7, nil)
	r, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Meta().FrameCount; i++ {
		k, err := r.KeyframeAtOrBefore(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := i / 7 * 7; k != want {
			t.Fatalf("keyframe before %d = %d, want %d", i, k, want)
		}
	}
	if _, err := r.KeyframeAtOrBefore(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := r.KeyframeAtOrBefore(r.Meta().FrameCount); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestPacketAtOutOfRange(t *testing.T) {
	blob, _ := buildBlob(t, 5, nil)
	r, _ := Open(blob)
	if _, _, err := r.PacketAt(-1); err == nil {
		t.Error("PacketAt(-1) accepted")
	}
	if _, _, err := r.PacketAt(r.Meta().FrameCount); err == nil {
		t.Error("PacketAt(count) accepted")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	blob, _ := buildBlob(t, 5, []Chapter{{Name: "x", Start: 0, End: 4}})
	// Truncations at every section boundary-ish offset.
	for _, n := range []int{0, 3, 4, 5, 10, len(blob) / 2, len(blob) - 1} {
		if _, err := Open(blob[:n]); err == nil {
			t.Errorf("truncated blob (%d bytes) accepted", n)
		}
	}
	// Bad magic.
	bad := append([]byte("XXXX"), blob[4:]...)
	if _, err := Open(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Flip a bit in the data section: checksum must catch it.
	flip := append([]byte(nil), blob...)
	flip[len(flip)-1] ^= 0x40
	if _, err := Open(flip); err == nil {
		t.Error("data corruption not caught by checksum")
	}
	// Trailing junk.
	junk := append(append([]byte(nil), blob...), 0xAB)
	if _, err := Open(junk); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestMuxerValidation(t *testing.T) {
	if _, err := NewMuxer(Meta{Width: 0, Height: 2, FPS: 1, GOP: 1}); err == nil {
		t.Error("bad meta accepted")
	}
	mux, _ := NewMuxer(Meta{Width: 8, Height: 8, FPS: 10, GOP: 2})
	if _, err := mux.Finalize(); err == nil {
		t.Error("empty container finalized")
	}
	// Wrong first index.
	if err := mux.AddPacket(vcodec.Packet{Type: vcodec.IFrame, Index: 3, Data: []byte{1}}); err == nil {
		t.Error("out-of-order packet accepted")
	}
	// P-frame first.
	if err := mux.AddPacket(vcodec.Packet{Type: vcodec.PFrame, Index: 0, Data: []byte{1}}); err == nil {
		t.Error("leading P-frame accepted")
	}
	// Empty packet.
	if err := mux.AddPacket(vcodec.Packet{Type: vcodec.IFrame, Index: 0}); err == nil {
		t.Error("empty packet accepted")
	}
	if err := mux.AddPacket(vcodec.Packet{Type: vcodec.IFrame, Index: 0, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	// Chapter validation.
	if err := mux.AddChapter(Chapter{Name: "", Start: 0, End: 1}); err == nil {
		t.Error("unnamed chapter accepted")
	}
	if err := mux.AddChapter(Chapter{Name: "a", Start: 2, End: 2}); err == nil {
		t.Error("empty chapter accepted")
	}
	if err := mux.AddChapter(Chapter{Name: "a", Start: 0, End: 1}); err != nil {
		t.Fatal(err)
	}
	if err := mux.AddChapter(Chapter{Name: "a", Start: 0, End: 1}); err == nil {
		t.Error("duplicate chapter accepted")
	}
	// Chapter beyond frame count fails at Finalize.
	if err := mux.AddChapter(Chapter{Name: "b", Start: 0, End: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := mux.Finalize(); err == nil {
		t.Error("chapter beyond frame count accepted at Finalize")
	}
}

func TestChaptersSortedByStart(t *testing.T) {
	blob, _ := buildBlob(t, 5, []Chapter{
		{Name: "late", Start: 10, End: 14},
		{Name: "early", Start: 0, End: 10},
	})
	r, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	chs := r.Chapters()
	if chs[0].Name != "early" || chs[1].Name != "late" {
		t.Errorf("chapters not sorted: %+v", chs)
	}
}

func TestChaptersCopyIsolated(t *testing.T) {
	blob, _ := buildBlob(t, 5, []Chapter{{Name: "c", Start: 0, End: 4}})
	r, _ := Open(blob)
	chs := r.Chapters()
	chs[0].Name = "mutated"
	if got := r.Chapters()[0].Name; got != "c" {
		t.Errorf("reader state mutated through returned slice: %q", got)
	}
}

func TestDataSize(t *testing.T) {
	blob, _ := buildBlob(t, 5, nil)
	r, _ := Open(blob)
	if r.DataSize() <= 0 || r.DataSize() >= len(blob) {
		t.Errorf("DataSize = %d, blob = %d", r.DataSize(), len(blob))
	}
}
