package playback

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/media/raster"
)

// TestFrameCacheServesIdenticalPixels decodes every frame twice — once
// cold through one Video, once through a second Video sharing the warmed
// cache — and requires byte-identical output, including after backward
// seeks that would otherwise restart decoding from a keyframe.
func TestFrameCacheServesIdenticalPixels(t *testing.T) {
	blob, film := testBlob(t)
	cold, err := OpenVideo(blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*raster.Frame, film.FrameCount())
	for i := range want {
		f, err := cold.FrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = f.Clone()
	}

	cache := NewFrameCache(1 << 30)
	warm, err := OpenVideo(blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	warm.UseCache(cache)
	for i := 0; i < film.FrameCount(); i++ { // warming pass: all misses
		if _, err := warm.FrameAt(i); err != nil {
			t.Fatal(err)
		}
	}
	hits0, misses, _, _, _ := cache.Stats()
	if hits0 != 0 || misses != int64(film.FrameCount()) {
		t.Fatalf("warming pass: hits=%d misses=%d, want 0/%d", hits0, misses, film.FrameCount())
	}

	second, err := OpenVideo(blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	second.UseCache(cache)
	// Worst-case access order for a decoder (strided, backward) — every
	// read must be a pure cache hit with exact pixels.
	order := []int{}
	for i := film.FrameCount() - 1; i >= 0; i -= 3 {
		order = append(order, i)
	}
	for i := 0; i < film.FrameCount(); i++ {
		order = append(order, i)
	}
	for _, i := range order {
		f, err := second.FrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Pix, want[i].Pix) {
			t.Fatalf("frame %d differs between cached and direct decode", i)
		}
	}
	hits, _, _, frames, bytesHeld := cache.Stats()
	if hits != int64(len(order)) {
		t.Fatalf("hits = %d, want %d", hits, len(order))
	}
	if frames != int64(film.FrameCount()) || bytesHeld <= 0 {
		t.Fatalf("cache holds %d frames / %d bytes, want %d frames", frames, bytesHeld, film.FrameCount())
	}
}

// TestFrameCacheEviction bounds the cache to a handful of frames and
// checks the budget is enforced while reads stay correct.
func TestFrameCacheEviction(t *testing.T) {
	blob, film := testBlob(t)
	v, err := OpenVideo(blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	frameBytes := int64(3 * 64 * 48)
	cache := NewFrameCache(4 * frameBytes)
	v.UseCache(cache)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < film.FrameCount(); i++ {
			f, err := v.FrameAt(i)
			if err != nil {
				t.Fatal(err)
			}
			if p := raster.PSNR(film.Render(i), f); p < 22 {
				t.Errorf("pass %d frame %d PSNR %.1f", pass, i, p)
			}
		}
	}
	_, _, evictions, frames, bytesHeld := cache.Stats()
	if frames > 4 || bytesHeld > 4*frameBytes {
		t.Fatalf("cache exceeded budget: %d frames / %d bytes", frames, bytesHeld)
	}
	if evictions == 0 {
		t.Fatalf("budget-bounded cache reported zero evictions")
	}
}

// TestFrameCacheConcurrent hammers one warmed cache from many Videos.
func TestFrameCacheConcurrent(t *testing.T) {
	blob, film := testBlob(t)
	cache := NewFrameCache(1 << 30)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v, err := OpenVideo(blob, 1)
			if err != nil {
				errs <- err
				return
			}
			v.UseCache(cache)
			for i := 0; i < film.FrameCount(); i++ {
				idx := (i*7 + seed) % film.FrameCount()
				if _, err := v.FrameAt(idx); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
