// Package analytics aggregates runtime telemetry into the learning reports
// lecturers would read — time per scenario, decisions made, knowledge
// delivered, reward timeline. It implements runtime.Observer so a Collector
// can be plugged straight into a Session.
package analytics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/runtime"
)

// Collector accumulates one session's telemetry. It is safe for concurrent
// use (the simulator runs many sessions across goroutines, each with its
// own Collector; safety is cheap and prevents misuse).
type Collector struct {
	mu     sync.Mutex
	events []runtime.Event
}

// Record implements runtime.Observer.
func (c *Collector) Record(e runtime.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

// Events returns a copy of the raw event log.
func (c *Collector) Events() []runtime.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]runtime.Event(nil), c.events...)
}

// Report is the digested view of one session.
type Report struct {
	TotalEvents   int
	Decisions     int            // clicks + takes + uses + dialogue turns
	Interactions  map[string]int // event kind → count
	Knowledge     []string       // units in delivery order
	Rewards       []string       // rewards in grant order
	ScenarioTicks map[string]int // ticks spent per scenario
	Scenarios     []string       // visit order (deduplicated transitions)
	Errors        []string
	Ended         bool
	Outcome       string
	LastTick      int
	QuizAsked     int
	QuizCorrect   int
}

// QuizAccuracy returns the fraction of answered quizzes that were correct
// (0 when none were asked).
func (r *Report) QuizAccuracy() float64 {
	answered := r.Interactions["quiz-correct"] + r.Interactions["quiz-wrong"]
	if answered == 0 {
		return 0
	}
	return float64(r.QuizCorrect) / float64(answered)
}

// decisionKinds are the event kinds that count as player decisions.
var decisionKinds = map[string]bool{
	"click": true, "examine": true, "take": true, "use": true, "dialogue": true,
}

// Digest reduces the raw events to a Report. startScenario names the
// scenario in which play began (ticks before the first goto accrue there).
func (c *Collector) Digest(startScenario string) *Report {
	events := c.Events()
	r := &Report{
		Interactions:  map[string]int{},
		ScenarioTicks: map[string]int{},
	}
	cur := startScenario
	r.Scenarios = []string{cur}
	lastTick := 0
	for _, e := range events {
		r.TotalEvents++
		r.Interactions[e.Kind]++
		if decisionKinds[e.Kind] {
			r.Decisions++
		}
		switch e.Kind {
		case "goto":
			r.ScenarioTicks[cur] += e.Tick - lastTick
			lastTick = e.Tick
			cur = e.Detail
			if len(r.Scenarios) == 0 || r.Scenarios[len(r.Scenarios)-1] != cur {
				r.Scenarios = append(r.Scenarios, cur)
			}
		case "learn":
			r.Knowledge = append(r.Knowledge, e.Detail)
		case "reward":
			r.Rewards = append(r.Rewards, e.Detail)
		case "quiz-asked":
			r.QuizAsked++
		case "quiz-correct":
			r.QuizCorrect++
		case "error":
			r.Errors = append(r.Errors, e.Detail)
		case "end":
			r.Ended = true
			r.Outcome = e.Detail
		}
		if e.Tick > r.LastTick {
			r.LastTick = e.Tick
		}
	}
	r.ScenarioTicks[cur] += r.LastTick - lastTick
	return r
}

// UniqueKnowledge returns the distinct knowledge units delivered.
func (r *Report) UniqueKnowledge() []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range r.Knowledge {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// String renders the report as the text table `vgbl-play --report` prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PLAY SESSION REPORT\n")
	fmt.Fprintf(&b, "  events: %d  decisions: %d  ticks: %d\n", r.TotalEvents, r.Decisions, r.LastTick)
	if r.Ended {
		fmt.Fprintf(&b, "  outcome: %s\n", r.Outcome)
	} else {
		fmt.Fprintf(&b, "  outcome: (in progress)\n")
	}
	fmt.Fprintf(&b, "  scenario path: %s\n", strings.Join(r.Scenarios, " -> "))
	var names []string
	for name := range r.ScenarioTicks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "    %-16s %5d ticks\n", name, r.ScenarioTicks[name])
	}
	fmt.Fprintf(&b, "  knowledge (%d): %s\n", len(r.UniqueKnowledge()), strings.Join(r.UniqueKnowledge(), ", "))
	fmt.Fprintf(&b, "  rewards (%d): %s\n", len(r.Rewards), strings.Join(r.Rewards, ", "))
	if len(r.Errors) > 0 {
		fmt.Fprintf(&b, "  errors (%d): %s\n", len(r.Errors), strings.Join(r.Errors, "; "))
	}
	return b.String()
}

// Aggregate summarizes many session reports (one simulated cohort).
type Aggregate struct {
	Sessions        int
	MeanDecisions   float64
	MeanKnowledge   float64 // unique units per session
	MeanRewards     float64
	CompletionRate  float64 // sessions that reached an end
	MeanTicks       float64
	KnowledgeCounts map[string]int // unit → sessions that received it
	// QuizAccuracy is total correct answers over total answered quizzes
	// across the cohort (0 when no quizzes were asked).
	QuizAccuracy float64
}

// Aggregate combines reports.
func AggregateReports(reports []*Report) Aggregate {
	var ro Rolling
	for _, r := range reports {
		ro.Add(r)
	}
	return ro.Aggregate()
}

// Rolling is an incrementally mergeable cohort accumulator: the exact sums
// behind an Aggregate, kept as integers so partial accumulators from
// different goroutines (or different telemetry shards) can be merged without
// losing precision. The zero value is ready to use. Rolling is NOT
// goroutine-safe; accumulate per goroutine and Merge, or lock externally.
type Rolling struct {
	Sessions        int
	Events          int // total events across sessions
	Decisions       int
	Knowledge       int // total knowledge deliveries (with repeats)
	UniqueKnowledge int // sum over sessions of distinct units delivered
	Rewards         int
	Completed       int // sessions that reached an end event
	Ticks           int // sum of per-session LastTick
	QuizAsked       int
	QuizAnswered    int
	QuizCorrect     int
	KnowledgeCounts map[string]int // unit → sessions that received it
	Outcomes        map[string]int // end label → sessions
}

// Add folds one session report into the accumulator.
func (ro *Rolling) Add(r *Report) {
	ro.Sessions++
	ro.Events += r.TotalEvents
	ro.Decisions += r.Decisions
	ro.Knowledge += len(r.Knowledge)
	ro.Rewards += len(r.Rewards)
	ro.Ticks += r.LastTick
	ro.QuizAsked += r.QuizAsked
	ro.QuizAnswered += r.Interactions["quiz-correct"] + r.Interactions["quiz-wrong"]
	ro.QuizCorrect += r.QuizCorrect
	if r.Ended {
		ro.Completed++
		if ro.Outcomes == nil {
			ro.Outcomes = map[string]int{}
		}
		ro.Outcomes[r.Outcome]++
	}
	uniq := r.UniqueKnowledge()
	ro.UniqueKnowledge += len(uniq)
	if len(uniq) > 0 && ro.KnowledgeCounts == nil {
		ro.KnowledgeCounts = map[string]int{}
	}
	for _, k := range uniq {
		ro.KnowledgeCounts[k]++
	}
}

// Merge folds another accumulator into this one. The other accumulator is
// left untouched and may keep accumulating independently.
func (ro *Rolling) Merge(other *Rolling) {
	ro.Sessions += other.Sessions
	ro.Events += other.Events
	ro.Decisions += other.Decisions
	ro.Knowledge += other.Knowledge
	ro.UniqueKnowledge += other.UniqueKnowledge
	ro.Rewards += other.Rewards
	ro.Completed += other.Completed
	ro.Ticks += other.Ticks
	ro.QuizAsked += other.QuizAsked
	ro.QuizAnswered += other.QuizAnswered
	ro.QuizCorrect += other.QuizCorrect
	if len(other.KnowledgeCounts) > 0 && ro.KnowledgeCounts == nil {
		ro.KnowledgeCounts = map[string]int{}
	}
	for k, n := range other.KnowledgeCounts {
		ro.KnowledgeCounts[k] += n
	}
	if len(other.Outcomes) > 0 && ro.Outcomes == nil {
		ro.Outcomes = map[string]int{}
	}
	for k, n := range other.Outcomes {
		ro.Outcomes[k] += n
	}
}

// Aggregate digests the sums into the mean-based cohort view.
func (ro *Rolling) Aggregate() Aggregate {
	a := Aggregate{Sessions: ro.Sessions, KnowledgeCounts: map[string]int{}}
	for k, n := range ro.KnowledgeCounts {
		a.KnowledgeCounts[k] = n
	}
	if ro.Sessions == 0 {
		return a
	}
	n := float64(ro.Sessions)
	a.MeanDecisions = float64(ro.Decisions) / n
	a.MeanKnowledge = float64(ro.UniqueKnowledge) / n
	a.MeanRewards = float64(ro.Rewards) / n
	a.MeanTicks = float64(ro.Ticks) / n
	a.CompletionRate = float64(ro.Completed) / n
	if ro.QuizAnswered > 0 {
		a.QuizAccuracy = float64(ro.QuizCorrect) / float64(ro.QuizAnswered)
	}
	return a
}
