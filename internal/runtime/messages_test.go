package runtime

import (
	"math"
	"reflect"
	"testing"
)

// TestMessagesFromClamp sweeps hostile offsets through the transcript
// accessor: negative counts (a broken or malicious client "acknowledging"
// less than nothing) clamp to the full transcript instead of panicking,
// and past-the-end counts return an empty tail.
func TestMessagesFromClamp(t *testing.T) {
	s, _ := classroomSession(t)
	s.Talk("teacher")
	all := s.Messages()
	if len(all) < 2 {
		t.Fatalf("need a transcript to slice, got %q", all)
	}

	cases := []struct {
		name string
		n    int
		want []string
	}{
		{"negative", -1, all},
		{"deeply negative", math.MinInt, all},
		{"zero", 0, all},
		{"mid", 1, all[1:]},
		{"exact end", len(all), nil},
		{"past end", len(all) + 5, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := s.MessagesFrom(tc.n)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("MessagesFrom(%d) = %q, want %q", tc.n, got, tc.want)
			}
		})
	}

	// The returned slice is a copy: mutating it must not corrupt the
	// session's transcript.
	tail := s.MessagesFrom(0)
	tail[0] = "scribbled over"
	if s.Messages()[0] == "scribbled over" {
		t.Fatal("MessagesFrom aliases the live transcript")
	}
}
