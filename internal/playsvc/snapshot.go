// Durable hosted sessions: freeze, thaw and checkpoint.
//
// A hosted session is frozen by snapshotting its runtime state
// (runtime.Session.Snapshot) plus the play-service envelope around it —
// the session id, its course, and the unacknowledged event tail a client
// retry may still need. Both blobs land in the content-addressed chunk
// store: the runtime snapshot carries no identity, so two sessions in the
// same logical state (and repeated checkpoints of an idle session) dedup
// to one stored blob; the tiny envelope references it by hash. A
// SnapshotDir maps session ids to their latest envelope so eviction,
// crash-recovery and cluster handoff can find them again.
//
// Thawing is the reverse and is wired into session lookup: an act, state
// or frame request for a session this manager does not host falls through
// to the directory, restores the snapshot, and proceeds — TTL eviction and
// node handoff are invisible to a well-behaved client.
package playsvc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/blobstore"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// SnapshotRef is one directory entry: where a session's latest snapshot
// lives, and whether it is a released state or crash insurance.
type SnapshotRef struct {
	Envelope blobstore.Hash
	// Checkpoint marks a periodic-checkpoint entry: the session was still
	// live on its node when this was persisted, so the snapshot may lag
	// the truth. A released entry (freeze/drain/handoff/eviction) is the
	// exact final state and is always safe to thaw; a checkpoint entry
	// must only be thawed once the owning node is known to be gone (the
	// gateway's recover step), or the stale copy would fork the session.
	Checkpoint bool
}

// SnapshotDir maps live session ids to their latest snapshot in the
// shared chunk store. Every node of a cluster shares one directory (and
// one store): that pair is the whole coordination surface session handoff
// needs. Implementations must be safe for concurrent use.
type SnapshotDir interface {
	Save(session string, ref SnapshotRef)
	Lookup(session string) (SnapshotRef, bool)
	Delete(session string)
}

// MemDir is the in-process SnapshotDir: a mutex-guarded map. It backs
// single-node durability (TTL eviction → resume) and in-process clusters;
// a multi-host deployment would implement SnapshotDir over its own
// metadata service.
type MemDir struct {
	mu sync.RWMutex
	m  map[string]SnapshotRef
}

// NewMemDir returns an empty directory.
func NewMemDir() *MemDir { return &MemDir{m: map[string]SnapshotRef{}} }

// Save implements SnapshotDir.
func (d *MemDir) Save(session string, ref SnapshotRef) {
	d.mu.Lock()
	d.m[session] = ref
	d.mu.Unlock()
}

// Lookup implements SnapshotDir.
func (d *MemDir) Lookup(session string) (SnapshotRef, bool) {
	d.mu.RLock()
	ref, ok := d.m[session]
	d.mu.RUnlock()
	return ref, ok
}

// Delete implements SnapshotDir.
func (d *MemDir) Delete(session string) {
	d.mu.Lock()
	delete(d.m, session)
	d.mu.Unlock()
}

// Len reports how many sessions currently have a snapshot on file.
func (d *MemDir) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.m)
}

// envelope is the play-service wrapper around a runtime snapshot.
type envelope struct {
	Session   string
	Course    string
	EventBase int
	Events    []runtime.Event
	Snapshot  blobstore.Hash
	// Batch-dedup state (v2): a thawed session must keep recognizing a
	// retry of the last applied batch, or a freeze between the apply and
	// the retry would turn a lost reply into a double-apply.
	LastBase int64
	LastLen  int
	LastBits []byte
	LastErr  *Error
}

// Envelope wire format mirrors the runtime snapshot's: magic, version,
// tagged records, CRC32. v2 adds the batch-dedup records (6-9); v1
// envelopes still decode (their dedup state is simply empty).
const (
	envMagic   = "VSNE"
	envVersion = 2

	envTagSession   = 1
	envTagCourse    = 2
	envTagEventBase = 3
	envTagEvents    = 4 // JSON []runtime.Event
	envTagSnapshot  = 5 // 32-byte hash of the runtime snapshot blob
	envTagLastBase  = 6 // uvarint BaseSeq of the last applied batch
	envTagLastLen   = 7 // uvarint act count of that batch
	envTagLastBits  = 8 // raw result bits of the applied prefix
	envTagLastErr   = 9 // uvarint status, uvarint retry-after, message bytes

	maxEnvelopeField = 16 << 20
)

func envAppend(b []byte, tag uint64, payload []byte) []byte {
	b = binary.AppendUvarint(b, tag)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func (e *envelope) encode() []byte {
	b := make([]byte, 0, 256)
	b = append(b, envMagic...)
	b = binary.AppendUvarint(b, envVersion)
	b = envAppend(b, envTagSession, []byte(e.Session))
	b = envAppend(b, envTagCourse, []byte(e.Course))
	b = envAppend(b, envTagEventBase, binary.AppendUvarint(nil, uint64(e.EventBase)))
	if len(e.Events) > 0 {
		evs, err := json.Marshal(e.Events)
		if err != nil {
			panic("playsvc: event tail marshal: " + err.Error())
		}
		b = envAppend(b, envTagEvents, evs)
	}
	b = envAppend(b, envTagSnapshot, e.Snapshot[:])
	if e.LastBase != 0 {
		b = envAppend(b, envTagLastBase, binary.AppendUvarint(nil, uint64(e.LastBase)))
		b = envAppend(b, envTagLastLen, binary.AppendUvarint(nil, uint64(e.LastLen)))
		if len(e.LastBits) > 0 {
			b = envAppend(b, envTagLastBits, e.LastBits)
		}
		if e.LastErr != nil {
			p := binary.AppendUvarint(nil, uint64(e.LastErr.Status))
			p = binary.AppendUvarint(p, uint64(e.LastErr.RetryAfter))
			p = append(p, e.LastErr.Msg...)
			b = envAppend(b, envTagLastErr, p)
		}
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func envBadf(format string, args ...any) error {
	return fmt.Errorf("%w: envelope: %s", runtime.ErrBadSnapshot, fmt.Sprintf(format, args...))
}

// decodeEnvelope parses envelope bytes; every rejection wraps
// runtime.ErrBadSnapshot.
func decodeEnvelope(data []byte) (*envelope, error) {
	if len(data) < len(envMagic)+1+4 {
		return nil, envBadf("truncated (%d bytes)", len(data))
	}
	if string(data[:len(envMagic)]) != envMagic {
		return nil, envBadf("bad magic")
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, envBadf("checksum mismatch")
	}
	rest := body[len(envMagic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, envBadf("malformed version")
	}
	if version == 0 || version > envVersion {
		return nil, envBadf("unsupported version %d", version)
	}
	rest = rest[n:]
	e := &envelope{}
	var hasSession, hasCourse, hasSnapshot bool
	for len(rest) > 0 {
		tag, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, envBadf("malformed record tag")
		}
		rest = rest[n:]
		size, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, envBadf("malformed record length")
		}
		rest = rest[n:]
		if size > maxEnvelopeField || size > uint64(len(rest)) {
			return nil, envBadf("record %d claims %d bytes, %d remain", tag, size, len(rest))
		}
		payload := rest[:size]
		rest = rest[size:]
		switch tag {
		case envTagSession:
			e.Session, hasSession = string(payload), true
		case envTagCourse:
			e.Course, hasCourse = string(payload), true
		case envTagEventBase:
			v, n := binary.Uvarint(payload)
			if n <= 0 || n != len(payload) || v > math.MaxInt32 {
				return nil, envBadf("malformed event base")
			}
			e.EventBase = int(v)
		case envTagEvents:
			if err := json.Unmarshal(payload, &e.Events); err != nil {
				return nil, envBadf("event tail: %v", err)
			}
		case envTagSnapshot:
			if len(payload) != len(e.Snapshot) {
				return nil, envBadf("snapshot hash is %d bytes", len(payload))
			}
			copy(e.Snapshot[:], payload)
			hasSnapshot = true
		case envTagLastBase:
			v, n := binary.Uvarint(payload)
			if n <= 0 || n != len(payload) || v > math.MaxInt64 {
				return nil, envBadf("malformed last batch base")
			}
			e.LastBase = int64(v)
		case envTagLastLen:
			v, n := binary.Uvarint(payload)
			if n <= 0 || n != len(payload) || v > maxFrameActs {
				return nil, envBadf("malformed last batch length")
			}
			e.LastLen = int(v)
		case envTagLastBits:
			if len(payload) > maxFrameActs {
				return nil, envBadf("last batch bits claim %d acts", len(payload))
			}
			e.LastBits = append([]byte(nil), payload...)
		case envTagLastErr:
			status, n := binary.Uvarint(payload)
			if n <= 0 || status > 599 {
				return nil, envBadf("malformed last batch error status")
			}
			payload = payload[n:]
			retry, n := binary.Uvarint(payload)
			if n <= 0 || retry > math.MaxInt32 {
				return nil, envBadf("malformed last batch error retry")
			}
			payload = payload[n:]
			e.LastErr = &Error{Status: int(status), RetryAfter: int(retry), Msg: string(payload)}
		default:
			// Additive extension from a newer writer; skip.
		}
	}
	if !hasSession || !hasCourse || !hasSnapshot {
		return nil, envBadf("missing required fields")
	}
	return e, nil
}

// canSnapshot reports whether this manager has somewhere to freeze to.
func (m *Manager) canSnapshot() bool { return m.store != nil && m.dir != nil }

// freezeOut freezes one live session: persist to the store, publish the
// released directory entry, mark gone, release decode resources, and only
// THEN remove it from the shard map. The ordering is load-bearing: at
// every instant the session is either live in the map or has a released
// snapshot on file, so a concurrent request (or a gateway rescue) can
// never observe a gap and fall back to a stale checkpoint. removed
// reports whether this call did the removal (false when another path —
// leave, another freeze — released the session first).
func (m *Manager) freezeOut(sh *shard, h *hosted) (removed bool, err error) {
	t0 := time.Now()
	h.mu.Lock()
	if h.gone {
		h.mu.Unlock()
		return false, nil
	}
	env, err := m.persistLocked(h)
	if err != nil {
		h.mu.Unlock()
		return false, err // session stays live; better held than lost
	}
	m.dir.Save(h.id, SnapshotRef{Envelope: env})
	h.gone = true
	h.sess.Close()
	m.closeRoomLocked(h)
	h.mu.Unlock()
	sh.mu.Lock()
	delete(sh.sessions, h.id)
	sh.mu.Unlock()
	m.liveCount.Add(-1)
	sh.frozen.Add(1)
	m.freezeNs.ObserveSince(t0)
	return true, nil
}

// evictOut discards one live session without snapshotting (no store, or
// the store failed). Same map ordering as freezeOut.
func (m *Manager) evictOut(sh *shard, h *hosted) (removed bool) {
	h.mu.Lock()
	if h.gone {
		h.mu.Unlock()
		return false
	}
	h.gone = true
	h.sess.Close()
	m.closeRoomLocked(h)
	h.mu.Unlock()
	sh.mu.Lock()
	delete(sh.sessions, h.id)
	sh.mu.Unlock()
	m.liveCount.Add(-1)
	return true
}

// persistLocked writes h's current state (runtime snapshot + envelope)
// into the store and returns the envelope hash; h.mu must be held.
func (m *Manager) persistLocked(h *hosted) (blobstore.Hash, error) {
	snap := h.sess.Snapshot()
	snapHash, _, err := m.store.Put(snap)
	if err != nil {
		return blobstore.Hash{}, errf(http.StatusInternalServerError, "playsvc: persist snapshot: %v", err)
	}
	env := &envelope{
		Session:   h.id,
		Course:    h.course.name,
		EventBase: h.eventBase,
		Events:    h.events,
		Snapshot:  snapHash,
		LastBase:  h.lastBase,
		LastLen:   h.lastLen,
		LastBits:  h.lastBits,
		LastErr:   h.lastErr,
	}
	envHash, _, err := m.store.Put(env.encode())
	if err != nil {
		return blobstore.Hash{}, errf(http.StatusInternalServerError, "playsvc: persist envelope: %v", err)
	}
	return envHash, nil
}

// Freeze snapshots one live session to the shared store and releases it —
// the handoff primitive a cluster gateway calls on the old owner before
// the new owner restores. Freezing an already-frozen session is a no-op;
// a session this node neither hosts nor has a snapshot for is an error.
func (m *Manager) Freeze(session string) error {
	if !m.canSnapshot() {
		return errf(http.StatusNotImplemented, "playsvc: no snapshot store configured")
	}
	sh := m.shardFor(session)
	sh.mu.Lock()
	h := sh.sessions[session]
	sh.mu.Unlock()
	if h == nil {
		// Only a RELEASED entry means "already frozen"; a checkpoint entry
		// is stale insurance for a session this node does not hold.
		if ref, ok := m.dir.Lookup(session); ok && !ref.Checkpoint {
			return nil
		}
		return errf(http.StatusNotFound, "playsvc: no session %q", session)
	}
	_, err := m.freezeOut(sh, h)
	return err
}

// DrainAll freezes every hosted session (graceful shutdown / node
// removal) and reports how many it processed. Without a snapshot store it
// degrades to plain eviction. Draining is one-way: the node stops
// creating and thawing sessions, so a request racing the drain cannot
// strand a fresh session on a node that is about to disappear.
func (m *Manager) DrainAll() int {
	m.draining.Store(true)
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		victims := make([]*hosted, 0, len(sh.sessions))
		for _, h := range sh.sessions {
			victims = append(victims, h)
		}
		sh.mu.Unlock()
		for _, h := range victims {
			if m.canSnapshot() {
				if removed, err := m.freezeOut(sh, h); err == nil {
					if removed {
						n++
					}
					continue
				}
			}
			if m.evictOut(sh, h) {
				sh.evicted.Add(1)
				n++
			}
		}
	}
	return n
}

// Checkpoint snapshots every session with activity since its last
// checkpoint, bounding what a crash can lose to one checkpoint interval.
// Sessions are persisted without being released; identical consecutive
// states dedup in the content-addressed store. Returns how many sessions
// were persisted.
func (m *Manager) Checkpoint() int {
	if !m.canSnapshot() {
		return 0
	}
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		live := make([]*hosted, 0, len(sh.sessions))
		for _, h := range sh.sessions {
			live = append(live, h)
		}
		sh.mu.Unlock()
		for _, h := range live {
			seen := h.lastSeen.Load()
			if seen <= h.checkpointed.Load() {
				continue // idle since the last checkpoint
			}
			h.mu.Lock()
			if h.gone {
				h.mu.Unlock()
				continue
			}
			env, err := m.persistLocked(h)
			if err == nil {
				// Under h.mu, like every dir write for a held session: a
				// concurrent leave (which deletes the entry under the same
				// lock) must not be overwritten by a checkpoint of the
				// state it just retired.
				m.dir.Save(h.id, SnapshotRef{Envelope: env, Checkpoint: true})
				h.checkpointed.Store(seen)
			}
			h.mu.Unlock()
			if err != nil {
				continue // transient store failure; next pass retries
			}
			n++
		}
	}
	m.checkpoints.Add(int64(n))
	return n
}

// thaw restores a frozen session from the shared store, inserts it into
// the shard map and returns it — the lookup fallback that makes eviction
// and handoff invisible. Checkpoint entries are refused unless
// allowCheckpoint is set: a checkpoint means the session may still be
// live on another node, and thawing it would fork the session and roll
// its progress back; the gateway first rescues the live copy and only
// recovers from a checkpoint once no node has it. Concurrent thaws of one
// session race benignly: the first insert wins and the loser's restore is
// discarded. A valid tc records the restore as a "play.thaw" child span,
// so a handed-off act shows its thaw cost under the same trace id.
func (m *Manager) thaw(tc obs.TraceContext, session string, allowCheckpoint bool) (h *hosted, sh *shard, err error) {
	defer func(t0 time.Time) {
		if err == nil {
			m.thawNs.ObserveSince(t0)
		}
		m.ring.Record(tc.Child(), "play.thaw", t0, err)
	}(time.Now())
	notFound := errf(http.StatusNotFound, "playsvc: no session %q", session)
	if !m.canSnapshot() {
		return nil, nil, notFound
	}
	if m.draining.Load() {
		return nil, nil, errf(http.StatusServiceUnavailable, "playsvc: node is draining")
	}
	ref, ok := m.dir.Lookup(session)
	if !ok {
		return nil, nil, notFound
	}
	if ref.Checkpoint && !allowCheckpoint {
		return nil, nil, notFound
	}
	envBytes, err := m.store.Get(ref.Envelope)
	if err != nil {
		return nil, nil, errf(http.StatusNotFound, "playsvc: session %q envelope: %v", session, err)
	}
	env, err := decodeEnvelope(envBytes)
	if err != nil {
		return nil, nil, errf(http.StatusInternalServerError, "playsvc: session %q: %v", session, err)
	}
	if env.Session != session {
		return nil, nil, errf(http.StatusInternalServerError, "playsvc: envelope names session %q, wanted %q", env.Session, session)
	}
	m.coursesMu.RLock()
	c := m.courses[env.Course]
	m.coursesMu.RUnlock()
	if c == nil {
		return nil, nil, errf(http.StatusNotFound, "playsvc: session %q course %q is no longer published", session, env.Course)
	}
	snap, err := m.store.Get(env.Snapshot)
	if err != nil {
		return nil, nil, errf(http.StatusNotFound, "playsvc: session %q snapshot: %v", session, err)
	}
	// Thawing re-occupies a live slot; the cap applies exactly as on create.
	if n := m.liveCount.Add(1); m.opts.MaxSessions > 0 && n > int64(m.opts.MaxSessions) {
		m.liveCount.Add(-1)
		return nil, nil, errf(http.StatusServiceUnavailable, "playsvc: session cap (%d) reached", m.opts.MaxSessions)
	}
	h = &hosted{
		id: session, course: c,
		events: env.Events, eventBase: env.EventBase,
		lastBase: env.LastBase, lastLen: env.LastLen,
		lastBits: env.LastBits, lastErr: env.LastErr,
	}
	h.touch()
	restoreStart := time.Now()
	sess, err := runtime.RestoreSessionFromPackage(c.pkg, snap, runtime.Options{
		DecodeWorkers: m.opts.DecodeWorkers,
		Observer:      h,
		FrameCache:    c.frames,
	})
	if err != nil {
		m.liveCount.Add(-1)
		return nil, nil, errf(http.StatusInternalServerError, "playsvc: restore %q: %v", session, err)
	}
	m.restoreNs.ObserveSince(restoreStart)
	h.sess = sess
	h.checkpointed.Store(h.lastSeen.Load())
	// The released entry is about to be consumed: this node now owns the
	// live truth, and the entry degrades to crash insurance. Leaving it
	// marked released would let a later ring change thaw the stale bytes
	// into a second live copy. The downgrade happens BEFORE the session
	// becomes visible in the shard map: once it is held, every directory
	// write for it happens under h.mu (freeze, checkpoint, leave-delete),
	// and a late write here could clobber a concurrent leave's delete.
	m.dir.Save(session, SnapshotRef{Envelope: ref.Envelope, Checkpoint: true})
	sh = m.shardFor(session)
	sh.mu.Lock()
	if cur := sh.sessions[session]; cur != nil {
		sh.mu.Unlock()
		sess.Close()
		m.liveCount.Add(-1)
		return cur, sh, nil
	}
	sh.sessions[session] = h
	sh.mu.Unlock()
	sh.resumed.Add(1)
	return h, sh, nil
}

// lookupOrThaw resolves a session, restoring it from the snapshot
// directory when it is not live on this node. Only released snapshots
// thaw implicitly; checkpoint entries need Recover.
func (m *Manager) lookupOrThaw(tc obs.TraceContext, session string) (*hosted, *shard, error) {
	h, sh, err := m.lookup(session)
	if err == nil {
		return h, sh, nil
	}
	return m.thaw(tc, session, false)
}

// Recover thaws a session even from a checkpoint entry — the crash path.
// The caller (a cluster gateway, or an operator on a single node) asserts
// that no node still hosts the live session; what the last checkpoint
// captured is all that is left of it. Recovering an already-live or
// released session degrades to the normal lookup.
func (m *Manager) Recover(session string) error {
	h, _, err := m.lookup(session)
	if err == nil {
		h.touch()
		return nil
	}
	_, _, err = m.thaw(obs.TraceContext{}, session, true)
	return err
}
