package container

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/media/raster"
	"repro/internal/media/vcodec"
)

// fuzzBlob is a small valid container to seed the corpus.
var fuzzBlob = sync.OnceValue(func() []byte {
	f := raster.New(24, 16)
	f.FillVGradient(raster.Red, raster.Blue)
	enc, err := vcodec.NewEncoder(vcodec.Config{Width: 24, Height: 16, QStep: 6, GOP: 2, Workers: 1})
	if err != nil {
		panic(err)
	}
	mux, err := NewMuxer(Meta{Width: 24, Height: 16, FPS: 10, GOP: 2})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5; i++ {
		pkt, err := enc.Encode(f)
		if err != nil {
			panic(err)
		}
		if err := mux.AddPacket(pkt); err != nil {
			panic(err)
		}
	}
	if err := mux.AddChapter(Chapter{Name: "intro", Start: 0, End: 3}); err != nil {
		panic(err)
	}
	blob, err := mux.Finalize()
	if err != nil {
		panic(err)
	}
	return blob
})

// FuzzOpen feeds arbitrary blobs to the container parser. Open must never
// panic, and every rejection must be an ErrBadContainer or ErrTruncated so
// the streaming client can tell "fetch more" from "give up".
func FuzzOpen(f *testing.F) {
	blob := fuzzBlob()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("TKVC"))
	f.Add([]byte("TKVC\x01"))
	f.Add([]byte("JUNKJUNKJUNK"))
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:len(blob)-1])
	flip := append([]byte(nil), blob...)
	flip[len(flip)/2] ^= 1
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrBadContainer) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("Open error is neither ErrBadContainer nor ErrTruncated: %v", err)
			}
			if r != nil {
				t.Fatal("Open returned reader alongside error")
			}
			return
		}
		// A blob Open accepts must be internally consistent enough to walk.
		meta := r.Meta()
		if meta.FrameCount <= 0 {
			t.Fatalf("accepted container with frame count %d", meta.FrameCount)
		}
		for i := 0; i < meta.FrameCount; i++ {
			if _, _, err := r.PacketAt(i); err != nil {
				t.Fatalf("PacketAt(%d) on accepted container: %v", i, err)
			}
		}
		if _, err := r.KeyframeAtOrBefore(meta.FrameCount - 1); err != nil {
			t.Fatalf("KeyframeAtOrBefore on accepted container: %v", err)
		}
	})
}

// FuzzParseHead exercises the prefix parser the streaming client uses: it
// must never panic and must wrap ErrTruncated when given too few bytes so
// the client knows to fetch more.
func FuzzParseHead(f *testing.F) {
	blob := fuzzBlob()
	for _, n := range []int{0, 4, 8, len(blob) / 4, len(blob)} {
		f.Add(blob[:n])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHead(data)
		if err != nil {
			if !errors.Is(err, ErrBadContainer) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("ParseHead error is neither ErrBadContainer nor ErrTruncated: %v", err)
			}
			return
		}
		if h.TotalSize() <= 0 {
			t.Fatalf("accepted head with total size %d", h.TotalSize())
		}
	})
}
