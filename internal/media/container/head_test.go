package container

import (
	"errors"
	"testing"

	"repro/internal/media/vcodec"
)

func TestParseHeadFromPrefix(t *testing.T) {
	blob, film := buildBlob(t, 5, []Chapter{
		{Name: "a", Start: 0, End: 8},
		{Name: "b", Start: 8, End: 16},
	})
	full, err := ParseHead(blob)
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalSize() != len(blob) {
		t.Fatalf("TotalSize = %d, blob = %d", full.TotalSize(), len(blob))
	}
	if full.Meta().FrameCount != film.FrameCount() {
		t.Error("meta wrong")
	}
	if len(full.Chapters()) != 2 {
		t.Error("chapters wrong")
	}
	if _, ok := full.ChapterByName("b"); !ok {
		t.Error("ChapterByName failed")
	}
	// The head parses from any prefix that covers it; the data section is
	// not needed.
	head2, err := ParseHead(blob[:full.TotalSize()-full.dataLen])
	if err != nil {
		t.Fatalf("head-only prefix: %v", err)
	}
	if head2.Meta() != full.Meta() {
		t.Error("prefix parse differs")
	}
	// Short prefixes report ErrTruncated (grow-and-retry contract).
	for _, n := range []int{0, 3, 5, 9, 20} {
		if n > len(blob) {
			continue
		}
		_, err := ParseHead(blob[:n])
		if err == nil {
			t.Fatalf("prefix %d parsed", n)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadContainer) {
			t.Fatalf("prefix %d: unexpected error %v", n, err)
		}
	}
	// A prefix that stops inside the frame index must be ErrTruncated
	// specifically.
	if _, err := ParseHead(blob[:30]); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-index prefix error = %v, want ErrTruncated", err)
	}
}

func TestHeadFrameTypeAndKeyframe(t *testing.T) {
	blob, _ := buildBlob(t, 4, nil)
	h, err := ParseHead(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.Meta().FrameCount; i++ {
		ft, err := h.FrameType(i)
		if err != nil {
			t.Fatal(err)
		}
		if (ft == vcodec.IFrame) != (i%4 == 0) {
			t.Fatalf("frame %d type %v", i, ft)
		}
		k, err := h.KeyframeAtOrBefore(i)
		if err != nil {
			t.Fatal(err)
		}
		if k != i/4*4 {
			t.Fatalf("keyframe before %d = %d", i, k)
		}
	}
	if _, err := h.FrameType(-1); err == nil {
		t.Error("negative frame accepted")
	}
	if _, err := h.KeyframeAtOrBefore(h.Meta().FrameCount); err == nil {
		t.Error("out-of-range keyframe query accepted")
	}
}

func TestHeadByteRangeAndChunkExtraction(t *testing.T) {
	blob, _ := buildBlob(t, 5, nil)
	h, err := ParseHead(blob)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	from, to := 5, 12
	lo, hi, err := h.ByteRange(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if lo <= 0 || hi <= lo || hi > len(blob) {
		t.Fatalf("byte range [%d,%d)", lo, hi)
	}
	chunk := blob[lo:hi]
	for i := from; i < to; i++ {
		got, err := h.PacketFromChunk(chunk, from, i)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := r.PacketAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("packet %d differs via chunk path", i)
		}
	}
	// Packets outside the chunk are rejected.
	if _, err := h.PacketFromChunk(chunk, from, to); err == nil {
		t.Error("packet beyond chunk accepted")
	}
	if _, err := h.PacketFromChunk(chunk, from, from-1); err == nil {
		t.Error("packet before chunk accepted")
	}
	if _, err := h.PacketFromChunk(chunk[:3], from, from+1); err == nil {
		t.Error("short chunk accepted")
	}
	// Bad ranges.
	if _, _, err := h.ByteRange(-1, 3); err == nil {
		t.Error("negative range accepted")
	}
	if _, _, err := h.ByteRange(5, 5); err == nil {
		t.Error("empty range accepted")
	}
	if _, _, err := h.ByteRange(0, h.Meta().FrameCount+1); err == nil {
		t.Error("overlong range accepted")
	}
}

func TestWithChapters(t *testing.T) {
	blob, film := buildBlob(t, 5, []Chapter{{Name: "old", Start: 0, End: 10}})
	newBlob, err := WithChapters(blob, []Chapter{
		{Name: "first-half", Start: 0, End: film.FrameCount() / 2},
		{Name: "second-half", Start: film.FrameCount() / 2, End: film.FrameCount()},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(newBlob)
	if err != nil {
		t.Fatal(err)
	}
	chs := r.Chapters()
	if len(chs) != 2 || chs[0].Name != "first-half" {
		t.Fatalf("chapters = %+v", chs)
	}
	// Packets unchanged.
	orig, _ := Open(blob)
	for i := 0; i < r.Meta().FrameCount; i++ {
		a, _, _ := orig.PacketAt(i)
		b, _, _ := r.PacketAt(i)
		if string(a) != string(b) {
			t.Fatalf("packet %d changed by re-chaptering", i)
		}
	}
	// Invalid chapter sets are rejected.
	if _, err := WithChapters(blob, []Chapter{{Name: "x", Start: 0, End: 10_000}}); err == nil {
		t.Error("overlong chapter accepted")
	}
	if _, err := WithChapters([]byte("junk"), nil); err == nil {
		t.Error("junk blob accepted")
	}
}
