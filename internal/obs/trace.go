package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceHeader carries a TraceContext across HTTP hops as
// "trace/span/parent" (parent may be empty). The gateway mints a context
// for requests arriving without one, so every act routed through the
// cluster is traceable end to end: gateway span → node span (parented on
// the gateway's) → thaw/handoff child spans.
const TraceHeader = "X-Vgbl-Trace"

// TraceContext identifies one request's position in a trace tree.
type TraceContext struct {
	Trace  string `json:"trace"`            // shared by every span of one request chain
	Span   string `json:"span"`             // this hop
	Parent string `json:"parent,omitempty"` // the hop that caused this one
}

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("obs: trace id entropy: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// NewTrace mints a fresh root context.
func NewTrace() TraceContext {
	return TraceContext{Trace: randHex(8), Span: randHex(4)}
}

// Valid reports whether the context carries a trace id.
func (t TraceContext) Valid() bool { return t.Trace != "" }

// Child derives the context for a sub-operation: same trace, new span,
// parented on this one. Child of an invalid context is invalid, so
// instrumented internals called outside any trace stay silent.
func (t TraceContext) Child() TraceContext {
	if !t.Valid() {
		return TraceContext{}
	}
	return TraceContext{Trace: t.Trace, Span: randHex(4), Parent: t.Span}
}

// String renders the header form "trace/span/parent".
func (t TraceContext) String() string {
	return t.Trace + "/" + t.Span + "/" + t.Parent
}

// ParseTrace decodes the header form; ok is false for anything
// malformed.
func ParseTrace(s string) (TraceContext, bool) {
	parts := strings.Split(s, "/")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
		return TraceContext{}, false
	}
	t := TraceContext{Trace: parts[0], Span: parts[1]}
	if len(parts) == 3 {
		t.Parent = parts[2]
	}
	return t, true
}

// TraceFromRequest extracts the context from an incoming request (zero
// value when absent or malformed).
func TraceFromRequest(r *http.Request) TraceContext {
	tc, _ := ParseTrace(r.Header.Get(TraceHeader))
	return tc
}

// Inject writes the context onto outgoing request headers.
func (t TraceContext) Inject(h http.Header) {
	if t.Valid() {
		h.Set(TraceHeader, t.String())
	}
}

// Span is one recorded operation.
type Span struct {
	Trace    string        `json:"trace"`
	Span     string        `json:"span"`
	Parent   string        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Node     string        `json:"node,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// SpanRing is a bounded in-memory span buffer — one per node, newest
// overwrites oldest. It is the whole storage story for /debug/traces:
// enough to follow a recent request across nodes, nothing to operate.
type SpanRing struct {
	node string

	mu     sync.Mutex
	buf    []Span
	next   int
	filled bool
	total  int64 // spans ever recorded (recent ring overwrites are invisible)
}

// NewSpanRing builds a ring of the given capacity (default 512) whose
// spans are stamped with the node name.
func NewSpanRing(node string, capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = 512
	}
	return &SpanRing{node: node, buf: make([]Span, capacity)}
}

// Node returns the name spans are stamped with.
func (r *SpanRing) Node() string { return r.node }

// Record appends one completed span for tc. Invalid contexts are dropped
// silently, so hot paths can call this unconditionally and only traced
// requests pay for the ring.
func (r *SpanRing) Record(tc TraceContext, name string, start time.Time, err error) {
	if !tc.Valid() {
		return
	}
	s := Span{
		Trace:    tc.Trace,
		Span:     tc.Span,
		Parent:   tc.Parent,
		Name:     name,
		Node:     r.node,
		Start:    start,
		Duration: time.Since(start),
	}
	if err != nil {
		s.Err = err.Error()
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	r.total++
	r.mu.Unlock()
}

// Total counts spans ever recorded (including ones the ring has since
// overwritten).
func (r *SpanRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Spans returns recorded spans, newest first, optionally filtered by
// trace id, up to limit (0 = all retained).
func (r *SpanRing) Spans(trace string, limit int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.buf)
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent write.
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		s := r.buf[idx]
		if trace != "" && s.Trace != trace {
			continue
		}
		out = append(out, s)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// Handler serves GET /debug/traces: the retained spans as JSON, newest
// first. ?trace=<id> filters to one trace; ?n=<k> bounds the result.
func (r *SpanRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		limit, _ := strconv.Atoi(q.Get("n"))
		spans := r.Spans(q.Get("trace"), limit)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Node  string `json:"node"`
			Spans []Span `json:"spans"`
		}{r.node, spans})
	})
}
