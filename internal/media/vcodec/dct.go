// Package vcodec implements the TKV1 block video codec used by the IVGBL
// platform.
//
// TKV1 is a teaching-grade but complete codec in the JPEG/MPEG lineage:
// frames are converted to YCbCr with 4:2:0 chroma subsampling, split into
// 8×8 blocks, transformed with a type-II DCT, uniformly quantized, zigzag
// scanned and entropy coded with run-length + varint coding. Frames are
// either intra (I) or predicted (P); P-frame blocks choose per-block between
// SKIP (copy from the reference), motion compensation with coded residual,
// and intra coding. Block rows are independent, so both encode and decode
// fan out across persistent worker goroutines.
//
// The transform is a scaled fixed-point integer DCT (Loeffler-Ligtenberg-
// Moshovitz butterfly, 13-bit constants): the hot path is pure int32/int64
// arithmetic with no float conversions. Coefficients carry three fractional
// bits (values are 8× the orthonormal DCT), which the quantizer folds into
// its divisor, so DC steps of half a unit stay exactly representable.
//
// It substitutes for the DirectShow-era playback stack the paper relied on:
// what the IVGBL runtime needs from a codec is random access at segment
// boundaries (I-frames) and a realistic decode cost, both of which TKV1
// provides.
package vcodec

const blockSize = 8

// coefScaleBits is the fixed-point fractional precision of transform
// coefficients: fdct8x8 outputs (and idct8x8 inputs) are 2^3 = 8 times the
// orthonormal 2-D DCT values.
const coefScaleBits = 3

// Fixed-point butterfly constants: round(c * 2^constBits) for the rotation
// cosines of the Loeffler 8-point DCT.
const (
	constBits = 13
	pass1Bits = 2

	fix0_298631336 = 2446
	fix0_390180644 = 3196
	fix0_541196100 = 4433
	fix0_765366865 = 6270
	fix0_899976223 = 7373
	fix1_175875602 = 9633
	fix1_501321110 = 12299
	fix1_847759065 = 15137
	fix1_961570560 = 16069
	fix2_053119869 = 16819
	fix2_562915447 = 20995
	fix3_072711026 = 25172
)

// descale rounds x to the nearest integer after dropping n fractional bits
// (arithmetic shift, so negative values round correctly).
func descale(x int64, n uint) int64 {
	return (x + 1<<(n-1)) >> n
}

// fdct8x8 computes the 2-D forward DCT of src (row-major 64 samples) into
// dst using two 1-D butterfly passes. Outputs are scaled by 2^coefScaleBits
// relative to the orthonormal DCT (a constant block of value v produces
// DC = 64·v, AC exactly 0).
func fdct8x8(src *[64]int32, dst *[64]int32) {
	var tmp [64]int64
	// Rows. Outputs carry pass1Bits extra fractional bits, folded away in
	// the column pass.
	for i := 0; i < 64; i += 8 {
		s0, s7 := int64(src[i+0]), int64(src[i+7])
		s1, s6 := int64(src[i+1]), int64(src[i+6])
		s2, s5 := int64(src[i+2]), int64(src[i+5])
		s3, s4 := int64(src[i+3]), int64(src[i+4])

		a0, a7 := s0+s7, s0-s7
		a1, a6 := s1+s6, s1-s6
		a2, a5 := s2+s5, s2-s5
		a3, a4 := s3+s4, s3-s4

		t10, t13 := a0+a3, a0-a3
		t11, t12 := a1+a2, a1-a2
		tmp[i+0] = (t10 + t11) << pass1Bits
		tmp[i+4] = (t10 - t11) << pass1Bits
		z1 := (t12 + t13) * fix0_541196100
		tmp[i+2] = descale(z1+t13*fix0_765366865, constBits-pass1Bits)
		tmp[i+6] = descale(z1-t12*fix1_847759065, constBits-pass1Bits)

		z1 = a4 + a7
		z2 := a5 + a6
		z3 := a4 + a6
		z4 := a5 + a7
		z5 := (z3 + z4) * fix1_175875602
		a4 *= fix0_298631336
		a5 *= fix2_053119869
		a6 *= fix3_072711026
		a7 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*(-fix1_961570560) + z5
		z4 = z4*(-fix0_390180644) + z5
		tmp[i+7] = descale(a4+z1+z3, constBits-pass1Bits)
		tmp[i+5] = descale(a5+z2+z4, constBits-pass1Bits)
		tmp[i+3] = descale(a6+z2+z3, constBits-pass1Bits)
		tmp[i+1] = descale(a7+z1+z4, constBits-pass1Bits)
	}
	// Columns.
	for c := 0; c < 8; c++ {
		s0, s7 := tmp[c], tmp[c+56]
		s1, s6 := tmp[c+8], tmp[c+48]
		s2, s5 := tmp[c+16], tmp[c+40]
		s3, s4 := tmp[c+24], tmp[c+32]

		a0, a7 := s0+s7, s0-s7
		a1, a6 := s1+s6, s1-s6
		a2, a5 := s2+s5, s2-s5
		a3, a4 := s3+s4, s3-s4

		t10, t13 := a0+a3, a0-a3
		t11, t12 := a1+a2, a1-a2
		dst[c] = int32(descale(t10+t11, pass1Bits))
		dst[c+32] = int32(descale(t10-t11, pass1Bits))
		z1 := (t12 + t13) * fix0_541196100
		dst[c+16] = int32(descale(z1+t13*fix0_765366865, constBits+pass1Bits))
		dst[c+48] = int32(descale(z1-t12*fix1_847759065, constBits+pass1Bits))

		z1 = a4 + a7
		z2 := a5 + a6
		z3 := a4 + a6
		z4 := a5 + a7
		z5 := (z3 + z4) * fix1_175875602
		a4 *= fix0_298631336
		a5 *= fix2_053119869
		a6 *= fix3_072711026
		a7 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*(-fix1_961570560) + z5
		z4 = z4*(-fix0_390180644) + z5
		dst[c+56] = int32(descale(a4+z1+z3, constBits+pass1Bits))
		dst[c+40] = int32(descale(a5+z2+z4, constBits+pass1Bits))
		dst[c+24] = int32(descale(a6+z2+z3, constBits+pass1Bits))
		dst[c+8] = int32(descale(a7+z1+z4, constBits+pass1Bits))
	}
}

// idct8x8 computes the 2-D inverse DCT of src (coefficients scaled by
// 2^coefScaleBits, as produced by fdct8x8/dequantize) into spatial samples.
// The coefficient scale is folded into the first descale, so the extra
// fractional bits improve (never hurt) reconstruction accuracy.
func idct8x8(src *[64]int32, dst *[64]int32) {
	var tmp [64]int64
	// Columns.
	for c := 0; c < 8; c++ {
		e2, e6 := int64(src[c+16]), int64(src[c+48])
		z1 := (e2 + e6) * fix0_541196100
		t2 := z1 - e6*fix1_847759065
		t3 := z1 + e2*fix0_765366865
		e0, e4 := int64(src[c]), int64(src[c+32])
		t0 := (e0 + e4) << constBits
		t1 := (e0 - e4) << constBits
		t10, t13 := t0+t3, t0-t3
		t11, t12 := t1+t2, t1-t2

		o0 := int64(src[c+56])
		o1 := int64(src[c+40])
		o2 := int64(src[c+24])
		o3 := int64(src[c+8])
		z1 = o0 + o3
		z2 := o1 + o2
		z3 := o0 + o2
		z4 := o1 + o3
		z5 := (z3 + z4) * fix1_175875602
		o0 *= fix0_298631336
		o1 *= fix2_053119869
		o2 *= fix3_072711026
		o3 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*(-fix1_961570560) + z5
		z4 = z4*(-fix0_390180644) + z5
		o0 += z1 + z3
		o1 += z2 + z4
		o2 += z2 + z3
		o3 += z1 + z4

		const shift = constBits - pass1Bits + coefScaleBits
		tmp[c] = descale(t10+o3, shift)
		tmp[c+56] = descale(t10-o3, shift)
		tmp[c+8] = descale(t11+o2, shift)
		tmp[c+48] = descale(t11-o2, shift)
		tmp[c+16] = descale(t12+o1, shift)
		tmp[c+40] = descale(t12-o1, shift)
		tmp[c+24] = descale(t13+o0, shift)
		tmp[c+32] = descale(t13-o0, shift)
	}
	// Rows.
	for i := 0; i < 64; i += 8 {
		e2, e6 := tmp[i+2], tmp[i+6]
		z1 := (e2 + e6) * fix0_541196100
		t2 := z1 - e6*fix1_847759065
		t3 := z1 + e2*fix0_765366865
		e0, e4 := tmp[i], tmp[i+4]
		t0 := (e0 + e4) << constBits
		t1 := (e0 - e4) << constBits
		t10, t13 := t0+t3, t0-t3
		t11, t12 := t1+t2, t1-t2

		o0, o1, o2, o3 := tmp[i+7], tmp[i+5], tmp[i+3], tmp[i+1]
		z1 = o0 + o3
		z2 := o1 + o2
		z3 := o0 + o2
		z4 := o1 + o3
		z5 := (z3 + z4) * fix1_175875602
		o0 *= fix0_298631336
		o1 *= fix2_053119869
		o2 *= fix3_072711026
		o3 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*(-fix1_961570560) + z5
		z4 = z4*(-fix0_390180644) + z5
		o0 += z1 + z3
		o1 += z2 + z4
		o2 += z2 + z3
		o3 += z1 + z4

		const shift = constBits + pass1Bits + coefScaleBits
		dst[i+0] = int32(descale(t10+o3, shift))
		dst[i+7] = int32(descale(t10-o3, shift))
		dst[i+1] = int32(descale(t11+o2, shift))
		dst[i+6] = int32(descale(t11-o2, shift))
		dst[i+2] = int32(descale(t12+o1, shift))
		dst[i+5] = int32(descale(t12-o1, shift))
		dst[i+3] = int32(descale(t13+o0, shift))
		dst[i+4] = int32(descale(t13-o0, shift))
	}
}

// zigzag maps scan order → block position, walking the 8×8 grid in the
// classic diagonal pattern so low-frequency coefficients come first and
// run-length coding sees long zero tails.
var zigzag = buildZigzag()

func buildZigzag() [64]int {
	var zz [64]int
	x, y, idx := 0, 0, 0
	up := true
	for idx < 64 {
		zz[idx] = y*blockSize + x
		idx++
		if up {
			switch {
			case x == blockSize-1:
				y++
				up = false
			case y == 0:
				x++
				up = false
			default:
				x++
				y--
			}
		} else {
			switch {
			case y == blockSize-1:
				x++
				up = true
			case x == 0:
				y++
				up = true
			default:
				x--
				y++
			}
		}
	}
	return zz
}

// quantDivisors returns the integer divisors for the DC and AC coefficients
// at the given quantizer step, in the 2^coefScaleBits coefficient domain.
// The DC coefficient uses half the step (minimum 1): DC errors are the most
// visible, they shift the whole block's brightness. Half-unit DC steps are
// exact here — that is why the coefficient scale exists.
func quantDivisors(qstep int) (dcDiv, acDiv int32) {
	dcDiv = int32(qstep) << (coefScaleBits - 1)
	if dcDiv < 1<<coefScaleBits {
		dcDiv = 1 << coefScaleBits
	}
	return dcDiv, int32(qstep) << coefScaleBits
}

// roundDiv divides rounding half away from zero (matching math.Round in the
// seed's float path). d must be positive.
func roundDiv(v, d int32) int32 {
	if v >= 0 {
		return (v + d/2) / d
	}
	return (v - d/2) / d
}

// quantize converts scaled DCT coefficients to integer levels with a
// uniform step, rounding to nearest.
func quantize(coefs *[64]int32, qstep int, levels *[64]int32) {
	dcDiv, acDiv := quantDivisors(qstep)
	levels[0] = roundDiv(coefs[zigzag[0]], dcDiv)
	for i := 1; i < 64; i++ {
		levels[i] = roundDiv(coefs[zigzag[i]], acDiv)
	}
}

// quantizeDeadzone is the residual-path quantizer: it truncates toward zero
// instead of rounding, giving a dead zone of ±qstep around zero. Without it,
// P-frames endlessly re-code the previous frame's quantization noise and
// static content never collapses to skip blocks.
func quantizeDeadzone(coefs *[64]int32, qstep int, levels *[64]int32) {
	dcDiv, acDiv := quantDivisors(qstep)
	levels[0] = coefs[zigzag[0]] / dcDiv
	for i := 1; i < 64; i++ {
		levels[i] = coefs[zigzag[i]] / acDiv
	}
}

// dequantize reverses quantize into natural (row-major) coefficient order,
// producing coefficients at the 2^coefScaleBits scale idct8x8 expects.
func dequantize(levels *[64]int32, qstep int, coefs *[64]int32) {
	dcDiv, acDiv := quantDivisors(qstep)
	for i := range coefs {
		coefs[i] = 0
	}
	coefs[zigzag[0]] = levels[0] * dcDiv
	for i := 1; i < 64; i++ {
		if levels[i] != 0 {
			coefs[zigzag[i]] = levels[i] * acDiv
		}
	}
}
