package experiments

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/content"
	"repro/internal/fleet"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// E17 measures what the binary wire protocol and act pipelining buy back
// of the remote-play tax E12 exposed. The same seed-locked interactive
// fleet runs against a gateway-fronted 3-node cluster four ways — JSON
// acts, binary batches of one, and pipelined binary at increasing depth —
// next to the local-simulation baseline. Outcomes must stay identical in
// every row (the golden-replay guarantee extends to the binary protocol);
// the ratio column is the deployment question: how close does hosted play
// get to local simulation once serialization and round trips stop being
// per-act costs? The acceptance bar is pipelined remote ≥ 0.5× local.
func E17(learners int) (string, error) {
	if learners <= 0 {
		learners = 200
	}
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E17 — binary wire protocol + act pipelining vs the remote-play tax\n")
	fmt.Fprintf(&b, "%d seed-locked guided learners; remote rows cross a consistent-hash\n", learners)
	b.WriteString("gateway into a 3-node cluster; pipelined rows buffer fire-and-forget\n")
	b.WriteString("acts client-side and ship them as one framed batch per flush\n\n")
	b.WriteString("  mode            | sessions/s | events/s | session p90 | vs local | outcomes\n")
	b.WriteString("  ----------------+------------+----------+-------------+----------+---------\n")

	modes := []struct {
		name        string
		interactive bool
		binary      bool
		pipeline    int
		mirror      bool
	}{
		{"local-sim", false, false, 0, false},
		{"remote-json", true, false, 0, false},
		{"remote-binary", true, true, 0, false},
		{"remote-pipe-4", true, true, 4, false},
		{"remote-pipe-8", true, true, 8, false},
		{"remote-pipe-16", true, true, 16, false},
		{"remote-mirror-16", true, true, 16, true},
	}
	var localRate float64
	var localAgg *analytics.Rolling
	for _, mode := range modes {
		rate, p90, events, agg, err := e17Run(blob, learners, mode.interactive, mode.binary, mode.pipeline, mode.mirror)
		if err != nil {
			return "", fmt.Errorf("%s: %w", mode.name, err)
		}
		ratio, match := "—", "—"
		if mode.interactive {
			ratio = fmt.Sprintf("%.2fx", rate/localRate)
			match = "= local"
			if localAgg == nil || localAgg.Events != agg.Events || localAgg.Knowledge != agg.Knowledge ||
				localAgg.Completed != agg.Completed || localAgg.QuizCorrect != agg.QuizCorrect {
				match = "DIVERGED"
			}
		} else {
			localRate, localAgg = rate, agg
		}
		fmt.Fprintf(&b, "  %-15s | %10.1f | %8.0f | %11v | %8s | %s\n",
			mode.name, rate, events, p90.Round(time.Microsecond), ratio, match)
	}
	b.WriteString("\nshape check: identical outcome columns in every row; the JSON row pays\n")
	b.WriteString("per-act reflection and gateway re-framing, the binary row removes the\n")
	b.WriteString("serialization, pipelining amortizes round trips, and the mirror row —\n")
	b.WriteString("a local replica answering every read and frame, acts shipped purely as\n")
	b.WriteString("reconciled batches — must land at >= 0.50x local simulation (E12\n")
	b.WriteString("measured 0.26x). Pure pipelining plateaus because every result-bearing\n")
	b.WriteString("act still flushes; the mirror removes those round trips entirely.\n")
	return b.String(), nil
}

// e17Run drives one fleet configuration and returns its throughput,
// session p90, event rate and aggregated outcomes.
func e17Run(blob []byte, learners int, interactive, binary bool, pipeline int, mirror bool) (float64, time.Duration, float64, *analytics.Rolling, error) {
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		return 0, 0, 0, nil, err
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 256})
	defer svc.Close()
	if err := srv.Mount("/telemetry/", svc.Handler()); err != nil {
		return 0, 0, 0, nil, err
	}
	front := httptest.NewServer(srv)
	defer front.Close()

	cfg := fleet.Config{
		ServerURL:    front.URL,
		Package:      "classroom",
		Learners:     learners,
		Concurrency:  64,
		Interactive:  interactive,
		Policy:       sim.GuidedFactory,
		Sim:          sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, Seed: 977},
		FlushEvery:   8,
		PlayBinary:   binary,
		PlayPipeline: pipeline,
		PlayMirror:   mirror,
	}
	if interactive {
		cfg.Sim.WatchEvery = 4
		cl, err := playsvc.NewCluster(playsvc.ClusterOptions{
			Node: playsvc.Options{Shards: 8, TTL: -1},
		})
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer cl.Close()
		if err := cl.AddCourse("classroom", blob); err != nil {
			return 0, 0, 0, nil, err
		}
		for i := 0; i < 3; i++ {
			if _, err := cl.StartNode(); err != nil {
				return 0, 0, 0, nil, err
			}
		}
		gw := httptest.NewServer(cl.Gateway().Handler())
		defer gw.Close()
		cfg.PlayURL = gw.URL
	}

	sum, err := fleet.Run(cfg)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if sum.Failed > 0 {
		return 0, 0, 0, nil, fmt.Errorf("%d learners failed: %v", sum.Failed, sum.Errors)
	}
	if !svc.Quiesce(30 * time.Second) {
		return 0, 0, 0, nil, fmt.Errorf("ingest queues did not drain")
	}
	cs := svc.Store().Snapshot()["classroom"]
	if cs.SessionsStarted != learners || cs.SessionsEnded != learners || cs.LiveSessions != 0 {
		return 0, 0, 0, nil, fmt.Errorf("telemetry accounting skewed: %+v", cs)
	}
	var agg analytics.Rolling
	for _, r := range sum.Reports {
		agg.Add(r)
	}
	return sum.SessionsPerSec, sum.Session.P90, sum.EventsPerSec, &agg, nil
}
