// Watch-chunk framing: the server-push wire format for room fan-out.
//
// A watch chunk is a 4-byte big-endian header length, a tagged-record
// header (the same magic + version + (tag,len,payload)* + CRC32 shape as
// the act frames), then the raw 24-bit RGB pixels. The pixels ride OUTSIDE
// the CRC on purpose: the header is encoded into a small recycled buffer
// and the pixel payload is the publication's shared immutable slice, so
// delivery is two writes and zero frame copies. Chunks self-describe their
// pixel length, so a chunked stream is just chunks back to back.
package playsvc

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/runtime"
)

const watchMagic = "VWCH"

// Watch-chunk record tags.
const (
	wtagSeq          = 1  // uvarint publication sequence number
	wtagTick         = 2  // uvarint session tick at publish
	wtagGeom         = 3  // uvarint w, h, pixLen
	wtagSkipped      = 4  // uvarint cumulative frames skipped for this watcher
	wtagEventStart   = 5  // uvarint absolute index of the first event below
	wtagEvent        = 6  // repeated: tick uvarint, kind str, detail str
	wtagEventCount   = 7  // uvarint total session events so far (ack target)
	wtagMessageStart = 8  // uvarint absolute index of the first message below
	wtagMessage      = 9  // repeated string
	wtagMessageCount = 10 // uvarint total messages so far (ack target)
	wtagQuiz         = 11 // string pending quiz id (absent = none)
)

// watchTails is the room-side tail view appendWatchChunk serializes; the
// caller holds Room.mu while building it.
type watchTails struct {
	eventBase    int
	events       []runtime.Event
	eventCount   int
	msgBase      int
	messages     []string
	messageCount int
	quiz         string
}

// appendWatchChunk encodes one publication header into dst (reused across
// polls; zero allocations once dst has capacity): length prefix, tagged
// records, CRC. The pixel payload is NOT appended — the caller writes
// p.pix directly after the returned header.
func appendWatchChunk(dst []byte, p *pub, skipped int64, t watchTails, seenEvents, seenMessages int) []byte {
	// One stack scratch for every numeric record: the hot path must stay
	// allocation-free, and binary.AppendUvarint(nil, …) would allocate.
	var scratch [3 * binary.MaxVarintLen64]byte
	out := append(dst[:0], 0, 0, 0, 0) // length prefix, patched below
	out = append(out, watchMagic...)
	out = binary.AppendUvarint(out, frameVersion)
	g := binary.PutUvarint(scratch[:], uint64(p.seq))
	out = frameAppend(out, wtagSeq, scratch[:g])
	g = binary.PutUvarint(scratch[:], uint64(p.tick))
	out = frameAppend(out, wtagTick, scratch[:g])
	g = binary.PutUvarint(scratch[:], uint64(p.w))
	g += binary.PutUvarint(scratch[g:], uint64(p.h))
	g += binary.PutUvarint(scratch[g:], uint64(len(p.pix)))
	out = frameAppend(out, wtagGeom, scratch[:g])
	g = binary.PutUvarint(scratch[:], uint64(max(skipped, 0)))
	out = frameAppend(out, wtagSkipped, scratch[:g])

	from := seenEvents - t.eventBase
	if from < 0 {
		from = 0
	}
	if from < len(t.events) {
		g = binary.PutUvarint(scratch[:], uint64(t.eventBase+from))
		out = frameAppend(out, wtagEventStart, scratch[:g])
		var ev []byte
		for i := from; i < len(t.events); i++ {
			e := &t.events[i]
			ev = ev[:0]
			ev = binary.AppendUvarint(ev, uint64(max(e.Tick, 0)))
			ev = appendStr(ev, e.Kind)
			ev = appendStr(ev, e.Detail)
			out = frameAppend(out, wtagEvent, ev)
		}
	}
	g = binary.PutUvarint(scratch[:], uint64(t.eventCount))
	out = frameAppend(out, wtagEventCount, scratch[:g])

	mfrom := seenMessages - t.msgBase
	if mfrom < 0 {
		mfrom = 0
	}
	if mfrom < len(t.messages) {
		g = binary.PutUvarint(scratch[:], uint64(t.msgBase+mfrom))
		out = frameAppend(out, wtagMessageStart, scratch[:g])
		for i := mfrom; i < len(t.messages); i++ {
			out = frameAppend(out, wtagMessage, []byte(t.messages[i]))
		}
	}
	g = binary.PutUvarint(scratch[:], uint64(t.messageCount))
	out = frameAppend(out, wtagMessageCount, scratch[:g])
	if t.quiz != "" {
		out = frameAppend(out, wtagQuiz, []byte(t.quiz))
	}
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out[4:]))
	binary.BigEndian.PutUint32(out[:4], uint32(len(out)-4))
	return out
}

// WatchUpdate is one parsed watch chunk: the publication metadata plus the
// event/message tails beyond the watcher's acknowledged seen-counts. The
// pixel payload travels separately (PixLen bytes following the header).
type WatchUpdate struct {
	Seq     int64
	Tick    int
	W, H    int
	PixLen  int
	Skipped int64 // cumulative frames the server dropped for this watcher

	EventStart   int // absolute index of Events[0]
	Events       []runtime.Event
	EventCount   int // total events so far; the next request's ack
	MessageStart int
	Messages     []string
	MessageCount int

	Quiz string // pending quiz id ("" = none)
}

// ParseWatchChunk parses one chunk header (the bytes between the length
// prefix and the pixels). Every rejection wraps ErrBadFrame.
func ParseWatchChunk(header []byte) (*WatchUpdate, error) {
	rest, err := frameBody(header, watchMagic)
	if err != nil {
		return nil, err
	}
	u := &WatchUpdate{}
	sawGeom := false
	for len(rest) > 0 {
		var tag uint64
		var payload []byte
		tag, payload, rest, err = nextRecord(rest)
		if err != nil {
			return nil, err
		}
		r := frameReader{payload}
		switch tag {
		case wtagSeq:
			v, err := r.uvarint()
			if err != nil {
				return nil, frameBadf("malformed seq")
			}
			u.Seq = int64(v)
		case wtagTick:
			if u.Tick, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed tick")
			}
		case wtagGeom:
			if u.W, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed width")
			}
			if u.H, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed height")
			}
			if u.PixLen, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed pixel length")
			}
			if u.PixLen > maxProxyBody {
				return nil, frameBadf("pixel payload claims %d bytes", u.PixLen)
			}
			sawGeom = true
		case wtagSkipped:
			v, err := r.uvarint()
			if err != nil {
				return nil, frameBadf("malformed skip count")
			}
			u.Skipped = int64(v)
		case wtagEventStart:
			if u.EventStart, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed event start")
			}
		case wtagEvent:
			var e runtime.Event
			if e.Tick, err = r.intBounded(); err != nil {
				return nil, frameBadf("event: %v", err)
			}
			if e.Kind, err = r.str(); err != nil {
				return nil, frameBadf("event: %v", err)
			}
			if e.Detail, err = r.str(); err != nil {
				return nil, frameBadf("event: %v", err)
			}
			u.Events = append(u.Events, e)
		case wtagEventCount:
			if u.EventCount, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed event count")
			}
		case wtagMessageStart:
			if u.MessageStart, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed message start")
			}
		case wtagMessage:
			u.Messages = append(u.Messages, string(payload))
		case wtagMessageCount:
			if u.MessageCount, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed message count")
			}
		case wtagQuiz:
			u.Quiz = string(payload)
		default:
			// Additive extension from a newer writer; skip.
		}
	}
	if !sawGeom {
		return nil, frameBadf("missing geometry record")
	}
	return u, nil
}
