package baseline

import (
	"testing"

	"repro/internal/content"
	"repro/internal/media/raster"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

func TestLinearLessonDeliversOnlyNarration(t *testing.T) {
	course := content.Classroom()
	rep := LinearLesson(course.Project, course.Film.FrameCount())
	if rep.Decisions != 0 {
		t.Fatal("linear lesson has no decisions")
	}
	// The classroom course delivers all knowledge through interaction; the
	// linear watcher gets none of it.
	if len(rep.Knowledge) != 0 {
		t.Fatalf("linear knowledge = %v, want none", rep.Knowledge)
	}
	// The museum narrates lab-safety on entry, but entry is gated behind
	// unlocking, which a passive watcher of footage does experience
	// (the film shows the lab) — our model counts OnEnter narration.
	museum := content.Museum()
	mrep := LinearLesson(museum.Project, museum.Film.FrameCount())
	if len(mrep.Knowledge) != 1 || mrep.Knowledge[0] != "lab-safety" {
		t.Fatalf("museum linear knowledge = %v", mrep.Knowledge)
	}
}

func TestInteractiveCeiling(t *testing.T) {
	if got := InteractiveKnowledgeCeiling(content.Classroom().Project); got != 3 {
		t.Fatalf("classroom ceiling = %d, want 3", got)
	}
	if got := InteractiveKnowledgeCeiling(content.Museum().Project); got != 3 {
		t.Fatalf("museum ceiling = %d, want 3", got)
	}
	lin := len(LinearLesson(content.Museum().Project, 0).Knowledge)
	if lin >= InteractiveKnowledgeCeiling(content.Museum().Project) {
		t.Fatal("linear must deliver strictly less than the interactive ceiling")
	}
}

func TestUnindexedSeekMatchesIndexed(t *testing.T) {
	film := synth.Generate(synth.Spec{
		W: 48, H: 32, FPS: 8, Shots: 2, MinShotFrames: 10, MaxShotFrames: 12, Seed: 4,
	})
	blob, err := studio.Record(film, studio.Options{GOP: 5})
	if err != nil {
		t.Fatal(err)
	}
	target := film.FrameCount() - 2
	f, decoded, err := UnindexedSeek(blob, target)
	if err != nil {
		t.Fatal(err)
	}
	if decoded != target+1 {
		t.Fatalf("decoded %d frames, want %d (no index = decode everything)", decoded, target+1)
	}
	// Must produce the same pixels as the real playback path.
	if p := raster.PSNR(film.Render(target), f); p < 22 {
		t.Errorf("unindexed seek frame PSNR %.1f", p)
	}
	if _, _, err := UnindexedSeek(blob, 9999); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, _, err := UnindexedSeek([]byte("junk"), 0); err == nil {
		t.Error("junk blob accepted")
	}
}

func TestEffortModelShape(t *testing.T) {
	course := content.Classroom()
	m := DefaultEffortModel()
	// The classroom course rebuilt through the tool takes roughly one
	// operation per object/event/catalog entry; 40 is generous.
	rep := m.Effort(course.Project, 40)
	if rep.Scenarios != 2 || rep.Objects != 7 {
		t.Fatalf("counted %d scenarios, %d objects", rep.Scenarios, rep.Objects)
	}
	if rep.HandUnits <= rep.ToolUnits {
		t.Fatal("hand-coding must cost more than the tool")
	}
	if rep.Ratio < 5 {
		t.Fatalf("effort ratio %.1f below the claimed >=5x", rep.Ratio)
	}
}

func TestProductionSweepShape(t *testing.T) {
	pts := DefaultProductionModel().Sweep([]int{5, 10, 20, 40})
	prevRatio := 0.0
	for i, p := range pts {
		if p.VideoHours >= p.ThreeHours {
			t.Fatalf("scenes=%d: video %f >= 3D %f", p.Scenes, p.VideoHours, p.ThreeHours)
		}
		if i > 0 && p.Ratio < prevRatio {
			t.Fatalf("3D/video ratio must widen with scale: %f then %f", prevRatio, p.Ratio)
		}
		prevRatio = p.Ratio
	}
}
