// Package raster provides RGB framebuffers and software drawing primitives.
//
// It is the pixel substrate for the whole IVGBL stack: the synthetic footage
// generator draws into Frames, the video codec compresses them, the playback
// engine hands them to the UI, and the headless widget toolkit composites
// widgets onto them. Everything is plain bytes — no display required.
package raster

import "fmt"

// RGB is a 24-bit color.
type RGB struct {
	R, G, B uint8
}

// Common colors used across the platform UI and synthetic scenes.
var (
	Black   = RGB{0, 0, 0}
	White   = RGB{255, 255, 255}
	Red     = RGB{220, 40, 40}
	Green   = RGB{40, 200, 80}
	Blue    = RGB{50, 90, 220}
	Yellow  = RGB{235, 215, 60}
	Cyan    = RGB{60, 200, 210}
	Magenta = RGB{200, 70, 190}
	Gray    = RGB{128, 128, 128}
	DarkGry = RGB{64, 64, 64}
	LightGr = RGB{200, 200, 200}
)

// Luma returns the BT.601 luminance of c in [0,255].
func (c RGB) Luma() uint8 {
	// Integer approximation: (77R + 150G + 29B) >> 8.
	return uint8((77*int(c.R) + 150*int(c.G) + 29*int(c.B)) >> 8)
}

// Lerp linearly interpolates from c to d by t in [0,1].
func (c RGB) Lerp(d RGB, t float64) RGB {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	mix := func(a, b uint8) uint8 {
		return uint8(float64(a) + (float64(b)-float64(a))*t + 0.5)
	}
	return RGB{mix(c.R, d.R), mix(c.G, d.G), mix(c.B, d.B)}
}

// Scale multiplies each channel by f, clamping to [0,255].
func (c RGB) Scale(f float64) RGB {
	s := func(v uint8) uint8 {
		x := float64(v) * f
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		return uint8(x + 0.5)
	}
	return RGB{s(c.R), s(c.G), s(c.B)}
}

// String implements fmt.Stringer as "#RRGGBB".
func (c RGB) String() string {
	return fmt.Sprintf("#%02X%02X%02X", c.R, c.G, c.B)
}

// Frame is a W×H RGB image stored row-major, 3 bytes per pixel.
// The zero Frame is empty; use New to allocate one.
type Frame struct {
	W, H int
	Pix  []uint8 // len == 3*W*H
}

// New allocates a black frame of the given size.
// It panics if either dimension is not positive.
func New(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid frame size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := New(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

// CopyFrom resizes f to g's dimensions and copies g's pixels, reusing f's
// pixel buffer when its capacity suffices. Frame-recycling consumers (the
// playback ring, the play service's per-session frame buffers) use it to
// keep steady-state rendering allocation-free.
func (f *Frame) CopyFrom(g *Frame) {
	n := 3 * g.W * g.H
	if cap(f.Pix) < n {
		f.Pix = make([]uint8, n)
	}
	f.Pix = f.Pix[:n]
	f.W, f.H = g.W, g.H
	copy(f.Pix, g.Pix)
}

// Bounds reports whether (x, y) lies inside the frame.
func (f *Frame) Bounds(x, y int) bool {
	return x >= 0 && y >= 0 && x < f.W && y < f.H
}

// At returns the pixel at (x, y). Out-of-bounds reads return Black.
func (f *Frame) At(x, y int) RGB {
	if !f.Bounds(x, y) {
		return Black
	}
	i := 3 * (y*f.W + x)
	return RGB{f.Pix[i], f.Pix[i+1], f.Pix[i+2]}
}

// Set writes the pixel at (x, y). Out-of-bounds writes are ignored.
func (f *Frame) Set(x, y int, c RGB) {
	if !f.Bounds(x, y) {
		return
	}
	i := 3 * (y*f.W + x)
	f.Pix[i], f.Pix[i+1], f.Pix[i+2] = c.R, c.G, c.B
}

// Fill paints the whole frame with c.
func (f *Frame) Fill(c RGB) {
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i], f.Pix[i+1], f.Pix[i+2] = c.R, c.G, c.B
	}
}

// FillVGradient paints a vertical gradient from top color a to bottom color b.
func (f *Frame) FillVGradient(a, b RGB) {
	for y := 0; y < f.H; y++ {
		t := 0.0
		if f.H > 1 {
			t = float64(y) / float64(f.H-1)
		}
		c := a.Lerp(b, t)
		row := 3 * y * f.W
		for x := 0; x < f.W; x++ {
			i := row + 3*x
			f.Pix[i], f.Pix[i+1], f.Pix[i+2] = c.R, c.G, c.B
		}
	}
}

// Equal reports whether f and g have identical size and pixels.
func (f *Frame) Equal(g *Frame) bool {
	if f.W != g.W || f.H != g.H {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != g.Pix[i] {
			return false
		}
	}
	return true
}

// Downsample returns a frame reduced by an integer factor using box
// averaging. factor must be >= 1.
func (f *Frame) Downsample(factor int) *Frame {
	if factor < 1 {
		panic("raster: downsample factor must be >= 1")
	}
	if factor == 1 {
		return f.Clone()
	}
	w := (f.W + factor - 1) / factor
	h := (f.H + factor - 1) / factor
	g := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, gr, b, n int
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sx, sy := x*factor+dx, y*factor+dy
					if sx >= f.W || sy >= f.H {
						continue
					}
					i := 3 * (sy*f.W + sx)
					r += int(f.Pix[i])
					gr += int(f.Pix[i+1])
					b += int(f.Pix[i+2])
					n++
				}
			}
			if n > 0 {
				g.Set(x, y, RGB{uint8(r / n), uint8(gr / n), uint8(b / n)})
			}
		}
	}
	return g
}

// Mix blends frame g into f in place with weight t in [0,1]
// (t=0 keeps f, t=1 replaces with g). Frames must be the same size.
func (f *Frame) Mix(g *Frame, t float64) {
	if f.W != g.W || f.H != g.H {
		panic("raster: Mix size mismatch")
	}
	if t <= 0 {
		return
	}
	if t > 1 {
		t = 1
	}
	a := int(t*256 + 0.5)
	for i := range f.Pix {
		f.Pix[i] = uint8((int(f.Pix[i])*(256-a) + int(g.Pix[i])*a) >> 8)
	}
}
