// Streaming fleet: N learners adaptively streaming one course, each on
// its own (optionally fault-injected) link with its own cache — the
// load shape where every learner pays for its bandwidth, unlike the
// play fleet's shared-cache delta sync. This is what the loadtest's
// -abr flags and experiment E19 drive.
package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/netstream"
)

// StreamConfig sizes a streaming fleet run.
type StreamConfig struct {
	ServerURL string // netstream server base URL
	Package   string // ladder package published under /pkg/

	Learners    int // fleet size (default 20)
	Concurrency int // max simultaneously streaming learners (default min(Learners, 32))

	// Profile names the faultnet link condition every learner streams
	// over ("clean", "wifi-flaky", "mobile-3g", "cap-<N>k"; default
	// clean). Each learner gets its own seeded transport.
	Profile string
	Seed    int64 // base RNG seed for the fault transports (offset per learner)

	ABR   netstream.ABRConfig // picker tuning (zero value = defaults)
	Speed float64             // playhead media-seconds per wall-second (default 1)
	// DecodeFrames makes every learner decode each segment's first
	// frame, proving fetched tiers actually play.
	DecodeFrames bool
}

// StreamSummary aggregates a streaming fleet run.
type StreamSummary struct {
	Learners     int
	Profile      string
	Segments     int
	Rebuffers    int
	Stalled      time.Duration
	Startup      Latency          // per-learner open cost (manifest → first playable segment)
	TierSegments map[string]int   // segments played per tier (TierLabel keys)
	TierBytes    map[string]int64 // wire bytes fetched per tier (TierLabel keys)
	BytesFetched int64            // total wire bytes across all learners
	Elapsed      time.Duration
}

// String renders the per-tier streaming table the load-test CLI prints.
func (s *StreamSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "STREAMING FLEET — %d learners over %q\n", s.Learners, s.Profile)
	fmt.Fprintf(&b, "  wall time        : %v\n", s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  segments played  : %d (%d rebuffers, %v stalled)\n",
		s.Segments, s.Rebuffers, s.Stalled.Round(time.Millisecond))
	fmt.Fprintf(&b, "  startup latency  : %s\n", s.Startup)
	fmt.Fprintf(&b, "  bytes fetched    : %d\n", s.BytesFetched)
	tiers := make([]string, 0, len(s.TierSegments))
	for tier := range s.TierSegments {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		fmt.Fprintf(&b, "  tier %-10s : %d segments, %d bytes\n", tier, s.TierSegments[tier], s.TierBytes[tier])
	}
	return b.String()
}

// RunStreamers streams the package through cfg.Learners adaptive
// players and aggregates their reports. Any learner error fails the run
// — a streaming fleet that silently drops learners would undercount
// rebuffers.
func RunStreamers(cfg StreamConfig) (*StreamSummary, error) {
	if cfg.ServerURL == "" || cfg.Package == "" {
		return nil, fmt.Errorf("fleet: need ServerURL and Package")
	}
	if cfg.Learners <= 0 {
		cfg.Learners = 20
	}
	if cfg.Concurrency <= 0 || cfg.Concurrency > cfg.Learners {
		cfg.Concurrency = cfg.Learners
	}
	if cfg.Concurrency > 32 {
		cfg.Concurrency = 32
	}
	profile, ok := faultnet.Lookup(cfg.Profile)
	if !ok {
		return nil, fmt.Errorf("fleet: unknown faultnet profile %q", cfg.Profile)
	}
	url := cfg.ServerURL + "/pkg/" + cfg.Package

	sum := &StreamSummary{
		Learners:     cfg.Learners,
		Profile:      profile.Name,
		TierSegments: map[string]int{},
		TierBytes:    map[string]int64{},
	}
	var (
		mu       sync.Mutex
		startups []time.Duration
		firstErr error
	)
	began := time.Now()
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Learners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Each learner rides its own seeded fault transport and its
			// own cache: a streaming fleet measures links, not cache
			// sharing.
			client := &netstream.Client{HTTP: faultnet.WrapClient(nil, profile, cfg.Seed+int64(i))}
			g, open, err := client.ProgressiveOpenABR(url, netstream.NewPackageCache(), cfg.ABR)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: learner %d open: %w", i, err)
				}
				mu.Unlock()
				return
			}
			player := &netstream.StreamPlayer{Game: g, Speed: cfg.Speed, DecodeFrames: cfg.DecodeFrames}
			rep, err := player.Play()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: learner %d: %w", i, err)
				}
				return
			}
			startups = append(startups, open.Elapsed+rep.Startup)
			sum.Segments += rep.Segments
			sum.Rebuffers += rep.Rebuffers
			sum.Stalled += rep.Stalled
			sum.BytesFetched += int64(open.BytesFetched + rep.Stats.BytesFetched)
			for tier, n := range rep.TierPicks {
				sum.TierSegments[netstream.TierLabel(tier)] += n
			}
			for tier, n := range g.TierBytes() {
				sum.TierBytes[netstream.TierLabel(tier)] += n
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sum.Startup = quantiles(startups)
	sum.Elapsed = time.Since(began)
	return sum, nil
}
