package playsvc

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/content"
)

// liveCluster brings up an n-node cluster with the classroom course and a
// gateway front.
func liveCluster(t testing.TB, n int, node Options) (*Cluster, *httptest.Server) {
	t.Helper()
	if node.TTL == 0 {
		node.TTL = -1
	}
	if node.Shards == 0 {
		node.Shards = 4
	}
	cl, err := NewCluster(ClusterOptions{Node: node})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := cl.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(cl.Gateway().Handler())
	t.Cleanup(ts.Close)
	return cl, ts
}

// TestGatewayRouting: sessions created through the gateway spread across
// nodes by consistent hashing, and every /play/* verb works through it.
func TestGatewayRouting(t *testing.T) {
	cl, ts := liveCluster(t, 3, Options{})
	const n = 24
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = dial(t, ts, nil)
		clients[i].Talk("teacher")
		if err := clients[i].Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	// Each client landed on the node its id hashes to, and more than one
	// node carries load.
	populated := 0
	total := 0
	for _, name := range cl.NodeNames() {
		live := cl.Node(name).Manager.Live()
		total += live
		if live > 0 {
			populated++
		}
	}
	if total != n {
		t.Fatalf("cluster hosts %d sessions, want %d", total, n)
	}
	if populated < 2 {
		t.Fatalf("all sessions landed on %d node(s)", populated)
	}
	gs := cl.Gateway().Stats()
	if gs.Creates != n || gs.Sessions != n || gs.Cluster.SessionsLive != n {
		t.Fatalf("gateway stats: %+v", gs)
	}
	// Frames work through the gateway too.
	f, err := clients[0].Frame()
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 160 || f.H != 120 {
		t.Fatalf("frame %dx%d", f.W, f.H)
	}
	for _, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.Gateway().SessionCount(); got != 0 {
		t.Fatalf("gateway still tracks %d sessions", got)
	}
	if live := cl.Gateway().Stats().Cluster.SessionsLive; live != 0 {
		t.Fatalf("cluster still hosts %d", live)
	}
}

// TestGatewayGracefulNodeRemoval: stopping a node drains its sessions
// into the shared store; clients keep playing, their sessions thawed by
// the new owners.
func TestGatewayGracefulNodeRemoval(t *testing.T) {
	cl, ts := liveCluster(t, 3, Options{})
	const n = 18
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = dial(t, ts, nil)
		clients[i].Talk("teacher")
	}
	// Stop whichever node hosts the most sessions.
	var victim string
	most := -1
	for _, name := range cl.NodeNames() {
		if live := cl.Node(name).Manager.Live(); live > most {
			victim, most = name, live
		}
	}
	if most == 0 {
		t.Fatal("no node hosts anything")
	}
	if err := cl.StopNode(victim); err != nil {
		t.Fatal(err)
	}
	// Every client continues: strayed sessions are rescued on demand.
	for _, c := range clients {
		c.Talk("teacher")
		if err := c.Advance(1); err != nil {
			t.Fatal(err)
		}
		if c.Err() != nil {
			t.Fatalf("client failed after node removal: %v", c.Err())
		}
	}
	gs := cl.Gateway().Stats()
	if gs.Cluster.SessionsLive != n {
		t.Fatalf("live = %d, want %d", gs.Cluster.SessionsLive, n)
	}
	if gs.Cluster.SessionsResumed == 0 {
		t.Fatal("no session was thawed after the drain")
	}
	for _, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGatewayNodeAdditionMigratesLazily: adding a node changes some ids'
// owners; their next act is rescued off the old owner (freeze → thaw)
// with no client-visible hiccup.
func TestGatewayNodeAdditionMigratesLazily(t *testing.T) {
	cl, ts := liveCluster(t, 1, Options{})
	const n = 16
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = dial(t, ts, nil)
		clients[i].Talk("teacher")
	}
	if _, err := cl.StartNode(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StartNode(); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		c.Talk("teacher")
		if c.Err() != nil {
			t.Fatalf("client failed after node addition: %v", c.Err())
		}
	}
	gs := cl.Gateway().Stats()
	if gs.Cluster.SessionsLive != n {
		t.Fatalf("live = %d, want %d", gs.Cluster.SessionsLive, n)
	}
	// With 1→3 nodes roughly two thirds of the ids move; at least one
	// must have (vanishingly unlikely otherwise).
	if gs.Rescues == 0 {
		t.Fatal("no session migrated to the new nodes")
	}
	spread := 0
	for _, name := range cl.NodeNames() {
		if cl.Node(name).Manager.Live() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("sessions on %d node(s) after expansion", spread)
	}
	for _, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGatewayCrashRecovery: a killed node loses post-checkpoint progress
// but nothing else — the gateway routes around the dead node (its breaker
// starts absorbing failures; the ring drop waits for deadNodeLimit) and
// the session thaws from its last checkpoint on a survivor.
func TestGatewayCrashRecovery(t *testing.T) {
	cl, ts := liveCluster(t, 2, Options{})
	c := dial(t, ts, nil)
	if err := c.Advance(5); err != nil {
		t.Fatal(err)
	}
	owner, err := cl.Gateway().ownerOf(c.SessionID())
	if err != nil {
		t.Fatal(err)
	}
	if n := cl.Node(owner.name).Manager.Checkpoint(); n != 1 {
		t.Fatalf("checkpointed %d", n)
	}
	// Progress past the checkpoint, then the node dies WITHOUT telling
	// anyone — its listener just stops answering.
	if err := c.Advance(3); err != nil {
		t.Fatal(err)
	}
	cl.Node(owner.name).srv.Close()
	// The next act hits the dead node, the gateway excludes it for the
	// rest of the call and retries on the survivor; the ticks since the
	// last checkpoint are gone, which is exactly the advertised loss bound.
	if err := c.Advance(1); err != nil {
		t.Fatalf("act after crash: %v", err)
	}
	if c.Err() != nil {
		t.Fatalf("client stuck: %v", c.Err())
	}
	if got := c.Ticks(); got != 6 {
		t.Fatalf("resumed ticks = %d, want 6 (5 checkpointed + 1 new; 3 lost)", got)
	}
	gs := cl.Gateway().Stats()
	if gs.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (thawed from crash checkpoint)", gs.Recoveries)
	}
	if gs.Retries == 0 {
		t.Fatal("retries = 0, want >0 (act replayed off the dead node)")
	}
	// One failed hop is far below deadNodeLimit: the node stays on the
	// ring (its breaker shields it) instead of being ejected outright.
	if gs.DeadRemoved != 0 {
		t.Fatalf("dead nodes removed = %d, want 0", gs.DeadRemoved)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reap the crashed node's process-level remains.
	if err := cl.KillNode(owner.name); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayResumeAfterClusterRestart: a fresh client resumes by id
// through the gateway after every original node is gone (replaced), as
// long as store+dir survive.
func TestGatewayResumeAfterClusterRestart(t *testing.T) {
	cl, ts := liveCluster(t, 2, Options{})
	c := dial(t, ts, nil)
	c.Talk("teacher")
	id := c.SessionID()
	msgs := len(c.Messages())
	// Rolling restart: start replacements, stop originals.
	old := cl.NodeNames()
	for i := 0; i < 2; i++ {
		if _, err := cl.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range old {
		if err := cl.StopNode(name); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := Dial(ClientOptions{
		BaseURL: ts.URL,
		Resume:  id,
		Project: content.Classroom().Project,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Messages()) != msgs {
		t.Fatalf("resumed transcript has %d messages, want %d", len(c2.Messages()), msgs)
	}
	c2.Talk("teacher")
	if c2.Err() != nil {
		t.Fatal(c2.Err())
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConsistentHashStability: removing one node only reassigns the ids
// it owned; everyone else keeps their owner.
func TestConsistentHashStability(t *testing.T) {
	g := NewGateway(nil)
	for i := 0; i < 4; i++ {
		if err := g.AddNode(fmt.Sprintf("n%d", i), fmt.Sprintf("http://127.0.0.1:%d", 10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddNode("n0", "http://x"); err == nil {
		t.Fatal("duplicate node name accepted")
	}
	const ids = 1000
	before := map[string]string{}
	perNode := map[string]int{}
	for i := 0; i < ids; i++ {
		id := fmt.Sprintf("classroom-%08d", i)
		n, err := g.ownerOf(id)
		if err != nil {
			t.Fatal(err)
		}
		before[id] = n.name
		perNode[n.name]++
	}
	// Reasonable balance: every node owns something substantial.
	for name, count := range perNode {
		if count < ids/16 {
			t.Fatalf("node %s owns only %d/%d ids", name, count, ids)
		}
	}
	g.RemoveNode("n2", false)
	moved := 0
	for id, owner := range before {
		now, err := g.ownerOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if owner == "n2" {
			if now.name == "n2" {
				t.Fatal("removed node still owns ids")
			}
			moved++
			continue
		}
		if now.name != owner {
			t.Fatalf("id %s moved %s→%s though its owner survived", id, owner, now.name)
		}
	}
	if moved != perNode["n2"] {
		t.Fatalf("moved %d ids, want exactly n2's %d", moved, perNode["n2"])
	}
	if err := g.RemoveNode("ghost", false); err == nil {
		t.Fatal("removing an unknown node succeeded")
	}
}
