package playsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/media/raster"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// ClientOptions configures a play-service client.
type ClientOptions struct {
	BaseURL string // server base, e.g. "http://127.0.0.1:8807"
	Course  string // published course name to create a session on
	// Resume reattaches to an existing (possibly frozen) session instead
	// of creating a new one: Dial sends a resume create and rebuilds the
	// mirror from the returned state and full transcript. Course may be
	// left empty; the reply names it.
	Resume string
	// Project is the course document (from the downloaded package); the
	// client resolves scenarios, objects and quizzes against it locally so
	// policies can plan without a round trip.
	Project *core.Project
	// Observer, when set, receives every remote event in arrival order —
	// the hook the fleet plugs its analytics collector and telemetry
	// client into, exactly as for a local session.
	Observer runtime.Observer
	// Trace, when valid, is injected into every request's X-Vgbl-Trace
	// header (a fresh child span per request), so the spans the gateway
	// and nodes record all link back to this client's trace id. The zero
	// value disables tracing; servers mint their own roots.
	Trace obs.TraceContext
	// HTTP defaults to faultnet.DefaultHTTPClient() — a client with real
	// connect/header timeouts, not the timeout-free http.DefaultClient.
	HTTP *http.Client
	// Retry tunes the per-request retry policy (backoff with full
	// jitter). nil means the faultnet defaults: 4 attempts, 10ms base,
	// 1s cap. Retries are safe by construction: Dial mints the session id
	// client-side so creates are idempotent, and every act carries a
	// sequence number the server deduplicates on.
	Retry *faultnet.RetryPolicy
	// Timeout bounds each HTTP attempt (not the whole retried operation).
	// 0 means 10s; negative disables the deadline.
	Timeout time.Duration
}

// Client drives one server-hosted session over HTTP. It implements
// sim.Game, so simulator policies (and sim.Replay) work against it
// unchanged. A Client mirrors the hosted session's state after every act;
// it is not safe for concurrent use — like a runtime.Session, one learner
// drives it.
type Client struct {
	opts  ClientOptions
	id    string
	retry faultnet.RetryPolicy

	w, h, fps int
	tick      int
	state     *core.State
	messages  []string
	seen      int    // events forwarded to the observer so far
	quiz      string // pending quiz id ("" = none)
	seq       int64  // act sequence number (server-side retry dedup)

	resumes int // successful auto-resumes (session survived a dead node)

	frame raster.Frame // reusable fetched-frame buffer
	err   error        // sticky transport/session failure
}

// Interface check: the simulator must be able to drive a remote session
// exactly like a local one.
var _ sim.Game = (*Client)(nil)

// clientTimeout is the default per-attempt request deadline.
const clientTimeout = 10 * time.Second

// clientRetryBudget is the default wall-clock retry budget: long enough
// that a brief full partition (hundreds of milliseconds) always sees one
// attempt land after connectivity returns.
const clientRetryBudget = 2 * time.Second

// Dial creates a hosted session on the server and returns a client bound
// to it. Events emitted while entering the start scenario are delivered to
// the observer before Dial returns, mirroring runtime.NewSession.
//
// Dial mints the session id itself (unless resuming): the create request
// names it, so a retried create whose first reply was lost reattaches to
// the session the server already built instead of leaking a duplicate.
func Dial(o ClientOptions) (*Client, error) {
	if o.BaseURL == "" || (o.Course == "" && o.Resume == "") {
		return nil, fmt.Errorf("playsvc: client needs BaseURL and a Course or Resume id")
	}
	if o.Project == nil {
		return nil, fmt.Errorf("playsvc: client needs the course Project")
	}
	if o.HTTP == nil {
		o.HTTP = faultnet.DefaultHTTPClient()
	}
	c := &Client{opts: o}
	if o.Retry != nil {
		c.retry = faultnet.RetryPolicy{
			Attempts:  o.Retry.Attempts,
			BaseDelay: o.Retry.BaseDelay,
			MaxDelay:  o.Retry.MaxDelay,
			Budget:    o.Retry.Budget,
			Seed:      o.Retry.Seed,
			Sleep:     o.Retry.Sleep,
		}
	} else {
		// An interactive client rides out brief correlated outages (a
		// network partition) by wall-clock, not attempt count.
		c.retry = faultnet.RetryPolicy{Budget: clientRetryBudget}
	}
	req := &CreateRequest{Course: o.Course, Resume: o.Resume}
	if req.Resume == "" {
		req.Session = newSessionID(o.Course)
	}
	reply, err := c.postRetry(c.opts.BaseURL+CreatePath, req)
	if err != nil {
		return nil, err
	}
	c.id = reply.Session
	if reply.Course != "" {
		c.opts.Course = reply.Course
	}
	c.w, c.h, c.fps = reply.Width, reply.Height, reply.FPS
	c.apply(reply)
	return c, nil
}

// SessionID returns the session identifier.
func (c *Client) SessionID() string { return c.id }

// VideoMeta returns the hosted video's geometry (from the create reply).
func (c *Client) VideoMeta() (w, h, fps int) { return c.w, c.h, c.fps }

// Err returns the sticky failure ("" path errors like a wrong quiz answer
// id are returned to the caller instead and do not stick).
func (c *Client) Err() error { return c.err }

// Resumes reports how many times the client transparently resumed its
// session after losing the hosting node.
func (c *Client) Resumes() int { return c.resumes }

// apply folds a server reply into the client mirror and forwards unseen
// events to the observer.
func (c *Client) apply(r *Reply) {
	c.tick = r.Tick
	if r.State != nil {
		c.state = r.State
	}
	c.messages = append(c.messages, r.Messages...)
	c.quiz = r.Quiz
	if c.opts.Observer != nil {
		for _, e := range r.Events {
			c.opts.Observer.Record(e)
		}
	}
	c.seen = r.EventCount
}

// fail records a sticky failure: the session is gone or unreachable, so
// every later call fails fast with the same error.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// finalize applies the sticky-failure rule after retries (and the resume
// fallback) are spent. A 400 is the caller's mistake (wrong quiz id, bad
// argument) and leaves the session usable; every other failure sticks.
// This rule is load-bearing for the fleet's failure model.
func (c *Client) finalize(err error) error {
	if err == nil {
		return nil
	}
	if pe, ok := err.(*Error); ok && pe.Status == http.StatusBadRequest {
		return err
	}
	return c.fail(err)
}

// timeout resolves the per-attempt deadline.
func (c *Client) timeout() time.Duration {
	switch {
	case c.opts.Timeout < 0:
		return 0
	case c.opts.Timeout == 0:
		return clientTimeout
	}
	return c.opts.Timeout
}

// responseError turns a non-OK response into a typed error, wrapping it
// with the server's advertised Retry-After delay when the status is
// retryable (load shedding, transient 5xx).
func responseError(resp *http.Response, what string) (error, bool) {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	err := errf(resp.StatusCode, "playsvc: %s: %s: %s", what, resp.Status, bytes.TrimSpace(msg))
	if !faultnet.RetryableStatus(resp.StatusCode) && resp.StatusCode != http.StatusNotFound {
		return err, false
	}
	if after, ok := faultnet.RetryAfterDelay(resp.Header); ok {
		return &faultnet.Delayed{After: after, Err: err}, true
	}
	return err, true
}

// attempt performs one HTTP attempt under the per-attempt deadline and
// decodes the reply. The returned bool reports whether the failure is
// retryable. It never sticks — the caller decides after the budget.
func (c *Client) attempt(method, url string, payload []byte, what string) (*Reply, error, bool) {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d := c.timeout(); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	defer cancel()
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err, false
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		// Transport-level failure. Retrying is safe for every request this
		// client sends: GETs are idempotent, creates carry a client-minted
		// id, and acts carry a sequence number the server dedups on.
		return nil, err, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err, retryable := responseError(resp, what)
		return nil, err, retryable
	}
	var r Reply
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, fmt.Errorf("playsvc: %s: decode: %w", what, err), true
	}
	return &r, nil, false
}

// postRetry sends one JSON request with the retry policy.
func (c *Client) postRetry(url string, body any) (*Reply, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	var reply *Reply
	err = c.retry.Do(func(int) (error, bool) {
		r, aerr, retryable := c.attempt(http.MethodPost, url, payload, "request")
		reply = r
		return aerr, retryable
	})
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// getRetry fetches one JSON reply with the retry policy.
func (c *Client) getRetry(url, what string) (*Reply, error) {
	var reply *Reply
	err := c.retry.Do(func(int) (error, bool) {
		r, aerr, retryable := c.attempt(http.MethodGet, url, nil, what)
		reply = r
		return aerr, retryable
	})
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// recoverable reports whether a terminal error may mean "the hosting
// node died but the session snapshot survives" — the case the resume
// fallback exists for. Client mistakes (400), conflicts and explicit
// shedding are not session loss.
func recoverable(err error) bool {
	if pe, ok := err.(*Error); ok {
		return pe.Status == http.StatusNotFound || pe.Status == http.StatusServiceUnavailable
	}
	// Transport-class failure: the node (or path to it) is gone.
	return true
}

// resumeOnce reattaches to the session via the snapshot path: a resume
// create thaws the latest released-or-checkpoint snapshot (the gateway
// re-routes it to the session's current ring owner) and the reply
// refreshes the mirror.
func (c *Client) resumeOnce() error {
	r, err := c.postRetry(c.opts.BaseURL+CreatePath, &CreateRequest{
		Resume:       c.id,
		SeenEvents:   c.seen,
		SeenMessages: len(c.messages),
	})
	if err != nil {
		return err
	}
	c.resumes++
	c.apply(r)
	return nil
}

// act posts one interaction and folds the reply in. Every act carries a
// fresh sequence number; retries (and the post-resume replay) reuse it,
// so the server applies the act at most once. If the session's node died
// mid-act, the client resumes from the snapshot path and replays.
func (c *Client) act(req *ActRequest) (*Reply, error) {
	if c.err != nil {
		return nil, c.err
	}
	req.Session = c.id
	req.SeenEvents = c.seen
	req.SeenMessages = len(c.messages)
	c.seq++
	req.Seq = c.seq
	r, err := c.postRetry(c.opts.BaseURL+ActPath, req)
	if err != nil && recoverable(err) {
		if rerr := c.resumeOnce(); rerr == nil {
			// The mirror moved (resume refreshed seen-counts); re-stamp
			// the act's view before replaying it under the same seq.
			req.SeenEvents = c.seen
			req.SeenMessages = len(c.messages)
			r, err = c.postRetry(c.opts.BaseURL+ActPath, req)
		}
	}
	if err != nil {
		return nil, c.finalize(err)
	}
	c.apply(r)
	return r, nil
}

// Sync fetches the session view without acting on it, folding in — and
// thereby acknowledging — any event or message tail the server still
// retains. After a Sync the server holds no unacknowledged state for this
// client, which makes it the natural last call before a planned handoff.
func (c *Client) Sync() error {
	if c.err != nil {
		return c.err
	}
	url := fmt.Sprintf("%s%s?session=%s&events=%d&messages=%d",
		c.opts.BaseURL, StatePath, c.id, c.seen, len(c.messages))
	r, err := c.getRetry(url, "sync")
	if err != nil && recoverable(err) {
		if rerr := c.resumeOnce(); rerr == nil {
			// The resume reply IS the synced view.
			return nil
		}
	}
	if err != nil {
		return c.finalize(err)
	}
	c.apply(r)
	return nil
}

// Project implements sim.Game.
func (c *Client) Project() *core.Project { return c.opts.Project }

// State implements sim.Game: the mirrored server-side state after the
// last act. Treat it as read-only.
func (c *Client) State() *core.State { return c.state }

// Scenario implements sim.Game.
func (c *Client) Scenario() *core.Scenario {
	return c.opts.Project.ScenarioByID(c.state.Scenario)
}

// Ended implements sim.Game.
func (c *Client) Ended() bool { return c.state.Ended }

// Outcome returns the end label ("" while running).
func (c *Client) Outcome() string { return c.state.Outcome }

// Ticks returns the hosted session's tick counter after the last act.
func (c *Client) Ticks() int { return c.tick }

// Messages implements sim.Game.
func (c *Client) Messages() []string {
	return append([]string(nil), c.messages...)
}

// PendingQuiz implements sim.Game.
func (c *Client) PendingQuiz() (*core.Quiz, bool) {
	if c.quiz == "" {
		return nil, false
	}
	q := c.opts.Project.QuizByID(c.quiz)
	return q, q != nil
}

// AnswerQuiz implements sim.Game.
func (c *Client) AnswerQuiz(quizID string, choice int) (bool, error) {
	r, err := c.act(&ActRequest{Kind: ActQuiz, Quiz: quizID, Choice: choice})
	if err != nil {
		return false, err
	}
	return r.Correct != nil && *r.Correct, nil
}

// Click implements sim.Game.
func (c *Client) Click(vx, vy int) { c.act(&ActRequest{Kind: ActClick, X: vx, Y: vy}) }

// Examine implements sim.Game.
func (c *Client) Examine(objectID string) { c.act(&ActRequest{Kind: ActExamine, Object: objectID}) }

// Talk implements sim.Game.
func (c *Client) Talk(objectID string) { c.act(&ActRequest{Kind: ActTalk, Object: objectID}) }

// Take implements sim.Game.
func (c *Client) Take(objectID string) bool {
	r, err := c.act(&ActRequest{Kind: ActTake, Object: objectID})
	return err == nil && r.Took != nil && *r.Took
}

// UseItemOn implements sim.Game.
func (c *Client) UseItemOn(item, objectID string) {
	c.act(&ActRequest{Kind: ActUse, Item: item, Object: objectID})
}

// SelectItem implements sim.Game.
func (c *Client) SelectItem(item string) error {
	_, err := c.act(&ActRequest{Kind: ActSelect, Item: item})
	return err
}

// ClearSelection implements sim.Game.
func (c *Client) ClearSelection() { c.act(&ActRequest{Kind: ActClear}) }

// GotoScenario implements sim.Game.
func (c *Client) GotoScenario(id string) error {
	_, err := c.act(&ActRequest{Kind: ActGoto, Object: id})
	return err
}

// Advance implements sim.Game: one round trip regardless of tick count.
func (c *Client) Advance(ticks int) error {
	if ticks <= 0 {
		return c.err
	}
	_, err := c.act(&ActRequest{Kind: ActTick, Ticks: ticks})
	return err
}

// Watch implements sim.Game: it fetches the current presentation frame
// into the client's reusable buffer (see Frame).
func (c *Client) Watch() error {
	_, err := c.Frame()
	return err
}

// Frame fetches the hosted session's presentation frame. The returned
// frame is client-owned and recycled by the next fetch.
func (c *Client) Frame() (*raster.Frame, error) {
	if c.err != nil {
		return nil, c.err
	}
	f, err := c.frameRetry()
	if err != nil && recoverable(err) {
		if rerr := c.resumeOnce(); rerr == nil {
			f, err = c.frameRetry()
		}
	}
	if err != nil {
		return nil, c.finalize(err)
	}
	return f, nil
}

// frameRetry fetches the frame under the retry policy (a frame GET is
// idempotent; re-fetching after a lost response just renders again).
func (c *Client) frameRetry() (*raster.Frame, error) {
	var frame *raster.Frame
	err := c.retry.Do(func(int) (error, bool) {
		f, aerr, retryable := c.frameAttempt()
		frame = f
		return aerr, retryable
	})
	if err != nil {
		return nil, err
	}
	return frame, nil
}

func (c *Client) frameAttempt() (*raster.Frame, error, bool) {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d := c.timeout(); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+FramePath+"?session="+c.id, nil)
	if err != nil {
		return nil, err, false
	}
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, err, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err, retryable := responseError(resp, "frame")
		return nil, err, retryable
	}
	w, _ := strconv.Atoi(resp.Header.Get("X-Frame-Width"))
	h, _ := strconv.Atoi(resp.Header.Get("X-Frame-Height"))
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("playsvc: frame response missing geometry"), false
	}
	tick := c.tick
	if v := resp.Header.Get("X-Frame-Tick"); v != "" {
		tick, _ = strconv.Atoi(v)
	}
	n := 3 * w * h
	if cap(c.frame.Pix) < n {
		c.frame.Pix = make([]uint8, n)
	}
	c.frame.Pix = c.frame.Pix[:n]
	c.frame.W, c.frame.H = w, h
	if _, err := io.ReadFull(resp.Body, c.frame.Pix); err != nil {
		// A truncated body (reset mid-stream) re-fetches cleanly.
		return nil, fmt.Errorf("playsvc: short frame body: %w", err), true
	}
	c.tick = tick
	return &c.frame, nil, false
}

// Close releases the hosted session (a "leave" act). Events emitted by the
// final interactions are still delivered to the observer. Closing an
// already-failed client still attempts the leave — if the session survived
// whatever broke the client, it should not linger until TTL eviction —
// and returns the sticky error.
func (c *Client) Close() error {
	if c.err == nil {
		_, err := c.act(&ActRequest{Kind: ActLeave})
		return err
	}
	sticky := c.err
	c.seq++
	if resp, err := c.opts.HTTP.Post(c.opts.BaseURL+ActPath, "application/json",
		bytes.NewReader(mustJSON(&ActRequest{Session: c.id, Kind: ActLeave, Seq: c.seq}))); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return sticky
}

// mustJSON marshals a value that cannot fail (plain request structs).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
