package fleet

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/content"
	"repro/internal/gamepack"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

var (
	oncePkg sync.Once
	pkgBlob []byte
	pkgErr  error
)

func classroomBlob(t *testing.T) []byte {
	t.Helper()
	oncePkg.Do(func() {
		pkgBlob, pkgErr = content.Classroom().BuildPackage(studio.Options{QStep: 12, Workers: 2})
	})
	if pkgErr != nil {
		t.Fatal(pkgErr)
	}
	return pkgBlob
}

// liveStack brings up a netstream.Server with the classroom package, a
// mounted telemetry service and a mounted play service — the full
// deployment the load generator targets.
func liveStack(t *testing.T, opts telemetry.Options) (*httptest.Server, *telemetry.Service, *playsvc.Manager) {
	t.Helper()
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	svc := telemetry.NewService(opts)
	t.Cleanup(svc.Close)
	h := svc.Handler()
	if err := srv.Mount("/telemetry/", h); err != nil {
		t.Fatal(err)
	}
	if err := srv.Mount(telemetry.HealthPath, h); err != nil {
		t.Fatal(err)
	}
	mgr := playsvc.NewManager(playsvc.Options{})
	t.Cleanup(mgr.Close)
	if err := mgr.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Mount("/play/", mgr.Handler()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, svc, mgr
}

// TestFleet500StatsExact is the subsystem's acceptance test: 500 concurrent
// simulated learners play against a live netstream.Server, reporting
// through batched telemetry, and the ingested course totals must equal the
// sum of the 500 local per-session analytics reports — exactly.
func TestFleet500StatsExact(t *testing.T) {
	ts, svc, _ := liveStack(t, telemetry.Options{Workers: 8, QueueDepth: 256})
	const learners = 500
	sum, err := Run(Config{
		ServerURL:   ts.URL,
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Policy:      sim.GuidedFactory,
		Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30},
		FlushEvery:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("%d learners failed: %v", sum.Failed, sum.Errors)
	}
	if len(sum.Reports) != learners {
		t.Fatalf("reports = %d", len(sum.Reports))
	}
	if !svc.Quiesce(30 * time.Second) {
		t.Fatal("ingest queues did not drain")
	}

	// Ground truth: the straight sum of the per-session local reports.
	var want analytics.Rolling
	for _, r := range sum.Reports {
		want.Add(r)
	}
	cs := svc.Store().Snapshot()["classroom"]
	if cs.SessionsStarted != learners || cs.SessionsEnded != learners || cs.LiveSessions != 0 {
		t.Fatalf("session accounting: %+v", cs)
	}
	if cs.Events != want.Events || cs.Decisions != want.Decisions ||
		cs.Knowledge != want.Knowledge || cs.UniqueKnowledge != want.UniqueKnowledge ||
		cs.Rewards != want.Rewards || cs.Completed != want.Completed ||
		cs.Ticks != want.Ticks || cs.QuizAsked != want.QuizAsked ||
		cs.QuizCorrect != want.QuizCorrect {
		t.Errorf("ingested totals diverge from summed reports:\n got %+v\nwant %+v", cs, want)
	}
	for unit, n := range want.KnowledgeCounts {
		if cs.KnowledgeCounts[unit] != n {
			t.Errorf("KnowledgeCounts[%q] = %d, want %d", unit, cs.KnowledgeCounts[unit], n)
		}
	}
	for outcome, n := range want.Outcomes {
		if cs.Outcomes[outcome] != n {
			t.Errorf("Outcomes[%q] = %d, want %d", outcome, cs.Outcomes[outcome], n)
		}
	}
	sessions := 0
	for _, n := range cs.TickHist {
		sessions += n
	}
	if sessions != learners {
		t.Errorf("tick histogram holds %d sessions: %v", sessions, cs.TickHist)
	}

	// The manifest cache did its job: one cold delta sync (the prefetch:
	// manifest + every distinct chunk, exactly once), then one 304
	// revalidation per learner.
	if sum.Fetch.NotModified != learners {
		t.Errorf("not-modified = %d, want %d", sum.Fetch.NotModified, learners)
	}
	man, err := gamepack.ExtractManifest(classroomBlob(t))
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := len(man.Encode())
	for _, size := range man.ChunkSet() {
		wantBytes += size
	}
	if sum.Fetch.BytesFetched != wantBytes {
		t.Errorf("fetched %d bytes, want exactly one manifest+chunk sync (%d)", sum.Fetch.BytesFetched, wantBytes)
	}
	if sum.Fetch.ChunksFetched != len(man.ChunkSet()) {
		t.Errorf("fetched %d chunks, want %d", sum.Fetch.ChunksFetched, len(man.ChunkSet()))
	}
	if sum.EventsReported != want.Events {
		t.Errorf("events reported = %d, want %d", sum.EventsReported, want.Events)
	}
	if sum.BatchesReported < learners { // at least the final done batch each
		t.Errorf("batches = %d", sum.BatchesReported)
	}
	if sum.Completed == 0 {
		t.Error("no guided learner completed the classroom mission")
	}
}

// TestFleetProgressiveAndInterval exercises the ranged-startup measurement
// and the interval flusher on a small fleet.
func TestFleetProgressiveAndInterval(t *testing.T) {
	ts, svc, _ := liveStack(t, telemetry.Options{})
	sum, err := Run(Config{
		ServerURL:          ts.URL,
		Package:            "classroom",
		Learners:           10,
		Policy:             sim.ExplorerFactory,
		Sim:                sim.Config{MaxSteps: 6, TicksPerStep: 1, Patience: 30},
		FlushEvery:         1000, // only the timer and Close flush
		FlushInterval:      2 * time.Millisecond,
		ProgressiveStartup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("failures: %v", sum.Errors)
	}
	if !svc.Quiesce(10 * time.Second) {
		t.Fatal("drain")
	}
	var want analytics.Rolling
	for _, r := range sum.Reports {
		want.Add(r)
	}
	cs := svc.Store().Snapshot()["classroom"]
	if cs.Events != want.Events || cs.SessionsEnded != 10 {
		t.Errorf("stats = %+v, want events %d", cs, want.Events)
	}
	// Progressive startup adds ranged requests beyond the one download +
	// per-learner revalidations.
	if sum.Fetch.Requests <= 11 {
		t.Errorf("requests = %d, expected ranged startup fetches on top", sum.Fetch.Requests)
	}
	if sum.Startup.Max <= 0 || sum.Session.Max <= 0 {
		t.Errorf("latency summaries empty: %+v / %+v", sum.Startup, sum.Session)
	}
}

// TestPlaysvc200Learners is the play service's scale/race acceptance test:
// 200 concurrent learners play the full game over the wire — every click,
// quiz answer and scenario switch is an HTTP act against server-hosted
// sessions — while reporting through telemetry. Session accounting on the
// play service and ingested telemetry totals must both be exact.
func TestPlaysvc200Learners(t *testing.T) {
	ts, svc, mgr := liveStack(t, telemetry.Options{Workers: 8, QueueDepth: 256})
	const learners = 200
	sum, err := Run(Config{
		ServerURL:   ts.URL,
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Interactive: true,
		Policy:      sim.GuidedFactory,
		Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, WatchEvery: 4},
		FlushEvery:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("%d learners failed: %v", sum.Failed, sum.Errors)
	}
	if len(sum.Reports) != learners {
		t.Fatalf("reports = %d", len(sum.Reports))
	}
	if sum.Completed == 0 {
		t.Error("no remote guided learner completed the classroom mission")
	}

	// Exact session accounting on the play service: every learner created
	// one hosted session and released it on the way out.
	ps := mgr.Snapshot()
	if ps.SessionsCreated != learners || ps.SessionsClosed != learners ||
		ps.SessionsLive != 0 || ps.SessionsEvicted != 0 {
		t.Fatalf("play service accounting: %+v", ps)
	}
	if ps.Acts < int64(learners)*12 {
		t.Errorf("acts = %d, implausibly low for %d learners", ps.Acts, learners)
	}
	if ps.Frames == 0 {
		t.Error("WatchEvery fetched no frames")
	}
	var sumCreated int64
	for _, ss := range ps.Shards {
		sumCreated += ss.Created
	}
	if sumCreated != ps.SessionsCreated {
		t.Errorf("per-shard created sums to %d, total says %d", sumCreated, ps.SessionsCreated)
	}

	// Exact telemetry accounting, same bar as the local-sim fleet: the
	// ingested course totals equal the sum of the local per-learner reports
	// digested from the events the server emitted.
	if !svc.Quiesce(30 * time.Second) {
		t.Fatal("ingest queues did not drain")
	}
	var want analytics.Rolling
	for _, r := range sum.Reports {
		want.Add(r)
	}
	cs := svc.Store().Snapshot()["classroom"]
	if cs.SessionsStarted != learners || cs.SessionsEnded != learners || cs.LiveSessions != 0 {
		t.Fatalf("telemetry session accounting: %+v", cs)
	}
	if cs.Events != want.Events || cs.Decisions != want.Decisions ||
		cs.Knowledge != want.Knowledge || cs.UniqueKnowledge != want.UniqueKnowledge ||
		cs.Rewards != want.Rewards || cs.Completed != want.Completed ||
		cs.Ticks != want.Ticks || cs.QuizAsked != want.QuizAsked ||
		cs.QuizCorrect != want.QuizCorrect {
		t.Errorf("ingested totals diverge from summed reports:\n got %+v\nwant %+v", cs, want)
	}
	if sum.EventsReported != want.Events {
		t.Errorf("events reported = %d, want %d", sum.EventsReported, want.Events)
	}
}

// TestFleetInteractiveMatchesLocalTotals runs the same seeded fleet twice —
// local simulation vs remote play — and requires identical aggregate
// learning outcomes: hosting the session server-side must not change what
// learners experience.
func TestFleetInteractiveMatchesLocalTotals(t *testing.T) {
	run := func(interactive bool) *Summary {
		ts, svc, _ := liveStack(t, telemetry.Options{Workers: 4, QueueDepth: 256})
		sum, err := Run(Config{
			ServerURL:   ts.URL,
			Package:     "classroom",
			Learners:    20,
			Interactive: interactive,
			Policy:      sim.GuidedFactory,
			Sim:         sim.Config{MaxSteps: 10, TicksPerStep: 1, Patience: 30, Seed: 5},
			FlushEvery:  8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Failed != 0 {
			t.Fatalf("failures: %v", sum.Errors)
		}
		if !svc.Quiesce(10 * time.Second) {
			t.Fatal("drain")
		}
		return sum
	}
	local, remote := run(false), run(true)
	var localAgg, remoteAgg analytics.Rolling
	for i := range local.Reports {
		localAgg.Add(local.Reports[i])
		remoteAgg.Add(remote.Reports[i])
	}
	if localAgg.Events != remoteAgg.Events || localAgg.Knowledge != remoteAgg.Knowledge ||
		localAgg.Completed != remoteAgg.Completed || localAgg.Ticks != remoteAgg.Ticks ||
		localAgg.QuizCorrect != remoteAgg.QuizCorrect {
		t.Errorf("local and remote fleets diverge:\nlocal  %+v\nremote %+v", localAgg, remoteAgg)
	}
	if local.Steps != remote.Steps {
		t.Errorf("steps: local %d, remote %d", local.Steps, remote.Steps)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{ServerURL: "http://127.0.0.1:1", Package: "nope", Learners: 1}); err == nil {
		t.Error("unreachable server not reported")
	}
}

func TestSummaryString(t *testing.T) {
	s := &Summary{Learners: 3, Completed: 2, Failed: 1, Errors: []string{"learner 0: boom"}}
	out := s.String()
	for _, want := range []string{"3 learners", "2 completed", "boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
