package analytics

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/runtime"
)

func sampleEvents() []runtime.Event {
	return []runtime.Event{
		{Tick: 0, Kind: "say", Detail: "welcome"},
		{Tick: 2, Kind: "examine", Detail: "computer"},
		{Tick: 3, Kind: "learn", Detail: "ram-identification"},
		{Tick: 4, Kind: "take", Detail: "desk-coin"},
		{Tick: 8, Kind: "goto", Detail: "market"},
		{Tick: 10, Kind: "take", Detail: "stall-ram"},
		{Tick: 11, Kind: "learn", Detail: "hardware-shopping"},
		{Tick: 14, Kind: "goto", Detail: "classroom"},
		{Tick: 16, Kind: "use", Detail: "ram module on computer"},
		{Tick: 16, Kind: "learn", Detail: "ram-installation"},
		{Tick: 16, Kind: "learn", Detail: "ram-installation"}, // duplicate
		{Tick: 16, Kind: "reward", Detail: "repair-badge"},
		{Tick: 16, Kind: "end", Detail: "victory"},
	}
}

func collectorWith(events []runtime.Event) *Collector {
	c := &Collector{}
	for _, e := range events {
		c.Record(e)
	}
	return c
}

func TestDigest(t *testing.T) {
	r := collectorWith(sampleEvents()).Digest("classroom")
	if r.TotalEvents != 13 {
		t.Errorf("events = %d", r.TotalEvents)
	}
	if r.Decisions != 4 { // examine, take, take, use
		t.Errorf("decisions = %d, want 4", r.Decisions)
	}
	if !r.Ended || r.Outcome != "victory" {
		t.Error("outcome lost")
	}
	if got := r.UniqueKnowledge(); len(got) != 3 {
		t.Errorf("unique knowledge = %v", got)
	}
	if len(r.Knowledge) != 4 {
		t.Errorf("raw knowledge = %v", r.Knowledge)
	}
	// Scenario path and time accounting.
	if strings.Join(r.Scenarios, ",") != "classroom,market,classroom" {
		t.Errorf("path = %v", r.Scenarios)
	}
	// classroom: 0..8 then 14..16 = 10; market: 8..14 = 6.
	if r.ScenarioTicks["classroom"] != 10 || r.ScenarioTicks["market"] != 6 {
		t.Errorf("ticks = %v", r.ScenarioTicks)
	}
}

func TestReportString(t *testing.T) {
	r := collectorWith(sampleEvents()).Digest("classroom")
	s := r.String()
	for _, want := range []string{"victory", "classroom -> market", "repair-badge", "decisions: 4"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestEmptyCollector(t *testing.T) {
	r := (&Collector{}).Digest("start")
	if r.TotalEvents != 0 || r.Decisions != 0 || r.Ended {
		t.Error("empty digest wrong")
	}
	if r.ScenarioTicks["start"] != 0 {
		t.Error("start scenario should have zero ticks")
	}
	if !strings.Contains(r.String(), "in progress") {
		t.Error("in-progress marker missing")
	}
}

func TestAggregateReports(t *testing.T) {
	r1 := collectorWith(sampleEvents()).Digest("classroom")
	r2 := (&Collector{}).Digest("classroom") // empty session
	a := AggregateReports([]*Report{r1, r2})
	if a.Sessions != 2 {
		t.Fatal("session count")
	}
	if a.MeanDecisions != 2 { // (4+0)/2
		t.Errorf("mean decisions = %f", a.MeanDecisions)
	}
	if a.CompletionRate != 0.5 {
		t.Errorf("completion = %f", a.CompletionRate)
	}
	if a.MeanKnowledge != 1.5 {
		t.Errorf("mean knowledge = %f", a.MeanKnowledge)
	}
	if a.KnowledgeCounts["ram-installation"] != 1 {
		t.Errorf("knowledge counts = %v", a.KnowledgeCounts)
	}
	empty := AggregateReports(nil)
	if empty.Sessions != 0 {
		t.Error("empty aggregate")
	}
}

func TestCollectorConcurrentSafety(t *testing.T) {
	c := &Collector{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(runtime.Event{Tick: i, Kind: "click"})
			}
		}(g)
	}
	wg.Wait()
	if got := len(c.Events()); got != 800 {
		t.Fatalf("events = %d, want 800", got)
	}
}

// TestRollingMergeMatchesSum runs N concurrent Collectors (as the simulator
// and the telemetry service do), digests each on its own goroutine into a
// per-goroutine Rolling, merges the partials into one course-level
// accumulator, and checks the totals equal the straight sum of the
// per-session reports. Run under -race this also proves the merge path
// needs no shared state.
func TestRollingMergeMatchesSum(t *testing.T) {
	const sessions = 64
	reports := make([]*Report, sessions)
	partials := make([]Rolling, 8)
	var wg sync.WaitGroup
	for g := 0; g < len(partials); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < sessions; i += len(partials) {
				c := &Collector{}
				for _, e := range sampleEvents() {
					c.Record(e)
				}
				// Vary the tail so sessions are not identical.
				if i%3 == 0 {
					c.Record(runtime.Event{Tick: 20, Kind: "learn", Detail: "bonus"})
				}
				if i%2 == 0 {
					c.Record(runtime.Event{Tick: 21, Kind: "click", Detail: "door"})
				}
				r := c.Digest("classroom")
				reports[i] = r
				partials[g].Add(r)
			}
		}(g)
	}
	wg.Wait()

	var merged Rolling
	for i := range partials {
		merged.Merge(&partials[i])
	}

	var want Rolling
	for _, r := range reports {
		want.Add(r)
	}
	if merged.Sessions != sessions || want.Sessions != sessions {
		t.Fatalf("sessions = %d / %d, want %d", merged.Sessions, want.Sessions, sessions)
	}
	if merged.Events != want.Events || merged.Decisions != want.Decisions ||
		merged.Knowledge != want.Knowledge || merged.UniqueKnowledge != want.UniqueKnowledge ||
		merged.Rewards != want.Rewards || merged.Completed != want.Completed ||
		merged.Ticks != want.Ticks || merged.QuizAsked != want.QuizAsked ||
		merged.QuizCorrect != want.QuizCorrect {
		t.Errorf("merged = %+v\nwant   = %+v", merged, want)
	}
	for k, n := range want.KnowledgeCounts {
		if merged.KnowledgeCounts[k] != n {
			t.Errorf("KnowledgeCounts[%q] = %d, want %d", k, merged.KnowledgeCounts[k], n)
		}
	}
	if merged.Outcomes["victory"] != sessions {
		t.Errorf("Outcomes = %v", merged.Outcomes)
	}

	// The merged aggregate equals AggregateReports over all sessions.
	a, b := merged.Aggregate(), AggregateReports(reports)
	if a.MeanDecisions != b.MeanDecisions || a.MeanKnowledge != b.MeanKnowledge ||
		a.MeanRewards != b.MeanRewards || a.MeanTicks != b.MeanTicks ||
		a.CompletionRate != b.CompletionRate || a.QuizAccuracy != b.QuizAccuracy {
		t.Errorf("aggregate mismatch:\nmerged: %+v\ndirect: %+v", a, b)
	}
}
