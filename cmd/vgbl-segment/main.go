// Command vgbl-segment runs the scenario editor's automatic shot
// segmentation (paper §4.1) standalone: point it at a TKVC video (or let it
// synthesize one) and it prints the detected scenario boundaries, plus
// precision/recall when ground truth is available.
//
// Usage:
//
//	vgbl-segment -in video.tkvc
//	vgbl-segment -synth-shots 8 -seed 7       # synthesize, detect, score
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/media/playback"
	"repro/internal/media/shotdetect"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

// videoSource adapts a playback.Video (single-goroutine, frame-recycling)
// into a shot-detection source safe for concurrent histogram workers.
func videoSource(v *playback.Video) shotdetect.Source {
	return shotdetect.SerializedSource(v.Meta().FrameCount, v.FrameAt)
}

func main() {
	in := flag.String("in", "", "TKVC video to segment")
	synthShots := flag.Int("synth-shots", 0, "synthesize a film with this many shots instead")
	seed := flag.Int64("seed", 7, "synthesis seed")
	fades := flag.Float64("fades", 0.3, "fraction of gradual transitions in synthetic film")
	threshold := flag.Float64("threshold", shotdetect.Defaults().HardThreshold, "hard-cut χ² threshold")
	workers := flag.Int("workers", 2, "histogram workers")
	flag.Parse()

	cfg := shotdetect.Defaults()
	cfg.HardThreshold = *threshold
	cfg.Workers = *workers

	var src shotdetect.Source
	var truth []int
	switch {
	case *in != "":
		blob, err := os.ReadFile(*in)
		if err != nil {
			fail(err)
		}
		v, err := playback.OpenVideo(blob, *workers)
		if err != nil {
			fail(err)
		}
		src = videoSource(v)
		fmt.Printf("video: %dx%d, %d frames @ %d fps\n",
			v.Meta().Width, v.Meta().Height, v.Meta().FrameCount, v.Meta().FPS)
	case *synthShots > 0:
		film := synth.Generate(synth.Spec{
			W: 160, H: 120, FPS: 12,
			Shots: *synthShots, MinShotFrames: 18, MaxShotFrames: 36,
			FadeFraction: *fades, FadeFrames: 8, NoiseAmp: 2, Seed: *seed,
		})
		// Round-trip through the codec so detection sees decoded pixels,
		// as it would in the authoring tool.
		blob, err := studio.Record(film, studio.Options{QStep: 6, Workers: *workers})
		if err != nil {
			fail(err)
		}
		v, err := playback.OpenVideo(blob, *workers)
		if err != nil {
			fail(err)
		}
		src = videoSource(v)
		for _, c := range film.Cuts() {
			truth = append(truth, c.Frame)
		}
		fmt.Printf("synthetic film: %d shots, %d frames, %d ground-truth cuts\n",
			*synthShots, film.FrameCount(), len(truth))
	default:
		fail(fmt.Errorf("pass -in video.tkvc or -synth-shots N"))
	}

	bounds, err := shotdetect.Detect(src, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\ndetected %d boundaries (threshold %.2f):\n", len(bounds), cfg.HardThreshold)
	for _, b := range bounds {
		kind := "cut "
		if b.Gradual {
			kind = "fade"
		}
		fmt.Printf("  frame %5d  %s  score %.3f\n", b.Frame, kind, b.Score)
	}
	segs := shotdetect.SegmentsFromBoundaries(bounds, src.Frames())
	fmt.Printf("\nscenario segments (%d):\n", len(segs))
	for i, s := range segs {
		fmt.Printf("  scene-%03d  [%5d, %5d)  %d frames\n", i, s.Start, s.End, s.End-s.Start)
	}
	if truth != nil {
		m := shotdetect.Score(bounds, truth, 3)
		fmt.Printf("\nvs ground truth (tolerance 3): P=%.2f R=%.2f F1=%.2f (TP=%d FP=%d FN=%d)\n",
			m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vgbl-segment:", err)
	os.Exit(1)
}
