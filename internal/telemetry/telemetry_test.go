package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/runtime"
)

// sessionEvents is a small classroom-flavoured event stream.
func sessionEvents() []runtime.Event {
	return []runtime.Event{
		{Tick: 0, Kind: "say", Detail: "welcome"},
		{Tick: 2, Kind: "examine", Detail: "computer"},
		{Tick: 3, Kind: "learn", Detail: "ram-identification"},
		{Tick: 8, Kind: "goto", Detail: "market"},
		{Tick: 10, Kind: "take", Detail: "stall-ram"},
		{Tick: 14, Kind: "goto", Detail: "classroom"},
		{Tick: 16, Kind: "use", Detail: "ram module on computer"},
		{Tick: 16, Kind: "learn", Detail: "ram-installation"},
		{Tick: 16, Kind: "reward", Detail: "repair-badge"},
		{Tick: 16, Kind: "end", Detail: "victory"},
	}
}

func digestOf(events []runtime.Event, start string) *analytics.Report {
	c := &analytics.Collector{}
	for _, e := range events {
		c.Record(e)
	}
	return c.Digest(start)
}

func TestStoreFoldMatchesDigest(t *testing.T) {
	st := NewStore(4)
	events := sessionEvents()
	// Deliver in two batches, then close the session.
	if err := st.Append(Batch{Course: "classroom", Session: "s1", Start: "classroom", Events: events[:4]}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Batch{Course: "classroom", Session: "s1", Events: events[4:]}); err != nil {
		t.Fatal(err)
	}
	if got := st.LiveSessions(); got != 1 {
		t.Fatalf("live sessions = %d", got)
	}
	if err := st.Append(Batch{Course: "classroom", Session: "s1", Done: true}); err != nil {
		t.Fatal(err)
	}
	if got := st.LiveSessions(); got != 0 {
		t.Fatalf("live sessions after done = %d", got)
	}
	want := digestOf(events, "classroom")
	cs := st.Snapshot()["classroom"]
	if cs.SessionsStarted != 1 || cs.SessionsEnded != 1 || cs.Completed != 1 {
		t.Errorf("session counts: %+v", cs)
	}
	if cs.Events != want.TotalEvents || cs.Decisions != want.Decisions ||
		cs.Knowledge != len(want.Knowledge) || cs.Rewards != len(want.Rewards) ||
		cs.Ticks != want.LastTick || cs.UniqueKnowledge != len(want.UniqueKnowledge()) {
		t.Errorf("stats = %+v\nwant report %+v", cs, want)
	}
	if cs.Outcomes["victory"] != 1 {
		t.Errorf("outcomes = %v", cs.Outcomes)
	}
	// LastTick 16 lands in the first (≤25) histogram bucket.
	if cs.TickHist[0] != 1 {
		t.Errorf("tick hist = %v", cs.TickHist)
	}
}

func TestStoreValidationAndRebind(t *testing.T) {
	st := NewStore(2)
	if err := st.Append(Batch{Session: "x"}); err == nil {
		t.Error("courseless batch accepted")
	}
	if err := st.Append(Batch{Course: "c"}); err == nil {
		t.Error("sessionless batch accepted")
	}
	if err := st.Append(Batch{Course: "a", Session: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Batch{Course: "b", Session: "s"}); err == nil {
		t.Error("session rebound to another course")
	}
}

func TestStoreConcurrentSessions(t *testing.T) {
	st := NewStore(8)
	const sessions = 200
	events := sessionEvents()
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", i)
			for j := 0; j < len(events); j += 3 {
				hi := j + 3
				if hi > len(events) {
					hi = len(events)
				}
				if err := st.Append(Batch{Course: "classroom", Session: id, Start: "classroom", Events: events[j:hi]}); err != nil {
					t.Error(err)
					return
				}
			}
			if err := st.Append(Batch{Course: "classroom", Session: id, Done: true}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	want := digestOf(events, "classroom")
	cs := st.Snapshot()["classroom"]
	if cs.SessionsEnded != sessions || cs.SessionsStarted != sessions {
		t.Fatalf("sessions = %+v", cs)
	}
	if cs.Events != sessions*want.TotalEvents || cs.Decisions != sessions*want.Decisions {
		t.Errorf("totals drifted: %+v", cs)
	}
	if cs.KnowledgeCounts["ram-installation"] != sessions {
		t.Errorf("knowledge counts = %v", cs.KnowledgeCounts)
	}
}

func TestServiceEndpoints(t *testing.T) {
	s := NewService(Options{Workers: 2, QueueDepth: 16})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Healthz.
	resp, err := http.Get(ts.URL + HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Status != "ok" {
		t.Errorf("healthz = %+v", health)
	}

	// Method and body validation.
	resp, _ = http.Get(ts.URL + IngestPath)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest = %s", resp.Status)
	}
	resp, _ = http.Post(ts.URL+IngestPath, "application/json", strings.NewReader("{not json"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk body = %s", resp.Status)
	}
	resp, _ = http.Post(ts.URL+IngestPath, "application/json", strings.NewReader(`{"session":"s"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("courseless batch = %s", resp.Status)
	}

	// A real session through the client.
	c, err := NewClient(ClientOptions{
		BaseURL: ts.URL, Course: "classroom", Session: "svc-1", Start: "classroom",
		FlushEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := sessionEvents()
	for _, e := range events {
		c.Record(e)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !s.Quiesce(5 * time.Second) {
		t.Fatal("service did not drain")
	}
	var snap Snapshot
	resp, err = http.Get(ts.URL + StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := digestOf(events, "classroom")
	cs := snap.Courses["classroom"]
	if cs.SessionsEnded != 1 || cs.Events != want.TotalEvents || cs.Decisions != want.Decisions {
		t.Errorf("stats = %+v, want report %+v", cs, want)
	}
	if snap.BadRequests != 2 {
		t.Errorf("bad requests = %d, want 2", snap.BadRequests)
	}
	// FlushEvery 4 with 10 events + done: at least 3 batches.
	if st := c.Stats(); st.Batches < 3 || st.Events != len(events) {
		t.Errorf("client stats = %+v", st)
	}
}

func TestServiceBackpressure(t *testing.T) {
	s := NewService(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	s.applyDelay.Store(int64(20 * time.Millisecond))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Slam one session's worker queue from many goroutines; the bounded
	// queue must shed with 429, never block or drop silently.
	var accepted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				resp, err := http.Post(ts.URL+IngestPath, "application/json",
					strings.NewReader(`{"course":"c","session":"hot","events":[{"tick":1,"kind":"click","detail":"x"}]}`))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					t.Errorf("unexpected status %s", resp.Status)
				}
			}
		}()
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Error("no batch was shed despite a saturated queue")
	}
	s.applyDelay.Store(0)
	if !s.Quiesce(10 * time.Second) {
		t.Fatal("service did not drain")
	}
	snap := s.Snapshot()
	if snap.BatchesApplied != accepted.Load() {
		t.Errorf("applied %d of %d accepted", snap.BatchesApplied, accepted.Load())
	}
	// Every accepted event is in the store — none lost, none duplicated.
	if got := snap.Courses["c"].Events + s.store.liveEvents("hot"); int64(got) != accepted.Load() {
		t.Errorf("stored events = %d, accepted = %d", got, accepted.Load())
	}
}

// liveEvents counts buffered events of one live session (test helper).
func (st *Store) liveEvents(session string) int {
	sh := st.shardFor(session)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if log, ok := sh.sessions[session]; ok {
		return len(log.events)
	}
	return 0
}

func TestClientRetriesOn429(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			http.Error(w, "full", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c, err := NewClient(ClientOptions{BaseURL: ts.URL, Course: "c", Session: "s", FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Record(runtime.Event{Kind: "click"})
	if err := c.Err(); err != nil {
		t.Fatalf("flush failed despite retries: %v", err)
	}
	st := c.Stats()
	if st.Retries != 3 || st.Batches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestClientRequeuesAfterExhaustedShed: a batch the server keeps shedding
// is held (honoring the advertised Retry-After), not dropped — once the
// server recovers, the pending batch lands first and every event is
// accounted for exactly once.
func TestClientRequeuesAfterExhaustedShed(t *testing.T) {
	s := NewService(Options{Workers: 1, QueueDepth: 8})
	defer s.Close()
	inner := s.Handler()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == IngestPath && calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "full", http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c, err := NewClient(ClientOptions{BaseURL: ts.URL, Course: "c", Session: "s", FlushEvery: 1, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.Record(runtime.Event{Tick: 1, Kind: "click", Detail: "door"})
	// The first flush exhausted its retry budget against the shedding
	// server: the batch is re-queued, not dropped, and the error is not
	// sticky.
	if err := c.Err(); err != nil {
		t.Fatalf("sticky error after shed: %v", err)
	}
	if st := c.Stats(); st.Dropped != 0 || st.Batches != 0 || st.Posts != 2 {
		t.Fatalf("stats after shed = %+v", st)
	}
	// The retry slept the server's Retry-After, not the default backoff.
	if len(slept) != 1 || slept[0] != time.Second {
		t.Fatalf("slept %v, want [1s]", slept)
	}
	// The next flush delivers the pending batch first, then the new one;
	// Close lands the done marker.
	c.Record(runtime.Event{Tick: 2, Kind: "click", Detail: "desk"})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !s.Quiesce(5 * time.Second) {
		t.Fatal("drain")
	}
	if cs := s.Store().Snapshot()["c"]; cs.Events != 2 || cs.SessionsEnded != 1 {
		t.Errorf("store stats = %+v", cs)
	}
	if st := c.Stats(); st.Dropped != 0 || st.Events != 2 {
		t.Errorf("client stats = %+v", st)
	}
}

func TestClientIntervalFlush(t *testing.T) {
	s := NewService(Options{Workers: 1, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, err := NewClient(ClientOptions{
		BaseURL: ts.URL, Course: "c", Session: "tick", Start: "start",
		FlushEvery: 1000, Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Record(runtime.Event{Tick: 1, Kind: "click", Detail: "door"})
	// Well under FlushEvery, so only the timer can deliver this.
	deadline := time.Now().Add(5 * time.Second)
	for c.Buffered() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Buffered() != 0 {
		t.Fatal("interval flush never fired")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !s.Quiesce(5 * time.Second) {
		t.Fatal("drain")
	}
	if cs := s.Store().Snapshot()["c"]; cs.Events != 1 || cs.SessionsEnded != 1 {
		t.Errorf("stats = %+v", cs)
	}
}

func TestClientRecordAfterCloseDropped(t *testing.T) {
	s := NewService(Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, _ := NewClient(ClientOptions{BaseURL: ts.URL, Course: "c", Session: "s"})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Record(runtime.Event{Kind: "click"})
	if got := c.Buffered(); got != 0 {
		t.Errorf("post-close record buffered (%d)", got)
	}
	if err := c.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
}

func TestStoreDuplicateDeliveryDropped(t *testing.T) {
	st := NewStore(2)
	events := sessionEvents()
	b1 := Batch{Course: "c", Session: "s", Start: "classroom", Seq: 1, Events: events[:5]}
	for i := 0; i < 3; i++ { // at-least-once: same batch delivered thrice
		if err := st.Append(b1); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(Batch{Course: "c", Session: "s", Seq: 2, Events: events[5:]}); err != nil {
		t.Fatal(err)
	}
	// A gap is a client bug and is refused.
	if err := st.Append(Batch{Course: "c", Session: "s", Seq: 9}); err == nil {
		t.Error("sequence gap accepted")
	}
	done := Batch{Course: "c", Session: "s", Seq: 3, Done: true}
	if err := st.Append(done); err != nil {
		t.Fatal(err)
	}
	// Replayed done (lost ack) and any stale batch are absorbed by the
	// tombstone without re-counting the session.
	if err := st.Append(done); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(b1); err != nil {
		t.Fatal(err)
	}
	want := digestOf(events, "classroom")
	cs := st.Snapshot()["c"]
	if cs.SessionsStarted != 1 || cs.SessionsEnded != 1 {
		t.Fatalf("session counts after replays: %+v", cs)
	}
	if cs.Events != want.TotalEvents || cs.Decisions != want.Decisions {
		t.Errorf("totals after duplicate deliveries: %+v, want %+v", cs, want)
	}
	if cs.LiveSessions != 0 {
		t.Errorf("tombstone counted as live: %+v", cs)
	}
}

func TestClientStopsAfterStickyError(t *testing.T) {
	// A definitive rejection (not a shed) is sticky: the client stops
	// posting — the server would refuse the sequence gap anyway.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c, err := NewClient(ClientOptions{BaseURL: ts.URL, Course: "c", Session: "s", FlushEvery: 1, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Record(runtime.Event{Kind: "click"})
	if c.Err() == nil {
		t.Fatal("expected sticky error")
	}
	posts := c.Stats().Posts
	// Further records must not post: the server would reject the sequence
	// gap anyway.
	c.Record(runtime.Event{Kind: "click"})
	if got := c.Stats().Posts; got != posts {
		t.Errorf("posts grew from %d to %d after sticky error", posts, got)
	}
	if err := c.Close(); err == nil {
		t.Error("Close did not report the delivery failure")
	}
}

func TestClientBatchesCarrySequence(t *testing.T) {
	var mu sync.Mutex
	var seqs []int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b Batch
		json.NewDecoder(r.Body).Decode(&b)
		mu.Lock()
		seqs = append(seqs, b.Seq)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()
	c, err := NewClient(ClientOptions{BaseURL: ts.URL, Course: "c", Session: "s", FlushEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Record(runtime.Event{Tick: i, Kind: "click"})
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 3 { // 2+2, then 1 event + done
		t.Fatalf("batches = %v", seqs)
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("seqs = %v, want 1..3", seqs)
		}
	}
}

func TestStoreExpireIdle(t *testing.T) {
	st := NewStore(4)
	events := sessionEvents()
	// An abandoned session: batches arrive, Done never does.
	if err := st.Append(Batch{Course: "c", Session: "orphan", Start: "classroom", Seq: 1, Events: events[:6]}); err != nil {
		t.Fatal(err)
	}
	// A finished session leaves a tombstone.
	if err := st.Append(Batch{Course: "c", Session: "finished", Start: "classroom", Seq: 1, Events: events, Done: true}); err != nil {
		t.Fatal(err)
	}
	if got := st.LiveSessions(); got != 1 {
		t.Fatalf("live = %d", got)
	}
	// Nothing is idle yet.
	if n := st.ExpireIdle(time.Now().Add(-time.Hour)); n != 0 {
		t.Fatalf("expired %d fresh sessions", n)
	}
	// Everything is idle against a future cutoff: the orphan folds, the
	// tombstone is discarded.
	if n := st.ExpireIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("expired = %d, want 1", n)
	}
	cs := st.Snapshot()["c"]
	// started = ended + expired + live.
	if cs.SessionsEnded != 1 || cs.SessionsExpired != 1 || cs.LiveSessions != 0 || cs.SessionsStarted != 2 {
		t.Fatalf("after expiry: %+v", cs)
	}
	// The orphan's partial activity is in the totals.
	wantOrphan := digestOf(events[:6], "classroom")
	wantFull := digestOf(events, "classroom")
	if cs.Events != wantOrphan.TotalEvents+wantFull.TotalEvents {
		t.Errorf("events = %d, want %d", cs.Events, wantOrphan.TotalEvents+wantFull.TotalEvents)
	}
	// Second sweep deletes the remaining tombstones; replays of the
	// finished session now recreate it (documented trade-off).
	st.ExpireIdle(time.Now().Add(time.Hour))
	total := 0
	for i := range st.shards {
		st.shards[i].mu.Lock()
		total += len(st.shards[i].sessions)
		st.shards[i].mu.Unlock()
	}
	if total != 0 {
		t.Errorf("%d entries survived two sweeps", total)
	}
}

func TestServiceJanitorReclaimsIdleSessions(t *testing.T) {
	// IdleTimeout 1s → janitor ticks every second.
	s := NewService(Options{Workers: 1, QueueDepth: 8, IdleTimeout: time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+IngestPath, "application/json",
		strings.NewReader(`{"course":"c","session":"abandoned","seq":1,"events":[{"tick":1,"kind":"click"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap := s.Snapshot()
		if snap.SessionsExpired == 1 && snap.LiveSessions == 0 {
			if cs := snap.Courses["c"]; cs.SessionsExpired != 1 || cs.SessionsEnded != 0 || cs.Events != 1 {
				t.Fatalf("expired session not folded: %+v", cs)
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("janitor never reclaimed the abandoned session")
}

func TestClientShedsBufferAfterStickyError(t *testing.T) {
	// Once delivery fails definitively, buffering is pointless (the server
	// would reject the sequence gap): everything recorded after the sticky
	// error is shed and counted.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c, err := NewClient(ClientOptions{BaseURL: ts.URL, Course: "c", Session: "s", FlushEvery: 2, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Record(runtime.Event{Tick: i, Kind: "click"})
	}
	if c.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if got := c.Buffered(); got != 0 {
		t.Errorf("%d events still buffered after sticky failure", got)
	}
	if st := c.Stats(); st.Dropped != 100 || st.Events != 0 {
		t.Errorf("stats = %+v, want all 100 events dropped", st)
	}
}

func TestStoreGapOnUnknownSessionLeavesNoTrace(t *testing.T) {
	st := NewStore(2)
	// A first-contact batch claiming seq 2 is a gap: it must be rejected
	// without registering a phantom session or touching course aggregates.
	if err := st.Append(Batch{Course: "c", Session: "ghost", Seq: 2, Events: sessionEvents()[:2]}); err == nil {
		t.Fatal("first-contact gap accepted")
	}
	if got := st.LiveSessions(); got != 0 {
		t.Errorf("phantom session registered (live = %d)", got)
	}
	if _, ok := st.Snapshot()["c"]; ok {
		t.Errorf("course aggregate created by a rejected batch: %+v", st.Snapshot()["c"])
	}
	// Expiry has nothing to reclaim.
	if n := st.ExpireIdle(time.Now().Add(time.Hour)); n != 0 {
		t.Errorf("expired %d sessions after only rejected batches", n)
	}
}

func TestClientCountsDropOnServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c, _ := NewClient(ClientOptions{BaseURL: ts.URL, Course: "c", Session: "s", FlushEvery: 3})
	for i := 0; i < 3; i++ {
		c.Record(runtime.Event{Tick: i, Kind: "click"})
	}
	if c.Err() == nil {
		t.Fatal("500 not sticky")
	}
	// Events + Dropped = recorded, even for the first failing batch.
	if st := c.Stats(); st.Events != 0 || st.Dropped != 3 {
		t.Errorf("stats = %+v, want 3 dropped", st)
	}
}
