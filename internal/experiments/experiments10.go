package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/netstream"
	"repro/internal/obs"
)

// E19 measures adaptive multi-quality streaming end to end: one course
// recorded at every rung of the default quality ladder, one manifest
// tree, and a fleet of ABR clients streaming it across a 10× bandwidth
// spread (cap-6k … cap-60k) plus the mobile-3g and wifi-flaky fault
// profiles. Two claims are checked:
//
//  1. Playback is rebuffer-free on every profile — the picker trades
//     quality, not stalls, as the link shrinks.
//  2. Bytes served per tier are accounted exactly: the clients'
//     per-tier ledgers must reconcile against the server's
//     netstream_tier_bytes_total counters scraped from /metrics.
//     Profiles that never reset a connection (cap-*, mobile-3g: drops
//     and 503s are injected before the server) must match to the byte;
//     wifi-flaky resets replies in flight, so the server may only
//     over-count (it served bytes the client discarded).
func E19() (string, error) {
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 10, MinShotFrames: 20, MaxShotFrames: 24,
		NoiseAmp: 1, Seed: 12,
	})
	rungs, err := studio.RecordLadder(film, studio.Options{GOP: 10, ShotMarkers: true}, studio.DefaultLadder())
	if err != nil {
		return "", err
	}
	videos := make([]gamepack.TierVideo, len(rungs))
	for i, r := range rungs {
		videos[i] = gamepack.TierVideo{Tier: r.Tier, Video: r.Video}
	}
	r0, err := container.Open(videos[0].Video)
	if err != nil {
		return "", err
	}
	p := core.NewProject("Ladder Course")
	for i, ch := range r0.Chapters() {
		id := fmt.Sprintf("s%d", i)
		p.Scenarios = append(p.Scenarios, &core.Scenario{ID: id, Name: ch.Name, Segment: ch.Name})
		if i == 0 {
			p.StartScenario = id
		}
	}
	blob, err := gamepack.BuildLadder(p, videos)
	if err != nil {
		return "", err
	}

	srv := netstream.NewServer()
	if err := srv.AddPackage("course", blob); err != nil {
		return "", err
	}
	reg := obs.NewRegistry("vgbl")
	srv.Register(reg)
	if err := srv.Mount("/metrics", reg.Handler()); err != nil {
		return "", err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	dur := float64(r0.Meta().FrameCount) / float64(r0.Meta().FPS)
	var b strings.Builder
	b.WriteString("E19 — adaptive streaming: one ladder package, a 10× bandwidth spread\n")
	fmt.Fprintf(&b, "%d-segment course, %.1fs of media, quality ladder (rate = payload/duration):\n", len(r0.Chapters()), dur)
	for _, tv := range videos {
		fmt.Fprintf(&b, "  tier %-4s : %7d bytes, %6.1f KB/s\n",
			netstream.TierLabel(tv.Tier), len(tv.Video), float64(len(tv.Video))/dur/1000)
	}
	b.WriteString("\n  profile    | segments | rebuffers | startup p90 | segments per tier             | tier bytes client=server\n")
	b.WriteString("  -----------+----------+-----------+-------------+-------------------------------+-------------------------\n")

	type profileRun struct {
		name  string
		exact bool // no resets: server ledger must equal the clients' to the byte
	}
	profiles := []profileRun{
		{"cap-6k", true}, {"cap-12k", true}, {"cap-24k", true}, {"cap-60k", true},
		{"mobile-3g", true}, {"wifi-flaky", false},
	}
	var failures []string
	e19JSON := map[string]any{}
	for _, pr := range profiles {
		before, err := scrapeTierBytes(ts.URL)
		if err != nil {
			return "", err
		}
		sum, err := fleet.RunStreamers(fleet.StreamConfig{
			ServerURL:    ts.URL,
			Package:      "course",
			Learners:     3,
			Profile:      pr.name,
			Seed:         7,
			DecodeFrames: true,
		})
		if err != nil {
			return "", fmt.Errorf("profile %s: %w", pr.name, err)
		}
		after, err := scrapeTierBytes(ts.URL)
		if err != nil {
			return "", err
		}
		served := map[string]int64{}
		for tier, n := range after {
			if d := n - before[tier]; d != 0 {
				served[tier] = d
			}
		}
		reconcile := "exact"
		for _, tier := range tierOrder(sum.TierBytes, served) {
			c, s := sum.TierBytes[tier], served[tier]
			if pr.exact && c != s {
				reconcile = "MISMATCH"
				failures = append(failures, fmt.Sprintf("%s tier %s: client %d, server %d", pr.name, tier, c, s))
			}
			if !pr.exact {
				reconcile = "server>=client"
				if s < c {
					reconcile = "MISMATCH"
					failures = append(failures, fmt.Sprintf("%s tier %s: server %d under-counts client %d", pr.name, tier, s, c))
				}
			}
		}
		if sum.Rebuffers != 0 {
			failures = append(failures, fmt.Sprintf("%s: %d rebuffers (%v stalled)", pr.name, sum.Rebuffers, sum.Stalled))
		}
		fmt.Fprintf(&b, "  %-10s | %8d | %9d | %11v | %-29s | %s\n",
			pr.name, sum.Segments, sum.Rebuffers, sum.Startup.P90.Round(1e6),
			tierCounts(sum.TierSegments), reconcile)
		e19JSON[pr.name] = map[string]any{
			"segments":      sum.Segments,
			"rebuffers":     sum.Rebuffers,
			"startup_p90":   sum.Startup.P90.String(),
			"tier_segments": sum.TierSegments,
			"tier_bytes":    sum.TierBytes,
			"reconcile":     reconcile,
		}
	}
	b.WriteString("\nThe spread is 10× (6 → 60 KiB/s): the picker pins the cheapest rung on\n")
	b.WriteString("the tightest link and climbs the ladder as bandwidth allows, with zero\n")
	b.WriteString("rebuffers everywhere; bytes per tier reconcile against /metrics.\n")
	blobJSON, _ := json.Marshal(e19JSON)
	fmt.Fprintf(&b, "\nE19JSON %s\n", blobJSON)
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("e19: %s", strings.Join(failures, "; "))
	}
	return b.String(), nil
}

// scrapeTierBytes reads the per-tier bytes-served counters from the
// server's /metrics endpoint (JSON form) — the same surface an operator
// scrapes, not an in-process shortcut.
func scrapeTierBytes(base string) (map[string]int64, error) {
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	m := snap.Metric("vgbl_netstream_tier_bytes_total")
	if m == nil {
		return out, nil
	}
	for _, s := range m.Series {
		if s.Value != nil {
			out[s.Labels["tier"]] = *s.Value
		}
	}
	return out, nil
}

// tierOrder returns the union of tier labels across both ledgers,
// sorted, so a tier present on only one side is still reconciled.
func tierOrder(a, b map[string]int64) []string {
	seen := map[string]bool{}
	for t := range a {
		seen[t] = true
	}
	for t := range b {
		seen[t] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// tierCounts renders a per-tier segment count map compactly, highest
// quality first.
func tierCounts(m map[string]int) string {
	order := []string{"full", "med", "low", "min"}
	parts := make([]string, 0, len(order))
	for _, tier := range order {
		if n, ok := m[tier]; ok {
			parts = append(parts, fmt.Sprintf("%s:%d", tier, n))
		}
	}
	return strings.Join(parts, " ")
}
