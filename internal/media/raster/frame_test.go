package raster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFrameIsBlack(t *testing.T) {
	f := New(8, 6)
	if f.W != 8 || f.H != 6 || len(f.Pix) != 8*6*3 {
		t.Fatalf("bad dimensions: %dx%d pix=%d", f.W, f.H, len(f.Pix))
	}
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			if f.At(x, y) != Black {
				t.Fatalf("pixel (%d,%d) = %v, want black", x, y, f.At(x, y))
			}
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 3}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	f := New(10, 10)
	c := RGB{12, 200, 99}
	f.Set(3, 7, c)
	if got := f.At(3, 7); got != c {
		t.Fatalf("At(3,7) = %v, want %v", got, c)
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	f := New(4, 4)
	// Writes outside must be ignored, reads outside must return black.
	f.Set(-1, 0, White)
	f.Set(0, -1, White)
	f.Set(4, 0, White)
	f.Set(0, 4, White)
	if got := f.At(-3, 2); got != Black {
		t.Errorf("out-of-bounds read = %v, want black", got)
	}
	for i := range f.Pix {
		if f.Pix[i] != 0 {
			t.Fatalf("out-of-bounds write leaked into pixel data at %d", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(5, 5)
	f.Fill(Red)
	g := f.Clone()
	g.Set(2, 2, Blue)
	if f.At(2, 2) != Red {
		t.Fatal("mutating clone affected original")
	}
	if !f.Equal(f.Clone()) {
		t.Fatal("clone not equal to original")
	}
}

func TestFillAndEqual(t *testing.T) {
	a, b := New(6, 3), New(6, 3)
	a.Fill(Cyan)
	b.Fill(Cyan)
	if !a.Equal(b) {
		t.Fatal("identical fills not equal")
	}
	b.Set(5, 2, Black)
	if a.Equal(b) {
		t.Fatal("differing frames reported equal")
	}
	if a.Equal(New(3, 6)) {
		t.Fatal("different shapes reported equal")
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := RGB{0, 10, 20}, RGB{200, 110, 220}
	if a.Lerp(b, 0) != a {
		t.Errorf("Lerp(0) = %v, want %v", a.Lerp(b, 0), a)
	}
	if a.Lerp(b, 1) != b {
		t.Errorf("Lerp(1) = %v, want %v", a.Lerp(b, 1), b)
	}
	mid := a.Lerp(b, 0.5)
	if mid.R < 99 || mid.R > 101 {
		t.Errorf("Lerp midpoint R = %d, want ~100", mid.R)
	}
	// Clamped outside [0,1].
	if a.Lerp(b, -3) != a || a.Lerp(b, 42) != b {
		t.Error("Lerp does not clamp t")
	}
}

func TestScaleClamps(t *testing.T) {
	c := RGB{200, 200, 200}
	if got := c.Scale(2); got != (RGB{255, 255, 255}) {
		t.Errorf("Scale(2) = %v, want white", got)
	}
	if got := c.Scale(0); got != Black {
		t.Errorf("Scale(0) = %v, want black", got)
	}
}

func TestLumaOrdering(t *testing.T) {
	if White.Luma() <= Black.Luma() {
		t.Fatal("white must be brighter than black")
	}
	if Green.Luma() <= Blue.Luma() {
		t.Fatal("green must carry more luma than blue (BT.601)")
	}
}

func TestDownsampleAveraging(t *testing.T) {
	f := New(4, 4)
	// Left half black, right half white: 2x downsample keeps that split.
	f.FillRect(Rect{2, 0, 2, 4}, White)
	g := f.Downsample(2)
	if g.W != 2 || g.H != 2 {
		t.Fatalf("downsampled size = %dx%d, want 2x2", g.W, g.H)
	}
	if g.At(0, 0) != Black || g.At(1, 0) != White {
		t.Errorf("downsample lost structure: %v %v", g.At(0, 0), g.At(1, 0))
	}
	if !f.Downsample(1).Equal(f) {
		t.Error("Downsample(1) must be identity")
	}
}

func TestDownsampleUnevenSize(t *testing.T) {
	f := New(5, 3)
	f.Fill(Gray)
	g := f.Downsample(2)
	if g.W != 3 || g.H != 2 {
		t.Fatalf("size = %dx%d, want 3x2", g.W, g.H)
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if g.At(x, y) != Gray {
				t.Fatalf("uniform frame should stay uniform, got %v", g.At(x, y))
			}
		}
	}
}

func TestMixEndpoints(t *testing.T) {
	a := New(3, 3)
	a.Fill(Black)
	b := New(3, 3)
	b.Fill(White)
	m0 := a.Clone()
	m0.Mix(b, 0)
	if !m0.Equal(a) {
		t.Error("Mix(t=0) must keep receiver")
	}
	m1 := a.Clone()
	m1.Mix(b, 1)
	if !m1.Equal(b) {
		t.Error("Mix(t=1) must equal argument")
	}
	mh := a.Clone()
	mh.Mix(b, 0.5)
	l := mh.At(1, 1).Luma()
	if l < 110 || l > 145 {
		t.Errorf("Mix(0.5) luma = %d, want near 127", l)
	}
}

func TestFillVGradientMonotone(t *testing.T) {
	f := New(4, 16)
	f.FillVGradient(Black, White)
	prev := -1
	for y := 0; y < f.H; y++ {
		l := int(f.At(0, y).Luma())
		if l < prev {
			t.Fatalf("gradient not monotone at row %d: %d < %d", y, l, prev)
		}
		prev = l
	}
	if f.At(0, 0).Luma() > 10 || f.At(0, 15).Luma() < 245 {
		t.Error("gradient endpoints wrong")
	}
}

func TestQuickSetAtAnyCoordinate(t *testing.T) {
	f := New(17, 13)
	err := quick.Check(func(x, y int, r, g, b uint8) bool {
		c := RGB{r, g, b}
		f.Set(x, y, c)
		got := f.At(x, y)
		if f.Bounds(x, y) {
			return got == c
		}
		return got == Black
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPSNRProperties(t *testing.T) {
	a := New(16, 16)
	a.FillVGradient(Red, Blue)
	if !math.IsInf(PSNR(a, a), 1) {
		t.Error("PSNR of identical frames must be +Inf")
	}
	noisy := a.Clone()
	noisy.Set(3, 3, White)
	p1 := PSNR(a, noisy)
	very := a.Clone()
	very.Fill(Green)
	p2 := PSNR(a, very)
	if p1 <= p2 {
		t.Errorf("one-pixel error PSNR (%f) must exceed whole-frame error PSNR (%f)", p1, p2)
	}
}

func TestRGBString(t *testing.T) {
	if got := (RGB{255, 0, 16}).String(); got != "#FF0010" {
		t.Errorf("String() = %q, want #FF0010", got)
	}
}
