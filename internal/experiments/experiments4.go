package experiments

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/netstream"

	"repro/internal/core"
)

// E13 measures the chunk-store delivery path: what a course costs to
// fetch cold (empty cache: manifest + every chunk), warm (nothing
// changed: one conditional manifest round trip) and as a delta after a
// single-segment edit (manifest + only the chunks whose hashes changed).
// The course is a 10-segment film, so an honest delta is ~1/10th of the
// footage plus the re-indexed container head.
func E13() (string, error) {
	build := func(edit bool) ([]byte, error) {
		film := synth.Generate(synth.Spec{
			W: 96, H: 64, FPS: 10,
			Shots: 10, MinShotFrames: 20, MaxShotFrames: 24,
			NoiseAmp: 1, Seed: 12,
		})
		if edit {
			film.Shots[5].Seed ^= 0xbeef // re-shoot segment 5, same footage elsewhere
		}
		video, err := studio.Record(film, studio.Options{QStep: 6, GOP: 10, ShotMarkers: true})
		if err != nil {
			return nil, err
		}
		r, err := container.Open(video)
		if err != nil {
			return nil, err
		}
		p := core.NewProject("Ten Segment Course")
		p.StartScenario = "s0"
		for i, ch := range r.Chapters() {
			p.Scenarios = append(p.Scenarios, &core.Scenario{
				ID: fmt.Sprintf("s%d", i), Name: ch.Name, Segment: ch.Name,
			})
		}
		return gamepack.Build(p, video)
	}
	v1, err := build(false)
	if err != nil {
		return "", err
	}
	v2, err := build(true)
	if err != nil {
		return "", err
	}
	srv := netstream.NewServer()
	if err := srv.AddPackage("course", v1); err != nil {
		return "", err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/pkg/course"

	c := &netstream.Client{}
	cache := netstream.NewPackageCache()
	var b strings.Builder
	b.WriteString("E13 — chunk-store delivery: cold vs warm vs delta sync\n")
	fmt.Fprintf(&b, "10-segment course, %d-byte package; one segment re-shot for the edit\n\n", len(v1))
	b.WriteString("  phase              | requests | chunks | chunk hits | bytes on wire | % of pkg | wall time\n")
	b.WriteString("  -------------------+----------+--------+------------+---------------+----------+----------\n")
	row := func(phase string, st netstream.Stats, pkgLen int) {
		fmt.Fprintf(&b, "  %-18s | %8d | %6d | %10d | %13d | %7.1f%% | %v\n",
			phase, st.Requests, st.ChunksFetched, st.ChunkHits, st.BytesFetched,
			100*float64(st.BytesFetched)/float64(pkgLen), st.Elapsed.Round(10*time.Microsecond))
	}

	if _, st, err := c.DownloadDelta(url, cache); err != nil {
		return "", err
	} else {
		row("cold (empty cache)", st, len(v1))
	}
	if _, st, err := c.DownloadDelta(url, cache); err != nil {
		return "", err
	} else {
		row("warm (unchanged)", st, len(v1))
	}
	// Publish the single-segment edit and re-sync.
	if err := srv.AddPackage("course", v2); err != nil {
		return "", err
	}
	blob, st, err := c.DownloadDelta(url, cache)
	if err != nil {
		return "", err
	}
	row("delta (1-seg edit)", st, len(v2))
	if string(blob) != string(v2) {
		return "", fmt.Errorf("e13: delta sync did not reproduce the edited package")
	}

	ss := srv.StoreStats()
	fmt.Fprintf(&b, "\nserver store after both versions: %d chunks, %d bytes for %d bytes of\n",
		ss.Chunks, ss.StoredBytes, len(v1)+len(v2))
	fmt.Fprintf(&b, "published packages (%d dedup hits) — unchanged segments are stored once.\n", ss.DedupHits)
	b.WriteString("every fetched chunk is verified against its SHA-256 address on receipt.\n")
	return b.String(), nil
}
