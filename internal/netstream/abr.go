// Adaptive bitrate selection. The picker is a small state machine fed by
// two signals — an EWMA throughput estimate over recent chunk fetches and
// the player's buffer level — and it answers one question per segment:
// which rung of the quality ladder to fetch next.
//
// Tier-selection rules (see DESIGN.md §"Adaptive streaming & quality
// ladder" for the rationale):
//
//  1. Buffer panic: below MinBuffer seconds of buffered media, pick the
//     lowest rung unconditionally. Surviving is better than pretty.
//  2. Throughput budget: otherwise the candidate is the highest rung
//     whose media rate fits within Safety × estimated throughput.
//  3. Downward switches apply immediately (the link got worse; waiting
//     makes it a rebuffer).
//  4. Upward switches are damped: the candidate must stay above the
//     current rung for UpHold consecutive picks, and the picker then
//     climbs one rung per pick — a link flapping around a tier boundary
//     oscillates the estimate, not the video.
//
// With no throughput estimate yet the picker sits on the lowest rung,
// which doubles as fast startup.
package netstream

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// TierInfo describes one rung to the picker: its name and its media rate
// — how many bytes of this rung the player consumes per second of
// playback.
type TierInfo struct {
	Name string
	Rate float64 // bytes per media-second
}

// ABRConfig tunes the picker. The zero value picks sane defaults.
type ABRConfig struct {
	// Safety discounts the throughput estimate before comparing it to
	// tier rates (default 0.7): a rung is only affordable if it fits in
	// 70% of what the link recently delivered.
	Safety float64
	// MinBuffer is the panic threshold in buffered media seconds
	// (default 1.5): below it the picker drops to the lowest rung.
	MinBuffer float64
	// UpHold is how many consecutive picks must support a higher rung
	// before the picker starts climbing (default 2).
	UpHold int
	// Alpha is the EWMA weight of each new throughput sample
	// (default 0.4).
	Alpha float64
}

func (c ABRConfig) withDefaults() ABRConfig {
	if c.Safety <= 0 {
		c.Safety = 0.7
	}
	if c.MinBuffer <= 0 {
		c.MinBuffer = 1.5
	}
	if c.UpHold <= 0 {
		c.UpHold = 2
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.4
	}
	return c
}

// ABRCounts snapshots the picker's decision counters.
type ABRCounts struct {
	Picks    int // Pick calls
	Switches int // picks that changed the tier
	Panics   int // buffer-panic drops to the lowest rung
}

// ABRPicker selects a quality tier per segment fetch. Safe for
// concurrent use (one picker per playing client is the normal shape).
type ABRPicker struct {
	mu       sync.Mutex
	cfg      ABRConfig
	tiers    []TierInfo // sorted ascending by Rate
	est      float64    // EWMA throughput, bytes/sec; 0 = no estimate yet
	cur      int        // current rung index
	upStreak int        // consecutive picks supporting a higher rung
	counts   ABRCounts
}

// NewABRPicker builds a picker over a ladder. Tiers are sorted by rate
// internally; at least one tier is required.
func NewABRPicker(tiers []TierInfo, cfg ABRConfig) (*ABRPicker, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("netstream: ABR picker needs at least one tier")
	}
	sorted := append([]TierInfo(nil), tiers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Rate < sorted[j].Rate })
	return &ABRPicker{cfg: cfg.withDefaults(), tiers: sorted}, nil
}

// Observe feeds one fetch's throughput sample (wire bytes over wall
// time) into the EWMA. Cache hits and degenerate timings are ignored —
// a zero-byte or sub-100µs "fetch" says nothing about the link.
func (p *ABRPicker) Observe(bytes int, elapsed time.Duration) {
	if bytes <= 0 || elapsed < 100*time.Microsecond {
		return
	}
	sample := float64(bytes) / elapsed.Seconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.est == 0 {
		p.est = sample
		return
	}
	p.est = p.cfg.Alpha*sample + (1-p.cfg.Alpha)*p.est
}

// Throughput reports the current EWMA estimate in bytes/sec (0 before
// the first observation).
func (p *ABRPicker) Throughput() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.est
}

// Pick selects the tier for the next segment given the player's buffer
// level in media seconds, advancing the picker's state machine.
func (p *ABRPicker) Pick(bufferSec float64) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts.Picks++
	target := 0
	if p.est > 0 {
		budget := p.cfg.Safety * p.est
		for i, t := range p.tiers {
			if t.Rate <= budget {
				target = i
			}
		}
	}
	if bufferSec < p.cfg.MinBuffer {
		// Buffer panic: the only rule that overrides the estimate.
		if p.cur != 0 {
			p.counts.Panics++
		}
		target = 0
	}
	prev := p.cur
	switch {
	case target > p.cur:
		p.upStreak++
		if p.upStreak >= p.cfg.UpHold {
			p.cur++ // climb one rung per pick once the hold is met
			if p.cur == target {
				// Reached the supported rung: any further climb is a new
				// decision and must earn its own hold, or a link flapping
				// around a boundary would ratchet upward.
				p.upStreak = 0
			}
		}
	case target < p.cur:
		p.upStreak = 0
		p.cur = target // downward switches are immediate
	default:
		p.upStreak = 0
	}
	if p.cur != prev {
		p.counts.Switches++
	}
	return p.tiers[p.cur].Name
}

// CurrentTier reports the rung the picker last settled on without
// advancing any state.
func (p *ABRPicker) CurrentTier() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tiers[p.cur].Name
}

// Counts snapshots the decision counters.
func (p *ABRPicker) Counts() ABRCounts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// TierLabel maps a tier name to its metrics label value: the canonical
// "" tier is exported as "full" so the Prometheus series stays legible.
func TierLabel(tier string) string {
	if tier == "" {
		return "full"
	}
	return tier
}
