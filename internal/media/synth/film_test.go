package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/media/raster"
)

func testSpec() Spec {
	return Spec{
		W: 96, H: 64, FPS: 12,
		Shots:         6,
		MinShotFrames: 10,
		MaxShotFrames: 24,
		FadeFraction:  0.3,
		FadeFrames:    6,
		NoiseAmp:      2,
		Seed:          42,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSpec())
	b := Generate(testSpec())
	if a.FrameCount() != b.FrameCount() {
		t.Fatalf("frame counts differ: %d vs %d", a.FrameCount(), b.FrameCount())
	}
	for _, i := range []int{0, 7, a.FrameCount() / 2, a.FrameCount() - 1} {
		if !a.Render(i).Equal(b.Render(i)) {
			t.Fatalf("frame %d differs between identical specs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	s := testSpec()
	a := Generate(s)
	s.Seed = 43
	b := Generate(s)
	// Frame counts will very likely differ; if not, pixels must.
	if a.FrameCount() == b.FrameCount() {
		same := true
		for i := 0; i < a.FrameCount(); i += 5 {
			if !a.Render(i).Equal(b.Render(i)) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical films")
		}
	}
}

func TestRenderPureFunctionOfIndex(t *testing.T) {
	f := Generate(testSpec())
	i := f.FrameCount() / 3
	first := f.Render(i)
	// Render other frames in between, then re-render i.
	f.Render(0)
	f.Render(f.FrameCount() - 1)
	again := f.Render(i)
	if !first.Equal(again) {
		t.Fatal("Render is not a pure function of the frame index")
	}
}

func TestShotIndexAtConsistent(t *testing.T) {
	f := Generate(testSpec())
	for k := range f.Shots {
		start := f.ShotStart(k)
		if got := f.ShotIndexAt(start); got != k {
			t.Fatalf("ShotIndexAt(start of %d) = %d", k, got)
		}
		last := start + f.Shots[k].Frames - 1
		if got := f.ShotIndexAt(last); got != k {
			t.Fatalf("ShotIndexAt(last of %d) = %d", k, got)
		}
	}
}

func TestShotIndexAtPanicsOutOfRange(t *testing.T) {
	f := Generate(testSpec())
	for _, i := range []int{-1, f.FrameCount()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShotIndexAt(%d) did not panic", i)
				}
			}()
			f.ShotIndexAt(i)
		}()
	}
}

func TestCutsMatchShotStarts(t *testing.T) {
	f := Generate(testSpec())
	cuts := f.Cuts()
	if len(cuts) != len(f.Shots)-1 {
		t.Fatalf("got %d cuts, want %d", len(cuts), len(f.Shots)-1)
	}
	for i, c := range cuts {
		if c.Frame != f.ShotStart(i+1) {
			t.Errorf("cut %d at frame %d, want %d", i, c.Frame, f.ShotStart(i+1))
		}
		if c.Gradual != (f.Shots[i+1].FadeIn > 0) {
			t.Errorf("cut %d gradual flag wrong", i)
		}
		if c.SceneFrom == c.SceneTo {
			t.Errorf("cut %d joins identical scenes %v", i, c.SceneTo)
		}
	}
}

func TestAdjacentShotsDifferInHistogram(t *testing.T) {
	f := Generate(testSpec())
	for _, c := range f.Cuts() {
		if c.Gradual {
			continue
		}
		before := f.Render(c.Frame - 1).Histogram()
		after := f.Render(c.Frame).Histogram()
		within := f.Render(c.Frame).Histogram().ChiSquare(f.Render(c.Frame + 1).Histogram())
		across := before.ChiSquare(after)
		if across <= within {
			t.Errorf("cut at %d: across-cut distance %.4f <= within-shot %.4f", c.Frame, across, within)
		}
	}
}

func TestFadeIsGradual(t *testing.T) {
	shots := []Shot{
		{Scene: Classroom, Frames: 20, NoiseAmp: 0, Seed: 1},
		{Scene: Street, Frames: 20, FadeIn: 8, NoiseAmp: 0, Seed: 2},
	}
	f := NewFilm(96, 64, 12, shots)
	cut := f.ShotStart(1)
	// During the fade, each frame should differ only modestly from its
	// neighbor; the sum of step distances spans the scene change.
	maxStep := 0.0
	for i := cut; i < cut+8; i++ {
		d := f.Render(i - 1).Histogram().ChiSquare(f.Render(i).Histogram())
		if d > maxStep {
			maxStep = d
		}
	}
	hard := NewFilm(96, 64, 12, []Shot{
		{Scene: Classroom, Frames: 20, Seed: 1},
		{Scene: Street, Frames: 20, Seed: 2},
	})
	hardStep := hard.Render(19).Histogram().ChiSquare(hard.Render(20).Histogram())
	if maxStep >= hardStep {
		t.Errorf("fade max step %.4f should be below hard-cut step %.4f", maxStep, hardStep)
	}
}

func TestNewFilmValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"no shots", func() { NewFilm(8, 8, 10, nil) }},
		{"zero frames", func() { NewFilm(8, 8, 10, []Shot{{Scene: Lab, Frames: 0}}) }},
		{"bad dims", func() { NewFilm(0, 8, 10, []Shot{{Scene: Lab, Frames: 5}}) }},
		{"fade too long", func() {
			NewFilm(8, 8, 10, []Shot{{Scene: Lab, Frames: 5}, {Scene: Market, Frames: 3, FadeIn: 3}})
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestFromScenesDurations(t *testing.T) {
	f := FromScenes(64, 48, 10, 7, []SceneShot{
		{Kind: Classroom, Seconds: 2},
		{Kind: Market, Seconds: 1.5, Fade: true},
		{Kind: Classroom, Seconds: 1},
	})
	if got := f.FrameCount(); got != 20+15+10 {
		t.Fatalf("FrameCount = %d, want 45", got)
	}
	if f.Shots[1].FadeIn == 0 {
		t.Error("second shot should fade in")
	}
	if f.DurationSeconds() != 4.5 {
		t.Errorf("duration = %f, want 4.5", f.DurationSeconds())
	}
}

func TestSceneKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range AllSceneKinds() {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("scene kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if SceneKind(99).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	err := quick.Check(func(seed, frame, cell uint64, amp uint8) bool {
		a := int(amp % 16)
		n1 := noise(seed, frame, cell, a)
		n2 := noise(seed, frame, cell, a)
		return n1 == n2 && n1 >= -a && n1 <= a
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if noise(1, 2, 3, 0) != 0 {
		t.Error("zero amplitude must give zero noise")
	}
}

func TestUnitWaveRange(t *testing.T) {
	for _, p := range []float64{-3.7, -0.5, 0, 0.25, 0.5, 0.99, 10.1} {
		v := unitWave(p)
		if v < 0 || v > 1 {
			t.Errorf("unitWave(%f) = %f out of [0,1]", p, v)
		}
	}
	if unitWave(0.25) != 0.5 {
		t.Errorf("unitWave(0.25) = %f, want 0.5", unitWave(0.25))
	}
}

func TestRenderedFrameSize(t *testing.T) {
	f := Generate(testSpec())
	fr := f.Render(0)
	if fr.W != 96 || fr.H != 64 {
		t.Fatalf("frame size %dx%d", fr.W, fr.H)
	}
	// Frame should not be blank.
	var mean = fr.MeanLuma()
	if mean < 5 {
		t.Error("rendered frame suspiciously dark")
	}
	_ = raster.Frame{}
}
