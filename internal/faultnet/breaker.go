package faultnet

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker.
//
//	closed    — traffic flows; Failure() counts consecutive failures and
//	            trips to open at Threshold.
//	open      — Allow() refuses everything until Cooldown has elapsed,
//	            then admits exactly one probe (half-open).
//	half-open — the probe is in flight: Success() closes the breaker,
//	            Failure() reopens it and restarts the cooldown.
//
// The gateway keeps one per node: an open breaker diverts a session to
// the rescue/recover path instead of burning its retry budget against a
// node that has already failed several times in a row.
type Breaker struct {
	Threshold int           // consecutive failures to trip (default 5)
	Cooldown  time.Duration // open period before a probe (default 500ms)

	mu       sync.Mutex
	state    breakerState
	failures int // consecutive, lifetime under mu
	openedAt time.Time
	trips    int64
}

type breakerState int8

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 500 * time.Millisecond
	}
	return b.Cooldown
}

// Allow reports whether a request may proceed. When the breaker is open
// and the cooldown has elapsed, Allow admits the caller as the single
// half-open probe — so routing through Allow *is* the probe protocol.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if time.Since(b.openedAt) >= b.cooldown() {
			b.state = stateHalfOpen
			return true
		}
		return false
	default: // half-open: one probe is already out
		return false
	}
}

// Success records a successful call, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stateClosed
	b.failures = 0
}

// Failure records a failed call; it may trip the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case stateHalfOpen:
		b.state = stateOpen
		b.openedAt = time.Now()
		b.trips++
	case stateClosed:
		if b.failures >= b.threshold() {
			b.state = stateOpen
			b.openedAt = time.Now()
			b.trips++
		}
	}
}

// Open reports whether the breaker currently refuses ordinary traffic.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != stateClosed
}

// State names the current state for metrics and logs.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// ConsecutiveFailures returns the current consecutive-failure run.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
