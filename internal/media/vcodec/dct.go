// Package vcodec implements the TKV1 block video codec used by the IVGBL
// platform.
//
// TKV1 is a teaching-grade but complete codec in the JPEG/MPEG lineage:
// frames are converted to YCbCr with 4:2:0 chroma subsampling, split into
// 8×8 blocks, transformed with a type-II DCT, uniformly quantized, zigzag
// scanned and entropy coded with run-length + varint coding. Frames are
// either intra (I) or predicted (P); P-frame blocks choose per-block between
// SKIP (copy from the reference), motion compensation with coded residual,
// and intra coding. Block rows are independent, so both encode and decode
// fan out across worker goroutines.
//
// It substitutes for the DirectShow-era playback stack the paper relied on:
// what the IVGBL runtime needs from a codec is random access at segment
// boundaries (I-frames) and a realistic decode cost, both of which TKV1
// provides.
package vcodec

import "math"

const blockSize = 8

// dctBasis[u][x] = C(u) * cos((2x+1)uπ/16) — the 1-D DCT-II basis, with the
// orthonormalization constant folded in.
var dctBasis [blockSize][blockSize]float64

func init() {
	for u := 0; u < blockSize; u++ {
		c := math.Sqrt(2.0 / blockSize)
		if u == 0 {
			c = math.Sqrt(1.0 / blockSize)
		}
		for x := 0; x < blockSize; x++ {
			dctBasis[u][x] = c * math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*blockSize))
		}
	}
}

// fdct8x8 computes the 2-D forward DCT of src (row-major 64 samples) into
// dst, using two 1-D passes.
func fdct8x8(src *[64]float64, dst *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < blockSize; y++ {
		for u := 0; u < blockSize; u++ {
			var s float64
			for x := 0; x < blockSize; x++ {
				s += src[y*blockSize+x] * dctBasis[u][x]
			}
			tmp[y*blockSize+u] = s
		}
	}
	// Columns.
	for u := 0; u < blockSize; u++ {
		for v := 0; v < blockSize; v++ {
			var s float64
			for y := 0; y < blockSize; y++ {
				s += tmp[y*blockSize+u] * dctBasis[v][y]
			}
			dst[v*blockSize+u] = s
		}
	}
}

// idct8x8 computes the 2-D inverse DCT of src into dst.
func idct8x8(src *[64]float64, dst *[64]float64) {
	var tmp [64]float64
	// Columns.
	for u := 0; u < blockSize; u++ {
		for y := 0; y < blockSize; y++ {
			var s float64
			for v := 0; v < blockSize; v++ {
				s += src[v*blockSize+u] * dctBasis[v][y]
			}
			tmp[y*blockSize+u] = s
		}
	}
	// Rows.
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			var s float64
			for u := 0; u < blockSize; u++ {
				s += tmp[y*blockSize+u] * dctBasis[u][x]
			}
			dst[y*blockSize+x] = s
		}
	}
}

// zigzag maps scan order → block position, walking the 8×8 grid in the
// classic diagonal pattern so low-frequency coefficients come first and
// run-length coding sees long zero tails.
var zigzag = buildZigzag()

func buildZigzag() [64]int {
	var zz [64]int
	x, y, idx := 0, 0, 0
	up := true
	for idx < 64 {
		zz[idx] = y*blockSize + x
		idx++
		if up {
			switch {
			case x == blockSize-1:
				y++
				up = false
			case y == 0:
				x++
				up = false
			default:
				x++
				y--
			}
		} else {
			switch {
			case y == blockSize-1:
				x++
				up = true
			case x == 0:
				y++
				up = true
			default:
				x--
				y++
			}
		}
	}
	return zz
}

// quantize converts DCT coefficients to integer levels with a uniform step.
// The DC coefficient uses half the step: DC errors are the most visible
// (they shift the whole block's brightness).
func quantize(coefs *[64]float64, qstep int, levels *[64]int32) {
	dcStep := float64(qstep) / 2
	if dcStep < 1 {
		dcStep = 1
	}
	levels[0] = int32(math.Round(coefs[zigzag[0]] / dcStep))
	for i := 1; i < 64; i++ {
		levels[i] = int32(math.Round(coefs[zigzag[i]] / float64(qstep)))
	}
}

// quantizeDeadzone is the residual-path quantizer: it truncates toward zero
// instead of rounding, giving a dead zone of ±qstep around zero. Without it,
// P-frames endlessly re-code the previous frame's quantization noise and
// static content never collapses to skip blocks.
func quantizeDeadzone(coefs *[64]float64, qstep int, levels *[64]int32) {
	dcStep := float64(qstep) / 2
	if dcStep < 1 {
		dcStep = 1
	}
	levels[0] = int32(coefs[zigzag[0]] / dcStep)
	for i := 1; i < 64; i++ {
		levels[i] = int32(coefs[zigzag[i]] / float64(qstep))
	}
}

// dequantize reverses quantize into natural (row-major) coefficient order.
func dequantize(levels *[64]int32, qstep int, coefs *[64]float64) {
	dcStep := float64(qstep) / 2
	if dcStep < 1 {
		dcStep = 1
	}
	for i := range coefs {
		coefs[i] = 0
	}
	coefs[zigzag[0]] = float64(levels[0]) * dcStep
	for i := 1; i < 64; i++ {
		if levels[i] != 0 {
			coefs[zigzag[i]] = float64(levels[i]) * float64(qstep)
		}
	}
}
