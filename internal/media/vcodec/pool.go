package vcodec

import "sync"

// rowTask is the unit of work a rowPool executes. Implementations live on
// the Encoder/Decoder and are reused across planes and frames, so
// dispatching a plane allocates nothing (a closure per plane would escape to
// the heap three times per frame).
type rowTask interface {
	runRow(by int)
}

// rowPool is a persistent set of worker goroutines that execute per-block-
// row tasks. One pool lives for the lifetime of an Encoder or Decoder
// (started at construction), replacing the seed's per-plane-per-frame
// goroutine spawning: feeding a row index through a channel is ~100× cheaper
// than starting a goroutine, and the workers' stacks stay warm.
//
// run may not be called concurrently with itself — the Encoder and Decoder
// are documented single-goroutine types, so each pool has one feeder.
type rowPool struct {
	work chan int
	task rowTask // current per-row task; set by run before dispatch
	wg   sync.WaitGroup
	once sync.Once
}

// maxBlockRows bounds the work queue: planes are at most maxDim pixels tall
// (Config.validate and the decoder header check both enforce it), so at most
// maxDim/blockSize rows. A queue this deep means the feeder never blocks
// mid-dispatch.
const maxBlockRows = maxDim / blockSize

func newRowPool(workers int) *rowPool {
	p := &rowPool{work: make(chan int, maxBlockRows)}
	for i := 0; i < workers; i++ {
		go func() {
			for row := range p.work {
				p.task.runRow(row)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes t.runRow(0) … t.runRow(rows-1) across the pool and waits for
// all of them. The channel send/receive orders the p.task write before any
// worker reads it, and wg.Wait orders every runRow call before run returns.
func (p *rowPool) run(rows int, t rowTask) {
	p.task = t
	p.wg.Add(rows)
	for r := 0; r < rows; r++ {
		p.work <- r
	}
	p.wg.Wait()
	p.task = nil
}

// stop shuts the workers down. Idempotent; the pool is unusable afterwards.
func (p *rowPool) stop() {
	p.once.Do(func() { close(p.work) })
}
