package experiments

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/content"
	"repro/internal/fleet"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/playsvc"
	"repro/internal/sim"
)

// E18 measures the live-classroom fan-out: one instructor-driven session,
// watcher cohorts up to the full class size following the broadcast at
// 10 fps on loopback. The claim under test is the hub's O(1)-per-tick
// contract — the server decodes and renders each state change exactly
// once no matter how many watchers subscribe (render counts are asserted
// against the driver's publication count, not inferred from timing), and
// the cohort quiz channel is lossless: every answer a watcher sent is in
// the final tally. Frames are the only load-sheddable tier; events,
// messages and answers never drop.
func E18(watchers int) (string, error) {
	if watchers <= 0 {
		watchers = 1000
	}
	front, cleanup, err := e18Server()
	if err != nil {
		return "", err
	}
	defer cleanup()

	var b strings.Builder
	b.WriteString("E18 — live classroom fan-out: one render per tick, thousands of watchers\n")
	fmt.Fprintf(&b, "one room, driver paced at 10 acts/s for 4s of lesson; cohorts join as\n")
	b.WriteString("long-poll watchers; every row must render exactly once per publication\n")
	b.WriteString("and lose zero quiz answers\n\n")
	b.WriteString("  watchers | renders | delivered | skipped | frames/s | answers s=r | join p90 | answer p90\n")
	b.WriteString("  ---------+---------+-----------+---------+----------+-------------+----------+-----------\n")

	cohorts := []int{watchers / 10, watchers / 4, watchers}
	seen := map[int]bool{}
	for _, w := range cohorts {
		if w < 1 {
			w = 1
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		sum, err := e18Run(front, w, 40)
		if err != nil {
			return "", fmt.Errorf("%d watchers: %w", w, err)
		}
		fmt.Fprintf(&b, "  %8d | %7d | %9d | %7d | %8.0f | %5d = %-3d | %8v | %v\n",
			w, sum.Renders, sum.Delivered, sum.Skipped, sum.FramesPerSec,
			sum.AnswersSent, sum.AnswersRecorded,
			sum.Join.P90.Round(time.Microsecond), sum.Answer.P90.Round(time.Microsecond))
	}
	b.WriteString("\nshape check: the renders column tracks the driver's publication count,\n")
	b.WriteString("not the watcher count — a 10x bigger cohort multiplies deliveries, never\n")
	b.WriteString("renders or decodes. Slow watchers shed frames onto the skipped column\n")
	b.WriteString("(bounded per-watcher rings) while the answers column stays exact: the\n")
	b.WriteString("assessment channel is reliable even when the video tier degrades.\n")
	return b.String(), nil
}

// e18Server publishes the classroom course with the play service (and its
// room routes) mounted, vgbl-server-shaped.
func e18Server() (string, func(), error) {
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", nil, err
	}
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		return "", nil, err
	}
	m := playsvc.NewManager(playsvc.Options{Shards: 8, TTL: -1})
	if err := m.AddCourse("classroom", blob); err != nil {
		m.Close()
		return "", nil, err
	}
	for _, mount := range []string{"/play/", "/room/"} {
		if err := srv.Mount(mount, m.Handler()); err != nil {
			m.Close()
			return "", nil, err
		}
	}
	front := httptest.NewServer(srv)
	return front.URL, func() { front.Close(); m.Close() }, nil
}

// e18Run drives one cohort size and enforces the experiment's invariants:
// no failures, renders exactly equal to driver publications, and a
// lossless answer channel with full cohort participation.
func e18Run(front string, watchers, ticks int) (*fleet.ClassroomSummary, error) {
	sum, err := fleet.RunClassroom(fleet.ClassroomConfig{
		ServerURL: front,
		Package:   "classroom",
		Rooms:     1,
		Watchers:  watchers,
		FPS:       10,
		Ticks:     ticks,
		Policy:    sim.GuidedFactory,
		Seed:      977,
		RunID:     fmt.Sprintf("e18-%d", watchers),
	})
	if err != nil {
		return nil, err
	}
	if sum.DriversFailed > 0 || sum.WatchersFailed > 0 {
		return nil, fmt.Errorf("%d drivers and %d watchers failed: %v", sum.DriversFailed, sum.WatchersFailed, sum.Errors)
	}
	if sum.Renders != sum.Published {
		return nil, fmt.Errorf("renders = %d, driver published %d: the hub rendered more than once per state change", sum.Renders, sum.Published)
	}
	if int64(sum.AnswersSent) != sum.AnswersRecorded {
		return nil, fmt.Errorf("answers lost: %d sent, %d recorded", sum.AnswersSent, sum.AnswersRecorded)
	}
	if want := sum.QuizzesAsked * watchers; sum.AnswersSent != want {
		return nil, fmt.Errorf("cohort participation skewed: %d answers sent, want %d (%d quizzes x %d watchers)",
			sum.AnswersSent, want, sum.QuizzesAsked, watchers)
	}
	return sum, nil
}
