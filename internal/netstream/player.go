// StreamPlayer drives a RemoteGame through its segments the way a
// learner's player would: fetch ahead of a virtual playhead, let the ABR
// picker choose each segment's quality rung from the buffer level, and
// account every stall. Fetch timing is wall-clock — faultnet's bandwidth
// caps and latency are real-time effects — while playback is a virtual
// playhead advancing at Speed media-seconds per wall-second, so a test
// can play a 30-second course in a few wall seconds and still exercise
// the real buffer dynamics.
package netstream

import (
	"fmt"
	"time"
)

// StreamPlayer replays a course's segments in chapter order through the
// adaptive fetch path.
type StreamPlayer struct {
	Game *RemoteGame
	// ABR picks the tier per segment; nil falls back to the game's
	// enabled picker, and with neither every fetch takes the canonical
	// full-quality rung.
	ABR *ABRPicker
	// Speed is how many media-seconds the playhead consumes per
	// wall-second (default 1 — real time).
	Speed float64
	// DecodeFrames additionally decodes each segment's first frame as
	// it lands, proving the fetched tier's bytes actually play.
	DecodeFrames bool
}

// SegmentPlay records one segment's fetch: which tier the picker chose,
// what it cost, and how long it took ("" bytes/fetch for segments that
// were already buffered, e.g. the start segment fetched at open).
type SegmentPlay struct {
	Segment string
	Tier    string
	Bytes   int
	Fetch   time.Duration
}

// PlayReport is one playback session's outcome.
type PlayReport struct {
	Segments  int
	Rebuffers int           // fetches that outran the buffer mid-playback
	Stalled   time.Duration // wall time the playhead spent frozen (startup excluded)
	Startup   time.Duration // wall time fetching the first segment (when not prefetched)
	TierPicks map[string]int
	Stats     Stats // accumulated transfer stats across all fetches
	Plays     []SegmentPlay
}

// Play streams every chapter in order, returning the session report.
func (sp *StreamPlayer) Play() (*PlayReport, error) {
	g := sp.Game
	abr := sp.ABR
	if abr == nil {
		abr = g.abr
	}
	speed := sp.Speed
	if speed <= 0 {
		speed = 1
	}
	meta := g.Meta()
	if meta.FPS <= 0 {
		return nil, fmt.Errorf("netstream: cannot play %d fps video", meta.FPS)
	}
	fps := float64(meta.FPS)
	rep := &PlayReport{TierPicks: map[string]int{}}
	buffer := 0.0 // media-seconds fetched but not yet played
	for i, ch := range g.Chapters() {
		dur := float64(ch.End-ch.Start) / fps
		if g.HasSegment(ch.Name) {
			// Already buffered (the open path prefetched it): plays for
			// free at whatever tier landed.
			tier, _ := g.SegmentTier(ch.Name)
			rep.Segments++
			rep.TierPicks[tier]++
			rep.Plays = append(rep.Plays, SegmentPlay{Segment: ch.Name, Tier: tier})
			buffer += dur
			continue
		}
		tier := ""
		if abr != nil {
			tier = abr.Pick(buffer)
		}
		st, err := g.FetchSegmentTier(ch.Name, tier)
		rep.Stats.Add(st)
		if err != nil {
			return rep, fmt.Errorf("netstream: streaming segment %q (tier %q): %w", ch.Name, tier, err)
		}
		if abr != nil {
			abr.Observe(st.BytesFetched, st.Elapsed)
		}
		if i == 0 {
			// Nothing is playing yet; the first fetch is startup, not a
			// rebuffer.
			rep.Startup = st.Elapsed
		} else {
			drained := st.Elapsed.Seconds() * speed
			if drained > buffer {
				rep.Rebuffers++
				rep.Stalled += time.Duration((drained - buffer) / speed * float64(time.Second))
			}
			if buffer -= drained; buffer < 0 {
				buffer = 0
			}
		}
		buffer += dur
		rep.Segments++
		rep.TierPicks[tier]++
		rep.Plays = append(rep.Plays, SegmentPlay{Segment: ch.Name, Tier: tier, Bytes: st.BytesFetched, Fetch: st.Elapsed})
		if sp.DecodeFrames {
			if _, err := g.FrameAt(ch.Start); err != nil {
				return rep, fmt.Errorf("netstream: decoding segment %q (tier %q): %w", ch.Name, tier, err)
			}
		}
	}
	return rep, nil
}
