// RoomClient: the watcher-side counterpart of Room. A watcher joins a
// shared session, follows the fan-out (long-poll or chunked stream) and
// answers cohort quizzes. The driver seat is NOT here — the instructor
// drives the room through an ordinary Client (Dial with Resume set to the
// room id), because a room's driven session is a plain hosted session.
package playsvc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/media/raster"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// RoomClientOptions configures a watcher.
type RoomClientOptions struct {
	BaseURL string // server base, e.g. "http://127.0.0.1:8807"
	Room    string // room id to join
	// Watcher optionally fixes the watcher id; a retried join with the
	// same id reattaches instead of double-subscribing.
	Watcher string
	// Ordered drains the per-watcher ring in order instead of skipping to
	// the freshest frame on every poll. Streams are always ordered.
	Ordered bool
	// Trace, when valid, stamps every request (see ClientOptions.Trace).
	Trace obs.TraceContext
	// HTTP defaults to faultnet.DefaultHTTPClient().
	HTTP *http.Client
	// Timeout bounds one HTTP attempt BEYOND the requested poll hold (the
	// hold itself is server-side). 0 means 10s; negative disables it.
	Timeout time.Duration
}

// RoomClient is one watcher subscription. Like Client, it is driven by a
// single goroutine: polls reuse its frame and header buffers.
type RoomClient struct {
	opts      RoomClientOptions
	room      string
	watcher   string
	w, h, fps int

	seenEvents   int
	seenMessages int
	seq          int64 // last publication sequence received
	tick         int
	quiz         string
	skipped      int64 // cumulative server-reported skip count
	delivered    int64

	state    *core.State // join-time snapshot (not advanced by frames)
	events   []runtime.Event
	messages []string

	frame  raster.Frame // reusable pixel buffer
	header []byte       // reusable chunk-header buffer
	err    error        // sticky transport failure
}

// JoinRoom subscribes to a room and returns the watcher client, primed
// with the join snapshot (state, transcript tails, pending quiz).
func JoinRoom(o RoomClientOptions) (*RoomClient, error) {
	if o.BaseURL == "" || o.Room == "" {
		return nil, fmt.Errorf("playsvc: room client needs BaseURL and Room")
	}
	if o.HTTP == nil {
		o.HTTP = faultnet.DefaultHTTPClient()
	}
	c := &RoomClient{opts: o, room: o.Room}
	var reply RoomJoinReply
	if err := c.postJSON(RoomJoinPath, &RoomJoinRequest{Room: o.Room, Watcher: o.Watcher, Trace: o.Trace}, &reply); err != nil {
		return nil, err
	}
	c.watcher = reply.Watcher
	c.w, c.h, c.fps = reply.Width, reply.Height, reply.FPS
	c.seq, c.tick = reply.Seq, reply.Tick
	c.seenEvents = reply.EventCount
	c.seenMessages = reply.MessageCount
	c.quiz = reply.Quiz
	c.state = reply.State
	c.events = append(c.events, reply.Events...)
	c.messages = append(c.messages, reply.Messages...)
	return c, nil
}

// WatcherID returns the subscription id the server assigned (or confirmed).
func (c *RoomClient) WatcherID() string { return c.watcher }

// RoomID returns the room id.
func (c *RoomClient) RoomID() string { return c.room }

// VideoMeta returns the room's frame geometry.
func (c *RoomClient) VideoMeta() (w, h, fps int) { return c.w, c.h, c.fps }

// Seq returns the last received publication sequence number.
func (c *RoomClient) Seq() int64 { return c.seq }

// Tick returns the driven session's tick at the last received frame.
func (c *RoomClient) Tick() int { return c.tick }

// Skipped returns the server's cumulative skip count for this watcher —
// frames the fan-out dropped because this subscriber fell behind.
func (c *RoomClient) Skipped() int64 { return c.skipped }

// Delivered returns how many frames this client has received.
func (c *RoomClient) Delivered() int64 { return c.delivered }

// PendingQuiz returns the pending quiz id at the last update ("" = none).
func (c *RoomClient) PendingQuiz() string { return c.quiz }

// State returns the join-time state snapshot (watchers follow the live
// session through frames and events, not state clones).
func (c *RoomClient) State() *core.State { return c.state }

// Events returns the accumulated session event transcript (join tail plus
// every update's delta, in absolute order — frames skip, events do not).
func (c *RoomClient) Events() []runtime.Event { return append([]runtime.Event(nil), c.events...) }

// Messages returns the accumulated classroom transcript.
func (c *RoomClient) Messages() []string { return append([]string(nil), c.messages...) }

// Err returns the sticky transport failure, if any.
func (c *RoomClient) Err() error { return c.err }

func (c *RoomClient) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

func (c *RoomClient) timeout() time.Duration {
	switch {
	case c.opts.Timeout < 0:
		return 0
	case c.opts.Timeout == 0:
		return clientTimeout
	}
	return c.opts.Timeout
}

// postJSON sends one JSON request and decodes the reply into out (nil
// discards it).
func (c *RoomClient) postJSON(path string, body, out any) error {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d := c.timeout(); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	defer cancel()
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.opts.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err, _ := responseError(resp, "room "+path)
		return err
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// watchURL builds the watch query for the current seen-counts.
func (c *RoomClient) watchURL(wait time.Duration, stream int) string {
	q := url.Values{}
	q.Set("room", c.room)
	q.Set("watcher", c.watcher)
	q.Set("events", strconv.Itoa(c.seenEvents))
	q.Set("messages", strconv.Itoa(c.seenMessages))
	q.Set("wait_ms", strconv.Itoa(int(wait/time.Millisecond)))
	if stream > 0 {
		q.Set("stream", strconv.Itoa(stream))
	}
	if c.opts.Ordered {
		q.Set("latest", "0")
	}
	return c.opts.BaseURL + RoomWatchPath + "?" + q.Encode()
}

// fold applies one parsed update to the client mirror. Event and message
// tails never overlap across updates (the server trims to the presented
// seen-counts), so plain appends rebuild the transcripts in order.
func (c *RoomClient) fold(u *WatchUpdate) {
	c.seq, c.tick = u.Seq, u.Tick
	c.skipped = u.Skipped
	c.quiz = u.Quiz
	c.seenEvents = u.EventCount
	c.seenMessages = u.MessageCount
	c.events = append(c.events, u.Events...)
	c.messages = append(c.messages, u.Messages...)
	c.delivered++
}

// Poll long-polls for the next publication: the update (frame metadata,
// event/message tails, pending quiz) plus the frame pixels in the client's
// reusable buffer. A (nil, nil, nil) return means the hold expired with
// nothing new — poll again. The poll acknowledges everything the previous
// one returned.
func (c *RoomClient) Poll(wait time.Duration) (*WatchUpdate, *raster.Frame, error) {
	if c.err != nil {
		return nil, nil, c.err
	}
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d := c.timeout(); d > 0 {
		// The attempt deadline must outlast the requested server-side hold.
		ctx, cancel = context.WithTimeout(ctx, d+wait)
	}
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.watchURL(wait, 0), nil)
	if err != nil {
		return nil, nil, c.fail(err)
	}
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, nil, c.fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		return nil, nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		err, _ := responseError(resp, "room watch")
		return nil, nil, c.fail(err)
	}
	u, err := c.readChunk(resp.Body)
	if err != nil {
		return nil, nil, c.fail(err)
	}
	c.fold(u)
	return u, &c.frame, nil
}

// Stream opens one chunked-streaming watch of up to n publications and
// calls fn for each as it lands. The frame is only valid during fn. fn
// returning a non-nil error stops the stream and returns that error; a
// server-ended stream (room closed, count reached) returns nil.
func (c *RoomClient) Stream(n int, hold time.Duration, fn func(*WatchUpdate, *raster.Frame) error) error {
	if c.err != nil {
		return c.err
	}
	if n <= 0 {
		return nil
	}
	req, err := http.NewRequest(http.MethodGet, c.watchURL(hold, n), nil)
	if err != nil {
		return c.fail(err)
	}
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		err, _ := responseError(resp, "room stream")
		return c.fail(err)
	}
	for i := 0; i < n; i++ {
		u, err := c.readChunk(resp.Body)
		if err == io.EOF {
			return nil // server ended the stream cleanly
		}
		if err != nil {
			return c.fail(err)
		}
		c.fold(u)
		if err := fn(u, &c.frame); err != nil {
			return err
		}
	}
	return nil
}

// readChunk reads one watch chunk (length-prefixed header + pixels) into
// the client's reusable buffers. io.EOF means the stream ended between
// chunks.
func (c *RoomClient) readChunk(r io.Reader) (*WatchUpdate, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(lenb[:]))
	if n <= 0 || n > maxBody {
		return nil, frameBadf("watch header claims %d bytes", n)
	}
	if cap(c.header) < n {
		c.header = make([]byte, n)
	}
	c.header = c.header[:n]
	if _, err := io.ReadFull(r, c.header); err != nil {
		return nil, fmt.Errorf("playsvc: short watch header: %w", err)
	}
	u, err := ParseWatchChunk(c.header)
	if err != nil {
		return nil, err
	}
	if cap(c.frame.Pix) < u.PixLen {
		c.frame.Pix = make([]uint8, u.PixLen)
	}
	c.frame.Pix = c.frame.Pix[:u.PixLen]
	c.frame.W, c.frame.H = u.W, u.H
	if _, err := io.ReadFull(r, c.frame.Pix); err != nil {
		return nil, fmt.Errorf("playsvc: short watch frame: %w", err)
	}
	return u, nil
}

// Answer records this watcher's answer to a quiz and returns the cohort
// tally so far.
func (c *RoomClient) Answer(quizID string, choice int) (*RoomAnswerReply, error) {
	if c.err != nil {
		return nil, c.err
	}
	var reply RoomAnswerReply
	err := c.postJSON(RoomAnswerPath, &RoomAnswerRequest{
		Room: c.room, Watcher: c.watcher, Quiz: quizID, Choice: choice, Trace: c.opts.Trace,
	}, &reply)
	if err != nil {
		if pe, ok := err.(*Error); ok && pe.Status == http.StatusBadRequest {
			return nil, err // caller mistake; subscription stays usable
		}
		return nil, c.fail(err)
	}
	return &reply, nil
}

// RoomStats fetches the room's counters and cohort tallies.
func (c *RoomClient) RoomStats() (RoomStats, error) {
	var st RoomStats
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d := c.timeout(); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.opts.BaseURL+RoomStatsPath+"?room="+url.QueryEscape(c.room), nil)
	if err != nil {
		return st, err
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err, _ := responseError(resp, "room stats")
		return st, err
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Close unsubscribes the watcher. The room (and its driven session) is
// untouched — watchers come and go; the driver owns the session.
func (c *RoomClient) Close() error {
	err := c.postJSON(RoomLeavePath, &RoomJoinRequest{Room: c.room, Watcher: c.watcher}, nil)
	if c.err != nil {
		return c.err
	}
	return err
}

// CreateRoom opens a shared session on the server (idempotent — see
// Manager.CreateRoom) and returns the created room's metadata. The caller
// then drives the room by Dialing an ordinary Client with Resume set to
// the room id, and watchers subscribe with JoinRoom. httpc nil means
// faultnet.DefaultHTTPClient().
func CreateRoom(baseURL string, req *RoomCreateRequest, httpc *http.Client) (*RoomCreateReply, error) {
	if baseURL == "" || req == nil || req.Course == "" {
		return nil, fmt.Errorf("playsvc: CreateRoom needs a base URL and a course")
	}
	if httpc == nil {
		httpc = faultnet.DefaultHTTPClient()
	}
	c := &RoomClient{opts: RoomClientOptions{BaseURL: baseURL, HTTP: httpc, Trace: req.Trace}}
	var reply RoomCreateReply
	if err := c.postJSON(RoomCreatePath, req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}
