package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRetryJitterDeterministic pins the backoff schedule: under a fixed
// seed the jitter sequence replays exactly, and every delay respects the
// full-jitter bound min(MaxDelay, BaseDelay<<attempt).
func TestRetryJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		p := &RetryPolicy{
			Attempts:  6,
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  80 * time.Millisecond,
			Seed:      42,
			Sleep:     func(d time.Duration) { sleeps = append(sleeps, d) },
		}
		err := p.Do(func(int) (error, bool) { return errors.New("boom"), true })
		if err == nil {
			t.Fatal("expected error after exhaustion")
		}
		return sleeps
	}
	first := run()
	second := run()
	if len(first) != 5 {
		t.Fatalf("sleeps = %d, want 5 (6 attempts)", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("sleep[%d]: %v vs %v — jitter not deterministic under seed", i, first[i], second[i])
		}
		bound := 10 * time.Millisecond << uint(i)
		if bound > 80*time.Millisecond {
			bound = 80 * time.Millisecond
		}
		if first[i] < 0 || first[i] >= bound {
			t.Fatalf("sleep[%d] = %v, want in [0, %v)", i, first[i], bound)
		}
	}
}

type typedErr struct{ code int }

func (e *typedErr) Error() string { return fmt.Sprintf("typed error %d", e.code) }

// TestRetryExhaustionReturnsLastTypedError verifies the budget-exhausted
// path hands back the final attempt's error with its concrete type
// intact, including when it arrived wrapped in a Retry-After shell.
func TestRetryExhaustionReturnsLastTypedError(t *testing.T) {
	p := &RetryPolicy{Attempts: 3, Seed: 1, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do(func(attempt int) (error, bool) {
		calls++
		return &Delayed{After: time.Millisecond, Err: &typedErr{code: attempt}}, true
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	var te *typedErr
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *typedErr", err, err)
	}
	if te.code != 2 {
		t.Fatalf("code = %d, want last attempt's 2", te.code)
	}
	if _, ok := err.(*Delayed); ok {
		t.Fatal("exhaustion should unwrap the Delayed shell")
	}
}

// TestRetryTerminalErrorStopsEarly: a non-retryable error ends the loop
// on the spot.
func TestRetryTerminalErrorStopsEarly(t *testing.T) {
	p := &RetryPolicy{Attempts: 5, Sleep: func(time.Duration) {}}
	calls := 0
	want := &typedErr{code: 7}
	err := p.Do(func(int) (error, bool) {
		calls++
		return want, false
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want the terminal error", err)
	}
}

// TestRetryHappyPathZeroAlloc pins the contract that lets the resilient
// wrappers sit on the act hot path: a first-attempt success allocates
// nothing.
func TestRetryHappyPathZeroAlloc(t *testing.T) {
	p := &RetryPolicy{Attempts: 4}
	fn := func(int) (error, bool) { return nil, false }
	allocs := testing.AllocsPerRun(1000, func() {
		if err := p.Do(fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("happy path allocates %.1f/op, want 0", allocs)
	}
}

// TestRetryHonorsDelayed: a server-requested delay replaces jitter for
// that retry and is capped.
func TestRetryHonorsDelayed(t *testing.T) {
	var sleeps []time.Duration
	p := &RetryPolicy{Attempts: 3, Seed: 9, Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
	base := errors.New("shed")
	err := p.Do(func(attempt int) (error, bool) {
		switch attempt {
		case 0:
			return &Delayed{After: 50 * time.Millisecond, Err: base}, true
		case 1:
			return &Delayed{After: time.Hour, Err: base}, true
		}
		return nil, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 entries", sleeps)
	}
	if sleeps[0] != 50*time.Millisecond {
		t.Fatalf("sleep[0] = %v, want the advertised 50ms", sleeps[0])
	}
	if sleeps[1] != maxRetryAfter {
		t.Fatalf("sleep[1] = %v, want capped at %v", sleeps[1], maxRetryAfter)
	}
}

func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusOK: false, http.StatusBadRequest: false, http.StatusNotFound: false,
		http.StatusInternalServerError: false, http.StatusTooManyRequests: true,
		http.StatusBadGateway: true, http.StatusServiceUnavailable: true,
		http.StatusGatewayTimeout: true,
	} {
		if got := RetryableStatus(code); got != want {
			t.Errorf("RetryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestRetryAfterDelay(t *testing.T) {
	h := http.Header{}
	if _, ok := RetryAfterDelay(h); ok {
		t.Fatal("no header should parse as absent")
	}
	h.Set("Retry-After", "1")
	if d, ok := RetryAfterDelay(h); !ok || d != time.Second {
		t.Fatalf("got %v %v, want 1s", d, ok)
	}
	h.Set("Retry-After", "3600")
	if d, _ := RetryAfterDelay(h); d != maxRetryAfter {
		t.Fatalf("got %v, want capped %v", d, maxRetryAfter)
	}
	h.Set("Retry-After", "soon")
	if _, ok := RetryAfterDelay(h); ok {
		t.Fatal("non-integer should parse as absent")
	}
}

// TestBreakerStateMachine walks closed → open → half-open → closed and
// the half-open failure reopen.
func TestBreakerStateMachine(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: 10 * time.Millisecond}
	if !b.Allow() || b.State() != "closed" {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.Failure()
	b.Failure()
	if b.Open() {
		t.Fatal("below threshold should stay closed")
	}
	b.Failure()
	if !b.Open() || b.State() != "open" {
		t.Fatal("threshold consecutive failures should trip")
	}
	if b.Allow() {
		t.Fatal("open breaker inside cooldown must refuse")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: one probe should be admitted")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %q, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be refused")
	}
	b.Failure()
	if b.State() != "open" || b.Trips() != 2 {
		t.Fatal("half-open failure should reopen")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe after second cooldown")
	}
	b.Success()
	if b.State() != "closed" || b.ConsecutiveFailures() != 0 {
		t.Fatal("probe success should close and reset the failure run")
	}
}

// TestBreakerSuccessResetsRun: interleaved successes keep a flaky-but-
// mostly-up node from tripping on scattered failures.
func TestBreakerSuccessResetsRun(t *testing.T) {
	b := &Breaker{Threshold: 3}
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.Open() {
		t.Fatal("non-consecutive failures must not trip")
	}
}

// TestTransportInjectsDeterministically: same seed + profile → same
// injected-fault sequence against a live backend.
func TestTransportInjectsDeterministically(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	profile := Profile{DropRate: 0.3, ResetRate: 0.2, ErrorRate: 0.2}
	run := func() (string, Stats) {
		tr := NewTransport(nil, profile, 7)
		client := &http.Client{Transport: tr}
		var trace strings.Builder
		for i := 0; i < 40; i++ {
			resp, err := client.Get(srv.URL)
			switch {
			case errors.Is(err, ErrDropped):
				trace.WriteByte('d')
			case errors.Is(err, ErrReset):
				trace.WriteByte('r')
			case err != nil:
				t.Fatalf("unexpected error class: %v", err)
			case resp.StatusCode == http.StatusServiceUnavailable:
				trace.WriteByte('e')
				resp.Body.Close()
			default:
				trace.WriteByte('.')
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return trace.String(), tr.Stats()
	}
	trace1, stats1 := run()
	trace2, stats2 := run()
	if trace1 != trace2 {
		t.Fatalf("fault sequence not deterministic:\n%s\n%s", trace1, trace2)
	}
	if stats1 != stats2 {
		t.Fatalf("stats differ: %+v vs %+v", stats1, stats2)
	}
	if stats1.Drops == 0 || stats1.Resets == 0 || stats1.Errors == 0 {
		t.Fatalf("expected every fault class at these rates over 40 reqs: %+v", stats1)
	}
	if strings.Count(trace1, "d")+strings.Count(trace1, "r")+strings.Count(trace1, "e") == 40 {
		t.Fatal("expected some clean responses too")
	}
}

// TestTransportResetAfterApply pins the semantic that makes resets the
// hard case: the server DID apply the request before the reply was lost.
func TestTransportResetAfterApply(t *testing.T) {
	var applied int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		applied++
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	tr := NewTransport(nil, Profile{ResetRate: 1}, 1)
	client := &http.Client{Transport: tr}
	if _, err := client.Get(srv.URL); !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if applied != 1 {
		t.Fatalf("applied = %d: a reset must reach the server first", applied)
	}

	// A drop, by contrast, never arrives.
	tr = NewTransport(nil, Profile{DropRate: 1}, 1)
	client = &http.Client{Transport: tr}
	if _, err := client.Get(srv.URL); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if applied != 1 {
		t.Fatalf("applied = %d: a dropped request must not reach the server", applied)
	}
}

// TestLookupProfiles: every advertised name resolves.
func TestLookupProfiles(t *testing.T) {
	for _, name := range ProfileNames() {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if name != "clean" && p == (Profile{Name: p.Name}) {
			t.Fatalf("profile %q injects nothing", name)
		}
	}
	if _, ok := Lookup("carrier-pigeon"); ok {
		t.Fatal("unknown profile should not resolve")
	}
}

// TestDefaultHTTPClientHasTimeouts: the shared client must not be the
// timeout-free http.DefaultClient in disguise.
func TestDefaultHTTPClientHasTimeouts(t *testing.T) {
	c := DefaultHTTPClient()
	if c == http.DefaultClient {
		t.Fatal("DefaultHTTPClient returned http.DefaultClient")
	}
	tr, ok := c.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", c.Transport)
	}
	if tr.ResponseHeaderTimeout == 0 || tr.TLSHandshakeTimeout == 0 {
		t.Fatal("transport is missing header/TLS timeouts")
	}
	if DefaultHTTPClient() != c {
		t.Fatal("DefaultHTTPClient should return the shared instance")
	}
}
