// Multi-tier streaming: the client half of the quality ladder. A
// chunked RemoteGame carries one rung per "video@<tier>" section in the
// manifest; segments are fetched from whichever rung the ABR picker (or
// an explicit caller) selects, and the frame path decodes each landed
// chunk against the head of the rung that produced it. Per-tier wire
// bytes are accounted on the client exactly as the server accounts them
// on /chunk/, which is what lets E19 reconcile the two to the byte.
package netstream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/gamepack"
	"repro/internal/media/container"
)

// tierRung is one quality rung's fetch plan: its chunk run, precomputed
// offsets, payload size, and a lazily grown head (the canonical rung's
// head is set at open; other rungs pay for theirs on first use).
type tierRung struct {
	chunks []gamepack.ChunkRef
	offs   []int
	size   int

	mu   sync.Mutex
	head *container.Head
}

// Tiers lists the quality rungs this game can fetch, canonical ("")
// first. A single-quality or legacy ranged package yields [""].
func (g *RemoteGame) Tiers() []string {
	if g.rungs == nil {
		return []string{""}
	}
	out := make([]string, 0, len(g.rungs))
	for tier := range g.rungs {
		out = append(out, tier)
	}
	sort.Strings(out) // "" sorts first
	return out
}

// ABR returns the picker enabled on this game (nil when ABR is off).
func (g *RemoteGame) ABR() *ABRPicker { return g.abr }

// EnableABR attaches a throughput/buffer-driven tier picker sized from
// the ladder itself: each rung's media rate is its payload size over the
// video's duration. Requires a chunked (manifest-backed) game.
func (g *RemoteGame) EnableABR(cfg ABRConfig) (*ABRPicker, error) {
	if g.rungs == nil {
		return nil, errors.New("netstream: ABR needs a chunked package (legacy ranged servers carry one tier)")
	}
	meta := g.head.Meta()
	if meta.FPS <= 0 || meta.FrameCount <= 0 {
		return nil, fmt.Errorf("netstream: cannot size ABR ladder from %d frames at %d fps", meta.FrameCount, meta.FPS)
	}
	dur := float64(meta.FrameCount) / float64(meta.FPS)
	infos := make([]TierInfo, 0, len(g.rungs))
	for tier, rung := range g.rungs {
		infos = append(infos, TierInfo{Name: tier, Rate: float64(rung.size) / dur})
	}
	p, err := NewABRPicker(infos, cfg)
	if err != nil {
		return nil, err
	}
	g.abr = p
	return p, nil
}

// TierBytes snapshots the wire bytes fetched per tier by this game
// (video chunks only, cache hits excluded) — the client side of the
// ledger the server's netstream_tier_bytes_total counters keep.
func (g *RemoteGame) TierBytes() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int64, len(g.tierBytes))
	for tier, n := range g.tierBytes {
		out[tier] = n
	}
	return out
}

// SegmentTier reports which tier a fetched segment landed at.
func (g *RemoteGame) SegmentTier(name string) (string, bool) {
	ch, ok := g.head.ChapterByName(name)
	if !ok {
		return "", false
	}
	k, err := g.head.KeyframeAtOrBefore(ch.Start)
	if err != nil {
		return "", false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, have := g.chunks[k]; !have || g.ends[k] < ch.End {
		return "", false
	}
	return g.tierOf[k], true
}

// FetchSegmentTier pulls a segment from an explicit quality rung,
// reporting the transfer cost. Tier "" is the canonical full-quality
// rung. An already-fetched segment is kept at whatever tier landed.
func (g *RemoteGame) FetchSegmentTier(name, tier string) (Stats, error) {
	var st Stats
	began := time.Now()
	err := g.ensureSegmentTier(name, tier, &st)
	st.Elapsed = time.Since(began)
	return st, err
}

// getTierChunk fetches one of a rung's chunks, attributing any wire
// bytes (cache hits transfer none) to the tier's client-side ledger.
func (g *RemoteGame) getTierChunk(tier string, rung *tierRung, i int, st *Stats) ([]byte, error) {
	before := st.BytesFetched
	data, err := g.client.getChunk(g.base, rung.chunks[i], g.cache, st)
	if err != nil {
		return nil, err
	}
	if d := st.BytesFetched - before; d > 0 {
		g.mu.Lock()
		g.tierBytes[tier] += int64(d)
		g.mu.Unlock()
	}
	return data, nil
}

// rungHead returns a rung's parsed head, growing it chunk by chunk on
// first use (video chunking cuts the head/data boundary, so this is one
// chunk in the common case).
func (g *RemoteGame) rungHead(tier string, rung *tierRung, st *Stats) (*container.Head, error) {
	rung.mu.Lock()
	defer rung.mu.Unlock()
	if rung.head != nil {
		return rung.head, nil
	}
	var buf []byte
	for i := range rung.chunks {
		data, err := g.getTierChunk(tier, rung, i, st)
		if err != nil {
			return nil, err
		}
		buf = append(buf, data...)
		head, err := container.ParseHead(buf)
		if err == nil {
			rung.head = head
			return head, nil
		}
		if !errors.Is(err, container.ErrTruncated) {
			return nil, fmt.Errorf("netstream: tier %q head: %w", tier, err)
		}
	}
	return nil, fmt.Errorf("netstream: tier %q head: %w", tier, container.ErrTruncated)
}

// headOf returns the head a fetched chunk's packets index into: the head
// of the tier that produced it (already grown by the fetch).
func (g *RemoteGame) headOf(tier string) *container.Head {
	if tier == "" || g.rungs == nil {
		return g.head
	}
	rung := g.rungs[tier]
	if rung == nil {
		return g.head
	}
	rung.mu.Lock()
	defer rung.mu.Unlock()
	if rung.head == nil {
		return g.head
	}
	return rung.head
}

// fetchRungRange materializes bytes [lo, hi) of one rung's video payload
// from the chunks that cover it.
func (g *RemoteGame) fetchRungRange(tier string, rung *tierRung, lo, hi int, st *Stats) ([]byte, error) {
	i := sort.Search(len(rung.offs), func(i int) bool {
		return rung.offs[i]+rung.chunks[i].Size > lo
	})
	if i == len(rung.offs) {
		return nil, fmt.Errorf("netstream: tier %q video range [%d,%d) beyond manifest", tier, lo, hi)
	}
	var buf []byte
	for ; i < len(rung.chunks) && rung.offs[i] < hi; i++ {
		data, err := g.getTierChunk(tier, rung, i, st)
		if err != nil {
			return nil, err
		}
		from, to := 0, len(data)
		if rung.offs[i] < lo {
			from = lo - rung.offs[i]
		}
		if rung.offs[i]+to > hi {
			to = hi - rung.offs[i]
		}
		buf = append(buf, data[from:to]...)
	}
	if len(buf) != hi-lo {
		return nil, fmt.Errorf("netstream: tier %q video range [%d,%d): got %d bytes", tier, lo, hi, len(buf))
	}
	return buf, nil
}

// ensureSegmentTier fetches the byte range covering a segment (from its
// preceding keyframe) from the given rung, if no rung already covers it.
// Chapter and keyframe geometry are shared across rungs (BuildLadder
// validates this), so the canonical head answers "which frames"; the
// selected rung's head answers "which bytes".
func (g *RemoteGame) ensureSegmentTier(name, tier string, st *Stats) error {
	ch, ok := g.head.ChapterByName(name)
	if !ok {
		return fmt.Errorf("netstream: no segment %q", name)
	}
	k, err := g.head.KeyframeAtOrBefore(ch.Start)
	if err != nil {
		return err
	}
	g.mu.Lock()
	_, have := g.chunks[k]
	if have && g.ends[k] >= ch.End {
		g.mu.Unlock()
		return nil
	}
	g.mu.Unlock()
	var chunk []byte
	if g.rungs != nil {
		rung := g.rungs[tier]
		if rung == nil {
			return fmt.Errorf("netstream: no quality tier %q (have %v)", tier, g.Tiers())
		}
		head, err := g.rungHead(tier, rung, st)
		if err != nil {
			return err
		}
		lo, hi, err := head.ByteRange(k, ch.End)
		if err != nil {
			return err
		}
		if chunk, err = g.fetchRungRange(tier, rung, lo, hi, st); err != nil {
			return err
		}
	} else {
		if tier != "" {
			return fmt.Errorf("netstream: no quality tier %q (legacy ranged package)", tier)
		}
		lo, hi, err := g.head.ByteRange(k, ch.End)
		if err != nil {
			return err
		}
		if chunk, err = g.client.fetchRange(g.url, g.videoOff+lo, g.videoOff+hi, st); err != nil {
			return err
		}
	}
	g.mu.Lock()
	g.chunks[k] = chunk
	g.ends[k] = ch.End
	g.tierOf[k] = tier
	g.starts = append(g.starts, k)
	sort.Ints(g.starts)
	g.mu.Unlock()
	return nil
}

// ProgressiveOpenABR opens a ladder package for adaptive playback: like
// ProgressiveOpenCached, but the start segment is fetched from the
// smallest rung (fast startup on an unknown link) and the returned game
// has an ABR picker enabled — subsequent segment fetches through a
// StreamPlayer (or FetchSegment) ride its tier decisions. Requires a
// chunked /pkg/ URL; a single-quality package degrades to plain
// streaming with a one-rung picker.
func (c *Client) ProgressiveOpenABR(url string, cache *PackageCache, cfg ABRConfig) (*RemoteGame, Stats, error) {
	var st Stats
	began := time.Now()
	base, name, ok := splitPkgURL(url)
	if !ok {
		return nil, st, fmt.Errorf("netstream: ABR open needs a /pkg/ URL, got %q", url)
	}
	man, _, _, err := c.fetchManifest(base+"/manifest/"+name, "", &st)
	if err != nil {
		return nil, st, err
	}
	g, err := c.openChunked(url, base, man, cache, &st, true)
	if err != nil {
		return nil, st, err
	}
	if _, err := g.EnableABR(cfg); err != nil {
		return nil, st, err
	}
	st.Elapsed = time.Since(began)
	return g, st, nil
}
