// Package core defines the IVGBL document model — the paper's primary
// contribution: a game description that non-programmer course designers
// build in the authoring tool and the gaming platform executes.
//
// A Project is a set of Scenarios (each backed by a video segment), each
// carrying interactive Objects (hotspots, collectible items, NPCs,
// navigation buttons) with event scripts; plus the catalogs the scripts
// reference: items, knowledge units and missions. The model is pure data —
// JSON-serializable, validated statically — so the same project file drives
// the authoring tool, the runtime, the simulator and the experiments.
package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/media/raster"
	"repro/internal/script"
)

// FormatVersion is the serialized project format version.
const FormatVersion = 1

// ObjectKind classifies an interactive object (paper §3.1).
type ObjectKind string

// Object kinds.
const (
	// Hotspot is an invisible clickable region over the video.
	Hotspot ObjectKind = "hotspot"
	// Item is a visible, collectible object ("drag it to inventory window").
	Item ObjectKind = "item"
	// NPC is a character giving a fixed conversation.
	NPC ObjectKind = "npc"
	// NavButton switches scenarios or pops resources ("buttons provide
	// players options to switch to other video segments").
	NavButton ObjectKind = "button"
)

// Valid reports whether k is a known kind.
func (k ObjectKind) Valid() bool {
	switch k {
	case Hotspot, Item, NPC, NavButton:
		return true
	}
	return false
}

// TriggerType says when an object's event fires.
type TriggerType string

// Trigger types.
const (
	// OnClick fires when the player clicks the object.
	OnClick TriggerType = "click"
	// OnExamine fires when the player examines the object (right-click /
	// examine verb).
	OnExamine TriggerType = "examine"
	// OnTake fires when the player drags the object into the inventory.
	OnTake TriggerType = "take"
	// OnUse fires when the player uses a specific inventory item on the
	// object (the classroom example: use "ram module" on the computer).
	OnUse TriggerType = "use"
	// OnEnter fires when a scenario is entered (scenario-level events).
	OnEnter TriggerType = "enter"
)

// Valid reports whether t is a known trigger.
func (t TriggerType) Valid() bool {
	switch t {
	case OnClick, OnExamine, OnTake, OnUse, OnEnter:
		return true
	}
	return false
}

// Event binds a trigger to a script.
type Event struct {
	Trigger TriggerType `json:"trigger"`
	// UseItem names the inventory item for OnUse triggers.
	UseItem string `json:"use_item,omitempty"`
	// Condition is an optional boolean guard expression; an event with a
	// false condition does not fire.
	Condition string `json:"condition,omitempty"`
	// Script is the event handler source (see package script).
	Script string `json:"script"`
}

// SpriteSpec describes the visual of an Item/NavButton mounted on the video
// frame — the "image object with white background" of Figure 2.
type SpriteSpec struct {
	Shape string     `json:"shape"` // "box", "disc", "umbrella", "chip", "coin", "badge"
	Color raster.RGB `json:"color"`
	Label string     `json:"label,omitempty"` // short text on buttons
}

// Object is one interactive object in a scenario.
type Object struct {
	ID          string      `json:"id"`
	Name        string      `json:"name"`
	Kind        ObjectKind  `json:"kind"`
	Region      raster.Rect `json:"region"` // position on the video frame
	Sprite      SpriteSpec  `json:"sprite,omitempty"`
	Description string      `json:"description,omitempty"` // examine text
	Enabled     bool        `json:"enabled"`               // initial visibility
	Takeable    bool        `json:"takeable,omitempty"`    // may be dragged to inventory
	Dialogue    []string    `json:"dialogue,omitempty"`    // NPC fixed conversation
	Events      []Event     `json:"events,omitempty"`
}

// EventFor returns the first event with the given trigger (and item for
// OnUse), or nil.
func (o *Object) EventFor(t TriggerType, useItem string) *Event {
	for i := range o.Events {
		e := &o.Events[i]
		if e.Trigger != t {
			continue
		}
		if t == OnUse && e.UseItem != useItem {
			continue
		}
		return e
	}
	return nil
}

// Scenario is one game location backed by a video segment (paper §2.1:
// "video segments are the basic unit used for presenting scenarios").
type Scenario struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Segment     string    `json:"segment"` // container chapter name
	Description string    `json:"description,omitempty"`
	OnEnter     string    `json:"on_enter,omitempty"` // script run on entry
	Objects     []*Object `json:"objects,omitempty"`
}

// ObjectByID finds an object in the scenario.
func (s *Scenario) ObjectByID(id string) *Object {
	for _, o := range s.Objects {
		if o.ID == id {
			return o
		}
	}
	return nil
}

// ItemDef is a catalog entry for a collectible item.
type ItemDef struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Reward marks achievement objects ("such objects differ from other
	// interactive ones; they represent the achievements which players
	// have", §3.3).
	Reward bool `json:"reward,omitempty"`
}

// KnowledgeUnit is a unit of course content delivered through play
// (paper §3.2).
type KnowledgeUnit struct {
	ID          string `json:"id"`
	Topic       string `json:"topic"`
	Description string `json:"description,omitempty"`
}

// Quiz is a multiple-choice assessment question bound to a knowledge unit —
// the assessment extension: the paper delivers knowledge through play
// (§3.2) and leaves grading to the lecturer; quizzes close that loop by
// measuring whether a delivered unit actually landed.
type Quiz struct {
	ID       string   `json:"id"`
	Question string   `json:"question"`
	Choices  []string `json:"choices"`
	// Answer is the index of the correct choice.
	Answer int `json:"answer"`
	// Knowledge names the unit this quiz assesses.
	Knowledge string `json:"knowledge"`
	// Points are added to the "score" variable on a correct answer.
	Points int `json:"points,omitempty"`
}

// Mission is a task whose completion is observable as a flag, optionally
// granting a reward item (paper §3.3: "if players complete some requests or
// missions, they can get special objects").
type Mission struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	Description string `json:"description,omitempty"`
	DoneFlag    string `json:"done_flag"`           // flag that marks completion
	Reward      string `json:"reward,omitempty"`    // item id granted on completion
	Knowledge   string `json:"knowledge,omitempty"` // primary knowledge unit
}

// Project is the complete authored game.
type Project struct {
	Version       int              `json:"version"`
	Title         string           `json:"title"`
	Author        string           `json:"author,omitempty"`
	StartScenario string           `json:"start_scenario"`
	Scenarios     []*Scenario      `json:"scenarios"`
	Items         []*ItemDef       `json:"items,omitempty"`
	Knowledge     []*KnowledgeUnit `json:"knowledge,omitempty"`
	Missions      []*Mission       `json:"missions,omitempty"`
	Quizzes       []*Quiz          `json:"quizzes,omitempty"`
	// InitialVars seeds integer variables (e.g. starting money).
	InitialVars map[string]int `json:"initial_vars,omitempty"`
}

// NewProject creates an empty project with the current format version.
func NewProject(title string) *Project {
	return &Project{Version: FormatVersion, Title: title}
}

// ScenarioByID finds a scenario.
func (p *Project) ScenarioByID(id string) *Scenario {
	for _, s := range p.Scenarios {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// ItemByID finds an item definition.
func (p *Project) ItemByID(id string) *ItemDef {
	for _, it := range p.Items {
		if it.ID == id {
			return it
		}
	}
	return nil
}

// KnowledgeByID finds a knowledge unit.
func (p *Project) KnowledgeByID(id string) *KnowledgeUnit {
	for _, k := range p.Knowledge {
		if k.ID == id {
			return k
		}
	}
	return nil
}

// QuizByID finds a quiz.
func (p *Project) QuizByID(id string) *Quiz {
	for _, q := range p.Quizzes {
		if q.ID == id {
			return q
		}
	}
	return nil
}

// FindObject locates an object anywhere in the project, returning its
// scenario too.
func (p *Project) FindObject(id string) (*Scenario, *Object) {
	for _, s := range p.Scenarios {
		if o := s.ObjectByID(id); o != nil {
			return s, o
		}
	}
	return nil, nil
}

// Marshal serializes the project to indented JSON.
func (p *Project) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// UnmarshalProject parses a project and checks the format version.
func UnmarshalProject(data []byte) (*Project, error) {
	var p Project
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("core: parsing project: %w", err)
	}
	if p.Version != FormatVersion {
		return nil, fmt.Errorf("core: project format version %d, want %d", p.Version, FormatVersion)
	}
	return &p, nil
}

// CompiledEvent pairs an event with its compiled script.
type CompiledEvent struct {
	Event     *Event
	Program   *script.Program
	Condition string
}

// CompileEvents compiles every script in the project, returning a map from
// "<scenarioID>/<objectID>/<trigger>[/<item>]" (and "<scenarioID>//enter"
// for scenario entry scripts) to compiled programs. It fails on the first
// script error, identifying the offending object.
func (p *Project) CompileEvents() (map[string]*script.Program, error) {
	out := make(map[string]*script.Program)
	for _, s := range p.Scenarios {
		if s.OnEnter != "" {
			prog, err := script.Compile(s.OnEnter)
			if err != nil {
				return nil, fmt.Errorf("scenario %q on_enter: %w", s.ID, err)
			}
			out[EventKey(s.ID, "", OnEnter, "")] = prog
		}
		for _, o := range s.Objects {
			for i := range o.Events {
				e := &o.Events[i]
				prog, err := script.Compile(e.Script)
				if err != nil {
					return nil, fmt.Errorf("object %q %s event: %w", o.ID, e.Trigger, err)
				}
				out[EventKey(s.ID, o.ID, e.Trigger, e.UseItem)] = prog
			}
		}
	}
	return out, nil
}

// EventKey builds the lookup key used by CompileEvents.
func EventKey(scenarioID, objectID string, t TriggerType, useItem string) string {
	k := scenarioID + "/" + objectID + "/" + string(t)
	if useItem != "" {
		k += "/" + useItem
	}
	return k
}
