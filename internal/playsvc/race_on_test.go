//go:build race

package playsvc

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
