// Package netstream delivers game packages over HTTP — the paper's
// web-based deployment ("students can easily access these resources via
// network", §2) and the substitution for its "web page" resources.
//
// Since PR 4 the delivery path is content-addressed: the Server resolves
// a package name to its chunk manifest and serves every payload byte out
// of a blobstore.Store (deduplicated across courses, hot chunks in a
// lock-striped LRU tier) instead of holding whole blobs resident. Three
// routes expose the store:
//
//   - /pkg/<name>       — the classic byte-identical package (ranges,
//     ETag/304), assembled on the fly from chunks.
//   - /manifest/<name>  — the chunk manifest (ordered hashes + sizes).
//   - /chunk/<hex>      — one immutable chunk by content address.
//
// The Client offers three strategies, compared by experiments E8/E13:
//
//   - Download: fetch the whole package, then play (the 2007 default).
//   - ProgressiveOpen: manifest (or ranged) fetches of the metadata and
//     only the start segment's chunks — play begins after a small,
//     size-independent prefix.
//   - DownloadDelta: manifest diff against the local chunk cache; on a
//     course update only the chunks whose hashes changed cross the wire,
//     each verified against its address on receipt.
package netstream

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blobstore"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/vcodec"
	"repro/internal/obs"
)

// extent is one run of package bytes: either framing bytes kept inline
// (section headers, CRCs, the small manifest section) or a reference into
// the chunk store.
type extent struct {
	off    int64
	size   int
	hash   blobstore.Hash
	inline []byte // nil → chunk
}

// pkgEntry is one published package: its manifest, its byte layout and
// its validator. The payload bytes live in the chunk store; what remains
// resident per package is a few hundred bytes of framing.
type pkgEntry struct {
	manifest []byte // encoded manifest, served at /manifest/<name>
	extents  []extent
	size     int64
	etag     string
}

// Server publishes game packages under /pkg/<name> with range support, a
// package listing under /list, chunk-level access under /manifest/<name>
// and /chunk/<hash>, and popup web resources under /res/<name>.
// Additional subsystems (the telemetry service, health checks) mount their
// handlers with Mount. All methods are safe for concurrent use; a classroom
// fleet hammers one Server from hundreds of goroutines.
type Server struct {
	mu        sync.RWMutex
	packages  map[string]*pkgEntry
	resources map[string]string
	mounts    map[string]http.Handler // path (or prefix ending in "/") → handler
	started   time.Time
	store     *blobstore.Store
	// chunkRefs counts extent references per chunk across all published
	// packages, so replacing a package can release the chunks only its
	// old version used instead of leaking a generation per course update.
	chunkRefs map[blobstore.Hash]int
	// chunkTier attributes each published video chunk to its quality
	// tier label (TierLabel form), so the /chunk/ route can account
	// bytes served per tier; tierBytes holds the counters, registered
	// lazily on reg as tiers appear.
	chunkTier map[blobstore.Hash]string
	tierBytes map[string]*atomic.Int64
	reg       *obs.Registry

	// Delivery counters for the built-in routes (mounted subsystems keep
	// their own). All monotonic.
	requests    atomic.Int64
	bytesServed atomic.Int64
	notModified atomic.Int64 // conditional GETs answered 304
}

// NewServer creates an empty server with a private in-memory chunk store.
func NewServer() *Server {
	store, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
	if err != nil {
		panic(err) // unreachable: default options are valid
	}
	return NewServerWith(store)
}

// NewServerWith creates a server over a caller-owned chunk store — the
// production shape, where the netstream server and the play service share
// one store (and one on-disk backend) so common segments are paid for
// once across the whole process.
func NewServerWith(store *blobstore.Store) *Server {
	return &Server{
		packages:  map[string]*pkgEntry{},
		resources: map[string]string{},
		mounts:    map[string]http.Handler{},
		started:   time.Now(),
		store:     store,
		chunkRefs: map[blobstore.Hash]int{},
		chunkTier: map[blobstore.Hash]string{},
		tierBytes: map[string]*atomic.Int64{},
	}
}

// Store exposes the server's chunk store (shared with sibling services).
func (s *Server) Store() *blobstore.Store { return s.store }

// StoreStats snapshots the chunk store's counters.
func (s *Server) StoreStats() blobstore.Stats { return s.store.Stats() }

// AddPackage publishes a package blob under a name. The blob is split
// into content-addressed chunks (deduplicated against everything already
// published); the blob itself is not retained. Re-adding a name replaces
// the package — delta-syncing clients then transfer only changed chunks,
// and chunks referenced only by the replaced version are removed from
// the store (an in-flight transfer of the old version may then fail; its
// client re-syncs and gets the new one).
func (s *Server) AddPackage(name string, blob []byte) error {
	return s.publishBlob(name, blob, true)
}

// AddManifest publishes a package whose chunks are already in the store
// (e.g. deposited by content.PublishTo) — no package blob ever exists on
// the publish path except transiently for validation, and no chunk is
// re-deposited (so store dedup counters reflect real sharing).
func (s *Server) AddManifest(name string, man *gamepack.Manifest) error {
	blob, err := man.Assemble(s.store.Get)
	if err != nil {
		return fmt.Errorf("netstream: %w", err)
	}
	return s.publishBlob(name, blob, false)
}

// publishBlob validates a package, then — atomically with respect to
// other publishes — ingests its chunks and swaps it in. Ingest and
// registration share the critical section so a concurrent replace of
// another package cannot release a shared chunk between this package's
// deposit and its refcount registration.
func (s *Server) publishBlob(name string, blob []byte, deposit bool) error {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("netstream: bad package name %q", name)
	}
	if _, err := gamepack.Open(blob); err != nil {
		return fmt.Errorf("netstream: refusing to serve invalid package: %w", err)
	}
	man, err := gamepack.ManifestOf(blob)
	if err != nil {
		return fmt.Errorf("netstream: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, err := s.ingest(man, blob, deposit)
	if err != nil {
		return err
	}
	old := s.packages[name]
	s.packages[name] = ent
	for _, ext := range ent.extents {
		if ext.inline == nil {
			s.chunkRefs[ext.hash]++
		}
	}
	// Attribute video chunks to their tier for per-tier bytes-served
	// accounting. Sections run extras-first, canonical last, so a chunk
	// byte-identical across rungs lands on the canonical label — the
	// same preference a deduplicating client cache exhibits.
	for _, sc := range man.Sections {
		tier, ok := gamepack.VideoSectionTier(sc.Name)
		if !ok {
			continue
		}
		label := TierLabel(tier)
		s.tierCounterLocked(label) // surface the series even before traffic
		for _, c := range sc.Chunks {
			s.chunkTier[c.Hash] = label
		}
	}
	if old != nil {
		for _, ext := range old.extents {
			if ext.inline != nil {
				continue
			}
			if s.chunkRefs[ext.hash]--; s.chunkRefs[ext.hash] <= 0 {
				delete(s.chunkRefs, ext.hash)
				delete(s.chunkTier, ext.hash)
				s.store.Remove(ext.hash)
			}
		}
	}
	return nil
}

// tierCounter is tierCounterLocked behind the server lock.
func (s *Server) tierCounter(label string) *atomic.Int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tierCounterLocked(label)
}

// tierCounterLocked finds or creates the bytes-served counter for a tier
// label, registering it on the metrics registry when one is attached.
// s.mu must be held.
func (s *Server) tierCounterLocked(label string) *atomic.Int64 {
	c := s.tierBytes[label]
	if c == nil {
		c = &atomic.Int64{}
		s.tierBytes[label] = c
		if s.reg != nil {
			s.reg.CounterFunc("netstream_tier_bytes_total",
				"video chunk bytes served per quality tier", c.Load,
				obs.Label{Key: "tier", Value: label})
		}
	}
	return c
}

// ingest verifies that the manifest tiles the blob and builds the serving
// extents; with deposit set it also stores every chunk. s.mu must be
// held. A rejection rolls back the chunks this call newly deposited (a
// failed publish must not grow the store), sparing any that a published
// package also references.
func (s *Server) ingest(man *gamepack.Manifest, blob []byte, deposit bool) (*pkgEntry, error) {
	secs, err := gamepack.Sections(blob)
	if err != nil {
		return nil, fmt.Errorf("netstream: %w", err)
	}
	ent := &pkgEntry{size: int64(len(blob))}
	sum := sha256.Sum256(blob)
	ent.etag = fmt.Sprintf(`"%x"`, sum[:16])
	pos := 0
	var added []blobstore.Hash // chunks this call deposited that were new
	fail := func(err error) (*pkgEntry, error) {
		for _, h := range added {
			if s.chunkRefs[h] == 0 {
				s.store.Remove(h)
			}
		}
		return nil, err
	}
	addInline := func(data []byte) {
		ent.extents = append(ent.extents, extent{
			off: int64(pos), size: len(data), inline: append([]byte(nil), data...),
		})
		pos += len(data)
	}
	for _, sc := range man.Sections {
		loc, ok := secs[sc.Name]
		if !ok {
			return fail(fmt.Errorf("netstream: manifest names missing section %q", sc.Name))
		}
		if loc[0] < pos {
			return fail(fmt.Errorf("netstream: manifest section %q out of order", sc.Name))
		}
		addInline(blob[pos:loc[0]]) // framing before the payload
		if sc.Name == gamepack.SectionManifest && len(sc.Chunks) == 0 {
			ent.manifest = append([]byte(nil), blob[loc[0]:loc[0]+loc[1]]...)
			addInline(ent.manifest)
			continue
		}
		if sc.PayloadSize() != loc[1] {
			return fail(fmt.Errorf("netstream: manifest section %q sums to %d bytes, payload is %d",
				sc.Name, sc.PayloadSize(), loc[1]))
		}
		for _, c := range sc.Chunks {
			data := blob[pos : pos+c.Size]
			if blobstore.Sum(data) != c.Hash {
				return fail(fmt.Errorf("netstream: manifest chunk hash mismatch in section %q", sc.Name))
			}
			if deposit {
				if _, isNew, err := s.store.Put(data); err != nil {
					return fail(fmt.Errorf("netstream: %w", err))
				} else if isNew {
					added = append(added, c.Hash)
				}
			} else if !s.store.Has(c.Hash) {
				// Assemble just read this chunk; it can only vanish if a
				// concurrent replace released it — the caller retries.
				return fail(fmt.Errorf("netstream: chunk %s vanished from the store", c.Hash))
			}
			ent.extents = append(ent.extents, extent{off: int64(pos), size: c.Size, hash: c.Hash})
			pos += c.Size
		}
	}
	if pos != len(blob) {
		addInline(blob[pos:]) // unreachable for valid packages; keep bytes exact
	}
	if ent.manifest == nil {
		// Legacy package without an embedded manifest: serve the computed
		// one at /manifest/<name> so delta clients still work.
		ent.manifest = man.Encode()
	}
	return ent, nil
}

// Mount attaches a handler at a path. A pattern ending in "/" matches the
// whole subtree ("/telemetry/" serves /telemetry/ingest and
// /telemetry/stats); otherwise the match is exact ("/healthz"). Mounts take
// precedence over the built-in routes, so a pattern that would capture any
// /pkg/, /manifest/, /chunk/, /res/ or /list request is rejected.
func (s *Server) Mount(pattern string, h http.Handler) error {
	if pattern == "" || pattern[0] != '/' {
		return fmt.Errorf("netstream: mount pattern %q must start with /", pattern)
	}
	subtree := strings.HasSuffix(pattern, "/")
	for _, reserved := range []string{"/pkg/", "/manifest/", "/chunk/", "/res/", "/list"} {
		shadows := pattern == reserved ||
			// A mount inside a reserved subtree captures those requests
			// ("/pkg/x" or "/pkg/x/" shadow package fetches)...
			(strings.HasSuffix(reserved, "/") && strings.HasPrefix(pattern, reserved)) ||
			// ...and a subtree mount above a reserved route captures it
			// ("/" shadows everything). "/listing" shadows nothing.
			(subtree && strings.HasPrefix(reserved, pattern))
		if shadows {
			return fmt.Errorf("netstream: pattern %q shadows built-in route %q", pattern, reserved)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mounts[pattern] = h
	return nil
}

// mountFor resolves a mounted handler for a request path, preferring the
// longest pattern.
func (s *Server) mountFor(path string) http.Handler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best string
	var h http.Handler
	for pat, handler := range s.mounts {
		ok := pat == path || (strings.HasSuffix(pat, "/") && strings.HasPrefix(path, pat))
		if ok && len(pat) > len(best) {
			best, h = pat, handler
		}
	}
	return h
}

// AddResource publishes a text resource (the target of scripts' `open`).
func (s *Server) AddResource(name, content string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resources[name] = content
}

// Names lists published packages, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.packages))
	for n := range s.packages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Server) pkg(name string) *pkgEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.packages[name]
}

// countingWriter tallies the bytes and 304s of one built-in-route
// response into the server's delivery counters.
type countingWriter struct {
	http.ResponseWriter
	srv *Server
}

func (cw *countingWriter) WriteHeader(code int) {
	if code == http.StatusNotModified {
		cw.srv.notModified.Add(1)
	}
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	cw.srv.bytesServed.Add(int64(n))
	return n, err
}

// Register exposes the server's delivery counters on a metrics registry.
// requests/bytes/not_modified count only the built-in routes — mounted
// subsystems (telemetry, the play service) register their own families.
func (s *Server) Register(reg *obs.Registry) {
	reg.CounterFunc("netstream_requests_total", "requests served by the delivery routes", s.requests.Load)
	reg.CounterFunc("netstream_bytes_total", "response bytes written by the delivery routes", s.bytesServed.Load)
	reg.CounterFunc("netstream_not_modified_total", "conditional GETs answered 304", s.notModified.Load)
	s.mu.Lock()
	s.reg = reg
	for label, c := range s.tierBytes {
		reg.CounterFunc("netstream_tier_bytes_total",
			"video chunk bytes served per quality tier", c.Load,
			obs.Label{Key: "tier", Value: label})
	}
	s.mu.Unlock()
	reg.GaugeFunc("netstream_packages", "packages currently published", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return int64(len(s.packages))
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.mountFor(r.URL.Path); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	s.requests.Add(1)
	w = &countingWriter{ResponseWriter: w, srv: s}
	switch {
	case r.URL.Path == "/list":
		for _, n := range s.Names() {
			fmt.Fprintln(w, n)
		}
	case strings.HasPrefix(r.URL.Path, "/pkg/"):
		name := strings.TrimPrefix(r.URL.Path, "/pkg/")
		ent := s.pkg(name)
		if ent == nil {
			http.NotFound(w, r)
			return
		}
		// With the ETag header set, ServeContent answers If-None-Match with
		// 304 (and still implements Range/If-Modified-Since for us) — repeat
		// fleet fetches of an unchanged package cost a handshake, not
		// megabytes. The reader assembles the requested ranges from the
		// chunk store on the fly; popular chunks ride the hot tier.
		w.Header().Set("ETag", ent.etag)
		http.ServeContent(w, r, name+".tkg", s.started, &extentReader{ent: ent, store: s.store})
	case strings.HasPrefix(r.URL.Path, "/manifest/"):
		name := strings.TrimPrefix(r.URL.Path, "/manifest/")
		ent := s.pkg(name)
		if ent == nil {
			http.NotFound(w, r)
			return
		}
		// The manifest shares the package's validator: a 304 here means
		// "your whole cached package is current" — the delta client's
		// cheapest round trip.
		w.Header().Set("ETag", ent.etag)
		http.ServeContent(w, r, name+".tkmf", s.started, bytes.NewReader(ent.manifest))
	case strings.HasPrefix(r.URL.Path, "/chunk/"):
		h, err := blobstore.ParseHash(strings.TrimPrefix(r.URL.Path, "/chunk/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		data, err := s.store.Get(h)
		if errors.Is(err, blobstore.ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Chunks are immutable by construction: their name is their hash.
		w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
		w.Header().Set("Content-Type", "application/octet-stream")
		s.mu.RLock()
		label, tiered := s.chunkTier[h]
		s.mu.RUnlock()
		if tiered {
			// Attribute the payload (what the client's per-tier ledger
			// counts) rather than wire bytes, so the two reconcile.
			s.tierCounter(label).Add(int64(len(data)))
		}
		w.Write(data)
	case strings.HasPrefix(r.URL.Path, "/res/"):
		name := strings.TrimPrefix(r.URL.Path, "/res/")
		s.mu.RLock()
		content, ok := s.resources[name]
		s.mu.RUnlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, content)
	default:
		http.NotFound(w, r)
	}
}

// extentReader adapts a package's extent table to io.ReadSeeker for
// http.ServeContent, resolving chunk extents through the store. Each
// reader is request-scoped; the store it reads from is shared.
type extentReader struct {
	ent   *pkgEntry
	store *blobstore.Store
	pos   int64
}

func (r *extentReader) Read(p []byte) (int, error) {
	if r.pos >= r.ent.size {
		return 0, io.EOF
	}
	// Find the extent containing pos (extents are sorted and tile the blob).
	exts := r.ent.extents
	i := sort.Search(len(exts), func(i int) bool {
		return exts[i].off+int64(exts[i].size) > r.pos
	})
	if i == len(exts) {
		return 0, io.EOF
	}
	ext := &exts[i]
	src := ext.inline
	if src == nil {
		data, err := r.store.Get(ext.hash)
		if err != nil {
			return 0, fmt.Errorf("netstream: resolving extent at %d: %w", ext.off, err)
		}
		src = data
	}
	n := copy(p, src[r.pos-ext.off:])
	r.pos += int64(n)
	return n, nil
}

func (r *extentReader) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.pos
	case io.SeekEnd:
		base = r.ent.size
	default:
		return 0, errors.New("netstream: bad whence")
	}
	if base+offset < 0 {
		return 0, errors.New("netstream: negative seek")
	}
	r.pos = base + offset
	return r.pos, nil
}

// Stats counts what a client transfer cost.
type Stats struct {
	Requests      int
	BytesFetched  int
	NotModified   int // conditional GETs answered 304
	ChunksFetched int // chunks transferred over the wire
	ChunkHits     int // chunks served from the local chunk cache
	Elapsed       time.Duration
}

// Add accumulates another transfer's stats (fleet-level totals).
func (st *Stats) Add(o Stats) {
	st.Requests += o.Requests
	st.BytesFetched += o.BytesFetched
	st.NotModified += o.NotModified
	st.ChunksFetched += o.ChunksFetched
	st.ChunkHits += o.ChunkHits
	st.Elapsed += o.Elapsed
}

// ClientMetrics holds the optional delta-sync instruments a Client
// observes into: how many bytes each sync transferred and how long it
// took. A Client with nil Metrics records nothing.
type ClientMetrics struct {
	DeltaBytes   *obs.Histogram // bytes fetched per DownloadDelta call
	DeltaSeconds *obs.Histogram // wall time per DownloadDelta call
}

// NewClientMetrics builds the delta-sync histograms.
func NewClientMetrics() *ClientMetrics {
	return &ClientMetrics{
		DeltaBytes:   obs.NewHistogram(obs.SizeBounds),
		DeltaSeconds: obs.NewHistogram(obs.LatencyBounds),
	}
}

// Register attaches the histograms to a metrics registry.
func (m *ClientMetrics) Register(reg *obs.Registry) {
	reg.RegisterHistogram("netstream_delta_bytes", "bytes transferred per delta sync", "bytes", m.DeltaBytes)
	reg.RegisterHistogram("netstream_delta_seconds", "wall time per delta sync", "seconds", m.DeltaSeconds)
}

// Client fetches packages from a Server (or anything speaking HTTP ranges).
type Client struct {
	HTTP *http.Client // defaults to faultnet.DefaultHTTPClient
	// Metrics, when set, receives delta-sync observations (see
	// ClientMetrics). Shared safely by concurrent transfers.
	Metrics *ClientMetrics
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return faultnet.DefaultHTTPClient()
}

// doRetry issues one idempotent request (all Client requests are GETs or
// HEADs), retrying transport failures and retryable statuses (429/5xx,
// honoring a server Retry-After) with jittered backoff. On success the
// returned response's body is open and the caller owns it; terminal
// statuses (200/206/304/404…) pass through for normal handling.
func (c *Client) doRetry(method, url string, header http.Header) (*http.Response, error) {
	httpc := c.httpClient()
	// The wall-clock budget rides out brief correlated outages (a network
	// partition) that an attempt-counted budget cannot.
	policy := faultnet.RetryPolicy{Budget: 2 * time.Second}
	var resp *http.Response
	err := policy.Do(func(int) (error, bool) {
		req, err := http.NewRequest(method, url, nil)
		if err != nil {
			return err, false
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		r, err := httpc.Do(req)
		if err != nil {
			return err, true
		}
		if faultnet.RetryableStatus(r.StatusCode) {
			after, hasAfter := faultnet.RetryAfterDelay(r.Header)
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			err := fmt.Errorf("netstream: %s %s: %s", method, url, r.Status)
			if hasAfter {
				return &faultnet.Delayed{After: after, Err: err}, true
			}
			return err, true
		}
		resp = r
		return nil, false
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Download fetches a whole package.
func (c *Client) Download(url string) ([]byte, Stats, error) {
	var st Stats
	began := time.Now()
	resp, err := c.doRetry(http.MethodGet, url, nil)
	if err != nil {
		return nil, st, err
	}
	defer resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusOK {
		return nil, st, fmt.Errorf("netstream: GET %s: %s", url, resp.Status)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, st, err
	}
	st.BytesFetched = len(blob)
	st.Elapsed = time.Since(began)
	return blob, st, nil
}

// DefaultCacheBudget bounds a PackageCache's assembled-package tier.
const DefaultCacheBudget = 256 << 20

// PackageCache is the client-side cache of the delivery layer: assembled
// packages by URL (with the validator the server sent, so repeat fetches
// can be conditional) over a shared content-addressed chunk cache. Both
// tiers are byte-budgeted with LRU eviction — a fleet that walks a large
// catalog no longer grows without bound. It is safe for concurrent use by
// a whole learner fleet.
type PackageCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*list.Element // url -> element holding *pkgCacheEntry
	lru     *list.List               // front = most recently used
	evicted int64

	chunks *blobstore.Store // cache-only store; shared across URLs
}

type pkgCacheEntry struct {
	url  string
	etag string
	blob []byte
}

// NewPackageCache creates a cache with default budgets.
func NewPackageCache() *PackageCache {
	return NewPackageCacheBudget(DefaultCacheBudget, blobstore.DefaultCacheBytes)
}

// NewPackageCacheBudget creates a cache with explicit byte budgets for
// the assembled-package tier and the chunk tier (non-positive budgets
// fall back to the defaults).
func NewPackageCacheBudget(pkgBytes, chunkBytes int64) *PackageCache {
	if pkgBytes <= 0 {
		pkgBytes = DefaultCacheBudget
	}
	if chunkBytes <= 0 {
		chunkBytes = blobstore.DefaultCacheBytes
	}
	return &PackageCache{
		budget:  pkgBytes,
		entries: map[string]*list.Element{},
		lru:     list.New(),
		chunks:  blobstore.NewCache(chunkBytes),
	}
}

// Chunks exposes the shared chunk cache (the delta-sync working set).
func (pc *PackageCache) Chunks() *blobstore.Store { return pc.chunks }

// Len reports cached package entries.
func (pc *PackageCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

// Bytes reports bytes held by the assembled-package tier.
func (pc *PackageCache) Bytes() int64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.used
}

// Evicted reports packages dropped by the byte-budget LRU policy.
func (pc *PackageCache) Evicted() int64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.evicted
}

// Forget drops a URL's assembled package (its chunks stay cached).
func (pc *PackageCache) Forget(url string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[url]; ok {
		pc.drop(el)
	}
}

// drop removes an element from both the list and the map; pc.mu held.
func (pc *PackageCache) drop(el *list.Element) {
	e := el.Value.(*pkgCacheEntry)
	pc.lru.Remove(el)
	delete(pc.entries, e.url)
	pc.used -= int64(len(e.blob))
}

func (pc *PackageCache) get(url string) (*pkgCacheEntry, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[url]
	if !ok {
		return nil, false
	}
	pc.lru.MoveToFront(el)
	return el.Value.(*pkgCacheEntry), true
}

func (pc *PackageCache) put(url, etag string, blob []byte) {
	if etag == "" {
		return // nothing to validate against later
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if old, ok := pc.entries[url]; ok {
		pc.drop(old)
	}
	el := pc.lru.PushFront(&pkgCacheEntry{url: url, etag: etag, blob: blob})
	pc.entries[url] = el
	pc.used += int64(len(blob))
	// Evict past the budget, sparing the entry just inserted.
	for pc.used > pc.budget {
		back := pc.lru.Back()
		if back == nil || back == el {
			break
		}
		pc.drop(back)
		pc.evicted++
	}
}

// DownloadCached fetches a package through a shared cache. When the cache
// holds a copy, the request carries If-None-Match and a 304 answer reuses
// the cached bytes — the Stats then count one request, zero bytes fetched
// and one NotModified. The returned blob must be treated as read-only (it
// is shared across callers).
func (c *Client) DownloadCached(url string, cache *PackageCache) ([]byte, Stats, error) {
	var st Stats
	began := time.Now()
	var header http.Header
	cached, have := cache.get(url)
	if have {
		header = http.Header{"If-None-Match": {cached.etag}}
	}
	resp, err := c.doRetry(http.MethodGet, url, header)
	if err != nil {
		return nil, st, err
	}
	defer resp.Body.Close()
	st.Requests++
	switch {
	case have && resp.StatusCode == http.StatusNotModified:
		st.NotModified++
		st.Elapsed = time.Since(began)
		return cached.blob, st, nil
	case resp.StatusCode == http.StatusOK:
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, st, err
		}
		st.BytesFetched = len(blob)
		st.Elapsed = time.Since(began)
		cache.put(url, resp.Header.Get("ETag"), blob)
		return blob, st, nil
	default:
		return nil, st, fmt.Errorf("netstream: GET %s: %s", url, resp.Status)
	}
}

// splitPkgURL resolves a /pkg/ URL into its server base and package name.
func splitPkgURL(url string) (base, name string, ok bool) {
	i := strings.LastIndex(url, "/pkg/")
	if i < 0 {
		return "", "", false
	}
	return url[:i], url[i+len("/pkg/"):], true
}

// fetchChunk transfers one chunk and verifies it against its address; a
// chunk whose bytes do not hash to their name is rejected, so a corrupted
// or hostile server cannot feed bytes into the decoder.
func (c *Client) fetchChunk(base string, ref gamepack.ChunkRef, st *Stats) ([]byte, error) {
	url := base + "/chunk/" + ref.Hash.String()
	resp, err := c.doRetry(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("netstream: GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	st.BytesFetched += len(data)
	if len(data) != ref.Size {
		return nil, fmt.Errorf("netstream: chunk %s is %d bytes, manifest says %d", ref.Hash, len(data), ref.Size)
	}
	if blobstore.Sum(data) != ref.Hash {
		return nil, fmt.Errorf("netstream: chunk %s failed hash verification", ref.Hash)
	}
	st.ChunksFetched++
	return data, nil
}

// getChunk serves a chunk from the cache or the wire (populating the
// cache), counting hits and transfers.
func (c *Client) getChunk(base string, ref gamepack.ChunkRef, cache *PackageCache, st *Stats) ([]byte, error) {
	if cache != nil {
		if data, err := cache.chunks.Get(ref.Hash); err == nil {
			st.ChunkHits++
			return data, nil
		}
	}
	data, err := c.fetchChunk(base, ref, st)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		cache.chunks.Put(data)
	}
	return data, nil
}

// fetchManifest GETs and parses a package's manifest, with the cached
// validator attached when the cache already holds the URL. A nil manifest
// with ok=true means 304 — the cached package is current.
func (c *Client) fetchManifest(url, etag string, st *Stats) (man *gamepack.Manifest, respETag string, notModified bool, err error) {
	var header http.Header
	if etag != "" {
		header = http.Header{"If-None-Match": {etag}}
	}
	resp, err := c.doRetry(http.MethodGet, url, header)
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	st.Requests++
	switch {
	case etag != "" && resp.StatusCode == http.StatusNotModified:
		st.NotModified++
		return nil, etag, true, nil
	case resp.StatusCode == http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", false, err
		}
		st.BytesFetched += len(data)
		man, err := gamepack.ParseManifest(data)
		if err != nil {
			return nil, "", false, err
		}
		return man, resp.Header.Get("ETag"), false, nil
	default:
		return nil, "", false, fmt.Errorf("netstream: GET %s: %s", url, resp.Status)
	}
}

// DownloadDelta fetches a package by manifest diff: only chunks absent
// from the cache's chunk tier cross the wire (each hash-verified on
// receipt), and the package is reassembled locally — on a course update
// that edited one segment, the transfer is that segment plus the
// manifest. Falls back to DownloadCached against servers that predate
// chunk-level delivery, and degrades to the same whole-package path when
// chunk fetches keep failing (a lossy link must slow a sync down, not
// kill it). The returned blob must be treated as read-only.
func (c *Client) DownloadDelta(url string, cache *PackageCache) (blob []byte, st Stats, err error) {
	if c.Metrics != nil {
		defer func(t0 time.Time) {
			c.Metrics.DeltaSeconds.ObserveSince(t0)
			c.Metrics.DeltaBytes.Observe(int64(st.BytesFetched))
		}(time.Now())
	}
	base, name, ok := splitPkgURL(url)
	if !ok {
		return c.DownloadCached(url, cache)
	}
	began := time.Now()
	var etag string
	if cached, have := cache.get(url); have {
		etag = cached.etag
	}
	man, respETag, notModified, err := c.fetchManifest(base+"/manifest/"+name, etag, &st)
	if err != nil {
		// A plain package server (404 on /manifest/) still speaks the
		// legacy protocol; the conditional whole-package path handles it.
		blob, lst, lerr := c.DownloadCached(url, cache)
		lst.Requests += st.Requests
		lst.BytesFetched += st.BytesFetched
		return blob, lst, lerr
	}
	if notModified {
		cached, _ := cache.get(url)
		if cached != nil {
			st.Elapsed = time.Since(began)
			return cached.blob, st, nil
		}
		// Entry evicted between the conditional request and now; refetch.
		man, respETag, _, err = c.fetchManifest(base+"/manifest/"+name, "", &st)
		if err != nil {
			return nil, st, err
		}
	}
	blob, err = c.materialize(base, man, cache, &st)
	if err != nil {
		// Chunk fetches kept failing even after their own retries (a lossy
		// or partitioned link, a mid-update server). Degrade to the
		// whole-package path — one request, one retry budget — instead of
		// failing the sync outright.
		blob, lst, lerr := c.DownloadCached(url, cache)
		lst.Requests += st.Requests
		lst.BytesFetched += st.BytesFetched
		lst.ChunksFetched += st.ChunksFetched
		lst.ChunkHits += st.ChunkHits
		return blob, lst, lerr
	}
	// End-to-end integrity: the reassembled blob must match the server's
	// whole-package validator (same construction as Server.AddPackage).
	if respETag != "" {
		sum := sha256.Sum256(blob)
		if want := fmt.Sprintf(`"%x"`, sum[:16]); respETag != want {
			return nil, st, fmt.Errorf("netstream: reassembled package does not match server validator")
		}
	}
	cache.put(url, respETag, blob)
	st.Elapsed = time.Since(began)
	return blob, st, nil
}

// chunkFetchParallelism bounds concurrent chunk GETs during a sync, so a
// many-chunk cold fetch costs a few round-trip waves instead of one
// serial round trip per 64 KiB.
const chunkFetchParallelism = 8

// materialize assembles a manifest's package, fetching missing chunks.
func (c *Client) materialize(base string, man *gamepack.Manifest, cache *PackageCache, st *Stats) ([]byte, error) {
	// Resolve locally-cached chunks first, into an overlay: the cache
	// tier may evict under pressure, but assembly must see every chunk
	// exactly once.
	overlay := map[blobstore.Hash][]byte{}
	var missing []gamepack.ChunkRef
	for _, sc := range man.Sections {
		for _, ref := range sc.Chunks {
			if _, ok := overlay[ref.Hash]; ok {
				continue
			}
			overlay[ref.Hash] = nil
			if cache != nil {
				if data, err := cache.chunks.Get(ref.Hash); err == nil {
					st.ChunkHits++
					overlay[ref.Hash] = data
					continue
				}
			}
			missing = append(missing, ref)
		}
	}
	// Fan the delta out over a bounded worker pool (per-goroutine Stats,
	// merged after the wait, keep the counters race-free).
	fetched := make([][]byte, len(missing))
	stats := make([]Stats, len(missing))
	errs := make([]error, len(missing))
	sem := make(chan struct{}, chunkFetchParallelism)
	var wg sync.WaitGroup
	for i := range missing {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fetched[i], errs[i] = c.fetchChunk(base, missing[i], &stats[i])
		}(i)
	}
	wg.Wait()
	for i := range missing {
		st.Add(stats[i])
		if errs[i] != nil {
			return nil, errs[i]
		}
		overlay[missing[i].Hash] = fetched[i]
		if cache != nil {
			cache.chunks.Put(fetched[i])
		}
	}
	return man.Assemble(func(h blobstore.Hash) ([]byte, error) {
		if data, ok := overlay[h]; ok && data != nil {
			return data, nil
		}
		return nil, blobstore.ErrNotFound
	})
}

// fetchRange GETs bytes [from, to) of url.
func (c *Client) fetchRange(url string, from, to int, st *Stats) ([]byte, error) {
	header := http.Header{"Range": {fmt.Sprintf("bytes=%d-%d", from, to-1)}}
	resp, err := c.doRetry(http.MethodGet, url, header)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusPartialContent && resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("netstream: range GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK && len(data) > to-from {
		// Server ignored the range; slice what we asked for.
		data = data[from:to]
	}
	st.BytesFetched += len(data)
	return data, nil
}

// contentLength HEADs the url.
func (c *Client) contentLength(url string, st *Stats) (int, error) {
	resp, err := c.doRetry(http.MethodHead, url, nil)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("netstream: HEAD %s: %s", url, resp.Status)
	}
	if resp.ContentLength < 0 {
		return 0, errors.New("netstream: server did not report a length")
	}
	return int(resp.ContentLength), nil
}

// RemoteGame is a progressively loaded game: full project document, video
// head, and packet data for the segments fetched so far. Against a
// chunk-serving server the packet data arrives as content-addressed
// chunks (hash-verified, shared through the PackageCache across every
// learner on the machine); against a legacy server it arrives as byte
// ranges.
type RemoteGame struct {
	Project *core.Project
	head    *container.Head

	client   *Client
	url      string
	videoOff int // absolute offset of the video section within the package

	// Chunked mode (nil rungs → legacy ranged mode). rungs maps each
	// quality tier to its fetch plan; "" is the canonical full-quality
	// rung, always present. abr, when enabled, picks the tier per
	// segment fetch (see abr.go).
	base  string
	rungs map[string]*tierRung
	abr   *ABRPicker
	cache *PackageCache

	mu        sync.Mutex
	chunks    map[int][]byte   // first-packet index → raw packet bytes
	starts    []int            // sorted chunk keys
	ends      map[int]int      // chunk start → one-past-last packet index
	tierOf    map[int]string   // chunk start → tier that produced it
	tierBytes map[string]int64 // wire bytes fetched per tier (video chunks)
}

// ProgressiveOpen fetches just enough of the package to start playing its
// start scenario: manifest (or section table) → project → video head →
// start-segment chunks. The returned Stats are the startup cost E8
// reports.
func (c *Client) ProgressiveOpen(url string) (*RemoteGame, Stats, error) {
	return c.ProgressiveOpenCached(url, nil)
}

// ProgressiveOpenCached is ProgressiveOpen through a shared cache: chunks
// already fetched by any learner on this cache (or by a previous
// DownloadDelta) are reused instead of refetched, so the second learner's
// startup often transfers nothing but the manifest.
func (c *Client) ProgressiveOpenCached(url string, cache *PackageCache) (*RemoteGame, Stats, error) {
	var st Stats
	began := time.Now()
	if base, name, ok := splitPkgURL(url); ok {
		man, _, _, err := c.fetchManifest(base+"/manifest/"+name, "", &st)
		if err == nil {
			g, err := c.openChunked(url, base, man, cache, &st, false)
			if err != nil {
				return nil, st, err
			}
			st.Elapsed = time.Since(began)
			return g, st, nil
		}
	}
	g, err := c.openRanged(url, &st)
	if err != nil {
		return nil, st, err
	}
	st.Elapsed = time.Since(began)
	return g, st, nil
}

// openChunked plans the progressive startup from the manifest alone: the
// section layout is computable without touching the server, the project
// arrives as its chunks, and the video head is parsed from the leading
// video chunks (cut exactly at the head/data boundary). Every video
// rung in the manifest becomes a fetchable tier; with lowStart set the
// start segment comes from the smallest rung (the ABR open path).
func (c *Client) openChunked(url, base string, man *gamepack.Manifest, cache *PackageCache, st *Stats, lowStart bool) (*RemoteGame, error) {
	vsec := man.Section(gamepack.SectionVideo)
	psec := man.Section(gamepack.SectionProject)
	if vsec == nil || psec == nil || len(vsec.Chunks) == 0 {
		return nil, errors.New("netstream: manifest lacks project or video section")
	}
	projJSON, err := psec.AssembleSection(func(h blobstore.Hash) ([]byte, error) {
		i := chunkIndex(psec.Chunks, h)
		return c.getChunk(base, psec.Chunks[i], cache, st)
	})
	if err != nil {
		return nil, err
	}
	proj, err := core.UnmarshalProject(projJSON)
	if err != nil {
		return nil, err
	}
	var videoOff int
	locs, _ := man.Layout()
	for _, loc := range locs {
		if loc.Name == gamepack.SectionVideo {
			videoOff = loc.Off
		}
	}
	g := &RemoteGame{
		Project:   proj,
		client:    c,
		url:       url,
		videoOff:  videoOff,
		base:      base,
		rungs:     map[string]*tierRung{},
		cache:     cache,
		chunks:    map[int][]byte{},
		ends:      map[int]int{},
		tierOf:    map[int]string{},
		tierBytes: map[string]int64{},
	}
	for _, tier := range man.VideoTiers() {
		sc := man.VideoSection(tier)
		g.rungs[tier] = &tierRung{
			chunks: sc.Chunks,
			offs:   chunkOffsets(sc.Chunks),
			size:   sc.PayloadSize(),
		}
	}
	// Canonical video head: grown chunk by chunk until it parses (one
	// chunk in the common case). Other rungs' heads are grown lazily on
	// first fetch from that tier.
	if g.head, err = g.rungHead("", g.rungs[""], st); err != nil {
		return nil, err
	}
	start := proj.ScenarioByID(proj.StartScenario)
	if start == nil {
		return nil, fmt.Errorf("netstream: start scenario %q missing", proj.StartScenario)
	}
	startTier := ""
	if lowStart {
		for tier, rung := range g.rungs {
			if rung.size < g.rungs[startTier].size {
				startTier = tier
			}
		}
	}
	return g, g.ensureSegmentTier(start.Segment, startTier, st)
}

// openRanged is the pre-chunk-store progressive path (legacy servers).
func (c *Client) openRanged(url string, st *Stats) (*RemoteGame, error) {
	total, err := c.contentLength(url, st)
	if err != nil {
		return nil, err
	}
	// 1. Section table (grow the prefix until it parses).
	prefixLen := 4096
	var secs map[string][2]int
	for {
		if prefixLen > total {
			prefixLen = total
		}
		prefix, err := c.fetchRange(url, 0, prefixLen, st)
		if err != nil {
			return nil, err
		}
		secs, err = gamepack.SectionsWithin(prefix, total)
		if err == nil {
			break
		}
		if !errors.Is(err, gamepack.ErrShortPrefix) || prefixLen == total {
			return nil, err
		}
		prefixLen *= 4
	}
	projLoc, ok := secs[gamepack.SectionProject]
	if !ok {
		return nil, errors.New("netstream: package has no project section")
	}
	videoLoc, ok := secs[gamepack.SectionVideo]
	if !ok {
		return nil, errors.New("netstream: package has no video section")
	}
	// 2. Project document.
	projJSON, err := c.fetchRange(url, projLoc[0], projLoc[0]+projLoc[1], st)
	if err != nil {
		return nil, err
	}
	proj, err := core.UnmarshalProject(projJSON)
	if err != nil {
		return nil, err
	}
	// 3. Video head (grow until the index parses).
	headLen := 16384
	var head *container.Head
	for {
		if headLen > videoLoc[1] {
			headLen = videoLoc[1]
		}
		hb, err := c.fetchRange(url, videoLoc[0], videoLoc[0]+headLen, st)
		if err != nil {
			return nil, err
		}
		head, err = container.ParseHead(hb)
		if err == nil {
			break
		}
		if !errors.Is(err, container.ErrTruncated) || headLen == videoLoc[1] {
			return nil, err
		}
		headLen *= 4
	}
	g := &RemoteGame{
		Project:   proj,
		head:      head,
		client:    c,
		url:       url,
		videoOff:  videoLoc[0],
		chunks:    map[int][]byte{},
		ends:      map[int]int{},
		tierOf:    map[int]string{},
		tierBytes: map[string]int64{},
	}
	// 4. The start scenario's segment packets.
	start := proj.ScenarioByID(proj.StartScenario)
	if start == nil {
		return nil, fmt.Errorf("netstream: start scenario %q missing", proj.StartScenario)
	}
	return g, g.ensureSegment(start.Segment, st)
}

// chunkOffsets returns each chunk's start offset within its payload.
func chunkOffsets(chunks []gamepack.ChunkRef) []int {
	offs := make([]int, len(chunks))
	pos := 0
	for i, c := range chunks {
		offs[i] = pos
		pos += c.Size
	}
	return offs
}

// chunkIndex locates a hash in a chunk list (small lists; linear is fine).
func chunkIndex(chunks []gamepack.ChunkRef, h blobstore.Hash) int {
	for i := range chunks {
		if chunks[i].Hash == h {
			return i
		}
	}
	return 0
}

// ensureSegment fetches the byte range covering a segment (from its
// preceding keyframe) if not already present. With an ABR picker
// enabled the fetch rides the picker's current tier; otherwise it pulls
// the canonical full-quality rung.
func (g *RemoteGame) ensureSegment(name string, st *Stats) error {
	tier := ""
	if g.abr != nil {
		tier = g.abr.CurrentTier()
	}
	return g.ensureSegmentTier(name, tier, st)
}

// FetchSegment pulls an additional segment (e.g. ahead of a goto) and
// reports its transfer cost.
func (g *RemoteGame) FetchSegment(name string) (Stats, error) {
	var st Stats
	began := time.Now()
	err := g.ensureSegment(name, &st)
	st.Elapsed = time.Since(began)
	return st, err
}

// HasSegment reports whether a segment's packets are locally available.
func (g *RemoteGame) HasSegment(name string) bool {
	ch, ok := g.head.ChapterByName(name)
	if !ok {
		return false
	}
	k, err := g.head.KeyframeAtOrBefore(ch.Start)
	if err != nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	_, have := g.chunks[k]
	return have && g.ends[k] >= ch.End
}

// Chapters exposes the video's segment table.
func (g *RemoteGame) Chapters() []container.Chapter { return g.head.Chapters() }

// Meta exposes the video metadata.
func (g *RemoteGame) Meta() container.Meta { return g.head.Meta() }

// FrameAt decodes frame i, which must lie inside a fetched segment. Each
// call decodes from the chunk's keyframe — callers wanting sequential decode
// should use a SegmentCursor. The packet index comes from the head of
// whichever quality tier the chunk landed at.
func (g *RemoteGame) FrameAt(i int) (*raster.Frame, error) {
	k, chunk, tier, err := g.chunkFor(i)
	if err != nil {
		return nil, err
	}
	head := g.headOf(tier)
	dec := vcodec.NewDecoder(1)
	var out *raster.Frame
	for j := k; j <= i; j++ {
		pkt, err := head.PacketFromChunk(chunk, k, j)
		if err != nil {
			return nil, err
		}
		if j < i {
			// Roll-forward frames are never presented; skip their RGB
			// conversion.
			err = dec.Advance(pkt)
		} else {
			out, err = dec.Decode(pkt)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// chunkFor locates the fetched chunk containing frame i and the tier it
// landed at.
func (g *RemoteGame) chunkFor(i int) (int, []byte, string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	idx := sort.SearchInts(g.starts, i+1) - 1
	if idx < 0 {
		return 0, nil, "", fmt.Errorf("netstream: frame %d not fetched", i)
	}
	k := g.starts[idx]
	if i >= g.ends[k] {
		return 0, nil, "", fmt.Errorf("netstream: frame %d not fetched", i)
	}
	return k, g.chunks[k], g.tierOf[k], nil
}

// FetchResource GETs a popup web resource (scripts' `open` verb).
func (c *Client) FetchResource(url string) (string, Stats, error) {
	var st Stats
	began := time.Now()
	resp, err := c.doRetry(http.MethodGet, url, nil)
	if err != nil {
		return "", st, err
	}
	defer resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusOK {
		return "", st, fmt.Errorf("netstream: GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", st, err
	}
	st.BytesFetched = len(body)
	st.Elapsed = time.Since(began)
	return string(body), st, nil
}
