// Package studio is the platform's "camera and capture card": it renders a
// synthetic film through the TKV1 encoder into a seekable TKVC container.
//
// The paper's course designers "select video files from network or video
// cameras" (§4.1); Record is the moment footage enters the system.
package studio

import (
	"fmt"

	"repro/internal/media/container"
	"repro/internal/media/synth"
	"repro/internal/media/vcodec"
)

// Options configures a recording session.
type Options struct {
	QStep       int  // quantizer step (default 4)
	GOP         int  // I-frame interval (default fps, i.e. one per second)
	SearchRange int  // motion search radius (default 3)
	Workers     int  // encoder workers (default: all CPUs)
	ShotMarkers bool // add one chapter per ground-truth shot
	// Chapters, when non-nil, is written instead of shot markers — the
	// authoring tool uses it to store scenario segments under its own names.
	Chapters []container.Chapter
}

func (o Options) withDefaults(fps int) Options {
	if o.QStep == 0 {
		o.QStep = 4
	}
	if o.GOP == 0 {
		o.GOP = fps
	}
	if o.SearchRange == 0 {
		o.SearchRange = 3
	}
	// Workers <= 0 passes through: the encoder defaults to all CPUs.
	return o
}

// Record renders every frame of the film, encodes it and returns a
// finalized TKVC blob. With opts.ShotMarkers it adds one chapter per
// ground-truth shot, named "shot-NNN-<scene>".
func Record(film *synth.Film, opts Options) ([]byte, error) {
	opts = opts.withDefaults(film.FPS)
	enc, err := vcodec.NewEncoder(vcodec.Config{
		Width: film.W, Height: film.H,
		QStep: opts.QStep, GOP: opts.GOP,
		SearchRange: opts.SearchRange, Workers: opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("studio: %w", err)
	}
	defer enc.Close()
	mux, err := container.NewMuxer(container.Meta{
		Width: film.W, Height: film.H, FPS: film.FPS, GOP: opts.GOP,
	})
	if err != nil {
		return nil, fmt.Errorf("studio: %w", err)
	}
	for i := 0; i < film.FrameCount(); i++ {
		pkt, err := enc.Encode(film.Render(i))
		if err != nil {
			return nil, fmt.Errorf("studio: frame %d: %w", i, err)
		}
		if err := mux.AddPacket(pkt); err != nil {
			return nil, fmt.Errorf("studio: frame %d: %w", i, err)
		}
	}
	for _, ch := range opts.Chapters {
		if err := mux.AddChapter(ch); err != nil {
			return nil, fmt.Errorf("studio: %w", err)
		}
	}
	if opts.ShotMarkers && opts.Chapters == nil {
		for k := range film.Shots {
			start := film.ShotStart(k)
			end := start + film.Shots[k].Frames
			name := fmt.Sprintf("shot-%03d-%s", k, film.Shots[k].Scene)
			if err := mux.AddChapter(container.Chapter{Name: name, Start: start, End: end}); err != nil {
				return nil, fmt.Errorf("studio: %w", err)
			}
		}
	}
	blob, err := mux.Finalize()
	if err != nil {
		return nil, fmt.Errorf("studio: %w", err)
	}
	return blob, nil
}
