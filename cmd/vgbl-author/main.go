// Command vgbl-author is the IVGBL authoring tool's command-line front end
// (paper §4.1–4.2). It can rebuild the bundled demo courses through the
// tool's operation API, resume a saved project, validate it, export a
// playable .tkg package, and print the editor interface (Figure 1) as ASCII.
//
// Usage:
//
//	vgbl-author -demo classroom -out classroom.tkg [-snapshot]
//	vgbl-author -project p.json -video v.tkvc -out game.tkg
//	vgbl-author -project p.json -video v.tkvc -validate
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/author"
	"repro/internal/content"
	"repro/internal/experiments"
	"repro/internal/media/studio"
)

func main() {
	demo := flag.String("demo", "", "build a demo course through the tool: classroom, museum or street")
	projectPath := flag.String("project", "", "load a saved project JSON")
	videoPath := flag.String("video", "", "load a TKVC video blob")
	out := flag.String("out", "", "write the exported .tkg package here")
	saveProject := flag.String("save-project", "", "write the project JSON here")
	validate := flag.Bool("validate", false, "validate the project and print problems")
	snapshot := flag.Bool("snapshot", false, "print the editor interface as ASCII (Figure 1)")
	flag.Parse()

	tool, err := loadTool(*demo, *projectPath, *videoPath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("project %q: %d scenarios, %d segments, %d authoring ops\n",
		tool.Project().Title, len(tool.Project().Scenarios), len(tool.Chapters()), tool.Ops())

	if *validate {
		probs := tool.Validate()
		if len(probs) == 0 {
			fmt.Println("validation: clean")
		}
		for _, p := range probs {
			fmt.Println("  ", p)
		}
	}
	if *snapshot {
		ed := author.NewEditorWindow(tool)
		if len(tool.Project().Scenarios) > 0 {
			ed.SelectScenario(tool.Project().Scenarios[0].ID)
		}
		fmt.Println(ed.Snapshot(132, 44))
	}
	if *saveProject != "" {
		data, err := tool.SaveProject()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*saveProject, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Println("project saved to", *saveProject)
	}
	if *out != "" {
		pkg, err := tool.ExportPackage()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, pkg, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("package exported to %s (%d bytes)\n", *out, len(pkg))
	}
}

func loadTool(demo, projectPath, videoPath string) (*author.Tool, error) {
	switch {
	case demo == "classroom":
		tool, _, err := experiments.BuildClassroomWithTool()
		return tool, err
	case demo == "museum" || demo == "street":
		course := content.Museum()
		if demo == "street" {
			course = content.StreetDemo()
		}
		video, err := course.RecordVideo(studio.Options{QStep: 8})
		if err != nil {
			return nil, err
		}
		projJSON, err := course.Project.Marshal()
		if err != nil {
			return nil, err
		}
		return author.Load(projJSON, video)
	case demo != "":
		return nil, fmt.Errorf("unknown demo %q (want classroom, museum or street)", demo)
	default:
		var projJSON, video []byte
		var err error
		if projectPath != "" {
			if projJSON, err = os.ReadFile(projectPath); err != nil {
				return nil, err
			}
		}
		if videoPath != "" {
			if video, err = os.ReadFile(videoPath); err != nil {
				return nil, err
			}
		}
		if projJSON == nil && video == nil {
			return nil, fmt.Errorf("nothing to do: pass -demo or -project/-video (see -h)")
		}
		return author.Load(projJSON, video)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vgbl-author:", err)
	os.Exit(1)
}
