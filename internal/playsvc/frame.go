// Binary wire framing for the act path — the compact alternative to the
// JSON debug surface.
//
// A frame is the same tagged-record shape as the snapshot envelope: magic,
// uvarint version, (uvarint tag, uvarint length, payload)* records, and a
// CRC32-IEEE trailer. Request frames ("VACT") carry a whole act batch —
// the session id rides in the FIRST record so a gateway can route the
// frame without parsing (or re-encoding) the rest; reply frames ("VRPL")
// carry per-act results plus ONE coalesced state/event/message tail, so a
// pipelined batch of N acts costs one state snapshot instead of N.
//
// Every parse rejection wraps ErrBadFrame, and all lengths are validated
// against the remaining input before any allocation — the same hostile-
// input bar FuzzRestoreSession pins for snapshots, here pinned by
// FuzzParseActFrame.
package playsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/runtime"
)

// FrameContentType is the Content-Type of binary play frames.
const FrameContentType = "application/x-vgbl-frame"

// ErrBadFrame is wrapped by every frame parse rejection, so callers (and
// the fuzzer) can separate hostile input from I/O failures.
var ErrBadFrame = errors.New("playsvc: bad frame")

const (
	actMagic   = "VACT"
	replyMagic = "VRPL"

	frameVersion = 1

	// maxFrameActs bounds one batch: enough to drain any client pipeline,
	// small enough that one request cannot monopolize a session lock.
	maxFrameActs = 256
	// maxFrameField bounds a single tagged record.
	maxFrameField = 1 << 20
)

// Act-frame record tags.
const (
	atagSession      = 1 // string; MUST be the first record (gateway routing)
	atagBaseSeq      = 2 // uvarint
	atagSeenEvents   = 3 // uvarint
	atagSeenMessages = 4 // uvarint
	atagAct          = 5 // repeated, one per act, batch order
)

// Reply-frame record tags.
const (
	rtagSession      = 1  // string
	rtagTick         = 2  // uvarint
	rtagEventCount   = 3  // uvarint
	rtagMessageCount = 4  // uvarint
	rtagQuiz         = 5  // string (absent = no pending quiz)
	rtagFlags        = 6  // uvarint bitmap
	rtagState        = 7  // encoded core.State
	rtagEvent        = 8  // repeated: tick uvarint, kind str, detail str
	rtagMessage      = 9  // repeated string
	rtagResult       = 10 // repeated, one result byte per applied act
	rtagError        = 11 // status uvarint, retryAfter uvarint, msg str
)

// Reply flag bits (rtagFlags).
const rflagResumed = 1

// Per-act result bits (rtagResult payload, and the envelope's dedup state).
const (
	resHasCorrect = 1 << 0
	resCorrect    = 1 << 1
	resHasTook    = 1 << 2
	resTook       = 1 << 3
)

// wireKind maps an act kind to its wire enum (0 = unknown). ActLeave has
// no wire form on purpose: a leave ends the session and must stay a
// single JSON act so its confirmation semantics are never batched.
func wireKind(kind string) uint64 {
	switch kind {
	case ActClick:
		return 1
	case ActExamine:
		return 2
	case ActTalk:
		return 3
	case ActTake:
		return 4
	case ActUse:
		return 5
	case ActSelect:
		return 6
	case ActClear:
		return 7
	case ActQuiz:
		return 8
	case ActGoto:
		return 9
	case ActTick:
		return 10
	}
	return 0
}

func kindOfWire(k uint64) string {
	switch k {
	case 1:
		return ActClick
	case 2:
		return ActExamine
	case 3:
		return ActTalk
	case 4:
		return ActTake
	case 5:
		return ActUse
	case 6:
		return ActSelect
	case 7:
		return ActClear
	case 8:
		return ActQuiz
	case 9:
		return ActGoto
	case 10:
		return ActTick
	}
	return ""
}

func frameBadf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadFrame, fmt.Sprintf(format, args...))
}

// --- encoding helpers --------------------------------------------------------

func frameAppend(b []byte, tag uint64, payload []byte) []byte {
	b = binary.AppendUvarint(b, tag)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// --- decoding helpers --------------------------------------------------------

// frameReader consumes one record payload (or a whole frame body).
type frameReader struct{ b []byte }

func (r *frameReader) empty() bool { return len(r.b) == 0 }

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, frameBadf("malformed varint")
	}
	r.b = r.b[n:]
	return v, nil
}

// count reads a non-negative int bounded by both limit and the bytes that
// remain (each counted element needs at least one byte), so a hostile
// count cannot drive a large allocation.
func (r *frameReader) count(limit int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) || v > uint64(len(r.b)) {
		return 0, frameBadf("count %d exceeds bounds", v)
	}
	return int(v), nil
}

func (r *frameReader) zigzag() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	dec := int64(v>>1) ^ -int64(v&1)
	if dec > math.MaxInt32 || dec < math.MinInt32 {
		return 0, frameBadf("integer %d out of range", dec)
	}
	return int(dec), nil
}

func (r *frameReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)) {
		return "", frameBadf("string claims %d bytes, %d remain", n, len(r.b))
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *frameReader) bool() (bool, error) {
	if len(r.b) == 0 {
		return false, frameBadf("truncated bool")
	}
	v := r.b[0] != 0
	r.b = r.b[1:]
	return v, nil
}

func (r *frameReader) intBounded() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, frameBadf("value %d out of range", v)
	}
	return int(v), nil
}

// frameBody validates magic, version and CRC and returns the record
// region, shared by both frame parsers.
func frameBody(data []byte, magic string) ([]byte, error) {
	if len(data) < len(magic)+1+4 {
		return nil, frameBadf("truncated (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, frameBadf("bad magic")
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, frameBadf("checksum mismatch")
	}
	rest := body[len(magic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, frameBadf("malformed version")
	}
	if version == 0 || version > frameVersion {
		return nil, frameBadf("unsupported version %d", version)
	}
	return rest[n:], nil
}

// nextRecord pops one (tag, payload) record off rest.
func nextRecord(rest []byte) (tag uint64, payload, tail []byte, err error) {
	tag, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, nil, frameBadf("malformed record tag")
	}
	rest = rest[n:]
	size, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, nil, frameBadf("malformed record length")
	}
	rest = rest[n:]
	if size > maxFrameField || size > uint64(len(rest)) {
		return 0, nil, nil, frameBadf("record %d claims %d bytes, %d remain", tag, size, len(rest))
	}
	return tag, rest[:size], rest[size:], nil
}

// --- act frames --------------------------------------------------------------

// EncodeActFrame encodes a batch request as a binary act frame. Only the
// act fields the wire carries (kind, object, item, x, y, quiz, choice,
// ticks) survive; session/seq/seen ride the frame header.
func EncodeActFrame(req *BatchRequest) []byte {
	b := make([]byte, 0, 64+32*len(req.Acts))
	b = append(b, actMagic...)
	b = binary.AppendUvarint(b, frameVersion)
	// The session record leads so a gateway can route on a prefix parse.
	b = frameAppend(b, atagSession, []byte(req.Session))
	b = frameAppend(b, atagBaseSeq, binary.AppendUvarint(nil, uint64(req.BaseSeq)))
	b = frameAppend(b, atagSeenEvents, binary.AppendUvarint(nil, uint64(req.SeenEvents)))
	b = frameAppend(b, atagSeenMessages, binary.AppendUvarint(nil, uint64(req.SeenMessages)))
	var scratch []byte
	for i := range req.Acts {
		a := &req.Acts[i]
		scratch = scratch[:0]
		scratch = binary.AppendUvarint(scratch, wireKind(a.Kind))
		scratch = appendStr(scratch, a.Object)
		scratch = appendStr(scratch, a.Item)
		scratch = appendZigzag(scratch, int64(a.X))
		scratch = appendZigzag(scratch, int64(a.Y))
		scratch = appendStr(scratch, a.Quiz)
		scratch = appendZigzag(scratch, int64(a.Choice))
		scratch = binary.AppendUvarint(scratch, uint64(max(a.Ticks, 0)))
		b = frameAppend(b, atagAct, scratch)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// ParseActFrame parses a binary act frame into a batch request. Every
// rejection wraps ErrBadFrame; hostile lengths and counts are bounded
// before allocation.
func ParseActFrame(data []byte) (*BatchRequest, error) {
	rest, err := frameBody(data, actMagic)
	if err != nil {
		return nil, err
	}
	req := &BatchRequest{}
	first, hasSession := true, false
	for len(rest) > 0 {
		var tag uint64
		var payload []byte
		tag, payload, rest, err = nextRecord(rest)
		if err != nil {
			return nil, err
		}
		if first && tag != atagSession {
			return nil, frameBadf("first record must be the session id")
		}
		first = false
		r := frameReader{payload}
		switch tag {
		case atagSession:
			if hasSession {
				return nil, frameBadf("duplicate session record")
			}
			req.Session, hasSession = string(payload), true
		case atagBaseSeq:
			v, err := r.uvarint()
			if err != nil || v > math.MaxInt64 {
				return nil, frameBadf("malformed base seq")
			}
			req.BaseSeq = int64(v)
		case atagSeenEvents:
			if req.SeenEvents, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed seen-events")
			}
		case atagSeenMessages:
			if req.SeenMessages, err = r.intBounded(); err != nil {
				return nil, frameBadf("malformed seen-messages")
			}
		case atagAct:
			if len(req.Acts) >= maxFrameActs {
				return nil, frameBadf("more than %d acts in one frame", maxFrameActs)
			}
			var a ActRequest
			k, err := r.uvarint()
			if err != nil {
				return nil, frameBadf("act: malformed kind")
			}
			if a.Kind = kindOfWire(k); a.Kind == "" {
				return nil, frameBadf("act: unknown kind %d", k)
			}
			if a.Object, err = r.str(); err != nil {
				return nil, frameBadf("act: %v", err)
			}
			if a.Item, err = r.str(); err != nil {
				return nil, frameBadf("act: %v", err)
			}
			if a.X, err = r.zigzag(); err != nil {
				return nil, frameBadf("act: %v", err)
			}
			if a.Y, err = r.zigzag(); err != nil {
				return nil, frameBadf("act: %v", err)
			}
			if a.Quiz, err = r.str(); err != nil {
				return nil, frameBadf("act: %v", err)
			}
			if a.Choice, err = r.zigzag(); err != nil {
				return nil, frameBadf("act: %v", err)
			}
			if a.Ticks, err = r.intBounded(); err != nil {
				return nil, frameBadf("act: %v", err)
			}
			req.Acts = append(req.Acts, a)
		default:
			// Additive extension from a newer writer; skip.
		}
	}
	if !hasSession || req.Session == "" {
		return nil, frameBadf("missing session id")
	}
	if len(req.Acts) == 0 {
		return nil, frameBadf("empty act batch")
	}
	return req, nil
}

// frameSessionID extracts the routing key from an act frame WITHOUT
// validating the CRC or parsing the acts — the gateway's prefix parse.
// The session id is required to be the first record, so this touches a
// handful of header bytes no matter how large the batch is.
func frameSessionID(data []byte) (string, error) {
	if len(data) < len(actMagic)+1 || string(data[:len(actMagic)]) != actMagic {
		return "", frameBadf("bad magic")
	}
	rest := data[len(actMagic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 || version == 0 || version > frameVersion {
		return "", frameBadf("unsupported version")
	}
	tag, payload, _, err := nextRecord(rest[n:])
	if err != nil {
		return "", err
	}
	if tag != atagSession || len(payload) == 0 {
		return "", frameBadf("first record must be the session id")
	}
	return string(payload), nil
}

// --- reply frames ------------------------------------------------------------

// EncodeReplyFrame encodes a batch reply (per-act results + one coalesced
// tail) as a binary reply frame.
func EncodeReplyFrame(out *BatchReply) []byte {
	r := out.Reply
	b := make([]byte, 0, 256)
	b = append(b, replyMagic...)
	b = binary.AppendUvarint(b, frameVersion)
	b = frameAppend(b, rtagSession, []byte(r.Session))
	b = frameAppend(b, rtagTick, binary.AppendUvarint(nil, uint64(r.Tick)))
	b = frameAppend(b, rtagEventCount, binary.AppendUvarint(nil, uint64(r.EventCount)))
	b = frameAppend(b, rtagMessageCount, binary.AppendUvarint(nil, uint64(r.MessageCount)))
	if r.Quiz != "" {
		b = frameAppend(b, rtagQuiz, []byte(r.Quiz))
	}
	if r.Resumed {
		b = frameAppend(b, rtagFlags, binary.AppendUvarint(nil, rflagResumed))
	}
	if r.State != nil {
		b = frameAppend(b, rtagState, appendState(nil, r.State))
	}
	var scratch []byte
	for i := range r.Events {
		e := &r.Events[i]
		scratch = scratch[:0]
		scratch = binary.AppendUvarint(scratch, uint64(max(e.Tick, 0)))
		scratch = appendStr(scratch, e.Kind)
		scratch = appendStr(scratch, e.Detail)
		b = frameAppend(b, rtagEvent, scratch)
	}
	for _, m := range r.Messages {
		b = frameAppend(b, rtagMessage, []byte(m))
	}
	for _, res := range out.Results {
		b = frameAppend(b, rtagResult, []byte{res.bits()})
	}
	if out.ActErr != nil {
		scratch = binary.AppendUvarint(nil, uint64(out.ActErr.Status))
		scratch = binary.AppendUvarint(scratch, uint64(max(out.ActErr.RetryAfter, 0)))
		scratch = appendStr(scratch, out.ActErr.Msg)
		b = frameAppend(b, rtagError, scratch)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// ParseReplyFrame parses a binary reply frame. Every rejection wraps
// ErrBadFrame.
func ParseReplyFrame(data []byte) (*BatchReply, error) {
	rest, err := frameBody(data, replyMagic)
	if err != nil {
		return nil, err
	}
	out := &BatchReply{Reply: &Reply{}}
	r := out.Reply
	var hasSession bool
	for len(rest) > 0 {
		var tag uint64
		var payload []byte
		tag, payload, rest, err = nextRecord(rest)
		if err != nil {
			return nil, err
		}
		fr := frameReader{payload}
		switch tag {
		case rtagSession:
			r.Session, hasSession = string(payload), true
		case rtagTick:
			if r.Tick, err = fr.intBounded(); err != nil {
				return nil, frameBadf("malformed tick")
			}
		case rtagEventCount:
			if r.EventCount, err = fr.intBounded(); err != nil {
				return nil, frameBadf("malformed event count")
			}
		case rtagMessageCount:
			if r.MessageCount, err = fr.intBounded(); err != nil {
				return nil, frameBadf("malformed message count")
			}
		case rtagQuiz:
			r.Quiz = string(payload)
		case rtagFlags:
			v, err := fr.uvarint()
			if err != nil {
				return nil, frameBadf("malformed flags")
			}
			r.Resumed = v&rflagResumed != 0
		case rtagState:
			if r.State, err = decodeState(payload); err != nil {
				return nil, err
			}
		case rtagEvent:
			var e runtime.Event
			if e.Tick, err = fr.intBounded(); err != nil {
				return nil, frameBadf("event: %v", err)
			}
			if e.Kind, err = fr.str(); err != nil {
				return nil, frameBadf("event: %v", err)
			}
			if e.Detail, err = fr.str(); err != nil {
				return nil, frameBadf("event: %v", err)
			}
			r.Events = append(r.Events, e)
		case rtagMessage:
			r.Messages = append(r.Messages, string(payload))
		case rtagResult:
			if len(payload) != 1 {
				return nil, frameBadf("result record is %d bytes", len(payload))
			}
			if len(out.Results) >= maxFrameActs {
				return nil, frameBadf("more than %d results in one frame", maxFrameActs)
			}
			out.Results = append(out.Results, resultFromBits(payload[0]))
		case rtagError:
			e := &Error{}
			status, err := fr.uvarint()
			if err != nil || status < 100 || status > 999 {
				return nil, frameBadf("malformed error status")
			}
			e.Status = int(status)
			after, err := fr.uvarint()
			if err != nil || after > math.MaxInt32 {
				return nil, frameBadf("malformed error retry-after")
			}
			e.RetryAfter = int(after)
			if e.Msg, err = fr.str(); err != nil {
				return nil, frameBadf("malformed error message")
			}
			out.ActErr = e
		default:
			// Additive extension from a newer writer; skip.
		}
	}
	if !hasSession || r.Session == "" {
		return nil, frameBadf("missing session id")
	}
	return out, nil
}

// --- state codec -------------------------------------------------------------

// sortedKeys returns map keys in sorted order so encoded frames are
// deterministic (handy for tests and content-addressed storage).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func appendBoolMap(b []byte, m map[string]bool) []byte {
	b = binary.AppendUvarint(b, uint64(len(m)))
	for _, k := range sortedKeys(m) {
		b = appendStr(b, k)
		b = appendBool(b, m[k])
	}
	return b
}

func appendStrs(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendStr(b, s)
	}
	return b
}

// appendState encodes a game state for the reply frame — the hand-rolled
// replacement for the reflection-driven JSON marshal on the act hot path.
func appendState(b []byte, s *core.State) []byte {
	b = appendStr(b, s.Scenario)
	b = appendStrs(b, s.Inventory)
	b = appendBoolMap(b, s.Flags)
	b = binary.AppendUvarint(b, uint64(len(s.Vars)))
	for _, k := range sortedKeys(s.Vars) {
		b = appendStr(b, k)
		b = appendZigzag(b, int64(s.Vars[k]))
	}
	b = binary.AppendUvarint(b, uint64(len(s.Visited)))
	for _, k := range sortedKeys(s.Visited) {
		b = appendStr(b, k)
		b = binary.AppendUvarint(b, uint64(max(s.Visited[k], 0)))
	}
	b = appendBoolMap(b, s.Learned)
	b = appendStrs(b, s.Rewards)
	b = appendBoolMap(b, s.Hidden)
	b = appendBool(b, s.Ended)
	b = appendStr(b, s.Outcome)
	return b
}

func (r *frameReader) boolMap() (map[string]bool, error) {
	n, err := r.count(maxFrameField)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.bool()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (r *frameReader) strs() ([]string, error) {
	n, err := r.count(maxFrameField)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func decodeState(payload []byte) (*core.State, error) {
	r := frameReader{payload}
	s := &core.State{}
	var err error
	fail := func(what string, err error) (*core.State, error) {
		return nil, frameBadf("state %s: %v", what, err)
	}
	if s.Scenario, err = r.str(); err != nil {
		return fail("scenario", err)
	}
	if s.Inventory, err = r.strs(); err != nil {
		return fail("inventory", err)
	}
	if s.Flags, err = r.boolMap(); err != nil {
		return fail("flags", err)
	}
	n, err := r.count(maxFrameField)
	if err != nil {
		return fail("vars", err)
	}
	if n > 0 {
		s.Vars = make(map[string]int, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return fail("vars", err)
			}
			v, err := r.zigzag()
			if err != nil {
				return fail("vars", err)
			}
			s.Vars[k] = v
		}
	}
	if n, err = r.count(maxFrameField); err != nil {
		return fail("visited", err)
	}
	if n > 0 {
		s.Visited = make(map[string]int, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return fail("visited", err)
			}
			v, err := r.intBounded()
			if err != nil {
				return fail("visited", err)
			}
			s.Visited[k] = v
		}
	}
	if s.Learned, err = r.boolMap(); err != nil {
		return fail("learned", err)
	}
	if s.Rewards, err = r.strs(); err != nil {
		return fail("rewards", err)
	}
	if s.Hidden, err = r.boolMap(); err != nil {
		return fail("hidden", err)
	}
	if s.Ended, err = r.bool(); err != nil {
		return fail("ended", err)
	}
	if s.Outcome, err = r.str(); err != nil {
		return fail("outcome", err)
	}
	if !r.empty() {
		return nil, frameBadf("state: %d trailing bytes", len(r.b))
	}
	return s, nil
}
