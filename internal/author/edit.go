package author

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/media/raster"
)

// SetTitle sets the project title.
func (t *Tool) SetTitle(title string) error {
	prev := t.project.Title
	return t.do("set title",
		func() error { t.project.Title = title; return nil },
		func() { t.project.Title = prev })
}

// SetAuthor sets the project author.
func (t *Tool) SetAuthor(author string) error {
	prev := t.project.Author
	return t.do("set author",
		func() error { t.project.Author = author; return nil },
		func() { t.project.Author = prev })
}

// SetStartScenario selects where play begins.
func (t *Tool) SetStartScenario(id string) error {
	if t.project.ScenarioByID(id) == nil {
		return fmt.Errorf("author: no scenario %q", id)
	}
	prev := t.project.StartScenario
	return t.do("set start scenario",
		func() error { t.project.StartScenario = id; return nil },
		func() { t.project.StartScenario = prev })
}

// AddScenario creates a scenario bound to a video segment.
func (t *Tool) AddScenario(id, name, segment string) error {
	if id == "" {
		return errors.New("author: scenario needs an id")
	}
	if t.project.ScenarioByID(id) != nil {
		return fmt.Errorf("author: scenario %q already exists", id)
	}
	if t.video != nil && t.findChapter(segment) < 0 {
		return fmt.Errorf("author: no segment %q in the imported video", segment)
	}
	s := &core.Scenario{ID: id, Name: name, Segment: segment}
	return t.do("add scenario",
		func() error { t.project.Scenarios = append(t.project.Scenarios, s); return nil },
		func() { t.project.Scenarios = t.project.Scenarios[:len(t.project.Scenarios)-1] })
}

// RemoveScenario deletes a scenario (objects included).
func (t *Tool) RemoveScenario(id string) error {
	idx := -1
	for i, s := range t.project.Scenarios {
		if s.ID == id {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("author: no scenario %q", id)
	}
	removed := t.project.Scenarios[idx]
	return t.do("remove scenario",
		func() error {
			t.project.Scenarios = append(t.project.Scenarios[:idx], t.project.Scenarios[idx+1:]...)
			return nil
		},
		func() {
			t.project.Scenarios = append(t.project.Scenarios, nil)
			copy(t.project.Scenarios[idx+1:], t.project.Scenarios[idx:])
			t.project.Scenarios[idx] = removed
		})
}

// SetScenarioEnter sets a scenario's on-enter script.
func (t *Tool) SetScenarioEnter(id, script string) error {
	s := t.project.ScenarioByID(id)
	if s == nil {
		return fmt.Errorf("author: no scenario %q", id)
	}
	prev := s.OnEnter
	return t.do("set scenario enter script",
		func() error { s.OnEnter = script; return nil },
		func() { s.OnEnter = prev })
}

// AddObject places an interactive object in a scenario (object editor).
func (t *Tool) AddObject(scenarioID string, obj *core.Object) error {
	s := t.project.ScenarioByID(scenarioID)
	if s == nil {
		return fmt.Errorf("author: no scenario %q", scenarioID)
	}
	if obj.ID == "" {
		return errors.New("author: object needs an id")
	}
	if _, existing := t.project.FindObject(obj.ID); existing != nil {
		return fmt.Errorf("author: object id %q already used", obj.ID)
	}
	return t.do("add object",
		func() error { s.Objects = append(s.Objects, obj); return nil },
		func() { s.Objects = s.Objects[:len(s.Objects)-1] })
}

// RemoveObject deletes an object wherever it lives.
func (t *Tool) RemoveObject(objectID string) error {
	s, _ := t.project.FindObject(objectID)
	if s == nil {
		return fmt.Errorf("author: no object %q", objectID)
	}
	idx := -1
	for i, o := range s.Objects {
		if o.ID == objectID {
			idx = i
		}
	}
	removed := s.Objects[idx]
	return t.do("remove object",
		func() error {
			s.Objects = append(s.Objects[:idx], s.Objects[idx+1:]...)
			return nil
		},
		func() {
			s.Objects = append(s.Objects, nil)
			copy(s.Objects[idx+1:], s.Objects[idx:])
			s.Objects[idx] = removed
		})
}

// MoveObject repositions/resizes an object on the video frame.
func (t *Tool) MoveObject(objectID string, region raster.Rect) error {
	_, o := t.project.FindObject(objectID)
	if o == nil {
		return fmt.Errorf("author: no object %q", objectID)
	}
	if region.W <= 0 || region.H <= 0 {
		return errors.New("author: object region must be non-empty")
	}
	prev := o.Region
	return t.do("move object",
		func() error { o.Region = region; return nil },
		func() { o.Region = prev })
}

// SetObjectProperty edits a named property of an object — the property
// sheet of the object editor. Supported keys: name, description, kind,
// enabled, takeable, sprite-shape, sprite-label.
func (t *Tool) SetObjectProperty(objectID, key, value string) error {
	_, o := t.project.FindObject(objectID)
	if o == nil {
		return fmt.Errorf("author: no object %q", objectID)
	}
	var prev string
	var set func(string)
	switch key {
	case "name":
		prev, set = o.Name, func(v string) { o.Name = v }
	case "description":
		prev, set = o.Description, func(v string) { o.Description = v }
	case "kind":
		k := core.ObjectKind(value)
		if !k.Valid() {
			return fmt.Errorf("author: unknown object kind %q", value)
		}
		prev, set = string(o.Kind), func(v string) { o.Kind = core.ObjectKind(v) }
	case "enabled":
		prev, set = boolStr(o.Enabled), func(v string) { o.Enabled = v == "true" }
	case "takeable":
		prev, set = boolStr(o.Takeable), func(v string) { o.Takeable = v == "true" }
	case "sprite-shape":
		prev, set = o.Sprite.Shape, func(v string) { o.Sprite.Shape = v }
	case "sprite-label":
		prev, set = o.Sprite.Label, func(v string) { o.Sprite.Label = v }
	default:
		return fmt.Errorf("author: unknown property %q", key)
	}
	return t.do("set property "+key,
		func() error { set(value); return nil },
		func() { set(prev) })
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// AddDialogueLine appends a fixed conversation line to an NPC.
func (t *Tool) AddDialogueLine(objectID, line string) error {
	_, o := t.project.FindObject(objectID)
	if o == nil {
		return fmt.Errorf("author: no object %q", objectID)
	}
	return t.do("add dialogue",
		func() error { o.Dialogue = append(o.Dialogue, line); return nil },
		func() { o.Dialogue = o.Dialogue[:len(o.Dialogue)-1] })
}

// AddEvent wires a trigger script onto an object.
func (t *Tool) AddEvent(objectID string, ev core.Event) error {
	_, o := t.project.FindObject(objectID)
	if o == nil {
		return fmt.Errorf("author: no object %q", objectID)
	}
	return t.do("add event",
		func() error { o.Events = append(o.Events, ev); return nil },
		func() { o.Events = o.Events[:len(o.Events)-1] })
}

// RemoveEvent deletes an object's event by index.
func (t *Tool) RemoveEvent(objectID string, index int) error {
	_, o := t.project.FindObject(objectID)
	if o == nil {
		return fmt.Errorf("author: no object %q", objectID)
	}
	if index < 0 || index >= len(o.Events) {
		return fmt.Errorf("author: event index %d out of range", index)
	}
	removed := o.Events[index]
	return t.do("remove event",
		func() error {
			o.Events = append(o.Events[:index], o.Events[index+1:]...)
			return nil
		},
		func() {
			o.Events = append(o.Events, core.Event{})
			copy(o.Events[index+1:], o.Events[index:])
			o.Events[index] = removed
		})
}

// AddItemDef registers an item in the catalog.
func (t *Tool) AddItemDef(item *core.ItemDef) error {
	if item.ID == "" {
		return errors.New("author: item needs an id")
	}
	if t.project.ItemByID(item.ID) != nil {
		return fmt.Errorf("author: item %q already exists", item.ID)
	}
	return t.do("add item",
		func() error { t.project.Items = append(t.project.Items, item); return nil },
		func() { t.project.Items = t.project.Items[:len(t.project.Items)-1] })
}

// AddKnowledgeUnit registers a knowledge unit.
func (t *Tool) AddKnowledgeUnit(k *core.KnowledgeUnit) error {
	if k.ID == "" {
		return errors.New("author: knowledge unit needs an id")
	}
	if t.project.KnowledgeByID(k.ID) != nil {
		return fmt.Errorf("author: knowledge unit %q already exists", k.ID)
	}
	return t.do("add knowledge unit",
		func() error { t.project.Knowledge = append(t.project.Knowledge, k); return nil },
		func() { t.project.Knowledge = t.project.Knowledge[:len(t.project.Knowledge)-1] })
}

// AddQuiz registers an assessment question.
func (t *Tool) AddQuiz(q *core.Quiz) error {
	if q.ID == "" {
		return errors.New("author: quiz needs an id")
	}
	if t.project.QuizByID(q.ID) != nil {
		return fmt.Errorf("author: quiz %q already exists", q.ID)
	}
	return t.do("add quiz",
		func() error { t.project.Quizzes = append(t.project.Quizzes, q); return nil },
		func() { t.project.Quizzes = t.project.Quizzes[:len(t.project.Quizzes)-1] })
}

// AddMission registers a mission.
func (t *Tool) AddMission(m *core.Mission) error {
	if m.ID == "" {
		return errors.New("author: mission needs an id")
	}
	return t.do("add mission",
		func() error { t.project.Missions = append(t.project.Missions, m); return nil },
		func() { t.project.Missions = t.project.Missions[:len(t.project.Missions)-1] })
}

// SetInitialVar seeds an integer variable.
func (t *Tool) SetInitialVar(name string, value int) error {
	if t.project.InitialVars == nil {
		t.project.InitialVars = map[string]int{}
	}
	prev, had := t.project.InitialVars[name]
	return t.do("set initial var",
		func() error { t.project.InitialVars[name] = value; return nil },
		func() {
			if had {
				t.project.InitialVars[name] = prev
			} else {
				delete(t.project.InitialVars, name)
			}
		})
}
