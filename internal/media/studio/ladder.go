// Quality ladder: one film recorded at several rate tiers. Every tier
// shares the frame clock, GOP structure and chapter table — only the
// quantizer step differs — so a ladder-aware client can switch tiers at
// any segment boundary and keep frame-exact playback, and the package
// layer can cut every tier's chunks at the same segment-aligned offsets.
package studio

import (
	"fmt"
	"strings"

	"repro/internal/media/synth"
)

// Tier names one rung of the quality ladder. The empty name is the
// canonical full-quality tier — it becomes the package's plain "video"
// section, which is what ladder-unaware consumers (legacy clients, the
// play service's default open) keep using.
type Tier struct {
	Name  string // "", "med", "low", "min", ... ("" = canonical tier)
	QStep int    // quantizer step for this rung (larger = smaller & worse)
}

// TierVideo is one recorded rung: the tier name and its TKVC blob.
type TierVideo struct {
	Tier  string
	Video []byte
}

// DefaultLadder is the stock 4-rung ladder. The quantizer spacing gives
// roughly a 4–6× byte spread between the top and bottom rungs on the
// synthetic footage corpus, which combined with segment-level switching
// covers the 10× bandwidth spread E19 tests against.
func DefaultLadder() []Tier {
	return []Tier{
		{Name: "", QStep: 4},     // canonical "video" section
		{Name: "med", QStep: 10}, // mid rung
		{Name: "low", QStep: 24}, // constrained links
		{Name: "min", QStep: 64}, // survival rung (mobile-2g class)
	}
}

// validateLadder rejects empty ladders, duplicate tier names and a
// missing canonical ("") tier.
func validateLadder(tiers []Tier) error {
	if len(tiers) == 0 {
		return fmt.Errorf("studio: empty quality ladder")
	}
	seen := map[string]bool{}
	hasCanonical := false
	for _, t := range tiers {
		name := strings.TrimSpace(t.Name)
		if name != t.Name || strings.ContainsAny(name, "/ @") {
			return fmt.Errorf("studio: bad tier name %q", t.Name)
		}
		if seen[name] {
			return fmt.Errorf("studio: duplicate tier %q", name)
		}
		seen[name] = true
		if name == "" {
			hasCanonical = true
		}
	}
	if !hasCanonical {
		return fmt.Errorf("studio: ladder lacks the canonical \"\" tier")
	}
	return nil
}

// RecordLadder records the film once per tier, holding everything but
// the quantizer fixed across rungs (same GOP, same search range, same
// chapters), and returns the rungs in ladder order. opts.QStep is
// ignored; each tier's QStep wins.
func RecordLadder(film *synth.Film, opts Options, tiers []Tier) ([]TierVideo, error) {
	if err := validateLadder(tiers); err != nil {
		return nil, err
	}
	// Pin the defaults once so every rung shares them even when the
	// caller left them zero (GOP in particular must match across tiers
	// for segment-boundary switching to be frame-exact).
	opts = opts.withDefaults(film.FPS)
	out := make([]TierVideo, 0, len(tiers))
	for _, t := range tiers {
		o := opts
		o.QStep = t.QStep
		video, err := Record(film, o)
		if err != nil {
			return nil, fmt.Errorf("studio: tier %q: %w", t.Name, err)
		}
		out = append(out, TierVideo{Tier: t.Name, Video: video})
	}
	return out, nil
}
