// Fleet: the networked classroom at scale. A netstream server publishes
// the classroom course with the telemetry service mounted; fifty simulated
// learners fetch it (one real download, then ETag revalidations), play it
// concurrently, and report their sessions in batches. At the end we print
// the fleet's own summary and the live aggregate a lecturer would read
// from /telemetry/stats.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"time"

	"repro/internal/content"
	"repro/internal/fleet"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	// 1. Publish the classroom course with telemetry mounted.
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		log.Fatal(err)
	}
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		log.Fatal(err)
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 4, QueueDepth: 256})
	defer svc.Close()
	h := svc.Handler()
	if err := srv.Mount("/telemetry/", h); err != nil {
		log.Fatal(err)
	}
	if err := srv.Mount(telemetry.HealthPath, h); err != nil {
		log.Fatal(err)
	}
	// Server- and client-side metrics share one registry: the netstream
	// and telemetry services register their families, and the fleet (via
	// Config.Obs below) adds the learners' delta-sync histograms.
	reg := obs.NewRegistry("vgbl")
	srv.Register(reg)
	svc.Register(reg)
	if err := srv.Mount("/metrics", reg.Handler()); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	url := "http://" + ln.Addr().String()
	fmt.Printf("== classroom course served at %s/pkg/classroom\n", url)

	// 2. Run the 50-learner fleet.
	sum, err := fleet.Run(fleet.Config{
		ServerURL:     url,
		Package:       "classroom",
		Learners:      50,
		Policy:        sim.GuidedFactory,
		Sim:           sim.Config{MaxSteps: 30, TicksPerStep: 2, Patience: 20, RewardBoost: 10, Seed: 42},
		FlushEvery:    16,
		FlushInterval: 50 * time.Millisecond,
		Obs:           reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== fleet summary")
	fmt.Print(sum.String())

	// 3. The lecturer's view: the live course aggregate.
	if !svc.Quiesce(10 * time.Second) {
		log.Fatal("ingest queues did not drain")
	}
	cs := svc.Store().Snapshot()["classroom"]
	fmt.Println("\n== live /telemetry/stats snapshot (course: classroom)")
	fmt.Printf("  sessions: %d started, %d ended, %d completed the mission\n",
		cs.SessionsStarted, cs.SessionsEnded, cs.Completed)
	fmt.Printf("  activity: %d events, %d decisions, %d knowledge deliveries, %d rewards\n",
		cs.Events, cs.Decisions, cs.Knowledge, cs.Rewards)
	fmt.Printf("  outcomes: %v\n", cs.Outcomes)
	var units []string
	for u := range cs.KnowledgeCounts {
		units = append(units, u)
	}
	sort.Strings(units)
	fmt.Println("  knowledge reach (unit → sessions):")
	for _, u := range units {
		fmt.Printf("    %-24s %d\n", u, cs.KnowledgeCounts[u])
	}
	bounds := telemetry.TickBuckets()
	fmt.Println("  session length histogram (ticks):")
	for i, n := range cs.TickHist {
		label := fmt.Sprintf("> %d", bounds[len(bounds)-1])
		if i < len(bounds) {
			label = fmt.Sprintf("<= %d", bounds[i])
		}
		fmt.Printf("    %-8s %d\n", label, n)
	}

	// 4. The operator's view: the same numbers, scraped from /metrics the
	// way a Prometheus deployment would read them (JSON form here).
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		log.Fatal(err)
	}
	var snap obs.RegistrySnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	value := func(name string) int64 {
		if m := snap.Metric(name); m != nil && len(m.Series) > 0 && m.Series[0].Value != nil {
			return *m.Series[0].Value
		}
		return 0
	}
	fmt.Println("\n== /metrics?format=json (server + fleet families)")
	fmt.Printf("  netstream: %d requests, %d bytes served, %d not-modified\n",
		value("vgbl_netstream_requests_total"), value("vgbl_netstream_bytes_total"),
		value("vgbl_netstream_not_modified_total"))
	fmt.Printf("  telemetry: %d batches accepted, %d rejected, %d applied\n",
		value("vgbl_telemetry_batches_accepted_total"), value("vgbl_telemetry_batches_rejected_total"),
		value("vgbl_telemetry_batches_applied_total"))
	if m := snap.Metric("vgbl_netstream_delta_seconds"); m != nil && len(m.Series) > 0 && m.Series[0].Histogram != nil {
		h := *m.Series[0].Histogram
		fmt.Printf("  delta-sync downloads: %d, p50 %v  p99 %v\n", h.Count,
			time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
	}
}
