package experiments

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/author"
	"repro/internal/baseline"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/media/vcodec"
	"repro/internal/netstream"
	"repro/internal/runtime"
	"repro/internal/sim"
)

func newEncoder(w, h, q, workers int) (*vcodec.Encoder, error) {
	return vcodec.NewEncoder(vcodec.Config{
		Width: w, Height: h, QStep: q, GOP: 10, SearchRange: 3, Workers: workers,
	})
}

func newDecoder(workers int) *vcodec.Decoder { return vcodec.NewDecoder(workers) }

// BuildClassroomWithTool reconstructs the classroom course through the
// authoring tool's operation API, so every primitive action is counted.
// It returns the tool (with its op counter) for E4 and the exported package.
func BuildClassroomWithTool() (*author.Tool, []byte, error) {
	ref := content.Classroom()
	tool := author.New(ref.Project.Title)
	// 1. Import and segment footage (chapters kept: the designer accepts
	// the auto-segmentation, then renames).
	video, err := ref.RecordVideo(studio.Options{QStep: 8})
	if err != nil {
		return nil, nil, err
	}
	if err := tool.ImportVideo(video, author.ImportOptions{KeepChapters: true}); err != nil {
		return nil, nil, err
	}
	// 2. Catalogs.
	for _, it := range ref.Project.Items {
		if err := tool.AddItemDef(it); err != nil {
			return nil, nil, err
		}
	}
	for _, k := range ref.Project.Knowledge {
		if err := tool.AddKnowledgeUnit(k); err != nil {
			return nil, nil, err
		}
	}
	for _, m := range ref.Project.Missions {
		if err := tool.AddMission(m); err != nil {
			return nil, nil, err
		}
	}
	for _, q := range ref.Project.Quizzes {
		if err := tool.AddQuiz(q); err != nil {
			return nil, nil, err
		}
	}
	for name, v := range ref.Project.InitialVars {
		if err := tool.SetInitialVar(name, v); err != nil {
			return nil, nil, err
		}
	}
	// 3. Scenarios and objects, one primitive operation each.
	for _, s := range ref.Project.Scenarios {
		if err := tool.AddScenario(s.ID, s.Name, s.Segment); err != nil {
			return nil, nil, err
		}
		if s.OnEnter != "" {
			if err := tool.SetScenarioEnter(s.ID, s.OnEnter); err != nil {
				return nil, nil, err
			}
		}
		for _, o := range s.Objects {
			obj := &core.Object{
				ID: o.ID, Name: o.Name, Kind: o.Kind, Region: o.Region,
				Sprite: o.Sprite, Description: o.Description,
				Enabled: o.Enabled, Takeable: o.Takeable,
			}
			if err := tool.AddObject(s.ID, obj); err != nil {
				return nil, nil, err
			}
			for _, line := range o.Dialogue {
				if err := tool.AddDialogueLine(o.ID, line); err != nil {
					return nil, nil, err
				}
			}
			for _, ev := range o.Events {
				if err := tool.AddEvent(o.ID, ev); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	if err := tool.SetStartScenario(ref.Project.StartScenario); err != nil {
		return nil, nil, err
	}
	pkg, err := tool.ExportPackage()
	if err != nil {
		return nil, nil, err
	}
	return tool, pkg, nil
}

// E4 compares measured authoring-tool operations against the hand-coding
// effort model (claim C1).
func E4() (string, error) {
	tool, _, err := BuildClassroomWithTool()
	if err != nil {
		return "", err
	}
	model := baseline.DefaultEffortModel()
	rep := model.Effort(tool.Project(), tool.Ops())
	var b strings.Builder
	b.WriteString("E4 — authoring effort: tool operations vs hand-coding model (classroom course)\n\n")
	fmt.Fprintf(&b, "  content inventory: %d scenarios, %d objects, %d events, %d dialogue lines, %d catalog entries\n\n",
		rep.Scenarios, rep.Objects, rep.Events, rep.DialogueLines, rep.CatalogEntries)
	fmt.Fprintf(&b, "  tool operations (measured)          : %d ops  -> %d effort units\n", rep.ToolOps, rep.ToolUnits)
	fmt.Fprintf(&b, "  hand-coded build (model)            : %d effort units\n", rep.HandUnits)
	fmt.Fprintf(&b, "    model: pipeline %d + %d/scenario + %d/object + %d/event + %d/dialogue + %d/catalog entry\n",
		model.HandVideoPipeline, model.HandPerScenario, model.HandPerObject,
		model.HandPerEvent, model.HandPerDialogue, model.HandPerCatalogItem)
	fmt.Fprintf(&b, "  effort ratio (hand / tool)          : %.1fx\n", rep.Ratio)
	b.WriteString("\nshape check: the tool is >=5x cheaper; C1 holds under this model.\n")
	return b.String(), nil
}

// E5 prices video vs 3D scenario production (claim C2).
func E5() (string, error) {
	model := baseline.DefaultProductionModel()
	pts := model.Sweep([]int{5, 10, 20, 40})
	var b strings.Builder
	b.WriteString("E5 — scenario production cost: filmed video segments vs 3D scenes\n")
	fmt.Fprintf(&b, "  model (person-hours): video = %.1f fixed + %.2f/scene; 3D = %.1f fixed + %.1f/scene\n\n",
		model.VideoShootFixed, model.VideoShootPerScene+model.VideoSegmentPerScene,
		model.ThreeDToolchainFixed,
		model.ThreeDModelPerScene+model.ThreeDTexturePerScene+model.ThreeDScriptPerScene)
	b.WriteString("  scenes | video hours | 3D hours | 3D/video\n")
	b.WriteString("  -------+-------------+----------+---------\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "  %6d | %11.1f | %8.1f | %7.1fx\n", p.Scenes, p.VideoHours, p.ThreeHours, p.Ratio)
	}
	b.WriteString("\nshape check: video is cheaper everywhere and the gap widens with\n")
	b.WriteString("course size — the paper's 'cheaper way to produce game scenarios'.\n")
	return b.String(), nil
}

// E6 compares knowledge delivery across simulated learner cohorts and the
// linear-video baseline (claim C3).
func E6(cohort int) (string, error) {
	if cohort <= 0 {
		cohort = 30
	}
	var b strings.Builder
	b.WriteString("E6 — knowledge delivery: interactive play vs linear video\n")
	fmt.Fprintf(&b, "cohort: %d simulated learners per policy per course\n\n", cohort)
	b.WriteString("  course    | learner  | decisions | knowledge | completion | quiz accuracy\n")
	b.WriteString("  ----------+----------+-----------+-----------+------------+--------------\n")
	for _, cr := range []struct {
		name   string
		course *content.Course
	}{{"classroom", content.Classroom()}, {"museum", content.Museum()}} {
		blob, err := cr.course.BuildPackage(studio.Options{QStep: 10})
		if err != nil {
			return "", err
		}
		for _, f := range []sim.Factory{sim.GuidedFactory, sim.ExplorerFactory, sim.RandomFactory} {
			results, err := sim.RunCohort(blob, f, cohort, sim.Config{
				MaxSteps: 120, Patience: 15, RewardBoost: 10, Seed: 9, TicksPerStep: 2,
			}, 2)
			if err != nil {
				return "", err
			}
			agg := sim.Summarize(results)
			quizCol := "n/a"
			if agg.QuizAccuracy > 0 {
				quizCol = fmt.Sprintf("%.0f%%", 100*agg.QuizAccuracy)
			}
			fmt.Fprintf(&b, "  %-9s | %-8s | %9.1f | %9.1f | %9.0f%% | %13s\n",
				cr.name, f.Name, agg.MeanDecisions, agg.MeanKnowledge, 100*agg.CompletionRate, quizCol)
		}
		lin := baseline.LinearLesson(cr.course.Project, cr.course.Film.FrameCount())
		fmt.Fprintf(&b, "  %-9s | %-8s | %9.1f | %9d | %10s | %13s\n",
			cr.name, "linear", 0.0, len(lin.Knowledge), "n/a", "n/a")
		ceiling := baseline.InteractiveKnowledgeCeiling(cr.course.Project)
		fmt.Fprintf(&b, "  %-9s | (ceiling: %d interactive knowledge units)\n", cr.name, ceiling)
	}
	b.WriteString("\nshape check: every interactive policy beats the linear baseline on\n")
	b.WriteString("knowledge delivered; guided > explorer > random; linear makes 0 decisions.\n")
	return b.String(), nil
}

// E7 measures the reward mechanism's effect on persistence (claim C4).
func E7(cohort int) (string, error) {
	if cohort <= 0 {
		cohort = 30
	}
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E7 — reward mechanism and mission completion\n")
	fmt.Fprintf(&b, "cohort: %d random-walk learners, patience 5, varying reward sensitivity;\n", cohort)
	b.WriteString("the classroom course grants intermediate badges (diagnosis, purchase)\n")
	b.WriteString("before the final repair badge, so reward-sensitive learners get their\n")
	b.WriteString("patience refilled mid-mission (paper §3.3)\n\n")
	b.WriteString("  reward boost | completion | mean steps | mean knowledge\n")
	b.WriteString("  -------------+------------+------------+---------------\n")
	for _, boost := range []int{0, 5, 15, 30} {
		results, err := sim.RunCohort(blob, sim.RandomFactory, cohort, sim.Config{
			MaxSteps: 250, Patience: 5, RewardBoost: boost, Seed: 4, TicksPerStep: 2,
		}, 2)
		if err != nil {
			return "", err
		}
		agg := sim.Summarize(results)
		steps := 0
		for _, r := range results {
			steps += r.Steps
		}
		fmt.Fprintf(&b, "  %12d | %9.0f%% | %10.1f | %14.2f\n",
			boost, 100*sim.CompletionRate(results), float64(steps)/float64(len(results)), agg.MeanKnowledge)
	}
	b.WriteString("\nshape check: learners who respond to rewards persist longer and\n")
	b.WriteString("complete the mission more often (completion increases with boost).\n")
	return b.String(), nil
}

// E8 measures startup cost: progressive segment streaming vs full download.
func E8() (string, error) {
	var b strings.Builder
	b.WriteString("E8 — network startup: progressive segment streaming vs full download\n")
	b.WriteString("loopback HTTP; film 128x96@10, GOP 10, one scenario per segment\n\n")
	b.WriteString("  segments | package KB | full DL KB (reqs) | progressive KB (reqs) | startup fraction\n")
	b.WriteString("  ---------+------------+-------------------+-----------------------+-----------------\n")
	for _, nseg := range []int{4, 8, 16} {
		film := synth.Generate(synth.Spec{
			W: 128, H: 96, FPS: 10,
			Shots: nseg, MinShotFrames: 25, MaxShotFrames: 30,
			NoiseAmp: 1, Seed: int64(nseg),
		})
		video, err := studio.Record(film, studio.Options{QStep: 8, GOP: 10, ShotMarkers: true})
		if err != nil {
			return "", err
		}
		r, err := container.Open(video)
		if err != nil {
			return "", err
		}
		p := core.NewProject(fmt.Sprintf("course-%dseg", nseg))
		p.StartScenario = "s0"
		for i, ch := range r.Chapters() {
			p.Scenarios = append(p.Scenarios, &core.Scenario{
				ID: fmt.Sprintf("s%d", i), Name: ch.Name, Segment: ch.Name,
			})
		}
		blob, err := gamepack.Build(p, video)
		if err != nil {
			return "", err
		}
		srv := netstream.NewServer()
		if err := srv.AddPackage("course", blob); err != nil {
			return "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		url := "http://" + ln.Addr().String() + "/pkg/course"
		c := &netstream.Client{}
		_, full, err := c.Download(url)
		if err != nil {
			hs.Close()
			return "", err
		}
		_, prog, err := c.ProgressiveOpen(url)
		hs.Close()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %8d | %10.1f | %11.1f (%3d) | %15.1f (%3d) | %15.0f%%\n",
			nseg, float64(len(blob))/1024,
			float64(full.BytesFetched)/1024, full.Requests,
			float64(prog.BytesFetched)/1024, prog.Requests,
			100*float64(prog.BytesFetched)/float64(full.BytesFetched))
	}
	b.WriteString("\nshape check: progressive startup cost is roughly the start segment +\n")
	b.WriteString("metadata, so its fraction of the package shrinks as courses grow.\n")
	return b.String(), nil
}

// E9 runs the ablation microbenchmarks: hit-testing scaling, event dispatch
// throughput, undo/redo cost.
func E9() (string, error) {
	var b strings.Builder
	b.WriteString("E9 — ablations\n\n")

	// Hit testing vs object count.
	b.WriteString("  (a) runtime hit-testing (ObjectAt) vs object count\n")
	b.WriteString("      objects |   ns/op\n")
	for _, n := range []int{10, 100, 1000} {
		s, err := sessionWithObjects(n)
		if err != nil {
			return "", err
		}
		iters := 20000
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			s.ObjectAt(i%160, (i*7)%120)
		}
		fmt.Fprintf(&b, "      %7d | %7.0f\n", n, float64(time.Since(t0).Nanoseconds())/float64(iters))
	}

	// Event dispatch throughput.
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", err
	}
	s, err := runtime.NewSession(blob, runtime.Options{})
	if err != nil {
		return "", err
	}
	iters := 5000
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		s.Click(100, 25) // computer hotspot: full script dispatch
	}
	perOp := time.Since(t0) / time.Duration(iters)
	fmt.Fprintf(&b, "\n  (b) event dispatch (click -> condition -> script): %v/op (%.0f ops/s)\n",
		perOp, float64(time.Second)/float64(perOp))

	// Undo/redo cost on the authoring tool.
	tool := author.New("bench")
	film := synth.Generate(synth.Spec{W: 64, H: 48, FPS: 8, Shots: 2, MinShotFrames: 6, MaxShotFrames: 8, Seed: 1})
	if err := tool.ImportFootage(film, author.ImportOptions{Encode: studio.Options{QStep: 12}}); err != nil {
		return "", err
	}
	seg := tool.SegmentNames()[0]
	if err := tool.AddScenario("s", "S", seg); err != nil {
		return "", err
	}
	if err := tool.AddObject("s", &core.Object{
		ID: "box", Name: "Box", Kind: core.Hotspot, Enabled: true,
		Region: raster.Rect{X: 1, Y: 1, W: 4, H: 4},
	}); err != nil {
		return "", err
	}
	iters = 20000
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		if err := tool.MoveObject("box", raster.Rect{X: i%50 + 1, Y: i%40 + 1, W: 4, H: 4}); err != nil {
			return "", err
		}
		tool.Undo()
		tool.Redo()
	}
	fmt.Fprintf(&b, "  (c) authoring op + undo + redo: %v per triple over %d triples\n",
		time.Since(t0)/time.Duration(iters), iters)
	fmt.Fprintf(&b, "      ops counted: %d\n", tool.Ops())
	return b.String(), nil
}

// sessionWithObjects builds a session whose start scenario has n hotspots.
func sessionWithObjects(n int) (*runtime.Session, error) {
	film := synth.FromScenes(160, 120, 8, 3, []synth.SceneShot{{Kind: synth.Lab, Seconds: 2}})
	video, err := studio.Record(film, studio.Options{
		QStep: 12, Chapters: []container.Chapter{{Name: "seg", Start: 0, End: film.FrameCount()}},
	})
	if err != nil {
		return nil, err
	}
	p := core.NewProject("hit-test bench")
	p.StartScenario = "s"
	sc := &core.Scenario{ID: "s", Name: "S", Segment: "seg"}
	for i := 0; i < n; i++ {
		sc.Objects = append(sc.Objects, &core.Object{
			ID:   fmt.Sprintf("o%d", i),
			Name: "O", Kind: core.Hotspot, Enabled: true,
			Region: raster.Rect{X: (i * 13) % 150, Y: (i * 29) % 110, W: 8, H: 8},
		})
	}
	p.Scenarios = []*core.Scenario{sc}
	blob, err := gamepack.Build(p, video)
	if err != nil {
		return nil, err
	}
	return runtime.NewSession(blob, runtime.Options{})
}
