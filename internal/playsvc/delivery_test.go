package playsvc

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/faultnet"
	"repro/internal/gamepack"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// dialOpts is dial with a ClientOptions hook for protocol variants.
func dialOpts(t testing.TB, baseURL string, obs runtime.Observer, mod func(*ClientOptions)) *Client {
	t.Helper()
	o := ClientOptions{
		BaseURL:  baseURL,
		Course:   "classroom",
		Project:  content.Classroom().Project,
		Observer: obs,
	}
	if mod != nil {
		mod(&o)
	}
	c, err := Dial(o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// goldenClassroomRun produces the seeded guided trace plus the event log,
// final state and transcript of a local replay — the reference every
// protocol leg must reproduce bit-identically.
func goldenClassroomRun(t *testing.T) (trace []sim.TraceStep, wantLog []runtime.Event, wantState []byte, wantMsgs []string) {
	t.Helper()
	var golden recorder
	res, err := sim.Run(classroomBlob(t), sim.GuidedFactory, sim.Config{
		MaxSteps: 40, Patience: 15, Seed: 7, RecordTrace: true, Observer: &golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("guided seed run did not complete: %+v", res)
	}
	local, err := runtime.NewSession(classroomBlob(t), runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	if err := sim.Replay(local, res.Trace); err != nil {
		t.Fatal(err)
	}
	wantState, err = local.State().Save()
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace, golden.log(), wantState, local.Messages()
}

// checkReplayLeg replays the golden trace through one client and holds it
// to the reference: identical event log, identical transcript, identical
// final state, victory outcome.
func checkReplayLeg(t *testing.T, c *Client, trace []sim.TraceStep, rec *recorder,
	wantLog []runtime.Event, wantState []byte, wantMsgs []string) {
	t.Helper()
	if err := sim.Replay(c, trace); err != nil {
		t.Fatal(err)
	}
	// Pipelined and mirror clients may still hold a buffered act tail;
	// Sync flushes it so the recorder holds the complete log.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := rec.log(); !reflect.DeepEqual(got, wantLog) {
		t.Fatalf("event log diverged:\n got %v\nwant %v", got, wantLog)
	}
	state, err := c.State().Save()
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != string(wantState) {
		t.Fatalf("final state diverged:\n got %s\nwant %s", state, wantState)
	}
	if got := c.Messages(); !reflect.DeepEqual(got, wantMsgs) {
		t.Fatalf("transcript diverged:\n got %q\nwant %q", got, wantMsgs)
	}
	if !c.Ended() || c.Outcome() != "victory" {
		t.Fatalf("ended=%v outcome=%q", c.Ended(), c.Outcome())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryGoldenReplay is the protocol-equivalence pin required by the
// binary wire format: the same seeded trace replayed over JSON, over
// binary batches of one, over a pipelined binary client, over a mirror
// (thick) client whose local replica answers every read, and over the
// latter two fronted by a consistent-hash gateway must all reproduce the
// local run's event log, transcript and final state bit-identically.
func TestBinaryGoldenReplay(t *testing.T) {
	trace, wantLog, wantState, wantMsgs := goldenClassroomRun(t)

	ts, m := liveService(t, Options{Shards: 4})
	_, gw := liveCluster(t, 3, Options{})
	pkg, err := gamepack.Open(classroomBlob(t))
	if err != nil {
		t.Fatal(err)
	}

	legs := []struct {
		name string
		url  string
		mod  func(*ClientOptions)
	}{
		{"json", ts.URL, nil},
		{"binary", ts.URL, func(o *ClientOptions) { o.Binary = true }},
		{"pipelined", ts.URL, func(o *ClientOptions) { o.PipelineDepth = 8 }},
		{"pipelined-gateway", gw.URL, func(o *ClientOptions) { o.PipelineDepth = 8 }},
		{"mirror", ts.URL, func(o *ClientOptions) { o.LocalMirror = true; o.Pkg = pkg }},
		{"mirror-gateway", gw.URL, func(o *ClientOptions) { o.LocalMirror = true; o.Pkg = pkg }},
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			var rec recorder
			c := dialOpts(t, leg.url, &rec, leg.mod)
			checkReplayLeg(t, c, trace, &rec, wantLog, wantState, wantMsgs)
		})
	}
	if live := m.Live(); live != 0 {
		t.Fatalf("%d sessions still live after all legs closed", live)
	}
}

// TestDroppedReplyChaos is the lost-reply delivery gate: every act path
// (JSON, binary, pipelined binary) replays the golden trace across a
// transport that loses replies after the server applied the request
// (faultnet resets), drops requests outright and injects 503s. The bar is
// exact delivery — the client-side event log and transcript must match
// the fault-free reference with zero lost and zero duplicated entries,
// and the final state must be byte-identical.
func TestDroppedReplyChaos(t *testing.T) {
	trace, wantLog, wantState, wantMsgs := goldenClassroomRun(t)
	ts, m := liveService(t, Options{Shards: 4})

	// Reset-heavy profile: the point is replies lost after application,
	// the exact case seq/batch dedup and leave tombstones exist for.
	profile := faultnet.Profile{
		Name:      "reply-loss",
		ResetRate: 0.15,
		DropRate:  0.05,
		ErrorRate: 0.02,
	}

	legs := []struct {
		name string
		seed int64
		mod  func(*ClientOptions)
	}{
		{"json", 7, nil},
		{"binary", 11, func(o *ClientOptions) { o.Binary = true }},
		{"pipelined", 13, func(o *ClientOptions) { o.PipelineDepth = 8 }},
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			var rec recorder
			seed := leg.seed
			c := dialOpts(t, ts.URL, &rec, func(o *ClientOptions) {
				o.HTTP = faultnet.WrapClient(nil, profile, seed)
				// Enough attempts that a 22% per-request fault rate
				// cannot plausibly exhaust the ladder mid-trace.
				o.Retry = &faultnet.RetryPolicy{
					Attempts:  10,
					BaseDelay: time.Millisecond,
					MaxDelay:  20 * time.Millisecond,
					Seed:      seed,
				}
				if leg.mod != nil {
					leg.mod(o)
				}
			})
			checkReplayLeg(t, c, trace, &rec, wantLog, wantState, wantMsgs)
		})
	}
	if live := m.Live(); live != 0 {
		t.Fatalf("%d sessions still live after chaos legs closed", live)
	}
}

// TestRetriedLeaveDeliversFinalTail pins the lost-reply bug on the leave
// path: a leave whose confirmation was lost is retried, and the retry must
// return the SAME final tail (the events and messages the client had not
// yet acknowledged) — not an empty confirmation and not a 404.
func TestRetriedLeaveDeliversFinalTail(t *testing.T) {
	m := NewManager(Options{Shards: 1, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	// Generate a tail the client has NOT acked, then leave.
	if _, err := m.Act(&ActRequest{Session: r.Session, Kind: ActTalk, Object: "teacher", Seq: 1,
		SeenEvents: r.EventCount, SeenMessages: r.MessageCount}); err != nil {
		t.Fatal(err)
	}
	leave := &ActRequest{Session: r.Session, Kind: ActLeave, Seq: 2,
		SeenEvents: r.EventCount, SeenMessages: r.MessageCount}
	first, err := m.Act(leave)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Events) == 0 || len(first.Messages) == 0 {
		t.Fatalf("leave confirmation lost the unacked tail: %+v", first)
	}
	if m.Live() != 0 {
		t.Fatalf("%d sessions live after leave", m.Live())
	}
	// The confirmation was "lost": the client retries the identical leave.
	for i := 0; i < 3; i++ {
		again, err := m.Act(leave)
		if err != nil {
			t.Fatalf("retry %d: %v", i, err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("retry %d diverged:\n got %+v\nwant %+v", i, again, first)
		}
	}
}

// TestFrozenLeaveDeliversTail covers leave racing the TTL janitor: the
// session was frozen to a snapshot (its unacked tail riding the envelope)
// before the leave arrived. The leave must thaw it, deliver the tail, and
// release it — dropping the snapshot must not drop the events.
func TestFrozenLeaveDeliversTail(t *testing.T) {
	o, _, _ := durableOptions(t)
	m := NewManager(o)
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Act(&ActRequest{Session: r.Session, Kind: ActTalk, Object: "teacher", Seq: 1,
		SeenEvents: r.EventCount, SeenMessages: r.MessageCount}); err != nil {
		t.Fatal(err)
	}
	if err := m.Freeze(r.Session); err != nil {
		t.Fatal(err)
	}
	leave := &ActRequest{Session: r.Session, Kind: ActLeave, Seq: 2,
		SeenEvents: r.EventCount, SeenMessages: r.MessageCount}
	conf, err := m.Act(leave)
	if err != nil {
		t.Fatal(err)
	}
	if len(conf.Events) == 0 || len(conf.Messages) == 0 {
		t.Fatalf("frozen leave dropped the unacked tail: %+v", conf)
	}
	if m.Live() != 0 {
		t.Fatalf("%d sessions live after frozen leave", m.Live())
	}
	// And the retry still answers from the tombstone.
	again, err := m.Act(leave)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, conf) {
		t.Fatalf("frozen-leave retry diverged:\n got %+v\nwant %+v", again, conf)
	}
}

// TestRetriedBatchAfterThawNotDoubleApplied pins the envelope v2 fix: the
// batch-dedup state (base seq, result bits) survives freeze/thaw, so a
// batch whose reply was lost while the session migrated is recognized as
// a retry and rebuilt — not applied twice.
func TestRetriedBatchAfterThawNotDoubleApplied(t *testing.T) {
	o, _, _ := durableOptions(t)
	m := NewManager(o)
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	batch := &BatchRequest{
		Session: r.Session, BaseSeq: 1,
		SeenEvents: r.EventCount, SeenMessages: r.MessageCount,
		Acts: []ActRequest{
			{Kind: ActTalk, Object: "teacher"},
			{Kind: ActExamine, Object: "computer"},
			{Kind: ActTick, Ticks: 1},
		},
	}
	first, err := m.ActBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.ActErr != nil {
		t.Fatalf("batch failed: %v", first.ActErr)
	}

	// The reply is lost; the session is frozen (TTL janitor / handoff)
	// before the retry arrives.
	if err := m.Freeze(r.Session); err != nil {
		t.Fatal(err)
	}

	again, err := m.ActBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if again.Reply.EventCount != first.Reply.EventCount ||
		again.Reply.MessageCount != first.Reply.MessageCount ||
		again.Reply.Tick != first.Reply.Tick {
		t.Fatalf("retry re-applied the batch: first count %d/%d tick %d, retry %d/%d tick %d",
			first.Reply.EventCount, first.Reply.MessageCount, first.Reply.Tick,
			again.Reply.EventCount, again.Reply.MessageCount, again.Reply.Tick)
	}
	if !reflect.DeepEqual(again.Results, first.Results) {
		t.Fatalf("retry results diverged:\n got %+v\nwant %+v", again.Results, first.Results)
	}
	if !reflect.DeepEqual(again.Reply.Events, first.Reply.Events) {
		t.Fatalf("retry event tail diverged:\n got %v\nwant %v", again.Reply.Events, first.Reply.Events)
	}

	// A genuinely new batch still applies.
	next, err := m.ActBatch(&BatchRequest{
		Session: r.Session, BaseSeq: 4,
		SeenEvents: first.Reply.EventCount, SeenMessages: first.Reply.MessageCount,
		Acts: []ActRequest{{Kind: ActTick, Ticks: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if next.Reply.Tick != first.Reply.Tick+1 {
		t.Fatalf("follow-up batch tick = %d, want %d", next.Reply.Tick, first.Reply.Tick+1)
	}
}

// TestNegativeSeenCounts sweeps hostile seen-counts through every consumer
// — act, batch, state read and the resume route. Negative values clamp to
// "seen nothing" (full retained tail back, no panic, no log corruption);
// absurdly large values clamp to "seen everything" without over-trimming.
func TestNegativeSeenCounts(t *testing.T) {
	m := NewManager(Options{Shards: 1, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := m.Act(&ActRequest{Session: r.Session, Kind: ActTalk, Object: "teacher", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	total, totalMsgs := rr.EventCount, rr.MessageCount
	if total == 0 || totalMsgs == 0 {
		t.Fatalf("no tail to fight over: %d events, %d messages", total, totalMsgs)
	}

	// All non-positive seen-counts are ack no-ops: the full tail comes
	// back and the retained window is untouched. (The past-end clamp is
	// exercised at the end — its ack legitimately compacts the log.)
	cases := []struct {
		name         string
		seenEvents   int
		seenMessages int
		wantEvents   int // len of returned tail
		wantMessages int
	}{
		{"negative", -1, -1, total, totalMsgs},
		{"deeply negative", -1 << 40, -1 << 40, total, totalMsgs},
		{"zero", 0, 0, total, totalMsgs},
	}
	for _, tc := range cases {
		t.Run("stateOf/"+tc.name, func(t *testing.T) {
			got, err := m.StateOf(r.Session, tc.seenEvents, tc.seenMessages)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Events) != tc.wantEvents || len(got.Messages) != tc.wantMessages {
				t.Fatalf("tail = %d events / %d messages, want %d/%d",
					len(got.Events), len(got.Messages), tc.wantEvents, tc.wantMessages)
			}
			if got.EventCount != total || got.MessageCount != totalMsgs {
				t.Fatalf("absolute counts drifted: %d/%d, want %d/%d",
					got.EventCount, got.MessageCount, total, totalMsgs)
			}
		})
	}

	// The resume route takes the same clamp: a negative seen-count resume
	// receives the full retained transcript.
	res, err := m.Create(&CreateRequest{Resume: r.Session, SeenEvents: -7, SeenMessages: -7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("resume create did not mark Resumed")
	}
	if len(res.Events) != total || len(res.Messages) != totalMsgs {
		t.Fatalf("resume tail = %d/%d, want %d/%d", len(res.Events), len(res.Messages), total, totalMsgs)
	}

	// A negative-seen ACT must not corrupt the retained window: the log
	// is not un-trimmed, not over-trimmed, and a later honest ack works.
	rr2, err := m.Act(&ActRequest{Session: r.Session, Kind: ActTick, Ticks: 1, Seq: 2,
		SeenEvents: -5, SeenMessages: -5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr2.Events) < total {
		t.Fatalf("negative-seen act returned %d events, want the full log (>= %d)", len(rr2.Events), total)
	}
	h, _, err := m.lookup(r.Session)
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	base := h.eventBase
	h.mu.Unlock()
	if base != 0 {
		t.Fatalf("negative seen-count moved the ack base to %d", base)
	}
	rr3, err := m.Act(&ActRequest{Session: r.Session, Kind: ActTick, Ticks: 1, Seq: 3,
		SeenEvents: rr2.EventCount, SeenMessages: rr2.MessageCount})
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	base, retained := h.eventBase, len(h.events)
	h.mu.Unlock()
	if base != rr2.EventCount || base+retained != rr3.EventCount {
		t.Fatalf("honest ack after hostile seen: window [%d,%d), want base %d total %d",
			base, base+retained, rr2.EventCount, rr3.EventCount)
	}

	// A past-the-end seen-count clamps to "release everything retained":
	// no panic, empty tail, and the window never goes negative.
	over, err := m.StateOf(r.Session, rr3.EventCount+99, rr3.MessageCount+99)
	if err != nil {
		t.Fatal(err)
	}
	if len(over.Events) != 0 || over.EventCount != rr3.EventCount {
		t.Fatalf("past-end read: tail %d, count %d, want 0/%d", len(over.Events), over.EventCount, rr3.EventCount)
	}
	h.mu.Lock()
	base, retained = h.eventBase, len(h.events)
	h.mu.Unlock()
	if retained != 0 || base != rr3.EventCount {
		t.Fatalf("past-end ack left window [%d,%d), want [%d,%d)", base, base+retained, rr3.EventCount, rr3.EventCount)
	}
}

// TestReplyIsPureAckTrims pins the compact-only-on-ack rule directly:
// building a reply must not trim the event log (the reply may be lost in
// flight); only the next request's acknowledged seen-count releases the
// prefix.
func TestReplyIsPureAckTrims(t *testing.T) {
	m := NewManager(Options{Shards: 1, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := m.Act(&ActRequest{Session: r.Session, Kind: ActTalk, Object: "teacher", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Read the full tail twice: replies are pure, so the second read still
	// sees everything even though the first reply "delivered" it.
	for i := 0; i < 2; i++ {
		got, err := m.StateOf(r.Session, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Events) != rr.EventCount {
			t.Fatalf("read %d: tail %d, want %d — a reply trimmed the log", i, len(got.Events), rr.EventCount)
		}
	}
	// Only the acked request compacts.
	if _, err := m.StateOf(r.Session, rr.EventCount, rr.MessageCount); err != nil {
		t.Fatal(err)
	}
	h, _, err := m.lookup(r.Session)
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	base, retained := h.eventBase, len(h.events)
	h.mu.Unlock()
	if base != rr.EventCount || retained != 0 {
		t.Fatalf("ack did not compact: window [%d,%d), want [%d,%d)", base, base+retained, rr.EventCount, rr.EventCount)
	}
}
