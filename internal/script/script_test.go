package script

import (
	"strings"
	"testing"
	"testing/quick"
)

// fakeState implements Env and Effects, recording everything.
type fakeState struct {
	items  map[string]bool
	flags  map[string]bool
	vars   map[string]int
	log    []string
	popups [][2]string
}

func newFake() *fakeState {
	return &fakeState{items: map[string]bool{}, flags: map[string]bool{}, vars: map[string]int{}}
}

func (f *fakeState) HasItem(n string) bool { return f.items[n] }
func (f *fakeState) Flag(n string) bool    { return f.flags[n] }
func (f *fakeState) Var(n string) int      { return f.vars[n] }

func (f *fakeState) Say(m string)  { f.log = append(f.log, "say:"+m) }
func (f *fakeState) Give(i string) { f.items[i] = true; f.log = append(f.log, "give:"+i) }
func (f *fakeState) SetFlag(n string, v bool) {
	f.flags[n] = v
	f.log = append(f.log, "flag:"+n)
}
func (f *fakeState) SetVar(n string, v int) { f.vars[n] = v }
func (f *fakeState) Goto(s string)          { f.log = append(f.log, "goto:"+s) }
func (f *fakeState) Reward(n string)        { f.log = append(f.log, "reward:"+n) }
func (f *fakeState) Learn(u string)         { f.log = append(f.log, "learn:"+u) }
func (f *fakeState) Enable(o string)        { f.log = append(f.log, "enable:"+o) }
func (f *fakeState) Disable(o string)       { f.log = append(f.log, "disable:"+o) }
func (f *fakeState) End(o string)           { f.log = append(f.log, "end:"+o) }
func (f *fakeState) Open(u string)          { f.log = append(f.log, "open:"+u) }
func (f *fakeState) Quiz(q string)          { f.log = append(f.log, "quiz:"+q) }
func (f *fakeState) Popup(k, c string) {
	f.popups = append(f.popups, [2]string{k, c})
	f.log = append(f.log, "popup:"+k)
}
func (f *fakeState) Take(i string) bool {
	had := f.items[i]
	delete(f.items, i)
	f.log = append(f.log, "take:"+i)
	return had
}

func run(t *testing.T, src string, st *fakeState) {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := p.Run(st, st); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestSayAndConcat(t *testing.T) {
	st := newFake()
	st.vars["score"] = 7
	run(t, `say "score: " + score;`, st)
	if len(st.log) != 1 || st.log[0] != "say:score: 7" {
		t.Fatalf("log = %v", st.log)
	}
}

func TestGiveTakeHas(t *testing.T) {
	st := newFake()
	run(t, `
		give "coin";
		if has("coin") { say "rich"; } else { say "poor"; }
		take "coin";
		if has("coin") { say "still rich"; } else { say "broke"; }
	`, st)
	want := []string{"give:coin", "say:rich", "take:coin", "say:broke"}
	if strings.Join(st.log, ",") != strings.Join(want, ",") {
		t.Fatalf("log = %v", st.log)
	}
}

func TestFlagsAndElseIf(t *testing.T) {
	st := newFake()
	st.flags["fixed"] = true
	run(t, `
		if flag("broken") {
			say "a";
		} else if flag("fixed") {
			say "b";
		} else {
			say "c";
		}
	`, st)
	if st.log[len(st.log)-1] != "say:b" {
		t.Fatalf("log = %v", st.log)
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	st := newFake()
	st.vars["x"] = 10
	run(t, `
		set y = x * 3 + 2;   # 32
		set z = (x - 4) / 2; # 3
		set m = x % 3;       # 1
		if y == 32 && z == 3 && m == 1 { say "math ok"; }
		if y > z || false { say "cmp ok"; }
		if !(y < z) { say "not ok"; }
		set neg = -x;
	`, st)
	if st.vars["y"] != 32 || st.vars["z"] != 3 || st.vars["m"] != 1 || st.vars["neg"] != -10 {
		t.Fatalf("vars = %v", st.vars)
	}
	joined := strings.Join(st.log, ",")
	for _, want := range []string{"say:math ok", "say:cmp ok", "say:not ok"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %v", want, st.log)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// `has` on the right of && must not be evaluated when left is false —
	// observable because division by zero on the right would error.
	st := newFake()
	p, err := Compile(`if false && (1/0 == 1) { say "boom"; } else { say "safe"; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(st, st); err != nil {
		t.Fatalf("short-circuit failed: %v", err)
	}
	if st.log[0] != "say:safe" {
		t.Fatal("wrong branch")
	}
	// Same for ||.
	p2 := MustCompile(`if true || (1/0 == 1) { say "safe2"; }`)
	if err := p2.Run(st, st); err != nil {
		t.Fatalf("|| short-circuit failed: %v", err)
	}
}

func TestAllEffectVerbs(t *testing.T) {
	st := newFake()
	run(t, `
		goto "market";
		reward "fixer-badge";
		learn "ram-identification";
		enable "door";
		disable "umbrella";
		popup "text" "THE RAM SLOTS INTO THE DIMM SOCKET";
		open "http://course.example/ram";
		setflag visited true;
		end "victory";
	`, st)
	joined := strings.Join(st.log, ",")
	for _, want := range []string{
		"goto:market", "reward:fixer-badge", "learn:ram-identification",
		"enable:door", "disable:umbrella", "popup:text", "open:http://course.example/ram",
		"flag:visited", "end:victory",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %v", want, st.log)
		}
	}
	if !st.flags["visited"] {
		t.Error("setflag did not set")
	}
	if st.popups[0][1] != "THE RAM SLOTS INTO THE DIMM SOCKET" {
		t.Errorf("popup content = %q", st.popups[0][1])
	}
}

func TestClassroomScenarioScript(t *testing.T) {
	// The paper's §3.2 walkthrough as a script, step by step.
	st := newFake()
	fix := MustCompile(`
		if has("ram module") {
			take "ram module";
			setflag fixed true;
			say "The computer boots again!";
			learn "ram-installation";
			reward "repair-badge";
			set score = score + 50;
		} else {
			say "You need a replacement part. Try the market.";
			popup "text" "LOOK FOR A MEMORY MODULE";
		}
	`)
	// First attempt: no part.
	if err := fix.Run(st, st); err != nil {
		t.Fatal(err)
	}
	if st.flags["fixed"] {
		t.Fatal("fixed without the part")
	}
	// Buy the part, then retry.
	st.items["ram module"] = true
	if err := fix.Run(st, st); err != nil {
		t.Fatal(err)
	}
	if !st.flags["fixed"] || st.vars["score"] != 50 {
		t.Fatalf("flags=%v vars=%v", st.flags, st.vars)
	}
	joined := strings.Join(st.log, ",")
	if !strings.Contains(joined, "reward:repair-badge") || !strings.Contains(joined, "learn:ram-installation") {
		t.Errorf("log = %v", st.log)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`say "unterminated;`,
		`if true { say "x"; `,       // missing }
		`bogus "arg";`,              // unknown verb
		`set = 3;`,                  // missing name
		`set x 3;`,                  // missing =
		`say "a" say "b";`,          // missing semicolon
		`if has("x" { say "y"; }`,   // missing )
		`say 1 & 2;`,                // single &
		`say 1 | 2;`,                // single |
		`say @;`,                    // bad character
		`say 99999999999999999999;`, // overflow
		`popup "text";`,             // popup needs two args
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("compiled invalid script: %s", src)
		} else if !strings.Contains(err.Error(), "script:") {
			t.Errorf("error lacks position: %v", err)
		}
	}
}

func TestRuntimeTypeErrors(t *testing.T) {
	cases := []string{
		`if 3 { say "x"; }`,         // int condition
		`set x = "str";`,            // string into int var
		`setflag f 3;`,              // int into flag
		`goto 3;`,                   // int into goto
		`say 1 - "a";`,              // bad arithmetic
		`if 1 < "a" { say "x"; }`,   // bad comparison
		`if "a" == 1 { say "x"; }`,  // mixed equality
		`if !3 { say "x"; }`,        // ! on int
		`set x = -"a";`,             // unary minus on string
		`set x = 1/0;`,              // division by zero
		`set x = 1%0;`,              // modulo by zero
		`if true && 3 { say "x"; }`, // non-bool logical
		`popup "a" 3;`,              // popup content must be string
	}
	for _, src := range cases {
		p, err := Compile(src)
		if err != nil {
			t.Errorf("should compile (fail at runtime): %s: %v", src, err)
			continue
		}
		st := newFake()
		if err := p.Run(st, st); err == nil {
			t.Errorf("ran invalid script: %s", src)
		}
	}
}

func TestPrecedence(t *testing.T) {
	st := newFake()
	run(t, `
		set a = 2 + 3 * 4;       # 14
		set b = (2 + 3) * 4;     # 20
		if 1 + 1 == 2 && 2 * 2 == 4 { set c = 1; }
	`, st)
	if st.vars["a"] != 14 || st.vars["b"] != 20 || st.vars["c"] != 1 {
		t.Fatalf("vars = %v", st.vars)
	}
}

func TestEvalCondition(t *testing.T) {
	st := newFake()
	st.items["key"] = true
	st.vars["score"] = 5
	ok, err := EvalCondition(`has("key") && score >= 5`, st)
	if err != nil || !ok {
		t.Fatalf("condition: %v %v", ok, err)
	}
	if _, err := EvalCondition(`score +`, st); err == nil {
		t.Error("bad condition compiled")
	}
	if _, err := EvalCondition(`1 + 1`, st); err == nil {
		t.Error("non-bool condition accepted")
	}
	if _, err := EvalCondition(`true true`, st); err == nil {
		t.Error("trailing tokens accepted")
	}
}

func TestEmptyAndNilPrograms(t *testing.T) {
	var p *Program
	if !p.Empty() {
		t.Error("nil program should be empty")
	}
	if err := p.Run(newFake(), newFake()); err != nil {
		t.Error("nil program should run as no-op")
	}
	p2 := MustCompile(`# just a comment`)
	if !p2.Empty() {
		t.Error("comment-only program should be empty")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	st := newFake()
	run(t, "# header comment\n\tsay \"hi\"; # trailing\n\n# done\n", st)
	if len(st.log) != 1 {
		t.Fatalf("log = %v", st.log)
	}
}

func TestStringEscapes(t *testing.T) {
	st := newFake()
	run(t, `say "line1\nline2\t\"quoted\"\\";`, st)
	want := "say:line1\nline2\t\"quoted\"\\"
	if st.log[0] != want {
		t.Fatalf("got %q", st.log[0])
	}
}

func TestQuickIntArithmeticNeverPanics(t *testing.T) {
	// Any int expression over +,-,* with small literals must evaluate
	// without panic and match Go's arithmetic.
	err := quick.Check(func(a, b int16, op uint8) bool {
		st := newFake()
		st.vars["a"], st.vars["b"] = int(a), int(b)
		var src string
		var want int
		switch op % 3 {
		case 0:
			src, want = `set r = a + b;`, int(a)+int(b)
		case 1:
			src, want = `set r = a - b;`, int(a)-int(b)
		default:
			src, want = `set r = a * b;`, int(a)*int(b)
		}
		p, err := Compile(src)
		if err != nil {
			return false
		}
		if err := p.Run(st, st); err != nil {
			return false
		}
		return st.vars["r"] == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic on bad input")
		}
	}()
	MustCompile(`say;;;`)
}

func TestErrorPositions(t *testing.T) {
	_, err := Compile("say \"ok\";\n  bogus \"x\";")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 || se.Col != 3 {
		t.Errorf("position = %d:%d, want 2:3", se.Line, se.Col)
	}
}
