package repro

// The benchmark harness: one benchmark (family) per experiment in
// EXPERIMENTS.md. `go test -bench=. -benchmem` regenerates the performance
// side of every table; the vgbl-experiments binary prints the full tables.

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/author"
	"repro/internal/baseline"
	"repro/internal/blobstore"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/gamepack"
	"repro/internal/media/playback"
	"repro/internal/media/raster"
	"repro/internal/media/shotdetect"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/media/vcodec"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/playsvc"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Shared fixtures, built once.
var (
	onceFilm  sync.Once
	benchFilm *synth.Film

	onceVideo  sync.Once
	benchVideo []byte // 30s film, GOP 12

	oncePkg  sync.Once
	benchPkg []byte // classroom package
)

func film(b *testing.B) *synth.Film {
	onceFilm.Do(func() {
		benchFilm = synth.Generate(synth.Spec{
			W: 96, H: 64, FPS: 12,
			Shots: 6, MinShotFrames: 50, MaxShotFrames: 70,
			NoiseAmp: 1, Seed: 7,
		})
	})
	return benchFilm
}

func video(b *testing.B) []byte {
	f := film(b)
	onceVideo.Do(func() {
		blob, err := studio.Record(f, studio.Options{QStep: 8, GOP: 12, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		benchVideo = blob
	})
	return benchVideo
}

func classroomPkg(b *testing.B) []byte {
	oncePkg.Do(func() {
		blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
		if err != nil {
			b.Fatal(err)
		}
		benchPkg = blob
	})
	return benchPkg
}

// --- E1: shot segmentation ------------------------------------------------

func BenchmarkShotDetect(b *testing.B) {
	f := film(b)
	src := shotdetect.FuncSource{N: f.FrameCount(), F: func(i int) (*raster.Frame, error) {
		return f.Render(i), nil
	}}
	cfg := shotdetect.Defaults()
	b.ReportMetric(float64(f.FrameCount()), "frames")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shotdetect.Detect(src, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: scenario switch --------------------------------------------------

func BenchmarkScenarioSwitchIndexed(b *testing.B) {
	blob := video(b)
	v, err := playback.OpenVideo(blob, 1)
	if err != nil {
		b.Fatal(err)
	}
	n := v.Meta().FrameCount
	targets := []int{n - 1, 5, n / 2, n / 3, n - 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.FrameAt(targets[i%len(targets)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioSwitchLinearScan(b *testing.B) {
	blob := video(b)
	v, _ := playback.OpenVideo(blob, 1)
	target := v.Meta().FrameCount - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.UnindexedSeek(blob, target); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: codec ---------------------------------------------------------

func benchmarkEncode(b *testing.B, w, h, q, workers int) {
	f := synth.Generate(synth.Spec{
		W: w, H: h, FPS: 10, Shots: 2,
		MinShotFrames: 15, MaxShotFrames: 16, NoiseAmp: 2, Seed: 5,
	})
	frames := make([]*raster.Frame, 16)
	for i := range frames {
		frames[i] = f.Render(i)
	}
	enc, err := vcodec.NewEncoder(vcodec.Config{
		Width: w, Height: h, QStep: q, GOP: 8, SearchRange: 3, Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer enc.Close()
	var bytes int
	b.SetBytes(int64(w * h * 3)) // raw RGB input per op → MB/s alongside ns/op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := enc.Encode(frames[i%len(frames)])
		if err != nil {
			b.Fatal(err)
		}
		bytes += len(pkt.Data)
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "bytes/frame")
}

func BenchmarkEncode160x120Q4W1(b *testing.B)  { benchmarkEncode(b, 160, 120, 4, 1) }
func BenchmarkEncode160x120Q4W4(b *testing.B)  { benchmarkEncode(b, 160, 120, 4, 4) }
func BenchmarkEncode320x240Q4W1(b *testing.B)  { benchmarkEncode(b, 320, 240, 4, 1) }
func BenchmarkEncode160x120Q16W1(b *testing.B) { benchmarkEncode(b, 160, 120, 16, 1) }

func decodeBenchPackets(b *testing.B) [][]byte {
	f := synth.Generate(synth.Spec{
		W: 160, H: 120, FPS: 10, Shots: 2,
		MinShotFrames: 15, MaxShotFrames: 16, NoiseAmp: 2, Seed: 5,
	})
	enc, _ := vcodec.NewEncoder(vcodec.Config{Width: 160, Height: 120, QStep: 4, GOP: 8, SearchRange: 3, Workers: 1})
	defer enc.Close()
	var pkts [][]byte
	for i := 0; i < 16; i++ {
		p, err := enc.Encode(f.Render(i))
		if err != nil {
			b.Fatal(err)
		}
		pkts = append(pkts, p.Data)
	}
	return pkts
}

// BenchmarkDecode160x120 measures the steady-state decode pipeline: one
// persistent decoder, frames recycled through DecodeInto. One op = a 16-frame
// GOP-8 sequence (the first packet is an I-frame, so the stream re-enters
// cleanly every op).
func BenchmarkDecode160x120(b *testing.B) {
	pkts := decodeBenchPackets(b)
	dec := vcodec.NewDecoder(1)
	var frame raster.Frame
	b.SetBytes(int64(len(pkts)) * 160 * 120 * 3) // decoded RGB output per op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pkts {
			if err := dec.DecodeInto(&frame, p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(16, "frames/op")
}

// BenchmarkDecode160x120Cold is the seed-shaped variant: a fresh decoder and
// freshly allocated output frames every op, the cost a brand-new session
// pays on its first GOP.
func BenchmarkDecode160x120Cold(b *testing.B) {
	pkts := decodeBenchPackets(b)
	b.SetBytes(int64(len(pkts)) * 160 * 120 * 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := vcodec.NewDecoder(1)
		for _, p := range pkts {
			if _, err := dec.Decode(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(16, "frames/op")
}

// --- E4: authoring -------------------------------------------------------

func BenchmarkAuthoringOps(b *testing.B) {
	// The cost of one primitive authoring operation with undo bookkeeping.
	tool := author.New("bench")
	f := synth.Generate(synth.Spec{W: 48, H: 32, FPS: 8, Shots: 1, MinShotFrames: 8, MaxShotFrames: 8, Seed: 2})
	if err := tool.ImportFootage(f, author.ImportOptions{Encode: studio.Options{QStep: 12}}); err != nil {
		b.Fatal(err)
	}
	if err := tool.AddScenario("s", "S", tool.SegmentNames()[0]); err != nil {
		b.Fatal(err)
	}
	if err := tool.AddObject("s", &core.Object{
		ID: "o", Name: "O", Kind: core.Hotspot, Enabled: true,
		Region: raster.Rect{X: 1, Y: 1, W: 4, H: 4},
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tool.MoveObject("o", raster.Rect{X: i%40 + 1, Y: i%30 + 1, W: 4, H: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6/E7: simulated learners --------------------------------------------

func BenchmarkSimSessionGuided(b *testing.B) {
	blob := classroomPkg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(blob, sim.GuidedFactory, sim.Config{
			MaxSteps: 60, Patience: 15, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Steps == 0 {
			b.Fatal("bot did nothing")
		}
	}
}

func BenchmarkSimSessionRandom(b *testing.B) {
	blob := classroomPkg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(blob, sim.RandomFactory, sim.Config{
			MaxSteps: 60, Patience: 15, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: streaming ---------------------------------------------------------

func BenchmarkStreamStartupProgressive(b *testing.B) {
	srv := netstream.NewServer()
	if err := srv.AddPackage("c", classroomPkg(b)); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &netstream.Client{}
	// Progressive startup fetches only the head + first segment; report
	// MB/s over the bytes actually transferred per op.
	_, st, err := c.ProgressiveOpen(ts.URL + "/pkg/c")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(st.BytesFetched))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.ProgressiveOpen(ts.URL + "/pkg/c"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamFullDownload(b *testing.B) {
	srv := netstream.NewServer()
	if err := srv.AddPackage("c", classroomPkg(b)); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &netstream.Client{}
	b.SetBytes(int64(len(classroomPkg(b)))) // full package bytes per op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Download(ts.URL + "/pkg/c"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: content-addressed chunk store -------------------------------------

// BenchmarkChunkGetHot is the delivery hot path: a chunk served from the
// lock-striped LRU tier. Must stay 0 allocs/op — a fleet hammering one
// popular course costs the server no garbage.
func BenchmarkChunkGetHot(b *testing.B) {
	store, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 31)
	}
	h, _, err := store.Put(data)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := store.Get(h); err != nil { // warm the tier
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Get(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkGetCold reads through to the on-disk backend with the hot
// tier disabled: one file read plus SHA-256 verification per op.
func BenchmarkChunkGetCold(b *testing.B) {
	disk, err := blobstore.NewDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	store, err := blobstore.New(blobstore.Options{Backend: disk, CacheBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 31)
	}
	h, _, err := store.Put(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Get(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaSync measures one client delta sync after a one-segment
// course edit: conditional manifest fetch, the changed chunks over
// loopback HTTP (hash-verified), unchanged chunks from the local cache,
// and package reassembly. Bytes/op is the wire delta.
func BenchmarkDeltaSync(b *testing.B) {
	course := content.Classroom()
	v1, err := course.BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		b.Fatal(err)
	}
	course.Film.Shots[1].Seed ^= 0xbeef
	v2, err := course.BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		b.Fatal(err)
	}
	srv := netstream.NewServer()
	if err := srv.AddPackage("orig", v1); err != nil {
		b.Fatal(err)
	}
	if err := srv.AddPackage("edited", v2); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &netstream.Client{}
	cache := netstream.NewPackageCache()
	if _, _, err := c.DownloadDelta(ts.URL+"/pkg/orig", cache); err != nil {
		b.Fatal(err)
	}
	man1, err := gamepack.ExtractManifest(v1)
	if err != nil {
		b.Fatal(err)
	}
	man2, err := gamepack.ExtractManifest(v2)
	if err != nil {
		b.Fatal(err)
	}
	old := man1.ChunkSet()
	var diff []blobstore.Hash
	deltaBytes := len(man2.Encode())
	for h, size := range man2.ChunkSet() {
		if _, ok := old[h]; !ok {
			diff = append(diff, h)
			deltaBytes += size
		}
	}
	if len(diff) == 0 {
		b.Fatal("fixture edit changed no chunks")
	}
	url := ts.URL + "/pkg/edited"
	b.SetBytes(int64(deltaBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each op starts where a course update leaves a client: the old
		// version cached, the edited chunks not yet local.
		cache.Forget(url)
		for _, h := range diff {
			cache.Chunks().Remove(h)
		}
		if _, st, err := c.DownloadDelta(url, cache); err != nil {
			b.Fatal(err)
		} else if st.ChunksFetched != len(diff) {
			b.Fatalf("fetched %d chunks, want %d", st.ChunksFetched, len(diff))
		}
	}
}

// --- E10: learner fleet + telemetry ingest ---------------------------------

// benchmarkFleet runs one fleet iteration per op: n concurrent learners
// fetch the classroom package from a live netstream server (ETag-cached),
// play it guided, and report through batched telemetry.
func benchmarkFleet(b *testing.B, learners int) {
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", classroomPkg(b)); err != nil {
		b.Fatal(err)
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 512})
	defer svc.Close()
	if err := srv.Mount("/telemetry/", svc.Handler()); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var sessions, events float64
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := fleet.Run(fleet.Config{
			ServerURL:   ts.URL,
			Package:     "classroom",
			Learners:    learners,
			Concurrency: 64,
			Policy:      sim.GuidedFactory,
			Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, Seed: int64(i)},
			FlushEvery:  8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Failed > 0 {
			b.Fatalf("%d learners failed: %v", sum.Failed, sum.Errors)
		}
		sessions += float64(learners)
		events += float64(sum.EventsReported)
		elapsed += sum.Elapsed
	}
	b.StopTimer()
	if secs := elapsed.Seconds(); secs > 0 {
		b.ReportMetric(sessions/secs, "sessions/s")
		b.ReportMetric(events/secs, "events/s")
	}
}

func BenchmarkFleet10(b *testing.B)  { benchmarkFleet(b, 10) }
func BenchmarkFleet50(b *testing.B)  { benchmarkFleet(b, 50) }
func BenchmarkFleet200(b *testing.B) { benchmarkFleet(b, 200) }

// BenchmarkFleetIngest isolates the ingest path: one batch applied to the
// sharded store per op, across parallel goroutines (no HTTP).
func BenchmarkFleetIngest(b *testing.B) {
	store := telemetry.NewStore(32)
	events := []runtime.Event{
		{Tick: 1, Kind: "click", Detail: "computer"},
		{Tick: 2, Kind: "learn", Detail: "ram-identification"},
		{Tick: 3, Kind: "goto", Detail: "market"},
		{Tick: 4, Kind: "reward", Detail: "badge"},
	}
	var sid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := sid.Add(1)
		session := 0
		for pb.Next() {
			session++
			s := fmt.Sprintf("g%d-s%d", id, session)
			if err := store.Append(telemetry.Batch{Course: "bench", Session: s, Start: "classroom", Events: events}); err != nil {
				b.Fatal(err)
			}
			if err := store.Append(telemetry.Batch{Course: "bench", Session: s, Done: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E12: play service -------------------------------------------------------

// BenchmarkPlaysvcAct measures the play service's per-request hot paths on
// one hosted session, without HTTP framing:
//
//   - act: a full interaction round (dialogue turn + self-contained reply
//     assembly with state snapshot and event tail).
//   - tick: the cheapest act (advance playback, assemble reply).
//   - frame: the advance+render frame path — DecodeInto plus cached-sprite
//     composition into the session-owned buffer. This path must report
//     0 allocs/op (pinned by playsvc's TestFramePathZeroAlloc).
func BenchmarkPlaysvcAct(b *testing.B) {
	newHosted := func(b *testing.B) (*playsvc.Manager, string) {
		b.Helper()
		m := playsvc.NewManager(playsvc.Options{Shards: 4, TTL: -1})
		b.Cleanup(m.Close)
		if err := m.AddCourse("classroom", classroomPkg(b)); err != nil {
			b.Fatal(err)
		}
		r, err := m.Create(&playsvc.CreateRequest{Course: "classroom"})
		if err != nil {
			b.Fatal(err)
		}
		return m, r.Session
	}
	b.Run("act", func(b *testing.B) {
		m, id := newHosted(b)
		req := playsvc.ActRequest{Session: id, Kind: playsvc.ActTalk, Object: "teacher"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The reply tail stays O(1): claim the log as seen each round.
			r, err := m.Act(&req)
			if err != nil {
				b.Fatal(err)
			}
			req.SeenEvents, req.SeenMessages = r.EventCount, r.MessageCount
		}
	})
	b.Run("tick", func(b *testing.B) {
		m, id := newHosted(b)
		req := playsvc.ActRequest{Session: id, Kind: playsvc.ActTick, Ticks: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Act(&req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("frame", func(b *testing.B) {
		m, id := newHosted(b)
		noop := func(f *raster.Frame, tick int) error { return nil }
		// Warm the sprite cache, frame buffer and decoder recycling.
		for i := 0; i < 8; i++ {
			if err := m.WithFrame(id, 1, noop); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(3 * 160 * 120) // raw RGB bytes served per frame
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.WithFrame(id, 1, noop); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlaysvcRemoteLearner plays one full guided learner over the
// wire per op — the end-to-end remote-play session cost E12 compares with
// local simulation.
func BenchmarkPlaysvcRemoteLearner(b *testing.B) {
	m := playsvc.NewManager(playsvc.Options{Shards: 4, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomPkg(b)); err != nil {
		b.Fatal(err)
	}
	srv := netstream.NewServer()
	if err := srv.Mount("/play/", m.Handler()); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	proj := content.Classroom().Project
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := &analytics.Collector{}
		c, err := playsvc.Dial(playsvc.ClientOptions{
			BaseURL: ts.URL, Course: "classroom", Project: proj, Observer: col,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.RunGame(c, sim.GuidedFactory,
			sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, Seed: int64(i)}, col)
		if err != nil {
			b.Fatal(err)
		}
		if res.Steps == 0 {
			b.Fatal("empty run")
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E17: binary wire protocol ----------------------------------------------

func newHostedBench(b *testing.B) (*playsvc.Manager, string) {
	b.Helper()
	m := playsvc.NewManager(playsvc.Options{Shards: 4, TTL: -1})
	b.Cleanup(m.Close)
	if err := m.AddCourse("classroom", classroomPkg(b)); err != nil {
		b.Fatal(err)
	}
	r, err := m.Create(&playsvc.CreateRequest{Course: "classroom"})
	if err != nil {
		b.Fatal(err)
	}
	return m, r.Session
}

// BenchmarkPlaysvcActBinary measures one framed act round without HTTP:
// encode the act frame, parse it (the server's ingress), apply the batch
// of one, then encode and parse the reply frame (the client's ingress).
// The JSON-route equivalent is BenchmarkPlaysvcAct/act plus two
// json.Marshal/Unmarshal pairs; the delta is the serialization win E17
// banks per request.
func BenchmarkPlaysvcActBinary(b *testing.B) {
	m, id := newHostedBench(b)
	req := playsvc.BatchRequest{
		Session: id,
		Acts:    []playsvc.ActRequest{{Kind: playsvc.ActTalk, Object: "teacher"}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.BaseSeq = int64(i + 1)
		parsed, err := playsvc.ParseActFrame(playsvc.EncodeActFrame(&req))
		if err != nil {
			b.Fatal(err)
		}
		out, err := m.ActBatch(parsed)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := playsvc.ParseReplyFrame(playsvc.EncodeReplyFrame(out))
		if err != nil {
			b.Fatal(err)
		}
		req.SeenEvents, req.SeenMessages = rt.Reply.EventCount, rt.Reply.MessageCount
	}
}

// BenchmarkPlaysvcActPipelined measures a framed batch of N acts per op —
// the pipelining amortization: one frame, one batch apply, one coalesced
// reply tail regardless of depth. ns/op divided by the depth in the
// sub-benchmark name gives the per-act cost.
func BenchmarkPlaysvcActPipelined(b *testing.B) {
	for _, depth := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			m, id := newHostedBench(b)
			acts := make([]playsvc.ActRequest, depth)
			for i := range acts {
				acts[i] = playsvc.ActRequest{Kind: playsvc.ActTalk, Object: "teacher"}
			}
			req := playsvc.BatchRequest{Session: id, Acts: acts}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req.BaseSeq = int64(i*depth + 1)
				parsed, err := playsvc.ParseActFrame(playsvc.EncodeActFrame(&req))
				if err != nil {
					b.Fatal(err)
				}
				out, err := m.ActBatch(parsed)
				if err != nil {
					b.Fatal(err)
				}
				rt, err := playsvc.ParseReplyFrame(playsvc.EncodeReplyFrame(out))
				if err != nil {
					b.Fatal(err)
				}
				req.SeenEvents, req.SeenMessages = rt.Reply.EventCount, rt.Reply.MessageCount
			}
		})
	}
}

// BenchmarkRoomFanout measures the classroom broadcast hot path without
// HTTP: one driver act renders one publication, and W watchers each take
// one delivery (header encode + shared-pixel handoff). The per-op cost
// must scale with W only through the fan-out loop — per-watcher delivery
// reuses its chunk buffer and shares the publication's pixels, so
// allocs/op stays flat as W grows (the render's own buffer is the only
// per-op allocation). MB/s counts the pixel bytes served per op.
func BenchmarkRoomFanout(b *testing.B) {
	for _, W := range []int{4, 64, 512} {
		b.Run(fmt.Sprintf("watchers-%d", W), func(b *testing.B) {
			m := playsvc.NewManager(playsvc.Options{Shards: 4, TTL: -1})
			b.Cleanup(m.Close)
			if err := m.AddCourse("classroom", classroomPkg(b)); err != nil {
				b.Fatal(err)
			}
			const roomID = "classroom-bench-room"
			if _, err := m.CreateRoom(&playsvc.RoomCreateRequest{Course: "classroom", Room: roomID}); err != nil {
				b.Fatal(err)
			}
			room, ok := m.Room(roomID)
			if !ok {
				b.Fatal("room not registered")
			}
			ids := make([]string, W)
			dsts := make([][]byte, W)
			seenE := make([]int, W)
			seenM := make([]int, W)
			var pixLen int
			for w := 0; w < W; w++ {
				ids[w] = fmt.Sprintf("w-%04d", w)
				if _, err := m.JoinRoom(&playsvc.RoomJoinRequest{Room: roomID, Watcher: ids[w]}); err != nil {
					b.Fatal(err)
				}
				// Drain the seed publication: sizes the chunk buffer and
				// leaves every ring empty for the steady-state loop.
				header, pix, ae, am, err := room.WatchNext(ids[w], 0, 0, true, 0, nil)
				if err != nil || header == nil {
					b.Fatalf("seed delivery: %v", err)
				}
				dsts[w], seenE[w], seenM[w], pixLen = header, ae, am, len(pix)
			}
			req := playsvc.ActRequest{Session: roomID, Kind: playsvc.ActTick, Ticks: 1}
			b.SetBytes(int64(W) * int64(pixLen))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := m.Act(&req)
				if err != nil {
					b.Fatal(err)
				}
				req.SeenEvents, req.SeenMessages = r.EventCount, r.MessageCount
				for w := 0; w < W; w++ {
					header, _, ae, am, err := room.WatchNext(ids[w], seenE[w], seenM[w], true, 0, dsts[w][:0])
					if err != nil {
						b.Fatal(err)
					}
					if header == nil {
						b.Fatal("no publication pending after an act")
					}
					dsts[w], seenE[w], seenM[w] = header, ae, am
				}
			}
		})
	}
}

// --- E9: ablations ----------------------------------------------------------

func BenchmarkHitTest(b *testing.B) {
	blob := classroomPkg(b)
	s, err := runtime.NewSession(blob, runtime.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ObjectAt(i%160, (i*7)%120)
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	blob := classroomPkg(b)
	s, err := runtime.NewSession(blob, runtime.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Click(100, 25) // computer hotspot OnClick script
	}
}

// --- F1/F2: figure rendering -------------------------------------------------

func BenchmarkFigure1Render(b *testing.B) {
	course := content.Classroom()
	videoBlob, err := course.RecordVideo(studio.Options{QStep: 10})
	if err != nil {
		b.Fatal(err)
	}
	projJSON, _ := course.Project.Marshal()
	tool, err := author.Load(projJSON, videoBlob)
	if err != nil {
		b.Fatal(err)
	}
	ed := author.NewEditorWindow(tool)
	ed.SelectScenario("classroom")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ed.Snapshot(132, 44); len(s) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkFigure2Render(b *testing.B) {
	blob, err := content.StreetDemo().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		b.Fatal(err)
	}
	s, err := runtime.NewSession(blob, runtime.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := runtime.NewGameWindow(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := g.Snapshot(132, 44); len(snap) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// TestExperimentTablesSmoke regenerates the cheap experiment tables so
// `go test` alone exercises the full harness path.
func TestExperimentTablesSmoke(t *testing.T) {
	for _, fn := range []struct {
		id  string
		run func() (string, error)
	}{
		{"f2", experiments.F2},
		{"e4", experiments.E4},
		{"e5", experiments.E5},
	} {
		out, err := fn.run()
		if err != nil {
			t.Fatalf("%s: %v", fn.id, err)
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously small:\n%s", fn.id, out)
		}
	}
}

// --- Observability -----------------------------------------------------------

// BenchmarkObsHistogramObserve is the metrics layer's hot-path cost: one
// latency observation is a binary search over the bucket bounds plus two
// atomic adds, and must stay allocation-free — it sits inside the act and
// frame paths whose own allocation counts are pinned by tests.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := obs.NewHistogram(obs.LatencyBounds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Values sweep the bucket range so the search depth is averaged,
		// not pinned to one bucket.
		h.Observe(int64(i%1000)*10_000 + 57)
	}
	if h.Snapshot().Count != int64(b.N) {
		b.Fatal("lost observations")
	}
}
