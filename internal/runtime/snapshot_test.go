package runtime

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"sync"
	"testing"

	"repro/internal/content"
	"repro/internal/gamepack"
	"repro/internal/media/studio"
)

var (
	snapOnce    sync.Once
	snapBlob    []byte
	snapBlobErr error
)

func snapPackage(t testing.TB) []byte {
	t.Helper()
	snapOnce.Do(func() {
		snapBlob, snapBlobErr = content.Classroom().BuildPackage(studio.Options{QStep: 8, Workers: 2})
	})
	if snapBlobErr != nil {
		t.Fatal(snapBlobErr)
	}
	return snapBlob
}

// playFirstHalf drives a session through the first leg of the classroom
// mission, leaving rich mid-game state: inventory, dialogue positions,
// pending selection, transcript, tick clock, a non-start scenario.
func playFirstHalf(s *Session) {
	s.Talk("teacher")
	s.Talk("teacher")
	s.Examine("computer") // learn + quiz
	if q, ok := s.PendingQuiz(); ok {
		s.AnswerQuiz(q.ID, q.Answer)
	}
	s.Take("desk-coin")
	s.Advance(5)
	s.GotoScenario("market")
	s.Advance(3)
}

// playSecondHalf finishes the mission from the market.
func playSecondHalf(s *Session) {
	s.Take("stall-ram")
	if q, ok := s.PendingQuiz(); ok {
		s.AnswerQuiz(q.ID, q.Answer)
	}
	s.GotoScenario("classroom")
	s.Advance(2)
	s.UseItemOn("ram module", "computer")
	if q, ok := s.PendingQuiz(); ok {
		s.AnswerQuiz(q.ID, q.Answer)
	}
	s.Advance(4)
}

// TestSnapshotResumeEquivalence is the runtime half of the golden
// snapshot-fidelity contract: play half the mission, snapshot, restore on
// a fresh session, finish — the combined event log, the transcript and the
// final state must be identical to the uninterrupted run.
func TestSnapshotResumeEquivalence(t *testing.T) {
	blob := snapPackage(t)

	// Uninterrupted reference run.
	ref := &recorder{}
	full, err := NewSession(blob, Options{Observer: ref})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	playFirstHalf(full)
	playSecondHalf(full)

	// Interrupted run: first half, snapshot, restore, second half.
	firstRec := &recorder{}
	first, err := NewSession(blob, Options{Observer: firstRec})
	if err != nil {
		t.Fatal(err)
	}
	playFirstHalf(first)
	snap := first.Snapshot()
	first.Close()

	secondRec := &recorder{}
	second, err := RestoreSession(blob, snap, Options{Observer: secondRec})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	// Restore emits no events and re-runs no OnEnter.
	if len(secondRec.events) != 0 {
		t.Fatalf("restore emitted %d events: %v", len(secondRec.events), secondRec.events)
	}
	playSecondHalf(second)

	combined := append(append([]Event(nil), firstRec.events...), secondRec.events...)
	if !reflect.DeepEqual(combined, ref.events) {
		t.Fatalf("event logs diverge:\n got %v\nwant %v", combined, ref.events)
	}
	if !reflect.DeepEqual(second.Messages(), full.Messages()) {
		t.Fatalf("transcripts diverge:\n got %q\nwant %q", second.Messages(), full.Messages())
	}
	gotState, _ := second.State().Save()
	wantState, _ := full.State().Save()
	if !bytes.Equal(gotState, wantState) {
		t.Fatalf("final states diverge:\n got %s\nwant %s", gotState, wantState)
	}
	if second.Ticks() != full.Ticks() {
		t.Fatalf("ticks = %d, want %d", second.Ticks(), full.Ticks())
	}
	if !second.Ended() || second.Outcome() != full.Outcome() {
		t.Fatalf("ended=%v outcome=%q", second.Ended(), second.Outcome())
	}
	if !reflect.DeepEqual(second.OpenedResources(), full.OpenedResources()) {
		t.Fatalf("opened resources diverge: %v vs %v", second.OpenedResources(), full.OpenedResources())
	}

	// The restored video cursor presents the exact frame the original
	// session would.
	wantFrame, err := full.Frame()
	if err != nil {
		t.Fatal(err)
	}
	gotFrame, err := second.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotFrame.Pix, wantFrame.Pix) {
		t.Fatal("restored session renders a different frame")
	}
}

// TestSnapshotDeterministic: identical logical states encode to identical
// bytes — the property the content-addressed store's dedup rides on.
func TestSnapshotDeterministic(t *testing.T) {
	blob := snapPackage(t)
	make1 := func() []byte {
		s, err := NewSession(blob, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		playFirstHalf(s)
		return s.Snapshot()
	}
	a, b := make1(), make1()
	if !bytes.Equal(a, b) {
		t.Fatal("equal states produced different snapshot bytes")
	}
	// And back-to-back snapshots of one untouched session agree too.
	s, err := RestoreSession(blob, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !bytes.Equal(s.Snapshot(), a) {
		t.Fatal("restore→snapshot is not a fixed point")
	}
}

// TestSnapshotSelectedItem covers the armed-item path (selection must be
// restored, and a selected item missing from the inventory is rejected).
func TestSnapshotSelectedItem(t *testing.T) {
	blob := snapPackage(t)
	s, err := NewSession(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Take("desk-coin")
	if err := s.SelectItem("coin"); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSession(blob, s.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.SelectedItem() != "coin" {
		t.Fatalf("selected = %q", r.SelectedItem())
	}
}

// corrupt returns a copy of snap transformed by fn.
func corrupt(snap []byte, fn func([]byte) []byte) []byte {
	return fn(append([]byte(nil), snap...))
}

// reseal recomputes the trailing CRC so structural corruptions are tested
// on their own merits rather than all failing the checksum gate.
func reseal(snap []byte) []byte {
	body := snap[:len(snap)-4]
	return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// TestRestoreRejectsCorruptSnapshots is the table-driven corruption suite:
// every rejection must wrap ErrBadSnapshot, and none may panic or produce
// a session.
func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	blob := snapPackage(t)
	s, err := NewSession(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	playFirstHalf(s)
	good := s.Snapshot()
	if _, err := RestoreSession(blob, good, Options{}); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	// A snapshot of a different course's footage, for the digest check.
	otherCourse := content.Museum()
	otherVideo, err := otherCourse.RecordVideo(studio.Options{QStep: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	otherBlob, err := gamepack.Build(otherCourse.Project, otherVideo)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		snap []byte
	}{
		{"empty", nil},
		{"tiny", []byte("VS")},
		{"bad magic", corrupt(good, func(b []byte) []byte { b[0] ^= 0xff; return b })},
		{"truncated head", good[:6]},
		{"truncated middle", reseal(corrupt(good, func(b []byte) []byte { return b[:len(b)/2] }))},
		{"bit flip unsealed", corrupt(good, func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b })},
		{"version zero", reseal(corrupt(good, func(b []byte) []byte { b[4] = 0; return b }))},
		{"version from the future", reseal(corrupt(good, func(b []byte) []byte { b[4] = 99; return b }))},
		{"record overruns buffer", reseal(corrupt(good, func(b []byte) []byte {
			// First record starts after magic+version: tag at 5, length at 6.
			b[6] = 0xff
			b[7] = 0xff
			return b
		}))},
		{"garbage", bytes.Repeat([]byte{0x5a}, 128)},
		{"wrong footage", func() []byte {
			o, err := NewSession(otherBlob, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer o.Close()
			return o.Snapshot()
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := RestoreSession(blob, tc.snap, Options{})
			if err == nil {
				sess.Close()
				t.Fatal("corrupt snapshot restored")
			}
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("error %v does not wrap ErrBadSnapshot", err)
			}
		})
	}
}

// TestRestoreRejectsSemanticCorruption flips state inside otherwise
// well-formed snapshots: unknown scenarios, out-of-range cursors and
// undefined quizzes must all be rejected whole.
func TestRestoreRejectsSemanticCorruption(t *testing.T) {
	blob := snapPackage(t)
	s, err := NewSession(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	playFirstHalf(s)
	good := s.Snapshot()

	rewrite := func(tag uint64, payload []byte) []byte {
		// Re-encode the snapshot with one record replaced.
		d, err := decodeSnapshot(good)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 0, len(good))
		b = append(b, snapMagic...)
		b = binary.AppendUvarint(b, snapVersion)
		put := func(tg uint64, p []byte) {
			if tg == tag {
				p = payload
			}
			b = appendRecord(b, tg, p)
		}
		put(tagVideoSum, d.videoSum)
		put(tagState, d.stateRaw)
		put(tagTick, binary.AppendUvarint(nil, uint64(d.tick)))
		put(tagSelected, nil)
		put(tagNPCPos, mustJSON(d.npcPos))
		put(tagMessages, mustJSON(d.messages))
		put(tagQuizzes, mustJSON(d.quizzes))
		put(tagSegment, []byte(d.segment))
		put(tagCursor, binary.AppendUvarint(nil, uint64(d.cursor)))
		return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	}
	cases := []struct {
		name string
		snap []byte
	}{
		{"unknown scenario", rewrite(tagState, []byte(`{"scenario":"nowhere"}`))},
		{"state not JSON", rewrite(tagState, []byte(`{"scenario":`))},
		{"unknown segment", rewrite(tagSegment, []byte("void"))},
		{"cursor out of range", rewrite(tagCursor, binary.AppendUvarint(nil, 1<<20))},
		{"undefined quiz", rewrite(tagQuizzes, []byte(`["q-imaginary"]`))},
		{"negative npc position", rewrite(tagNPCPos, []byte(`{"teacher":-3}`))},
		{"selected item not carried", rewrite(tagSelected, []byte("phantom"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := RestoreSession(blob, tc.snap, Options{})
			if err == nil {
				sess.Close()
				t.Fatal("semantically corrupt snapshot restored")
			}
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("error %v does not wrap ErrBadSnapshot", err)
			}
		})
	}
}

// FuzzRestoreSession hammers the decoder: any byte string must either
// restore a fully-valid session or be rejected with ErrBadSnapshot —
// never panic, never half-restore.
func FuzzRestoreSession(f *testing.F) {
	blob := snapPackage(f)
	pkg, err := gamepack.Open(blob)
	if err != nil {
		f.Fatal(err)
	}
	s, err := NewSessionFromPackage(pkg, Options{})
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()
	fresh := s.Snapshot()
	playFirstHalf(s)
	mid := s.Snapshot()
	f.Add(fresh)
	f.Add(mid)
	f.Add(mid[:len(mid)-5])
	f.Add([]byte("VSNP"))
	f.Fuzz(func(t *testing.T, snap []byte) {
		sess, err := RestoreSessionFromPackage(pkg, snap, Options{})
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("error %v does not wrap ErrBadSnapshot", err)
			}
			return
		}
		// A snapshot the decoder accepts must behave like a session: it
		// snapshots again deterministically and survives a tick.
		defer sess.Close()
		if err := sess.Tick(); err != nil {
			t.Fatalf("restored session cannot tick: %v", err)
		}
		_ = sess.Snapshot()
	})
}

func BenchmarkSessionSnapshot(b *testing.B) {
	blob := snapPackage(b)
	s, err := NewSession(blob, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	playFirstHalf(s)
	b.ReportAllocs()
	var snap []byte
	for i := 0; i < b.N; i++ {
		snap = s.Snapshot()
	}
	b.SetBytes(int64(len(snap)))
}

func BenchmarkSessionRestore(b *testing.B) {
	blob := snapPackage(b)
	pkg, err := gamepack.Open(blob)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSessionFromPackage(pkg, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	playFirstHalf(s)
	snap := s.Snapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := RestoreSessionFromPackage(pkg, snap, Options{})
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}
