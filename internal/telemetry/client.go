package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/runtime"
)

// ClientOptions configures a batching telemetry client.
type ClientOptions struct {
	BaseURL string // server base, e.g. "http://127.0.0.1:8807"
	Course  string
	Session string
	Start   string // start scenario, threaded to the server-side digest

	FlushEvery int           // flush when this many events are buffered (default 64)
	Interval   time.Duration // also flush this often (0 disables the timer)
	MaxRetries int           // attempts per batch when the server sheds load (default 64)
	HTTP       *http.Client  // defaults to http.DefaultClient
}

// ClientStats counts what reporting cost.
type ClientStats struct {
	Batches   int           // batches delivered (attempted batches, not retries)
	Events    int           // events delivered
	Dropped   int           // events discarded because delivery failed
	Posts     int           // HTTP posts including retries
	Retries   int           // posts re-sent after a 429
	FlushTime time.Duration // total time spent posting
	MaxFlush  time.Duration // slowest single flush
}

// Client is a batching runtime.Observer: Record buffers events and flushes
// a JSON batch to the ingest endpoint when the buffer reaches FlushEvery or
// the interval timer fires. Close flushes the tail and marks the session
// done. Record is safe to call from the session goroutine while the
// interval timer flushes from its own; per-session batch order is preserved
// by a single-flight post lock.
type Client struct {
	opts ClientOptions
	url  string

	postMu sync.Mutex // serializes posts, preserving batch order
	seq    int        // last batch sequence number issued (guarded by postMu)

	mu     sync.Mutex // guards buf, stats, err, closed
	buf    []runtime.Event
	stats  ClientStats
	err    error
	closed bool

	stopTimer chan struct{}
	timerDone chan struct{}
}

// NewClient validates options and starts the interval flusher (when
// Interval > 0).
func NewClient(o ClientOptions) (*Client, error) {
	if o.BaseURL == "" {
		return nil, fmt.Errorf("telemetry: client needs a BaseURL")
	}
	if o.Course == "" || o.Session == "" {
		return nil, fmt.Errorf("telemetry: client needs Course and Session")
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 64
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 64
	}
	c := &Client{
		opts:      o,
		url:       o.BaseURL + IngestPath,
		stopTimer: make(chan struct{}),
		timerDone: make(chan struct{}),
	}
	if o.Interval > 0 {
		go c.runTimer(o.Interval)
	} else {
		close(c.timerDone)
	}
	return c, nil
}

func (c *Client) runTimer(every time.Duration) {
	defer close(c.timerDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Flush()
		case <-c.stopTimer:
			return
		}
	}
}

// Record implements runtime.Observer. Events recorded after Close, or
// after a sticky delivery failure, are dropped (and counted in Stats) —
// once a batch is undeliverable the server would reject the sequence gap
// anyway, and buffering forever would grow memory without bound.
func (c *Client) Record(e runtime.Event) {
	c.mu.Lock()
	if c.closed || c.err != nil {
		c.stats.Dropped++
		c.mu.Unlock()
		return
	}
	c.buf = append(c.buf, e)
	full := len(c.buf) >= c.opts.FlushEvery
	c.mu.Unlock()
	if full {
		c.Flush()
	}
}

// Buffered returns the number of events waiting for the next flush.
func (c *Client) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

// Flush posts the buffered events (no-op when the buffer is empty).
func (c *Client) Flush() error {
	c.postMu.Lock()
	defer c.postMu.Unlock()
	return c.flushLocked(false)
}

// Close flushes the tail, marks the session done on the server, and stops
// the interval flusher. Further Records are dropped. It returns the first
// delivery error encountered over the client's lifetime.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.closed = true
	c.mu.Unlock()
	if c.opts.Interval > 0 {
		close(c.stopTimer)
		<-c.timerDone
	}
	c.postMu.Lock()
	defer c.postMu.Unlock()
	return c.flushLocked(true)
}

// Stats returns a copy of the delivery counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Err returns the first delivery error (nil while everything has landed).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// flushLocked runs with postMu held: it drains the buffer and posts one
// batch, retrying with exponential backoff while the service sheds load.
// Batches carry a per-session sequence number, so a retry after a lost ack
// cannot double-count on the server; after a sticky delivery failure no
// further batches are sent (the server would reject the sequence gap).
func (c *Client) flushLocked(done bool) error {
	c.mu.Lock()
	if c.err != nil {
		// Sticky failure: shed anything still buffered and stop posting.
		c.stats.Dropped += len(c.buf)
		c.buf = nil
		err := c.err
		c.mu.Unlock()
		return err
	}
	events := c.buf
	c.buf = nil
	c.mu.Unlock()
	if len(events) == 0 && !done {
		return nil
	}
	c.seq++
	b := Batch{
		Course:  c.opts.Course,
		Session: c.opts.Session,
		Start:   c.opts.Start,
		Seq:     c.seq,
		Events:  events,
		Done:    done,
	}
	payload, err := json.Marshal(b)
	if err != nil {
		return c.fail(err)
	}
	httpc := c.opts.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	began := time.Now()
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			backoff := time.Millisecond << uint(min(attempt-1, 5)) // 1ms..32ms
			time.Sleep(backoff)
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.stats.Posts++
		c.mu.Unlock()
		resp, err := httpc.Post(c.url, "application/json", bytes.NewReader(payload))
		if err != nil {
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			took := time.Since(began)
			c.mu.Lock()
			c.stats.Batches++
			c.stats.Events += len(events)
			c.stats.FlushTime += took
			if took > c.stats.MaxFlush {
				c.stats.MaxFlush = took
			}
			c.mu.Unlock()
			return nil
		case http.StatusTooManyRequests:
			lastErr = fmt.Errorf("telemetry: server shedding load (429)")
			continue
		default:
			c.mu.Lock()
			c.stats.Dropped += len(events)
			c.mu.Unlock()
			return c.fail(fmt.Errorf("telemetry: ingest %s: %s", c.url, resp.Status))
		}
	}
	c.mu.Lock()
	c.stats.Dropped += len(events)
	c.mu.Unlock()
	return c.fail(fmt.Errorf("telemetry: batch undelivered after %d attempts: %w", c.opts.MaxRetries, lastErr))
}

// fail records the first sticky error.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	return err
}
