package core

import (
	"fmt"

	"repro/internal/script"
)

// Severity grades a validation problem.
type Severity int

// Severities.
const (
	Warning Severity = iota
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Problem is one validation finding.
type Problem struct {
	Severity Severity
	Where    string // e.g. "scenario classroom / object computer"
	Msg      string
}

// String formats the problem for display.
func (p Problem) String() string {
	return fmt.Sprintf("%s: %s: %s", p.Severity, p.Where, p.Msg)
}

// Validate checks the project's internal consistency: unique IDs, resolvable
// references (scenarios, segments, items, knowledge units), compilable
// scripts, and structural requirements (a start scenario, NPCs with
// dialogue). segments lists the video chapter names available in the
// project's container; pass nil to skip segment checking (e.g. before video
// is imported).
func (p *Project) Validate(segments []string) []Problem {
	var probs []Problem
	add := func(sev Severity, where, format string, args ...any) {
		probs = append(probs, Problem{Severity: sev, Where: where, Msg: fmt.Sprintf(format, args...)})
	}
	segSet := map[string]bool{}
	for _, s := range segments {
		segSet[s] = true
	}

	if p.Title == "" {
		add(Warning, "project", "project has no title")
	}
	if p.StartScenario == "" {
		add(Error, "project", "no start scenario set")
	} else if p.ScenarioByID(p.StartScenario) == nil {
		add(Error, "project", "start scenario %q does not exist", p.StartScenario)
	}
	if len(p.Scenarios) == 0 {
		add(Error, "project", "project has no scenarios")
	}

	// Catalog uniqueness.
	scenIDs := map[string]bool{}
	objIDs := map[string]bool{}
	itemIDs := map[string]bool{}
	knowIDs := map[string]bool{}
	for _, it := range p.Items {
		where := "item " + it.ID
		if it.ID == "" {
			add(Error, "items", "item with empty id")
			continue
		}
		if itemIDs[it.ID] {
			add(Error, where, "duplicate item id")
		}
		itemIDs[it.ID] = true
	}
	for _, k := range p.Knowledge {
		where := "knowledge " + k.ID
		if k.ID == "" {
			add(Error, "knowledge", "knowledge unit with empty id")
			continue
		}
		if knowIDs[k.ID] {
			add(Error, where, "duplicate knowledge id")
		}
		knowIDs[k.ID] = true
	}

	checkScript := func(where, src string) *script.Program {
		prog, err := script.Compile(src)
		if err != nil {
			add(Error, where, "script error: %v", err)
			return nil
		}
		// Cross-reference literal arguments.
		for _, target := range prog.LiteralArgs("goto") {
			if p.ScenarioByID(target) == nil {
				add(Error, where, "goto target %q is not a scenario", target)
			}
		}
		for _, verb := range []string{"give", "take"} {
			for _, item := range prog.LiteralArgs(verb) {
				if !itemIDs[item] {
					add(Warning, where, "%s references item %q not in the catalog", verb, item)
				}
			}
		}
		for _, unit := range prog.LiteralArgs("learn") {
			if !knowIDs[unit] {
				add(Error, where, "learn references unknown knowledge unit %q", unit)
			}
		}
		for _, q := range prog.LiteralArgs("quiz") {
			if p.QuizByID(q) == nil {
				add(Error, where, "quiz references unknown quiz %q", q)
			}
		}
		for _, item := range prog.LiteralArgs("reward") {
			def := p.ItemByID(item)
			switch {
			case def == nil:
				add(Error, where, "reward references unknown item %q", item)
			case !def.Reward:
				add(Error, where, "reward item %q is not marked as a reward object", item)
			}
		}
		for _, obj := range prog.LiteralArgs("enable") {
			if _, o := p.FindObject(obj); o == nil {
				add(Error, where, "enable references unknown object %q", obj)
			}
		}
		for _, obj := range prog.LiteralArgs("disable") {
			if _, o := p.FindObject(obj); o == nil {
				add(Error, where, "disable references unknown object %q", obj)
			}
		}
		return prog
	}

	reachable := map[string]bool{}
	if p.StartScenario != "" {
		reachable[p.StartScenario] = true
	}
	// Collect goto edges while validating scripts, then flood-fill for
	// reachability.
	edges := map[string][]string{}

	for _, s := range p.Scenarios {
		where := "scenario " + s.ID
		if s.ID == "" {
			add(Error, "scenarios", "scenario with empty id")
			continue
		}
		if scenIDs[s.ID] {
			add(Error, where, "duplicate scenario id")
		}
		scenIDs[s.ID] = true
		if s.Segment == "" {
			add(Error, where, "no video segment assigned")
		} else if segments != nil && !segSet[s.Segment] {
			add(Error, where, "segment %q not present in the video container", s.Segment)
		}
		collect := func(src string) {
			if prog, err := script.Compile(src); err == nil {
				edges[s.ID] = append(edges[s.ID], prog.LiteralArgs("goto")...)
			}
		}
		if s.OnEnter != "" {
			checkScript(where+" on_enter", s.OnEnter)
			collect(s.OnEnter)
		}
		for _, o := range s.Objects {
			owhere := fmt.Sprintf("%s / object %s", where, o.ID)
			if o.ID == "" {
				add(Error, where, "object with empty id")
				continue
			}
			if objIDs[o.ID] {
				add(Error, owhere, "duplicate object id (ids are project-global)")
			}
			objIDs[o.ID] = true
			if !o.Kind.Valid() {
				add(Error, owhere, "unknown object kind %q", o.Kind)
			}
			if o.Region.W <= 0 || o.Region.H <= 0 {
				add(Error, owhere, "object region is empty")
			}
			if o.Kind == NPC && len(o.Dialogue) == 0 {
				add(Warning, owhere, "NPC has no dialogue lines")
			}
			if o.Kind == Item && !o.Takeable && o.EventFor(OnTake, "") != nil {
				add(Warning, owhere, "has an OnTake event but is not takeable")
			}
			seenTriggers := map[string]bool{}
			for i := range o.Events {
				e := &o.Events[i]
				ewhere := fmt.Sprintf("%s %s event", owhere, e.Trigger)
				if !e.Trigger.Valid() {
					add(Error, ewhere, "unknown trigger %q", e.Trigger)
				}
				if e.Trigger == OnEnter {
					add(Error, ewhere, "enter triggers belong to scenarios, not objects")
				}
				if e.Trigger == OnUse && e.UseItem == "" {
					add(Error, ewhere, "use trigger without use_item")
				}
				if e.UseItem != "" && !itemIDs[e.UseItem] {
					add(Warning, ewhere, "use_item %q not in the catalog", e.UseItem)
				}
				key := string(e.Trigger) + "/" + e.UseItem
				if seenTriggers[key] {
					add(Warning, ewhere, "duplicate trigger; only the first will fire")
				}
				seenTriggers[key] = true
				if e.Condition != "" {
					if _, err := script.EvalCondition(e.Condition, emptyEnv{}); err != nil {
						add(Error, ewhere, "condition error: %v", err)
					}
				}
				checkScript(ewhere, e.Script)
				collect(e.Script)
			}
		}
	}

	// Quizzes.
	quizIDs := map[string]bool{}
	for _, q := range p.Quizzes {
		where := "quiz " + q.ID
		if q.ID == "" {
			add(Error, "quizzes", "quiz with empty id")
			continue
		}
		if quizIDs[q.ID] {
			add(Error, where, "duplicate quiz id")
		}
		quizIDs[q.ID] = true
		if q.Question == "" {
			add(Error, where, "quiz has no question")
		}
		if len(q.Choices) < 2 {
			add(Error, where, "quiz needs at least two choices")
		}
		if q.Answer < 0 || q.Answer >= len(q.Choices) {
			add(Error, where, "answer index %d out of range [0,%d)", q.Answer, len(q.Choices))
		}
		if q.Knowledge != "" && !knowIDs[q.Knowledge] {
			add(Error, where, "quiz assesses unknown knowledge unit %q", q.Knowledge)
		}
	}

	// Missions.
	for _, m := range p.Missions {
		where := "mission " + m.ID
		if m.DoneFlag == "" {
			add(Error, where, "mission has no done_flag")
		}
		if m.Reward != "" {
			if def := p.ItemByID(m.Reward); def == nil {
				add(Error, where, "reward item %q unknown", m.Reward)
			} else if !def.Reward {
				add(Error, where, "reward item %q not marked as reward", m.Reward)
			}
		}
		if m.Knowledge != "" && !knowIDs[m.Knowledge] {
			add(Error, where, "knowledge unit %q unknown", m.Knowledge)
		}
	}

	// Reachability flood fill over goto edges.
	queue := []string{p.StartScenario}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range edges[cur] {
			if !reachable[next] && scenIDs[next] {
				reachable[next] = true
				queue = append(queue, next)
			}
		}
	}
	for _, s := range p.Scenarios {
		if s.ID != "" && !reachable[s.ID] {
			add(Warning, "scenario "+s.ID, "unreachable from the start scenario")
		}
	}
	return probs
}

// HasErrors reports whether any problem is an Error.
func HasErrors(probs []Problem) bool {
	for _, p := range probs {
		if p.Severity == Error {
			return true
		}
	}
	return false
}

// emptyEnv is a zero environment for static condition checking.
type emptyEnv struct{}

func (emptyEnv) HasItem(string) bool { return false }
func (emptyEnv) Flag(string) bool    { return false }
func (emptyEnv) Var(string) int      { return 0 }
